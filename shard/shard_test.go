package shard

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"promips"
)

func randData(r *rand.Rand, n, d int) [][]float32 {
	data := make([][]float32, n)
	for i := range data {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}
	return data
}

func buildPair(t *testing.T, data [][]float32, k int, opts promips.Options) (*promips.Index, *Index) {
	t.Helper()
	single, err := promips.Build(data, opts)
	if err != nil {
		t.Fatalf("single build: %v", err)
	}
	t.Cleanup(func() { single.Close() })
	sharded, err := Build(data, Options{Shards: k, Index: opts})
	if err != nil {
		t.Fatalf("sharded build: %v", err)
	}
	t.Cleanup(func() { sharded.Close() })
	return single, sharded
}

// ipBits fingerprints results as (id, float64 bit pattern) pairs.
func ipBits(res []promips.Result) [][2]uint64 {
	out := make([][2]uint64, len(res))
	for i, r := range res {
		out[i] = [2]uint64{uint64(r.ID), math.Float64bits(r.IP)}
	}
	return out
}

// TestExactMatchesSingleIndex pins the id-space emulation: a sharded index
// assigns the same global ids as a single index over the same build data
// and the same sequential update stream, and its Exact answers are
// byte-identical (ids and inner-product bits) at every K.
func TestExactMatchesSingleIndex(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	data := randData(r, 90, 12)
	extra := randData(r, 24, 12)
	queries := randData(r, 10, 12)
	for _, k := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			single, sharded := buildPair(t, data, k, promips.Options{Seed: 11, M: 4})

			// Interleaved updates: both sides see the identical sequence and
			// must assign identical ids throughout.
			for i, v := range extra {
				wantID, err := single.Insert(v)
				if err != nil {
					t.Fatalf("single insert %d: %v", i, err)
				}
				gotID, err := sharded.Insert(v)
				if err != nil {
					t.Fatalf("sharded insert %d: %v", i, err)
				}
				if gotID != wantID {
					t.Fatalf("insert %d: sharded id %d, single id %d", i, gotID, wantID)
				}
				if i%3 == 0 {
					del := uint32(i * 4 % len(data))
					okS, err := single.DeleteChecked(del)
					if err != nil {
						t.Fatalf("single delete %d: %v", del, err)
					}
					okK, err := sharded.DeleteChecked(del)
					if err != nil {
						t.Fatalf("sharded delete %d: %v", del, err)
					}
					if okS != okK {
						t.Fatalf("delete %d: sharded=%v single=%v", del, okK, okS)
					}
				}
			}
			if got, want := sharded.LiveCount(), single.LiveCount(); got != want {
				t.Fatalf("live count: sharded %d, single %d", got, want)
			}
			for qi, q := range queries {
				want, err := single.Exact(context.Background(), q, 10)
				if err != nil {
					t.Fatalf("single exact: %v", err)
				}
				got, err := sharded.Exact(context.Background(), q, 10)
				if err != nil {
					t.Fatalf("sharded exact: %v", err)
				}
				if !reflect.DeepEqual(ipBits(got), ipBits(want)) {
					t.Fatalf("query %d: sharded Exact diverges\n got %v\nwant %v", qi, got, want)
				}
			}
		})
	}
}

// TestSingleShardIsPassThrough pins the K=1 special case: results AND
// stats byte-identical to the unsharded index — no probability re-split,
// no id remap, nothing.
func TestSingleShardIsPassThrough(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	data := randData(r, 200, 10)
	single, sharded := buildPair(t, data, 1, promips.Options{Seed: 5, M: 4, C: 0.8, P: 0.6})
	for qi := 0; qi < 10; qi++ {
		q := data[r.Intn(len(data))]
		wantRes, wantSt, err := single.Search(context.Background(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		gotRes, gotSt, err := sharded.Search(context.Background(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Fatalf("query %d: results diverge:\n got %v\nwant %v", qi, gotRes, wantRes)
		}
		if gotSt != wantSt {
			t.Fatalf("query %d: stats diverge:\n got %+v\nwant %+v", qi, gotSt, wantSt)
		}
	}
}

// TestShardedGuarantee checks the composed (c, p) contract as a property:
// over a query workload against a sharded index, the fraction of queries
// whose merged top-1 reaches c times the global exact top-1 must be at
// least p — the union-bound probability split has to deliver the
// whole-index guarantee, not a per-shard one.
func TestShardedGuarantee(t *testing.T) {
	cases := []struct {
		k    int
		c, p float64
	}{
		{k: 2, c: 0.9, p: 0.5},
		{k: 4, c: 0.8, p: 0.7},
		{k: 4, c: 0.9, p: 0.9},
	}
	r := rand.New(rand.NewSource(31))
	data := randData(r, 800, 16)
	for _, tc := range cases {
		t.Run(fmt.Sprintf("K=%d_c=%.1f_p=%.1f", tc.k, tc.c, tc.p), func(t *testing.T) {
			ix, err := Build(data, Options{
				Shards: tc.k,
				Index:  promips.Options{C: tc.c, P: tc.p, M: 5, Seed: 32},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()
			const numQueries = 20
			ok := 0
			for qi := 0; qi < numQueries; qi++ {
				q := data[r.Intn(len(data))]
				exact, err := ix.Exact(context.Background(), q, 1)
				if err != nil {
					t.Fatal(err)
				}
				res, _, err := ix.Search(context.Background(), q, 1)
				if err != nil {
					t.Fatal(err)
				}
				if res[0].IP >= tc.c*exact[0].IP-1e-9 {
					ok++
				}
			}
			if minOK := int(tc.p * numQueries); ok < minOK {
				t.Errorf("%d/%d queries met the c=%.1f bound, need >= %d (p=%.1f)",
					ok, numQueries, tc.c, minOK, tc.p)
			}
		})
	}
}

// TestSearchBatchMatchesSearch: the fan-out worker pool must answer every
// query exactly like a sequential Search.
func TestSearchBatchMatchesSearch(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	data := randData(r, 300, 12)
	queries := randData(r, 17, 12)
	ix, err := Build(data, Options{Shards: 4, Index: promips.Options{Seed: 42, M: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	batch, batchSt, err := ix.SearchBatch(context.Background(), queries, 5, promips.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		res, st, err := ix.Search(context.Background(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], res) {
			t.Fatalf("query %d: batch result diverges from Search", i)
		}
		if batchSt[i] != st {
			t.Fatalf("query %d: batch stats diverge from Search", i)
		}
	}
}

// TestFilterSeesGlobalIDs: WithFilter predicates receive global ids, and
// the filtered result set honors them across the shard remap.
func TestFilterSeesGlobalIDs(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	data := randData(r, 200, 8)
	ix, err := Build(data, Options{Shards: 3, Index: promips.Options{Seed: 52, M: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := data[7]
	res, _, err := ix.Search(context.Background(), q, 10,
		promips.WithFilter(func(id uint32) bool { return id%2 == 0 }))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("filtered search returned nothing")
	}
	for _, r := range res {
		if r.ID%2 != 0 {
			t.Fatalf("filter leaked odd global id %d", r.ID)
		}
	}
}

// TestSaveOpenRoundTrip: Save persists every shard plus the manifest and
// Open restores a byte-identical answering state, journal replay included.
func TestSaveOpenRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	data := randData(r, 120, 10)
	extra := randData(r, 6, 10)
	dir := t.TempDir()
	ix, err := Build(data, Options{Shards: 4, Dir: dir, Index: promips.Options{Seed: 62, M: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	// Post-Save updates live only in the journals: reopen must replay them.
	for _, v := range extra {
		if _, err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	ix.Delete(3)
	q := data[11]
	want, _, err := ix.Search(context.Background(), q, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantLive := ix.LiveCount()
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	if !IsSharded(dir) {
		t.Fatal("saved directory not detected as sharded")
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Shards() != 4 {
		t.Fatalf("reopened with %d shards, want 4", re.Shards())
	}
	if got := re.LiveCount(); got != wantLive {
		t.Fatalf("reopened live count %d, want %d", got, wantLive)
	}
	if rec := re.Recovery(); rec.Replayed == 0 {
		t.Fatalf("journal replay recovered nothing; recovery=%+v", rec)
	}
	got, _, err := re.Search(context.Background(), q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ipBits(got), ipBits(want)) {
		t.Fatalf("reopened search diverges:\n got %v\nwant %v", got, want)
	}
}

// TestEmptyShardTolerated: deleting every point on one shard must not
// break fan-out; deleting every point everywhere is ErrEmptyIndex.
func TestEmptyShardTolerated(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	data := randData(r, 40, 8)
	ix, err := Build(data, Options{Shards: 2, Index: promips.Options{Seed: 72, M: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	// Shard 0 owns the even global ids.
	for id := 0; id < len(data); id += 2 {
		if ok := ix.Delete(uint32(id)); !ok {
			t.Fatalf("delete %d failed", id)
		}
	}
	res, _, err := ix.Search(context.Background(), data[1], 5)
	if err != nil {
		t.Fatalf("search with one empty shard: %v", err)
	}
	for _, r := range res {
		if r.ID%2 == 0 {
			t.Fatalf("deleted point %d resurfaced", r.ID)
		}
	}
	for id := 1; id < len(data); id += 2 {
		ix.Delete(uint32(id))
	}
	if _, _, err := ix.Search(context.Background(), data[1], 5); !errors.Is(err, promips.ErrEmptyIndex) {
		t.Fatalf("all-empty search: got %v, want ErrEmptyIndex", err)
	}
	if _, err := ix.Exact(context.Background(), data[1], 5); !errors.Is(err, promips.ErrEmptyIndex) {
		t.Fatalf("all-empty exact: got %v, want ErrEmptyIndex", err)
	}
}

// TestCompactRemapsGlobally: after Compact the remap relocates every
// surviving global id and search answers are unchanged.
func TestCompactRemapsGlobally(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	data := randData(r, 60, 8)
	ix, err := Build(data, Options{Shards: 3, Index: promips.Options{Seed: 82, M: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	// Uneven deletes so per-shard sizes diverge and global ids go sparse.
	for _, id := range []uint32{0, 3, 6, 9, 12, 1, 4} {
		if !ix.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
	}
	q := data[20]
	want, err := ix.Exact(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	remap, err := ix.Compact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(remap) != ix.LiveCount() {
		t.Fatalf("remap has %d entries, live count is %d", len(remap), ix.LiveCount())
	}
	got, err := ix.Exact(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Ids moved; the value sequence must not.
	for i := range want {
		if math.Float64bits(got[i].IP) != math.Float64bits(want[i].IP) {
			t.Fatalf("result %d: IP changed across compact: %v -> %v", i, want[i].IP, got[i].IP)
		}
		old, ok := remap[got[i].ID]
		if !ok {
			t.Fatalf("result id %d missing from remap", got[i].ID)
		}
		if old != want[i].ID {
			t.Fatalf("result %d: remap says old id %d, want %d", i, old, want[i].ID)
		}
	}
}

// TestBuildValidation: shard-count and data-size preconditions.
func TestBuildValidation(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	data := randData(r, 3, 4)
	if _, err := Build(data, Options{Shards: 8, Index: promips.Options{M: 2}}); err == nil {
		t.Fatal("3 points across 8 shards built without error")
	}
	if _, err := Build(data, Options{Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := Build(data, Options{Shards: maxShards + 1}); err == nil {
		t.Fatal("oversized shard count accepted")
	}
}

// TestOpenErrors: a directory without a manifest is not a sharded index
// (fs.ErrNotExist class), and manifest garbage is ErrCorruptIndex.
func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("open without manifest: got %v, want ErrNotExist", err)
	}
	if IsSharded(dir) {
		t.Fatal("empty dir detected as sharded")
	}
	for _, garbage := range []string{"", "junk\n", "PROMIPS-SHARDS v1\nshards 0\n", "PROMIPS-SHARDS v1\nshards 9999999\n", "PROMIPS-SHARDS v1\nshards two\n"} {
		if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte(garbage), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); !errors.Is(err, promips.ErrCorruptIndex) {
			t.Fatalf("manifest %q: got %v, want ErrCorruptIndex", garbage, err)
		}
		if IsSharded(dir) {
			t.Fatalf("manifest %q detected as sharded", garbage)
		}
	}
}

// FuzzParseManifest pins the manifest parser's trust boundary: arbitrary
// bytes must yield a valid (K, epoch) or ErrCorruptIndex — never a panic,
// never an out-of-range shard count, never a negative epoch.
func FuzzParseManifest(f *testing.F) {
	f.Add([]byte("PROMIPS-SHARDS v1\nshards 4\n"))
	f.Add([]byte("PROMIPS-SHARDS v1\nshards -1\n"))
	f.Add([]byte(""))
	f.Add([]byte("PROMIPS-SHARDS v1\nshards 99999999999999999999\n"))
	f.Add([]byte("PROMIPS-SHARDS v1\nshards 4\nepoch 3\n"))
	f.Add([]byte("PROMIPS-SHARDS v1\nshards 4\nepoch -3\n"))
	f.Add([]byte("PROMIPS-SHARDS v1\nshards 4\nepoch x\n"))
	f.Fuzz(func(t *testing.T, b []byte) {
		k, epoch, err := parseManifest(b)
		if err != nil {
			if !errors.Is(err, promips.ErrCorruptIndex) {
				t.Fatalf("non-taxonomy error: %v", err)
			}
			return
		}
		if k < 1 || k > maxShards {
			t.Fatalf("accepted out-of-range shard count %d", k)
		}
		if epoch < 0 {
			t.Fatalf("accepted negative epoch %d", epoch)
		}
	})
}
