package shard

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"

	"promips"
	"promips/internal/fsutil"
	"promips/internal/wal"
)

// ReplSource abstracts a follower's read access to its primary — the
// replication transport. Two implementations ship: NewDirSource reads the
// primary's directory over a shared filesystem (the original PR 7 path),
// and NewHTTPSource pulls the same artifacts over promipsd's /v1/repl/*
// endpoints, so a follower needs no filesystem in common with its primary.
//
// The contract mirrors what the primary's directory durably holds, so the
// two sources are interchangeable record for record:
//
//   - Manifest is the SHARDS manifest: shard count and failover epoch.
//   - ShardState fingerprints one shard's journal epoch (raw CURRENT
//     bytes, the generation it names, a digest of that generation's
//     persisted metadata) plus the journal's current record count and byte
//     size — everything Poll and Lag need before touching journal bytes.
//   - TailWAL reads the shard's current-generation journal from a byte
//     offset. The bytes are the journal's own on-disk format, so
//     wal.Decode's torn-tail/corruption taxonomy applies to the wire
//     unchanged: a chunk truncated in flight is a torn tail, re-fetched
//     from where the valid prefix ended.
//   - SnapshotShard materializes a full copy of one shard's directory
//     tree at a local path — the epoch-crossing slow path.
//
// Epoch stamping: sources that cross a trust boundary (HTTP) stamp every
// ShardState and WALChunk with the failover epoch the primary served it
// under, so a fenced pre-failover primary is refused mid-stream
// (ErrStalePrimary) instead of only at the next manifest read. A stamp of
// UnstampedEpoch means the source is a trusted local read and the
// per-round manifest fence is the only check (the shared-filesystem
// source, where primary and follower cannot disagree about history
// without the manifest saying so).
//
// Errors are transient unless they wrap promips.ErrStalePrimary or
// promips.ErrCorruptIndex: the follower isolates them per shard and
// retries from the same offset next round.
type ReplSource interface {
	// Manifest reads the primary's SHARDS manifest.
	Manifest() (k int, epoch int64, err error)
	// ShardState fingerprints shard s's journal epoch and measures its
	// journal.
	ShardState(s int) (ShardState, error)
	// TailWAL reads shard s's current journal from byte offset off.
	TailWAL(s int, off int64) (WALChunk, error)
	// SnapshotShard copies shard s's directory tree into local dst.
	SnapshotShard(s int, dst string) error
	// String names the source for logs ("dir:/path" or the base URL).
	String() string
	// Close releases transport resources.
	Close() error
}

// UnstampedEpoch marks a ShardState or WALChunk served by a trusted local
// source that does not stamp per-response epochs.
const UnstampedEpoch int64 = -1

// ShardState pins one primary shard's replication state at a read instant.
type ShardState struct {
	// Current is the raw content of the shard's CURRENT pointer ("" for a
	// never-compacted root layout) and Gen the generation directory it
	// names — together with MetaSum (sha256 of the generation's persisted
	// metadata) they fingerprint the journal epoch: any Save or Compact
	// moves at least one of them.
	Current string
	Gen     string
	MetaSum [sha256.Size]byte
	// WALRecords and WALSize measure the shard's current journal: complete
	// records (the primary's durable LSN watermark) and total bytes.
	WALRecords int64
	WALSize    int64
	// Epoch is the failover epoch stamped on this read; UnstampedEpoch for
	// trusted local sources.
	Epoch int64
}

// WALChunk is one TailWAL read.
type WALChunk struct {
	// Data holds journal bytes from the requested offset: the file header
	// onward for offset 0, a headerless record sequence for offsets past
	// it (promips.Index.ApplyWALChunk's cont form).
	Data []byte
	// Size is the journal's total byte size at read time. Size below the
	// requested offset means the journal was truncated under the reader —
	// a Save/Compact epoch the fingerprint check raced — and the shard
	// must refresh.
	Size int64
	// Epoch is the failover epoch stamped on this read; UnstampedEpoch for
	// trusted local sources.
	Epoch int64
}

// NewDirSource returns the shared-filesystem ReplSource: the follower
// reads the primary's directory tree directly. This is the PR 7 transport,
// kept for single-box deployments and for the crash/fault harness (its
// reads thread through the fsutil seam).
func NewDirSource(primaryDir string) ReplSource {
	return &dirSource{dir: primaryDir, fs: fsutil.OS}
}

// dirSource reads the primary's tree through an fsutil.FS so the fault
// harness can inject transient read errors and torn copies.
type dirSource struct {
	dir string
	fs  fsutil.FS
}

func (d *dirSource) Manifest() (int, int64, error) {
	return readManifest(d.fs, d.dir)
}

func (d *dirSource) ShardState(s int) (ShardState, error) {
	shardDir := filepath.Join(d.dir, shardDirName(s))
	cur, gen, metaSum, err := epochOf(d.fs, shardDir)
	if err != nil {
		return ShardState{}, err
	}
	walB, err := d.readWAL(shardDir, gen)
	if err != nil {
		return ShardState{}, err
	}
	n, err := wal.CountRecords(walB)
	if err != nil {
		return ShardState{}, err
	}
	return ShardState{
		Current: cur, Gen: gen, MetaSum: metaSum,
		WALRecords: int64(n), WALSize: int64(len(walB)),
		Epoch: UnstampedEpoch,
	}, nil
}

func (d *dirSource) TailWAL(s int, off int64) (WALChunk, error) {
	shardDir := filepath.Join(d.dir, shardDirName(s))
	_, gen, _, err := epochOf(d.fs, shardDir)
	if err != nil {
		return WALChunk{}, err
	}
	walB, err := d.readWAL(shardDir, gen)
	if err != nil {
		return WALChunk{}, err
	}
	c := WALChunk{Size: int64(len(walB)), Epoch: UnstampedEpoch}
	if off < c.Size {
		c.Data = walB[off:]
	}
	return c, nil
}

// readWAL reads a shard generation's journal; a missing file is an empty
// journal (never-journaled generations, FsyncDisabled).
func (d *dirSource) readWAL(shardDir, gen string) ([]byte, error) {
	b, err := d.fs.ReadFile(filepath.Join(shardDir, filepath.FromSlash(gen), "wal.log"))
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	return b, nil
}

func (d *dirSource) SnapshotShard(s int, dst string) error {
	return copyTree(d.fs, filepath.Join(d.dir, shardDirName(s)), dst)
}

func (d *dirSource) String() string { return "dir:" + d.dir }

func (d *dirSource) Close() error { return nil }

// SnapshotFrom bootstraps replicaDir as a copy of the primary behind src:
// every shard's tree is copied, then the SHARDS manifest is written LAST —
// a bootstrap torn partway (crash, transport cut) leaves a directory
// without a manifest, which IsSharded reports false and promipsd
// re-bootstraps, rather than a manifest over missing shards. replicaDir
// must not exist or be empty; a partially-copied previous attempt must be
// removed first.
func SnapshotFrom(src ReplSource, replicaDir string) error {
	k, epoch, err := src.Manifest()
	if err != nil {
		return fmt.Errorf("shard: snapshot source: %w", err)
	}
	for s := 0; s < k; s++ {
		if err := src.SnapshotShard(s, filepath.Join(replicaDir, shardDirName(s))); err != nil {
			return fmt.Errorf("shard: snapshot shard %d: %w", s, err)
		}
	}
	if err := writeManifest(fsutil.OS, replicaDir, k, epoch); err != nil {
		return fmt.Errorf("shard: snapshot: %w", err)
	}
	return nil
}

// copyTree copies the regular files of a directory tree, reading and
// writing through fsys so the fault harness can tear a copy mid-file or
// fail a read mid-tree. Symlinks and other specials are rejected — index
// directories contain none.
func copyTree(fsys fsutil.FS, src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		switch {
		case info.IsDir():
			return os.MkdirAll(target, 0o755)
		case info.Mode().IsRegular():
			return copyFile(fsys, path, target)
		default:
			return fmt.Errorf("copy %s: unsupported file type %v", path, info.Mode().Type())
		}
	})
}

func copyFile(fsys fsutil.FS, src, dst string) error {
	b, err := fsys.ReadFile(src)
	if err != nil {
		return err
	}
	out, err := fsys.Create(dst)
	if err != nil {
		return err
	}
	if _, err := out.Write(b); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// staleChunk reports whether a stamped read came from a primary whose
// epoch fell below the follower's lineage.
func staleStamp(stamp, lineage int64) bool {
	return stamp != UnstampedEpoch && stamp < lineage
}

// errStaleStamp builds the mid-stream fence error.
func errStaleStamp(what string, stamp, lineage int64) error {
	return fmt.Errorf("shard: %s stamped epoch %d below replica lineage %d: %w",
		what, stamp, lineage, promips.ErrStalePrimary)
}
