package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"promips"
)

// Fan-out query execution over K child indexes, shared by the primary
// Index and the read-only Follower.
//
// Id remapping: child s owns every global id ≡ s (mod K), stored locally
// as global/K, so results come back with local ids and are remapped to
// localID·K + s before the merge; a caller's WithFilter predicate is
// rewrapped per child with the inverse map.
//
// Probability composition: a fanned-out query must hold the caller's
// (c, p) guarantee over the MERGED top-k, but each child only guarantees
// its own shard. Running every child at p_shard = 1 − (1−p)/K makes the
// per-child failure probability (1−p)/K, so by the union bound all K
// child guarantees hold simultaneously with probability ≥ p. When they
// do, the merged result is c-approximate against the global exact top-k:
// the global i-th exact points distribute over the shards as some k_s per
// shard with Σk_s = i, and shard s's first k_s returned points each reach
// c times s's k_s-th exact inner product, which is at least the global
// i-th exact value t_i — so the merged i-th result (the best i points
// across all shards) reaches c·t_i. See DESIGN.md, "Sharding &
// replication", for the full argument.
//
// Tie-breaking: the merge orders by inner product descending and breaks
// exact float ties by ascending global id — deterministic regardless of
// goroutine completion order. (A single index breaks ties by scan order
// instead; the two only differ when distinct points have bit-identical
// inner products.)

// fanSearch runs one query against every child in parallel and merges.
func fanSearch(ctx context.Context, children []*promips.Index, q []float32, k int, opts []promips.SearchOption) ([]promips.Result, promips.SearchStats, error) {
	if len(children) == 1 {
		// One shard IS the index: local ids are global ids and the full
		// probability budget stays with the only child, so the options pass
		// through untouched and the answer — stats included — is
		// byte-identical to the unsharded index's.
		return children[0].Search(ctx, q, k, opts...)
	}
	childOpts, err := splitOptions(children, opts)
	if err != nil {
		return nil, promips.SearchStats{}, err
	}
	type shardOut struct {
		res   []promips.Result
		st    promips.SearchStats
		empty bool
		err   error
	}
	outs := make([]shardOut, len(children))
	var wg sync.WaitGroup
	for s, child := range children {
		wg.Add(1)
		go func(s int, child *promips.Index) {
			defer wg.Done()
			res, st, err := child.Search(ctx, q, k, childOpts(s)...)
			if errors.Is(err, promips.ErrEmptyIndex) {
				// A shard whose points are all deleted contributes nothing;
				// the composed index is only empty if every shard is.
				outs[s] = shardOut{empty: true}
				return
			}
			outs[s] = shardOut{res: remapResults(res, len(children), s), st: st, err: err}
		}(s, child)
	}
	wg.Wait()
	return mergeOuts(k, outs, func(o shardOut) ([]promips.Result, promips.SearchStats, bool, error) {
		return o.res, o.st, o.empty, o.err
	})
}

// fanExact runs the ground-truth scan against every child in parallel and
// merges — the exact global top-k. Because the id layout keeps global ids
// identical to a single index built over the same data (see Insert), the
// merged answer is byte-identical to the unsharded Exact whenever no two
// points tie bit-for-bit on the inner product.
func fanExact(ctx context.Context, children []*promips.Index, q []float32, k int) ([]promips.Result, error) {
	type shardOut struct {
		res   []promips.Result
		empty bool
		err   error
	}
	outs := make([]shardOut, len(children))
	var wg sync.WaitGroup
	for s, child := range children {
		wg.Add(1)
		go func(s int, child *promips.Index) {
			defer wg.Done()
			res, err := child.Exact(ctx, q, k)
			if errors.Is(err, promips.ErrEmptyIndex) {
				outs[s] = shardOut{empty: true}
				return
			}
			outs[s] = shardOut{res: remapResults(res, len(children), s), err: err}
		}(s, child)
	}
	wg.Wait()
	res, _, err := mergeOuts(k, outs, func(o shardOut) ([]promips.Result, promips.SearchStats, bool, error) {
		return o.res, promips.SearchStats{}, o.empty, o.err
	})
	return res, err
}

// fanBatch answers many queries with a bounded worker pool; each claimed
// query fans out across all children, so the in-flight I/O concurrency is
// workers × K — the overlap that buys sharded batch throughput on
// disk-bound workloads. Per-query answers are identical to sequential
// fanSearch calls; the first error cancels the remaining work.
func fanBatch(ctx context.Context, children []*promips.Index, queries [][]float32, k int, opts []promips.SearchOption) ([][]promips.Result, []promips.SearchStats, error) {
	n := len(queries)
	if n == 0 {
		return nil, nil, nil
	}
	workers := promips.ResolveSearchOptions(opts...).Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([][]promips.Result, n)
	stats := make([]promips.SearchStats, n)
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				if err := ctx.Err(); err != nil {
					failed.Store(true)
					errOnce.Do(func() { firstErr = err })
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				res, st, err := fanSearch(ctx, children, queries[i], k, opts)
				if err != nil {
					failed.Store(true)
					errOnce.Do(func() { firstErr = fmt.Errorf("shard: batch query %d: %w", i, err) })
					return
				}
				results[i], stats[i] = res, st
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return results, stats, nil
}

// splitOptions derives the per-child option factory for a K>1 fan-out:
// the probability budget is split via the union bound, the filter is
// rewrapped into each child's local id space, and C passes through.
func splitOptions(children []*promips.Index, opts []promips.SearchOption) (func(s int) []promips.SearchOption, error) {
	k := len(children)
	resolved := promips.ResolveSearchOptions(opts...)
	p := resolved.P
	if p == 0 {
		p = children[0].Options().P
	}
	// Validate before transforming: the children would otherwise reject a
	// derived value the caller never passed.
	if !(p > 0 && p < 1) {
		return nil, fmt.Errorf("shard: probability p must be in (0,1), got %v", p)
	}
	pShard := 1 - (1-p)/float64(k)
	return func(s int) []promips.SearchOption {
		o := []promips.SearchOption{promips.WithP(pShard)}
		if resolved.C != 0 {
			o = append(o, promips.WithC(resolved.C))
		}
		if f := resolved.Filter; f != nil {
			ss := uint32(s)
			kk := uint32(k)
			o = append(o, promips.WithFilter(func(local uint32) bool {
				return f(local*kk + ss)
			}))
		}
		return o
	}, nil
}

// remapResults rewrites child-local result ids into the global id space.
func remapResults(res []promips.Result, k, s int) []promips.Result {
	for i := range res {
		res[i].ID = res[i].ID*uint32(k) + uint32(s)
	}
	return res
}

// mergeOuts folds per-shard outputs into one answer: first error (in
// shard order — deterministic) wins, all-empty surfaces ErrEmptyIndex,
// otherwise the top-k merge with aggregated stats.
func mergeOuts[T any](k int, outs []T, view func(T) ([]promips.Result, promips.SearchStats, bool, error)) ([]promips.Result, promips.SearchStats, error) {
	var (
		lists    [][]promips.Result
		sts      []promips.SearchStats
		allEmpty = true
	)
	for _, o := range outs {
		res, st, empty, err := view(o)
		if err != nil {
			return nil, promips.SearchStats{}, err
		}
		if empty {
			continue
		}
		allEmpty = false
		lists = append(lists, res)
		sts = append(sts, st)
	}
	if allEmpty {
		return nil, promips.SearchStats{}, fmt.Errorf("shard: %w: no shard has live points", promips.ErrEmptyIndex)
	}
	return mergeTopK(k, lists), mergeStats(sts), nil
}

// mergeTopK merges per-shard top-k lists (each already sorted best-first)
// into the global top-k with the deterministic (value, id) order.
func mergeTopK(k int, lists [][]promips.Result) []promips.Result {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	merged := make([]promips.Result, 0, total)
	for _, l := range lists {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].IP != merged[j].IP {
			return merged[i].IP > merged[j].IP
		}
		return merged[i].ID < merged[j].ID
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

// mergeStats aggregates per-shard work counters into one whole-query
// view: additive counters sum (the paper's Page Access metric counts
// every page the fanned-out query touched), the radii report the widest
// shard's search range, and TerminatedBy joins the distinct per-shard
// reasons in shard order ("A+B" means some shards stopped on Condition A,
// others on B).
func mergeStats(sts []promips.SearchStats) promips.SearchStats {
	var m promips.SearchStats
	var reasons []string
	seen := map[string]bool{}
	for _, st := range sts {
		m.Candidates += st.Candidates
		m.PageAccesses += st.PageAccesses
		m.Preranked += st.Preranked
		m.NormPruned += st.NormPruned
		m.GroupsProbed += st.GroupsProbed
		if st.Radius > m.Radius {
			m.Radius = st.Radius
		}
		if st.ExtendedRadius > m.ExtendedRadius {
			m.ExtendedRadius = st.ExtendedRadius
		}
		if st.TerminatedBy != "" && !seen[st.TerminatedBy] {
			seen[st.TerminatedBy] = true
			reasons = append(reasons, st.TerminatedBy)
		}
	}
	m.TerminatedBy = strings.Join(reasons, "+")
	return m
}

// Aggregations over child indexes, shared by Index and Follower.

func sumLen(children []*promips.Index) int {
	n := 0
	for _, c := range children {
		n += c.Len()
	}
	return n
}

func sumLive(children []*promips.Index) int {
	n := 0
	for _, c := range children {
		n += c.LiveCount()
	}
	return n
}

func sumJournal(children []*promips.Index) int {
	n := 0
	for _, c := range children {
		n += c.JournalLen()
	}
	return n
}

func journalLens(children []*promips.Index) []int {
	ls := make([]int, len(children))
	for s, c := range children {
		ls[s] = c.JournalLen()
	}
	return ls
}

func sumCache(children []*promips.Index) promips.CacheStats {
	var cs promips.CacheStats
	for _, c := range children {
		cs = cs.Add(c.CacheStats())
	}
	return cs
}

func sumRecovery(children []*promips.Index) promips.RecoveryStats {
	var rs promips.RecoveryStats
	for _, c := range children {
		r := c.Recovery()
		rs.Replayed += r.Replayed
		rs.Skipped += r.Skipped
		rs.TruncatedBytes += r.TruncatedBytes
	}
	return rs
}

func sumSizes(children []*promips.Index) promips.SizeBreakdown {
	var sz promips.SizeBreakdown
	for _, c := range children {
		s := c.Sizes()
		sz.BTree += s.BTree
		sz.Projected += s.Projected
		sz.QuickProbe += s.QuickProbe
		sz.Norms += s.Norms
		sz.Sketch += s.Sketch
	}
	return sz
}
