package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"promips"
)

// Fan-out query execution over K child indexes, shared by the primary
// Index and the read-only Follower.
//
// Id remapping: child s owns every global id ≡ s (mod K), stored locally
// as global/K, so results come back with local ids and are remapped to
// localID·K + s before the merge; a caller's WithFilter predicate is
// rewrapped per child with the inverse map.
//
// Probability composition: a fanned-out query must hold the caller's
// (c, p) guarantee over the MERGED top-k, but each child only guarantees
// its own shard. Running every child at p_shard = 1 − (1−p)/K makes the
// per-child failure probability (1−p)/K, so by the union bound all K
// child guarantees hold simultaneously with probability ≥ p. When they
// do, the merged result is c-approximate against the global exact top-k:
// the global i-th exact points distribute over the shards as some k_s per
// shard with Σk_s = i, and shard s's first k_s returned points each reach
// c times s's k_s-th exact inner product, which is at least the global
// i-th exact value t_i — so the merged i-th result (the best i points
// across all shards) reaches c·t_i. See DESIGN.md, "Sharding &
// replication", for the full argument.
//
// Degradation: by default a K>1 Search isolates shards that fail or miss
// their per-shard deadline (WithShardTimeout) instead of failing the whole
// query. The merged answer over the A answering shards still carries a
// quantified guarantee — it is c-approximate against the exact top-k OVER
// THOSE SHARDS' POINTS with probability ≥ 1 − A·(1−p)/K (the same union
// bound, now over fewer events), reported as SearchStats.Degraded. Three
// rules bound the behavior: the caller's own context error is never masked
// by degradation; if no shard answered, the first shard's error (shard
// order — deterministic) surfaces; and WithRequireAllShards restores
// all-or-nothing semantics. Exact never degrades — it is the ground truth
// correctness is measured against, and a silently partial ground truth
// would poison every comparison. See DESIGN.md, "Failure domains &
// degradation".
//
// Tie-breaking: the merge orders by inner product descending and breaks
// exact float ties by ascending global id — deterministic regardless of
// goroutine completion order. (A single index breaks ties by scan order
// instead; the two only differ when distinct points have bit-identical
// inner products.)

// fanSearch runs one query against every child in parallel and merges.
// flt is the optional deterministic fault injector (see Faults); it is
// consulted once per shard per query.
func fanSearch(ctx context.Context, children []*promips.Index, flt *Faults, q []float32, k int, opts []promips.SearchOption) ([]promips.Result, promips.SearchStats, error) {
	if len(children) == 1 {
		// One shard IS the index: local ids are global ids and the full
		// probability budget stays with the only child, so the options pass
		// through untouched and the answer — stats included — is
		// byte-identical to the unsharded index's.
		return children[0].Search(ctx, q, k, opts...)
	}
	childOpts, resolved, p, err := splitOptions(children, opts)
	if err != nil {
		return nil, promips.SearchStats{}, err
	}
	type shardOut struct {
		res   []promips.Result
		st    promips.SearchStats
		empty bool
		err   error
	}
	outs := make([]shardOut, len(children))
	var wg sync.WaitGroup
	for s, child := range children {
		wg.Add(1)
		go func(s int, child *promips.Index) {
			defer wg.Done()
			cctx := ctx
			if resolved.ShardTimeout > 0 {
				var cancel context.CancelFunc
				cctx, cancel = context.WithTimeout(ctx, resolved.ShardTimeout)
				defer cancel()
			}
			if flt != nil {
				if err := flt.enter(cctx, s); err != nil {
					outs[s] = shardOut{err: fmt.Errorf("shard %d: %w", s, err)}
					return
				}
			}
			res, st, err := child.Search(cctx, q, k, childOpts(s)...)
			if errors.Is(err, promips.ErrEmptyIndex) {
				// A shard whose points are all deleted contributes nothing;
				// the composed index is only empty if every shard is.
				outs[s] = shardOut{empty: true}
				return
			}
			if err != nil {
				err = fmt.Errorf("shard %d: %w", s, err)
			}
			outs[s] = shardOut{res: remapResults(res, len(children), s), st: st, err: err}
		}(s, child)
	}
	wg.Wait()
	return mergeOuts(ctx, k, p, resolved.RequireAllShards, outs, func(o shardOut) ([]promips.Result, promips.SearchStats, bool, error) {
		return o.res, o.st, o.empty, o.err
	})
}

// fanExact runs the ground-truth scan against every child in parallel and
// merges — the exact global top-k. Because the id layout keeps global ids
// identical to a single index built over the same data (see Insert), the
// merged answer is byte-identical to the unsharded Exact whenever no two
// points tie bit-for-bit on the inner product. Exact is always
// all-or-nothing: a partial ground truth is worse than none.
func fanExact(ctx context.Context, children []*promips.Index, q []float32, k int) ([]promips.Result, error) {
	type shardOut struct {
		res   []promips.Result
		empty bool
		err   error
	}
	outs := make([]shardOut, len(children))
	var wg sync.WaitGroup
	for s, child := range children {
		wg.Add(1)
		go func(s int, child *promips.Index) {
			defer wg.Done()
			res, err := child.Exact(ctx, q, k)
			if errors.Is(err, promips.ErrEmptyIndex) {
				outs[s] = shardOut{empty: true}
				return
			}
			outs[s] = shardOut{res: remapResults(res, len(children), s), err: err}
		}(s, child)
	}
	wg.Wait()
	res, _, err := mergeOuts(ctx, k, 0, true, outs, func(o shardOut) ([]promips.Result, promips.SearchStats, bool, error) {
		return o.res, promips.SearchStats{}, o.empty, o.err
	})
	return res, err
}

// fanBatch answers many queries with a bounded worker pool; each claimed
// query fans out across all children, so the in-flight I/O concurrency is
// workers × K — the overlap that buys sharded batch throughput on
// disk-bound workloads. Per-query answers are identical to sequential
// fanSearch calls — including per-query degradation, each query's
// SearchStats.Degraded reporting its own shard losses; the first
// query-fatal error cancels the remaining work.
func fanBatch(ctx context.Context, children []*promips.Index, flt *Faults, queries [][]float32, k int, opts []promips.SearchOption) ([][]promips.Result, []promips.SearchStats, error) {
	n := len(queries)
	if n == 0 {
		return nil, nil, nil
	}
	workers := promips.ResolveSearchOptions(opts...).Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([][]promips.Result, n)
	stats := make([]promips.SearchStats, n)
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				if err := ctx.Err(); err != nil {
					failed.Store(true)
					errOnce.Do(func() { firstErr = err })
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				res, st, err := fanSearch(ctx, children, flt, queries[i], k, opts)
				if err != nil {
					failed.Store(true)
					errOnce.Do(func() { firstErr = fmt.Errorf("shard: batch query %d: %w", i, err) })
					return
				}
				results[i], stats[i] = res, st
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return results, stats, nil
}

// splitOptions derives the per-child option factory for a K>1 fan-out:
// the probability budget is split via the union bound, the filter is
// rewrapped into each child's local id space, and C passes through. It
// also returns the resolved options and the effective global p (the
// caller's override or the index default) — the inputs the degraded merge
// needs for its achieved-guarantee accounting.
func splitOptions(children []*promips.Index, opts []promips.SearchOption) (func(s int) []promips.SearchOption, promips.ResolvedOptions, float64, error) {
	k := len(children)
	resolved := promips.ResolveSearchOptions(opts...)
	p := resolved.P
	if p == 0 {
		p = children[0].Options().P
	}
	// Validate before transforming: the children would otherwise reject a
	// derived value the caller never passed.
	if !(p > 0 && p < 1) {
		return nil, resolved, 0, fmt.Errorf("shard: probability p must be in (0,1), got %v", p)
	}
	pShard := 1 - (1-p)/float64(k)
	return func(s int) []promips.SearchOption {
		o := []promips.SearchOption{promips.WithP(pShard)}
		if resolved.C != 0 {
			o = append(o, promips.WithC(resolved.C))
		}
		if f := resolved.Filter; f != nil {
			ss := uint32(s)
			kk := uint32(k)
			o = append(o, promips.WithFilter(func(local uint32) bool {
				return f(local*kk + ss)
			}))
		}
		return o
	}, resolved, p, nil
}

// remapResults rewrites child-local result ids into the global id space.
func remapResults(res []promips.Result, k, s int) []promips.Result {
	for i := range res {
		res[i].ID = res[i].ID*uint32(k) + uint32(s)
	}
	return res
}

// mergeOuts folds per-shard outputs into one answer.
//
// Strict mode (RequireAllShards, and always for Exact): the first error in
// shard order — deterministic — fails the query, exactly the pre-degraded
// behavior. Otherwise failed shards are isolated and the healthy shards'
// merge is returned with a SearchStats.Degraded report, under three
// overriding rules: the caller's own context error always surfaces (a
// cancelled caller asked for nothing, not for a partial answer); if every
// shard failed the first error surfaces (there is no partial answer to
// give); and all shards empty with none failed is ErrEmptyIndex, as ever.
// p is the effective global guarantee probability the fan-out was asked
// for; the degraded report's AchievedP = 1 − A·(1−p)/K is the union bound
// re-taken over only the A shards that answered.
func mergeOuts[T any](ctx context.Context, k int, p float64, strict bool, outs []T, view func(T) ([]promips.Result, promips.SearchStats, bool, error)) ([]promips.Result, promips.SearchStats, error) {
	var (
		lists    [][]promips.Result
		sts      []promips.SearchStats
		failed   []int
		firstErr error
		allEmpty = true
	)
	for s, o := range outs {
		res, st, empty, err := view(o)
		if err != nil {
			if strict {
				return nil, promips.SearchStats{}, err
			}
			if firstErr == nil {
				firstErr = err
			}
			failed = append(failed, s)
			continue
		}
		if empty {
			continue
		}
		allEmpty = false
		lists = append(lists, res)
		sts = append(sts, st)
	}
	if len(failed) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, promips.SearchStats{}, err
		}
		if len(failed) == len(outs) {
			return nil, promips.SearchStats{}, firstErr
		}
	}
	if allEmpty && len(failed) == 0 {
		return nil, promips.SearchStats{}, fmt.Errorf("shard: %w: no shard has live points", promips.ErrEmptyIndex)
	}
	st := mergeStats(sts)
	if len(failed) > 0 {
		answered := len(outs) - len(failed)
		st.Degraded = &promips.DegradedStats{
			ShardsTotal:    len(outs),
			ShardsAnswered: answered,
			FailedShards:   failed,
			AchievedP:      1 - float64(answered)*(1-p)/float64(len(outs)),
		}
	}
	return mergeTopK(k, lists), st, nil
}

// mergeTopK merges per-shard top-k lists (each already sorted best-first)
// into the global top-k with the deterministic (value, id) order.
func mergeTopK(k int, lists [][]promips.Result) []promips.Result {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	merged := make([]promips.Result, 0, total)
	for _, l := range lists {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].IP != merged[j].IP {
			return merged[i].IP > merged[j].IP
		}
		return merged[i].ID < merged[j].ID
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

// mergeStats aggregates per-shard work counters into one whole-query
// view: additive counters sum (the paper's Page Access metric counts
// every page the fanned-out query touched), the radii report the widest
// shard's search range, and TerminatedBy joins the distinct per-shard
// reasons in shard order ("A+B" means some shards stopped on Condition A,
// others on B).
func mergeStats(sts []promips.SearchStats) promips.SearchStats {
	var m promips.SearchStats
	var reasons []string
	seen := map[string]bool{}
	for _, st := range sts {
		m.Candidates += st.Candidates
		m.PageAccesses += st.PageAccesses
		m.Preranked += st.Preranked
		m.NormPruned += st.NormPruned
		m.GroupsProbed += st.GroupsProbed
		if st.Radius > m.Radius {
			m.Radius = st.Radius
		}
		if st.ExtendedRadius > m.ExtendedRadius {
			m.ExtendedRadius = st.ExtendedRadius
		}
		if st.TerminatedBy != "" && !seen[st.TerminatedBy] {
			seen[st.TerminatedBy] = true
			reasons = append(reasons, st.TerminatedBy)
		}
	}
	m.TerminatedBy = strings.Join(reasons, "+")
	return m
}

// Aggregations over child indexes, shared by Index and Follower.

func sumLen(children []*promips.Index) int {
	n := 0
	for _, c := range children {
		n += c.Len()
	}
	return n
}

func sumLive(children []*promips.Index) int {
	n := 0
	for _, c := range children {
		n += c.LiveCount()
	}
	return n
}

func sumJournal(children []*promips.Index) int {
	n := 0
	for _, c := range children {
		n += c.JournalLen()
	}
	return n
}

func journalLens(children []*promips.Index) []int {
	ls := make([]int, len(children))
	for s, c := range children {
		ls[s] = c.JournalLen()
	}
	return ls
}

func sumCache(children []*promips.Index) promips.CacheStats {
	var cs promips.CacheStats
	for _, c := range children {
		cs = cs.Add(c.CacheStats())
	}
	return cs
}

func sumRecovery(children []*promips.Index) promips.RecoveryStats {
	var rs promips.RecoveryStats
	for _, c := range children {
		r := c.Recovery()
		rs.Replayed += r.Replayed
		rs.Skipped += r.Skipped
		rs.TruncatedBytes += r.TruncatedBytes
	}
	return rs
}

func sumUpdateStats(children []*promips.Index) promips.UpdateStats {
	var us promips.UpdateStats
	for _, c := range children {
		u := c.UpdateStats()
		us.DeltaEntries += u.DeltaEntries
		us.Segments += u.Segments
		us.SegmentEntries += u.SegmentEntries
		us.FlushedSegments += u.FlushedSegments
		us.Tombstones += u.Tombstones
		us.Freezes += u.Freezes
		us.Flushes += u.Flushes
		us.FlushFailures += u.FlushFailures
	}
	return us
}

func sumSizes(children []*promips.Index) promips.SizeBreakdown {
	var sz promips.SizeBreakdown
	for _, c := range children {
		s := c.Sizes()
		sz.BTree += s.BTree
		sz.Projected += s.Projected
		sz.QuickProbe += s.QuickProbe
		sz.Norms += s.Norms
		sz.Sketch += s.Sketch
	}
	return sz
}
