package shard

import (
	"fmt"

	"promips"
	"promips/internal/fsutil"
)

// Promote turns a converged follower into the writable primary — the
// failover step after the old primary dies. It consumes the follower and
// returns a fully functional *Index serving from the follower's directory:
//
//  1. Final drain: one last best-effort tailing pass over the old
//     primary's journals, so any records acknowledged after the last Poll
//     but before the primary died are folded in. Errors here are ignored —
//     the usual reason to promote is that the primary is gone, and a dead
//     primary's unreadable files simply mean there is nothing left to
//     drain; what was already replicated is the state being promoted.
//  2. Durability fold: every child Saves, persisting the replicated
//     in-memory state through the metadata path. Replication applied
//     records without re-journaling them (see Follower), so before this
//     fold a crash of the NEW primary could lose replicated-but-unsaved
//     records; after it, the promoted state stands on its own disk.
//  3. Epoch fence: the SHARDS manifest is rewritten with an epoch strictly
//     above both the replica's lineage epoch and whatever epoch the old
//     primary's manifest claims now. Any follower that later sees the
//     resurrected old primary compares epochs and refuses it
//     (ErrStalePrimary) instead of replaying a forked history.
//
// A child Save failure aborts the promotion with the follower intact and
// still usable as a replica. On success the follower is consumed: its
// Poll returns ErrClosed, its Close becomes a no-op (the returned Index
// owns the children), and only the returned Index may serve traffic.
// Promote does not stop an external poll loop — callers must stop calling
// Poll concurrently with Promote (promipsd cancels its poller first).
func Promote(f *Follower) (*Index, error) {
	f.pollMu.Lock()
	defer f.pollMu.Unlock()
	if f.promoted {
		return nil, fmt.Errorf("shard: promote: follower already promoted: %w", promips.ErrClosed)
	}
	// Final drain, best-effort per shard.
	for s := range f.children {
		_, _ = f.pollShard(s)
	}
	newEpoch := f.epoch + 1
	if _, pepoch, err := f.src.Manifest(); err == nil && pepoch+1 > newEpoch {
		newEpoch = pepoch + 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for s, c := range f.children {
		if err := c.Save(); err != nil {
			return nil, fmt.Errorf("shard: promote: save shard %d: %w", s, err)
		}
	}
	if err := writeManifest(fsutil.OS, f.dir, len(f.children), newEpoch); err != nil {
		return nil, fmt.Errorf("shard: promote: %w", err)
	}
	f.promoted = true
	f.epoch = newEpoch
	f.src.Close() // the dead primary's transport is no longer needed
	return &Index{
		dir:      f.dir,
		fs:       fsutil.OS,
		children: f.children,
		epoch:    newEpoch,
		saved:    true,
	}, nil
}
