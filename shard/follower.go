package shard

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"promips"
	"promips/internal/fsutil"
	"promips/internal/wal"
)

// Follower is a read-only replica of a sharded primary, converged through
// a ReplSource — a shared filesystem (NewDirSource) or a primary
// promipsd's /v1/repl/* endpoints (NewHTTPSource) — by two mechanisms:
//
//   - Journal tailing (the fast path): every Poll reads each primary
//     shard's live write-ahead journal bytes from the replica's resumable
//     byte offset and replays them through the same idempotent path crash
//     recovery uses (promips.Index.ApplyWALChunk). The journal's
//     clean-truncation rule makes mid-append (and mid-transfer) reads
//     safe — a torn trailing record is ignored and picked up whole next
//     round — and replaying an already-applied record is a no-op. Nothing
//     is re-journaled locally.
//
//   - Snapshot refresh (the slow path): a primary Save or Compact starts
//     a new journal epoch (Save empties the journal into the metadata;
//     Compact also rewrites ids), which journal replay alone cannot
//     cross. Poll detects an epoch change — the shard's CURRENT pointer
//     or persisted metadata differs from what this replica's state was
//     built on, or the journal skips ahead of (or shrinks under) the
//     replica — and re-copies that shard's tree from the source
//     wholesale, then resumes tailing. Refreshes counts these.
//
// The replica answers Search/SearchBatch/Exact with the same fan-out
// merge as the primary. Mutating operations return ErrReadOnlyReplica.
//
// Consistency model: eventual, with a per-shard LSN watermark
// (Watermarks/Lag) measuring convergence — watermark W on shard s means
// this replica's state covers exactly the first W records of s's current
// journal epoch. Between polls the replica serves a stale but
// crash-consistent state: every applied record was acknowledged-durable
// on the primary, and records apply in primary acknowledgement order, so
// the replica only ever shows states the primary actually passed
// through (per shard). Cross-shard, a poll walks shards in order, so the
// replica can briefly show shard 0 ahead of shard 1 — the same skew a
// crash of the primary itself can expose (see DESIGN.md).
//
// The Follower assumes the primary process is live and saving/compacting
// occasionally; it never writes to the primary's tree. One poller at a
// time: Poll is serialized internally; reads run concurrently with it
// except during a shard swap.
type Follower struct {
	dir   string     // replica root (this follower owns it)
	src   ReplSource // replication transport to the primary
	epoch int64      // lineage epoch fence (see ErrStalePrimary)

	mu       sync.RWMutex // guards children swaps (refresh) vs reads
	children []*promips.Index
	marks    []followMark

	pollMu    sync.Mutex // serializes Poll; guards promoted
	promoted  bool       // set by Promote: this follower is consumed
	refreshes atomic.Int64

	faultsMu sync.Mutex // guards faults
	faults   *Faults
}

// followMark pins the primary-side state a replica shard was built from:
// the shard's CURRENT content and metadata fingerprint identify the
// journal epoch, records is the LSN watermark into that epoch's journal
// and walOff the byte offset the next TailWAL resumes from (the two
// always describe the same decode boundary).
type followMark struct {
	current string
	metaSum [sha256.Size]byte
	records int
	walOff  int64
}

// Snapshot copies a sharded primary's directory tree into replicaDir —
// the bootstrap a follower starts from. The primary should be quiescent
// or recently saved; a copy torn by a concurrent Save/Compact is caught
// at OpenFollower (or by the first Poll's refresh) rather than silently
// served. replicaDir must not exist or be empty.
func Snapshot(primaryDir, replicaDir string) error {
	return SnapshotFrom(NewDirSource(primaryDir), replicaDir)
}

// OpenFollower opens replicaDir — a Snapshot of (or a previous follower
// state for) the primary at primaryDir — as a read-only replica tailing
// the primary over the shared filesystem.
func OpenFollower(replicaDir, primaryDir string) (*Follower, error) {
	return OpenFollowerFrom(replicaDir, NewDirSource(primaryDir))
}

// OpenFollowerFrom opens replicaDir as a read-only replica converging
// from src. Each shard reopens through the normal recovery path, so the
// snapshot's own journal records are folded in; convergence marks are
// initialized from the replica's files, which makes a follower restart
// safe: whatever the previous process had applied beyond its snapshot is
// simply re-applied from the primary's journal on the first Poll (replay
// is idempotent). The follower owns src and closes it on Close.
func OpenFollowerFrom(replicaDir string, src ReplSource) (*Follower, error) {
	k, epoch, err := readManifest(fsutil.OS, replicaDir)
	if err != nil {
		return nil, fmt.Errorf("shard: open follower: %w", err)
	}
	if pk, pepoch, err := src.Manifest(); err == nil {
		if pk != k {
			return nil, fmt.Errorf("shard: open follower: replica has %d shards, primary %s has %d: %w",
				k, src, pk, promips.ErrCorruptIndex)
		}
		// Epoch fence: a primary below this replica's lineage epoch is a
		// resurrected pre-failover primary — refusing it here is what makes
		// the epoch bump in Promote an actual fence.
		if pepoch < epoch {
			return nil, fmt.Errorf("shard: open follower: primary %s at epoch %d, replica at %d: %w",
				src, pepoch, epoch, promips.ErrStalePrimary)
		}
		if pepoch > epoch {
			// The primary is a promoted lineage ahead of this snapshot;
			// adopt its epoch — the first Poll's refreshes converge state.
			epoch = pepoch
		}
	}
	f := &Follower{
		dir:      replicaDir,
		src:      src,
		epoch:    epoch,
		children: make([]*promips.Index, 0, k),
		marks:    make([]followMark, k),
	}
	f.stampSource()
	for s := 0; s < k; s++ {
		childDir := filepath.Join(replicaDir, shardDirName(s))
		child, err := promips.Open(childDir)
		if err != nil {
			f.closeChildren()
			return nil, fmt.Errorf("shard: open follower shard %d: %w", s, err)
		}
		f.children = append(f.children, child)
		mark, err := markOf(childDir)
		if err != nil {
			f.closeChildren()
			return nil, fmt.Errorf("shard: follower shard %d mark: %w", s, err)
		}
		f.marks[s] = mark
	}
	return f, nil
}

// peerEpochSetter is implemented by sources that attach the follower's
// lineage epoch to every request (the HTTP source), so a primary that has
// been overtaken by a promotion learns it from the next pull and
// self-fences instead of keeping its write path open.
type peerEpochSetter interface{ SetPeerEpoch(epoch int64) }

// stampSource tells an epoch-aware source the lineage epoch this replica
// currently follows under. Caller holds pollMu (or is still constructing).
func (f *Follower) stampSource() {
	if ps, ok := f.src.(peerEpochSetter); ok {
		ps.SetPeerEpoch(f.epoch)
	}
}

// Poll converges the replica one round: for every shard, refresh from a
// primary snapshot if the shard's journal epoch changed (Save/Compact on
// the primary), otherwise ship and replay the primary's journal bytes
// from the shard's resumable offset. Returns the number of new records
// applied this round.
//
// Per-shard errors are isolated, not fatal to the round: a shard whose
// primary-side read fails transiently is skipped — its watermark and
// served state untouched — while the remaining shards still converge; the
// first error is returned after the full walk so callers can log it, and
// the next Poll retries the skipped shard from the same watermark. Two
// errors do abort the round up front: ErrStalePrimary (the primary's
// manifest epoch fell below this replica's lineage — a resurrected
// pre-failover primary whose journals must not be applied; per-shard
// reads also refuse responses stamped with a stale epoch mid-stream) and
// ErrClosed after Promote consumed this follower. Poll calls are
// serialized; reads stay concurrent except during a shard swap.
func (f *Follower) Poll() (applied int, err error) {
	f.pollMu.Lock()
	defer f.pollMu.Unlock()
	if f.promoted {
		return 0, fmt.Errorf("shard: poll: follower was promoted: %w", promips.ErrClosed)
	}
	if err := f.fenceEpoch(); err != nil {
		return 0, err
	}
	var firstErr error
	for s := range f.children {
		n, err := f.pollShard(s)
		applied += n
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard: poll shard %d: %w", s, err)
		}
	}
	return applied, firstErr
}

// fenceEpoch re-reads the primary's manifest epoch and enforces the
// lineage fence. A transiently unreadable primary manifest is not an
// error here (the per-shard reads will surface real problems) — unless
// the source itself reports ErrStalePrimary, which IS the fence firing.
// An epoch below ours is ErrStalePrimary, an epoch above ours is adopted.
// Caller holds pollMu.
func (f *Follower) fenceEpoch() error {
	_, pepoch, err := f.src.Manifest()
	if err != nil {
		if errors.Is(err, promips.ErrStalePrimary) {
			return fmt.Errorf("shard: poll: %w", err)
		}
		return nil
	}
	if pepoch < f.epoch {
		return fmt.Errorf("shard: poll: primary at epoch %d, replica at %d: %w",
			pepoch, f.epoch, promips.ErrStalePrimary)
	}
	if pepoch > f.epoch {
		f.epoch = pepoch
		f.stampSource()
	}
	return nil
}

// pollShard converges one shard. Caller holds pollMu.
func (f *Follower) pollShard(s int) (int, error) {
	st, err := f.src.ShardState(s)
	if err != nil {
		return 0, err
	}
	if staleStamp(st.Epoch, f.epoch) {
		return 0, errStaleStamp("shard state", st.Epoch, f.epoch)
	}
	f.mu.RLock()
	mark := f.marks[s]
	child := f.children[s]
	f.mu.RUnlock()
	if st.Current != mark.current || st.MetaSum != mark.metaSum {
		// New journal epoch: the primary saved (journal folded into meta —
		// meta fingerprint moves even when CURRENT does not, e.g. a
		// delete-only epoch) or compacted (CURRENT names a new
		// generation). Journal replay cannot cross an epoch; re-snapshot.
		return 0, f.refreshShard(s)
	}
	chunk, err := f.src.TailWAL(s, mark.walOff)
	if err != nil {
		return 0, err
	}
	if staleStamp(chunk.Epoch, f.epoch) {
		return 0, errStaleStamp("wal chunk", chunk.Epoch, f.epoch)
	}
	if chunk.Size < mark.walOff {
		// The journal shrank under us: a Save/Compact truncated it between
		// the fingerprint read and the tail read. Re-snapshot.
		return 0, f.refreshShard(s)
	}
	res, err := child.ApplyWALChunk(chunk.Data, mark.walOff > 0)
	if err != nil {
		// The journal skips ahead of this replica (it missed an epoch
		// boundary between our two reads) or cannot be decoded against
		// this state: fall back to a snapshot refresh.
		return 0, f.refreshShard(s)
	}
	f.mu.Lock()
	f.marks[s].records += res.Records
	f.marks[s].walOff += res.Bytes
	f.mu.Unlock()
	return res.Applied, nil
}

// refreshShard replaces replica shard s with a fresh copy of the
// primary's. The new copy is opened BEFORE the old child is swapped out,
// so a torn copy (primary saving mid-walk, transport cut mid-stream)
// leaves the old shard serving and the next Poll retries.
func (f *Follower) refreshShard(s int) error {
	final := filepath.Join(f.dir, shardDirName(s))
	tmp := final + ".refresh"
	os.RemoveAll(tmp)
	if err := f.src.SnapshotShard(s, tmp); err != nil {
		os.RemoveAll(tmp)
		return fmt.Errorf("refresh copy: %w", err)
	}
	child, err := promips.Open(tmp)
	if err != nil {
		os.RemoveAll(tmp)
		return fmt.Errorf("refresh open: %w", err)
	}
	mark, err := markOf(tmp)
	if err != nil {
		child.Close()
		os.RemoveAll(tmp)
		return fmt.Errorf("refresh mark: %w", err)
	}
	f.mu.Lock()
	old := f.children[s]
	f.children[s] = child
	f.marks[s] = mark
	f.mu.Unlock()
	old.Close()
	// Install the copy under its final name. The open child's descriptors
	// survive the rename (and even an unlink by a later refresh) — the
	// follower never writes through paths. Best-effort: a failure leaves
	// the copy serving from the .refresh name until the next refresh.
	os.RemoveAll(final)
	os.Rename(tmp, final)
	f.refreshes.Add(1)
	return nil
}

// Watermarks returns each shard's replication LSN watermark: how many
// records of the primary shard's current journal epoch this replica's
// state covers, in shard order.
func (f *Follower) Watermarks() []int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ws := make([]int64, len(f.marks))
	for s, m := range f.marks {
		ws[s] = int64(m.records)
	}
	return ws
}

// Lag measures how far this replica trails the primary, in acknowledged
// journal records summed over shards: primary records present now minus
// this replica's watermarks. 0 means converged as of the read; a
// negative component is clamped (the primary started a new epoch the
// replica has not polled yet — the true lag is unknown until it does).
func (f *Follower) Lag() (int64, error) {
	f.mu.RLock()
	marks := make([]followMark, len(f.marks))
	copy(marks, f.marks)
	f.mu.RUnlock()
	var lag int64
	for s, m := range marks {
		st, err := f.src.ShardState(s)
		if err != nil {
			return 0, fmt.Errorf("shard: lag shard %d: %w", s, err)
		}
		if d := st.WALRecords - int64(m.records); d > 0 {
			lag += d
		}
	}
	return lag, nil
}

// Refreshes returns how many snapshot refreshes this follower has
// performed (epoch crossings: primary Saves/Compacts caught up with).
func (f *Follower) Refreshes() int64 { return f.refreshes.Load() }

// Search answers against the replica's current state with the same
// fan-out merge — and the same (c, p) composition — as the primary.
func (f *Follower) Search(ctx context.Context, q []float32, k int, opts ...promips.SearchOption) ([]promips.Result, promips.SearchStats, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return fanSearch(ctx, f.children, f.getFaults(), q, k, opts)
}

// SearchBatch answers many queries against the replica's current state.
func (f *Follower) SearchBatch(ctx context.Context, queries [][]float32, k int, opts ...promips.SearchOption) ([][]promips.Result, []promips.SearchStats, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return fanBatch(ctx, f.children, f.getFaults(), queries, k, opts)
}

// Exact returns the exact top-k over the replica's current state.
func (f *Follower) Exact(ctx context.Context, q []float32, k int) ([]promips.Result, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return fanExact(ctx, f.children, q, k)
}

// Insert always fails: replicas converge by replaying the primary's
// journal, and a direct write would fork the id space.
func (f *Follower) Insert(v []float32) (uint32, error) {
	return 0, fmt.Errorf("shard: insert: %w", promips.ErrReadOnlyReplica)
}

// Delete always fails; see Insert.
func (f *Follower) Delete(id uint32) bool { return false }

// DeleteChecked always fails; see Insert.
func (f *Follower) DeleteChecked(id uint32) (bool, error) {
	return false, fmt.Errorf("shard: delete: %w", promips.ErrReadOnlyReplica)
}

// Save always fails: the replica's directory is a cache of the primary's
// state, not an independent lineage.
func (f *Follower) Save() error {
	return fmt.Errorf("shard: save: %w", promips.ErrReadOnlyReplica)
}

// Close releases every replica shard and the replication source. The
// replica directory is kept: a restarted follower reopens it and catches
// up from the primary's journals instead of re-copying everything. After
// Promote, Close is a no-op: the children now belong to the promoted
// Index, whose own Close releases them.
func (f *Follower) Close() error {
	f.pollMu.Lock()
	defer f.pollMu.Unlock()
	if f.promoted {
		return nil
	}
	f.src.Close()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closeChildrenLocked()
}

func (f *Follower) closeChildren() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closeChildrenLocked()
}

func (f *Follower) closeChildrenLocked() error {
	var first error
	for _, c := range f.children {
		if c == nil {
			continue
		}
		if err := c.Close(); first == nil {
			first = err
		}
	}
	return first
}

// Shards returns the shard count K.
func (f *Follower) Shards() int { return len(f.children) }

// Epoch returns the lineage epoch this replica follows under — the fence
// a resurrected pre-failover primary is measured against.
func (f *Follower) Epoch() int64 {
	f.pollMu.Lock()
	defer f.pollMu.Unlock()
	return f.epoch
}

// Dir returns the replica's directory.
func (f *Follower) Dir() string { return f.dir }

// Source names the replication source this follower converges from.
func (f *Follower) Source() string { return f.src.String() }

// Len returns the total disk-resident points in the replica's state.
func (f *Follower) Len() int { f.mu.RLock(); defer f.mu.RUnlock(); return sumLen(f.children) }

// LiveCount returns the total live points in the replica's state.
func (f *Follower) LiveCount() int { f.mu.RLock(); defer f.mu.RUnlock(); return sumLive(f.children) }

// Dim returns the dataset dimensionality.
func (f *Follower) Dim() int { f.mu.RLock(); defer f.mu.RUnlock(); return f.children[0].Dim() }

// M returns the projected dimensionality in use.
func (f *Follower) M() int { f.mu.RLock(); defer f.mu.RUnlock(); return f.children[0].M() }

// JournalLen returns the replicated-but-unsaved record count across
// shards (the replica's own journals only grow by snapshot copy).
func (f *Follower) JournalLen() int { f.mu.RLock(); defer f.mu.RUnlock(); return sumJournal(f.children) }

// JournalLens returns each replica shard's journal length in shard order.
func (f *Follower) JournalLens() []int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return journalLens(f.children)
}

// JournalPoisoned reports whether any replica shard's journal writer is
// poisoned. Replica journals only grow by snapshot copy, so this is
// normally always false; it exists so promipsd can serve one readiness
// surface for both roles.
func (f *Follower) JournalPoisoned() bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, c := range f.children {
		if c.JournalPoisoned() {
			return true
		}
	}
	return false
}

// Recovery sums what every replica shard's journal replay recovered.
func (f *Follower) Recovery() promips.RecoveryStats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return sumRecovery(f.children)
}

// CacheStats sums the replica's buffer-pool counters.
func (f *Follower) CacheStats() promips.CacheStats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return sumCache(f.children)
}

// UpdateStats sums the replica's update-pipeline state across shards. A
// follower's segments come from WAL replay (its children freeze on the
// same thresholds the primary does), never from local writes, and a
// follower never compacts — segments fold only when a refreshed snapshot
// replaces the child wholesale or the follower is promoted.
func (f *Follower) UpdateStats() promips.UpdateStats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return sumUpdateStats(f.children)
}

// epochOf fingerprints a primary shard's current journal epoch: the raw
// CURRENT content, the generation it names, and a digest of that
// generation's persisted metadata. Reads go through fsys so the fault
// harness can inject transient primary-side read failures.
func epochOf(fsys fsutil.FS, shardDir string) (current, gen string, metaSum [sha256.Size]byte, err error) {
	curB, err := fsys.ReadFile(filepath.Join(shardDir, "CURRENT"))
	if err != nil {
		if !os.IsNotExist(err) {
			return "", "", metaSum, err
		}
		curB = nil // root layout: never compacted
	}
	current = string(curB)
	gen = strings.TrimSpace(current)
	if gen == "." {
		gen = ""
	}
	if strings.ContainsAny(gen, "/\\") {
		return "", "", metaSum, fmt.Errorf("invalid CURRENT %q: %w", gen, promips.ErrCorruptIndex)
	}
	metaB, err := fsys.ReadFile(filepath.Join(shardDir, gen, "promips.meta"))
	if err != nil && !os.IsNotExist(err) {
		return "", "", metaSum, err
	}
	return current, gen, sha256.Sum256(metaB), nil
}

// markOf builds the convergence mark for a replica shard directory: its
// own epoch fingerprint plus its journal's record count and valid byte
// length (the resumable tail offset — the replica's journal is a
// byte-for-byte prefix of the primary's for the same epoch, so its valid
// length IS the primary-side offset to resume from). Immediately after a
// snapshot these equal the primary's at copy time; on a follower restart
// they pin whatever state the replica durably holds, so the next Poll
// resumes (or refreshes) from the right place.
func markOf(shardDir string) (followMark, error) {
	current, gen, metaSum, err := epochOf(fsutil.OS, shardDir)
	if err != nil {
		return followMark{}, err
	}
	walB, err := os.ReadFile(filepath.Join(shardDir, filepath.FromSlash(gen), "wal.log"))
	if err != nil && !os.IsNotExist(err) {
		return followMark{}, err
	}
	recs, validLen, err := wal.Decode(walB)
	if err != nil {
		return followMark{}, err
	}
	return followMark{current: current, metaSum: metaSum, records: len(recs), walOff: validLen}, nil
}
