// Package shard composes K promips indexes into one logical index: a
// sharded primary (Index) that routes updates by id and fans queries out
// in parallel, and a read-only replica (Follower) that converges on a
// primary by shipping its snapshots and tailing its write-ahead journals.
//
// The id space is striped: global id g lives on shard g mod K as local id
// g div K. Build assigns point i to shard i%K, and Insert routes each new
// point to the shard whose next global id is smallest — which reproduces,
// exactly, the dense 0,1,2,… assignment a single index would have made.
// Global ids are therefore stable across shard counts: the same build +
// update sequence yields the same ids at K=1 and K=8 (deletes never free
// ids, so the emulation cannot drift). The merged Search answer carries
// the caller's (c, p) guarantee by splitting the probability budget across
// shards (see fanout.go and DESIGN.md, "Sharding & replication").
//
// Each shard is a full promips.Index in its own subdirectory — own
// generations, own CURRENT, own journal — under one root carrying a SHARDS
// manifest. Crash recovery composes per shard: each child reopens to its
// last acknowledged state independently, and because acknowledgement order
// within one shard is the only order the journal promises, the composed
// index recovers to a state some crash of a single index could also have
// produced.
package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"promips"
	"promips/internal/fsutil"
)

// Options configures Build.
type Options struct {
	// Shards is the shard count K. 0 defaults to 1; with one shard the
	// logical index is a pass-through (byte-identical answers and stats to
	// an unsharded index over the same data and options).
	Shards int

	// Dir is the root directory: the SHARDS manifest plus one shard-NNN
	// subdirectory per child. Empty means a fresh temporary directory,
	// removed on Close unless the index was Saved.
	Dir string

	// Index configures every child index. Its Dir field is ignored (the
	// children live under the root); everything else — c, p, m, page
	// geometry, pool size, fsync policy — applies per shard. Each child's
	// random seed is Index.Seed + its shard number, so shards draw
	// different projections while the whole build stays deterministic.
	Index promips.Options

	// fs is the filesystem seam (crash-injection harness); nil = the real
	// filesystem. Threaded into every child and into the manifest writes.
	fs fsutil.FS
}

// WithFS returns a copy of o writing through fsys. fsutil is an internal
// package, so only this module's tests can construct a non-default seam;
// external callers always get the real filesystem.
func (o Options) WithFS(fsys fsutil.FS) Options {
	o.fs = fsys
	return o
}

// Index is a sharded logical index over K promips.Index children. Reads
// fan out to every shard in parallel; updates route to the owning shard.
// All methods are safe for concurrent use — queries and updates go
// straight to the children, whose own locks order them against lifecycle
// operations; Save, Compact and Close serialize on the Index.
type Index struct {
	dir      string
	fs       fsutil.FS
	children []*promips.Index
	epoch    int64 // failover epoch fence (manifest); bumped by Promote

	mu      sync.Mutex // lifecycle: Save, Compact, Close
	ownsDir bool
	saved   bool
	closed  bool

	faultsMu sync.Mutex // guards faults
	faults   *Faults
}

// Build constructs a sharded index over data, assigning point i to shard
// i%K as local point i/K — global ids come out identical to an unsharded
// Build over the same data. Each shard must receive at least one point,
// so len(data) >= K is required.
func Build(data [][]float32, opts Options) (*Index, error) {
	k := opts.Shards
	if k == 0 {
		k = 1
	}
	if k < 1 || k > maxShards {
		return nil, fmt.Errorf("shard: shard count %d out of range [1, %d]", k, maxShards)
	}
	if len(data) > 0 && len(data) < k {
		return nil, fmt.Errorf("shard: %d points cannot populate %d shards (need at least one point per shard)", len(data), k)
	}
	dir := opts.Dir
	ownsDir := false
	if dir == "" {
		d, err := os.MkdirTemp("", "promips-shards-*")
		if err != nil {
			return nil, fmt.Errorf("shard: temp dir: %w", err)
		}
		dir, ownsDir = d, true
	}
	fsys := opts.fs
	if fsys == nil {
		fsys = fsutil.OS
	}
	// Round-robin partition, order-preserving within each shard: shard s
	// gets points s, s+K, s+2K, … as locals 0, 1, 2, …
	parts := make([][][]float32, k)
	for s := range parts {
		parts[s] = make([][]float32, 0, (len(data)+k-1-s)/k)
	}
	for i, v := range data {
		parts[i%k] = append(parts[i%k], v)
	}
	ix := &Index{dir: dir, fs: fsys, children: make([]*promips.Index, 0, k), ownsDir: ownsDir}
	for s := 0; s < k; s++ {
		childDir := filepath.Join(dir, shardDirName(s))
		if err := os.MkdirAll(childDir, 0o755); err != nil {
			ix.abortBuild()
			return nil, fmt.Errorf("shard: %w", err)
		}
		childOpts := opts.Index
		childOpts.Dir = childDir
		childOpts.Seed += int64(s)
		child, err := promips.Build(parts[s], childOpts.WithFS(fsys))
		if err != nil {
			ix.abortBuild()
			return nil, fmt.Errorf("shard: build shard %d: %w", s, err)
		}
		ix.children = append(ix.children, child)
	}
	return ix, nil
}

// abortBuild tears down a partially built index: close what was built and
// remove the root if Build created it.
func (ix *Index) abortBuild() {
	for _, c := range ix.children {
		c.Close()
	}
	if ix.ownsDir {
		os.RemoveAll(ix.dir)
	}
}

// Open loads a sharded index previously persisted with Save: the SHARDS
// manifest fixes K, and every child reopens through promips.Open —
// replaying its own write-ahead journal, so acknowledged updates on every
// shard survive a crash. A directory without a manifest surfaces the
// underlying not-exist error (use promips.Open for unsharded
// directories; IsSharded tells them apart); a manifest naming shards
// whose directories cannot be loaded surfaces that child's error.
func Open(dir string) (*Index, error) {
	k, epoch, err := readManifest(fsutil.OS, dir)
	if err != nil {
		if notExist(err) {
			return nil, fmt.Errorf("shard: open %s: %w (no %s manifest — not a sharded index)", dir, err, manifestFile)
		}
		return nil, err
	}
	ix := &Index{dir: dir, fs: fsutil.OS, children: make([]*promips.Index, 0, k), epoch: epoch, saved: true}
	for s := 0; s < k; s++ {
		child, err := promips.Open(filepath.Join(dir, shardDirName(s)))
		if err != nil {
			for _, c := range ix.children {
				c.Close()
			}
			return nil, fmt.Errorf("shard: open shard %d: %w", s, err)
		}
		ix.children = append(ix.children, child)
	}
	return ix, nil
}

// Search returns the global top-k c-AMIP points for q, fanned out across
// all shards in parallel and merged with a deterministic (inner product
// desc, id asc) order. The caller's (c, p) guarantee holds over the
// merged result: each shard runs at p_shard = 1 − (1−p)/K, so by the
// union bound every per-shard guarantee holds simultaneously with
// probability ≥ p, and the per-shard c-approximations compose (fanout.go).
// WithC/WithP/WithFilter apply globally; the filter sees global ids.
func (ix *Index) Search(ctx context.Context, q []float32, k int, opts ...promips.SearchOption) ([]promips.Result, promips.SearchStats, error) {
	return fanSearch(ctx, ix.children, ix.getFaults(), q, k, opts)
}

// SearchBatch answers many queries with a bounded worker pool (WithWorkers
// sizes it); each in-flight query fans out across all K shards, so disk
// I/O overlaps workers×K ways. Answers are identical to sequential Search
// calls.
func (ix *Index) SearchBatch(ctx context.Context, queries [][]float32, k int, opts ...promips.SearchOption) ([][]promips.Result, []promips.SearchStats, error) {
	return fanBatch(ctx, ix.children, ix.getFaults(), queries, k, opts)
}

// Exact returns the exact global top-k by scanning every shard in
// parallel — the ground truth Search approximates.
func (ix *Index) Exact(ctx context.Context, q []float32, k int) ([]promips.Result, error) {
	return fanExact(ctx, ix.children, q, k)
}

// Insert adds a point and returns its global id. The point routes to the
// shard whose next global id (nextLocal·K + s) is smallest — exactly the
// id a single index would have assigned next, since ids are never freed.
// Durability is the owning shard's: the insert is journaled under the
// child's fsync policy before it is acknowledged.
//
// Routing reads the shards' next-id watermarks without a global lock, so
// two perfectly concurrent Inserts may land on the same shard in either
// order — ids stay unique and dense per shard either way; only the
// emulated single-index numbering assumes one insert at a time.
func (ix *Index) Insert(v []float32) (uint32, error) {
	k := len(ix.children)
	best, bestGlobal := 0, uint32(0)
	for s, c := range ix.children {
		g := c.NextID()*uint32(k) + uint32(s)
		if s == 0 || g < bestGlobal {
			best, bestGlobal = s, g
		}
	}
	local, err := ix.children[best].Insert(v)
	if err != nil {
		return 0, fmt.Errorf("shard %d: %w", best, err)
	}
	return local*uint32(k) + uint32(best), nil
}

// Delete tombstones the point with global id and reports whether it was
// live, conflating failure modes like promips.Index.Delete.
func (ix *Index) Delete(id uint32) bool {
	ok, _ := ix.DeleteChecked(id)
	return ok
}

// DeleteChecked tombstones like Delete but surfaces failure modes as
// typed errors; see promips.Index.DeleteChecked. An id beyond every
// shard's range is (false, nil) — absent, like a never-assigned id on a
// single index.
func (ix *Index) DeleteChecked(id uint32) (bool, error) {
	k := uint32(len(ix.children))
	s := id % k
	ok, err := ix.children[s].DeleteChecked(id / k)
	if err != nil {
		return ok, fmt.Errorf("shard %d: %w", s, err)
	}
	return ok, nil
}

// Save persists every shard — each child folds its delta and tombstones
// into its metadata and empties its journal — then durably writes the
// SHARDS manifest, marking the root as a saved, openable sharded index.
// Children save in shard order; a failure surfaces immediately, leaving
// already-saved shards saved (re-running Save is idempotent). A crash
// mid-sequence is safe for the same reason single-index Save-crash is:
// each shard independently recovers its acknowledged state from meta +
// journal, whichever side of its own Save it crashed on.
func (ix *Index) Save() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return promips.ErrClosed
	}
	for s, c := range ix.children {
		if err := c.Save(); err != nil {
			return fmt.Errorf("shard: save shard %d: %w", s, err)
		}
	}
	if err := writeManifest(ix.fs, ix.dir, len(ix.children), ix.epoch); err != nil {
		return err
	}
	ix.saved = true
	return nil
}

// Compact folds every shard's delta into its disk-resident structures and
// drops tombstones, shard by shard; searches keep answering throughout
// (each child compacts behind its own generation swap). Local ids are
// reassigned densely per shard, so global ids change; the returned map
// gives newGlobalID → oldGlobalID for every surviving point. (A map, not
// a slice: per-shard dense local ids do not compose into dense global
// ids once shard sizes diverge.) A shard whose points are all deleted is
// left uncompacted (ErrEmptyIndex is skipped — it still serves deletes'
// tombstones); any other error stops the sequence, leaving earlier shards
// compacted and the rest untouched, with the partial remap returned.
func (ix *Index) Compact(ctx context.Context) (map[uint32]uint32, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return nil, promips.ErrClosed
	}
	k := uint32(len(ix.children))
	remap := make(map[uint32]uint32)
	for s, c := range ix.children {
		childRemap, err := c.Compact(ctx)
		if err != nil {
			if errors.Is(err, promips.ErrEmptyIndex) {
				continue
			}
			return remap, fmt.Errorf("shard: compact shard %d: %w", s, err)
		}
		for newLocal, oldLocal := range childRemap {
			remap[uint32(newLocal)*k+uint32(s)] = oldLocal*k + uint32(s)
		}
	}
	return remap, nil
}

// Close releases every shard. When Build created a temporary root and the
// index was never Saved, the root is removed.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return promips.ErrClosed
	}
	ix.closed = true
	var first error
	for _, c := range ix.children {
		if err := c.Close(); first == nil {
			first = err
		}
	}
	if ix.ownsDir && !ix.saved {
		if err := os.RemoveAll(ix.dir); first == nil {
			first = err
		}
	}
	return first
}

// Shards returns the shard count K.
func (ix *Index) Shards() int { return len(ix.children) }

// Epoch returns the failover epoch fence this primary serves under: 0 for
// an original Build lineage, and one past the superseded primary's epoch
// after every Promote. Followers refuse primaries below their own epoch.
func (ix *Index) Epoch() int64 { return ix.epoch }

// Dir returns the root directory (SHARDS manifest + shard
// subdirectories).
func (ix *Index) Dir() string { return ix.dir }

// Len returns the total number of points in the disk-resident shards.
func (ix *Index) Len() int { return sumLen(ix.children) }

// LiveCount returns the total number of live points across all shards.
func (ix *Index) LiveCount() int { return sumLive(ix.children) }

// Dim returns the dataset dimensionality (uniform across shards).
func (ix *Index) Dim() int { return ix.children[0].Dim() }

// M returns the projected dimensionality in use (uniform across shards:
// every child is built from the same options over same-dimensional data).
func (ix *Index) M() int { return ix.children[0].M() }

// Options returns the resolved per-shard index options. They are
// identical across shards except for Dir and Seed, which are the first
// shard's.
func (ix *Index) Options() promips.Options { return ix.children[0].Options() }

// JournalLen returns the total acknowledged updates pending across all
// shard journals.
func (ix *Index) JournalLen() int { return sumJournal(ix.children) }

// JournalLens returns each shard's pending journal length, in shard
// order — the per-shard replication/recovery watermarks promipsd reports.
func (ix *Index) JournalLens() []int { return journalLens(ix.children) }

// JournalPoisoned reports whether any shard's journal writer is poisoned:
// an append-path write/fsync failed, so new updates are being refused
// (ErrJournalPoisoned) until the process restarts. Serving layers use it
// to fail writes fast at readiness rather than per-request.
func (ix *Index) JournalPoisoned() bool {
	for _, c := range ix.children {
		if c.JournalPoisoned() {
			return true
		}
	}
	return false
}

// Recovery sums what every shard's journal replay recovered at Open.
func (ix *Index) Recovery() promips.RecoveryStats { return sumRecovery(ix.children) }

// UpdateStats sums the update-pipeline state — delta sizes, frozen and
// flushed segments, tombstones, freeze/flush counters — across all shards.
func (ix *Index) UpdateStats() promips.UpdateStats { return sumUpdateStats(ix.children) }

// StartAutoCompact launches a background scheduler that compacts each
// shard once at least minFlushed of ITS frozen segments are durable in
// their own seg files (the per-shard watermark, not the sum — compaction
// is a per-child rebuild, so only children that actually accumulated
// segments pay for one). Like promips.Index.StartAutoCompact, the
// compactions reassign ids — here global ids, since the shard-local dense
// renumbering composes through the striping — so enable it only when no
// external system holds ids across compactions. Stop the returned
// scheduler before Close; a follower must never run one.
func (ix *Index) StartAutoCompact(minFlushed int) *promips.AutoCompactor {
	if minFlushed < 1 {
		minFlushed = 1
	}
	due := func(c *promips.Index) bool {
		return c.UpdateStats().FlushedSegments >= minFlushed
	}
	return promips.NewAutoCompactor(
		func() bool {
			for _, c := range ix.children {
				if due(c) {
					return true
				}
			}
			return false
		},
		func(ctx context.Context) error {
			var first error
			for s, c := range ix.children {
				if err := ctx.Err(); err != nil {
					return err
				}
				if !due(c) {
					continue
				}
				if _, err := c.Compact(ctx); err != nil && !errors.Is(err, promips.ErrEmptyIndex) && first == nil {
					first = fmt.Errorf("shard %d: %w", s, err)
				}
			}
			return first
		},
	)
}

// CacheStats sums the buffer-pool counters of every shard's I/O engine.
func (ix *Index) CacheStats() promips.CacheStats { return sumCache(ix.children) }

// Sizes sums the storage footprint of every shard.
func (ix *Index) Sizes() promips.SizeBreakdown { return sumSizes(ix.children) }
