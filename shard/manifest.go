package shard

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"

	"promips"
	"promips/internal/fsutil"
)

// The SHARDS manifest is the root of a sharded index directory: a tiny
// text file recording the shard count, written atomically (temp + fsync +
// rename + directory fsync) by Save. Its presence is what distinguishes a
// sharded directory from a single-index one — promipsd and promipsctl
// auto-detect it — and its K is load-bearing: the id-space layout
// (globalID = localID·K + shard) is a pure function of K, so opening with
// the wrong K would silently mis-route every id. K is therefore fixed at
// Build and validated on every Open.
//
// The manifest also carries the directory's failover epoch — a monotonic
// fence bumped by Promote. A follower refuses to tail a primary whose
// epoch is below its own (ErrStalePrimary): that primary's lineage was
// superseded by a promotion, and replaying its journals would fork
// acknowledged history. Manifests written before epochs existed have no
// epoch line and parse as epoch 0.
//
// Format, one token pair per line (the epoch line optional on read,
// always written):
//
//	PROMIPS-SHARDS v1
//	shards <K>
//	epoch <E>
const (
	manifestFile  = "SHARDS"
	manifestMagic = "PROMIPS-SHARDS v1"
	// maxShards bounds K to keep the fan-out sane and the parser total: a
	// manifest asking for more shards than any deployment would configure
	// is corruption, not configuration.
	maxShards = 1024
)

// shardDirName names shard s's child directory under the index root.
func shardDirName(s int) string { return fmt.Sprintf("shard-%03d", s) }

// writeManifest durably records K and the failover epoch in dir.
func writeManifest(fsys fsutil.FS, dir string, k int, epoch int64) error {
	content := fmt.Sprintf("%s\nshards %d\nepoch %d\n", manifestMagic, k, epoch)
	err := fsutil.WriteAtomic(fsys, filepath.Join(dir, manifestFile), func(f fsutil.File) error {
		_, err := f.Write([]byte(content))
		return err
	})
	if err != nil {
		return fmt.Errorf("shard: write manifest: %w", err)
	}
	if err := fsutil.SyncDir(fsys, dir); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	return nil
}

// readManifest parses dir's SHARDS manifest. A missing file returns the
// underlying fs.ErrNotExist ("this is not a sharded index"); content that
// cannot be a manifest is ErrCorruptIndex — the same trust boundary
// CURRENT's parser draws (pinned by FuzzParseManifest).
func readManifest(fsys fsutil.FS, dir string) (int, int64, error) {
	b, err := fsys.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return 0, 0, err
	}
	k, epoch, err := parseManifest(b)
	if err != nil {
		return 0, 0, fmt.Errorf("shard: %s: %w", manifestFile, err)
	}
	return k, epoch, nil
}

// parseManifest validates manifest bytes and extracts K and the failover
// epoch (0 when the line is absent — pre-epoch manifests).
func parseManifest(b []byte) (int, int64, error) {
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if (len(lines) != 2 && len(lines) != 3) || lines[0] != manifestMagic {
		return 0, 0, fmt.Errorf("bad magic: %w", promips.ErrCorruptIndex)
	}
	var k int
	if _, err := fmt.Sscanf(lines[1], "shards %d", &k); err != nil {
		return 0, 0, fmt.Errorf("bad shard count line %q: %w", lines[1], promips.ErrCorruptIndex)
	}
	if k < 1 || k > maxShards {
		return 0, 0, fmt.Errorf("implausible shard count %d: %w", k, promips.ErrCorruptIndex)
	}
	var epoch int64
	if len(lines) == 3 {
		if _, err := fmt.Sscanf(lines[2], "epoch %d", &epoch); err != nil {
			return 0, 0, fmt.Errorf("bad epoch line %q: %w", lines[2], promips.ErrCorruptIndex)
		}
		if epoch < 0 {
			return 0, 0, fmt.Errorf("negative epoch %d: %w", epoch, promips.ErrCorruptIndex)
		}
	}
	return k, epoch, nil
}

// IsSharded reports whether dir holds a sharded index — a valid SHARDS
// manifest. Serving and tooling use it to pick Open vs promips.Open. An
// unreadable or invalid manifest reports false; Open will surface the
// real error.
func IsSharded(dir string) bool {
	k, _, err := readManifest(fsutil.OS, dir)
	return err == nil && k >= 1
}

// notExist reports whether err means the manifest simply is not there.
func notExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
