package shard

// The sharded crash matrix: the same discipline as the root package's
// TestCrashMatrix, against the composed index. One canonical lifecycle
// workload — Build → Save → Insert/Delete → Save → Compact → update →
// Save — runs through the fault-injecting filesystem (shared by every
// child index AND the manifest writes), once per mutating operation,
// crashing at exactly that operation. Reopening with the real filesystem
// must always yield the pre- or post-state of the step in flight: a crash
// must never leave the shards at a combination of acked states no
// single-operation boundary could produce, and never surface as corrupt.
// This works because every step is one acknowledged operation against ONE
// shard (updates route), or a no-op on the logical state (Save, Compact —
// the signature deliberately excludes ids), so per-shard atomicity
// composes.

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"promips"
	"promips/internal/fsutil"
)

type crashSig struct {
	Live  int
	IPs   [][]uint64
	Exact []uint64
}

func signatureOf(t *testing.T, ix *Index, probes [][]float32) crashSig {
	t.Helper()
	sig := crashSig{Live: ix.LiveCount()}
	for _, q := range probes {
		res, _, err := ix.Search(context.Background(), q, 5)
		if err != nil {
			t.Fatalf("probe search: %v", err)
		}
		bits := make([]uint64, len(res))
		for i, r := range res {
			bits[i] = math.Float64bits(r.IP)
		}
		sig.IPs = append(sig.IPs, bits)
	}
	all, err := ix.Exact(context.Background(), probes[0], ix.LiveCount()+1)
	if err != nil {
		t.Fatalf("probe exact: %v", err)
	}
	for _, r := range all {
		sig.Exact = append(sig.Exact, math.Float64bits(r.IP))
	}
	return sig
}

type crashStep struct {
	name string
	run  func(ix *Index) error
}

func crashWorkloadSteps(points [][]float32) []crashStep {
	return []crashStep{
		{"save-initial", func(ix *Index) error { return ix.Save() }},
		{"insert-40", func(ix *Index) error { _, err := ix.Insert(points[0]); return err }},
		{"insert-41", func(ix *Index) error { _, err := ix.Insert(points[1]); return err }},
		{"delete-base-5", func(ix *Index) error { _, err := ix.DeleteChecked(5); return err }},
		{"delete-delta-41", func(ix *Index) error { _, err := ix.DeleteChecked(41); return err }},
		{"save-with-delta", func(ix *Index) error { return ix.Save() }},
		{"insert-42", func(ix *Index) error { _, err := ix.Insert(points[2]); return err }},
		{"compact", func(ix *Index) error { _, err := ix.Compact(context.Background()); return err }},
		{"insert-post-compact", func(ix *Index) error { _, err := ix.Insert(points[3]); return err }},
		{"delete-post-compact-7", func(ix *Index) error { _, err := ix.DeleteChecked(7); return err }},
		{"save-final", func(ix *Index) error { return ix.Save() }},
	}
}

func runCrashWorkload(fsys fsutil.FS, dir string, data, points [][]float32,
	stopOnError bool, record func(*Index)) (completed int, ix *Index, firstErr error) {
	ix, err := Build(data, Options{Shards: 2, Dir: dir, Index: promips.Options{Seed: 42, M: 4}}.WithFS(fsys))
	if err != nil {
		return -1, nil, err
	}
	if record != nil {
		record(ix)
	}
	for _, st := range crashWorkloadSteps(points) {
		if err := st.run(ix); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("step %s: %w", st.name, err)
			}
			if stopOnError {
				return completed, ix, firstErr
			}
			continue
		}
		completed++
		if record != nil {
			record(ix)
		}
	}
	return completed, ix, firstErr
}

func crashMatrixInputs() (data, points, probes [][]float32) {
	r := rand.New(rand.NewSource(4242))
	data = randData(r, 40, 8)
	points = randData(r, 4, 8)
	probes = randData(r, 3, 8)
	return
}

// TestShardedCrashMatrix is the crash pass: every fault point, crash,
// reopen through shard.Open with the real filesystem.
func TestShardedCrashMatrix(t *testing.T) {
	data, points, probes := crashMatrixInputs()

	counter := &fsutil.FaultFS{}
	var sigs []crashSig
	completed, ix, err := runCrashWorkload(counter, t.TempDir(), data, points, true,
		func(ix *Index) { sigs = append(sigs, signatureOf(t, ix, probes)) })
	if err != nil {
		t.Fatalf("fault-free workload failed: %v", err)
	}
	steps := crashWorkloadSteps(points)
	if completed != len(steps) {
		t.Fatalf("fault-free workload completed %d of %d steps", completed, len(steps))
	}
	ix.Close()
	opCount := counter.Ops()
	if opCount < len(steps) {
		t.Fatalf("implausible op count %d", opCount)
	}
	t.Logf("workload: %d steps, %d mutating fs ops", len(steps), opCount)

	for fail := 1; fail <= opCount; fail++ {
		ffs := &fsutil.FaultFS{FailAt: fail, Crash: true}
		dir := t.TempDir()
		completed, ix, runErr := runCrashWorkload(ffs, dir, data, points, true, nil)
		if ix != nil {
			ix.Close()
		}
		if runErr == nil {
			t.Fatalf("fail=%d: crash was not observed by any step", fail)
		}
		if !ffs.Crashed() {
			t.Fatalf("fail=%d: workload errored (%v) without reaching the fault", fail, runErr)
		}

		re, err := Open(dir)
		if err != nil {
			if errors.Is(err, promips.ErrCorruptIndex) {
				t.Fatalf("fail=%d (crash at %v): reopen says corrupt: %v", fail, runErr, err)
			}
			if completed >= 1 {
				// The first Save wrote the manifest last, so from then on
				// every crash state must be openable as a sharded index.
				t.Fatalf("fail=%d: %d steps completed but reopen failed: %v", fail, completed, err)
			}
			if !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("fail=%d: pre-first-Save reopen failed with unexpected class: %v", fail, err)
			}
			continue
		}
		sig := signatureOf(t, re, probes)
		if err := re.Close(); err != nil {
			t.Fatalf("fail=%d: close reopened: %v", fail, err)
		}
		if completed < 0 {
			t.Fatalf("fail=%d: Build crashed (%v) yet the directory opens", fail, runErr)
		}
		ok := reflect.DeepEqual(sig, sigs[completed])
		if !ok && completed+1 < len(sigs) {
			ok = reflect.DeepEqual(sig, sigs[completed+1])
		}
		if !ok {
			t.Fatalf("fail=%d: reopened state after crash in step %d (%v) matches neither pre nor post signature",
				fail, completed+1, runErr)
		}
	}
}

// TestShardedCrashMatrixTransient is the transient pass: a one-shot error
// at every fault point, the process keeps serving, and the final state —
// exactly the acknowledged updates — round-trips through Save+Open.
func TestShardedCrashMatrixTransient(t *testing.T) {
	data, points, probes := crashMatrixInputs()

	counter := &fsutil.FaultFS{}
	if _, ix, err := runCrashWorkload(counter, t.TempDir(), data, points, true, nil); err != nil {
		t.Fatalf("fault-free workload failed: %v", err)
	} else {
		ix.Close()
	}
	opCount := counter.Ops()

	for fail := 1; fail <= opCount; fail++ {
		ffs := &fsutil.FaultFS{FailAt: fail}
		dir := t.TempDir()
		_, ix, runErr := runCrashWorkload(ffs, dir, data, points, false, nil)
		if ix == nil {
			if _, err := Open(dir); err == nil || errors.Is(err, promips.ErrCorruptIndex) {
				t.Fatalf("fail=%d: build-failed dir opened (or corrupt): %v", fail, err)
			}
			continue
		}
		if err := ix.Save(); err != nil {
			t.Fatalf("fail=%d (fault was %v): Save after transient fault: %v", fail, runErr, err)
		}
		want := signatureOf(t, ix, probes)
		if err := ix.Close(); err != nil {
			t.Fatalf("fail=%d: close: %v", fail, err)
		}
		re, err := Open(dir)
		if err != nil {
			t.Fatalf("fail=%d: reopen after healed transient fault: %v", fail, err)
		}
		if got := signatureOf(t, re, probes); !reflect.DeepEqual(got, want) {
			t.Fatalf("fail=%d (fault was %v): reopened state diverged from the live index", fail, runErr)
		}
		if rec := re.Recovery(); rec.Replayed != 0 {
			t.Fatalf("fail=%d: replay after a successful Save replayed %d records", fail, rec.Replayed)
		}
		re.Close()
	}
}
