package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"promips"
)

// startHTTPFollower serves primary's tree over the replication wire and
// bootstraps a follower from it with NO shared filesystem access: the
// snapshot, every poll, and every lag read go through HTTP.
func startHTTPFollower(t *testing.T, primary *Index, opts ...HTTPSourceOption) (*Follower, *HTTPSource) {
	t.Helper()
	ts := httptest.NewServer(NewReplHandler(primary.Dir(), nil))
	t.Cleanup(ts.Close)
	src := NewHTTPSource(ts.URL, opts...)
	replicaDir := filepath.Join(t.TempDir(), "replica")
	if err := SnapshotFrom(src, replicaDir); err != nil {
		t.Fatalf("snapshot over http: %v", err)
	}
	f, err := OpenFollowerFrom(replicaDir, src)
	if err != nil {
		t.Fatalf("open follower over http: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f, src
}

// TestHTTPFollowerConverges: a follower with HTTP-only access to its
// primary — no shared directory — bootstraps, tails live updates to
// Lag()==0 with byte-identical search results, and crosses both a Save
// epoch and a Compact epoch via snapshot refresh over the wire.
func TestHTTPFollowerConverges(t *testing.T) {
	r := rand.New(rand.NewSource(411))
	data := randData(r, 120, 8)
	probes := randData(r, 3, 8)
	primary := buildPrimary(t, data, 3)
	f, _ := startHTTPFollower(t, primary)
	assertConverged(t, primary, f, probes)

	// Live tailing: records ship from the resumable offset, no refresh.
	for _, v := range randData(r, 20, 8) {
		if _, err := primary.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if !primary.Delete(3) || !primary.Delete(77) {
		t.Fatal("primary delete failed")
	}
	if _, err := f.Poll(); err != nil {
		t.Fatalf("poll: %v", err)
	}
	if got := f.Refreshes(); got != 0 {
		t.Fatalf("tailing round refreshed %d shards, want 0 (offset resume broken)", got)
	}
	assertConverged(t, primary, f, probes)

	// Incremental tail again: the second round must resume past the bytes
	// already applied (regression guard for the walOff bookkeeping).
	for _, v := range randData(r, 5, 8) {
		if _, err := primary.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Poll(); err != nil {
		t.Fatalf("poll: %v", err)
	}
	if got := f.Refreshes(); got != 0 {
		t.Fatalf("second tailing round refreshed %d shards, want 0", got)
	}
	assertConverged(t, primary, f, probes)

	// Save epoch: journals fold into metadata; tailing cannot cross it, so
	// the follower re-snapshots the changed shards over the wire.
	if err := primary.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	if _, err := f.Poll(); err != nil {
		t.Fatalf("poll across save: %v", err)
	}
	if f.Refreshes() == 0 {
		t.Fatal("save epoch crossed without a refresh")
	}
	assertConverged(t, primary, f, probes)

	// Compact epoch: ids rewrite wholesale; again only a refresh crosses.
	if _, err := primary.Compact(context.Background()); err != nil {
		t.Fatalf("compact: %v", err)
	}
	for _, v := range randData(r, 4, 8) {
		if _, err := primary.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Poll(); err != nil {
		t.Fatalf("poll across compact: %v", err)
	}
	assertConverged(t, primary, f, probes)
}

// tamperRT rewrites responses for one path: it truncates the body to half
// while leaving the integrity metadata intact — a torn transfer the CRC
// check must catch.
type tamperRT struct {
	base http.RoundTripper
	path string
	mu   sync.Mutex
	on   bool
	hits int
}

func (rt *tamperRT) arm(on bool) { rt.mu.Lock(); rt.on = on; rt.mu.Unlock() }

func (rt *tamperRT) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := rt.base.RoundTrip(req)
	rt.mu.Lock()
	on := rt.on
	rt.mu.Unlock()
	if err != nil || !on || req.URL.Path != rt.path {
		return resp, err
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if len(b) > 0 {
		rt.mu.Lock()
		rt.hits++
		rt.mu.Unlock()
		b = b[:len(b)/2]
	}
	resp.Body = io.NopCloser(bytes.NewReader(b))
	resp.ContentLength = int64(len(b))
	resp.Header.Set("Content-Length", strconv.Itoa(len(b)))
	return resp, nil
}

// TestHTTPSourceRejectsTornChunk: a wal chunk truncated in flight (CRC
// intact in the header, body torn) is refused — the watermark does not
// move, nothing partial is applied beyond the valid prefix contract — and
// the next clean round converges from the same offset.
func TestHTTPSourceRejectsTornChunk(t *testing.T) {
	r := rand.New(rand.NewSource(412))
	data := randData(r, 80, 8)
	probes := randData(r, 3, 8)
	primary := buildPrimary(t, data, 2)
	rt := &tamperRT{base: http.DefaultTransport, path: ReplPathWAL}
	f, _ := startHTTPFollower(t, primary, WithHTTPClient(&http.Client{Transport: rt}))
	assertConverged(t, primary, f, probes)

	for _, v := range randData(r, 12, 8) {
		if _, err := primary.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	before := f.Watermarks()
	rt.arm(true)
	_, err := f.Poll()
	if err == nil {
		t.Fatal("poll with torn wal chunks succeeded, want CRC failure")
	}
	if rt.hits == 0 {
		t.Fatal("tamper transport never fired")
	}
	// Torn rounds must not advance any shard past what it verified.
	after := f.Watermarks()
	for s := range before {
		if after[s] != before[s] {
			t.Fatalf("shard %d watermark moved %d -> %d on torn chunk", s, before[s], after[s])
		}
	}
	if got := f.Refreshes(); got != 0 {
		t.Fatalf("torn chunk forced %d refreshes, want 0 (retry from same offset)", got)
	}
	rt.arm(false)
	if _, err := f.Poll(); err != nil {
		t.Fatalf("poll after tear cleared: %v", err)
	}
	assertConverged(t, primary, f, probes)
}

// TestHTTPSourceSnapshotTornStream: a snapshot stream cut mid-transfer is
// detected (tar tear or missing CRC trailer), the partial replica tree is
// discarded rather than opened, and a clean retry bootstraps correctly.
func TestHTTPSourceSnapshotTornStream(t *testing.T) {
	r := rand.New(rand.NewSource(413))
	data := randData(r, 80, 8)
	primary := buildPrimary(t, data, 2)
	ts := httptest.NewServer(NewReplHandler(primary.Dir(), nil))
	t.Cleanup(ts.Close)
	rt := &tamperRT{base: http.DefaultTransport, path: ReplPathSnapshot}
	rt.arm(true)
	src := NewHTTPSource(ts.URL, WithHTTPClient(&http.Client{Transport: rt}))
	replicaDir := filepath.Join(t.TempDir(), "replica")
	if err := SnapshotFrom(src, replicaDir); err == nil {
		t.Fatal("snapshot over torn stream succeeded, want error")
	}
	// The torn bootstrap must not look like a sharded index.
	if IsSharded(replicaDir) {
		t.Fatal("torn bootstrap left a manifest: partial replica would be served")
	}
	rt.arm(false)
	if err := SnapshotFrom(src, replicaDir); err != nil {
		t.Fatalf("clean snapshot retry: %v", err)
	}
	f, err := OpenFollowerFrom(replicaDir, src)
	if err != nil {
		t.Fatalf("open follower after retry: %v", err)
	}
	defer f.Close()
	probes := randData(r, 2, 8)
	assertConverged(t, primary, f, probes)
}

// TestReplGuardFencesPulls: a guard refusing pulls as ErrStalePrimary
// (the deposed-primary state) surfaces to the follower as ErrStalePrimary
// — mid-stream, not only at open — and the guard sees the follower's
// lineage epoch, promoter identity, and the correct history/metadata
// classification on every request.
func TestReplGuardFencesPulls(t *testing.T) {
	r := rand.New(rand.NewSource(414))
	data := randData(r, 40, 8)
	primary := buildPrimary(t, data, 2)

	var mu sync.Mutex
	var deposed bool
	var pulls []ReplPull
	var history, metadata int
	guard := func(pull ReplPull) error {
		mu.Lock()
		defer mu.Unlock()
		pulls = append(pulls, pull)
		if pull.History {
			history++
		} else {
			metadata++
		}
		if deposed {
			return fmt.Errorf("deposed: %w", promips.ErrStalePrimary)
		}
		return nil
	}
	ts := httptest.NewServer(NewReplHandler(primary.Dir(), guard))
	t.Cleanup(ts.Close)
	src := NewHTTPSource(ts.URL, WithPromoter("guard-test-promoter"))
	replicaDir := filepath.Join(t.TempDir(), "replica")
	if err := SnapshotFrom(src, replicaDir); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	f, err := OpenFollowerFrom(replicaDir, src)
	if err != nil {
		t.Fatalf("open follower: %v", err)
	}
	defer f.Close()
	if _, err := f.Poll(); err != nil {
		t.Fatalf("poll while serving: %v", err)
	}
	if _, err := f.Lag(); err != nil {
		t.Fatalf("lag while serving: %v", err)
	}
	mu.Lock()
	if len(pulls) == 0 {
		mu.Unlock()
		t.Fatal("guard never saw a pull")
	}
	// The bootstrap made snapshot pulls and the poll made wal pulls (both
	// history); the manifest/state reads (poll fingerprints, Lag) are
	// metadata. Both classes must be present and correctly flagged —
	// promipsd's lease renewal keys off History.
	if history == 0 || metadata == 0 {
		mu.Unlock()
		t.Fatalf("guard saw %d history and %d metadata pulls; want both > 0", history, metadata)
	}
	for _, p := range pulls {
		if p.PeerEpoch != UnstampedEpoch && p.PeerEpoch != f.Epoch() {
			mu.Unlock()
			t.Fatalf("guard saw peer epoch %d, follower is at %d", p.PeerEpoch, f.Epoch())
		}
		if p.Promoter != "guard-test-promoter" {
			mu.Unlock()
			t.Fatalf("guard saw promoter %q, want %q", p.Promoter, "guard-test-promoter")
		}
	}
	deposed = true
	mu.Unlock()
	if _, err := f.Poll(); !errors.Is(err, promips.ErrStalePrimary) {
		t.Fatalf("poll against deposed primary: got %v, want ErrStalePrimary", err)
	}
}

// TestReplGuardNoPromoterHeader: a source without WithPromoter (a plain
// read replica, promipsctl) pulls anonymously — the guard must see an
// empty promoter identity, so the primary's lease stays untouched.
func TestReplGuardNoPromoterHeader(t *testing.T) {
	r := rand.New(rand.NewSource(416))
	data := randData(r, 30, 8)
	primary := buildPrimary(t, data, 2)
	var mu sync.Mutex
	seenPromoter := false
	guard := func(pull ReplPull) error {
		mu.Lock()
		defer mu.Unlock()
		if pull.Promoter != "" {
			seenPromoter = true
		}
		return nil
	}
	ts := httptest.NewServer(NewReplHandler(primary.Dir(), guard))
	t.Cleanup(ts.Close)
	src := NewHTTPSource(ts.URL)
	replicaDir := filepath.Join(t.TempDir(), "replica")
	if err := SnapshotFrom(src, replicaDir); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	f, err := OpenFollowerFrom(replicaDir, src)
	if err != nil {
		t.Fatalf("open follower: %v", err)
	}
	defer f.Close()
	if _, err := f.Poll(); err != nil {
		t.Fatalf("poll: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if seenPromoter {
		t.Fatal("anonymous source sent a promoter identity")
	}
}

// TestHTTPSourceSnapshotRejectsStaleEpoch: a snapshot stream stamped with
// an epoch below the follower's lineage is refused before extraction —
// even against a guard-less primary that would never depose itself — and
// nothing is installed at the destination. This mirrors the staleStamp
// checks the poll path applies to state and wal reads.
func TestHTTPSourceSnapshotRejectsStaleEpoch(t *testing.T) {
	r := rand.New(rand.NewSource(415))
	data := randData(r, 30, 8)
	primary := buildPrimary(t, data, 2) // manifest epoch 0, no guard
	ts := httptest.NewServer(NewReplHandler(primary.Dir(), nil))
	t.Cleanup(ts.Close)
	src := NewHTTPSource(ts.URL)
	src.SetPeerEpoch(primary.Epoch() + 1) // follower lineage is ahead
	dst := filepath.Join(t.TempDir(), "stale-snap")
	err := src.SnapshotShard(0, dst)
	if !errors.Is(err, promips.ErrStalePrimary) {
		t.Fatalf("snapshot from a stale-stamped primary: got %v, want ErrStalePrimary", err)
	}
	if _, statErr := os.Stat(dst); !os.IsNotExist(statErr) {
		t.Fatalf("stale snapshot left %s behind", dst)
	}
	// The same source accepts the stream once its lineage matches.
	src.SetPeerEpoch(primary.Epoch())
	if err := src.SnapshotShard(0, dst); err != nil {
		t.Fatalf("snapshot at matching lineage: %v", err)
	}
}
