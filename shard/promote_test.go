package shard

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"promips"
	"promips/internal/fsutil"
)

// Failover: follower promotion, the manifest epoch fence against
// resurrected primaries, and poll isolation of transient read faults.

// TestPromoteTakesOver: a converged follower promotes into a writable
// primary that (a) holds every write the old primary acknowledged,
// (b) accepts new writes continuing the same id sequence, (c) survives a
// reopen — replicated state was made durable by the promotion fold — and
// (d) carries a bumped epoch. The consumed follower refuses further Polls.
func TestPromoteTakesOver(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	data := randData(r, 200, 8)
	primary := buildPrimary(t, data, 2)
	f := startFollower(t, primary)

	// Acknowledged writes on the old primary, partially polled: the last
	// two land between the final Poll and the promotion, exercising the
	// final drain.
	for _, v := range randData(r, 4, 8) {
		if _, err := primary.Insert(v); err != nil {
			t.Fatalf("primary insert: %v", err)
		}
	}
	if _, err := f.Poll(); err != nil {
		t.Fatalf("poll: %v", err)
	}
	for _, v := range randData(r, 2, 8) {
		if _, err := primary.Insert(v); err != nil {
			t.Fatalf("primary insert: %v", err)
		}
	}

	probe := randData(r, 1, 8)[0]
	wantFP := liveFingerprint(t, primary, probe)
	promoted, err := Promote(f)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer promoted.Close()

	if got := promoted.Epoch(); got != 1 {
		t.Fatalf("promoted epoch = %d, want 1", got)
	}
	if got := liveFingerprint(t, promoted, probe); !reflect.DeepEqual(got, wantFP) {
		t.Fatalf("promoted primary lost acknowledged writes:\n got %v\nwant %v", got, wantFP)
	}
	// Writes resume, continuing the emulated single-index id sequence.
	id, err := promoted.Insert(randData(r, 1, 8)[0])
	if err != nil {
		t.Fatalf("insert on promoted primary: %v", err)
	}
	if want := uint32(206); id != want {
		t.Fatalf("first post-promotion id = %d, want %d", id, want)
	}
	if _, _, err := promoted.Search(context.Background(), probe, 5); err != nil {
		t.Fatalf("search on promoted primary: %v", err)
	}

	// The consumed follower: Poll refuses, Close is a no-op (the children
	// belong to the promoted index now).
	if _, err := f.Poll(); !errors.Is(err, promips.ErrClosed) {
		t.Fatalf("poll after promote: got %v, want ErrClosed", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("follower close after promote: %v", err)
	}
	if _, _, err := promoted.Search(context.Background(), probe, 5); err != nil {
		t.Fatalf("promoted search after follower close: %v", err)
	}

	// Durability: the promotion fold (drain + save + manifest) stands on
	// its own disk — a fresh Open of the directory sees everything,
	// including the post-promotion insert after a Save.
	if err := promoted.Save(); err != nil {
		t.Fatalf("save promoted: %v", err)
	}
	wantFP = liveFingerprint(t, promoted, probe)
	dir := promoted.Dir()
	if err := promoted.Close(); err != nil {
		t.Fatalf("close promoted: %v", err)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen promoted dir: %v", err)
	}
	defer reopened.Close()
	if got := reopened.Epoch(); got != 1 {
		t.Fatalf("reopened epoch = %d, want 1", got)
	}
	if got := liveFingerprint(t, reopened, probe); !reflect.DeepEqual(got, wantFP) {
		t.Fatalf("reopened promoted primary diverges:\n got %v\nwant %v", got, wantFP)
	}
}

// TestStalePrimaryFenced: after a promotion, a replica of the promoted
// lineage refuses the resurrected old primary — at OpenFollower and at
// Poll — with ErrStalePrimary.
func TestStalePrimaryFenced(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	data := randData(r, 200, 8)
	oldPrimary := buildPrimary(t, data, 2)
	f := startFollower(t, oldPrimary)
	if _, err := f.Poll(); err != nil {
		t.Fatalf("poll: %v", err)
	}
	promoted, err := Promote(f)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer promoted.Close()

	// A replica snapshotted from the promoted lineage (epoch 1), pointed
	// at the resurrected old primary (epoch 0): refused at open.
	replica2 := t.TempDir() + "/replica2"
	if err := Snapshot(promoted.Dir(), replica2); err != nil {
		t.Fatalf("snapshot promoted: %v", err)
	}
	if _, err := OpenFollower(replica2, oldPrimary.Dir()); !errors.Is(err, promips.ErrStalePrimary) {
		t.Fatalf("open follower against stale primary: got %v, want ErrStalePrimary", err)
	}

	// Same replica against the promoted primary is fine — until the
	// primary directory's manifest regresses to a pre-failover epoch
	// (an old lineage resurrected at the same path): fenced at Poll.
	f2, err := OpenFollower(replica2, promoted.Dir())
	if err != nil {
		t.Fatalf("open follower against promoted: %v", err)
	}
	defer f2.Close()
	if got := f2.Epoch(); got != 1 {
		t.Fatalf("follower epoch = %d, want 1", got)
	}
	if _, err := f2.Poll(); err != nil {
		t.Fatalf("poll promoted: %v", err)
	}
	if err := writeManifest(fsutil.OS, promoted.Dir(), promoted.Shards(), 0); err != nil {
		t.Fatalf("regress manifest: %v", err)
	}
	if _, err := f2.Poll(); !errors.Is(err, promips.ErrStalePrimary) {
		t.Fatalf("poll against regressed epoch: got %v, want ErrStalePrimary", err)
	}
}

// TestPollIsolatesTransientReadFault: a one-shot primary-side read failure
// skips only the affected shard — its watermark intact — while the rest of
// the round converges; the next Poll heals and Lag returns to 0.
func TestPollIsolatesTransientReadFault(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	data := randData(r, 200, 8)
	primary := buildPrimary(t, data, 2)
	f := startFollower(t, primary)

	for _, v := range randData(r, 6, 8) {
		if _, err := primary.Insert(v); err != nil {
			t.Fatalf("primary insert: %v", err)
		}
	}
	// Poll's read order: 1 = primary manifest (fence — a failure there is
	// tolerated), 2 = shard 0's CURRENT. Failing read 2 transiently makes
	// shard 0's round fail while shard 1 still converges.
	f.src.(*dirSource).fs = &fsutil.FaultFS{FailAt: 2, FailReads: true}
	applied, err := f.Poll()
	if !errors.Is(err, fsutil.ErrInjected) {
		t.Fatalf("poll with injected read fault: got %v, want ErrInjected", err)
	}
	if applied == 0 {
		t.Fatal("poll applied nothing: the healthy shard should still converge")
	}
	if marks := f.Watermarks(); marks[0] != 0 {
		t.Fatalf("faulted shard's watermark moved to %d, want 0 (kept for retry)", marks[0])
	}
	// The fault was one-shot; the next round heals the skipped shard.
	if _, err := f.Poll(); err != nil {
		t.Fatalf("poll after fault cleared: %v", err)
	}
	lag, err := f.Lag()
	if err != nil {
		t.Fatalf("lag: %v", err)
	}
	if lag != 0 {
		t.Fatalf("lag = %d after recovery poll, want 0", lag)
	}
	assertConverged(t, primary, f, randData(r, 3, 8))
}
