package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrInjectedShard is returned by a fan-out operation the configured
// Faults suppressed. Degradation logic must treat it like any other shard
// failure; tests assert on it to distinguish injected faults from real
// ones — the shard-level mirror of the filesystem harness's ErrInjected.
var ErrInjectedShard = errors.New("shard: injected fan-out fault")

// Faults is a deterministic shard-level fault injector for the fan-out
// query path — the same count-op/fail-op-N model the filesystem crash
// harness (internal fsutil.FaultFS) uses, lifted one failure domain up:
// instead of tearing a write, it fails or wedges one shard's part of a
// fanned-out Search.
//
// Every per-shard Search operation a fan-out issues is counted in that
// shard's own op stream (per-shard streams are ordered even though the
// fan-out itself is concurrent, so fault points are deterministic for a
// deterministic query workload). The FailAt'th operation on shard Shard is
// faulted:
//
//   - Fail mode (Wedge=false): the operation returns ErrInjectedShard
//     immediately — a crashed or erroring shard.
//   - Wedge mode (Wedge=true): the operation blocks until its context is
//     done and returns the context's error — a stuck shard, the case
//     per-shard deadlines (WithShardTimeout) exist for. Without a
//     deadline the op blocks until the caller's own context ends.
//
// Delay adds a fixed latency to every operation of a shard (interruptible
// by the per-shard context) — the "one slow shard" model the degraded
// fan-out benchmark measures. Delay and FailAt compose: the delay is
// served first.
//
// A zero Faults never fires; FailAt = 0 only counts. Install with
// Index.SetFaults or Follower.SetFaults (nil uninstalls). The injector
// applies to fanned-out Search/SearchBatch only — Exact is the ground
// truth tests fingerprint state with, so it stays fault-free.
type Faults struct {
	// Shard is the shard whose op stream is faulted.
	Shard int
	// FailAt is the 1-based operation index within Shard's stream to
	// fault; 0 never faults (counting only).
	FailAt int
	// Wedge selects wedge mode (block until context done) over fail mode.
	Wedge bool
	// Delay adds latency to every op of the given shards.
	Delay map[int]time.Duration

	mu      sync.Mutex
	ops     map[int]int
	injected int
}

// enter is called by the fan-out at the start of shard s's part of a
// query. It serves the configured delay, then decides whether this op is
// the faulted one.
func (f *Faults) enter(ctx context.Context, s int) error {
	if d := f.Delay[s]; d > 0 {
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	f.mu.Lock()
	if f.ops == nil {
		f.ops = make(map[int]int)
	}
	f.ops[s]++
	fire := f.FailAt != 0 && s == f.Shard && f.ops[s] == f.FailAt
	if fire {
		f.injected++
	}
	f.mu.Unlock()
	if !fire {
		return nil
	}
	if f.Wedge {
		<-ctx.Done()
		return fmt.Errorf("%w: shard %d wedged: %w", ErrInjectedShard, s, ctx.Err())
	}
	return fmt.Errorf("%w: shard %d op %d", ErrInjectedShard, s, f.FailAt)
}

// Ops returns how many fan-out operations shard s has served (including
// the faulted one) — the measurement pass a fault matrix sizes FailAt
// sweeps with.
func (f *Faults) Ops(s int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops[s]
}

// Injected reports how many operations were actually faulted.
func (f *Faults) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// SetFaults installs (or, with nil, removes) a fan-out fault injector on
// the primary. For tests and benchmarks: the injector makes shard
// failures, wedges and slow shards deterministic, which is how the chaos
// matrix and the degraded-search benchmark drive the failure domain
// without real hardware faults.
func (ix *Index) SetFaults(f *Faults) {
	ix.faultsMu.Lock()
	ix.faults = f
	ix.faultsMu.Unlock()
}

func (ix *Index) getFaults() *Faults {
	ix.faultsMu.Lock()
	defer ix.faultsMu.Unlock()
	return ix.faults
}

// SetFaults installs (or removes) a fan-out fault injector on the replica.
func (f *Follower) SetFaults(flt *Faults) {
	f.faultsMu.Lock()
	f.faults = flt
	f.faultsMu.Unlock()
}

func (f *Follower) getFaults() *Faults {
	f.faultsMu.Lock()
	defer f.faultsMu.Unlock()
	return f.faults
}
