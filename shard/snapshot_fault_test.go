package shard

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"promips/internal/fsutil"
)

// faultyDirSource builds a dir source whose primary-side reads AND
// replica-side copy writes thread through a FaultFS.
func faultyDirSource(primaryDir string, fault *fsutil.FaultFS) ReplSource {
	src := NewDirSource(primaryDir).(*dirSource)
	src.fs = fault
	return src
}

// TestSnapshotFaultMatrix sweeps every filesystem operation a bootstrap
// performs — primary reads, replica creates/writes — and faults each one
// in turn, in both transient mode (the op fails, the process lives) and
// crash mode (a write is torn mid-file, everything after dies). The
// contract under test: a partial bootstrap is always detectable — the
// error is surfaced, the replica dir never carries a SHARDS manifest, so
// a supervisor re-bootstraps instead of serving a half-copied tree — and
// a clean retry over the same directory produces a converged follower.
func TestSnapshotFaultMatrix(t *testing.T) {
	r := rand.New(rand.NewSource(421))
	data := randData(r, 100, 8)
	probes := randData(r, 2, 8)
	primary := buildPrimary(t, data, 2)
	root := t.TempDir()

	// Dry run: count the bootstrap's total faultable operations.
	counter := &fsutil.FaultFS{FailReads: true}
	dry := filepath.Join(root, "dry")
	if err := SnapshotFrom(faultyDirSource(primary.Dir(), counter), dry); err != nil {
		t.Fatalf("dry-run snapshot: %v", err)
	}
	total := counter.Ops()
	if total < 6 {
		t.Fatalf("dry run counted only %d ops; matrix would be vacuous", total)
	}

	for _, mode := range []struct {
		name  string
		crash bool
	}{{"transient", false}, {"crash", true}} {
		for i := 1; i <= total; i++ {
			dst := filepath.Join(root, "rep")
			fault := &fsutil.FaultFS{FailAt: i, FailReads: true, Crash: mode.crash}
			err := SnapshotFrom(faultyDirSource(primary.Dir(), fault), dst)
			if err == nil {
				t.Fatalf("%s fault at op %d: snapshot succeeded, want error", mode.name, i)
			}
			if !errors.Is(err, fsutil.ErrInjected) {
				t.Fatalf("%s fault at op %d: got %v, want ErrInjected", mode.name, i, err)
			}
			// The torn bootstrap must not be mistakable for a replica: the
			// manifest is written last, strictly after every shard landed.
			if IsSharded(dst) {
				t.Fatalf("%s fault at op %d left a SHARDS manifest over a partial tree", mode.name, i)
			}
			os.RemoveAll(dst)
		}

		// Re-bootstrap over the same path a faulted attempt used: the
		// retry must produce a follower that converges byte-for-byte.
		dst := filepath.Join(root, "rep")
		fault := &fsutil.FaultFS{FailAt: total / 2, FailReads: true, Crash: mode.crash}
		if err := SnapshotFrom(faultyDirSource(primary.Dir(), fault), dst); err == nil {
			t.Fatalf("%s mid-bootstrap fault: snapshot succeeded, want error", mode.name)
		}
		os.RemoveAll(dst)
		if err := SnapshotFrom(NewDirSource(primary.Dir()), dst); err != nil {
			t.Fatalf("%s clean retry: %v", mode.name, err)
		}
		f, err := OpenFollower(dst, primary.Dir())
		if err != nil {
			t.Fatalf("%s open after retry: %v", mode.name, err)
		}
		assertConverged(t, primary, f, probes)
		f.Close()
		os.RemoveAll(dst)
	}
}
