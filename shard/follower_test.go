package shard

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"promips"
)

// liveFingerprint is the byte-level live-set fingerprint convergence is
// asserted on: every live point's exact inner product with a probe, bit
// patterns and ids both — if the replica misses, resurrects or misplaces
// one update, the fingerprint moves.
func liveFingerprint(t *testing.T, ex interface {
	Exact(ctx context.Context, q []float32, k int) ([]promips.Result, error)
	LiveCount() int
}, probe []float32) [][2]uint64 {
	t.Helper()
	all, err := ex.Exact(context.Background(), probe, ex.LiveCount()+1)
	if err != nil {
		t.Fatalf("fingerprint exact: %v", err)
	}
	return ipBits(all)
}

func assertConverged(t *testing.T, primary *Index, f *Follower, probes [][]float32) {
	t.Helper()
	lag, err := f.Lag()
	if err != nil {
		t.Fatalf("lag: %v", err)
	}
	if lag != 0 {
		t.Fatalf("follower lag %d after poll, want 0", lag)
	}
	if got, want := f.LiveCount(), primary.LiveCount(); got != want {
		t.Fatalf("follower live count %d, primary %d", got, want)
	}
	if got, want := liveFingerprint(t, f, probes[0]), liveFingerprint(t, primary, probes[0]); !reflect.DeepEqual(got, want) {
		t.Fatalf("follower live-set fingerprint diverges from primary:\n got %v\nwant %v", got, want)
	}
	for qi, q := range probes {
		want, _, err := primary.Search(context.Background(), q, 5)
		if err != nil {
			t.Fatalf("primary search: %v", err)
		}
		got, _, err := f.Search(context.Background(), q, 5)
		if err != nil {
			t.Fatalf("follower search: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("probe %d: follower search diverges:\n got %v\nwant %v", qi, got, want)
		}
	}
}

func buildPrimary(t *testing.T, data [][]float32, k int) *Index {
	t.Helper()
	primary, err := Build(data, Options{
		Shards: k,
		Dir:    filepath.Join(t.TempDir(), "primary"),
		Index:  promips.Options{Seed: 7, M: 4},
	})
	if err != nil {
		t.Fatalf("build primary: %v", err)
	}
	t.Cleanup(func() { primary.Close() })
	if err := primary.Save(); err != nil {
		t.Fatalf("save primary: %v", err)
	}
	return primary
}

func startFollower(t *testing.T, primary *Index) *Follower {
	t.Helper()
	replicaDir := filepath.Join(t.TempDir(), "replica")
	if err := Snapshot(primary.Dir(), replicaDir); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	f, err := OpenFollower(replicaDir, primary.Dir())
	if err != nil {
		t.Fatalf("open follower: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestFollowerConvergesByTailing: live updates on the primary reach the
// follower through journal shipping alone — no refresh — and the replica
// converges to the primary's exact live-set fingerprint, with the LSN
// watermark accounting for every shipped record.
func TestFollowerConvergesByTailing(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	data := randData(r, 60, 8)
	extra := randData(r, 10, 8)
	probes := randData(r, 3, 8)
	primary := buildPrimary(t, data, 4)
	f := startFollower(t, primary)
	assertConverged(t, primary, f, probes)

	for _, v := range extra {
		if _, err := primary.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if !primary.Delete(5) || !primary.Delete(62) {
		t.Fatal("primary deletes failed")
	}
	lag, err := f.Lag()
	if err != nil {
		t.Fatal(err)
	}
	if lag != 12 {
		t.Fatalf("pre-poll lag %d, want 12 (10 inserts + 2 deletes)", lag)
	}
	applied, err := f.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if applied != 12 {
		t.Fatalf("poll applied %d records, want 12", applied)
	}
	if f.Refreshes() != 0 {
		t.Fatalf("tailing poll refreshed %d times, want 0", f.Refreshes())
	}
	var wsum int64
	for _, w := range f.Watermarks() {
		wsum += w
	}
	if wsum != 12 {
		t.Fatalf("watermark sum %d, want 12", wsum)
	}
	assertConverged(t, primary, f, probes)

	// Re-polling an unchanged primary is a no-op.
	applied, err = f.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Fatalf("idle poll applied %d records", applied)
	}
	assertConverged(t, primary, f, probes)
}

// TestFollowerRefreshesAcrossSave: a primary Save starts a new journal
// epoch (records folded into metadata, journal emptied) that tailing
// cannot cross — Poll must detect it and re-snapshot the shards.
func TestFollowerRefreshesAcrossSave(t *testing.T) {
	r := rand.New(rand.NewSource(121))
	data := randData(r, 60, 8)
	extra := randData(r, 4, 8)
	probes := randData(r, 3, 8)
	primary := buildPrimary(t, data, 2)
	f := startFollower(t, primary)

	for _, v := range extra {
		if _, err := primary.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.Save(); err != nil {
		t.Fatal(err)
	}
	// Post-save updates land in the fresh epoch's journal.
	if _, err := primary.Insert(extra[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Poll(); err != nil {
		t.Fatal(err)
	}
	if f.Refreshes() == 0 {
		t.Fatal("poll crossed a Save without refreshing")
	}
	assertConverged(t, primary, f, probes)
}

// TestFollowerRefreshesOnDeleteOnlyEpoch: a delete-only Save leaves the
// CURRENT pointer unchanged and shrinks the journal — the metadata
// fingerprint is what must catch the epoch change.
func TestFollowerRefreshesOnDeleteOnlyEpoch(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	data := randData(r, 60, 8)
	probes := randData(r, 3, 8)
	primary := buildPrimary(t, data, 2)
	f := startFollower(t, primary)

	if !primary.Delete(9) {
		t.Fatal("primary delete failed")
	}
	if err := primary.Save(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Poll(); err != nil {
		t.Fatal(err)
	}
	if f.Refreshes() == 0 {
		t.Fatal("delete-only Save epoch went undetected")
	}
	assertConverged(t, primary, f, probes)
	if f.LiveCount() != len(data)-1 {
		t.Fatalf("follower live count %d, want %d", f.LiveCount(), len(data)-1)
	}
}

// TestFollowerRefreshesAcrossCompact: Compact rewrites ids and flips the
// CURRENT pointer to a new generation; the follower must re-snapshot and
// keep answering identically.
func TestFollowerRefreshesAcrossCompact(t *testing.T) {
	r := rand.New(rand.NewSource(141))
	data := randData(r, 60, 8)
	extra := randData(r, 3, 8)
	probes := randData(r, 3, 8)
	primary := buildPrimary(t, data, 2)
	f := startFollower(t, primary)

	for _, v := range extra {
		if _, err := primary.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	primary.Delete(4)
	if _, err := primary.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := primary.Save(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Poll(); err != nil {
		t.Fatal(err)
	}
	if f.Refreshes() == 0 {
		t.Fatal("poll crossed a Compact without refreshing")
	}
	assertConverged(t, primary, f, probes)
}

// TestFollowerRestart: closing a follower and reopening its replica
// directory resumes replication — convergence marks rebuild from the
// replica's own files, and the first Poll re-ships whatever in-memory
// state the old process lost (replay is idempotent).
func TestFollowerRestart(t *testing.T) {
	r := rand.New(rand.NewSource(151))
	data := randData(r, 60, 8)
	extra := randData(r, 6, 8)
	probes := randData(r, 3, 8)
	primary := buildPrimary(t, data, 2)

	replicaDir := filepath.Join(t.TempDir(), "replica")
	if err := Snapshot(primary.Dir(), replicaDir); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFollower(replicaDir, primary.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range extra {
		if _, err := primary.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Poll(); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, primary, f, probes)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The applied-but-unjournaled records died with the process; the
	// reopened replica re-ships them from the primary's journal.
	re, err := OpenFollower(replicaDir, primary.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.Poll(); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, primary, re, probes)
}

// TestFollowerReadOnly: every mutating operation on a replica fails with
// ErrReadOnlyReplica; reads keep working.
func TestFollowerReadOnly(t *testing.T) {
	r := rand.New(rand.NewSource(161))
	data := randData(r, 40, 8)
	primary := buildPrimary(t, data, 2)
	f := startFollower(t, primary)

	if _, err := f.Insert(data[0]); !errors.Is(err, promips.ErrReadOnlyReplica) {
		t.Fatalf("insert: got %v, want ErrReadOnlyReplica", err)
	}
	if _, err := f.DeleteChecked(1); !errors.Is(err, promips.ErrReadOnlyReplica) {
		t.Fatalf("delete: got %v, want ErrReadOnlyReplica", err)
	}
	if ok := f.Delete(1); ok {
		t.Fatal("replica Delete reported success")
	}
	if err := f.Save(); !errors.Is(err, promips.ErrReadOnlyReplica) {
		t.Fatalf("save: got %v, want ErrReadOnlyReplica", err)
	}
	if _, _, err := f.Search(context.Background(), data[0], 3); err != nil {
		t.Fatalf("replica search: %v", err)
	}
	batch, _, err := f.SearchBatch(context.Background(), data[:4], 3)
	if err != nil {
		t.Fatalf("replica batch: %v", err)
	}
	if len(batch) != 4 {
		t.Fatalf("replica batch answered %d queries, want 4", len(batch))
	}
}

// TestFollowerWatermarkBits sanity-checks the exported accessors against
// a known update distribution: with K=2, global ids route deterministically,
// so per-shard watermarks are predictable.
func TestFollowerWatermarkBits(t *testing.T) {
	r := rand.New(rand.NewSource(171))
	data := randData(r, 40, 8)
	primary := buildPrimary(t, data, 2)
	f := startFollower(t, primary)

	// Ids 40 and 41 route to shards 0 and 1; delete of 6 routes to shard 0.
	for _, v := range randData(r, 2, 8) {
		if _, err := primary.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	primary.Delete(6)
	if _, err := f.Poll(); err != nil {
		t.Fatal(err)
	}
	ws := f.Watermarks()
	if len(ws) != 2 || ws[0] != 2 || ws[1] != 1 {
		t.Fatalf("watermarks %v, want [2 1]", ws)
	}
	if f.Shards() != 2 {
		t.Fatalf("follower shards %d, want 2", f.Shards())
	}
	if f.Dim() != 8 || f.M() != primary.M() {
		t.Fatalf("follower dim/m mismatch: %d/%d", f.Dim(), f.M())
	}
	if math.Abs(float64(f.Len()-primary.Len())) > 0 {
		t.Fatalf("follower len %d, primary %d", f.Len(), primary.Len())
	}
}
