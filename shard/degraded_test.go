package shard

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"promips"
)

// Degraded fan-out: a K>1 search isolates failed shards by default and
// reports the loss through SearchStats.Degraded; strict mode and real
// whole-query errors keep their pre-degradation behavior.

func wantAchievedP(p float64, k, answered int) float64 {
	return 1 - float64(answered)*(1-p)/float64(k)
}

// TestDegradedSearchIsolatesFailedShard: with one shard injected to fail,
// Search still answers from the remaining shards, the Degraded report
// accounts for exactly that shard and the union-bound achieved p, and the
// merged results carry no id owned by the failed shard. The healthy-shard
// merge is cross-checked against a fault-free search filtered to the same
// id population.
func TestDegradedSearchIsolatesFailedShard(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	data := randData(r, 400, 8)
	primary := buildPrimary(t, data, 4)
	q := randData(r, 1, 8)[0]

	// Reference: fault-free search over the same surviving id population.
	want, wantSt, err := primary.Search(context.Background(), q, 10,
		promips.WithFilter(func(id uint32) bool { return id%4 != 1 }))
	if err != nil {
		t.Fatalf("reference search: %v", err)
	}
	if wantSt.Degraded != nil {
		t.Fatalf("fault-free search reported Degraded: %+v", wantSt.Degraded)
	}

	primary.SetFaults(&Faults{Shard: 1, FailAt: 1})
	defer primary.SetFaults(nil)
	got, st, err := primary.Search(context.Background(), q, 10)
	if err != nil {
		t.Fatalf("degraded search: %v", err)
	}
	d := st.Degraded
	if d == nil {
		t.Fatal("search with a failed shard reported no Degraded stats")
	}
	if d.ShardsTotal != 4 || d.ShardsAnswered != 3 || !reflect.DeepEqual(d.FailedShards, []int{1}) {
		t.Fatalf("degraded report = %+v, want total 4, answered 3, failed [1]", d)
	}
	p := primary.Options().P
	if want := wantAchievedP(p, 4, 3); math.Abs(d.AchievedP-want) > 1e-12 {
		t.Fatalf("AchievedP = %v, want %v (p=%v)", d.AchievedP, want, p)
	}
	for _, res := range got {
		if res.ID%4 == 1 {
			t.Fatalf("degraded result contains id %d from failed shard 1", res.ID)
		}
	}
	if !reflect.DeepEqual(ipBits(got), ipBits(want)) {
		t.Fatalf("degraded merge diverges from filtered fault-free search:\n got %v\nwant %v", got, want)
	}
}

// TestDegradedWedgeHonorsShardTimeout: a wedged shard (blocks forever) is
// cut off by WithShardTimeout and isolated; without the per-shard deadline
// the same wedge would hold the query for the caller's whole context.
func TestDegradedWedgeHonorsShardTimeout(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	data := randData(r, 200, 8)
	primary := buildPrimary(t, data, 2)
	q := randData(r, 1, 8)[0]

	primary.SetFaults(&Faults{Shard: 0, FailAt: 1, Wedge: true})
	defer primary.SetFaults(nil)
	start := time.Now()
	got, st, err := primary.Search(context.Background(), q, 5, promips.WithShardTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatalf("degraded search around wedged shard: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("wedged shard held the query %v despite 50ms shard timeout", elapsed)
	}
	if st.Degraded == nil || !reflect.DeepEqual(st.Degraded.FailedShards, []int{0}) {
		t.Fatalf("degraded report = %+v, want failed [0]", st.Degraded)
	}
	if len(got) == 0 {
		t.Fatal("no results from the healthy shard")
	}
}

// TestRequireAllShardsIsStrict: the opt-in strict mode fails the whole
// query on any shard fault — and surfaces the injected error class.
func TestRequireAllShardsIsStrict(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	data := randData(r, 200, 8)
	primary := buildPrimary(t, data, 2)
	q := randData(r, 1, 8)[0]

	primary.SetFaults(&Faults{Shard: 1, FailAt: 1})
	defer primary.SetFaults(nil)
	_, _, err := primary.Search(context.Background(), q, 5, promips.WithRequireAllShards())
	if !errors.Is(err, ErrInjectedShard) {
		t.Fatalf("strict search with failed shard: got %v, want ErrInjectedShard", err)
	}
	// The injector fired once; with faults cleared strict == default.
	primary.SetFaults(nil)
	strict, st, err := primary.Search(context.Background(), q, 5, promips.WithRequireAllShards())
	if err != nil {
		t.Fatalf("strict search: %v", err)
	}
	if st.Degraded != nil {
		t.Fatalf("healthy strict search reported Degraded: %+v", st.Degraded)
	}
	def, _, err := primary.Search(context.Background(), q, 5)
	if err != nil {
		t.Fatalf("default search: %v", err)
	}
	if !reflect.DeepEqual(strict, def) {
		t.Fatalf("strict and default answers diverge on a healthy index:\n got %v\nwant %v", strict, def)
	}
}

// TestDegradationDoesNotMaskRealErrors: a whole-query failure (every shard
// rejects the query) surfaces the error class, and a cancelled caller gets
// the cancellation — never a partial answer.
func TestDegradationDoesNotMaskRealErrors(t *testing.T) {
	r := rand.New(rand.NewSource(84))
	data := randData(r, 200, 8)
	primary := buildPrimary(t, data, 2)

	if _, _, err := primary.Search(context.Background(), make([]float32, 5), 5); !errors.Is(err, promips.ErrDimMismatch) {
		t.Fatalf("all-shards-failed search: got %v, want ErrDimMismatch", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := randData(r, 1, 8)[0]
	if _, _, err := primary.Search(ctx, q, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled search: got %v, want context.Canceled", err)
	}
}

// TestSearchBatchDegradesPerQuery: batch queries degrade independently —
// the query whose shard op was faulted carries Degraded, its neighbors do
// not, and the batch as a whole succeeds.
func TestSearchBatchDegradesPerQuery(t *testing.T) {
	r := rand.New(rand.NewSource(85))
	data := randData(r, 200, 8)
	primary := buildPrimary(t, data, 2)
	queries := randData(r, 3, 8)

	// One worker keeps the claim order (and so shard 1's op stream) equal
	// to the query order: its 2nd op is query index 1.
	primary.SetFaults(&Faults{Shard: 1, FailAt: 2})
	defer primary.SetFaults(nil)
	_, sts, err := primary.SearchBatch(context.Background(), queries, 5, promips.WithWorkers(1))
	if err != nil {
		t.Fatalf("batch with one faulted query: %v", err)
	}
	for i, st := range sts {
		if i == 1 {
			if st.Degraded == nil || !reflect.DeepEqual(st.Degraded.FailedShards, []int{1}) {
				t.Fatalf("query 1 degraded report = %+v, want failed [1]", st.Degraded)
			}
			continue
		}
		if st.Degraded != nil {
			t.Fatalf("query %d unexpectedly degraded: %+v", i, st.Degraded)
		}
	}
}

// TestFollowerDegradedSearch: the replica's fan-out degrades the same way
// the primary's does.
func TestFollowerDegradedSearch(t *testing.T) {
	r := rand.New(rand.NewSource(86))
	data := randData(r, 200, 8)
	primary := buildPrimary(t, data, 2)
	f := startFollower(t, primary)

	f.SetFaults(&Faults{Shard: 0, FailAt: 1})
	defer f.SetFaults(nil)
	q := randData(r, 1, 8)[0]
	got, st, err := f.Search(context.Background(), q, 5)
	if err != nil {
		t.Fatalf("follower degraded search: %v", err)
	}
	if st.Degraded == nil || st.Degraded.ShardsAnswered != 1 || !reflect.DeepEqual(st.Degraded.FailedShards, []int{0}) {
		t.Fatalf("follower degraded report = %+v, want answered 1, failed [0]", st.Degraded)
	}
	for _, res := range got {
		if res.ID%2 == 0 {
			t.Fatalf("follower degraded result contains id %d from failed shard 0", res.ID)
		}
	}
}
