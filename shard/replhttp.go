package shard

import (
	"archive/tar"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"promips"
	"promips/internal/fsutil"
)

// The network replication wire. A primary promipsd mounts NewReplHandler
// under /v1/repl/ and a follower pulls through NewHTTPSource — the same
// four reads the shared-filesystem dirSource performs, as four GETs:
//
//	GET /v1/repl/manifest          → {"shards":K,"epoch":E}
//	GET /v1/repl/manifest?shard=S  → one shard's ShardState (JSON)
//	GET /v1/repl/wal?shard=S&off=N → raw journal bytes from offset N
//	GET /v1/repl/snapshot?shard=S  → tar stream of the shard's tree
//
// The wal body is the journal's own on-disk format (the file header for
// off=0, a bare record sequence past it), so wal.Decode's torn-tail
// taxonomy applies to the wire unchanged. Every response is stamped with
// the primary's failover epoch (X-Promips-Epoch) and integrity-checked:
// wal chunks carry a CRC-32C header, snapshots a CRC-32C HTTP trailer
// computed over the tar stream. Responses stamped below the follower's
// lineage are refused (ErrStalePrimary) — on wal and state reads by the
// follower's pollShard, on snapshot streams by SnapshotShard itself.
// Requests carry the follower's lineage epoch (X-Promips-Peer-Epoch) so
// a deposed primary learns of its own succession from the next pull and
// fences itself; a fenced primary answers 409, which the source surfaces
// as ErrStalePrimary. An auto-promoting follower additionally identifies
// itself (X-Promips-Promoter) so the primary can bind its write lease to
// that one promoter's HISTORY pulls — see ReplPull.
const (
	ReplPathManifest = "/v1/repl/manifest"
	ReplPathWAL      = "/v1/repl/wal"
	ReplPathSnapshot = "/v1/repl/snapshot"

	// ReplHeaderEpoch stamps every response with the primary's failover
	// epoch at serve time.
	ReplHeaderEpoch = "X-Promips-Epoch"
	// ReplHeaderPeerEpoch carries the follower's lineage epoch on requests.
	ReplHeaderPeerEpoch = "X-Promips-Peer-Epoch"
	// ReplHeaderPromoter carries an auto-promoting follower's instance
	// identity on requests. Followers that will never promote unattended
	// (plain read replicas, promipsctl snapshot) send nothing.
	ReplHeaderPromoter = "X-Promips-Promoter"
	// ReplHeaderWALSize reports the journal's total byte size on wal reads.
	ReplHeaderWALSize = "X-Promips-Wal-Size"
	// ReplHeaderCrc carries the CRC-32C (Castagnoli, hex) of the response
	// body — a header on wal chunks, an HTTP trailer on snapshot streams.
	ReplHeaderCrc = "X-Promips-Crc32c"
)

var replCrcTable = crc32.MakeTable(crc32.Castagnoli)

// replManifest is the manifest endpoint's JSON body.
type replManifest struct {
	Shards int   `json:"shards"`
	Epoch  int64 `json:"epoch"`
}

// replState is the per-shard state endpoint's JSON body.
type replState struct {
	Current    string `json:"current"`
	Gen        string `json:"gen"`
	MetaSum    string `json:"meta_sum"` // hex sha256
	WALRecords int64  `json:"wal_records"`
	WALSize    int64  `json:"wal_size"`
	Epoch      int64  `json:"epoch"`
}

// ReplPull describes one replication pull to a ReplGuard.
type ReplPull struct {
	// PeerEpoch is the follower's lineage epoch from the request
	// (UnstampedEpoch when the request carries none).
	PeerEpoch int64
	// Promoter identifies an auto-promoting follower ("" when the puller
	// will never promote unattended). A primary's write lease binds to
	// exactly one promoter identity: only that promoter's silence can mean
	// a promotion is under way, so only its pulls may renew the lease.
	Promoter string
	// History is true for pulls that ship index history (wal tails,
	// snapshot streams) and false for metadata-only reads (manifest, shard
	// state — what Lag() and readiness scrapes issue). Only history pulls
	// renew a write lease: a follower in failover quarantine has stopped
	// pulling history, and a load balancer probing its /v1/readyz must not
	// re-arm the very lease the quarantine is waiting out.
	History bool
}

// ReplGuard vets one replication pull before any bytes are served.
// Returning an error wrapping promips.ErrStalePrimary refuses the pull
// with 409 — the deposed-primary fence; any other error refuses it with
// 503. promipsd threads its lease renewal and self-deposition through
// this hook.
type ReplGuard func(pull ReplPull) error

// NewReplHandler serves the replication wire for the primary index tree
// at dir. guard (optional) runs before every response; see ReplGuard.
// Mount the returned handler under /v1/repl/ — it matches the Repl* paths
// exactly and answers GET only.
func NewReplHandler(dir string, guard ReplGuard) http.Handler {
	h := &replHandler{src: &dirSource{dir: dir, fs: fsutil.OS}, guard: guard}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+ReplPathManifest, h.manifest)
	mux.HandleFunc("GET "+ReplPathWAL, h.wal)
	mux.HandleFunc("GET "+ReplPathSnapshot, h.snapshot)
	h.mux = mux
	return h
}

type replHandler struct {
	src   *dirSource
	guard ReplGuard
	mux   *http.ServeMux
}

func (h *replHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.guard != nil {
		pull := ReplPull{
			PeerEpoch: UnstampedEpoch,
			Promoter:  r.Header.Get(ReplHeaderPromoter),
			History:   r.URL.Path == ReplPathWAL || r.URL.Path == ReplPathSnapshot,
		}
		if v := r.Header.Get(ReplHeaderPeerEpoch); v != "" {
			e, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				http.Error(w, "bad "+ReplHeaderPeerEpoch, http.StatusBadRequest)
				return
			}
			pull.PeerEpoch = e
		}
		if err := h.guard(pull); err != nil {
			code := http.StatusServiceUnavailable
			if errors.Is(err, promips.ErrStalePrimary) {
				code = http.StatusConflict
			}
			http.Error(w, err.Error(), code)
			return
		}
	}
	h.mux.ServeHTTP(w, r)
}

// shardParam parses the required ?shard=S and bounds-checks it.
func (h *replHandler) shardParam(w http.ResponseWriter, r *http.Request) (int, int64, bool) {
	k, epoch, err := h.src.Manifest()
	if err != nil {
		http.Error(w, "manifest: "+err.Error(), http.StatusServiceUnavailable)
		return 0, 0, false
	}
	s, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil || s < 0 || s >= k {
		http.Error(w, "bad shard parameter", http.StatusBadRequest)
		return 0, 0, false
	}
	return s, epoch, true
}

func (h *replHandler) manifest(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Has("shard") {
		h.state(w, r)
		return
	}
	k, epoch, err := h.src.Manifest()
	if err != nil {
		http.Error(w, "manifest: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set(ReplHeaderEpoch, strconv.FormatInt(epoch, 10))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(replManifest{Shards: k, Epoch: epoch})
}

func (h *replHandler) state(w http.ResponseWriter, r *http.Request) {
	s, epoch, ok := h.shardParam(w, r)
	if !ok {
		return
	}
	st, err := h.src.ShardState(s)
	if err != nil {
		http.Error(w, "shard state: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set(ReplHeaderEpoch, strconv.FormatInt(epoch, 10))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(replState{
		Current:    st.Current,
		Gen:        st.Gen,
		MetaSum:    hex.EncodeToString(st.MetaSum[:]),
		WALRecords: st.WALRecords,
		WALSize:    st.WALSize,
		Epoch:      epoch,
	})
}

func (h *replHandler) wal(w http.ResponseWriter, r *http.Request) {
	s, epoch, ok := h.shardParam(w, r)
	if !ok {
		return
	}
	off, err := strconv.ParseInt(r.URL.Query().Get("off"), 10, 64)
	if err != nil || off < 0 {
		http.Error(w, "bad off parameter", http.StatusBadRequest)
		return
	}
	chunk, err := h.src.TailWAL(s, off)
	if err != nil {
		http.Error(w, "wal tail: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set(ReplHeaderEpoch, strconv.FormatInt(epoch, 10))
	w.Header().Set(ReplHeaderWALSize, strconv.FormatInt(chunk.Size, 10))
	w.Header().Set(ReplHeaderCrc, strconv.FormatUint(uint64(crc32.Checksum(chunk.Data, replCrcTable)), 16))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(chunk.Data)
}

func (h *replHandler) snapshot(w http.ResponseWriter, r *http.Request) {
	s, epoch, ok := h.shardParam(w, r)
	if !ok {
		return
	}
	shardDir := filepath.Join(h.src.dir, shardDirName(s))
	w.Header().Set(ReplHeaderEpoch, strconv.FormatInt(epoch, 10))
	w.Header().Set("Content-Type", "application/x-tar")
	w.Header().Set("Trailer", ReplHeaderCrc)
	crc := crc32.New(replCrcTable)
	tw := tar.NewWriter(io.MultiWriter(w, crc))
	err := filepath.Walk(shardDir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(shardDir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			return nil
		}
		rel = filepath.ToSlash(rel)
		switch {
		case info.IsDir():
			return tw.WriteHeader(&tar.Header{Name: rel + "/", Typeflag: tar.TypeDir, Mode: 0o755})
		case info.Mode().IsRegular():
			if err := tw.WriteHeader(&tar.Header{Name: rel, Typeflag: tar.TypeReg, Mode: 0o644, Size: info.Size()}); err != nil {
				return err
			}
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			// CopyN pins the copy to the header's size: a file appended to
			// mid-walk (the live journal) ships a clean prefix instead of
			// corrupting the stream; a file truncated mid-walk errors and
			// the torn stream fails the client's open-before-swap.
			_, err = io.CopyN(tw, f, info.Size())
			return err
		default:
			return fmt.Errorf("snapshot %s: unsupported file type %v", rel, info.Mode().Type())
		}
	})
	if err != nil {
		// Headers are gone; tearing the stream is the only signal left.
		// The client's tar read or CRC check fails and the refresh retries.
		return
	}
	if err := tw.Close(); err != nil {
		return
	}
	w.Header().Set(ReplHeaderCrc, strconv.FormatUint(uint64(crc.Sum32()), 16))
}

// HTTPSource is the network ReplSource: it performs dirSource's reads as
// GETs against a primary promipsd's /v1/repl/ endpoints, so the follower
// needs no filesystem in common with its primary. Every request carries a
// deadline; wal chunks and snapshot streams are CRC-verified end to end
// (a torn transfer is detected and retried from the same offset, never
// applied); responses stamped with an epoch below the follower's lineage
// are refused as ErrStalePrimary. Safe for one poller plus concurrent
// Lag() readers, like the Follower that owns it.
type HTTPSource struct {
	base        string
	hc          *http.Client
	reqTimeout  time.Duration // manifest/state/wal reads
	snapTimeout time.Duration // whole-shard snapshot streams
	peerEpoch   atomic.Int64  // follower lineage, sent with every request
	promoter    string        // auto-promoter identity, "" for plain replicas
}

// HTTPSourceOption configures NewHTTPSource.
type HTTPSourceOption func(*HTTPSource)

// WithHTTPClient substitutes the underlying client (chaos harnesses
// inject faulty transports here).
func WithHTTPClient(hc *http.Client) HTTPSourceOption {
	return func(s *HTTPSource) { s.hc = hc }
}

// WithRequestTimeout bounds each metadata/wal request (default 10s).
func WithRequestTimeout(d time.Duration) HTTPSourceOption {
	return func(s *HTTPSource) { s.reqTimeout = d }
}

// WithSnapshotTimeout bounds each whole-shard snapshot stream (default 2m).
func WithSnapshotTimeout(d time.Duration) HTTPSourceOption {
	return func(s *HTTPSource) { s.snapTimeout = d }
}

// WithPromoter marks this source as belonging to an auto-promoting
// follower: every request carries id (ReplHeaderPromoter), which the
// primary binds its write lease to. Run at most ONE auto-promoting
// follower per primary — the primary refuses history pulls from a second
// promoter identity while the first one's lease is live, because two
// independent promoters could otherwise both fail over (two writable
// primaries). Plain read replicas must not set this: their pulls neither
// arm nor renew the lease, so any number of them can follow safely.
func WithPromoter(id string) HTTPSourceOption {
	return func(s *HTTPSource) { s.promoter = id }
}

// NewHTTPSource returns a ReplSource pulling from the primary promipsd at
// baseURL (e.g. "http://db1:7600").
func NewHTTPSource(baseURL string, opts ...HTTPSourceOption) *HTTPSource {
	s := &HTTPSource{
		base:        strings.TrimRight(baseURL, "/"),
		hc:          &http.Client{},
		reqTimeout:  10 * time.Second,
		snapTimeout: 2 * time.Minute,
	}
	s.peerEpoch.Store(UnstampedEpoch)
	for _, o := range opts {
		o(s)
	}
	return s
}

// SetPeerEpoch records the follower's lineage epoch; subsequent requests
// carry it so the primary can fence itself when overtaken. The Follower
// calls this on open and whenever it adopts a higher epoch.
func (s *HTTPSource) SetPeerEpoch(epoch int64) { s.peerEpoch.Store(epoch) }

// get issues one GET with a deadline and classifies the status: 200
// returns the response (caller closes the body), 409 is the deposed- or
// stale-primary fence (ErrStalePrimary), anything else is a transient
// transport error the poll loop retries.
func (s *HTTPSource) get(path string, q url.Values, timeout time.Duration) (*http.Response, context.CancelFunc, error) {
	u := s.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if e := s.peerEpoch.Load(); e != UnstampedEpoch {
		req.Header.Set(ReplHeaderPeerEpoch, strconv.FormatInt(e, 10))
	}
	if s.promoter != "" {
		req.Header.Set(ReplHeaderPromoter, s.promoter)
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return resp, cancel, nil
	case http.StatusConflict:
		msg := readBodyLine(resp.Body)
		resp.Body.Close()
		cancel()
		return nil, nil, fmt.Errorf("shard: %s: primary refused pull (%s): %w", path, msg, promips.ErrStalePrimary)
	default:
		msg := readBodyLine(resp.Body)
		resp.Body.Close()
		cancel()
		return nil, nil, fmt.Errorf("shard: %s: %s (%s)", path, resp.Status, msg)
	}
}

// readBodyLine drains at most the first line of an error body for logs.
func readBodyLine(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 256))
	line, _, _ := strings.Cut(strings.TrimSpace(string(b)), "\n")
	return line
}

// respEpoch parses the response's epoch stamp; a missing stamp is
// UnstampedEpoch (an old or foreign server — the manifest fence still
// applies).
func respEpoch(resp *http.Response) int64 {
	v := resp.Header.Get(ReplHeaderEpoch)
	if v == "" {
		return UnstampedEpoch
	}
	e, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return UnstampedEpoch
	}
	return e
}

func (s *HTTPSource) Manifest() (int, int64, error) {
	resp, cancel, err := s.get(ReplPathManifest, nil, s.reqTimeout)
	if err != nil {
		return 0, 0, err
	}
	defer cancel()
	defer resp.Body.Close()
	var m replManifest
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&m); err != nil {
		return 0, 0, fmt.Errorf("shard: repl manifest decode: %w", err)
	}
	if m.Shards <= 0 || m.Shards > maxShards {
		return 0, 0, fmt.Errorf("shard: repl manifest: shard count %d out of range: %w", m.Shards, promips.ErrCorruptIndex)
	}
	return m.Shards, m.Epoch, nil
}

func (s *HTTPSource) ShardState(shardN int) (ShardState, error) {
	q := url.Values{"shard": {strconv.Itoa(shardN)}}
	resp, cancel, err := s.get(ReplPathManifest, q, s.reqTimeout)
	if err != nil {
		return ShardState{}, err
	}
	defer cancel()
	defer resp.Body.Close()
	var st replState
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&st); err != nil {
		return ShardState{}, fmt.Errorf("shard: repl state decode: %w", err)
	}
	sum, err := hex.DecodeString(st.MetaSum)
	if err != nil || len(sum) != sha256.Size {
		return ShardState{}, fmt.Errorf("shard: repl state: bad meta_sum %q", st.MetaSum)
	}
	out := ShardState{
		Current:    st.Current,
		Gen:        st.Gen,
		WALRecords: st.WALRecords,
		WALSize:    st.WALSize,
		Epoch:      st.Epoch,
	}
	copy(out.MetaSum[:], sum)
	return out, nil
}

func (s *HTTPSource) TailWAL(shardN int, off int64) (WALChunk, error) {
	q := url.Values{"shard": {strconv.Itoa(shardN)}, "off": {strconv.FormatInt(off, 10)}}
	resp, cancel, err := s.get(ReplPathWAL, q, s.reqTimeout)
	if err != nil {
		return WALChunk{}, err
	}
	defer cancel()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return WALChunk{}, fmt.Errorf("shard: repl wal read: %w", err)
	}
	if v := resp.Header.Get(ReplHeaderCrc); v != "" {
		want, err := strconv.ParseUint(v, 16, 32)
		if err != nil {
			return WALChunk{}, fmt.Errorf("shard: repl wal: bad crc header %q", v)
		}
		if got := crc32.Checksum(data, replCrcTable); uint64(got) != want {
			return WALChunk{}, fmt.Errorf("shard: repl wal: crc mismatch (%08x != %08x): torn chunk", got, want)
		}
	}
	size, err := strconv.ParseInt(resp.Header.Get(ReplHeaderWALSize), 10, 64)
	if err != nil {
		return WALChunk{}, fmt.Errorf("shard: repl wal: bad %s header", ReplHeaderWALSize)
	}
	return WALChunk{Data: data, Size: size, Epoch: respEpoch(resp)}, nil
}

func (s *HTTPSource) SnapshotShard(shardN int, dst string) error {
	q := url.Values{"shard": {strconv.Itoa(shardN)}}
	resp, cancel, err := s.get(ReplPathSnapshot, q, s.snapTimeout)
	if err != nil {
		return err
	}
	defer cancel()
	defer resp.Body.Close()
	// Same mid-stream fence pollShard applies to state and wal reads: a
	// stream stamped below this follower's lineage is a resurrected
	// pre-failover primary's tree, refused before a byte is extracted.
	// (The stamp check must not rely on the stale primary running a guard
	// server-side — a guard-less or pre-upgrade primary stamps but never
	// deposes itself.)
	if stamp := respEpoch(resp); staleStamp(stamp, s.peerEpoch.Load()) {
		return errStaleStamp("snapshot stream", stamp, s.peerEpoch.Load())
	}
	if err := untarTree(resp.Body, dst, resp); err != nil {
		os.RemoveAll(dst)
		return err
	}
	return nil
}

// untarTree extracts a snapshot tar stream into dst, CRC-checking the
// stream against the server's trailer. Entry names are confined to dst
// (a hostile or corrupted stream cannot escape it).
func untarTree(body io.Reader, dst string, resp *http.Response) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	crc := crc32.New(replCrcTable)
	tr := tar.NewReader(io.TeeReader(body, crc))
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("shard: repl snapshot: torn tar stream: %w", err)
		}
		name := filepath.FromSlash(hdr.Name)
		if !filepath.IsLocal(name) {
			return fmt.Errorf("shard: repl snapshot: non-local entry %q: %w", hdr.Name, promips.ErrCorruptIndex)
		}
		target := filepath.Join(dst, name)
		switch hdr.Typeflag {
		case tar.TypeDir:
			if err := os.MkdirAll(target, 0o755); err != nil {
				return err
			}
		case tar.TypeReg:
			if err := os.MkdirAll(filepath.Dir(target), 0o755); err != nil {
				return err
			}
			f, err := os.OpenFile(target, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
			if err != nil {
				return err
			}
			if _, err := io.Copy(f, tr); err != nil {
				f.Close()
				return fmt.Errorf("shard: repl snapshot: torn tar entry %q: %w", hdr.Name, err)
			}
			if err := f.Close(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("shard: repl snapshot: unsupported entry type %d for %q: %w", hdr.Typeflag, hdr.Name, promips.ErrCorruptIndex)
		}
	}
	// Drain the trailing tar padding so the CRC covers the whole stream
	// and the HTTP trailer becomes visible.
	if _, err := io.Copy(io.Discard, io.TeeReader(body, crc)); err != nil {
		return fmt.Errorf("shard: repl snapshot: drain: %w", err)
	}
	if v := resp.Trailer.Get(ReplHeaderCrc); v != "" {
		want, err := strconv.ParseUint(v, 16, 32)
		if err != nil {
			return fmt.Errorf("shard: repl snapshot: bad crc trailer %q", v)
		}
		if got := crc.Sum32(); uint64(got) != want {
			return fmt.Errorf("shard: repl snapshot: crc mismatch (%08x != %08x): torn stream", got, want)
		}
	} else {
		// No trailer means the server tore the stream after headers (its
		// walk failed) or a proxy dropped it; the tar reader usually
		// catches the tear first, but an unluckily clean cut must not
		// install silently.
		return fmt.Errorf("shard: repl snapshot: stream ended without crc trailer")
	}
	return nil
}

func (s *HTTPSource) String() string { return s.base }

func (s *HTTPSource) Close() error {
	s.hc.CloseIdleConnections()
	return nil
}
