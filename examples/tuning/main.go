// Tuning: explores ProMIPS' accuracy–efficiency trade-off surface, the
// subject of the paper's Figs 10 and 11. It sweeps the approximation ratio
// c and the guarantee probability p on one dataset and prints how overall
// ratio, verified candidates and page accesses respond — the practical
// guide for choosing (c, p) in a deployment.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"sort"

	"promips"
	"promips/internal/dataset"
	"promips/internal/exact"
	"promips/internal/mips"
	"promips/internal/vec"
)

func main() {
	spec := dataset.Netflix()
	data := spec.Generate(6000, 21)
	queries := spec.Queries(15, 21)
	const k = 10
	gt := exact.Compute(data, queries, k)

	fmt.Println("sweep of approximation ratio c (p=0.5):")
	fmt.Printf("%-5s %-13s %-12s %-12s\n", "c", "overallRatio", "candidates", "pageAccess")
	for _, c := range []float64{0.5, 0.7, 0.8, 0.9, 0.95} {
		summary := run(data, queries, gt, promips.Options{C: c, P: 0.5, M: spec.M, Seed: 9}, k)
		fmt.Printf("%-5.2f %-13.4f %-12.0f %-12.0f\n", c, summary.ratio, summary.cands, summary.pages)
	}

	fmt.Println("\nsweep of guarantee probability p (c=0.9):")
	fmt.Printf("%-5s %-13s %-12s %-12s\n", "p", "overallRatio", "candidates", "pageAccess")
	for _, p := range []float64{0.3, 0.5, 0.7, 0.9} {
		summary := run(data, queries, gt, promips.Options{C: 0.9, P: p, M: spec.M, Seed: 9}, k)
		fmt.Printf("%-5.2f %-13.4f %-12.0f %-12.0f\n", p, summary.ratio, summary.cands, summary.pages)
	}

	fmt.Println("\nreading the tables: larger c and larger p both widen the")
	fmt.Println("probability-guaranteed search range — accuracy rises, but so do")
	fmt.Println("verified candidates and page accesses (the paper's Figs 10–11).")
}

type summary struct {
	ratio, cands, pages float64
}

func run(data, queries [][]float32, gt *exact.GroundTruth, opts promips.Options, k int) summary {
	index, err := promips.Build(data, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer index.Close()
	var s summary
	for qi, q := range queries {
		res, stats, err := index.Search(q, k)
		if err != nil {
			log.Fatal(err)
		}
		returned := make([]mips.Result, len(res))
		for i, r := range res {
			returned[i] = mips.Result{ID: r.ID, IP: vec.Dot(data[r.ID], q)}
		}
		sort.Slice(returned, func(a, b int) bool { return returned[a].IP > returned[b].IP })
		s.ratio += gt.OverallRatio(qi, returned)
		s.cands += float64(stats.Candidates)
		s.pages += float64(stats.PageAccesses)
	}
	n := float64(len(queries))
	return summary{ratio: s.ratio / n, cands: s.cands / n, pages: s.pages / n}
}
