// Tuning: explores ProMIPS' accuracy–efficiency trade-off surface, the
// subject of the paper's Figs 10 and 11. It sweeps the approximation ratio
// c and the guarantee probability p on one dataset and prints how overall
// ratio, verified candidates and page accesses respond — the practical
// guide for choosing (c, p) in a deployment.
//
// The sweep runs against ONE index: the guarantee knobs are query-local
// (Quick-Probe's threshold and both termination conditions are re-derived
// per query), so WithC/WithP explore the whole surface without rebuilding —
// the index is built once where the seed version rebuilt it per setting.
//
//	go run ./examples/tuning
package main

import (
	"context"
	"fmt"
	"log"

	"promips"
	"promips/dataset"
	"promips/exact"
	"promips/mips"
)

func main() {
	spec := dataset.Netflix()
	data := spec.Generate(6000, 21)
	queries := spec.Queries(15, 21)
	const k = 10
	gt := exact.Compute(data, queries, k)

	index, err := promips.Build(data, promips.Options{M: spec.M, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	defer index.Close()

	fmt.Println("sweep of approximation ratio c (p=0.5):")
	fmt.Printf("%-5s %-13s %-12s %-12s\n", "c", "overallRatio", "candidates", "pageAccess")
	for _, c := range []float64{0.5, 0.7, 0.8, 0.9, 0.95} {
		s := run(index, queries, gt, k, promips.WithC(c), promips.WithP(0.5))
		fmt.Printf("%-5.2f %-13.4f %-12.0f %-12.0f\n", c, s.ratio, s.cands, s.pages)
	}

	fmt.Println("\nsweep of guarantee probability p (c=0.9):")
	fmt.Printf("%-5s %-13s %-12s %-12s\n", "p", "overallRatio", "candidates", "pageAccess")
	for _, p := range []float64{0.3, 0.5, 0.7, 0.9} {
		s := run(index, queries, gt, k, promips.WithC(0.9), promips.WithP(p))
		fmt.Printf("%-5.2f %-13.4f %-12.0f %-12.0f\n", p, s.ratio, s.cands, s.pages)
	}

	fmt.Println("\nreading the tables: larger c and larger p both widen the")
	fmt.Println("probability-guaranteed search range — accuracy rises, but so do")
	fmt.Println("verified candidates and page accesses (the paper's Figs 10–11).")
}

type summary struct {
	ratio, cands, pages float64
}

func run(index *promips.Index, queries [][]float32, gt *exact.GroundTruth, k int, opts ...promips.SearchOption) summary {
	ctx := context.Background()
	var s summary
	for qi, q := range queries {
		res, stats, err := index.Search(ctx, q, k, opts...)
		if err != nil {
			log.Fatal(err)
		}
		returned := make([]mips.Result, len(res))
		for i, r := range res {
			returned[i] = mips.Result{ID: r.ID, IP: r.IP}
		}
		s.ratio += gt.OverallRatio(qi, returned)
		s.cands += float64(stats.Candidates)
		s.pages += float64(stats.PageAccesses)
	}
	n := float64(len(queries))
	return summary{ratio: s.ratio / n, cands: s.cands / n, pages: s.pages / n}
}
