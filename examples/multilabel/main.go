// Multilabel: the multi-class label prediction use case (Dean et al.,
// CVPR 2013, cited in the paper's introduction). Each class has a weight
// vector; predicting the top-k labels of a feature vector is exactly a
// MIPS query over the class weights. With tens of thousands of classes,
// scanning all of them per prediction is wasteful — ProMIPS answers with a
// probability-guaranteed approximation.
//
//	go run ./examples/multilabel
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"promips"
)

const (
	numClasses = 20000
	featureDim = 256
	numTest    = 25
	topLabels  = 5
)

func main() {
	r := rand.New(rand.NewSource(17))

	// Class weight vectors: each class is a direction in feature space
	// plus a bias toward a shared backbone (classes are correlated, as
	// softmax layers are in practice).
	backbone := randVec(r, featureDim, 1)
	classes := make([][]float32, numClasses)
	for c := range classes {
		w := randVec(r, featureDim, 1)
		for j := range w {
			w[j] = 0.3*backbone[j] + 0.7*w[j]
		}
		classes[c] = w
	}

	index, err := promips.Build(classes, promips.Options{C: 0.9, P: 0.7, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer index.Close()
	fmt.Printf("label space: %d classes, %d features, m=%d, index %.2f MB\n\n",
		index.Len(), index.Dim(), index.M(), float64(index.Sizes().Total())/(1<<20))

	// Test features: each drawn near a known class direction so we can see
	// whether the true class surfaces in the predicted labels.
	correct, candTotal := 0, 0
	for t := 0; t < numTest; t++ {
		trueClass := r.Intn(numClasses)
		feat := make([]float32, featureDim)
		for j := range feat {
			feat[j] = 2*classes[trueClass][j] + float32(r.NormFloat64())*0.5
		}
		preds, stats, err := index.Search(context.Background(), feat, topLabels)
		if err != nil {
			log.Fatal(err)
		}
		candTotal += stats.Candidates
		hit := false
		for _, p := range preds {
			if int(p.ID) == trueClass {
				hit = true
				break
			}
		}
		if hit {
			correct++
		}
		if t < 5 {
			fmt.Printf("test %d: true class %-6d predictions %v  hit=%v\n",
				t, trueClass, predIDs(preds), hit)
		}
	}
	fmt.Printf("\ntop-%d label accuracy: %d/%d\n", topLabels, correct, numTest)
	fmt.Printf("avg classes scored per prediction: %d of %d (%.1f%%)\n",
		candTotal/numTest, numClasses, float64(candTotal)/float64(numTest)/numClasses*100)
}

func randVec(r *rand.Rand, d int, scale float64) []float32 {
	v := make([]float32, d)
	for j := range v {
		v[j] = float32(r.NormFloat64() * scale)
	}
	return v
}

func predIDs(rs []promips.Result) []uint32 {
	out := make([]uint32, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}
