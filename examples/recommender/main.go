// Recommender: the matrix-factorization use case that motivates the paper's
// introduction. Item vectors are PureSVD-style latent factors; each user
// vector is a query, and the top-k inner products are the recommendations.
// The example compares ProMIPS against the exact scan on recommendation
// quality (overall ratio, recall) and work (candidates, page accesses),
// then re-runs the workload with WithFilter to exclude each user's
// already-watched items — predicate-constrained MIPS through the same
// index, no rebuild.
//
//	go run ./examples/recommender
package main

import (
	"context"
	"fmt"
	"log"

	"promips"
	"promips/dataset"
	"promips/exact"
	"promips/mips"
)

func main() {
	// Item catalogue: the Netflix-like generator (17770 items by default is
	// the paper's full size; we use 8000 to keep the demo snappy).
	spec := dataset.Netflix()
	items := spec.Generate(8000, 11)
	users := spec.Queries(20, 11) // user latent vectors as queries

	index, err := promips.Build(items, promips.Options{
		C: 0.9, P: 0.5, M: spec.M, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer index.Close()
	fmt.Printf("catalogue: %d items, %d latent dims, index %.2f MB\n\n",
		index.Len(), index.Dim(), float64(index.Sizes().Total())/(1<<20))

	const k = 10
	ctx := context.Background()
	gt := exact.Compute(items, users, k)
	var ratioSum, recallSum float64
	var pagesSum, candSum int
	for ui, user := range users {
		recs, stats, err := index.Search(ctx, user, k)
		if err != nil {
			log.Fatal(err)
		}
		returned := toMIPS(recs)
		ratioSum += gt.OverallRatio(ui, returned)
		recallSum += gt.Recall(ui, returned)
		pagesSum += int(stats.PageAccesses)
		candSum += stats.Candidates

		if ui < 3 {
			fmt.Printf("user %d: recommended items %v\n", ui, ids(recs))
			fmt.Printf("         exact top items  %v\n", exactIDs(gt.TopK[ui]))
		}
	}
	n := float64(len(users))
	fmt.Printf("\nover %d users, k=%d:\n", len(users), k)
	fmt.Printf("  overall ratio:  %.4f (guarantee: ≥ 0.9 with prob ≥ 0.5)\n", ratioSum/n)
	fmt.Printf("  recall:         %.4f\n", recallSum/n)
	fmt.Printf("  avg candidates: %.0f of %d items (%.1f%%)\n",
		float64(candSum)/n, index.Len(), float64(candSum)/n/float64(index.Len())*100)
	fmt.Printf("  avg page accesses: %.0f\n", float64(pagesSum)/n)

	// Second pass: real recommenders must not re-recommend what the user
	// already watched. Pretend each user watched their exact top-3 and
	// filter those out per query — the index is untouched.
	fmt.Printf("\nwith WithFilter excluding each user's 3 already-watched items:\n")
	for ui, user := range users {
		watched := make(map[uint32]bool, 3)
		for _, r := range gt.TopK[ui][:3] {
			watched[r.ID] = true
		}
		recs, _, err := index.Search(ctx, user, k,
			promips.WithFilter(func(id uint32) bool { return !watched[id] }))
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range recs {
			if watched[r.ID] {
				log.Fatalf("user %d: filtered item %d was recommended", ui, r.ID)
			}
		}
		if ui < 3 {
			fmt.Printf("user %d: fresh recommendations %v\n", ui, ids(recs))
		}
	}
	fmt.Println("no filtered item surfaced in any user's recommendations")
}

// toMIPS adapts index results to the evaluation package's result type.
func toMIPS(rs []promips.Result) []mips.Result {
	out := make([]mips.Result, len(rs))
	for i, r := range rs {
		out[i] = mips.Result{ID: r.ID, IP: r.IP}
	}
	return out
}

func ids(rs []promips.Result) []uint32 {
	out := make([]uint32, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

func exactIDs(rs []mips.Result) []uint32 {
	out := make([]uint32, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}
