// Quickstart: build a ProMIPS index over random vectors and run one
// c-approximate maximum inner product query.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"promips"
)

func main() {
	// A toy dataset: 5000 points in 64 dimensions.
	r := rand.New(rand.NewSource(7))
	const n, d = 5000, 64
	data := make([][]float32, n)
	for i := range data {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}

	// Build with the paper's defaults: c = 0.9, p = 0.5, optimized m.
	// Dir is omitted, so the index lives in a temp directory until Close.
	index, err := promips.Build(data, promips.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer index.Close()
	fmt.Printf("indexed %d points (d=%d) with projected dimension m=%d\n",
		index.Len(), index.Dim(), index.M())
	fmt.Printf("index size: %.2f MB\n", float64(index.Sizes().Total())/(1<<20))

	// One query: top-10 approximate MIP points. The context cancels a
	// long-running scan; Background is fine for a demo.
	q := make([]float32, d)
	for j := range q {
		q[j] = float32(r.NormFloat64())
	}
	results, stats, err := index.Search(context.Background(), q, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-10 c-AMIP results (verified %d candidates, %d page accesses, terminated by condition %s):\n",
		stats.Candidates, stats.PageAccesses, stats.TerminatedBy)
	for i, res := range results {
		fmt.Printf("  #%-2d id=%-6d ⟨o,q⟩=%.4f\n", i+1, res.ID, res.IP)
	}

	// Compare with the exact answer to see the approximation quality.
	exact, err := index.Exact(context.Background(), q, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact MIP: id=%d ⟨o,q⟩=%.4f  →  overall ratio of top result: %.4f\n",
		exact[0].ID, exact[0].IP, results[0].IP/exact[0].IP)
}
