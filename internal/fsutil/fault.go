package fsutil

import (
	"errors"
	"sync"
)

// ErrInjected is returned by every FaultFS operation the configured fault
// suppresses. Recovery code must treat it like any other I/O error; tests
// assert on it to distinguish injected faults from real ones.
var ErrInjected = errors.New("fsutil: injected fault")

// Op classifies the mutating operations FaultFS counts and faults. The
// numbering is dense so per-op counters fit an array.
type Op uint8

const (
	OpCreate Op = iota
	OpOpenAppend
	OpWrite
	OpSync
	OpTruncate
	OpRename
	OpRemove
	OpSyncDir
	// OpRead is counted ONLY when FailReads is set (appended last so the
	// numbering — and therefore every existing crash matrix's FailAt
	// landing points — is unchanged when it is off).
	OpRead
	opCount
)

var opNames = [opCount]string{"create", "openappend", "write", "sync", "truncate", "rename", "remove", "syncdir", "read"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// FaultFS is a deterministic fault-injecting FS for crash-consistency
// tests. It delegates to the real filesystem while counting every mutating
// operation (reads are free — a crash cannot corrupt a read), and faults
// the FailAt'th one:
//
//   - Transient mode (Crash=false): operation FailAt returns ErrInjected
//     without being applied; everything before and after succeeds. This
//     exercises the error-return paths — a live process that must stay
//     consistent after a failed write.
//   - Crash mode (Crash=true): operation FailAt is torn — a Write applies
//     a prefix of its bytes, any other op is simply not applied — and every
//     subsequent operation fails with ErrInjected, as if the process died
//     at that instant. The directory then holds exactly the state a real
//     crash at that op boundary could leave, and the test reopens it with
//     the real FS to check recovery.
//
// A FailAt of 0 never faults: the run counts operations (Ops, Count) so a
// crash matrix can first measure a workload's op count K and then replay
// it K times with FailAt = 1..K.
//
// FaultFS is safe for concurrent use; the op order (and therefore which
// logical operation a given FailAt lands on) is deterministic only if the
// workload issues its operations deterministically.
type FaultFS struct {
	// FailAt is the 1-based index of the mutating operation to fault.
	FailAt int
	// Crash selects crash mode (see above).
	Crash bool
	// FailReads makes ReadFile a counted, faultable operation (OpRead).
	// Off by default: a crash cannot corrupt a read, so the crash matrices
	// never count reads — but replication tails a live primary through
	// ReadFile, and its transient-read-failure tests need the Nth read to
	// fail exactly once. Transient mode only; in crash mode reads after
	// the crash fail regardless, like every other op.
	FailReads bool

	mu      sync.Mutex
	ops     int
	counts  [opCount]int
	crashed bool
	onOp    func(Op)
}

// SetOnOp installs (or clears, with nil) a hook invoked before every
// counted mutating operation, OUTSIDE the internal mutex — so the hook may
// block without stalling FaultFS bookkeeping on other goroutines. Tests
// use it as a deterministic latency injector: gating OpSync on a channel
// holds an fsync in flight for as long as the test needs, which is how the
// group-commit concurrency tests widen their race windows without sleeps.
func (f *FaultFS) SetOnOp(fn func(Op)) {
	f.mu.Lock()
	f.onOp = fn
	f.mu.Unlock()
}

// CrashNow crashes the filesystem at the current instant, independent of
// FailAt: every subsequent operation (including one whose OnOp hook is
// blocked right now) fails with ErrInjected, exactly as if the process had
// died. Tests combine it with SetOnOp to crash at a chosen operation whose
// global index is not deterministic — e.g. "the group fsync that covers
// these four concurrent inserts".
func (f *FaultFS) CrashNow() {
	f.mu.Lock()
	f.crashed = true
	f.mu.Unlock()
}

func (f *FaultFS) hook(op Op) {
	f.mu.Lock()
	fn := f.onOp
	f.mu.Unlock()
	if fn != nil {
		fn(op)
	}
}

// Ops returns the number of mutating operations observed (in crash mode,
// up to and including the crashing one).
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Count returns how many operations of one kind were observed.
func (f *FaultFS) Count(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// Crashed reports whether the crash point was reached.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

type verdict int

const (
	vProceed verdict = iota
	vFail            // do not apply, return ErrInjected
	vTear            // apply a prefix (writes only), return ErrInjected
)

func (f *FaultFS) step(op Op) verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return vFail
	}
	f.ops++
	f.counts[op]++
	if f.FailAt != 0 && f.ops == f.FailAt {
		if f.Crash {
			f.crashed = true
			if op == OpWrite {
				return vTear
			}
		}
		return vFail
	}
	return vProceed
}

func (f *FaultFS) Create(path string) (File, error) {
	f.hook(OpCreate)
	if f.step(OpCreate) != vProceed {
		return nil, ErrInjected
	}
	real, err := OS.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: real}, nil
}

func (f *FaultFS) OpenAppend(path string) (File, error) {
	f.hook(OpOpenAppend)
	if f.step(OpOpenAppend) != vProceed {
		return nil, ErrInjected
	}
	real, err := OS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: real}, nil
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if f.FailReads {
		f.hook(OpRead)
		if f.step(OpRead) != vProceed {
			return nil, ErrInjected
		}
	}
	return OS.ReadFile(path)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.hook(OpRename)
	if f.step(OpRename) != vProceed {
		return ErrInjected
	}
	return OS.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	f.hook(OpRemove)
	if f.step(OpRemove) != vProceed {
		return ErrInjected
	}
	return OS.Remove(path)
}

func (f *FaultFS) SyncDir(dir string) error {
	f.hook(OpSyncDir)
	if f.step(OpSyncDir) != vProceed {
		return ErrInjected
	}
	return OS.SyncDir(dir)
}

// faultFile routes a file's mutating calls through the shared fault state,
// so a crash configured on the FS also kills writes to files opened before
// the crash point. Close always passes through: a real crash leaks the
// descriptor and the OS closes it without further effect, and tests need
// the handle released so temp directories can be cleaned up.
type faultFile struct {
	fs *FaultFS
	f  File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.hook(OpWrite)
	switch ff.fs.step(OpWrite) {
	case vFail:
		return 0, ErrInjected
	case vTear:
		n, err := ff.f.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, ErrInjected
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.fs.hook(OpSync)
	if ff.fs.step(OpSync) != vProceed {
		return ErrInjected
	}
	return ff.f.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	ff.fs.hook(OpTruncate)
	if ff.fs.step(OpTruncate) != vProceed {
		return ErrInjected
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Close() error { return ff.f.Close() }
