// Package fsutil holds the crash-safety file primitives every persistence
// path shares — atomic file replacement, directory-entry durability, the
// append discipline of the update journal — behind a small filesystem seam.
// Keeping one audited implementation prevents the temp/rename/fsync
// ordering from drifting between the meta writers, the CURRENT pointer and
// the journal; keeping it behind an interface lets the crash-injection
// harness (FaultFS) fail or "crash" any persistence path at an exact
// operation and hand the torn on-disk state back for reopen.
package fsutil

import (
	"fmt"
	"io"
	"os"
)

// FS is the filesystem seam the persistence paths write through. Only the
// mutating surface is abstracted (plus ReadFile, which the journal and the
// CURRENT pointer use to load small files wholesale); bulk page I/O stays
// on *os.File in internal/pager, because page files are written once at
// build time and never referenced by any metadata until a Save performed
// through this seam succeeds.
type FS interface {
	// Create creates (or truncates) the file at path for writing. The
	// returned File writes in append mode, so a Truncate mid-stream moves
	// the write position to the new end instead of leaving a hole — the
	// journal's reset-then-append sequence depends on this.
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if absent. Writes
	// through the returned File land at the end of the file.
	OpenAppend(path string) (File, error)
	// ReadFile returns the content of path.
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath (POSIX rename).
	Rename(oldpath, newpath string) error
	// Remove unlinks path.
	Remove(path string) error
	// SyncDir fsyncs a directory, making its entries (renames, creates,
	// unlinks) durable.
	SyncDir(dir string) error
}

// File is the writable-file surface the persistence paths need.
type File interface {
	io.Writer
	// Sync fsyncs the file content.
	Sync() error
	// Truncate cuts the file to size bytes. The append offset of an
	// OpenAppend file is unaffected (appends still land at the new end).
	Truncate(size int64) error
	Close() error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC|os.O_APPEND, 0o644)
}

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("sync dir %s: %w", dir, err)
	}
	syncErr := d.Sync()
	d.Close()
	if syncErr != nil {
		return fmt.Errorf("sync dir %s: %w", dir, syncErr)
	}
	return nil
}

// WriteAtomic writes a file via temp-name + fsync + rename, so the path
// either keeps its previous content or holds the complete new content —
// never a truncated mix. write streams the content into the temp file.
// Durability of the rename itself needs a SyncDir on the parent.
func WriteAtomic(fsys FS, path string, write func(File) error) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if err2 := f.Close(); err == nil {
		err = err2
	}
	if err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("install %s: %w", path, err)
	}
	return nil
}

// SyncDir fsyncs a directory through the seam. Kept as a free function so
// call sites read the same as before the seam existed.
func SyncDir(fsys FS, dir string) error { return fsys.SyncDir(dir) }
