// Package fsutil holds the crash-safety file primitives every persistence
// path shares: atomic file replacement and directory-entry durability.
// Keeping one audited implementation prevents the temp/rename/fsync
// ordering from drifting between the meta writers and the CURRENT pointer.
package fsutil

import (
	"fmt"
	"os"
)

// WriteAtomic writes a file via temp-name + fsync + rename, so the path
// either keeps its previous content or holds the complete new content —
// never a truncated mix. write streams the content into the temp file.
// Durability of the rename itself needs a SyncDir on the parent.
func WriteAtomic(path string, write func(*os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if err2 := f.Close(); err == nil {
		err = err2
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("install %s: %w", path, err)
	}
	return nil
}

// SyncDir fsyncs a directory, making its entries (renames, creates,
// unlinks) durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("sync dir %s: %w", dir, err)
	}
	syncErr := d.Sync()
	d.Close()
	if syncErr != nil {
		return fmt.Errorf("sync dir %s: %w", dir, syncErr)
	}
	return nil
}
