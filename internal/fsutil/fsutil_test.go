package fsutil

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeString(s string) func(File) error {
	return func(f File) error {
		_, err := f.Write([]byte(s))
		return err
	}
}

func TestWriteAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta")
	if err := WriteAtomic(OS, path, writeString("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteAtomic(OS, path, writeString("two")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "two" {
		t.Fatalf("content = %q", b)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestWriteAtomicKeepsOldOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta")
	if err := WriteAtomic(OS, path, writeString("old")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteAtomic(OS, path, func(File) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "old" {
		t.Fatalf("old content lost: %q", b)
	}
}

// TestFaultFSCounting pins the op stream a known sequence produces, so the
// crash matrix's FailAt indexes mean what we think they mean.
func TestFaultFSCounting(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	if err := WriteAtomic(ffs, filepath.Join(dir, "a"), writeString("hello")); err != nil {
		t.Fatal(err)
	}
	if err := ffs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	// WriteAtomic = create + write + sync + rename; then syncdir.
	if got := ffs.Ops(); got != 5 {
		t.Fatalf("ops = %d, want 5", got)
	}
	for op, want := range map[Op]int{OpCreate: 1, OpWrite: 1, OpSync: 1, OpRename: 1, OpSyncDir: 1, OpRemove: 0} {
		if got := ffs.Count(op); got != want {
			t.Fatalf("count[%v] = %d, want %d", op, got, want)
		}
	}
}

func TestFaultFSTransient(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	if err := WriteAtomic(OS, path, writeString("old")); err != nil {
		t.Fatal(err)
	}
	// Fault the rename (op 4). The write must fail, the old content must
	// survive, and a subsequent attempt must succeed.
	ffs := &FaultFS{FailAt: 4}
	if err := WriteAtomic(ffs, path, writeString("new")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "old" {
		t.Fatalf("content after failed rename = %q", b)
	}
	if err := WriteAtomic(ffs, path, writeString("new")); err != nil {
		t.Fatalf("retry after transient fault: %v", err)
	}
	b, _ = os.ReadFile(path)
	if string(b) != "new" {
		t.Fatalf("content after retry = %q", b)
	}
}

func TestFaultFSCrashTearsWriteAndKillsEverything(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	ffs := &FaultFS{FailAt: 2, Crash: true} // op 2 = the write inside WriteAtomic
	err := WriteAtomic(ffs, path, writeString("abcdefgh"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if !ffs.Crashed() {
		t.Fatal("not crashed")
	}
	// The temp file holds a torn prefix: the crash applied half the bytes,
	// and the cleanup Remove after the failure was itself suppressed.
	b, err := os.ReadFile(path + ".tmp")
	if err != nil {
		t.Fatalf("torn temp file should exist: %v", err)
	}
	if string(b) != "abcd" {
		t.Fatalf("torn content = %q, want half-written prefix", b)
	}
	// Everything after the crash fails.
	if err := ffs.SyncDir(dir); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash syncdir err = %v", err)
	}
	if err := ffs.Rename(path+".tmp", path); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash rename err = %v", err)
	}
	if _, err := ffs.Create(path); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash create err = %v", err)
	}
	// Ops counts stop at the crash point.
	if got := ffs.Ops(); got != 2 {
		t.Fatalf("ops = %d, want 2", got)
	}
}

func TestFaultFSCrashOnFileOpenedEarlier(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{FailAt: 3, Crash: true}
	f, err := ffs.OpenAppend(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("r1")); err != nil { // op 2
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) { // op 3: crash
		t.Fatalf("sync err = %v", err)
	}
	if _, err := f.Write([]byte("r2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash write through old handle err = %v", err)
	}
	b, _ := os.ReadFile(filepath.Join(dir, "wal"))
	if string(b) != "r1" {
		t.Fatalf("wal content = %q", b)
	}
}
