// Package vec provides the dense-vector primitives shared by every index in
// this repository: inner products, norms, Euclidean distances and a compact
// binary codec. Vectors are stored as []float32 (matching the on-disk layout
// of real MIPS datasets) while all reductions accumulate in float64 to keep
// condition tests (which compare sums of squares) numerically stable.
package vec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Dot returns the inner product ⟨a,b⟩ accumulated in float64.
// It panics if the lengths differ: every caller indexes vectors of a fixed,
// index-wide dimensionality, so a mismatch is a programming error.
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot dimension mismatch %d != %d", len(a), len(b)))
	}
	return dotKernel(a, b)
}

// Norm2Sq returns ‖a‖₂².
func Norm2Sq(a []float32) float64 {
	var s float64
	for _, v := range a {
		f := float64(v)
		s += f * f
	}
	return s
}

// Norm2 returns the Euclidean norm ‖a‖₂.
func Norm2(a []float32) float64 { return math.Sqrt(Norm2Sq(a)) }

// Norm1 returns the 1-norm ‖a‖₁ = Σ|aᵢ|, used by Quick-Probe's Theorem 4
// upper bound dis(o,q) ≤ ‖o‖₁ + ‖q‖₁.
func Norm1(a []float32) float64 {
	var s float64
	for _, v := range a {
		s += math.Abs(float64(v))
	}
	return s
}

// L2DistSq returns ‖a−b‖₂².
func L2DistSq(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: L2DistSq dimension mismatch %d != %d", len(a), len(b)))
	}
	return l2Kernel(a, b)
}

// L2Dist returns the Euclidean distance ‖a−b‖₂.
func L2Dist(a, b []float32) float64 { return math.Sqrt(L2DistSq(a, b)) }

// Scale returns s·a as a new vector.
func Scale(a []float32, s float64) []float32 {
	out := make([]float32, len(a))
	for i, v := range a {
		out[i] = float32(float64(v) * s)
	}
	return out
}

// Sub returns a−b as a new vector.
func Sub(a, b []float32) []float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Sub dimension mismatch %d != %d", len(a), len(b)))
	}
	out := make([]float32, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Add returns a+b as a new vector.
func Add(a, b []float32) []float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Add dimension mismatch %d != %d", len(a), len(b)))
	}
	out := make([]float32, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b []float32) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: AddInPlace dimension mismatch %d != %d", len(a), len(b)))
	}
	for i := range a {
		a[i] += b[i]
	}
}

// Clone returns a copy of a.
func Clone(a []float32) []float32 {
	out := make([]float32, len(a))
	copy(out, a)
	return out
}

// Append appends the coordinates of a followed by extra values; it is the
// building block for the QNF and Simple-LSH asymmetric transformations that
// extend points by one dimension.
func Append(a []float32, extra ...float32) []float32 {
	out := make([]float32, 0, len(a)+len(extra))
	out = append(out, a...)
	out = append(out, extra...)
	return out
}

// EncodedSize returns the byte length of a dim-dimensional encoded vector.
func EncodedSize(dim int) int { return 4 * dim }

// Encode writes a into buf (little-endian float32) and returns the number of
// bytes written. buf must have at least EncodedSize(len(a)) bytes.
func Encode(buf []byte, a []float32) int {
	for i, v := range a {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return 4 * len(a)
}

// Decode reads dim float32 values from buf into dst (allocating when dst is
// nil or too short) and returns the decoded vector.
func Decode(buf []byte, dim int, dst []float32) []float32 {
	if cap(dst) < dim {
		dst = make([]float32, dim)
	}
	dst = dst[:dim]
	for i := 0; i < dim; i++ {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return dst
}

// MaxNormIndex returns the index of the vector with the largest 2-norm and
// that norm's square. It is used to find oM, the maximum-norm point that
// anchors Condition A. It returns (-1, 0) for an empty set.
func MaxNormIndex(data [][]float32) (int, float64) {
	best, bestSq := -1, 0.0
	for i, v := range data {
		if s := Norm2Sq(v); best == -1 || s > bestSq {
			best, bestSq = i, s
		}
	}
	return best, bestSq
}

// IPToDistSq converts an inner product into a squared Euclidean distance via
// dis²(o,q) = ‖o‖² + ‖q‖² − 2⟨o,q⟩, the identity that lets ProMIPS reuse a
// Euclidean projection argument for inner products.
func IPToDistSq(normOSq, normQSq, ip float64) float64 {
	return normOSq + normQSq - 2*ip
}
