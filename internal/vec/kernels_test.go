package vec

import (
	"math"
	"math/rand"
	"testing"
	"unsafe"
)

// encodeAt returns v encoded little-endian into a buffer with the given
// leading pad, so tests can control the alignment of the encoded bytes.
func encodeAt(v []float32, pad int) []byte {
	buf := make([]byte, pad+EncodedSize(len(v)))
	Encode(buf[pad:], v)
	return buf[pad:]
}

// randVec draws n float32s including adversarial payloads: NaN, ±Inf,
// negative zero, denormals and huge magnitudes.
func advVec(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		switch rng.Intn(12) {
		case 0:
			out[i] = float32(math.NaN())
		case 1:
			out[i] = float32(math.Inf(1))
		case 2:
			out[i] = float32(math.Inf(-1))
		case 3:
			out[i] = float32(math.Copysign(0, -1))
		case 4:
			out[i] = math.Float32frombits(rng.Uint32()) // any bit pattern
		case 5:
			out[i] = float32(rng.NormFloat64()) * 1e30
		default:
			out[i] = float32(rng.NormFloat64())
		}
	}
	return out
}

// bitsEqual compares float64s as bits (so -0 != +0 and Inf must match
// exactly), except that any NaN equals any NaN: IEEE 754 leaves the
// propagated payload unspecified, and the compiler may commute multiply
// operands differently between two inlined copies of the same loop, which
// flips the propagated NaN's sign bit. Every non-NaN result is fully
// determined by the operation sequence and must match bit-for-bit.
func bitsEqual(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestFusedKernelsBitIdentical is the property test of the zero-copy page
// kernels: for random lengths (including odd ones that exercise the unroll
// tail) and adversarial payloads, DotBytes and L2DistSqBytes must be
// bit-identical to Decode + Dot / L2DistSq, and the same must hold for the
// portable (non-aliasing) fallbacks.
func TestFusedKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(70) // 0..69 covers empty, tails of every residue, larger runs
		o := advVec(rng, n)
		q := advVec(rng, n)
		buf := encodeAt(o, 0)

		decoded := Decode(buf, n, nil)
		wantDot := Dot(decoded, q)
		wantL2 := L2DistSq(decoded, q)

		if got := DotBytes(buf, q); !bitsEqual(got, wantDot) {
			t.Fatalf("n=%d DotBytes=%x want %x", n, math.Float64bits(got), math.Float64bits(wantDot))
		}
		if got := L2DistSqBytes(buf, q); !bitsEqual(got, wantL2) {
			t.Fatalf("n=%d L2DistSqBytes=%x want %x", n, math.Float64bits(got), math.Float64bits(wantL2))
		}
		if got := dotBytesPortable(buf, q); !bitsEqual(got, wantDot) {
			t.Fatalf("n=%d portable dot=%x want %x", n, math.Float64bits(got), math.Float64bits(wantDot))
		}
		if got := l2DistSqBytesPortable(buf, q); !bitsEqual(got, wantL2) {
			t.Fatalf("n=%d portable l2=%x want %x", n, math.Float64bits(got), math.Float64bits(wantL2))
		}
		if !bitsEqual(math.Sqrt(wantL2), L2DistBytes(buf, q)) {
			t.Fatalf("n=%d L2DistBytes mismatch", n)
		}

		// Unaligned encoding: the view must be granted exactly when the
		// buffer start is float-aligned (a 1-padded slice usually is not,
		// but the tiny allocator can place small odd-sized buffers at any
		// alignment), and the fused fallback must be bit-identical either
		// way.
		un := encodeAt(o, 1)
		if n > 0 {
			aligned := uintptr(unsafe.Pointer(&un[0]))%4 == 0
			if _, ok := F32View(un, n); ok != (aligned && hostLittleEndian) {
				t.Fatalf("n=%d F32View ok=%v, want %v", n, ok, aligned && hostLittleEndian)
			}
		}
		if got := DotBytes(un, q); !bitsEqual(got, wantDot) {
			t.Fatalf("n=%d unaligned DotBytes=%x want %x", n, math.Float64bits(got), math.Float64bits(wantDot))
		}
		if got := L2DistSqBytes(un, q); !bitsEqual(got, wantL2) {
			t.Fatalf("n=%d unaligned L2DistSqBytes=%x want %x", n, math.Float64bits(got), math.Float64bits(wantL2))
		}
	}
}

// TestF32View checks the aliasing contract: same values as Decode, shared
// memory, empty views, and the short-buffer panic.
func TestF32View(t *testing.T) {
	o := []float32{1.5, -2.25, float32(math.Inf(1)), 0}
	buf := encodeAt(o, 0)
	v, ok := F32View(buf, len(o))
	if !ok {
		if hostLittleEndian {
			t.Fatal("F32View refused an aligned buffer on a little-endian host")
		}
		t.Skip("big-endian host: no aliased view")
	}
	for i := range o {
		if math.Float32bits(v[i]) != math.Float32bits(o[i]) {
			t.Fatalf("view[%d]=%v want %v", i, v[i], o[i])
		}
	}
	// The view aliases, not copies: a byte edit must show through.
	buf[0]++
	if math.Float32bits(v[0]) == math.Float32bits(o[0]) {
		t.Fatal("F32View copied instead of aliasing")
	}

	if v, ok := F32View(nil, 0); !ok || len(v) != 0 {
		t.Fatal("empty view should succeed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short buffer")
		}
	}()
	F32View(buf, len(o)+1)
}

// FuzzDotBytes cross-checks the fused kernel against decode-then-reduce on
// fuzzer-chosen bytes.
func FuzzDotBytes(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 64}, uint8(2))
	f.Add([]byte{255, 255, 255, 127, 1, 0, 0, 0, 9, 9, 9, 9}, uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, dim uint8) {
		n := int(dim) % 33
		if len(raw) < 4*n {
			t.Skip()
		}
		q := make([]float32, n)
		for i := range q {
			q[i] = float32(i) - 7.5
		}
		decoded := Decode(raw, n, nil)
		if got, want := DotBytes(raw, q), Dot(decoded, q); !bitsEqual(got, want) {
			t.Fatalf("DotBytes=%x want %x", math.Float64bits(got), math.Float64bits(want))
		}
		if got, want := L2DistSqBytes(raw, q), L2DistSq(decoded, q); !bitsEqual(got, want) {
			t.Fatalf("L2DistSqBytes=%x want %x", math.Float64bits(got), math.Float64bits(want))
		}
	})
}

func BenchmarkDotDecodeThenReduce(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	o, q := advVec(rng, 300), advVec(rng, 300)
	buf := encodeAt(o, 0)
	dst := make([]float32, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Decode(buf, 300, dst)
		_ = Dot(dst, q)
	}
}

func BenchmarkDotBytesFused(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	o, q := advVec(rng, 300), advVec(rng, 300)
	buf := encodeAt(o, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DotBytes(buf, q)
	}
}
