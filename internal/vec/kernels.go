package vec

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Fused page kernels. Candidate verification — the dominant cost of every
// MIPS method in the paper — reads original vectors back from disk pages.
// The kernels in this file compute reductions straight from the page bytes
// the pager hands out: on little-endian hosts the bytes are aliased as
// []float32 with no copy at all; elsewhere (or when a caller passes an
// unaligned buffer) a fused decode loop converts each element in the
// reduction itself, so no intermediate []float32 buffer exists on either
// path.
//
// Bit-exactness contract: every kernel performs the exact float operation
// sequence of Decode followed by the corresponding []float32 reduction
// (single float64 accumulator, ascending index order). The 4-way unrolling
// below keeps that order — it only removes loop overhead, never
// reassociates the sum — so DotBytes/L2DistSqBytes are bit-identical to
// Dot/L2DistSq on decoded copies, and search results are bit-identical to
// the pre-kernel implementation (pinned by internal/core's golden test).

// hostLittleEndian reports whether this machine stores multi-byte values
// little-endian, i.e. whether the on-disk layout can be aliased directly.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// F32View returns buf's first 4*dim bytes aliased as a []float32 without
// copying, and ok=true, when the host is little-endian and buf is 4-byte
// aligned. Otherwise ok=false and the caller must fall back to Decode (or a
// fused *Bytes kernel). The view shares memory with buf: it is read-only
// and valid exactly as long as buf is — for pager pages, until the page's
// owner releases it (see the pager's snapshot contract).
func F32View(buf []byte, dim int) ([]float32, bool) {
	if dim == 0 {
		return nil, true
	}
	if len(buf) < 4*dim {
		panic(fmt.Sprintf("vec: F32View of %d floats over %d bytes", dim, len(buf)))
	}
	if !hostLittleEndian {
		return nil, false
	}
	p := unsafe.Pointer(&buf[0])
	if uintptr(p)%unsafe.Alignof(float32(0)) != 0 {
		return nil, false
	}
	return unsafe.Slice((*float32)(p), dim), true
}

// AppendF32LE appends v's elements to dst in little-endian float32 wire
// format — the inverse of F32View, used by the update journal's record
// encoder on the insert acknowledgement path. On a little-endian host the
// whole slice is appended as one bulk copy of its underlying bytes; the
// portable fallback encodes element-wise. Both paths produce identical
// bytes (IEEE-754 bits, little-endian order).
func AppendF32LE(dst []byte, v []float32) []byte {
	if len(v) == 0 {
		return dst
	}
	if hostLittleEndian {
		return append(dst, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))...)
	}
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(x))
	}
	return dst
}

// U32 reads a little-endian uint32 — the record-id load of the page scan
// loops, kept here so the scan paths carry no per-element binary.* decoding.
func U32(buf []byte) uint32 { return binary.LittleEndian.Uint32(buf) }

// U64 reads a little-endian uint64 (directory metadata in the scan paths).
func U64(buf []byte) uint64 { return binary.LittleEndian.Uint64(buf) }

// dotKernel is the shared inner-product loop: single float64 accumulator in
// ascending index order (the bit-exactness contract), 4-way unrolled.
// Callers guarantee len(b) <= len(a).
func dotKernel(a, b []float32) float64 {
	var s float64
	i, n := 0, len(b)
	for ; i+4 <= n; i += 4 {
		s += float64(a[i]) * float64(b[i])
		s += float64(a[i+1]) * float64(b[i+1])
		s += float64(a[i+2]) * float64(b[i+2])
		s += float64(a[i+3]) * float64(b[i+3])
	}
	for ; i < n; i++ {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// l2Kernel is the shared squared-distance loop; same contract as dotKernel.
func l2Kernel(a, b []float32) float64 {
	var s float64
	i, n := 0, len(b)
	for ; i+4 <= n; i += 4 {
		d0 := float64(a[i]) - float64(b[i])
		s += d0 * d0
		d1 := float64(a[i+1]) - float64(b[i+1])
		s += d1 * d1
		d2 := float64(a[i+2]) - float64(b[i+2])
		s += d2 * d2
		d3 := float64(a[i+3]) - float64(b[i+3])
		s += d3 * d3
	}
	for ; i < n; i++ {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// DotBytes returns ⟨o,b⟩ where o is the len(b)-dimensional encoded vector
// at the start of buf — bit-identical to Dot(Decode(buf, len(b), nil), b)
// with no decode buffer. It panics when buf is too short, mirroring Dot's
// dimension-mismatch panic.
func DotBytes(buf []byte, b []float32) float64 {
	if len(buf) < 4*len(b) {
		panic(fmt.Sprintf("vec: DotBytes of %d floats over %d bytes", len(b), len(buf)))
	}
	if v, ok := F32View(buf, len(b)); ok {
		return dotKernel(v, b)
	}
	return dotBytesPortable(buf, b)
}

// dotBytesPortable is the fused decode+multiply fallback for big-endian or
// unaligned buffers; same operation order as dotKernel.
func dotBytesPortable(buf []byte, b []float32) float64 {
	var s float64
	for i := range b {
		o := math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		s += float64(o) * float64(b[i])
	}
	return s
}

// L2DistSqBytes returns ‖o−b‖₂² for the encoded vector at the start of buf —
// bit-identical to L2DistSq(Decode(buf, len(b), nil), b) with no decode
// buffer.
func L2DistSqBytes(buf []byte, b []float32) float64 {
	if len(buf) < 4*len(b) {
		panic(fmt.Sprintf("vec: L2DistSqBytes of %d floats over %d bytes", len(b), len(buf)))
	}
	if v, ok := F32View(buf, len(b)); ok {
		return l2Kernel(v, b)
	}
	return l2DistSqBytesPortable(buf, b)
}

func l2DistSqBytesPortable(buf []byte, b []float32) float64 {
	var s float64
	for i := range b {
		o := math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		d := float64(o) - float64(b[i])
		s += d * d
	}
	return s
}

// L2DistBytes returns ‖o−b‖₂ for the encoded vector at the start of buf.
func L2DistBytes(buf []byte, b []float32) float64 {
	return math.Sqrt(L2DistSqBytes(buf, b))
}
