package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(r *rand.Rand, d int) []float32 {
	v := make([]float32, d)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return v
}

func TestDotBasic(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, -5, 6}
	if got := Dot(a, b); got != 4-10+18 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestDotEmpty(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestNorms(t *testing.T) {
	a := []float32{3, -4}
	if got := Norm2Sq(a); got != 25 {
		t.Fatalf("Norm2Sq = %v, want 25", got)
	}
	if got := Norm2(a); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm1(a); got != 7 {
		t.Fatalf("Norm1 = %v, want 7", got)
	}
}

func TestL2Dist(t *testing.T) {
	a := []float32{0, 0}
	b := []float32{3, 4}
	if got := L2Dist(a, b); got != 5 {
		t.Fatalf("L2Dist = %v, want 5", got)
	}
	if got := L2DistSq(a, b); got != 25 {
		t.Fatalf("L2DistSq = %v, want 25", got)
	}
}

func TestScaleSubAdd(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 5}
	if got := Scale(a, 2); got[0] != 2 || got[1] != 4 {
		t.Fatalf("Scale = %v", got)
	}
	if got := Sub(b, a); got[0] != 2 || got[1] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Add(b, a); got[0] != 4 || got[1] != 7 {
		t.Fatalf("Add = %v", got)
	}
	c := Clone(a)
	AddInPlace(c, b)
	if c[0] != 4 || c[1] != 7 {
		t.Fatalf("AddInPlace = %v", c)
	}
	if a[0] != 1 {
		t.Fatal("Clone aliased its input")
	}
}

func TestAppend(t *testing.T) {
	a := []float32{1, 2}
	got := Append(a, 9)
	if len(got) != 3 || got[2] != 9 {
		t.Fatalf("Append = %v", got)
	}
	got[0] = 100
	if a[0] != 1 {
		t.Fatal("Append aliased its input")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		d := 1 + r.Intn(100)
		v := randVec(r, d)
		buf := make([]byte, EncodedSize(d))
		if n := Encode(buf, v); n != 4*d {
			t.Fatalf("Encode wrote %d bytes, want %d", n, 4*d)
		}
		got := Decode(buf, d, nil)
		for i := range v {
			if got[i] != v[i] {
				t.Fatalf("round trip mismatch at %d: %v != %v", i, got[i], v[i])
			}
		}
	}
}

func TestDecodeReusesBuffer(t *testing.T) {
	v := []float32{1, 2, 3}
	buf := make([]byte, EncodedSize(3))
	Encode(buf, v)
	dst := make([]float32, 8)
	got := Decode(buf, 3, dst)
	if len(got) != 3 {
		t.Fatalf("Decode len = %d, want 3", len(got))
	}
	if &got[0] != &dst[0] {
		t.Fatal("Decode did not reuse the provided buffer")
	}
}

func TestMaxNormIndex(t *testing.T) {
	data := [][]float32{{1, 0}, {3, 4}, {0, 2}}
	i, sq := MaxNormIndex(data)
	if i != 1 || sq != 25 {
		t.Fatalf("MaxNormIndex = (%d, %v), want (1, 25)", i, sq)
	}
	if i, _ := MaxNormIndex(nil); i != -1 {
		t.Fatalf("MaxNormIndex(nil) = %d, want -1", i)
	}
}

// Property: Cauchy-Schwarz |⟨a,b⟩| ≤ ‖a‖‖b‖.
func TestPropertyCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(64)
		a, b := randVec(r, d), randVec(r, d)
		return math.Abs(Dot(a, b)) <= Norm2(a)*Norm2(b)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for L2Dist.
func TestPropertyTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(64)
		a, b, c := randVec(r, d), randVec(r, d), randVec(r, d)
		return L2Dist(a, c) <= L2Dist(a, b)+L2Dist(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the inner-product/distance identity dis² = ‖o‖²+‖q‖²−2⟨o,q⟩
// that ProMIPS' searching conditions rely on (paper §IV, Lemma 2).
func TestPropertyIPDistanceIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(64)
		o, q := randVec(r, d), randVec(r, d)
		lhs := L2DistSq(o, q)
		rhs := IPToDistSq(Norm2Sq(o), Norm2Sq(q), Dot(o, q))
		return math.Abs(lhs-rhs) <= 1e-6*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ‖a‖₂ ≤ ‖a‖₁ ≤ √d·‖a‖₂ (Theorems 3/4 rely on both directions).
func TestPropertyNormEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(64)
		a := randVec(r, d)
		n1, n2 := Norm1(a), Norm2(a)
		return n2 <= n1+1e-6 && n1 <= math.Sqrt(float64(d))*n2+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode is the identity on float32 slices.
func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(raw []float32) bool {
		buf := make([]byte, EncodedSize(len(raw)))
		Encode(buf, raw)
		got := Decode(buf, len(raw), nil)
		for i := range raw {
			a, b := raw[i], got[i]
			if a != b && !(math.IsNaN(float64(a)) && math.IsNaN(float64(b))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDot300(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	x, y := randVec(r, 300), randVec(r, 300)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Dot(x, y)
	}
}
