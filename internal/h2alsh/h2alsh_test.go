package h2alsh

import (
	"math/rand"
	"testing"

	"promips/exact"
)

func randData(r *rand.Rand, n, d int) [][]float32 {
	data := make([][]float32, n)
	for i := range data {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		// Skew norms so the homocentric partition has work to do.
		scale := float32(0.2 + 3*r.Float64()*r.Float64())
		for j := range v {
			v[j] *= scale
		}
		data[i] = v
	}
	return data
}

func build(t testing.TB, data [][]float32, cfg Config) *Index {
	t.Helper()
	ix, err := Build(data, t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(nil, t.TempDir(), Config{}); err == nil {
		t.Fatal("expected error for empty data")
	}
}

func TestPartitioningCoversAllPoints(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data := randData(r, 1200, 12)
	ix := build(t, data, Config{Seed: 2, PageSize: 1024})
	if ix.Partitions() < 2 {
		t.Fatalf("norm-skewed data should give >= 2 partitions, got %d", ix.Partitions())
	}
	total := 0
	prevMax := 1e18
	for _, p := range ix.parts {
		total += len(p.ids)
		if p.maxNorm > prevMax {
			t.Fatal("partitions not in descending max-norm order")
		}
		prevMax = p.maxNorm
		for _, id := range p.ids {
			if ix.norms[id] > p.maxNorm+1e-9 {
				t.Fatalf("point %d exceeds its partition's max norm", id)
			}
		}
	}
	if total != 1200 {
		t.Fatalf("partitions cover %d of 1200 points", total)
	}
}

func TestSearchQuality(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data := randData(r, 2000, 16)
	ix := build(t, data, Config{Seed: 4, PageSize: 1024})
	var ratioSum float64
	const queries = 15
	for trial := 0; trial < queries; trial++ {
		q := randData(r, 1, 16)[0]
		got, st, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatal("no results")
		}
		if st.PageAccesses == 0 || st.Candidates == 0 {
			t.Fatalf("stats empty: %+v", st)
		}
		gt := exact.TopK(data, q, 10)
		for i := range got {
			if i < len(gt) && gt[i].IP > 0 {
				ratioSum += got[i].IP / gt[i].IP
			} else {
				ratioSum++
			}
		}
	}
	avg := ratioSum / float64(queries*10)
	if avg < 0.85 {
		t.Fatalf("H2-ALSH overall ratio %.3f too low", avg)
	}
}

func TestSearchZeroQuery(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	data := randData(r, 200, 8)
	ix := build(t, data, Config{Seed: 6, PageSize: 512})
	got, _, err := ix.Search(make([]float32, 8), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("zero query returned %d results", len(got))
	}
}

func TestSearchErrors(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	data := randData(r, 100, 8)
	ix := build(t, data, Config{Seed: 8, PageSize: 512})
	if _, _, err := ix.Search(make([]float32, 7), 1); err == nil {
		t.Fatal("expected dim mismatch error")
	}
	if _, _, err := ix.Search(make([]float32, 8), 0); err == nil {
		t.Fatal("expected k error")
	}
}

func TestIndexSizeGrowsWithTables(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	data := randData(r, 600, 10)
	small := build(t, data, Config{Seed: 10, MaxTables: 8, PageSize: 512})
	large := build(t, data, Config{Seed: 10, MaxTables: 64, PageSize: 512})
	if large.IndexSizeBytes() <= small.IndexSizeBytes() {
		t.Fatalf("more tables should mean a bigger index: %d vs %d",
			large.IndexSizeBytes(), small.IndexSizeBytes())
	}
}

func TestEarlyTerminationByNorm(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	// One dominant-norm cluster and a mass of tiny-norm points: the scan
	// should stop after the first partition for most queries.
	data := randData(r, 1500, 12)
	for i := 100; i < 1500; i++ {
		for j := range data[i] {
			data[i][j] *= 0.01
		}
	}
	ix := build(t, data, Config{Seed: 12, PageSize: 1024})
	q := randData(r, 1, 12)[0]
	_, st, err := ix.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates > 600 {
		t.Fatalf("norm pruning ineffective: %d candidates verified", st.Candidates)
	}
}
