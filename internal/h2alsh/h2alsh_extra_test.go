package h2alsh

import (
	"math/rand"
	"testing"
)

// An all-zero dataset exercises the zero-max-norm partition path: no QALSH
// index is built and any k points are exact answers (every IP is 0).
func TestAllZeroDataset(t *testing.T) {
	data := make([][]float32, 50)
	for i := range data {
		data[i] = make([]float32, 8)
	}
	ix := build(t, data, Config{Seed: 21, PageSize: 512})
	if ix.Partitions() != 1 {
		t.Fatalf("zero data should form one partition, got %d", ix.Partitions())
	}
	got, _, err := ix.Search([]float32{1, 0, 0, 0, 0, 0, 0, 0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("returned %d results", len(got))
	}
	for _, g := range got {
		if g.IP != 0 {
			t.Fatalf("zero data gave IP %v", g.IP)
		}
	}
}

// A dataset with a zero-norm tail: the tiny-norm points merge into the
// last interval; every point must still be searchable.
func TestZeroNormTail(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	data := randData(r, 300, 8)
	for i := 250; i < 300; i++ {
		for j := range data[i] {
			data[i][j] = 0
		}
	}
	ix := build(t, data, Config{Seed: 24, PageSize: 512})
	total := 0
	for _, p := range ix.parts {
		total += len(p.ids)
	}
	if total != 300 {
		t.Fatalf("partitions cover %d of 300", total)
	}
	q := randData(r, 1, 8)[0]
	got, _, err := ix.Search(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("returned %d results", len(got))
	}
}

func TestKLargerThanN(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	data := randData(r, 30, 6)
	ix := build(t, data, Config{Seed: 26, PageSize: 512})
	got, _, err := ix.Search(randData(r, 1, 6)[0], 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("k>n returned %d results, want 30", len(got))
	}
}

func TestName(t *testing.T) {
	r := rand.New(rand.NewSource(27))
	ix := build(t, randData(r, 20, 4), Config{Seed: 28, PageSize: 512})
	if ix.Name() != "H2-ALSH" {
		t.Fatalf("Name = %q", ix.Name())
	}
}
