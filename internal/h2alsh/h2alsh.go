// Package h2alsh implements the H2-ALSH baseline (Huang et al., KDD 2018):
// a homocentric-hypersphere partition of the dataset by norm, the
// error-free QNF asymmetric transformation from MIP search to NN search
// within each partition, and a disk-resident QALSH index per partition —
// the configuration the ProMIPS paper benchmarks against.
//
// Partition j collects points with norms in (M/b^{j+1}, M/b^j], b = c0².
// Within partition j with λ_j = max norm, QNF maps
//
//	o ↦ o' = [o/λ_j ; sqrt(1 − ‖o‖²/λ_j²)]   (unit norm)
//	q ↦ q' = [q/‖q‖ ; 0]
//
// so dis²(o',q') = 2 − 2⟨o,q⟩/(λ_j‖q‖): the NN order in the transformed
// space is exactly the MIP order — no transformation error. Partitions are
// probed in descending λ_j and the scan stops once λ_j‖q‖ cannot beat the
// current k-th best inner product.
package h2alsh

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"promips/internal/pager"
	"promips/internal/qalsh"
	"promips/internal/store"
	"promips/internal/vec"
	"promips/mips"
)

// Config parameterizes an H2-ALSH index.
type Config struct {
	// C0 is the ANN approximation ratio handed to QALSH (paper: 2.0).
	C0 float64
	// MinSubset merges norm intervals holding fewer points than this into
	// their successor, keeping per-partition QALSH parameters sane.
	MinSubset int
	// MaxTables caps QALSH's table count per partition.
	MaxTables int
	PageSize  int
	PoolSize  int
	Seed      int64
}

func (c *Config) normalize() {
	if c.C0 <= 1 {
		c.C0 = 2.0
	}
	if c.MinSubset <= 0 {
		c.MinSubset = 64
	}
	if c.PageSize <= 0 {
		c.PageSize = pager.DefaultPageSize
	}
}

// partition is one norm interval with its QALSH index.
type partition struct {
	ids     []uint32 // global ids, descending norm
	maxNorm float64  // λ_j
	idx     *qalsh.Index
}

// Index is a built H2-ALSH index implementing mips.Method.
type Index struct {
	cfg   Config
	d, n  int
	parts []partition
	orig  *store.Store
	norms []float64
}

var _ mips.Method = (*Index)(nil)

// Build constructs the index over data in dir.
func Build(data [][]float32, dir string, cfg Config) (*Index, error) {
	cfg.normalize()
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("h2alsh: empty dataset")
	}
	d := len(data[0])

	norms := make([]float64, n)
	order := make([]uint32, n)
	for i, o := range data {
		norms[i] = vec.Norm2(o)
		order[i] = uint32(i)
	}
	sort.Slice(order, func(a, b int) bool { return norms[order[a]] > norms[order[b]] })

	// Norm intervals (M/b^{j+1}, M/b^j] with small tails merged forward.
	b := cfg.C0 * cfg.C0
	M := norms[order[0]]
	var groups [][]uint32
	if M == 0 {
		groups = [][]uint32{order}
	} else {
		bound := M / b
		cur := []uint32{}
		for _, id := range order {
			for norms[id] <= bound && bound > M*1e-9 {
				if len(cur) >= cfg.MinSubset {
					groups = append(groups, cur)
					cur = []uint32{}
				}
				bound /= b
			}
			cur = append(cur, id)
		}
		if len(cur) > 0 {
			groups = append(groups, cur)
		}
	}

	ix := &Index{cfg: cfg, d: d, n: n, norms: norms}

	// One store for all original vectors, laid out partition by partition.
	w, err := store.Create(filepath.Join(dir, "h2alsh.orig"), d, n,
		pager.Options{PageSize: cfg.PageSize, PoolSize: cfg.PoolSize})
	if err != nil {
		return nil, err
	}
	for _, g := range groups {
		for _, id := range g {
			if err := w.Append(id, data[id]); err != nil {
				return nil, err
			}
		}
	}
	st, err := w.Finalize()
	if err != nil {
		return nil, err
	}
	ix.orig = st

	for j, g := range groups {
		lambda := norms[g[0]]
		if lambda == 0 {
			// Pure-zero partition: no index needed; any point has IP 0.
			ix.parts = append(ix.parts, partition{ids: g, maxNorm: 0})
			continue
		}
		transformed := make([][]float32, len(g))
		for i, id := range g {
			o := data[id]
			t := make([]float32, d+1)
			for jj, v := range o {
				t[jj] = float32(float64(v) / lambda)
			}
			rest := 1 - (norms[id]*norms[id])/(lambda*lambda)
			if rest < 0 {
				rest = 0
			}
			t[d] = float32(math.Sqrt(rest))
			transformed[i] = t
		}
		pdir := filepath.Join(dir, fmt.Sprintf("part%03d", j))
		if err := os.MkdirAll(pdir, 0o755); err != nil {
			return nil, err
		}
		// Candidate budget per partition: QALSH's convention is β·n = 100,
		// which starves accuracy on partitions holding thousands of
		// points; H2-ALSH's reported quality needs a verification budget
		// proportional to the partition (≈10%), which is also what drives
		// its page-access cost above ProMIPS' in the paper's Fig 7.
		budget := len(g) / 10
		if budget < 100 {
			budget = 100
		}
		qidx, err := qalsh.Build(transformed, pdir, qalsh.Config{
			C: cfg.C0, MaxTables: cfg.MaxTables, BetaCount: budget,
			PageSize: cfg.PageSize, PoolSize: cfg.PoolSize,
			Seed: cfg.Seed + int64(j),
		})
		if err != nil {
			return nil, err
		}
		ix.parts = append(ix.parts, partition{ids: g, maxNorm: lambda, idx: qidx})
	}
	return ix, nil
}

// Name implements mips.Method.
func (ix *Index) Name() string { return "H2-ALSH" }

// Partitions returns the number of norm partitions built.
func (ix *Index) Partitions() int { return len(ix.parts) }

// IndexSizeBytes sums the per-partition QALSH hash tables (the multi-table
// structure Fig. 4(a) charges against LSH methods).
func (ix *Index) IndexSizeBytes() int64 {
	var total int64
	for _, p := range ix.parts {
		if p.idx != nil {
			total += p.idx.IndexSizeBytes()
		}
	}
	return total
}

func (ix *Index) pagers() []*pager.Pager {
	out := []*pager.Pager{ix.orig.Pager()}
	for _, p := range ix.parts {
		if p.idx != nil {
			out = append(out, p.idx.Pager())
		}
	}
	return out
}

// Search implements mips.Method: probe partitions in descending max norm,
// converting each partition's c-ANN search back to inner products.
func (ix *Index) Search(q []float32, k int) ([]mips.Result, mips.QueryStats, error) {
	if len(q) != ix.d {
		return nil, mips.QueryStats{}, fmt.Errorf("h2alsh: query dim %d, want %d", len(q), ix.d)
	}
	if k <= 0 {
		return nil, mips.QueryStats{}, fmt.Errorf("h2alsh: k must be positive")
	}
	if k > ix.n {
		k = ix.n
	}
	for _, pg := range ix.pagers() {
		pg.DropPool()
		pg.ResetStats()
	}
	var qs mips.QueryStats

	normQ := vec.Norm2(q)
	top := mips.NewTopK(k)
	if normQ == 0 {
		// Every inner product is zero; any k points are exact.
		for id := uint32(0); int(id) < k; id++ {
			top.Offer(id, 0)
		}
		return append([]mips.Result(nil), top.Results()...), qs, nil
	}

	// Transformed query: [q/‖q‖ ; 0], shared by all partitions.
	qt := make([]float32, ix.d+1)
	for j, v := range q {
		qt[j] = float32(float64(v) / normQ)
	}

	buf := make([]float32, ix.d)
	for _, p := range ix.parts {
		kth, full := top.Kth()
		if full && p.maxNorm*normQ <= kth {
			break // no point in this or any later partition can improve top-k
		}
		if p.idx == nil {
			for _, id := range p.ids {
				top.Offer(id, 0)
			}
			continue
		}
		lambda := p.maxNorm
		verify := func(lid uint32) (float64, error) {
			gid := p.ids[lid]
			o, err := ix.orig.Vector(gid, buf, nil)
			if err != nil {
				return 0, err
			}
			qs.Candidates++
			ip := vec.Dot(o, q)
			top.Offer(gid, ip)
			dSq := 2 - 2*ip/(lambda*normQ)
			if dSq < 0 {
				dSq = 0
			}
			return math.Sqrt(dSq), nil
		}
		if _, err := p.idx.Search(qt, k, verify); err != nil {
			return nil, qs, err
		}
	}

	for _, pg := range ix.pagers() {
		qs.PageAccesses += pg.Stats().Misses
	}
	return append([]mips.Result(nil), top.Results()...), qs, nil
}

// Close releases all page files.
func (ix *Index) Close() error {
	err := ix.orig.Close()
	for _, p := range ix.parts {
		if p.idx != nil {
			if e := p.idx.Close(); err == nil {
				err = e
			}
		}
	}
	return err
}
