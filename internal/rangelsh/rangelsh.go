// Package rangelsh implements the Norm-Ranging LSH baseline (Yan et al.,
// NeurIPS 2018). The dataset is split by norm rank into equal-size
// sub-datasets; each sub-dataset applies the Simple-LSH transformation with
// its own local maximum norm U_j,
//
//	o ↦ [o/U_j ; sqrt(1 − ‖o‖²/U_j²)]   (exactly unit norm)
//
// and hashes the result with SimHash sign codes. Because ⟨o,q⟩ =
// U_j‖q‖·cos θ(o', q̃), a bucket's Hamming distance to the query code
// estimates the angle and U_j scales it back to an inner product, which is
// what the single-table multi-probe strategy ranks buckets by across all
// sub-datasets. Points of one bucket are stored contiguously on disk (each
// sub-dataset sequential in descending norm, as the ProMIPS paper's
// experimental setup describes), so probing a bucket is a sequential scan.
package rangelsh

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"path/filepath"
	"sort"

	"promips/internal/pager"
	"promips/internal/store"
	"promips/internal/vec"
	"promips/mips"
)

// Config parameterizes a Range-LSH index.
type Config struct {
	// Partitions is the number of norm-rank sub-datasets (paper: 32).
	Partitions int
	// CodeLength is the SimHash code length in bits (paper: 16; max 32).
	CodeLength int
	// MaxCandidatesFrac bounds verified candidates as a fraction of n
	// (default 0.1): the multi-probe loop stops after this budget even if
	// bucket bounds still look promising.
	MaxCandidatesFrac float64
	// HammingSlack loosens the bucket upper bound by this many bits when
	// deciding termination, compensating for SimHash's angle-estimation
	// variance (default 2).
	HammingSlack int
	PageSize     int
	PoolSize     int
	Seed         int64
}

func (c *Config) normalize() {
	if c.Partitions <= 0 {
		c.Partitions = 32
	}
	if c.CodeLength <= 0 {
		c.CodeLength = 16
	}
	if c.CodeLength > 32 {
		c.CodeLength = 32
	}
	if c.MaxCandidatesFrac <= 0 {
		c.MaxCandidatesFrac = 0.3
	}
	if c.HammingSlack == 0 {
		c.HammingSlack = 4
	}
	if c.PageSize <= 0 {
		c.PageSize = pager.DefaultPageSize
	}
}

// bucket is one (sub-dataset, code) group laid out contiguously in the
// vector store.
type bucket struct {
	sub      int
	code     uint32
	startPos int
	count    int
}

// Index is a built Range-LSH index implementing mips.Method.
type Index struct {
	cfg     Config
	d, n    int
	subMax  []float64   // U_j per sub-dataset
	hyper   [][]float32 // CodeLength × (d+1) SimHash hyperplanes
	buckets []bucket
	orig    *store.Store
	posToID []uint32 // lazy inverse of the store's id→pos table
}

var _ mips.Method = (*Index)(nil)

// Build constructs the index over data in dir.
func Build(data [][]float32, dir string, cfg Config) (*Index, error) {
	cfg.normalize()
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("rangelsh: empty dataset")
	}
	d := len(data[0])
	if cfg.Partitions > n {
		cfg.Partitions = n
	}

	norms := make([]float64, n)
	order := make([]uint32, n)
	for i, o := range data {
		norms[i] = vec.Norm2(o)
		order[i] = uint32(i)
	}
	sort.Slice(order, func(a, b int) bool { return norms[order[a]] > norms[order[b]] })

	// Equal-count norm-rank partitions (descending norm).
	per := (n + cfg.Partitions - 1) / cfg.Partitions
	subOf := make([]int, n)
	subMax := make([]float64, 0, cfg.Partitions)
	for s := 0; s*per < n; s++ {
		lo := s * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		subMax = append(subMax, norms[order[lo]])
		for _, id := range order[lo:hi] {
			subOf[id] = s
		}
	}

	// Shared SimHash hyperplanes over the (d+1)-dimensional transform.
	r := rand.New(rand.NewSource(cfg.Seed))
	hyper := make([][]float32, cfg.CodeLength)
	for i := range hyper {
		h := make([]float32, d+1)
		for j := range h {
			h[j] = float32(r.NormFloat64())
		}
		hyper[i] = h
	}

	// Per-point codes on the locally transformed vectors.
	codes := make([]uint32, n)
	tbuf := make([]float32, d+1)
	for i, o := range data {
		u := subMax[subOf[i]]
		simpleLSHTransform(o, norms[i], u, tbuf)
		codes[i] = simHash(hyper, tbuf)
	}

	// Bucket layout: group ids by (sub, code); each sub-dataset stays
	// sequential in descending norm order.
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if subOf[ia] != subOf[ib] {
			return subOf[ia] < subOf[ib]
		}
		return codes[ia] < codes[ib]
	})
	w, err := store.Create(filepath.Join(dir, "rangelsh.orig"), d, n,
		pager.Options{PageSize: cfg.PageSize, PoolSize: cfg.PoolSize})
	if err != nil {
		return nil, err
	}
	var buckets []bucket
	for pos, id := range order {
		if err := w.Append(id, data[id]); err != nil {
			return nil, err
		}
		s, c := subOf[id], codes[id]
		if len(buckets) == 0 || buckets[len(buckets)-1].sub != s || buckets[len(buckets)-1].code != c {
			buckets = append(buckets, bucket{sub: s, code: c, startPos: pos})
		}
		buckets[len(buckets)-1].count++
	}
	st, err := w.Finalize()
	if err != nil {
		return nil, err
	}
	return &Index{cfg: cfg, d: d, n: n, subMax: subMax, hyper: hyper, buckets: buckets, orig: st}, nil
}

// simpleLSHTransform writes [o/u ; sqrt(1−‖o‖²/u²)] into dst (len d+1).
func simpleLSHTransform(o []float32, norm, u float64, dst []float32) {
	if u == 0 {
		for j := range dst {
			dst[j] = 0
		}
		dst[len(dst)-1] = 1
		return
	}
	for j, v := range o {
		dst[j] = float32(float64(v) / u)
	}
	rest := 1 - (norm*norm)/(u*u)
	if rest < 0 {
		rest = 0
	}
	dst[len(o)] = float32(math.Sqrt(rest))
}

func simHash(hyper [][]float32, x []float32) uint32 {
	var c uint32
	for i, h := range hyper {
		var s float64
		for j, v := range h {
			s += float64(v) * float64(x[j])
		}
		if s >= 0 {
			c |= 1 << uint(i)
		}
	}
	return c
}

// Name implements mips.Method.
func (ix *Index) Name() string { return "Range-LSH" }

// IndexSizeBytes counts the per-point codes, the bucket directory, the
// hyperplanes and the sub-dataset norms.
func (ix *Index) IndexSizeBytes() int64 {
	codeBytes := int64(ix.n) * int64((ix.cfg.CodeLength+7)/8)
	dirBytes := int64(len(ix.buckets)) * 20
	hyperBytes := int64(ix.cfg.CodeLength) * int64(ix.d+1) * 4
	return codeBytes + dirBytes + hyperBytes + int64(len(ix.subMax))*8
}

// Buckets returns the number of non-empty buckets.
func (ix *Index) Buckets() int { return len(ix.buckets) }

// Search implements mips.Method: single-table multi-probe over all
// (sub-dataset, bucket) pairs ranked by their estimated inner-product
// upper bound.
func (ix *Index) Search(q []float32, k int) ([]mips.Result, mips.QueryStats, error) {
	if len(q) != ix.d {
		return nil, mips.QueryStats{}, fmt.Errorf("rangelsh: query dim %d, want %d", len(q), ix.d)
	}
	if k <= 0 {
		return nil, mips.QueryStats{}, fmt.Errorf("rangelsh: k must be positive")
	}
	if k > ix.n {
		k = ix.n
	}
	pg := ix.orig.Pager()
	pg.DropPool()
	pg.ResetStats()
	var qs mips.QueryStats

	normQ := vec.Norm2(q)
	top := mips.NewTopK(k)
	if normQ == 0 {
		for id := uint32(0); int(id) < k; id++ {
			top.Offer(id, 0)
		}
		return append([]mips.Result(nil), top.Results()...), qs, nil
	}

	// Query transform [q/‖q‖;0] and its code (identical for all subs).
	qt := make([]float32, ix.d+1)
	for j, v := range q {
		qt[j] = float32(float64(v) / normQ)
	}
	codeQ := simHash(ix.hyper, qt)

	// Rank buckets by estimated bound U_j·‖q‖·cos(π·ham/L).
	L := float64(ix.cfg.CodeLength)
	type ranked struct {
		score float64
		bound float64 // slack-loosened bound used for termination
		bi    int
	}
	rankedBuckets := make([]ranked, len(ix.buckets))
	for i, b := range ix.buckets {
		ham := float64(bits.OnesCount32(b.code ^ codeQ))
		score := ix.subMax[b.sub] * normQ * math.Cos(math.Pi*ham/L)
		hs := ham - float64(ix.cfg.HammingSlack)
		if hs < 0 {
			hs = 0
		}
		bound := ix.subMax[b.sub] * normQ * math.Cos(math.Pi*hs/L)
		rankedBuckets[i] = ranked{score: score, bound: bound, bi: i}
	}
	sort.Slice(rankedBuckets, func(a, b int) bool { return rankedBuckets[a].score > rankedBuckets[b].score })

	budget := int(ix.cfg.MaxCandidatesFrac * float64(ix.n))
	if budget < 10*k {
		budget = 10 * k
	}
	buf := make([]float32, ix.d)
	for _, rb := range rankedBuckets {
		kth, full := top.Kth()
		if full && rb.bound <= kth {
			break // no remaining bucket can plausibly improve top-k
		}
		if qs.Candidates >= budget {
			break
		}
		b := ix.buckets[rb.bi]
		for pos := b.startPos; pos < b.startPos+b.count; pos++ {
			o, err := ix.orig.VectorAt(pos, buf, nil)
			if err != nil {
				return nil, qs, err
			}
			qs.Candidates++
			// Recover the global id through the layout table.
			id := ix.idAt(pos)
			top.Offer(id, vec.Dot(o, q))
		}
	}

	qs.PageAccesses = pg.Stats().Misses
	return append([]mips.Result(nil), top.Results()...), qs, nil
}

// idAt maps a layout position back to the global id. The store keeps the
// id→pos table; we invert it lazily once.
func (ix *Index) idAt(pos int) uint32 {
	if ix.posToID == nil {
		ix.posToID = make([]uint32, ix.n)
		for id := 0; id < ix.n; id++ {
			ix.posToID[ix.orig.Pos(uint32(id))] = uint32(id)
		}
	}
	return ix.posToID[pos]
}

// Close releases the page file.
func (ix *Index) Close() error { return ix.orig.Close() }
