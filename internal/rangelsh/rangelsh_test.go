package rangelsh

import (
	"math"
	"math/rand"
	"testing"

	"promips/exact"
	"promips/internal/vec"
)

func randData(r *rand.Rand, n, d int) [][]float32 {
	data := make([][]float32, n)
	for i := range data {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		scale := float32(0.2 + 2*r.Float64())
		for j := range v {
			v[j] *= scale
		}
		data[i] = v
	}
	return data
}

func build(t testing.TB, data [][]float32, cfg Config) *Index {
	t.Helper()
	ix, err := Build(data, t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(nil, t.TempDir(), Config{}); err == nil {
		t.Fatal("expected error for empty data")
	}
}

func TestBucketLayoutIsPartition(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data := randData(r, 1000, 12)
	ix := build(t, data, Config{Seed: 2, Partitions: 8, PageSize: 1024})
	total := 0
	prevEnd := 0
	for _, b := range ix.buckets {
		if b.startPos != prevEnd {
			t.Fatalf("bucket gap: start %d after end %d", b.startPos, prevEnd)
		}
		prevEnd = b.startPos + b.count
		total += b.count
	}
	if total != 1000 {
		t.Fatalf("buckets cover %d of 1000 points", total)
	}
	if ix.Buckets() < 8 {
		t.Fatalf("expected many buckets, got %d", ix.Buckets())
	}
}

func TestSubMaxDescending(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data := randData(r, 500, 8)
	ix := build(t, data, Config{Seed: 4, Partitions: 10, PageSize: 512})
	for j := 1; j < len(ix.subMax); j++ {
		if ix.subMax[j] > ix.subMax[j-1]+1e-9 {
			t.Fatal("sub-dataset max norms must descend with rank")
		}
	}
	// Every point's norm is bounded by its sub-dataset's U_j. Recover sub
	// membership through the buckets.
	for _, b := range ix.buckets {
		for pos := b.startPos; pos < b.startPos+b.count; pos++ {
			id := ix.idAt(pos)
			if vec.Norm2(data[id]) > ix.subMax[b.sub]+1e-6 {
				t.Fatalf("point %d exceeds its sub-dataset max norm", id)
			}
		}
	}
}

func TestSimpleLSHTransformUnitNorm(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		d := 2 + r.Intn(20)
		o := make([]float32, d)
		for j := range o {
			o[j] = float32(r.NormFloat64())
		}
		norm := vec.Norm2(o)
		u := norm * (1 + r.Float64())
		dst := make([]float32, d+1)
		simpleLSHTransform(o, norm, u, dst)
		if got := vec.Norm2(dst); math.Abs(got-1) > 1e-5 {
			t.Fatalf("transform norm = %v, want 1", got)
		}
	}
}

func TestSearchQuality(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	data := randData(r, 2000, 16)
	ix := build(t, data, Config{Seed: 7, Partitions: 16, PageSize: 1024})
	var ratioSum float64
	const queries = 15
	for trial := 0; trial < queries; trial++ {
		q := randData(r, 1, 16)[0]
		got, st, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 10 {
			t.Fatalf("returned %d results", len(got))
		}
		if st.PageAccesses == 0 || st.Candidates == 0 {
			t.Fatalf("stats empty: %+v", st)
		}
		gt := exact.TopK(data, q, 10)
		for i := range got {
			if gt[i].IP > 0 {
				ratioSum += got[i].IP / gt[i].IP
			} else {
				ratioSum++
			}
		}
	}
	if avg := ratioSum / float64(queries*10); avg < 0.8 {
		t.Fatalf("Range-LSH overall ratio %.3f too low", avg)
	}
}

func TestSearchZeroQueryAndErrors(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	data := randData(r, 200, 8)
	ix := build(t, data, Config{Seed: 9, Partitions: 4, PageSize: 512})
	got, _, err := ix.Search(make([]float32, 8), 5)
	if err != nil || len(got) != 5 {
		t.Fatalf("zero query: %v, %d results", err, len(got))
	}
	if _, _, err := ix.Search(make([]float32, 7), 5); err == nil {
		t.Fatal("expected dim mismatch error")
	}
	if _, _, err := ix.Search(make([]float32, 8), 0); err == nil {
		t.Fatal("expected k error")
	}
}

func TestCandidateBudgetRespected(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	data := randData(r, 3000, 12)
	ix := build(t, data, Config{Seed: 11, Partitions: 16, MaxCandidatesFrac: 0.05, PageSize: 1024})
	q := randData(r, 1, 12)[0]
	_, st, err := ix.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Budget is max(0.05n, 10k) = 150; allow one bucket of overshoot.
	if st.Candidates > 150+300 {
		t.Fatalf("candidate budget exceeded: %d", st.Candidates)
	}
}

func TestIndexSizeSmall(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	data := randData(r, 1000, 16)
	ix := build(t, data, Config{Seed: 13, PageSize: 1024})
	// Codes are 2 bytes/point: the index should be a small fraction of the
	// raw data (1000×16×4 = 64KB).
	if ix.IndexSizeBytes() <= 0 || ix.IndexSizeBytes() > 64*1024 {
		t.Fatalf("index size %d out of expected range", ix.IndexSizeBytes())
	}
}
