// Package errs defines the sentinel errors of the promips error taxonomy.
// They live in a leaf package so that every layer — pager, store, idistance,
// core — can wrap them without import cycles, and the public promips package
// re-exports them. Callers classify failures with errors.Is; the wrapped
// message carries the layer-specific detail.
package errs

import "errors"

var (
	// ErrClosed reports an operation on an index after Close.
	ErrClosed = errors.New("index is closed")

	// ErrDimMismatch reports a vector whose dimensionality does not match
	// the index (a query, an inserted point, or an inconsistent build set).
	ErrDimMismatch = errors.New("dimension mismatch")

	// ErrCorruptIndex reports on-disk state that cannot be interpreted: a
	// bad magic number, an undecodable metadata file, or a page file whose
	// length is not a whole number of pages.
	ErrCorruptIndex = errors.New("corrupt index")

	// ErrEmptyIndex reports an operation that needs at least one live
	// point: building over an empty dataset, searching an index whose
	// points are all deleted, or compacting one.
	ErrEmptyIndex = errors.New("empty index")

	// ErrJournalPoisoned reports an update journal that refuses further
	// acknowledgements because an earlier write, fsync or handover failure
	// could not be healed in place. The condition is RETRYABLE at the index
	// level: a successful Save persists the in-memory state through the
	// metadata path and clears it. Servers map it to a retry-later status.
	ErrJournalPoisoned = errors.New("update journal poisoned")

	// ErrReadOnlyReplica reports a mutating operation (Insert, Delete,
	// Save) against a read-only follower replica. Replicas converge by
	// replaying the primary's journal; writing to one directly would fork
	// the id space. Clients should address updates to the primary.
	ErrReadOnlyReplica = errors.New("read-only replica")

	// ErrStalePrimary reports a replica refusing to follow a primary whose
	// manifest epoch is older than the replica's own: the replica (or a
	// peer it descends from) was promoted past that primary, so the
	// primary's journals belong to a superseded lineage and applying them
	// would fork acknowledged history. The resurrected primary must be
	// rebuilt from the promoted one, not followed.
	ErrStalePrimary = errors.New("stale primary epoch")
)
