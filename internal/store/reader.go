package store

import (
	"fmt"

	"promips/internal/pager"
	"promips/internal/vec"
)

// readerWindow is how many recently touched data pages a Reader keeps
// pinned. Verification consumes candidates in the iDistance layout order the
// store was written in, so consecutive candidates overwhelmingly share a
// page or straddle a small set of adjacent ones; a tiny window captures
// almost all of the locality without growing per-query state.
const readerWindow = 4

// Reader is one query's cursor over the store: a page-local memo that turns
// the pager round trip per candidate into one per distinct page. Page
// slices handed out by the pager are stable snapshots (writes install fresh
// buffers; eviction only drops the pool's reference), so pinning them here
// is safe for the Reader's lifetime.
//
// A Reader belongs to a single query: it is not safe for concurrent use,
// and it must not outlive the Store it came from (a compaction swap closes
// the old generation's pager once the index lock is released). Repeat hits
// on a pinned page bypass the pager, so they are not re-recorded in io —
// the paper's Page Access metric counts distinct pages, which is unchanged.
type Reader struct {
	s     *Store
	pids  [readerWindow]int64
	pages [readerWindow][]byte
	next  int
}

// NewReader returns a Reader with an empty window.
func (s *Store) NewReader() Reader {
	r := Reader{s: s}
	for i := range r.pids {
		r.pids[i] = -1
	}
	return r
}

// Reset empties the window and rebinds the Reader to st, so a pooled query
// scratch can reuse the same Reader value across queries (and across
// compaction generation swaps).
func (r *Reader) Reset(st *Store) {
	r.s = st
	for i := range r.pids {
		r.pids[i] = -1
		r.pages[i] = nil
	}
	r.next = 0
}

// entry returns the encoded bytes of the vector at layout position posn,
// reading the page through the pinned window.
func (r *Reader) entry(posn int, io *pager.IOStats) ([]byte, error) {
	s := r.s
	if posn < 0 || posn >= s.n {
		return nil, fmt.Errorf("store: position %d out of range [0,%d)", posn, s.n)
	}
	pid := s.firstData + int64(posn/s.perPage)
	off := (posn % s.perPage) * vec.EncodedSize(s.dim)
	for i := range r.pids {
		if r.pids[i] == pid {
			return r.pages[i][off:], nil
		}
	}
	page, err := s.pg.Read(pid, io)
	if err != nil {
		return nil, err
	}
	r.pids[r.next] = pid
	r.pages[r.next] = page
	r.next = (r.next + 1) % readerWindow
	return page[off:], nil
}

// Dot returns ⟨o,q⟩ for the stored vector with the given id, computed
// straight from the page bytes (zero-copy on little-endian hosts, fused
// decode otherwise) — the verification kernel of the query hot path.
func (r *Reader) Dot(id uint32, q []float32, io *pager.IOStats) (float64, error) {
	if int(id) >= r.s.n {
		return 0, fmt.Errorf("store: id %d out of range [0,%d)", id, r.s.n)
	}
	return r.DotAt(int(r.s.pos[id]), q, io)
}

// DotAt is Dot by layout position.
func (r *Reader) DotAt(posn int, q []float32, io *pager.IOStats) (float64, error) {
	if len(q) != r.s.dim {
		return 0, fmt.Errorf("store: query dim %d, want %d", len(q), r.s.dim)
	}
	entry, err := r.entry(posn, io)
	if err != nil {
		return 0, err
	}
	return vec.DotBytes(entry, q), nil
}

// Vector reads the vector with the given id into dst (reused when large
// enough), like Store.Vector but through the pinned window.
func (r *Reader) Vector(id uint32, dst []float32, io *pager.IOStats) ([]float32, error) {
	if int(id) >= r.s.n {
		return nil, fmt.Errorf("store: id %d out of range [0,%d)", id, r.s.n)
	}
	entry, err := r.entry(int(r.s.pos[id]), io)
	if err != nil {
		return nil, err
	}
	return vec.Decode(entry, r.s.dim, dst), nil
}
