package store

import (
	"math"
	"path/filepath"
	"testing"

	"promips/internal/pager"
	"promips/internal/vec"
)

// TestReaderWindowWraparound drives one Reader across more distinct pages
// than the pinned window holds, then returns to the earliest pages: the
// wrapped-out slots must be transparently re-read (correct values, one
// extra pager round trip each, same distinct-page accounting).
func TestReaderWindowWraparound(t *testing.T) {
	// 4 vectors per 128-byte page at dim 8 → positions p*4 hit distinct pages.
	st, data := buildReaderStore(t, 64, 8, 128)
	q := data[1]
	rd := st.NewReader()
	var io pager.IOStats

	touch := func(posn int) {
		t.Helper()
		got, err := rd.DotAt(posn, q, &io)
		if err != nil {
			t.Fatal(err)
		}
		id := posn // layout position == id in buildReaderStore
		want := vec.Dot(data[id], q)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("posn %d: got %x want %x", posn, math.Float64bits(got), math.Float64bits(want))
		}
	}

	// Touch readerWindow+3 distinct pages — more than the window pins.
	distinct := readerWindow + 3
	for p := 0; p < distinct; p++ {
		touch(p * 4)
	}
	readsAfterFill := io.Reads
	if io.Pages() != int64(distinct) {
		t.Fatalf("distinct pages %d, want %d", io.Pages(), distinct)
	}
	// The first pages have been wrapped out of the window: touching them
	// again must cost a pager read each (not silently serve stale slots)…
	for p := 0; p < 3; p++ {
		touch(p * 4)
	}
	if io.Reads != readsAfterFill+3 {
		t.Fatalf("re-touch of wrapped pages issued %d reads, want %d", io.Reads-readsAfterFill, 3)
	}
	// …while the distinct-page metric is unchanged (same pages).
	if io.Pages() != int64(distinct) {
		t.Fatalf("distinct pages after re-touch %d, want %d", io.Pages(), distinct)
	}
	// The most recent pages are still pinned: touching them is free.
	readsBefore := io.Reads
	touch((distinct - 1) * 4)
	if io.Reads != readsBefore {
		t.Fatal("pinned page went through the pager again")
	}
}

// TestReaderRePinAfterEviction pins pages through a pager whose pool is
// smaller than the touched set, so every pinned page is evicted underneath
// the Reader. The pinned slices must stay valid snapshots (the pool drops
// its reference, never the bytes), and re-pinning an evicted page must
// re-read it correctly.
func TestReaderRePinAfterEviction(t *testing.T) {
	const dim, pageSize = 8, 128
	n := 256 // 64 data pages, far beyond the pool below
	rngData := make([][]float32, n)
	w, err := Create(filepath.Join(t.TempDir(), "s.data"), dim, n, pager.Options{PageSize: pageSize, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rngData {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(i*dim + j)
		}
		rngData[i] = v
		if err := w.Append(uint32(i), v); err != nil {
			t.Fatal(err)
		}
	}
	st, err := w.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	q := rngData[0]
	rd := st.NewReader()
	// Pin the window on the first pages.
	for posn := 0; posn < readerWindow*4; posn++ {
		if _, err := rd.DotAt(posn, q, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Churn the pool until every early page has been evicted.
	for posn := n - 1; posn >= n-128; posn-- {
		if _, err := st.VectorAt(posn, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	// The Reader's pinned snapshots must still serve exact bytes…
	for posn := 0; posn < readerWindow*4; posn++ {
		got, err := rd.DotAt(posn, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := vec.Dot(rngData[posn], q)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("posn %d after eviction: got %x want %x", posn, math.Float64bits(got), math.Float64bits(want))
		}
	}
	// …and a fresh Reader re-pinning the evicted pages reads them back
	// intact from the file.
	rd2 := st.NewReader()
	for posn := 0; posn < readerWindow*4; posn++ {
		got, err := rd2.DotAt(posn, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := vec.Dot(rngData[posn], q)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("posn %d re-pin: got %x want %x", posn, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestReaderAcrossShardedPool walks readers over a store whose pager uses
// the full shard fan-out (pool large enough for 16 stripes), interleaving
// two Readers so their windows pin pages of different shards concurrently.
func TestReaderAcrossShardedPool(t *testing.T) {
	const dim, pageSize = 8, 128
	n := 1024
	w, err := Create(filepath.Join(t.TempDir(), "s.data"), dim, n, pager.Options{PageSize: pageSize, PoolSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]float32, n)
	for i := range data {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32((i+1)*(j+2) % 97)
		}
		data[i] = v
		if err := w.Append(uint32(i), v); err != nil {
			t.Fatal(err)
		}
	}
	st, err := w.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Pager().Shards(); got < 2 {
		t.Fatalf("expected a striped pool, got %d shards", got)
	}

	q := data[5]
	a, b := st.NewReader(), st.NewReader()
	for i := 0; i < n; i += 7 {
		pa := i
		pb := n - 1 - i
		ga, err := a.DotAt(pa, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := b.DotAt(pb, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(ga) != math.Float64bits(vec.Dot(data[pa], q)) {
			t.Fatalf("reader a posn %d mismatch", pa)
		}
		if math.Float64bits(gb) != math.Float64bits(vec.Dot(data[pb], q)) {
			t.Fatalf("reader b posn %d mismatch", pb)
		}
	}
}
