package store

import (
	"math/rand"
	"path/filepath"
	"testing"

	"promips/internal/pager"
)

func randVec(r *rand.Rand, d int) []float32 {
	v := make([]float32, d)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return v
}

func buildStore(t *testing.T, dim, n, pageSize int, order []uint32, vecs [][]float32) *Store {
	t.Helper()
	w, err := Create(filepath.Join(t.TempDir(), "v.db"), dim, n, pager.Options{PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range order {
		if err := w.Append(id, vecs[id]); err != nil {
			t.Fatal(err)
		}
	}
	st, err := w.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestRoundTripSequentialOrder(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const dim, n = 16, 100
	vecs := make([][]float32, n)
	order := make([]uint32, n)
	for i := range vecs {
		vecs[i] = randVec(r, dim)
		order[i] = uint32(i)
	}
	st := buildStore(t, dim, n, 512, order, vecs)
	for id := uint32(0); id < n; id++ {
		got, err := st.Vector(id, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != vecs[id][j] {
				t.Fatalf("vector %d coordinate %d differs", id, j)
			}
		}
	}
}

func TestRoundTripShuffledLayout(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const dim, n = 8, 257
	vecs := make([][]float32, n)
	for i := range vecs {
		vecs[i] = randVec(r, dim)
	}
	order := make([]uint32, n)
	for i, p := range r.Perm(n) {
		order[i] = uint32(p)
	}
	st := buildStore(t, dim, n, 256, order, vecs)
	// Layout positions must match the append order.
	for layout, id := range order {
		if st.Pos(id) != layout {
			t.Fatalf("Pos(%d) = %d, want %d", id, st.Pos(id), layout)
		}
	}
	for id := uint32(0); id < n; id++ {
		got, err := st.Vector(id, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != vecs[id][0] {
			t.Fatalf("vector %d mismatched after shuffled layout", id)
		}
	}
}

func TestVectorTooLargeForPage(t *testing.T) {
	_, err := Create(filepath.Join(t.TempDir(), "v.db"), 2000, 10, pager.Options{PageSize: 4096})
	if err == nil {
		t.Fatal("expected error: 2000-dim vector (8000B) cannot fit a 4KB page")
	}
}

func TestAppendErrors(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "v.db"), 4, 2, pager.Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, []float32{1, 2}); err == nil {
		t.Fatal("expected dim mismatch error")
	}
	if err := w.Append(9, []float32{1, 2, 3, 4}); err == nil {
		t.Fatal("expected id out of range error")
	}
	w.Append(0, []float32{1, 2, 3, 4})
	if _, err := w.Finalize(); err == nil {
		t.Fatal("expected error: finalize before all vectors appended")
	}
	w.Append(1, []float32{5, 6, 7, 8})
	if err := w.Append(1, []float32{5, 6, 7, 8}); err == nil {
		t.Fatal("expected error appending beyond n")
	}
}

func TestPersistenceReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.db")
	r := rand.New(rand.NewSource(3))
	const dim, n = 12, 77
	vecs := make([][]float32, n)
	w, err := Create(path, dim, n, pager.Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	order := r.Perm(n)
	for _, p := range order {
		vecs[p] = randVec(r, dim)
		if err := w.Append(uint32(p), vecs[p]); err != nil {
			t.Fatal(err)
		}
	}
	st, err := w.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path, pager.Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Dim() != dim || st2.Len() != n {
		t.Fatalf("reopened dims = (%d,%d)", st2.Dim(), st2.Len())
	}
	for id := uint32(0); id < n; id++ {
		got, err := st2.Vector(id, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != vecs[id][j] {
				t.Fatalf("vector %d differs after reopen", id)
			}
		}
	}
}

func TestPageLocalityOfAdjacentPositions(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const dim, n = 8, 64
	vecs := make([][]float32, n)
	order := make([]uint32, n)
	for i := range vecs {
		vecs[i] = randVec(r, dim)
		order[i] = uint32(i)
	}
	// 256B pages, 8 dims → 8 vectors per page (8*32=256).
	st := buildStore(t, dim, n, 256, order, vecs)
	pg := st.Pager()
	pg.DropPool()
	pg.ResetStats()
	for pos := 0; pos < 8; pos++ {
		if _, err := st.VectorAt(pos, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if misses := pg.Stats().Misses; misses != 1 {
		t.Fatalf("reading 8 adjacent vectors cost %d page misses, want 1", misses)
	}
}

func TestOutOfRangeReads(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	vecs := [][]float32{randVec(r, 4)}
	st := buildStore(t, 4, 1, 256, []uint32{0}, vecs)
	if _, err := st.Vector(1, nil, nil); err == nil {
		t.Fatal("expected error for id out of range")
	}
	if _, err := st.VectorAt(-1, nil, nil); err == nil {
		t.Fatal("expected error for negative position")
	}
}

func TestZeroVectors(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "v.db"), 4, 0, pager.Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	st, err := w.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 0 {
		t.Fatalf("Len = %d", st.Len())
	}
}
