package store

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"promips/internal/pager"
	"promips/internal/vec"
)

// buildReaderStore writes n random dim-vectors in id order and returns them.
func buildReaderStore(t *testing.T, n, dim, pageSize int) (*Store, [][]float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	data := make([][]float32, n)
	for i := range data {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		data[i] = v
	}
	w, err := Create(filepath.Join(t.TempDir(), "s.data"), dim, n, pager.Options{PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		if err := w.Append(uint32(i), v); err != nil {
			t.Fatal(err)
		}
	}
	st, err := w.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, data
}

// TestReaderDotMatchesVector asserts the fused page-local verification path
// is bit-identical to the decode-then-Dot path for every id, in layout
// order (the order the hot path uses) and in random order (window misses).
func TestReaderDotMatchesVector(t *testing.T) {
	st, data := buildReaderStore(t, 200, 17, 256) // small pages → several vectors/page, many pages
	q := data[3]

	rd := st.NewReader()
	var io, io2 pager.IOStats
	for id := 0; id < len(data); id++ {
		got, err := rd.Dot(uint32(id), q, &io)
		if err != nil {
			t.Fatal(err)
		}
		v, err := st.Vector(uint32(id), nil, &io2)
		if err != nil {
			t.Fatal(err)
		}
		want := vec.Dot(v, q)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("id %d: Reader.Dot=%x want %x", id, math.Float64bits(got), math.Float64bits(want))
		}
	}
	// The window must not change the distinct-page accounting.
	if io.Pages() != io2.Pages() {
		t.Fatalf("Reader touched %d distinct pages, Vector path %d", io.Pages(), io2.Pages())
	}
	// …but it must eliminate the per-candidate pager round trips: layout
	// order revisits each page perPage times through the memo.
	if io.Reads >= io2.Reads {
		t.Fatalf("Reader issued %d pager reads, want fewer than the unmemoized %d", io.Reads, io2.Reads)
	}

	rng := rand.New(rand.NewSource(9))
	rd2 := st.NewReader()
	for trial := 0; trial < 500; trial++ {
		id := uint32(rng.Intn(len(data)))
		got, err := rd2.Dot(id, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := st.Vector(id, nil, nil)
		if math.Float64bits(got) != math.Float64bits(vec.Dot(v, q)) {
			t.Fatalf("random id %d mismatch", id)
		}
	}
}

func TestReaderVectorAndReset(t *testing.T) {
	st, data := buildReaderStore(t, 50, 9, 128)
	rd := st.NewReader()
	var buf []float32
	for id := range data {
		v, err := rd.Vector(uint32(id), buf, nil)
		if err != nil {
			t.Fatal(err)
		}
		buf = v
		for j := range v {
			if v[j] != data[id][j] {
				t.Fatalf("id %d coord %d: %v != %v", id, j, v[j], data[id][j])
			}
		}
	}
	rd.Reset(st)
	if _, err := rd.Dot(0, data[0], nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Dot(uint32(len(data)), data[0], nil); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := rd.DotAt(-1, data[0], nil); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := rd.DotAt(0, data[0][:3], nil); err == nil {
		t.Fatal("expected dim-mismatch error")
	}
}
