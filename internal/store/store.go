// Package store provides a disk-resident vector store: fixed-dimension
// float32 vectors identified by uint32 ids, laid out in a caller-chosen
// order so that points of the same iDistance sub-partition (or the same
// LSH norm-partition) sit on adjacent pages. Candidate verification — the
// dominant I/O of every MIPS method in the paper — reads original vectors
// through this store, so its page accesses are accounted by the shared
// pager.
//
// File layout (page-aligned):
//
//	page 0:            header (magic, dim, n, perPage)
//	pages 1..T:        id → position table (uint32 per id)
//	pages T+1..:       vector data, perPage vectors per page
package store

import (
	"encoding/binary"
	"fmt"

	"promips/internal/errs"
	"promips/internal/pager"
	"promips/internal/vec"
)

const storeMagic = uint32(0x50565331) // "PVS1"

// Store reads vectors by id or by layout position.
type Store struct {
	pg        *pager.Pager
	dim       int
	n         int
	perPage   int
	tablePgs  int
	pos       []uint32 // id -> layout position (kept in memory, persisted in table pages)
	firstData int64
}

// Writer builds a Store by appending vectors in layout order.
type Writer struct {
	st   *Store
	next int
	page []byte
	cur  int64
}

// Create starts a new store file for n vectors of the given dimension.
// A vector must fit in one page: callers choose the page size accordingly
// (the paper uses 64KB pages for the 5408-dimensional P53 dataset for
// exactly this reason).
func Create(path string, dim, n int, opts pager.Options) (*Writer, error) {
	if opts.PageSize <= 0 {
		opts.PageSize = pager.DefaultPageSize
	}
	if dim <= 0 || n < 0 {
		return nil, fmt.Errorf("store: invalid dim=%d n=%d", dim, n)
	}
	perPage := opts.PageSize / vec.EncodedSize(dim)
	if perPage == 0 {
		return nil, fmt.Errorf("store: vector of dim %d (%d bytes) exceeds page size %d; use a larger page size",
			dim, vec.EncodedSize(dim), opts.PageSize)
	}
	pg, err := pager.Create(path, opts)
	if err != nil {
		return nil, err
	}
	idsPerPage := opts.PageSize / 4
	tablePgs := (n + idsPerPage - 1) / idsPerPage
	// Header + table pages.
	for i := 0; i < 1+tablePgs; i++ {
		if _, err := pg.Alloc(); err != nil {
			pg.Close()
			return nil, err
		}
	}
	st := &Store{
		pg:        pg,
		dim:       dim,
		n:         n,
		perPage:   perPage,
		tablePgs:  tablePgs,
		pos:       make([]uint32, n),
		firstData: int64(1 + tablePgs),
	}
	return &Writer{st: st, page: make([]byte, opts.PageSize), cur: -1}, nil
}

// Append writes the vector for id at the next layout position.
func (w *Writer) Append(id uint32, v []float32) error {
	st := w.st
	if w.next >= st.n {
		return fmt.Errorf("store: appended more than the declared %d vectors", st.n)
	}
	if len(v) != st.dim {
		return fmt.Errorf("store: vector dim %d, want %d", len(v), st.dim)
	}
	if int(id) >= st.n {
		return fmt.Errorf("store: id %d out of range [0,%d)", id, st.n)
	}
	slot := w.next % st.perPage
	if slot == 0 {
		if err := w.flush(); err != nil {
			return err
		}
		pid, err := st.pg.Alloc()
		if err != nil {
			return err
		}
		w.cur = pid
		for i := range w.page {
			w.page[i] = 0
		}
	}
	vec.Encode(w.page[slot*vec.EncodedSize(st.dim):], v)
	st.pos[id] = uint32(w.next)
	w.next++
	return nil
}

func (w *Writer) flush() error {
	if w.cur < 0 {
		return nil
	}
	return w.st.pg.Write(w.cur, w.page)
}

// Finalize writes the header and the id→position table and returns the
// readable Store. The Writer must have appended exactly n vectors.
func (w *Writer) Finalize() (*Store, error) {
	st := w.st
	if w.next != st.n {
		return nil, fmt.Errorf("store: appended %d of %d vectors", w.next, st.n)
	}
	if err := w.flush(); err != nil {
		return nil, err
	}
	header := make([]byte, st.pg.PageSize())
	binary.LittleEndian.PutUint32(header, storeMagic)
	binary.LittleEndian.PutUint32(header[4:], uint32(st.dim))
	binary.LittleEndian.PutUint32(header[8:], uint32(st.n))
	binary.LittleEndian.PutUint32(header[12:], uint32(st.perPage))
	if err := st.pg.Write(0, header); err != nil {
		return nil, err
	}
	idsPerPage := st.pg.PageSize() / 4
	buf := make([]byte, st.pg.PageSize())
	for p := 0; p < st.tablePgs; p++ {
		for i := range buf {
			buf[i] = 0
		}
		for s := 0; s < idsPerPage; s++ {
			id := p*idsPerPage + s
			if id >= st.n {
				break
			}
			binary.LittleEndian.PutUint32(buf[s*4:], st.pos[id])
		}
		if err := st.pg.Write(int64(1+p), buf); err != nil {
			return nil, err
		}
	}
	if err := st.pg.Sync(); err != nil {
		return nil, err
	}
	return st, nil
}

// Open loads an existing store file.
func Open(path string, opts pager.Options) (*Store, error) {
	pg, err := pager.Open(path, opts)
	if err != nil {
		return nil, err
	}
	header, err := pg.Read(0, nil)
	if err != nil {
		pg.Close()
		return nil, err
	}
	if binary.LittleEndian.Uint32(header) != storeMagic {
		pg.Close()
		return nil, fmt.Errorf("store: bad magic: %w", errs.ErrCorruptIndex)
	}
	dim := int(binary.LittleEndian.Uint32(header[4:]))
	n := int(binary.LittleEndian.Uint32(header[8:]))
	perPage := int(binary.LittleEndian.Uint32(header[12:]))
	idsPerPage := pg.PageSize() / 4
	tablePgs := (n + idsPerPage - 1) / idsPerPage
	st := &Store{
		pg: pg, dim: dim, n: n, perPage: perPage,
		tablePgs: tablePgs, pos: make([]uint32, n),
		firstData: int64(1 + tablePgs),
	}
	for p := 0; p < tablePgs; p++ {
		buf, err := pg.Read(int64(1+p), nil)
		if err != nil {
			pg.Close()
			return nil, err
		}
		for s := 0; s < idsPerPage; s++ {
			id := p*idsPerPage + s
			if id >= n {
				break
			}
			st.pos[id] = binary.LittleEndian.Uint32(buf[s*4:])
		}
	}
	return st, nil
}

// Dim returns the vector dimensionality.
func (s *Store) Dim() int { return s.dim }

// Len returns the number of vectors.
func (s *Store) Len() int { return s.n }

// Pager exposes the underlying pager for I/O accounting.
func (s *Store) Pager() *pager.Pager { return s.pg }

// SizeBytes returns the on-disk size of the store file.
func (s *Store) SizeBytes() int64 { return s.pg.SizeBytes() }

// Pos returns the layout position of id.
func (s *Store) Pos(id uint32) int { return int(s.pos[id]) }

// Vector reads the vector for id (one page access; pages shared by nearby
// positions hit the buffer pool). dst is reused when large enough. The page
// read is recorded in io (nil discards the accounting).
func (s *Store) Vector(id uint32, dst []float32, io *pager.IOStats) ([]float32, error) {
	if int(id) >= s.n {
		return nil, fmt.Errorf("store: id %d out of range [0,%d)", id, s.n)
	}
	return s.VectorAt(int(s.pos[id]), dst, io)
}

// VectorAt reads the vector at a layout position, recording the page read
// in io.
func (s *Store) VectorAt(posn int, dst []float32, io *pager.IOStats) ([]float32, error) {
	if posn < 0 || posn >= s.n {
		return nil, fmt.Errorf("store: position %d out of range [0,%d)", posn, s.n)
	}
	pid := s.firstData + int64(posn/s.perPage)
	page, err := s.pg.Read(pid, io)
	if err != nil {
		return nil, err
	}
	off := (posn % s.perPage) * vec.EncodedSize(s.dim)
	return vec.Decode(page[off:], s.dim, dst), nil
}

// Close flushes and closes the file.
func (s *Store) Close() error { return s.pg.Close() }
