package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"promips/internal/pager"
)

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "missing"), pager.Options{PageSize: 256}); err == nil {
		t.Fatal("expected error for missing file")
	}
	// A valid pager file that is not a store (bad magic).
	path := filepath.Join(dir, "junk.db")
	pg, err := pager.Create(path, pager.Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	pg.Alloc()
	pg.Close()
	if _, err := Open(path, pager.Options{PageSize: 256}); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestCreateInvalidArgs(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(filepath.Join(dir, "v"), 0, 5, pager.Options{PageSize: 256}); err == nil {
		t.Fatal("expected error for dim=0")
	}
	if _, err := Create(filepath.Join(dir, "v"), 4, -1, pager.Options{PageSize: 256}); err == nil {
		t.Fatal("expected error for negative n")
	}
}

func TestVectorDstReuse(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	vecs := [][]float32{randVec(r, 6), randVec(r, 6)}
	st := buildStore(t, 6, 2, 256, []uint32{0, 1}, vecs)
	dst := make([]float32, 16)
	got, err := st.Vector(0, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &dst[0] {
		t.Fatal("Vector did not reuse the provided buffer")
	}
}

// Table spanning multiple pages: with 64B pages, 16 ids per table page,
// 100 ids need 7 table pages.
func TestMultiPageIDTable(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	const n, dim = 100, 4
	vecs := make([][]float32, n)
	order := make([]uint32, n)
	for i, p := range r.Perm(n) {
		vecs[i] = randVec(r, dim)
		order[i] = uint32(p)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "v.db")
	w, err := Create(path, dim, n, pager.Options{PageSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range order {
		if err := w.Append(id, vecs[id]); err != nil {
			t.Fatal(err)
		}
	}
	st, err := w.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(path, pager.Options{PageSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for id := uint32(0); id < n; id++ {
		got, err := st2.Vector(id, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != vecs[id][0] {
			t.Fatalf("vector %d wrong after multi-page table reopen", id)
		}
	}
}

func TestSizeBytesMatchesFile(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	vecs := [][]float32{randVec(r, 4)}
	dir := t.TempDir()
	path := filepath.Join(dir, "v.db")
	w, err := Create(path, 4, 1, pager.Options{PageSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(0, vecs[0])
	st, err := w.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.Pager().Sync()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.SizeBytes() != fi.Size() {
		t.Fatalf("SizeBytes %d != file size %d", st.SizeBytes(), fi.Size())
	}
}
