package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Reference values computed with scipy.stats.chi2.cdf.
func TestChiSquareCDFKnownValues(t *testing.T) {
	cases := []struct {
		m    int
		x    float64
		want float64
	}{
		{1, 1, 0.6826894921370859},   // P(|Z|<1)
		{1, 3.841458820694124, 0.95}, // 95% quantile of chi2(1)
		{2, 2, 0.6321205588285577},   // 1-exp(-1)
		{2, 5.991464547107979, 0.95}, // 95% quantile of chi2(2)
		{4, 4, 0.5939941502901616},
		{6, 6, 0.5768099188731565},
		{6, 12.591587243743977, 0.95}, // 95% quantile of chi2(6)
		{8, 8, 0.5665298796332909},
		{10, 10, 0.5595067149347875},
		{10, 18.307038053275146, 0.95}, // 95% quantile of chi2(10)
		{10, 2, 0.0036598468273437135},
		{6, 30, 0.999960691551816}, // Erlang closed form 1 − e⁻¹⁵·(1+15+112.5)
	}
	for _, c := range cases {
		got := ChiSquareCDF(c.m, c.x)
		if math.Abs(got-c.want) > 1e-10 {
			t.Errorf("ChiSquareCDF(%d, %v) = %.15f, want %.15f", c.m, c.x, got, c.want)
		}
	}
}

func TestChiSquareCDFEdgeCases(t *testing.T) {
	if got := ChiSquareCDF(5, 0); got != 0 {
		t.Errorf("CDF at 0 = %v, want 0", got)
	}
	if got := ChiSquareCDF(5, -3); got != 0 {
		t.Errorf("CDF at -3 = %v, want 0", got)
	}
	if got := ChiSquareCDF(5, math.Inf(1)); got != 1 {
		t.Errorf("CDF at +Inf = %v, want 1", got)
	}
	if got := ChiSquareCDF(5, math.NaN()); got != 0 {
		t.Errorf("CDF at NaN = %v, want 0", got)
	}
	if got := ChiSquareCDF(5, 1e9); got != 1 {
		t.Errorf("CDF at 1e9 = %v, want 1", got)
	}
}

func TestChiSquareCDFPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m=0")
		}
	}()
	ChiSquareCDF(0, 1)
}

func TestChiSquareInvCDFRoundTrip(t *testing.T) {
	for _, m := range []int{1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 30, 50} {
		for _, p := range []float64{0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999} {
			x := ChiSquareInvCDF(m, p)
			back := ChiSquareCDF(m, x)
			if math.Abs(back-p) > 1e-9 {
				t.Errorf("m=%d p=%v: CDF(InvCDF(p)) = %v", m, p, back)
			}
		}
	}
}

func TestChiSquareInvCDFKnownQuantiles(t *testing.T) {
	// scipy.stats.chi2.ppf reference values.
	cases := []struct {
		m    int
		p    float64
		want float64
	}{
		{1, 0.95, 3.841458820694124},
		{2, 0.95, 5.991464547107979},
		{6, 0.5, 5.348120627447116},
		{6, 0.95, 12.591587243743977},
		{8, 0.5, 7.344121497701792}, // Erlang closed-form bisection
		{10, 0.9, 15.987179172105261},
	}
	for _, c := range cases {
		got := ChiSquareInvCDF(c.m, c.p)
		if math.Abs(got-c.want) > 1e-8 {
			t.Errorf("InvCDF(%d, %v) = %.12f, want %.12f", c.m, c.p, got, c.want)
		}
	}
}

func TestChiSquareInvCDFZero(t *testing.T) {
	if got := ChiSquareInvCDF(6, 0); got != 0 {
		t.Errorf("InvCDF(6,0) = %v, want 0", got)
	}
}

func TestChiSquareInvCDFPanics(t *testing.T) {
	for _, p := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for p=%v", p)
				}
			}()
			ChiSquareInvCDF(6, p)
		}()
	}
}

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := GammaP(1, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("GammaP(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P + Q = 1.
	for _, a := range []float64{0.5, 1, 3, 10, 100} {
		for _, x := range []float64{0.1, 1, 5, 50, 200} {
			if s := GammaP(a, x) + GammaQ(a, x); math.Abs(s-1) > 1e-10 {
				t.Errorf("P+Q at a=%v x=%v = %v", a, x, s)
			}
		}
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{3, 0.9986501019683699},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalInvCDFRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1 - 1e-6} {
		x := NormalInvCDF(p)
		if got := NormalCDF(x); math.Abs(got-p) > 1e-12*(1+1/p) && math.Abs(got-p) > 1e-9 {
			t.Errorf("NormalCDF(NormalInvCDF(%v)) = %v", p, got)
		}
	}
}

// Property: Ψm is monotone nondecreasing in x and bounded in [0,1].
func TestPropertyChiSquareCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(30)
		x1 := r.Float64() * 100
		x2 := x1 + r.Float64()*100
		c1, c2 := ChiSquareCDF(m, x1), ChiSquareCDF(m, x2)
		return c1 >= 0 && c2 <= 1 && c1 <= c2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Ψm decreases in m for fixed x (more degrees of freedom shift
// mass right). This ordering is what makes the paper's optimized-m trade-off
// meaningful.
func TestPropertyChiSquareCDFDecreasingInM(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(20)
		x := r.Float64()*50 + 0.01
		return ChiSquareCDF(m+1, x) <= ChiSquareCDF(m, x)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: empirical chi-square sample CDF matches Ψm (a Monte-Carlo check
// of Lemma 2's distributional backbone).
func TestChiSquareEmpirical(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	m := 6
	const samples = 20000
	xs := []float64{2, 4, 6, 8, 12}
	counts := make([]int, len(xs))
	for i := 0; i < samples; i++ {
		var s float64
		for j := 0; j < m; j++ {
			z := r.NormFloat64()
			s += z * z
		}
		for k, x := range xs {
			if s <= x {
				counts[k]++
			}
		}
	}
	for k, x := range xs {
		emp := float64(counts[k]) / samples
		want := ChiSquareCDF(m, x)
		if math.Abs(emp-want) > 0.015 {
			t.Errorf("empirical CDF at %v = %v, want %v", x, emp, want)
		}
	}
}

func BenchmarkChiSquareCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ChiSquareCDF(10, 8.5)
	}
}

func BenchmarkChiSquareInvCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ChiSquareInvCDF(10, 0.5)
	}
}
