// Package stats implements the probability functions ProMIPS depends on:
// the chi-square CDF Ψm(x) with m degrees of freedom, its inverse Ψm⁻¹(p),
// the regularized incomplete gamma function they are built on, and the
// standard normal CDF used by the LSH baselines' collision-probability
// formulas. Everything is pure stdlib; the incomplete gamma follows the
// classic series/continued-fraction split (series for x < a+1, Lentz's
// continued fraction otherwise).
package stats

import (
	"fmt"
	"math"
)

const (
	gammaEps     = 1e-14
	gammaMaxIter = 500
)

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a,x)/Γ(a) for a > 0, x ≥ 0.
func GammaP(a, x float64) float64 {
	switch {
	case a <= 0:
		panic(fmt.Sprintf("stats: GammaP requires a > 0, got %v", a))
	case x < 0:
		panic(fmt.Sprintf("stats: GammaP requires x >= 0, got %v", x))
	case x == 0:
		return 0
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinuedFraction(a, x)
	}
}

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 − P(a, x).
func GammaQ(a, x float64) float64 {
	switch {
	case a <= 0:
		panic(fmt.Sprintf("stats: GammaQ requires a > 0, got %v", a))
	case x < 0:
		panic(fmt.Sprintf("stats: GammaQ requires x >= 0, got %v", x))
	case x == 0:
		return 1
	case x < a+1:
		return 1 - gammaPSeries(a, x)
	default:
		return gammaQContinuedFraction(a, x)
	}
}

// gammaPSeries evaluates P(a,x) by its power series, accurate for x < a+1.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	v := sum * math.Exp(-x+a*math.Log(x)-lg)
	// Clamp: the series can overshoot 1 by an ulp for large a.
	return math.Min(math.Max(v, 0), 1)
}

// gammaQContinuedFraction evaluates Q(a,x) by Lentz's modified continued
// fraction, accurate for x ≥ a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	v := math.Exp(-x+a*math.Log(x)-lg) * h
	return math.Min(math.Max(v, 0), 1)
}

// ChiSquareCDF returns Ψm(x), the CDF of the chi-square distribution with m
// degrees of freedom evaluated at x. For x ≤ 0 it returns 0. This is the Ψm
// of the paper's Condition B and Quick-Probe Test A.
func ChiSquareCDF(m int, x float64) float64 {
	if m <= 0 {
		panic(fmt.Sprintf("stats: ChiSquareCDF requires m > 0, got %d", m))
	}
	if x <= 0 || math.IsNaN(x) {
		return 0
	}
	if math.IsInf(x, 1) {
		return 1
	}
	return GammaP(float64(m)/2, x/2)
}

// ChiSquareInvCDF returns Ψm⁻¹(p): the x with Ψm(x) = p, for p in [0,1).
// It is used to extend the search range to
// r' = sqrt(Ψm⁻¹(p)·(‖oM‖²+‖q‖²−2⟨omax,q⟩/c)) when Condition B fails after
// the Quick-Probe range scan. Newton iterations from the Wilson–Hilferty
// starting point, with bisection fallback, give full double accuracy.
func ChiSquareInvCDF(m int, p float64) float64 {
	if m <= 0 {
		panic(fmt.Sprintf("stats: ChiSquareInvCDF requires m > 0, got %d", m))
	}
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("stats: ChiSquareInvCDF requires p in [0,1), got %v", p))
	}
	if p == 0 {
		return 0
	}
	df := float64(m)
	// Wilson–Hilferty approximation as the starting point.
	z := NormalInvCDF(p)
	t := 1 - 2/(9*df) + z*math.Sqrt(2/(9*df))
	x := df * t * t * t
	if x <= 0 {
		x = 1e-8
	}

	lo, hi := 0.0, math.Max(4*x, 4*df+100)
	for ChiSquareCDF(m, hi) < p {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		f := ChiSquareCDF(m, x) - p
		if math.Abs(f) < 1e-13 {
			return x
		}
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		pdf := chiSquarePDF(df, x)
		var next float64
		if pdf > 1e-300 {
			next = x - f/pdf
		}
		if pdf <= 1e-300 || next <= lo || next >= hi {
			next = (lo + hi) / 2
		}
		if math.Abs(next-x) < 1e-13*(1+x) {
			return next
		}
		x = next
	}
	return x
}

func chiSquarePDF(df, x float64) float64 {
	if x <= 0 {
		return 0
	}
	half := df / 2
	lg, _ := math.Lgamma(half)
	return math.Exp((half-1)*math.Log(x) - x/2 - half*math.Ln2 - lg)
}

// NormalCDF returns Φ(x), the standard normal CDF. The LSH baselines use it
// for p-stable collision probabilities.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalInvCDF returns Φ⁻¹(p) for p in (0,1) using the Acklam rational
// approximation refined by one Halley step; accurate to ~1e-15.
func NormalInvCDF(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: NormalInvCDF requires p in (0,1), got %v", p))
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}
