package qalsh

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"promips/internal/vec"
)

func randData(r *rand.Rand, n, d int) [][]float32 {
	data := make([][]float32, n)
	for i := range data {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}
	return data
}

func TestParams(t *testing.T) {
	w, p1, p2, alpha, k := Params(2.0, 1/math.E, 0.01)
	if math.Abs(w-2.7190) > 1e-3 {
		t.Errorf("w = %v, want ~2.719 (QALSH paper, c=2)", w)
	}
	if p1 <= p2 {
		t.Errorf("p1=%v must exceed p2=%v", p1, p2)
	}
	if alpha <= p2 || alpha >= p1 {
		t.Errorf("alpha=%v must lie in (p2,p1)=(%v,%v)", alpha, p2, p1)
	}
	if k < 10 || k > 500 {
		t.Errorf("K = %d implausible", k)
	}
	// Tighter budget (smaller beta) needs more tables.
	_, _, _, _, k2 := Params(2.0, 1/math.E, 0.001)
	if k2 <= k {
		t.Errorf("smaller beta should need more tables: %d <= %d", k2, k)
	}
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(nil, t.TempDir(), Config{}); err == nil {
		t.Fatal("expected error for empty data")
	}
}

func TestBuildProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data := randData(r, 500, 16)
	idx, err := Build(data, t.TempDir(), Config{Seed: 2, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if idx.Tables() <= 0 || idx.Threshold() <= 0 || idx.Threshold() > idx.Tables() {
		t.Fatalf("K=%d l=%d", idx.Tables(), idx.Threshold())
	}
	if idx.IndexSizeBytes() <= 0 {
		t.Fatal("zero index size")
	}
	// Each table must be sorted by projection on disk.
	for tb := 0; tb < idx.Tables(); tb++ {
		prev := math.Inf(-1)
		for j := 0; j < 500; j++ {
			p, _, err := idx.entry(tb, j)
			if err != nil {
				t.Fatal(err)
			}
			if p < prev {
				t.Fatalf("table %d not sorted at %d", tb, j)
			}
			prev = p
		}
	}
}

func TestLowerBound(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data := randData(r, 300, 8)
	idx, err := Build(data, t.TempDir(), Config{Seed: 4, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	// lowerBound(x) must be the first j with proj[j] >= x.
	for _, x := range []float64{-100, -1, 0, 1, 100} {
		j, err := idx.lowerBound(0, x)
		if err != nil {
			t.Fatal(err)
		}
		if j > 0 {
			p, _, _ := idx.entry(0, j-1)
			if p >= x {
				t.Fatalf("lowerBound(%v)=%d but entry %d has proj %v", x, j, j-1, p)
			}
		}
		if j < 300 {
			p, _, _ := idx.entry(0, j)
			if p < x {
				t.Fatalf("lowerBound(%v)=%d but proj there is %v", x, j, p)
			}
		}
	}
}

// On unit-norm data (the regime H2-ALSH feeds QALSH), the returned nearest
// neighbor must be a c-ANN answer for the vast majority of queries.
func TestSearchCANNQuality(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const n, d = 2000, 24
	data := randData(r, n, d)
	// Normalize to the unit sphere, mimicking the QNF-transformed input.
	for _, v := range data {
		s := 1 / vec.Norm2(v)
		for j := range v {
			v[j] = float32(float64(v[j]) * s)
		}
	}
	idx, err := Build(data, t.TempDir(), Config{Seed: 6, C: 2.0, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	ok, trials := 0, 25
	for trial := 0; trial < trials; trial++ {
		q := randData(r, 1, d)[0]
		s := 1 / vec.Norm2(q)
		for j := range q {
			q[j] = float32(float64(q[j]) * s)
		}
		verify := func(id uint32) (float64, error) {
			return vec.L2Dist(data[id], q), nil
		}
		got, err := idx.Search(q, 1, verify)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			continue
		}
		// Exact NN distance.
		best := math.Inf(1)
		for _, o := range data {
			if dd := vec.L2Dist(o, q); dd < best {
				best = dd
			}
		}
		if got[0].Dist <= 2.0*best+1e-9 {
			ok++
		}
	}
	if frac := float64(ok) / float64(trials); frac < 0.85 {
		t.Fatalf("c-ANN success rate %.2f < 0.85", frac)
	}
}

func TestSearchTopKSortedAndUnique(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	data := randData(r, 800, 12)
	idx, err := Build(data, t.TempDir(), Config{Seed: 8, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	q := randData(r, 1, 12)[0]
	verify := func(id uint32) (float64, error) { return vec.L2Dist(data[id], q), nil }
	got, err := idx.Search(q, 10, verify)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) > 10 {
		t.Fatalf("got %d results", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Dist < got[j].Dist }) {
		t.Fatal("results not sorted by distance")
	}
	seen := make(map[uint32]bool)
	for _, c := range got {
		if seen[c.ID] {
			t.Fatalf("duplicate id %d", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestSearchQueryDimMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	data := randData(r, 100, 8)
	idx, err := Build(data, t.TempDir(), Config{Seed: 10, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if _, err := idx.Search(make([]float32, 7), 1, nil); err == nil {
		t.Fatal("expected dim mismatch error")
	}
}

func TestPageAccessesGrowWithWork(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	data := randData(r, 1500, 12)
	idx, err := Build(data, t.TempDir(), Config{Seed: 12, PageSize: 512, PoolSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	q := randData(r, 1, 12)[0]
	idx.Pager().DropPool()
	idx.Pager().ResetStats()
	verify := func(id uint32) (float64, error) { return vec.L2Dist(data[id], q), nil }
	if _, err := idx.Search(q, 10, verify); err != nil {
		t.Fatal(err)
	}
	if idx.Pager().Stats().Misses == 0 {
		t.Fatal("search touched no pages")
	}
}
