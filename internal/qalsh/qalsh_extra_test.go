package qalsh

import (
	"math/rand"
	"testing"

	"promips/internal/vec"
)

// Exhausting every table (tiny data, huge candidate budget) must terminate
// and return the true nearest neighbor: with all cursors drained, every
// point has K collisions ≥ l.
func TestSearchDrainsTables(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	data := randData(r, 40, 8)
	idx, err := Build(data, t.TempDir(), Config{Seed: 32, BetaCount: 1000, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	q := randData(r, 1, 8)[0]
	verify := func(id uint32) (float64, error) { return vec.L2Dist(data[id], q), nil }
	got, err := idx.Search(q, 1, verify)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("drained search returned nothing")
	}
	best := 1e18
	for _, o := range data {
		if d := vec.L2Dist(o, q); d < best {
			best = d
		}
	}
	if got[0].Dist > best+1e-9 {
		t.Fatalf("drained search missed the exact NN: %v > %v", got[0].Dist, best)
	}
}

// The candidate budget must bound verification work.
func TestBudgetBoundsVerification(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	data := randData(r, 2000, 10)
	idx, err := Build(data, t.TempDir(), Config{Seed: 34, BetaCount: 20, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	q := randData(r, 1, 10)[0]
	verified := 0
	verify := func(id uint32) (float64, error) {
		verified++
		return vec.L2Dist(data[id], q), nil
	}
	if _, err := idx.Search(q, 5, verify); err != nil {
		t.Fatal(err)
	}
	// Budget is BetaCount + k; the final round may overshoot by the points
	// sharing its bucket boundary, so allow 3x headroom.
	if verified > 3*(20+5) {
		t.Fatalf("verified %d candidates, budget 25", verified)
	}
}

func TestIdenticalProjectionsHandled(t *testing.T) {
	// All points identical: every projection collides at one value; the
	// binary search and cursor logic must not loop.
	data := make([][]float32, 30)
	for i := range data {
		data[i] = []float32{1, 2, 3}
	}
	idx, err := Build(data, t.TempDir(), Config{Seed: 35, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	q := []float32{1, 2, 3}
	verify := func(id uint32) (float64, error) { return 0, nil }
	got, err := idx.Search(q, 3, verify)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no results over identical points")
	}
}
