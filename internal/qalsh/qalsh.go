// Package qalsh implements QALSH — query-aware locality-sensitive hashing
// for c-approximate nearest neighbor search (Huang et al., PVLDB 2015) — as
// the disk-resident substrate of the H2-ALSH baseline, exactly as the
// ProMIPS paper's experiments do ("we employ the disk-resident QALSH in the
// implementation of H2-ALSH").
//
// Each of the K hash functions is a Gaussian vector a_i; the table for
// function i is the list of (a_i·o, id) pairs sorted by projection, laid
// out on disk pages. A query anchors a bucket of width w·R at its own
// projection (query-aware: no random shift) and performs virtual rehashing
// by growing R geometrically; points colliding in at least l tables become
// candidates and are verified through a caller-supplied distance oracle.
//
// The number of tables K and the collision threshold l follow the QALSH
// paper's Chernoff-bound construction from (c, δ, β); K is what makes LSH
// "heavyweight" next to ProMIPS' single B+-tree, which is the comparison
// the benchmark reproduces.
package qalsh

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sort"

	"promips/internal/pager"
	"promips/internal/stats"
)

// Config parameterizes a QALSH index.
type Config struct {
	// C is the ANN approximation ratio c0 > 1 (the paper fixes 2.0 in the
	// H2-ALSH experiments).
	C float64
	// Delta is the allowed failure probability (default 1/e).
	Delta float64
	// BetaCount is the candidate budget in points (default 100, the QALSH
	// convention β·n = 100).
	BetaCount int
	// MaxTables caps K to keep laptop-scale builds tractable; the paper's
	// point — K grows with n and dwarfs ProMIPS' index — survives the cap.
	MaxTables int
	PageSize  int
	PoolSize  int
	Seed      int64
}

func (c *Config) normalize(n int) {
	if c.C <= 1 {
		c.C = 2.0
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		c.Delta = 1 / math.E
	}
	if c.BetaCount <= 0 {
		c.BetaCount = 100
	}
	if c.MaxTables <= 0 {
		c.MaxTables = 80
	}
	if c.PageSize <= 0 {
		c.PageSize = pager.DefaultPageSize
	}
	_ = n
}

const entrySize = 12 // projection float64 + id uint32

// Index is a built QALSH index.
type Index struct {
	cfg  Config
	d, n int

	K int     // number of hash tables
	L int     // collision threshold l
	W float64 // bucket width w

	hashes [][]float32
	pg     *pager.Pager

	tableStart     []int64 // first page of each table
	entriesPerPage int
}

// Neighbor is a verified candidate with its oracle distance.
type Neighbor struct {
	ID   uint32
	Dist float64
}

// Params derives (w, p1, p2, K, l) from c, δ and β per the QALSH paper:
// w = sqrt(8c²lnc/(c²−1)) maximizes the collision-probability gap;
// p1 = 2Φ(w/2)−1 and p2 = 2Φ(w/2c)−1 are the collision probabilities at
// distances 1 and c; K and the threshold fraction α come from the
// Chernoff bounds that make both error sides vanish.
func Params(c, delta, beta float64) (w, p1, p2, alpha float64, k int) {
	w = math.Sqrt(8 * c * c * math.Log(c) / (c*c - 1))
	p1 = 2*stats.NormalCDF(w/2) - 1
	p2 = 2*stats.NormalCDF(w/(2*c)) - 1
	t1 := math.Sqrt(math.Log(1 / delta))
	t2 := math.Sqrt(math.Log(2 / beta))
	alpha = (t1*p2 + t2*p1) / (t1 + t2)
	k = int(math.Ceil((t1 + t2) * (t1 + t2) / (2 * (p1 - p2) * (p1 - p2))))
	if k < 1 {
		k = 1
	}
	return
}

// Build constructs the index over data in dir.
func Build(data [][]float32, dir string, cfg Config) (*Index, error) {
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("qalsh: empty dataset")
	}
	cfg.normalize(n)
	d := len(data[0])

	beta := float64(cfg.BetaCount) / float64(n)
	if beta >= 1 {
		beta = 0.99
	}
	w, _, _, alpha, k := Params(cfg.C, cfg.Delta, beta)
	if k > cfg.MaxTables {
		k = cfg.MaxTables
	}
	l := int(math.Ceil(alpha * float64(k)))
	if l < 1 {
		l = 1
	}
	if l > k {
		l = k
	}

	r := rand.New(rand.NewSource(cfg.Seed))
	hashes := make([][]float32, k)
	for i := range hashes {
		h := make([]float32, d)
		for j := range h {
			h[j] = float32(r.NormFloat64())
		}
		hashes[i] = h
	}

	pg, err := pager.Create(filepath.Join(dir, "qalsh.tables"), pager.Options{PageSize: cfg.PageSize, PoolSize: cfg.PoolSize})
	if err != nil {
		return nil, err
	}
	idx := &Index{
		cfg: cfg, d: d, n: n, K: k, L: l, W: w,
		hashes: hashes, pg: pg,
		tableStart:     make([]int64, k),
		entriesPerPage: cfg.PageSize / entrySize,
	}

	type ent struct {
		proj float64
		id   uint32
	}
	ents := make([]ent, n)
	page := make([]byte, cfg.PageSize)
	for t := 0; t < k; t++ {
		h := hashes[t]
		for i, o := range data {
			var s float64
			for j, v := range h {
				s += float64(v) * float64(o[j])
			}
			ents[i] = ent{proj: s, id: uint32(i)}
		}
		sort.Slice(ents, func(a, b int) bool { return ents[a].proj < ents[b].proj })
		first := int64(-1)
		for base := 0; base < n; base += idx.entriesPerPage {
			pid, err := pg.Alloc()
			if err != nil {
				pg.Close()
				return nil, err
			}
			if first < 0 {
				first = pid
			}
			for i := range page {
				page[i] = 0
			}
			for s := 0; s < idx.entriesPerPage && base+s < n; s++ {
				e := ents[base+s]
				binary.LittleEndian.PutUint64(page[s*entrySize:], math.Float64bits(e.proj))
				binary.LittleEndian.PutUint32(page[s*entrySize+8:], e.id)
			}
			if err := pg.Write(pid, page); err != nil {
				pg.Close()
				return nil, err
			}
		}
		idx.tableStart[t] = first
	}
	if err := pg.Sync(); err != nil {
		pg.Close()
		return nil, err
	}
	return idx, nil
}

// Close releases the table file.
func (idx *Index) Close() error { return idx.pg.Close() }

// Tables returns K, the number of hash tables.
func (idx *Index) Tables() int { return idx.K }

// Threshold returns l, the collision threshold.
func (idx *Index) Threshold() int { return idx.L }

// IndexSizeBytes returns the on-disk size of the hash tables plus the
// in-memory hash vectors.
func (idx *Index) IndexSizeBytes() int64 {
	return idx.pg.SizeBytes() + int64(idx.K*idx.d*4)
}

// Pager exposes the table pager for I/O accounting.
func (idx *Index) Pager() *pager.Pager { return idx.pg }

// entry reads entry j of table t.
func (idx *Index) entry(t int, j int) (float64, uint32, error) {
	pid := idx.tableStart[t] + int64(j/idx.entriesPerPage)
	page, err := idx.pg.Read(pid, nil)
	if err != nil {
		return 0, 0, err
	}
	off := (j % idx.entriesPerPage) * entrySize
	return math.Float64frombits(binary.LittleEndian.Uint64(page[off:])),
		binary.LittleEndian.Uint32(page[off+8:]), nil
}

// lowerBound returns the first entry index of table t whose projection is
// ≥ x (binary search over disk pages).
func (idx *Index) lowerBound(t int, x float64) (int, error) {
	lo, hi := 0, idx.n
	for lo < hi {
		mid := (lo + hi) / 2
		p, _, err := idx.entry(t, mid)
		if err != nil {
			return 0, err
		}
		if p < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// Search runs c-k-ANN with virtual rehashing. verify maps a candidate id
// to its true distance (the H2-ALSH wrapper reads the original vector and
// converts the inner product; its page accesses land on its own pager).
// Returns the k nearest verified candidates by oracle distance.
func (idx *Index) Search(q []float32, k int, verify func(id uint32) (float64, error)) ([]Neighbor, error) {
	if len(q) != idx.d {
		return nil, fmt.Errorf("qalsh: query dim %d, want %d", len(q), idx.d)
	}
	if k <= 0 {
		k = 1
	}

	// Query projections and initial cursors.
	pos := make([]float64, idx.K)
	left := make([]int, idx.K)  // next entry to the left (descending)
	right := make([]int, idx.K) // next entry to the right (ascending)
	for t := 0; t < idx.K; t++ {
		h := idx.hashes[t]
		var s float64
		for j, v := range h {
			s += float64(v) * float64(q[j])
		}
		pos[t] = s
		lb, err := idx.lowerBound(t, s)
		if err != nil {
			return nil, err
		}
		left[t], right[t] = lb-1, lb
	}

	freq := make([]uint16, idx.n)
	seen := make([]bool, idx.n)
	var cands []Neighbor
	budget := idx.cfg.BetaCount + k

	addCandidate := func(id uint32) error {
		if seen[id] {
			return nil
		}
		seen[id] = true
		dist, err := verify(id)
		if err != nil {
			return err
		}
		cands = append(cands, Neighbor{ID: id, Dist: dist})
		return nil
	}

	// Virtual rehashing: R doubles in ratio c each round. Transformed
	// points are unit-norm in the H2-ALSH reduction, so distances live in
	// [0,2]; starting at R = 2⁻¹⁰ only adds cheap empty rounds.
	R := math.Pow(2, -10)
	for round := 0; ; round++ {
		half := idx.W * R / 2
		exhausted := true
		for t := 0; t < idx.K; t++ {
			// Extend the bucket [pos−half, pos+half] on both sides.
			for left[t] >= 0 {
				p, id, err := idx.entry(t, left[t])
				if err != nil {
					return nil, err
				}
				if pos[t]-p > half {
					exhausted = false
					break
				}
				left[t]--
				freq[id]++
				if int(freq[id]) == idx.L {
					if err := addCandidate(id); err != nil {
						return nil, err
					}
				}
			}
			for right[t] < idx.n {
				p, id, err := idx.entry(t, right[t])
				if err != nil {
					return nil, err
				}
				if p-pos[t] > half {
					exhausted = false
					break
				}
				right[t]++
				freq[id]++
				if int(freq[id]) == idx.L {
					if err := addCandidate(id); err != nil {
						return nil, err
					}
				}
			}
			if left[t] >= 0 || right[t] < idx.n {
				exhausted = false
			}
		}

		// Termination tests (end of round): enough close candidates, the
		// candidate budget, or fully drained tables.
		if len(cands) >= budget || exhausted {
			break
		}
		closeEnough := 0
		for _, c := range cands {
			if c.Dist <= idx.cfg.C*R {
				closeEnough++
			}
		}
		if closeEnough >= k {
			break
		}
		R *= idx.cfg.C
	}

	sort.Slice(cands, func(i, j int) bool { return cands[i].Dist < cands[j].Dist })
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands, nil
}
