// Package randproj implements the 2-stable (Gaussian) random projections of
// the paper's §II-B, the m-bit sign codes Quick-Probe groups points by, the
// Theorem-3 lower bound on projected distance, the Theorem-4 upper bound on
// original distance, and the optimized projected dimension of §V-B.
//
// For a d-dimensional point o and m Gaussian vectors v₁..vₘ (entries i.i.d.
// N(0,1)), the projection is P(o) = (v₁·o, …, vₘ·o). Lemma 1 gives
// fᵢ(o)−fᵢ(q) ~ N(0, dis²(o,q)), hence Lemma 2:
// dis²(P(o),P(q))/dis²(o,q) ~ χ²(m).
package randproj

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// MaxM bounds the projected dimension so sign codes fit a uint32 group key.
// The paper's optimized m is 6–10 on all datasets, far below this cap.
const MaxM = 30

// Projector holds the m Gaussian projection vectors for a d-dimensional
// space. A Projector is immutable after construction and safe for
// concurrent use.
type Projector struct {
	d, m int
	rows [][]float32 // m rows of d Gaussian entries
}

// New builds a Projector for d-dimensional input and m output dimensions,
// seeded deterministically.
func New(d, m int, seed int64) *Projector {
	if d <= 0 || m <= 0 {
		panic(fmt.Sprintf("randproj: need d > 0 and m > 0, got d=%d m=%d", d, m))
	}
	if m > MaxM {
		panic(fmt.Sprintf("randproj: m=%d exceeds MaxM=%d", m, MaxM))
	}
	r := rand.New(rand.NewSource(seed))
	rows := make([][]float32, m)
	for i := range rows {
		row := make([]float32, d)
		for j := range row {
			row[j] = float32(r.NormFloat64())
		}
		rows[i] = row
	}
	return &Projector{d: d, m: m, rows: rows}
}

// D returns the original dimensionality.
func (p *Projector) D() int { return p.d }

// M returns the projected dimensionality.
func (p *Projector) M() int { return p.m }

// Project returns P(o), the m 2-stable projections of o.
func (p *Projector) Project(o []float32) []float32 {
	return p.ProjectInto(o, nil)
}

// ProjectInto computes P(o) into dst (reused when its capacity suffices),
// so per-query callers can project without allocating.
func (p *Projector) ProjectInto(o []float32, dst []float32) []float32 {
	if len(o) != p.d {
		panic(fmt.Sprintf("randproj: point has dim %d, want %d", len(o), p.d))
	}
	if cap(dst) < p.m {
		dst = make([]float32, p.m)
	}
	dst = dst[:p.m]
	for i, row := range p.rows {
		var s float64
		for j, v := range row {
			s += float64(v) * float64(o[j])
		}
		dst[i] = float32(s)
	}
	return dst
}

// ProjectAll projects every point of data.
func (p *Projector) ProjectAll(data [][]float32) [][]float32 {
	out := make([][]float32, len(data))
	for i, o := range data {
		out[i] = p.Project(o)
	}
	return out
}

// Code returns the m-bit sign code of a projected point: bit i is 1 when
// Pᵢ(o) ≥ 0. Quick-Probe groups points by this code.
func Code(projected []float32) uint32 {
	if len(projected) > MaxM {
		panic(fmt.Sprintf("randproj: projected dim %d exceeds MaxM", len(projected)))
	}
	var c uint32
	for i, v := range projected {
		if v >= 0 {
			c |= 1 << uint(i)
		}
	}
	return c
}

// GroupLowerBound computes Theorem 3's lower bound on the projected-space
// Euclidean distance between any point with sign code codeO and the
// projected query pq with code codeQ:
//
//	dis(P(o), P(q)) ≥ (1/√m) · Σᵢ (cᵢ(o)⊕cᵢ(q)) · |Pᵢ(q)|
//
// Coordinates where the signs agree contribute nothing; where they differ,
// |Pᵢ(o)−Pᵢ(q)| ≥ |Pᵢ(q)|.
func GroupLowerBound(codeO, codeQ uint32, pq []float32) float64 {
	x := codeO ^ codeQ
	var s float64
	for i := range pq {
		if x&(1<<uint(i)) != 0 {
			s += math.Abs(float64(pq[i]))
		}
	}
	return s / math.Sqrt(float64(len(pq)))
}

// DistUpperBound is Theorem 4's upper bound on the original-space distance:
// dis(o,q) ≤ ‖o‖₁ + ‖q‖₁. The arguments are the two 1-norms.
func DistUpperBound(norm1O, norm1Q float64) float64 { return norm1O + norm1Q }

// OptimizedM returns argmin f(m) = 2^m·(m+1) + n/2^m over integer m (§V-B):
// the trade-off between scanning the 2^m group lower bounds and scanning the
// n/2^m points of one group. The result is clamped to [2, MaxM]. f is
// strictly convex in m, so the first local minimum is global.
func OptimizedM(n int) int {
	if n < 1 {
		n = 1
	}
	f := func(m int) float64 {
		p := math.Pow(2, float64(m))
		return p*float64(m+1) + float64(n)/p
	}
	best, bestV := 2, f(2)
	for m := 3; m <= MaxM; m++ {
		v := f(m)
		if v < bestV {
			best, bestV = m, v
		} else {
			break // convex: once it grows, it keeps growing
		}
	}
	return best
}

// EncodedSize returns the byte length of a serialized Projector with the
// given dimensions.
func EncodedSize(d, m int) int { return 16 + 4*d*m }

// Encode serializes the Projector (for persisting an index to disk).
func (p *Projector) Encode() []byte {
	buf := make([]byte, EncodedSize(p.d, p.m))
	binary.LittleEndian.PutUint64(buf, uint64(p.d))
	binary.LittleEndian.PutUint64(buf[8:], uint64(p.m))
	off := 16
	for _, row := range p.rows {
		for _, v := range row {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
			off += 4
		}
	}
	return buf
}

// Decode reconstructs a Projector serialized by Encode.
func Decode(buf []byte) (*Projector, error) {
	if len(buf) < 16 {
		return nil, fmt.Errorf("randproj: truncated projector header (%d bytes)", len(buf))
	}
	d := int(binary.LittleEndian.Uint64(buf))
	m := int(binary.LittleEndian.Uint64(buf[8:]))
	if d <= 0 || m <= 0 || m > MaxM {
		return nil, fmt.Errorf("randproj: invalid dims d=%d m=%d", d, m)
	}
	if len(buf) < EncodedSize(d, m) {
		return nil, fmt.Errorf("randproj: truncated projector body: %d < %d", len(buf), EncodedSize(d, m))
	}
	rows := make([][]float32, m)
	off := 16
	for i := range rows {
		row := make([]float32, d)
		for j := range row {
			row[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
		rows[i] = row
	}
	return &Projector{d: d, m: m, rows: rows}, nil
}
