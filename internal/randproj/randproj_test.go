package randproj

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"promips/internal/stats"
	"promips/internal/vec"
)

func randVec(r *rand.Rand, d int) []float32 {
	v := make([]float32, d)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return v
}

func TestNewPanics(t *testing.T) {
	for _, tc := range []struct{ d, m int }{{0, 4}, {4, 0}, {4, MaxM + 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for d=%d m=%d", tc.d, tc.m)
				}
			}()
			New(tc.d, tc.m, 1)
		}()
	}
}

func TestProjectDims(t *testing.T) {
	p := New(32, 6, 1)
	if p.D() != 32 || p.M() != 6 {
		t.Fatalf("dims = (%d,%d)", p.D(), p.M())
	}
	out := p.Project(make([]float32, 32))
	if len(out) != 6 {
		t.Fatalf("projected len = %d", len(out))
	}
	for _, v := range out {
		if v != 0 {
			t.Fatal("projection of zero vector should be zero")
		}
	}
}

func TestProjectLinearity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	p := New(16, 5, 3)
	a, b := randVec(r, 16), randVec(r, 16)
	pa, pb := p.Project(a), p.Project(b)
	psum := p.Project(vec.Add(a, b))
	for i := range psum {
		if math.Abs(float64(psum[i]-(pa[i]+pb[i]))) > 1e-3 {
			t.Fatalf("projection not linear at %d: %v vs %v", i, psum[i], pa[i]+pb[i])
		}
	}
}

func TestProjectDeterministicPerSeed(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	v := randVec(r, 10)
	a := New(10, 4, 7).Project(v)
	b := New(10, 4, 7).Project(v)
	c := New(10, 4, 8).Project(v)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different projections")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical projections")
	}
}

// Lemma 1/2 Monte-Carlo check: dis²(P(o),P(q))/dis²(o,q) over many random
// projectors follows χ²(m) — mean m, variance 2m.
func TestLemma2ChiSquareDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	const d, m, trials = 24, 6, 4000
	o, q := randVec(r, d), randVec(r, d)
	distSq := vec.L2DistSq(o, q)
	var sum, sumSq float64
	var below float64
	x95 := stats.ChiSquareInvCDF(m, 0.95)
	for i := 0; i < trials; i++ {
		p := New(d, m, int64(1000+i))
		ratio := vec.L2DistSq(p.Project(o), p.Project(q)) / distSq
		sum += ratio
		sumSq += ratio * ratio
		if ratio <= x95 {
			below++
		}
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean-m) > 0.35 {
		t.Errorf("mean ratio = %.3f, want ~%d", mean, m)
	}
	if math.Abs(variance-2*m) > 1.6 {
		t.Errorf("variance = %.3f, want ~%d", variance, 2*m)
	}
	if frac := below / trials; math.Abs(frac-0.95) > 0.02 {
		t.Errorf("fraction below 95%% quantile = %.3f", frac)
	}
}

func TestCode(t *testing.T) {
	if got := Code([]float32{1, -1, 0.5, -0.5}); got != 0b0101 {
		t.Fatalf("Code = %b, want 0101", got)
	}
	if got := Code([]float32{0, 0}); got != 0b11 {
		t.Fatalf("Code of zeros = %b, want 11 (zero counts as non-negative)", got)
	}
	if got := Code(nil); got != 0 {
		t.Fatalf("Code(nil) = %b", got)
	}
}

// Property (Theorem 3): the group lower bound never exceeds the true
// projected distance.
func TestPropertyTheorem3LowerBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 4 + r.Intn(30)
		m := 2 + r.Intn(10)
		p := New(d, m, seed)
		o, q := randVec(r, d), randVec(r, d)
		po, pq := p.Project(o), p.Project(q)
		lb := GroupLowerBound(Code(po), Code(pq), pq)
		return lb <= vec.L2Dist(po, pq)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property (Theorem 4): ‖o−q‖₂ ≤ ‖o‖₁+‖q‖₁.
func TestPropertyTheorem4UpperBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(50)
		o, q := randVec(r, d), randVec(r, d)
		return vec.L2Dist(o, q) <= DistUpperBound(vec.Norm1(o), vec.Norm1(q))+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupLowerBoundSameCodeIsZero(t *testing.T) {
	pq := []float32{1, -2, 3}
	if lb := GroupLowerBound(5, 5, pq); lb != 0 {
		t.Fatalf("same code LB = %v, want 0", lb)
	}
}

func TestGroupLowerBoundAllBitsDiffer(t *testing.T) {
	pq := []float32{3, -4}
	lb := GroupLowerBound(0b00, 0b11, pq)
	want := (3.0 + 4.0) / math.Sqrt2
	if math.Abs(lb-want) > 1e-12 {
		t.Fatalf("LB = %v, want %v", lb, want)
	}
}

func TestOptimizedM(t *testing.T) {
	// f(m) = 2^m(m+1) + n/2^m. For the paper's datasets the optimized m
	// lands in 6..10; verify ours is the true argmin by brute force.
	for _, n := range []int{1, 100, 17770, 31420, 624961, 11164866} {
		got := OptimizedM(n)
		best, bestV := 2, math.Inf(1)
		for m := 2; m <= MaxM; m++ {
			v := math.Pow(2, float64(m))*float64(m+1) + float64(n)/math.Pow(2, float64(m))
			if v < bestV {
				best, bestV = m, v
			}
		}
		if got != best {
			t.Errorf("OptimizedM(%d) = %d, brute force argmin = %d", n, got, best)
		}
	}
	// Monotonicity-ish sanity: larger n never decreases m.
	prev := 0
	for _, n := range []int{10, 1000, 100000, 10000000} {
		m := OptimizedM(n)
		if m < prev {
			t.Errorf("OptimizedM not monotone: n=%d gives %d < %d", n, m, prev)
		}
		prev = m
	}
}

func TestOptimizedMPaperRange(t *testing.T) {
	// Paper §VIII-A-4 uses m=6 (Netflix n=17770, P53 n=31420), m=8 (Yahoo
	// n=624961), m=10 (Sift n=11164866): our argmin should be within ±2 of
	// those choices (the paper rounds for convenience).
	cases := []struct {
		n, wantLo, wantHi int
	}{
		{17770, 4, 8},
		{31420, 4, 8},
		{624961, 6, 10},
		{11164866, 8, 12},
	}
	for _, c := range cases {
		m := OptimizedM(c.n)
		if m < c.wantLo || m > c.wantHi {
			t.Errorf("OptimizedM(%d) = %d, want in [%d,%d]", c.n, m, c.wantLo, c.wantHi)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	p := New(20, 7, 555)
	buf := p.Encode()
	q, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	v := randVec(r, 20)
	a, b := p.Project(v), q.Project(v)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("decoded projector differs")
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("expected error for nil buffer")
	}
	p := New(8, 4, 1)
	buf := p.Encode()
	if _, err := Decode(buf[:20]); err == nil {
		t.Fatal("expected error for truncated body")
	}
}

func BenchmarkProject300x8(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	p := New(300, 8, 2)
	v := randVec(r, 300)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Project(v)
	}
}
