package core

import (
	"math/rand"
	"testing"
)

func TestSaveOpenRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	data := randData(r, 700, 14)
	dir := t.TempDir()
	ix, err := Build(data, dir, Options{Seed: 32, M: 5, C: 0.9, P: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(dir); err != nil {
		t.Fatal(err)
	}
	q := randData(r, 1, 14)[0]
	want, _, err := ix.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 700 || re.Dim() != 14 || re.M() != 5 {
		t.Fatalf("reloaded metadata = %d %d %d", re.Len(), re.Dim(), re.M())
	}
	if re.Options().P != 0.6 {
		t.Fatalf("reloaded p = %v", re.Options().P)
	}
	got, _, err := re.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("result count changed: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d changed after reload: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("expected error opening empty dir")
	}
}
