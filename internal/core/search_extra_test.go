package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"promips/internal/vec"
)

// Property: Search returns sorted, duplicate-free results drawn from the
// live id space, never exceeding the exact maximum.
func TestPropertySearchWellFormed(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	data := randData(r, 600, 12)
	ix := buildIndex(t, data, Options{Seed: 72, M: 5})
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		q := randData(rr, 1, 12)[0]
		k := 1 + rr.Intn(20)
		res, _, err := ix.Search(q, k)
		if err != nil || len(res) != k {
			return false
		}
		seen := make(map[uint32]bool)
		exactBest := bruteTopK(data, q, 1)[0].IP
		for i, rres := range res {
			if int(rres.ID) >= len(data) || seen[rres.ID] {
				return false
			}
			seen[rres.ID] = true
			if i > 0 && res[i-1].IP < rres.IP {
				return false
			}
			if rres.IP > exactBest+1e-9 {
				return false
			}
			// Reported IPs must be exact.
			if diff := rres.IP - vec.Dot(data[rres.ID], q); diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Epsilon override must produce a working index.
func TestEpsilonOverride(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	data := randData(r, 300, 10)
	ix := buildIndex(t, data, Options{Seed: 74, M: 4, Epsilon: 0.5})
	res, _, err := ix.Search(randData(r, 1, 10)[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("returned %d results", len(res))
	}
}

// A dataset containing the origin exercises Quick-Probe's zero-upper-bound
// branch (‖o‖₁+‖q‖₁ = 0 when both are the origin).
func TestOriginPointAndOriginQuery(t *testing.T) {
	r := rand.New(rand.NewSource(75))
	data := randData(r, 200, 8)
	for j := range data[0] {
		data[0][j] = 0
	}
	ix := buildIndex(t, data, Options{Seed: 76, M: 4})
	res, _, err := ix.Search(make([]float32, 8), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("origin query returned %d results", len(res))
	}
}

// The paper's c-k-AMIP extension: every returned position i must satisfy
// the ratio against the exact i-th MIP point with probability ≥ p. Checked
// in aggregate at p=0.9 across positions.
func TestPerPositionGuarantee(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	data := randData(r, 1000, 16)
	ix := buildIndex(t, data, Options{Seed: 78, C: 0.8, P: 0.9, M: 5})
	const k, queries = 5, 20
	okPositions, totPositions := 0, 0
	for trial := 0; trial < queries; trial++ {
		q := randData(r, 1, 16)[0]
		res, _, err := ix.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		ex := bruteTopK(data, q, k)
		for i := 0; i < k; i++ {
			totPositions++
			if ex[i].IP <= 0 || res[i].IP >= 0.8*ex[i].IP {
				okPositions++
			}
		}
	}
	if frac := float64(okPositions) / float64(totPositions); frac < 0.8 {
		t.Fatalf("per-position guarantee rate %.2f", frac)
	}
}

func TestSearchIncrementalErrors(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	ix := buildIndex(t, randData(r, 100, 8), Options{Seed: 80, M: 4})
	if _, _, err := ix.SearchIncremental(make([]float32, 5), 1); err == nil {
		t.Fatal("expected dim mismatch error")
	}
	if _, _, err := ix.SearchIncremental(make([]float32, 8), -1); err == nil {
		t.Fatal("expected k error")
	}
}

func TestExactDimMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	ix := buildIndex(t, randData(r, 50, 8), Options{Seed: 82, M: 4})
	if _, err := ix.Exact(context.Background(), make([]float32, 3), 1); err == nil {
		t.Fatal("expected dim mismatch error")
	}
}
