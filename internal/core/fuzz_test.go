package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"promips/internal/errs"
)

// realMetaBytes builds a tiny real index, saves it, and returns the
// promips.meta bytes — the fuzz corpus's anchor in reality.
func realMetaBytes(tb testing.TB) []byte {
	tb.Helper()
	r := rand.New(rand.NewSource(9))
	data := randData(r, 40, 6)
	dir := tb.TempDir()
	ix, err := Build(data, dir, Options{Seed: 10, M: 4})
	if err != nil {
		tb.Fatal(err)
	}
	defer ix.Close()
	if _, err := ix.Insert(data[0]); err != nil {
		tb.Fatal(err)
	}
	ix.Delete(3)
	if err := ix.Save(dir); err != nil {
		tb.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "promips.meta"))
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// FuzzCoreMetaDecode: arbitrary bytes fed to the promips.meta decoder must
// yield ErrCorruptIndex or a validated meta — never a panic, and never a
// meta whose shape would make the search path index out of bounds.
func FuzzCoreMetaDecode(f *testing.F) {
	real := realMetaBytes(f)
	f.Add(real)
	f.Add(real[:len(real)/2])
	f.Add([]byte{})
	f.Add([]byte("not a gob stream at all"))
	// A well-formed gob of a hostile meta: arrays shorter than N.
	var hostile bytes.Buffer
	gob.NewEncoder(&hostile).Encode(&coreMeta{N: 1 << 30, D: 4, M: 4})
	f.Add(hostile.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeCoreMeta(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, errs.ErrCorruptIndex) {
				t.Fatalf("decode error outside the taxonomy: %v", err)
			}
			return
		}
		// Validation passed: the invariants the search path relies on hold.
		if len(m.Norm2Sq) != m.N || len(m.Norm1) != m.N || len(m.Codes) != m.N {
			t.Fatalf("validated meta with inconsistent arrays: n=%d %d/%d/%d",
				m.N, len(m.Norm2Sq), len(m.Norm1), len(m.Codes))
		}
		for i, e := range m.Delta {
			if int(e.ID) != m.N+i || len(e.V) != m.D {
				t.Fatalf("validated meta with bad delta entry %d: %+v", i, e)
			}
		}
	})
}

// TestOpenCorruptMeta pins the non-fuzz contract: flipping bytes in a real
// meta file yields ErrCorruptIndex from Open, never a panic, and never a
// silently wrong index.
func TestOpenCorruptMeta(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	data := randData(r, 40, 6)
	dir := t.TempDir()
	ix, err := Build(data, dir, Options{Seed: 22, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(dir); err != nil {
		t.Fatal(err)
	}
	ix.Close()
	path := filepath.Join(dir, "promips.meta")
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, len(orig) / 3, len(orig) - 2} {
		if err := os.WriteFile(path, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); !errors.Is(err, errs.ErrCorruptIndex) {
			t.Fatalf("truncated meta (%d bytes): err = %v, want ErrCorruptIndex", cut, err)
		}
	}
}
