package core

import (
	"fmt"
	"math"
	"sort"

	"promips/internal/idistance"
	"promips/internal/pager"
	"promips/internal/randproj"
	"promips/internal/stats"
	"promips/internal/vec"
)

// topK maintains the k largest inner products seen so far as a sorted slice
// (descending by IP). k is at most 100 in the paper's experiments, so linear
// insertion beats heap bookkeeping.
type topK struct {
	k       int
	results []Result
}

func newTopK(k int) *topK { return &topK{k: k, results: make([]Result, 0, k)} }

// offer inserts (id, ip) when it beats the current k-th best.
func (t *topK) offer(id uint32, ip float64) {
	if len(t.results) == t.k && ip <= t.results[t.k-1].IP {
		return
	}
	pos := sort.Search(len(t.results), func(i int) bool { return t.results[i].IP < ip })
	t.results = append(t.results, Result{})
	copy(t.results[pos+1:], t.results[pos:])
	t.results[pos] = Result{ID: id, IP: ip}
	if len(t.results) > t.k {
		t.results = t.results[:t.k]
	}
}

// kth returns the current k-th best inner product (⟨omax^k, q⟩ in the
// paper's c-k-AMIP extension), and false while fewer than k points have
// been collected.
func (t *topK) kth() (float64, bool) {
	if len(t.results) < t.k {
		return math.Inf(-1), false
	}
	return t.results[t.k-1].IP, true
}

// Search runs the full ProMIPS query (Quick-Probe + MIP-Search-II) and
// returns the top-k c-AMIP results, best inner product first. With
// probability at least p (Options.P), every returned point oi satisfies
// ⟨oi,q⟩ ≥ c·⟨o*i,q⟩. Search is safe to call from many goroutines against
// one shared Index; each call accounts its own page accesses.
func (ix *Index) Search(q []float32, k int) ([]Result, SearchStats, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.searchLocked(q, k)
}

func (ix *Index) searchLocked(q []float32, k int) ([]Result, SearchStats, error) {
	if len(q) != ix.d {
		return nil, SearchStats{}, fmt.Errorf("core: query dim %d, want %d", len(q), ix.d)
	}
	if k <= 0 {
		return nil, SearchStats{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if live := ix.liveCountLocked(); k > live {
		k = live
	}
	if k == 0 {
		return nil, SearchStats{}, fmt.Errorf("core: index has no live points")
	}
	io := new(pager.IOStats)
	var st SearchStats

	pq := ix.proj.Project(q)
	normQSq := vec.Norm2Sq(q)
	norm1Q := vec.Norm1(q)

	// ---- Quick-Probe (Algorithm 2) -----------------------------------
	probeID := ix.quickProbe(pq, norm1Q, &st)

	// The located point's projected distance is the estimated range
	// (fetching its projected vector costs one page access, the only
	// projected-point read Quick-Probe needs).
	probePt, err := ix.idist.Projected(probeID, nil, io)
	if err != nil {
		return nil, st, err
	}
	r := vec.L2Dist(probePt, pq)
	if r <= 0 {
		// The located point projects exactly onto the query; fall back to
		// one ring width so the range search has volume.
		r = ix.idist.Epsilon()
	}
	st.Radius = r

	// ---- MIP-Search-II (Algorithm 3) ----------------------------------
	// Candidates are consumed in ascending projected distance (the order
	// the incremental NN search of Algorithm 1 would return them in), so
	// Theorem 2 lets us test Condition B on every candidate using the
	// projected distance the range search already computed — no extra disk
	// reads, one threshold comparison per point. Condition B's test
	// Ψm(dis²/denom) ≥ p is evaluated as dis² ≥ Ψm⁻¹(p)·denom.
	chiThreshold := stats.ChiSquareInvCDF(ix.m, ix.opts.P)
	top := newTopK(k)
	// Recently inserted points are evaluated exactly up front (no disk
	// I/O); their inner products can only tighten the conditions below.
	ix.scanDelta(q, top)
	qbuf := make([]float32, ix.d)
	// verify reads the candidate's original vector, updates the top-k and
	// returns the terminating condition ("A", "B" or "").
	verify := func(c idistance.Candidate) (string, error) {
		if !ix.live(c.ID) {
			return "", nil // tombstoned by Delete
		}
		o, err := ix.orig.Vector(c.ID, qbuf, io)
		if err != nil {
			return "", err
		}
		st.Candidates++
		top.offer(c.ID, vec.Dot(o, q))
		ipK, full := top.kth()
		if !full {
			return "", nil
		}
		denom := ix.conditionBDenominator(normQSq, ipK)
		if denom <= 0 {
			return "A", nil // Condition A (Formula 1) holds
		}
		if c.Dist*c.Dist >= chiThreshold*denom {
			return "B", nil // Condition B (Formula 2) holds
		}
		return "", nil
	}

	cands, err := ix.idist.RangeSearch(pq, r, io)
	if err != nil {
		return nil, st, err
	}
	for _, c := range cands {
		cond, err := verify(c)
		if err != nil {
			return nil, st, err
		}
		if cond != "" {
			st.TerminatedBy = cond
			st.PageAccesses = io.Pages()
			return top.results, st, nil
		}
	}

	// Range exhausted: test Condition B with the scanned radius (every
	// unseen point projects farther than r, so Ψm(r²/denom) ≥ p bounds the
	// miss probability by 1−p).
	ipK, full := top.kth()
	if full {
		denom := ix.conditionBDenominator(normQSq, ipK)
		if denom <= 0 {
			st.TerminatedBy = "A"
			st.PageAccesses = io.Pages()
			return top.results, st, nil
		}
		if stats.ChiSquareCDF(ix.m, r*r/denom) >= ix.opts.P {
			st.TerminatedBy = "B"
			st.PageAccesses = io.Pages()
			return top.results, st, nil
		}
	}

	// Compensation: extend the range to r' (Algorithm 3 line 15). When
	// fewer than k candidates were found the guarantee needs a full scan,
	// so r' falls back to infinity.
	rExt := math.Inf(1)
	if full {
		denom := ix.conditionBDenominator(normQSq, ipK)
		rExt = math.Sqrt(stats.ChiSquareInvCDF(ix.m, ix.opts.P) * denom)
	}
	st.ExtendedRadius = rExt

	var extCands []idistance.Candidate
	err = ix.idist.Search(pq, r, rExt, io, func(c idistance.Candidate) bool {
		extCands = append(extCands, c)
		return true
	})
	if err != nil {
		return nil, st, err
	}
	sort.Slice(extCands, func(i, j int) bool { return extCands[i].Dist < extCands[j].Dist })
	for _, c := range extCands {
		cond, err := verify(c)
		if err != nil {
			return nil, st, err
		}
		if cond != "" {
			st.TerminatedBy = cond
			st.PageAccesses = io.Pages()
			return top.results, st, nil
		}
	}
	st.TerminatedBy = "exhausted"
	st.PageAccesses = io.Pages()
	return top.results, st, nil
}

// quickProbe implements Algorithm 2: rank the sign-code groups by their
// Theorem-3 lower bound, return the first group whose cheapest member
// passes Test A — Ψm(LB²/(c·(‖o‖₁+‖q‖₁)²)) ≥ p — or, failing that, the
// member with the largest recorded test value.
func (ix *Index) quickProbe(pq []float32, norm1Q float64, st *SearchStats) uint32 {
	codeQ := randproj.Code(pq)
	type ranked struct {
		lb float64
		gi int
	}
	order := make([]ranked, len(ix.groups))
	for i, g := range ix.groups {
		order[i] = ranked{lb: randproj.GroupLowerBound(g.code, codeQ, pq), gi: i}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].lb < order[j].lb })

	threshold := stats.ChiSquareInvCDF(ix.m, ix.opts.P)
	bestVal := -1.0
	bestID := ix.groups[order[0].gi].minID
	for _, rk := range order {
		st.GroupsProbed++
		g := ix.groups[rk.gi]
		ub := randproj.DistUpperBound(g.minNorm1, norm1Q)
		if ub <= 0 {
			// Query and point are both the origin: any range works.
			return g.minID
		}
		val := rk.lb * rk.lb / (ix.opts.C * ub * ub)
		if val >= threshold { // equivalent to Ψm(val) ≥ p, cheaper than the CDF
			return g.minID
		}
		if val > bestVal {
			bestVal, bestID = val, g.minID
		}
	}
	return bestID
}

// SearchIncremental runs Algorithm 1 (MIP-Search-I): an incremental NN scan
// in the projected space, testing Conditions A and B on every returned
// point. It is kept for the ablation study of Quick-Probe's benefit; the
// results carry the same probability guarantee. Like Search, it is safe for
// concurrent use.
func (ix *Index) SearchIncremental(q []float32, k int) ([]Result, SearchStats, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(q) != ix.d {
		return nil, SearchStats{}, fmt.Errorf("core: query dim %d, want %d", len(q), ix.d)
	}
	if k <= 0 {
		return nil, SearchStats{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if live := ix.liveCountLocked(); k > live {
		k = live
	}
	if k == 0 {
		return nil, SearchStats{}, fmt.Errorf("core: index has no live points")
	}
	io := new(pager.IOStats)
	var st SearchStats

	pq := ix.proj.Project(q)
	normQSq := vec.Norm2Sq(q)
	top := newTopK(k)
	ix.scanDelta(q, top)
	buf := make([]float32, ix.d)

	it := ix.idist.NewIterator(pq, io)
	for {
		c, ok := it.Next()
		if !ok {
			if err := it.Err(); err != nil {
				return nil, st, err
			}
			st.TerminatedBy = "exhausted"
			break
		}
		if !ix.live(c.ID) {
			continue
		}
		o, err := ix.orig.Vector(c.ID, buf, io)
		if err != nil {
			return nil, st, err
		}
		st.Candidates++
		top.offer(c.ID, vec.Dot(o, q))
		ipK, full := top.kth()
		if !full {
			continue
		}
		if ix.conditionA(normQSq, ipK) {
			st.TerminatedBy = "A"
			break
		}
		denom := ix.conditionBDenominator(normQSq, ipK)
		if denom > 0 && stats.ChiSquareCDF(ix.m, c.Dist*c.Dist/denom) >= ix.opts.P {
			st.TerminatedBy = "B"
			break
		}
	}
	st.PageAccesses = io.Pages()
	return top.results, st, nil
}

// Exact scans the whole dataset through the store and returns the true
// top-k MIP points. It is the ground truth used by the overall-ratio and
// recall metrics and by tests of the probability guarantee. Safe for
// concurrent use.
func (ix *Index) Exact(q []float32, k int) ([]Result, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(q) != ix.d {
		return nil, fmt.Errorf("core: query dim %d, want %d", len(q), ix.d)
	}
	if live := ix.liveCountLocked(); k > live {
		k = live
	}
	top := newTopK(k)
	ix.scanDelta(q, top)
	buf := make([]float32, ix.d)
	for pos := 0; pos < ix.n; pos++ {
		// VectorAt walks layout order; recover the id from the layout.
		id := ix.idist.Layout()[pos]
		if !ix.live(id) {
			continue
		}
		o, err := ix.orig.VectorAt(pos, buf, nil)
		if err != nil {
			return nil, err
		}
		top.offer(id, vec.Dot(o, q))
	}
	return top.results, nil
}
