package core

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"

	"promips/internal/errs"
	"promips/internal/idistance"
	"promips/internal/randproj"
	"promips/internal/stats"
	"promips/internal/vec"
)

// topK maintains the k largest inner products seen so far as a sorted slice
// (descending by IP). k is at most 100 in the paper's experiments, so linear
// insertion beats heap bookkeeping.
type topK struct {
	k       int
	results []Result
}

func newTopK(k int) *topK { return &topK{k: k, results: make([]Result, 0, k)} }

// reset prepares a pooled accumulator for a new query, reusing its backing.
func (t *topK) reset(k int) {
	t.k = k
	if cap(t.results) < k {
		t.results = make([]Result, 0, k)
	}
	t.results = t.results[:0]
}

// offer inserts (id, ip) when it beats the current k-th best.
func (t *topK) offer(id uint32, ip float64) {
	if len(t.results) == t.k && ip <= t.results[t.k-1].IP {
		return
	}
	pos := sort.Search(len(t.results), func(i int) bool { return t.results[i].IP < ip })
	t.results = append(t.results, Result{})
	copy(t.results[pos+1:], t.results[pos:])
	t.results[pos] = Result{ID: id, IP: ip}
	if len(t.results) > t.k {
		t.results = t.results[:t.k]
	}
}

// kth returns the current k-th best inner product (⟨omax^k, q⟩ in the
// paper's c-k-AMIP extension), and false while fewer than k points have
// been collected.
func (t *topK) kth() (float64, bool) {
	if len(t.results) < t.k {
		return math.Inf(-1), false
	}
	return t.results[t.k-1].IP, true
}

// SearchParams carries a query's overrides of the index defaults. The two
// guarantee knobs are query-local: Quick-Probe's test threshold and the two
// termination conditions are recomputed from (c, p) per query, so no index
// state depends on them. The zero value reproduces the build-time Options.
type SearchParams struct {
	// C overrides the approximation ratio for this query (0 = index
	// default). Must lie in (0,1).
	C float64
	// P overrides the guarantee probability for this query (0 = index
	// default). Must lie in (0,1).
	P float64
	// Filter restricts the search to points whose id it accepts; nil
	// accepts every point. Rejected points are neither verified nor
	// returned, and the (c, p) guarantee is made against the best point
	// that passes the filter.
	Filter func(id uint32) bool
	// NoPrerank disables the PQ-sketch verification pre-ranking and restores
	// the pure ascending-projected-distance order (the pre-sketch behavior).
	// Benchmarks use it to measure the pre-ranking effect; results satisfy
	// the same (c, p) guarantee either way.
	NoPrerank bool
}

// Candidate verdicts of the verification path: skipped candidates
// (tombstoned or filtered) advance nothing; pruned and verified ones both
// advance the Condition B distance frontier — a pruned candidate is exactly
// (if one-sidedly) bounded, so it is "seen" in the sense the termination
// argument needs.
const (
	candSkipped = iota
	candPruned
	candVerified
)

// resolve returns the effective (c, p) for a query.
func (sn *snapshot) resolve(p SearchParams) (float64, float64, error) {
	c, pr := p.C, p.P
	if c == 0 {
		c = sn.optC
	}
	if pr == 0 {
		pr = sn.optP
	}
	// Negated-range form so NaN fails too: every comparison with NaN is
	// false, and a NaN that slipped through would reach idistance's
	// float→int64 ring conversion, whose result is undefined.
	if !(c > 0 && c < 1) {
		return 0, 0, fmt.Errorf("core: approximation ratio c must be in (0,1), got %v", c)
	}
	if !(pr > 0 && pr < 1) {
		return 0, 0, fmt.Errorf("core: probability p must be in (0,1), got %v", pr)
	}
	return c, pr, nil
}

// accepts reports whether the query's filter admits id.
func (p *SearchParams) accepts(id uint32) bool {
	return p.Filter == nil || p.Filter(id)
}

// Search runs the full ProMIPS query (Quick-Probe + MIP-Search-II) with the
// index defaults and no cancellation. It is the convenience form of
// SearchContext for internal callers and benchmarks.
func (ix *Index) Search(q []float32, k int) ([]Result, SearchStats, error) {
	return ix.SearchContext(context.Background(), q, k, SearchParams{})
}

// SearchContext runs the full ProMIPS query (Quick-Probe + MIP-Search-II)
// and returns the top-k c-AMIP results, best inner product first. With
// probability at least p, every returned point oi satisfies
// ⟨oi,q⟩ ≥ c·⟨o*i,q⟩, where (c, p) come from params (falling back to the
// build-time options). Cancellation is honored between iDistance
// sub-partition scans; the error then satisfies errors.Is(err, ctx.Err()).
// SearchContext is safe to call from many goroutines against one shared
// Index; each call accounts its own page accesses. The query runs against
// a SNAPSHOT of the index state at call time: the index lock is held only
// for the capture, so concurrent inserts, deletes, segment freezes and
// compactions never block a running search (and never appear mid-query).
func (ix *Index) SearchContext(ctx context.Context, q []float32, k int, params SearchParams) ([]Result, SearchStats, error) {
	sn, err := ix.snapshot()
	if err != nil {
		return nil, SearchStats{}, err
	}
	defer sn.release()
	return sn.search(ctx, q, k, params)
}

// beginSearch is the shared validation prologue of the two query entry
// points: per-query parameter resolution, dimension check, and the k clamp
// against the snapshot's live count. (The closed check already happened at
// snapshot capture.)
func (sn *snapshot) beginSearch(q []float32, k int, params SearchParams) (c, p float64, kk int, err error) {
	c, p, err = sn.resolve(params)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(q) != sn.d {
		return 0, 0, 0, fmt.Errorf("core: %w: query dim %d, want %d", errs.ErrDimMismatch, len(q), sn.d)
	}
	if k <= 0 {
		return 0, 0, 0, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if live := sn.liveCount(); k > live {
		k = live
	}
	if k == 0 {
		return 0, 0, 0, fmt.Errorf("core: %w: index has no live points", errs.ErrEmptyIndex)
	}
	return c, p, k, nil
}

func (sn *snapshot) search(ctx context.Context, q []float32, k int, params SearchParams) ([]Result, SearchStats, error) {
	c, p, k, err := sn.beginSearch(q, k, params)
	if err != nil {
		return nil, SearchStats{}, err
	}
	sc := getScratch(sn)
	defer putScratch(sc)
	io := &sc.io
	var st SearchStats

	sc.pq = sn.proj.ProjectInto(q, sc.pq)
	pq := sc.pq
	normQSq := vec.Norm2Sq(q)
	norm1Q := vec.Norm1(q)

	// Ψm⁻¹(p) is shared by Quick-Probe's Test A and Condition B below —
	// one inverse-CDF evaluation per query, not two.
	chiThreshold := stats.ChiSquareInvCDF(sn.m, p)

	// ---- Quick-Probe (Algorithm 2) -----------------------------------
	probeID := sn.quickProbe(pq, norm1Q, c, chiThreshold, &st, sc)

	// The located point's projected distance is the estimated range
	// (fetching its projected vector costs one page access, the only
	// projected-point read Quick-Probe needs).
	sc.probePt, err = sn.idist.Projected(probeID, sc.probePt, io)
	if err != nil {
		return nil, st, err
	}
	r := vec.L2Dist(sc.probePt, pq)
	if r <= 0 {
		// The located point projects exactly onto the query; fall back to
		// one ring width so the range search has volume.
		r = sn.idist.Epsilon()
	}
	st.Radius = r

	// ---- MIP-Search-II (Algorithm 3) ----------------------------------
	// Candidates are consumed in ascending projected distance (the order
	// the incremental NN search of Algorithm 1 would return them in), so
	// Theorem 2 lets us test Condition B on every candidate using the
	// projected distance the range search already computed — no extra disk
	// reads, one threshold comparison per point. Condition B's test
	// Ψm(dis²/denom) ≥ p is evaluated as dis² ≥ Ψm⁻¹(p)·denom.
	top := &sc.top
	top.reset(k)
	// Recently inserted points (frozen segments and the mutable delta) are
	// evaluated exactly up front (no disk I/O); their inner products can
	// only tighten the conditions below.
	sn.scanMem(q, top, &params)
	// sketchLUT is set once the pre-ranking pass builds the query's lookup
	// table; it arms the sketch-bound prune inside verifyCand.
	var sketchLUT []float64
	normQ := math.Sqrt(normQSq)
	// verifyCand computes the candidate's exact inner product straight from
	// its store page (zero-copy, page-local via the scratch reader) and
	// updates the top-k. Before paying the page read it applies two EXACT
	// in-memory prunes — no probability is spent, and the result set is
	// bit-identical to verifying everything:
	//   1. Cauchy-Schwarz: ⟨o,q⟩ ≤ ‖o‖‖q‖, with ‖o‖² in memory;
	//   2. the PQ-sketch bound ⟨o,q⟩ ≤ estimate + residual·‖q‖.
	// A candidate whose bound cannot beat ⟨omax^k,q⟩ (which offer ignores
	// at equality) cannot change the result set, so its store page is never
	// touched. This is what turns the pre-ranking pass into page savings:
	// ⟨omax^k,q⟩ peaks after the pre-ranked window, disqualifying most of
	// the remaining candidates from memory alone.
	verifyCand := func(cand idistance.Candidate) (verdict int, err error) {
		if !sn.live(cand.ID) {
			return candSkipped, nil // tombstoned by Delete
		}
		if !params.accepts(cand.ID) {
			return candSkipped, nil // rejected by the query's filter
		}
		if ipK, full := top.kth(); full {
			if ipK >= 0 && sn.norm2Sq[cand.ID]*normQSq <= ipK*ipK {
				st.NormPruned++
				return candPruned, nil
			}
			if sketchLUT != nil && sn.sketch.Bound(cand.ID, sketchLUT, normQ) <= ipK {
				st.NormPruned++
				return candPruned, nil
			}
		}
		ip, err := sc.reader.Dot(cand.ID, q, io)
		if err != nil {
			return candSkipped, err
		}
		st.Candidates++
		top.offer(cand.ID, ip)
		return candVerified, nil
	}
	// conditions evaluates the termination tests at a distance frontier:
	// every point NOT yet exactly verified projects at least dist from the
	// query, so Theorem 2 lets Condition B be tested with dist — no extra
	// disk reads, one threshold comparison. Condition B's test
	// Ψm(dis²/denom) ≥ p is evaluated as dis² ≥ Ψm⁻¹(p)·denom.
	conditions := func(dist float64) string {
		ipK, full := top.kth()
		if !full {
			return ""
		}
		denom := sn.conditionBDenominator(c, normQSq, ipK)
		if denom <= 0 {
			return "A" // Condition A (Formula 1) holds
		}
		if dist*dist >= chiThreshold*denom {
			return "B" // Condition B (Formula 2) holds
		}
		return ""
	}

	// Candidates are collected unsorted, in disk order.
	sc.cands, err = sn.idist.CollectRangeAppend(ctx, pq, r, io, sc.cands)
	if err != nil {
		return nil, st, err
	}

	// ---- PQ-sketch pre-ranking ---------------------------------------
	// Verify the sketch-estimated best candidates first: the true top-k
	// usually sits inside this window, so ⟨omax^k,q⟩ — and with it
	// Condition B's denominator — reaches (near) its final value after a
	// few dozen exact verifications instead of hundreds. The guarantee is
	// untouched: the sketch only reorders verification, every result is
	// still exactly verified, and the distance-ordered pass below tests the
	// termination conditions at frontiers no farther than the first
	// unverified candidate (see DESIGN.md "I/O engine").
	terminated := ""
	preranked := sc.prerankIDs[:0]
	if sn.sketch != nil && !params.NoPrerank && len(sc.cands) > k {
		sc.lut = sn.sketch.NewLUT(q, sc.lut)
		sketchLUT = sc.lut
		for _, pc := range sc.selectPrerank(sn.sketch, k) {
			v, err := verifyCand(pc.cand)
			if err != nil {
				return nil, st, err
			}
			if v == candVerified {
				st.Preranked++
			}
			if v != candSkipped {
				// Seen (verified or exactly bounded): the distance-ordered
				// pass below treats it as frontier-advancing only.
				preranked = append(preranked, pc.cand.ID)
			}
		}
		slices.Sort(preranked)
		// Condition A needs no distance frontier, so it can already fire.
		if ipK, full := top.kth(); full && sn.conditionBDenominator(c, normQSq, ipK) <= 0 {
			terminated = "A"
		}
	}
	sc.prerankIDs = preranked

	// The distance-ordered pass: the lazy stream yields ascending projected
	// distance, sorting only the prefix consumed before a condition
	// terminates the query (usually a small fraction of the collected set).
	if terminated == "" {
		sc.stream.Init(sc.cands)
		for {
			cand, ok := sc.stream.Next()
			if !ok {
				break
			}
			if len(preranked) > 0 {
				if _, found := slices.BinarySearch(preranked, cand.ID); found {
					// Verified in the pre-rank pass; its distance still
					// advances the termination frontier.
					if terminated = conditions(cand.Dist); terminated != "" {
						break
					}
					continue
				}
			}
			v, err := verifyCand(cand)
			if err != nil {
				return nil, st, err
			}
			if v != candSkipped {
				if terminated = conditions(cand.Dist); terminated != "" {
					break
				}
			}
		}
	}
	if terminated != "" {
		st.TerminatedBy = terminated
		st.PageAccesses = io.Pages()
		return sc.takeResults(), st, nil
	}

	// Range exhausted: test Condition B with the scanned radius (every
	// unseen point projects farther than r, so Ψm(r²/denom) ≥ p bounds the
	// miss probability by 1−p).
	ipK, full := top.kth()
	if full {
		denom := sn.conditionBDenominator(c, normQSq, ipK)
		if denom <= 0 {
			st.TerminatedBy = "A"
			st.PageAccesses = io.Pages()
			return sc.takeResults(), st, nil
		}
		if stats.ChiSquareCDF(sn.m, r*r/denom) >= p {
			st.TerminatedBy = "B"
			st.PageAccesses = io.Pages()
			return sc.takeResults(), st, nil
		}
	}

	// Compensation: extend the range to r' (Algorithm 3 line 15). When
	// fewer than k candidates were found the guarantee needs a full scan,
	// so r' falls back to infinity.
	rExt := math.Inf(1)
	if full {
		denom := sn.conditionBDenominator(c, normQSq, ipK)
		rExt = math.Sqrt(chiThreshold * denom)
	}
	st.ExtendedRadius = rExt

	extCands := sc.extCands[:0]
	err = sn.idist.Search(ctx, pq, r, rExt, io, func(cand idistance.Candidate) bool {
		extCands = append(extCands, cand)
		return true
	})
	sc.extCands = extCands
	if err != nil {
		return nil, st, err
	}
	// Extension candidates lie in (r, r'] — disjoint from the range pass, so
	// none of them can have been pre-rank verified.
	sc.stream.Init(extCands)
	for {
		cand, ok := sc.stream.Next()
		if !ok {
			break
		}
		v, err := verifyCand(cand)
		if err != nil {
			return nil, st, err
		}
		if v == candSkipped {
			continue
		}
		if cond := conditions(cand.Dist); cond != "" {
			st.TerminatedBy = cond
			st.PageAccesses = io.Pages()
			return sc.takeResults(), st, nil
		}
	}
	st.TerminatedBy = "exhausted"
	st.PageAccesses = io.Pages()
	return sc.takeResults(), st, nil
}

// quickProbe implements Algorithm 2: rank the sign-code groups by their
// Theorem-3 lower bound, return the first group whose cheapest member
// passes Test A — Ψm(LB²/(c·(‖o‖₁+‖q‖₁)²)) ≥ p — or, failing that, the
// member with the largest recorded test value. c and threshold = Ψm⁻¹(p)
// are derived from the query's effective (c, p), so per-query overrides
// steer the probe as well. The ranking lives in the query scratch; ties in
// the lower bound break on group index so the probe is deterministic under
// any sorting algorithm.
func (sn *snapshot) quickProbe(pq []float32, norm1Q, c, threshold float64, st *SearchStats, sc *queryScratch) uint32 {
	codeQ := randproj.Code(pq)
	order := sc.order[:0]
	for i, g := range sn.groups {
		order = append(order, rankedGroup{lb: randproj.GroupLowerBound(g.code, codeQ, pq), gi: i})
	}
	sc.order = order
	slices.SortFunc(order, func(a, b rankedGroup) int {
		if a.lb != b.lb {
			if a.lb < b.lb {
				return -1
			}
			return 1
		}
		return a.gi - b.gi
	})

	bestVal := -1.0
	bestID := sn.groups[order[0].gi].minID
	for _, rk := range order {
		st.GroupsProbed++
		g := sn.groups[rk.gi]
		ub := randproj.DistUpperBound(g.minNorm1, norm1Q)
		if ub <= 0 {
			// Query and point are both the origin: any range works.
			return g.minID
		}
		val := rk.lb * rk.lb / (c * ub * ub)
		if val >= threshold { // equivalent to Ψm(val) ≥ p, cheaper than the CDF
			return g.minID
		}
		if val > bestVal {
			bestVal, bestID = val, g.minID
		}
	}
	return bestID
}

// SearchIncremental runs Algorithm 1 (MIP-Search-I) with the index
// defaults; see SearchIncrementalContext.
func (ix *Index) SearchIncremental(q []float32, k int) ([]Result, SearchStats, error) {
	return ix.SearchIncrementalContext(context.Background(), q, k, SearchParams{})
}

// SearchIncrementalContext answers the query with the paper's Algorithm 1
// (MIP-Search-I): an incremental NN scan in the projected space, testing
// Conditions A and B on every returned point. It is kept for the ablation
// study of Quick-Probe's benefit; the results carry the same probability
// guarantee and honor the same per-query overrides and cancellation points
// as SearchContext. Like SearchContext, it runs against a call-time
// snapshot and is safe for concurrent use.
func (ix *Index) SearchIncrementalContext(ctx context.Context, q []float32, k int, params SearchParams) ([]Result, SearchStats, error) {
	sn, err := ix.snapshot()
	if err != nil {
		return nil, SearchStats{}, err
	}
	defer sn.release()
	c, p, k, err := sn.beginSearch(q, k, params)
	if err != nil {
		return nil, SearchStats{}, err
	}
	sc := getScratch(sn)
	defer putScratch(sc)
	io := &sc.io
	var st SearchStats

	sc.pq = sn.proj.ProjectInto(q, sc.pq)
	normQSq := vec.Norm2Sq(q)
	top := &sc.top
	top.reset(k)
	sn.scanMem(q, top, &params)

	it := sn.idist.NewIterator(ctx, sc.pq, io)
	for {
		cand, ok := it.Next()
		if !ok {
			if err := it.Err(); err != nil {
				return nil, st, err
			}
			st.TerminatedBy = "exhausted"
			break
		}
		if !sn.live(cand.ID) || !params.accepts(cand.ID) {
			continue
		}
		// The same exact Cauchy-Schwarz prune as the main path: a candidate
		// whose norm cannot beat the current k-th inner product is counted
		// seen without touching its store page.
		if ipK, full := top.kth(); full && ipK >= 0 && sn.norm2Sq[cand.ID]*normQSq <= ipK*ipK {
			st.NormPruned++
		} else {
			ip, err := sc.reader.Dot(cand.ID, q, io)
			if err != nil {
				return nil, st, err
			}
			st.Candidates++
			top.offer(cand.ID, ip)
		}
		ipK, full := top.kth()
		if !full {
			continue
		}
		if sn.conditionA(c, normQSq, ipK) {
			st.TerminatedBy = "A"
			break
		}
		denom := sn.conditionBDenominator(c, normQSq, ipK)
		if denom > 0 && stats.ChiSquareCDF(sn.m, cand.Dist*cand.Dist/denom) >= p {
			st.TerminatedBy = "B"
			break
		}
	}
	st.PageAccesses = io.Pages()
	return sc.takeResults(), st, nil
}

// Exact scans the whole dataset through the store and returns the true
// top-k MIP points. It is the ground truth used by the overall-ratio and
// recall metrics and by tests of the probability guarantee. Like the
// approximate paths it runs against a call-time snapshot, so it is safe
// for concurrent use and never blocks updates. Cancelling ctx stops the
// scan between store pages and returns ctx.Err() — the scan is linear in
// the dataset, so a fanned-out exact merge (promips/shard) needs the same
// cancellation point the approximate paths have.
func (ix *Index) Exact(ctx context.Context, q []float32, k int) ([]Result, error) {
	sn, err := ix.snapshot()
	if err != nil {
		return nil, err
	}
	defer sn.release()
	if len(q) != sn.d {
		return nil, fmt.Errorf("core: %w: query dim %d, want %d", errs.ErrDimMismatch, len(q), sn.d)
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if live := sn.liveCount(); k > live {
		k = live
	}
	if k == 0 {
		return nil, fmt.Errorf("core: %w: index has no live points", errs.ErrEmptyIndex)
	}
	top := newTopK(k)
	sn.scanMem(q, top, nil)
	rd := sn.orig.NewReader()
	layout := sn.idist.Layout()
	for pos := 0; pos < sn.n; pos++ {
		// Checking every position would put a branch on ctx into the inner
		// loop for nothing: 256 positions are at most a few pages of I/O.
		if pos&255 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// The reader walks layout order; recover the id from the layout.
		id := layout[pos]
		if !sn.live(id) {
			continue
		}
		ip, err := rd.DotAt(pos, q, nil)
		if err != nil {
			return nil, err
		}
		top.offer(id, ip)
	}
	return top.results, nil
}
