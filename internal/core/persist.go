package core

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"promips/internal/idistance"
	"promips/internal/pager"
	"promips/internal/randproj"
	"promips/internal/store"
)

// coreMeta is the gob-serialized in-memory state of an Index. The page
// files (iDistance data + B+-tree, original vectors) stay on disk.
type coreMeta struct {
	Opts       Options
	N, D, M    int
	Projector  []byte
	Norm2Sq    []float64
	Norm1      []float64
	Codes      []uint32
	MaxNorm2Sq float64
	Groups     []groupMeta
}

type groupMeta struct {
	Code     uint32
	MinNorm1 float64
	MinID    uint32
	Count    int
}

// Save persists the index metadata into its directory, alongside the page
// files Build already wrote there. An index saved to dir can be reloaded
// with Open(dir).
func (ix *Index) Save(dir string) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if err := ix.idist.Save(dir); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "promips.meta"))
	if err != nil {
		return fmt.Errorf("core: save meta: %w", err)
	}
	defer f.Close()
	m := coreMeta{
		Opts: ix.opts, N: ix.n, D: ix.d, M: ix.m,
		Projector: ix.proj.Encode(),
		Norm2Sq:   ix.norm2Sq, Norm1: ix.norm1, Codes: ix.codes,
		MaxNorm2Sq: ix.maxNorm2Sq,
	}
	m.Groups = make([]groupMeta, len(ix.groups))
	for i, g := range ix.groups {
		m.Groups[i] = groupMeta{Code: g.code, MinNorm1: g.minNorm1, MinID: g.minID, Count: g.count}
	}
	if err := gob.NewEncoder(f).Encode(&m); err != nil {
		return fmt.Errorf("core: encode meta: %w", err)
	}
	return f.Sync()
}

// Open loads an index previously built in dir and saved with Save.
func Open(dir string) (*Index, error) {
	f, err := os.Open(filepath.Join(dir, "promips.meta"))
	if err != nil {
		return nil, fmt.Errorf("core: open meta: %w", err)
	}
	defer f.Close()
	var m coreMeta
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("core: decode meta: %w", err)
	}
	proj, err := randproj.Decode(m.Projector)
	if err != nil {
		return nil, err
	}
	idist, err := idistance.Open(dir)
	if err != nil {
		return nil, err
	}
	orig, err := store.Open(filepath.Join(dir, "orig.data"),
		pager.Options{PageSize: m.Opts.PageSize, PoolSize: m.Opts.PoolSize})
	if err != nil {
		idist.Close()
		return nil, err
	}
	ix := &Index{
		opts: m.Opts, n: m.N, d: m.D, m: m.M,
		proj: proj, idist: idist, orig: orig,
		norm2Sq: m.Norm2Sq, norm1: m.Norm1, codes: m.Codes,
		maxNorm2Sq: m.MaxNorm2Sq,
	}
	ix.groups = make([]group, len(m.Groups))
	for i, g := range m.Groups {
		ix.groups[i] = group{code: g.Code, minNorm1: g.MinNorm1, minID: g.MinID, count: g.Count}
	}
	return ix, nil
}
