package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"promips/internal/errs"
	"promips/internal/fsutil"
	"promips/internal/idistance"
	"promips/internal/pager"
	"promips/internal/pq"
	"promips/internal/randproj"
	"promips/internal/store"
	"promips/internal/vec"
	"promips/internal/wal"
)

// coreMeta is the gob-serialized in-memory state of an Index. The page
// files (iDistance data + B+-tree, original vectors) stay on disk. The
// update state rides along — Delta holds inserted-but-uncompacted points
// with their assigned ids, Deleted the tombstones — so a saved index
// reopens with exactly the results it answered before Save.
type coreMeta struct {
	Opts       Options
	N, D, M    int
	Projector  []byte
	Norm2Sq    []float64
	Norm1      []float64
	Codes      []uint32
	MaxNorm2Sq float64
	Groups     []groupMeta
	Delta      []deltaMeta
	Deleted    []uint32
	// Sketch is the marshaled PQ pre-ranking sketch. Empty in metas saved
	// before sketches existed; Open then runs without pre-ranking.
	Sketch []byte
}

type groupMeta struct {
	Code     uint32
	MinNorm1 float64
	MinID    uint32
	Count    int
}

type deltaMeta struct {
	ID uint32
	V  []float32
}

// decodeCoreMeta decodes and validates a promips.meta stream. Every
// failure — gob-level or a decoded value that breaks the invariants the
// search path indexes by — is ErrCorruptIndex-classified, and no input
// can panic (pinned by FuzzCoreMetaDecode).
func decodeCoreMeta(r io.Reader) (*coreMeta, error) {
	var m coreMeta
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("core: decode meta: %v: %w", err, errs.ErrCorruptIndex)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// validate checks the structural invariants the rest of the code indexes
// by without re-checking: per-point arrays sized to N, group minima inside
// the base index, delta ids dense above the base and delta vectors of the
// index dimensionality, tombstones inside the live id range. Gob decodes
// arbitrary bytes into a well-typed struct happily, so none of this is
// guaranteed before a successful validate.
func (m *coreMeta) validate() error {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("core: meta: "+format+": %w", append(args, errs.ErrCorruptIndex)...)
	}
	if m.N < 1 || m.D < 1 || m.M < 1 || m.M > randproj.MaxM {
		return corrupt("implausible shape n=%d d=%d m=%d", m.N, m.D, m.M)
	}
	if len(m.Norm2Sq) != m.N || len(m.Norm1) != m.N || len(m.Codes) != m.N {
		return corrupt("per-point arrays sized %d/%d/%d, want n=%d",
			len(m.Norm2Sq), len(m.Norm1), len(m.Codes), m.N)
	}
	for i, g := range m.Groups {
		if int(g.MinID) >= m.N || g.Count < 1 {
			return corrupt("group %d (code %d) minID=%d count=%d over n=%d", i, g.Code, g.MinID, g.Count, m.N)
		}
	}
	for i, e := range m.Delta {
		if int(e.ID) != m.N+i {
			return corrupt("delta entry %d has id %d, want dense id %d", i, e.ID, m.N+i)
		}
		if len(e.V) != m.D {
			return corrupt("delta entry %d has dim %d, want %d", i, len(e.V), m.D)
		}
	}
	for _, id := range m.Deleted {
		if int(id) >= m.N+len(m.Delta) {
			return corrupt("tombstone %d outside id range %d", id, m.N+len(m.Delta))
		}
	}
	return nil
}

// Save persists the index metadata into its directory, alongside the page
// files Build already wrote there. An index saved to dir can be reloaded
// with Open(dir). Both meta files are written via temp-file + rename and
// the directory is fsynced afterwards, so a crash mid-Save never corrupts
// a previously saved state. Once the metadata — which embeds the full
// update delta and tombstone set — is durable, the write-ahead journal is
// truncated: its records are now covered by the meta, and replay is
// idempotent for any crash in between. The order is load-bearing: the
// journal may only shrink AFTER the directory fsync proves the meta that
// covers it durable (the crash matrix enforces this).
func (ix *Index) Save(dir string) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.closed {
		return errs.ErrClosed
	}
	fsys := ix.opts.fsys()
	if err := ix.idist.SaveFS(fsys, dir); err != nil {
		return err
	}
	m := coreMeta{
		Opts: ix.opts, N: ix.n, D: ix.d, M: ix.m,
		Projector: ix.proj.Encode(),
		Norm2Sq:   ix.norm2Sq, Norm1: ix.norm1, Codes: ix.codes,
		MaxNorm2Sq: ix.maxNorm2Sq,
	}
	m.Opts.fs = nil // the seam is per-process, never persisted
	if ix.sketch != nil {
		sk, err := ix.sketch.Marshal()
		if err != nil {
			return err
		}
		m.Sketch = sk
	}
	m.Groups = make([]groupMeta, len(ix.groups))
	for i, g := range ix.groups {
		m.Groups[i] = groupMeta{Code: g.code, MinNorm1: g.minNorm1, MinID: g.minID, Count: g.count}
	}
	// Frozen segments and the mutable delta fold into one dense Delta list
	// (segments hold the older ids, so segments-then-delta preserves the
	// dense ascending order validate checks).
	m.Delta = make([]deltaMeta, 0, ix.frozenEntries+len(ix.delta))
	for _, seg := range ix.segs {
		for _, e := range seg.entries {
			m.Delta = append(m.Delta, deltaMeta{ID: e.id, V: e.v})
		}
	}
	for _, e := range ix.delta {
		m.Delta = append(m.Delta, deltaMeta{ID: e.id, V: e.v})
	}
	m.Deleted = make([]uint32, 0, ix.tombs.count())
	ix.tombs.each(func(id uint32) { m.Deleted = append(m.Deleted, id) })
	sort.Slice(m.Deleted, func(i, j int) bool { return m.Deleted[i] < m.Deleted[j] })
	err := fsutil.WriteAtomic(fsys, filepath.Join(dir, "promips.meta"), func(f fsutil.File) error {
		return gob.NewEncoder(f).Encode(&m)
	})
	if err != nil {
		return fmt.Errorf("core: save meta: %w", err)
	}
	// One directory fsync makes both meta renames (idist.meta above,
	// promips.meta here) durable.
	if err := fsutil.SyncDir(fsys, dir); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	// Every frozen segment is now covered by the durable meta: its seg file
	// (flushed or not) is replay-skipped garbage from here on. The files are
	// NOT deleted — a failed remove would have to surface from a Save that
	// logically succeeded, and stale seg files replay as skips and are swept
	// with the generation. Marking persisted stops the flusher from writing
	// files nobody needs (the flag write races only other atomic accesses;
	// the flusher's marking section takes the exclusive lock, which Save's
	// read lock excludes).
	for _, seg := range ix.segs {
		seg.persisted.Store(true)
	}
	// The journaled updates are durable in the meta now; empty the journal.
	// A failure here leaves a stale-but-harmless journal (replay skips
	// records the meta already covers) and surfaces so the caller retries.
	if ix.journal != nil {
		if err := ix.journal.Reset(); err != nil {
			return fmt.Errorf("core: truncate journal: %w", err)
		}
	}
	return nil
}

// Open loads an index previously built in dir and saved with Save, then
// replays the write-ahead journal on top of the persisted delta —
// recovering updates acknowledged after the last Save. See OpenFS for the
// crash-injection seam.
func Open(dir string) (*Index, error) { return OpenFS(dir, nil) }

// OpenFS is Open writing through an explicit filesystem seam (nil means
// the real filesystem). The seam matters even on the read path: recovery
// itself writes — truncating a torn journal tail, recreating a missing
// journal — and must itself be crash-safe.
func OpenFS(dir string, fsys fsutil.FS) (*Index, error) {
	f, err := os.Open(filepath.Join(dir, "promips.meta"))
	if err != nil {
		return nil, fmt.Errorf("core: open meta: %w", err)
	}
	m, err := decodeCoreMeta(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	proj, err := randproj.Decode(m.Projector)
	if err != nil {
		return nil, fmt.Errorf("core: decode projector: %v: %w", err, errs.ErrCorruptIndex)
	}
	idist, err := idistance.Open(dir)
	if err != nil {
		return nil, err
	}
	orig, err := store.Open(filepath.Join(dir, "orig.data"),
		pager.Options{PageSize: m.Opts.PageSize, PoolSize: m.Opts.PoolSize, MissLatency: m.Opts.MissLatency})
	if err != nil {
		idist.Close()
		return nil, err
	}
	ix := &Index{
		opts: m.Opts, n: m.N, d: m.D, m: m.M,
		proj: proj, idist: idist, orig: orig,
		norm2Sq: m.Norm2Sq, norm1: m.Norm1, codes: m.Codes,
		maxNorm2Sq: m.MaxNorm2Sq,
		dir:        dir,
		tombs:      &tombSet{},
	}
	ix.opts.fs = fsys
	ix.segLimit = ix.opts.segmentEntries()
	ix.ref = newGenRef(idist, orig)
	closeAll := func() {
		ix.ref.release()
	}
	if len(m.Sketch) > 0 {
		sk, err := pq.UnmarshalSketch(m.Sketch)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("core: %v: %w", err, errs.ErrCorruptIndex)
		}
		ix.sketch = sk
	}
	ix.groups = make([]group, len(m.Groups))
	for i, g := range m.Groups {
		ix.groups[i] = group{code: g.Code, minNorm1: g.MinNorm1, minID: g.MinID, count: g.Count}
	}
	if len(m.Delta) > 0 {
		ix.delta = make([]deltaEntry, len(m.Delta))
		for i, e := range m.Delta {
			ix.delta[i] = deltaEntry{id: e.ID, v: e.V, ip2: vec.Norm2Sq(e.V)}
			if ix.delta[i].ip2 > ix.maxNorm2Sq {
				ix.maxNorm2Sq = ix.delta[i].ip2
			}
		}
	}
	if len(m.Deleted) > 0 {
		frozen := make(map[uint32]bool, len(m.Deleted))
		for _, id := range m.Deleted {
			frozen[id] = true
		}
		ix.tombs = &tombSet{frozen: frozen}
	}
	// Replay flushed segment files on top of the meta state, oldest first.
	// Each seg file is a complete journal-format image of one frozen update
	// window (atomic rename: it is either absent or whole). Records the meta
	// already covers — every record, after a successful Save — replay as
	// idempotent skips; records the meta predates re-enter the delta exactly
	// as the wal.log replay below would apply them.
	if err := ix.replaySegFiles(dir); err != nil {
		closeAll()
		return nil, err
	}
	if m.Opts.Fsync != FsyncDisabled {
		j, recs, torn, err := wal.Open(ix.opts.fsys(), filepath.Join(dir, "wal.log"), ix.opts.syncMode())
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("core: %w", err)
		}
		ix.journal = j
		walSkipBefore := ix.recovery.Skipped
		if err := ix.replayJournal(recs); err != nil {
			j.Close()
			closeAll()
			return nil, err
		}
		ix.recovery.TruncatedBytes = torn
		// Records the wal replay skipped are covered by the meta and the seg
		// files; only seg-file and meta coverage counts toward the journal's
		// covered watermark (they are a prefix of the log — inserts are dense
		// and in order).
		j.MarkCovered(int64(ix.recovery.Skipped - walSkipBefore))
	}
	// The replayed delta may be far past the freeze threshold (a whole
	// crash window of updates): re-freeze it as one segment so JournalLen
	// shrinks again once the flusher re-covers it, and so search snapshots
	// scan it as the immutable structure it is.
	ix.maybeFreezeLocked()
	if ix.opts.syncSegFlush {
		if err := ix.flushPendingSegments(); err != nil {
			if ix.journal != nil {
				ix.journal.Close()
			}
			closeAll()
			return nil, err
		}
	}
	ix.startFlusher()
	return ix, nil
}

// replaySegFiles applies every seg-NNNNNN.seg flush file in dir to the
// restored state, ascending by sequence, and resumes the segment sequence
// counter past the highest one found. Counts land in ix.recovery alongside
// the journal replay's.
func (ix *Index) replaySegFiles(dir string) error {
	matches, err := filepath.Glob(filepath.Join(dir, segFilePattern))
	if err != nil {
		return fmt.Errorf("core: scan seg files: %w", err)
	}
	sort.Strings(matches) // zero-padded seqs: lexical order is numeric order
	fsys := ix.opts.fsys()
	for _, path := range matches {
		var seq int
		if _, err := fmt.Sscanf(filepath.Base(path), "seg-%d.seg", &seq); err != nil {
			continue // not a flush file; leave it alone
		}
		b, err := fsys.ReadFile(path)
		if err != nil {
			return fmt.Errorf("core: read seg file %s: %w", filepath.Base(path), err)
		}
		recs, _, err := wal.Decode(b)
		if err != nil {
			return fmt.Errorf("core: seg file %s: %w", filepath.Base(path), err)
		}
		if err := ix.replayJournal(recs); err != nil {
			return fmt.Errorf("core: seg file %s: %w", filepath.Base(path), err)
		}
		if seq >= ix.segSeq {
			ix.segSeq = seq + 1
		}
	}
	return nil
}

// replayJournal applies the journal's records on top of the state the
// metadata restored, accounting the outcome in ix.recovery.
func (ix *Index) replayJournal(recs []wal.Record) error {
	applied, skipped, err := ix.applyRecords(recs)
	ix.recovery.Replayed += applied
	ix.recovery.Skipped += skipped
	return err
}

// applyRecords applies journal records to the in-memory update state —
// without journaling them again (the caller's journal, or the primary's,
// already holds them). Records the current state already covers are
// skipped — insert ids are assigned densely and logged in order, so a
// record inserting an id below the next free one is a duplicate from a
// crash between the meta fsync and the journal truncation (or an earlier
// replica apply), and tombstoning is naturally idempotent. Records no
// crash could produce (an id gap, a wrong-dimension vector, a tombstone
// outside the live range) are ErrCorruptIndex. The skip-ahead check makes
// the idempotency safe to exploit: re-feeding a whole journal is a no-op,
// while a journal missing records the state never saw fails loudly instead
// of silently diverging. Caller holds ix.mu exclusive (or owns ix).
func (ix *Index) applyRecords(recs []wal.Record) (applied, skipped int, err error) {
	for _, r := range recs {
		switch r.Type {
		case wal.TypeInsert:
			next := uint32(ix.n + ix.frozenEntries + len(ix.delta))
			if r.ID < next {
				skipped++
				continue
			}
			if r.ID > next {
				return applied, skipped, fmt.Errorf("core: journal: insert id %d skips ahead of %d: %w", r.ID, next, errs.ErrCorruptIndex)
			}
			if len(r.Vec) != ix.d {
				return applied, skipped, fmt.Errorf("core: journal: insert id %d has dim %d, want %d: %w", r.ID, len(r.Vec), ix.d, errs.ErrCorruptIndex)
			}
			n2 := vec.Norm2Sq(r.Vec)
			ix.delta = append(ix.delta, deltaEntry{id: r.ID, v: r.Vec, ip2: n2})
			if n2 > ix.maxNorm2Sq {
				ix.maxNorm2Sq = n2
			}
			applied++
		case wal.TypeDelete:
			if int(r.ID) >= ix.n+ix.frozenEntries+len(ix.delta) {
				return applied, skipped, fmt.Errorf("core: journal: tombstone %d outside id range %d: %w", r.ID, ix.n+ix.frozenEntries+len(ix.delta), errs.ErrCorruptIndex)
			}
			if ix.tombs.has(r.ID) {
				skipped++
				continue
			}
			ix.tombs = ix.tombs.add(r.ID)
			ix.tombsSinceFreeze = append(ix.tombsSinceFreeze, r.ID)
			applied++
		default:
			return applied, skipped, fmt.Errorf("core: journal: record type %d: %w", r.Type, errs.ErrCorruptIndex)
		}
	}
	return applied, skipped, nil
}

// ApplyWALBytes replays a shipped copy of another index's write-ahead
// journal on top of this one — the tail-read hook WAL-based replication
// (promips/shard.Follower) is built on. b is the raw bytes of the
// primary's wal.log, read while the primary may still be appending: a torn
// trailing record is cleanly ignored exactly as wal.Open would truncate it
// (wal.Decode's contract), and fully-written records are applied through
// the same idempotent path Open's recovery uses, WITHOUT journaling them
// locally — the replica's own journal stays the snapshot's, and the
// primary's log remains the single source of truth. Feeding the same bytes
// again is a no-op (applied=0, everything skipped), so a poller can ship
// the whole file every round. records is the total decoded — the replica's
// LSN watermark into the primary's log (wal LSNs restart at the file's
// record count on open, so the count IS the durable LSN). A decode error
// means the bytes are not a crash-or-mid-write state of a journal
// (ErrCorruptIndex); an apply error means the log skips ahead of this
// replica's state — it missed an epoch and must re-snapshot.
func (ix *Index) ApplyWALBytes(b []byte) (applied, skipped, records int, err error) {
	applied, skipped, records, _, err = ix.ApplyWALChunk(b, false)
	return applied, skipped, records, err
}

// ApplyWALChunk replays a chunk of another index's journal read from an
// arbitrary byte offset — the resumable-offset form of ApplyWALBytes that
// network WAL shipping pulls through. cont=false means the chunk starts at
// the top of the file (magic header included, byte offset 0); cont=true
// means it is a headerless record suffix resuming from a record boundary.
// bytes is the length of the valid prefix consumed from b — the caller
// advances its replication offset by exactly that much and re-requests
// from there, so a chunk torn in flight (truncated mid-record) costs
// nothing but a re-fetch of the torn tail. records counts the complete
// records decoded from this chunk (not the whole file).
func (ix *Index) ApplyWALChunk(b []byte, cont bool) (applied, skipped, records int, bytes int64, err error) {
	var recs []wal.Record
	if cont {
		recs, bytes, err = wal.DecodeRecords(b)
	} else {
		recs, bytes, err = wal.Decode(b)
	}
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("core: replicated journal: %w", err)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return 0, 0, len(recs), 0, errs.ErrClosed
	}
	applied, skipped, err = ix.applyRecords(recs)
	if err != nil {
		// A partial apply leaves the offset unusable (some of the chunk's
		// records landed, the rest did not decode into this state): report
		// zero consumed so the caller treats the shard as needing a refresh
		// rather than resuming mid-chunk.
		return applied, skipped, len(recs), 0, err
	}
	// Freeze AFTER the whole chunk lands: the replica's segments then hold
	// only fully-applied windows, and a replica that freezes at different
	// boundaries than its primary still answers identically (segments and
	// delta are scanned the same way).
	ix.maybeFreezeLocked()
	return applied, skipped, len(recs), bytes, nil
}
