package core

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"promips/internal/errs"
	"promips/internal/fsutil"
	"promips/internal/idistance"
	"promips/internal/pager"
	"promips/internal/pq"
	"promips/internal/randproj"
	"promips/internal/store"
	"promips/internal/vec"
)

// coreMeta is the gob-serialized in-memory state of an Index. The page
// files (iDistance data + B+-tree, original vectors) stay on disk. The
// update state rides along — Delta holds inserted-but-uncompacted points
// with their assigned ids, Deleted the tombstones — so a saved index
// reopens with exactly the results it answered before Save.
type coreMeta struct {
	Opts       Options
	N, D, M    int
	Projector  []byte
	Norm2Sq    []float64
	Norm1      []float64
	Codes      []uint32
	MaxNorm2Sq float64
	Groups     []groupMeta
	Delta      []deltaMeta
	Deleted    []uint32
	// Sketch is the marshaled PQ pre-ranking sketch. Empty in metas saved
	// before sketches existed; Open then runs without pre-ranking.
	Sketch []byte
}

type groupMeta struct {
	Code     uint32
	MinNorm1 float64
	MinID    uint32
	Count    int
}

type deltaMeta struct {
	ID uint32
	V  []float32
}

// Save persists the index metadata into its directory, alongside the page
// files Build already wrote there. An index saved to dir can be reloaded
// with Open(dir). Both meta files are written via temp-file + rename and
// the directory is fsynced afterwards, so a crash mid-Save never corrupts
// a previously saved state.
func (ix *Index) Save(dir string) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.closed {
		return errs.ErrClosed
	}
	if err := ix.idist.Save(dir); err != nil {
		return err
	}
	m := coreMeta{
		Opts: ix.opts, N: ix.n, D: ix.d, M: ix.m,
		Projector: ix.proj.Encode(),
		Norm2Sq:   ix.norm2Sq, Norm1: ix.norm1, Codes: ix.codes,
		MaxNorm2Sq: ix.maxNorm2Sq,
	}
	if ix.sketch != nil {
		sk, err := ix.sketch.Marshal()
		if err != nil {
			return err
		}
		m.Sketch = sk
	}
	m.Groups = make([]groupMeta, len(ix.groups))
	for i, g := range ix.groups {
		m.Groups[i] = groupMeta{Code: g.code, MinNorm1: g.minNorm1, MinID: g.minID, Count: g.count}
	}
	m.Delta = make([]deltaMeta, len(ix.delta))
	for i, e := range ix.delta {
		m.Delta[i] = deltaMeta{ID: e.id, V: e.v}
	}
	m.Deleted = make([]uint32, 0, len(ix.deleted))
	for id := range ix.deleted {
		m.Deleted = append(m.Deleted, id)
	}
	sort.Slice(m.Deleted, func(i, j int) bool { return m.Deleted[i] < m.Deleted[j] })
	err := fsutil.WriteAtomic(filepath.Join(dir, "promips.meta"), func(f *os.File) error {
		return gob.NewEncoder(f).Encode(&m)
	})
	if err != nil {
		return fmt.Errorf("core: save meta: %w", err)
	}
	// One directory fsync makes both meta renames (idist.meta above,
	// promips.meta here) durable.
	if err := fsutil.SyncDir(dir); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// Open loads an index previously built in dir and saved with Save.
func Open(dir string) (*Index, error) {
	f, err := os.Open(filepath.Join(dir, "promips.meta"))
	if err != nil {
		return nil, fmt.Errorf("core: open meta: %w", err)
	}
	defer f.Close()
	var m coreMeta
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("core: decode meta: %v: %w", err, errs.ErrCorruptIndex)
	}
	proj, err := randproj.Decode(m.Projector)
	if err != nil {
		return nil, fmt.Errorf("core: decode projector: %v: %w", err, errs.ErrCorruptIndex)
	}
	idist, err := idistance.Open(dir)
	if err != nil {
		return nil, err
	}
	orig, err := store.Open(filepath.Join(dir, "orig.data"),
		pager.Options{PageSize: m.Opts.PageSize, PoolSize: m.Opts.PoolSize, MissLatency: m.Opts.MissLatency})
	if err != nil {
		idist.Close()
		return nil, err
	}
	ix := &Index{
		opts: m.Opts, n: m.N, d: m.D, m: m.M,
		proj: proj, idist: idist, orig: orig,
		norm2Sq: m.Norm2Sq, norm1: m.Norm1, codes: m.Codes,
		maxNorm2Sq: m.MaxNorm2Sq,
	}
	if len(m.Sketch) > 0 {
		sk, err := pq.UnmarshalSketch(m.Sketch)
		if err != nil {
			idist.Close()
			orig.Close()
			return nil, fmt.Errorf("core: %v: %w", err, errs.ErrCorruptIndex)
		}
		ix.sketch = sk
	}
	ix.groups = make([]group, len(m.Groups))
	for i, g := range m.Groups {
		ix.groups[i] = group{code: g.Code, minNorm1: g.MinNorm1, minID: g.MinID, count: g.Count}
	}
	if len(m.Delta) > 0 {
		ix.delta = make([]deltaEntry, len(m.Delta))
		for i, e := range m.Delta {
			ix.delta[i] = deltaEntry{id: e.ID, v: e.V, ip2: vec.Norm2Sq(e.V)}
		}
	}
	if len(m.Deleted) > 0 {
		ix.deleted = make(map[uint32]bool, len(m.Deleted))
		for _, id := range m.Deleted {
			ix.deleted[id] = true
		}
	}
	return ix, nil
}
