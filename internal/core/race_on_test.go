//go:build race

package core

// raceEnabled reports that the race detector is instrumenting this build;
// allocation-count regression tests skip themselves (the instrumentation
// itself allocates).
const raceEnabled = true
