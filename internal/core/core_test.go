package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"promips/internal/vec"
)

func randData(r *rand.Rand, n, d int) [][]float32 {
	data := make([][]float32, n)
	for i := range data {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}
	return data
}

func buildIndex(t testing.TB, data [][]float32, opts Options) *Index {
	t.Helper()
	ix, err := Build(data, t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

// bruteTopK returns the exact top-k inner products.
func bruteTopK(data [][]float32, q []float32, k int) []Result {
	top := newTopK(k)
	for i, o := range data {
		top.offer(uint32(i), vec.Dot(o, q))
	}
	return top.results
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, t.TempDir(), Options{}); err == nil {
		t.Fatal("expected error for empty dataset")
	}
	if _, err := Build([][]float32{{1, 2}, {1}}, t.TempDir(), Options{}); err == nil {
		t.Fatal("expected error for ragged dataset")
	}
	data := [][]float32{{1, 2}, {3, 4}}
	if _, err := Build(data, t.TempDir(), Options{C: 1.5}); err == nil {
		t.Fatal("expected error for c >= 1")
	}
	if _, err := Build(data, t.TempDir(), Options{P: -0.5}); err == nil {
		t.Fatal("expected error for p <= 0")
	}
}

func TestBuildDefaults(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data := randData(r, 500, 16)
	ix := buildIndex(t, data, Options{Seed: 2})
	if ix.Len() != 500 || ix.Dim() != 16 {
		t.Fatalf("dims = (%d,%d)", ix.Len(), ix.Dim())
	}
	if ix.M() < 2 || ix.M() > 12 {
		t.Fatalf("optimized m = %d out of plausible range", ix.M())
	}
	opts := ix.Options()
	if opts.C != 0.9 || opts.P != 0.5 {
		t.Fatalf("defaults = c=%v p=%v", opts.C, opts.P)
	}
}

func TestSearchArgumentErrors(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data := randData(r, 100, 8)
	ix := buildIndex(t, data, Options{Seed: 4, M: 4})
	if _, _, err := ix.Search(make([]float32, 7), 1); err == nil {
		t.Fatal("expected dim mismatch error")
	}
	if _, _, err := ix.Search(make([]float32, 8), 0); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestSearchReturnsKResults(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	data := randData(r, 1000, 20)
	ix := buildIndex(t, data, Options{Seed: 6, M: 5})
	q := randData(r, 1, 20)[0]
	for _, k := range []int{1, 5, 10, 50} {
		res, st, err := ix.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != k {
			t.Fatalf("k=%d returned %d results (terminated by %s)", k, len(res), st.TerminatedBy)
		}
		// Results must be sorted by descending inner product.
		for i := 1; i < len(res); i++ {
			if res[i].IP > res[i-1].IP {
				t.Fatal("results not sorted by descending IP")
			}
		}
	}
}

func TestSearchKLargerThanN(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	data := randData(r, 20, 8)
	ix := buildIndex(t, data, Options{Seed: 8, M: 4})
	res, _, err := ix.Search(randData(r, 1, 8)[0], 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 20 {
		t.Fatalf("k>n returned %d results, want 20", len(res))
	}
}

// The core accuracy claim: with ratio c and probability p, the fraction of
// queries whose result is a true c-AMIP answer is at least p. We test at
// p=0.9 with 60 queries; the failure probability of the test itself (true
// success rate 0.9, observing < 0.8·60 successes) is negligible.
func TestProbabilityGuaranteeK1(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	data := randData(r, 2000, 24)
	ix := buildIndex(t, data, Options{Seed: 10, C: 0.9, P: 0.9, M: 6})
	const queries = 60
	ok := 0
	for trial := 0; trial < queries; trial++ {
		q := randData(r, 1, 24)[0]
		res, _, err := ix.Search(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		exact := bruteTopK(data, q, 1)[0]
		if exact.IP <= 0 {
			ok++ // degenerate query: any answer is acceptable for the ratio
			continue
		}
		if res[0].IP >= ix.opts.C*exact.IP {
			ok++
		}
	}
	if frac := float64(ok) / queries; frac < 0.8 {
		t.Fatalf("c-AMIP success rate %.2f < 0.8 (guarantee p=0.9)", frac)
	}
}

func TestProbabilityGuaranteeK10(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	data := randData(r, 1500, 16)
	ix := buildIndex(t, data, Options{Seed: 12, C: 0.8, P: 0.9, M: 6})
	const queries = 40
	okAll := 0
	for trial := 0; trial < queries; trial++ {
		q := randData(r, 1, 16)[0]
		res, _, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		exact := bruteTopK(data, q, 10)
		good := true
		for i := range res {
			if exact[i].IP > 0 && res[i].IP < ix.opts.C*exact[i].IP {
				good = false
				break
			}
		}
		if good {
			okAll++
		}
	}
	if frac := float64(okAll) / queries; frac < 0.7 {
		t.Fatalf("c-k-AMIP success rate %.2f < 0.7", frac)
	}
}

func TestSearchIncrementalGuarantee(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	data := randData(r, 800, 16)
	ix := buildIndex(t, data, Options{Seed: 14, C: 0.9, P: 0.9, M: 5})
	ok := 0
	const queries = 30
	for trial := 0; trial < queries; trial++ {
		q := randData(r, 1, 16)[0]
		res, _, err := ix.SearchIncremental(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		exact := bruteTopK(data, q, 1)[0]
		if exact.IP <= 0 || res[0].IP >= 0.9*exact.IP {
			ok++
		}
	}
	if frac := float64(ok) / queries; frac < 0.8 {
		t.Fatalf("incremental success rate %.2f", frac)
	}
}

// Condition A must fire when the dataset contains a point whose inner
// product with the query is overwhelming (e.g. the query equals the
// max-norm point): then ‖oM‖²+‖q‖²−2⟨oi,q⟩/c = 2‖oM‖²(1−1/c) < 0.
func TestConditionATerminatesEarly(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	data := randData(r, 1000, 12)
	// Make point 0 the max-norm point by a wide margin.
	for j := range data[0] {
		data[0][j] *= 20
	}
	ix := buildIndex(t, data, Options{Seed: 16, C: 0.9, P: 0.5, M: 5})
	q := vec.Clone(data[0])
	res, st, err := ix.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 0 {
		t.Fatalf("query = max-norm point, result = %d", res[0].ID)
	}
	if st.TerminatedBy != "A" {
		t.Fatalf("terminated by %q, want Condition A", st.TerminatedBy)
	}
	if st.Candidates >= ix.Len() {
		t.Fatalf("Condition A did not prune: %d candidates", st.Candidates)
	}
}

func TestSearchStatsSanity(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	data := randData(r, 1200, 16)
	ix := buildIndex(t, data, Options{Seed: 18, M: 5})
	q := randData(r, 1, 16)[0]
	_, st, err := ix.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.PageAccesses <= 0 {
		t.Fatal("expected positive page accesses")
	}
	if st.Candidates <= 0 || st.Candidates > ix.Len() {
		t.Fatalf("candidates = %d", st.Candidates)
	}
	if st.GroupsProbed <= 0 {
		t.Fatal("Quick-Probe probed no groups")
	}
	if st.Radius <= 0 {
		t.Fatalf("radius = %v", st.Radius)
	}
	if st.TerminatedBy == "" {
		t.Fatal("termination reason missing")
	}
}

func TestSearchDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	data := randData(r, 600, 12)
	ix := buildIndex(t, data, Options{Seed: 20, M: 5})
	q := randData(r, 1, 12)[0]
	a, _, err := ix.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ix.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same query produced different results")
		}
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	data := randData(r, 500, 10)
	ix := buildIndex(t, data, Options{Seed: 22, M: 4})
	for trial := 0; trial < 5; trial++ {
		q := randData(r, 1, 10)[0]
		got, err := ix.Exact(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteTopK(data, q, 10)
		for i := range want {
			if math.Abs(got[i].IP-want[i].IP) > 1e-9 {
				t.Fatalf("Exact[%d].IP = %v, want %v", i, got[i].IP, want[i].IP)
			}
		}
	}
}

func TestHigherPMoreWork(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	data := randData(r, 2000, 16)
	q := randData(r, 1, 16)[0]
	var accLow, accHigh int64
	// Average page accesses over a few queries for p=0.3 vs p=0.95.
	lo := buildIndex(t, data, Options{Seed: 24, P: 0.3, M: 6})
	hi := buildIndex(t, data, Options{Seed: 24, P: 0.95, M: 6})
	for trial := 0; trial < 8; trial++ {
		qq := q
		if trial > 0 {
			qq = randData(r, 1, 16)[0]
		}
		_, st1, err := lo.Search(qq, 10)
		if err != nil {
			t.Fatal(err)
		}
		_, st2, err := hi.Search(qq, 10)
		if err != nil {
			t.Fatal(err)
		}
		accLow += st1.PageAccesses
		accHigh += st2.PageAccesses
	}
	if accHigh < accLow {
		t.Fatalf("p=0.95 should not access fewer pages than p=0.3: %d vs %d", accHigh, accLow)
	}
}

func TestSizesBreakdown(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	data := randData(r, 400, 12)
	ix := buildIndex(t, data, Options{Seed: 26, M: 5})
	s := ix.Sizes()
	if s.BTree <= 0 || s.Projected <= 0 || s.QuickProbe <= 0 || s.Norms <= 0 || s.Sketch <= 0 {
		t.Fatalf("size breakdown has empty components: %+v", s)
	}
	if s.Total() != s.BTree+s.Projected+s.QuickProbe+s.Norms+s.Sketch {
		t.Fatal("Total() inconsistent")
	}
}

func TestTopK(t *testing.T) {
	top := newTopK(3)
	if _, full := top.kth(); full {
		t.Fatal("empty topK reports full")
	}
	top.offer(1, 5)
	top.offer(2, 9)
	top.offer(3, 1)
	top.offer(4, 7)
	top.offer(5, 0.5)
	if len(top.results) != 3 {
		t.Fatalf("len = %d", len(top.results))
	}
	want := []Result{{2, 9}, {4, 7}, {1, 5}}
	for i, w := range want {
		if top.results[i] != w {
			t.Fatalf("results[%d] = %+v, want %+v", i, top.results[i], w)
		}
	}
	kth, full := top.kth()
	if !full || kth != 5 {
		t.Fatalf("kth = %v %v", kth, full)
	}
	// Offer below the kth best: no change.
	top.offer(9, 2)
	if top.results[2].ID != 1 {
		t.Fatal("offer below kth modified results")
	}
}

func TestQuickProbeZeroQuery(t *testing.T) {
	r := rand.New(rand.NewSource(27))
	data := randData(r, 300, 8)
	ix := buildIndex(t, data, Options{Seed: 28, M: 4})
	q := make([]float32, 8) // all zeros: every IP is 0, any point is c-AMIP
	res, _, err := ix.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("zero query returned %d results", len(res))
	}
}
