package core

import (
	"sort"
	"sync"

	"promips/internal/idistance"
	"promips/internal/pager"
	"promips/internal/pq"
	"promips/internal/store"
)

// queryScratch is the per-query working memory of the search hot path. One
// query needs a projected-query buffer, Quick-Probe's group ranking, the
// candidate collections of the range search and its extension, the top-k
// accumulator's backing array, the per-query I/O accounting (with its
// distinct-page set) and the store's page-local verification cursor. All of
// it lives here and is recycled through a sync.Pool, so a steady query load
// allocates almost nothing per Search: only the result slice handed to the
// caller (scratch memory must never escape into a return value — the next
// query would overwrite it).
//
// A scratch belongs to exactly one query for its duration. SearchBatch
// workers each draw their own from the pool, so concurrent queries never
// share one.
type queryScratch struct {
	io      pager.IOStats
	pq      []float32 // projected query (m)
	probePt []float32 // Quick-Probe point's projected vector (m)

	order    []rankedGroup         // Quick-Probe's group ranking
	cands    []idistance.Candidate // range-search candidates
	extCands []idistance.Candidate // compensation-range candidates
	stream   idistance.CandidateStream

	// PQ-sketch pre-ranking state: the query's asymmetric lookup table, the
	// estimated-best window selected for early verification, and its ids
	// (sorted) for the stream phase's membership check.
	lut        []float64
	prerank    []prerankCand
	prerankIDs []uint32

	top    topK         // its results slice is the pooled backing
	reader store.Reader // page-local verification cursor
}

// prerankCand is one pre-ranking window entry: a range-search candidate and
// its sketch-estimated inner product with the query.
type prerankCand struct {
	cand idistance.Candidate
	est  float64
}

// prerankMinWindow floors the pre-ranking window: even at tiny k the
// sketch-estimated best few dozen candidates are verified up front — enough
// to put the true top-k's inner products into Condition B's denominator
// before the distance-ordered pass starts, and noise next to the hundreds
// of verifications it saves.
const prerankMinWindow = 48

// selectPrerank fills sc.prerank with the candidates of sc.cands holding
// the largest sketch-estimated inner products (window max(4k,
// prerankMinWindow)), best first. sc.lut must already hold the query's
// lookup table. The selection is deterministic: ties in the estimate break
// on the smaller id.
func (sc *queryScratch) selectPrerank(sk *pq.Sketch, k int) []prerankCand {
	w := 4 * k
	if w < prerankMinWindow {
		w = prerankMinWindow
	}
	if w > len(sc.cands) {
		w = len(sc.cands)
	}
	sel := sc.prerank[:0]
	for _, cand := range sc.cands {
		est := sk.Estimate(cand.ID, sc.lut)
		pos := sort.Search(len(sel), func(i int) bool {
			if sel[i].est != est {
				return sel[i].est < est
			}
			return sel[i].cand.ID > cand.ID
		})
		if pos >= w {
			continue
		}
		if len(sel) < w {
			sel = append(sel, prerankCand{})
		}
		copy(sel[pos+1:], sel[pos:])
		sel[pos] = prerankCand{cand: cand, est: est}
	}
	sc.prerank = sel
	return sel
}

// rankedGroup is one Quick-Probe ranking entry: a sign-code group and its
// Theorem-3 lower bound for the current query.
type rankedGroup struct {
	lb float64
	gi int
}

var queryScratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

// getScratch draws a scratch from the pool and binds it to this query:
// accounting cleared, verification cursor rebound to the snapshot's store
// generation (Compact may have swapped the index's since the scratch was
// last used; the snapshot pins the one this query reads).
func getScratch(sn *snapshot) *queryScratch {
	sc := queryScratchPool.Get().(*queryScratch)
	sc.io.Reset()
	sc.reader.Reset(sn.orig)
	return sc
}

// putScratch returns sc to the pool. The pinned verification pages are
// released first so an idle pool does not hold page snapshots (or a
// retired store generation) alive.
func putScratch(sc *queryScratch) {
	sc.reader.Reset(nil)
	queryScratchPool.Put(sc)
}

// takeResults copies the top-k accumulator's current contents into a fresh
// slice for the caller; the (possibly grown) backing array stays pooled.
// This is the one unavoidable steady-state allocation of a query: results
// outlive the query, scratch memory must not.
func (sc *queryScratch) takeResults() []Result {
	out := make([]Result, len(sc.top.results))
	copy(out, sc.top.results)
	return out
}
