package core

import (
	"sync"

	"promips/internal/idistance"
	"promips/internal/pager"
	"promips/internal/store"
)

// queryScratch is the per-query working memory of the search hot path. One
// query needs a projected-query buffer, Quick-Probe's group ranking, the
// candidate collections of the range search and its extension, the top-k
// accumulator's backing array, the per-query I/O accounting (with its
// distinct-page set) and the store's page-local verification cursor. All of
// it lives here and is recycled through a sync.Pool, so a steady query load
// allocates almost nothing per Search: only the result slice handed to the
// caller (scratch memory must never escape into a return value — the next
// query would overwrite it).
//
// A scratch belongs to exactly one query for its duration. SearchBatch
// workers each draw their own from the pool, so concurrent queries never
// share one.
type queryScratch struct {
	io      pager.IOStats
	pq      []float32 // projected query (m)
	probePt []float32 // Quick-Probe point's projected vector (m)

	order    []rankedGroup         // Quick-Probe's group ranking
	cands    []idistance.Candidate // range-search candidates
	extCands []idistance.Candidate // compensation-range candidates
	stream   idistance.CandidateStream

	top    topK         // its results slice is the pooled backing
	reader store.Reader // page-local verification cursor
}

// rankedGroup is one Quick-Probe ranking entry: a sign-code group and its
// Theorem-3 lower bound for the current query.
type rankedGroup struct {
	lb float64
	gi int
}

var queryScratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

// getScratch draws a scratch from the pool and binds it to this query:
// accounting cleared, verification cursor rebound to the index's current
// store generation (Compact may have swapped it since the scratch was last
// used).
func getScratch(ix *Index) *queryScratch {
	sc := queryScratchPool.Get().(*queryScratch)
	sc.io.Reset()
	sc.reader.Reset(ix.orig)
	return sc
}

// putScratch returns sc to the pool. The pinned verification pages are
// released first so an idle pool does not hold page snapshots (or a
// retired store generation) alive.
func putScratch(sc *queryScratch) {
	sc.reader.Reset(nil)
	queryScratchPool.Put(sc)
}

// takeResults copies the top-k accumulator's current contents into a fresh
// slice for the caller; the (possibly grown) backing array stays pooled.
// This is the one unavoidable steady-state allocation of a query: results
// outlive the query, scratch memory must not.
func (sc *queryScratch) takeResults() []Result {
	out := make([]Result, len(sc.top.results))
	copy(out, sc.top.results)
	return out
}
