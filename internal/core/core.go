// Package core implements ProMIPS itself: the probability-guaranteed
// c-AMIP search of Song, Gu, Zhang and Yu (ICDE 2021). It ties together the
// substrates — 2-stable projections (internal/randproj), the chi-square
// machinery (internal/stats), the disk-resident iDistance index
// (internal/idistance) and the original-vector store (internal/store) —
// into the pre-process and searching process of the paper's Fig. 2:
//
//	Pre-process:  project points → compute norms and sign codes for
//	              Quick-Probe → build iDistance → lay original points out
//	              on disk in sub-partition order.
//	Search:       Quick-Probe locates a point whose projected distance
//	              seeds a range search (Algorithm 3 / MIP-Search-II);
//	              candidates are verified by true inner product; Conditions
//	              A and B decide termination, with a range extension to
//	              r' = sqrt(Ψm⁻¹(p)·(‖oM‖²+‖q‖²−2⟨omax,q⟩/c)) when the
//	              estimated range falls short of the probability guarantee.
//
// Algorithm 1 (incremental NN + per-point condition tests) is also provided
// as SearchIncremental for the ablation benchmarks.
package core

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"promips/internal/errs"
	"promips/internal/fsutil"
	"promips/internal/idistance"
	"promips/internal/pager"
	"promips/internal/pq"
	"promips/internal/randproj"
	"promips/internal/store"
	"promips/internal/vec"
	"promips/internal/wal"
)

// Options configures index construction and the default query parameters.
// Zero values take the paper's defaults (§VIII-A-4).
type Options struct {
	// C is the approximation ratio c ∈ (0,1); results satisfy
	// ⟨o,q⟩ ≥ c·⟨o*,q⟩ with probability at least P. Default 0.9.
	C float64
	// P is the guarantee probability p ∈ (0,1). Default 0.5.
	P float64
	// M is the projected dimensionality; 0 selects the optimized
	// m = argmin 2^m(m+1)+n/2^m of §V-B.
	M int
	// Kp, Nkey, Ksp control the iDistance partition pattern
	// (defaults 5, 40, 10).
	Kp, Nkey, Ksp int
	// Epsilon is the iDistance ring width; 0 derives it from the data.
	Epsilon float64
	// PageSize is the disk page size in bytes (default 4096; the paper
	// uses 65536 for the 5408-dimensional P53 dataset).
	PageSize int
	// PoolSize is the buffer-pool capacity in pages per page file.
	PoolSize int
	// MissLatency is a simulated disk latency per buffer-pool miss (one per
	// readahead run), slept on the read path. Zero disables it; the
	// benchmark harness uses it to model a disk-resident working set (the
	// paper's cost regime) on machines whose page files sit in RAM.
	MissLatency time.Duration
	// Seed makes projections and clustering deterministic.
	Seed int64
	// Fsync selects the update journal's durability policy (the zero value
	// is FsyncAlways). Persisted in the metadata, so a reopened index keeps
	// the policy it was built with.
	Fsync FsyncPolicy
	// SegmentEntries caps the mutable update delta: once it holds this many
	// inserts it freezes into an immutable, searchable segment that a
	// background goroutine flushes to its own seg file off the index lock
	// (see segment.go). 0 selects the default (4096); negative disables
	// freezing — one unbounded mutable delta, the pre-segment behavior.
	// Persisted in the metadata like the other build knobs.
	SegmentEntries int

	// fs is the filesystem seam persistence writes through; nil means the
	// real filesystem. Unexported so gob skips it when the Options ride
	// inside coreMeta; set it with WithFS.
	fs fsutil.FS
	// syncSegFlush makes segment flushes run inline on the update path
	// instead of in the background goroutine — the crash matrix needs
	// deterministic filesystem op counts. Test-only, never persisted.
	syncSegFlush bool
	// noFlusher suppresses the background flusher entirely: Compact builds
	// its private next generation with it so the long-lived Index's own
	// flusher (which survives the swap) stays the only segment writer.
	noFlusher bool
}

// defaultSegmentEntries is the delta freeze threshold when
// Options.SegmentEntries is 0.
const defaultSegmentEntries = 4096

// segmentEntries resolves the freeze threshold: ≤ 0 means disabled.
func (o Options) segmentEntries() int {
	if o.SegmentEntries == 0 {
		return defaultSegmentEntries
	}
	if o.SegmentEntries < 0 {
		return 0
	}
	return o.SegmentEntries
}

// WithSyncSegmentFlush returns a copy of o whose segment flushes run
// synchronously on the update path — the deterministic-op-count seam the
// crash matrix tests through, paired with WithFS.
func (o Options) WithSyncSegmentFlush() Options {
	o.syncSegFlush = true
	return o
}

// FsyncPolicy selects how the update journal acknowledges Insert/Delete.
type FsyncPolicy int

const (
	// FsyncAlways (the default) fsyncs the journal before every update is
	// acknowledged: an acknowledged update survives any crash.
	FsyncAlways FsyncPolicy = iota
	// FsyncNever journals updates without fsync (buffered, flushed on
	// Close): acknowledged updates survive a clean shutdown, and a crash
	// may lose the un-synced tail — never corrupting the index.
	FsyncNever
	// FsyncDisabled turns the journal off entirely: updates are durable
	// only from the next successful Save (the pre-journal semantics).
	FsyncDisabled
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "fsync-always"
	case FsyncNever:
		return "fsync-never"
	case FsyncDisabled:
		return "disabled"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// WithFS returns a copy of o whose persistence goes through fsys — the
// crash-injection seam. The zero/nil value means the real filesystem.
func (o Options) WithFS(fsys fsutil.FS) Options {
	o.fs = fsys
	return o
}

// fsys resolves the filesystem seam.
func (o Options) fsys() fsutil.FS {
	if o.fs == nil {
		return fsutil.OS
	}
	return o.fs
}

// syncMode maps the fsync policy onto the journal's mode. Only meaningful
// when the policy is not FsyncDisabled.
func (o Options) syncMode() wal.SyncMode {
	if o.Fsync == FsyncNever {
		return wal.SyncNever
	}
	return wal.SyncAlways
}

func (o *Options) normalize() error {
	if o.C == 0 {
		o.C = 0.9
	}
	if o.P == 0 {
		o.P = 0.5
	}
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("core: approximation ratio c must be in (0,1), got %v", o.C)
	}
	if o.P <= 0 || o.P >= 1 {
		return fmt.Errorf("core: probability p must be in (0,1), got %v", o.P)
	}
	if o.PageSize <= 0 {
		o.PageSize = pager.DefaultPageSize
	}
	return nil
}

// group is one Quick-Probe bucket: the points sharing an m-bit sign code.
// Only the member with the smallest 1-norm matters at query time (it
// maximizes LB²/(c·(‖o‖₁+‖q‖₁)²) within the group), so that is all we keep
// in memory; the paper likewise stores per-group sorted 1-norms.
type group struct {
	code     uint32
	minNorm1 float64
	minID    uint32
	count    int
}

// Result is one returned point with its exact inner product to the query.
type Result struct {
	ID uint32
	IP float64
}

// SearchStats reports the work one query performed.
type SearchStats struct {
	// Candidates is the number of points verified by exact inner product.
	Candidates int
	// PageAccesses counts the distinct disk pages touched across the
	// iDistance pagers and the vector store — the paper's Page Access
	// metric. It is accumulated in a per-query pager.IOStats, so the count
	// is exact and deterministic even when many queries share the index
	// concurrently (no shared counters are reset or read).
	PageAccesses int64
	// Preranked is how many of the verified candidates were verified during
	// the PQ-sketch pre-ranking pass (0 when pre-ranking is off or the
	// index has no sketch). Pre-ranking changes verification ORDER only;
	// every counted candidate is still exactly verified.
	Preranked int
	// NormPruned counts candidates skipped without any disk read because an
	// exact in-memory bound — Cauchy-Schwarz ‖o‖‖q‖, or the PQ-sketch
	// estimate plus its residual bound — proves they cannot enter the
	// top-k (no probability is spent; results are unchanged).
	NormPruned int
	// GroupsProbed is how many sign-code groups Quick-Probe examined.
	GroupsProbed int
	// Radius is the search range Quick-Probe determined.
	Radius float64
	// ExtendedRadius is the compensation range r' (0 when no extension ran).
	ExtendedRadius float64
	// TerminatedBy records which condition ended the search:
	// "A", "B", or "exhausted".
	TerminatedBy string
	// Degraded is non-nil when a fanned-out sharded search lost shards —
	// per-shard timeouts or errors isolated instead of failing the query —
	// and reports what the merged answer still covers. A single index never
	// sets it, and a fan-out that heard from every shard leaves it nil, so
	// the field is also the "was this answer complete?" predicate.
	Degraded *DegradedStats
}

// DegradedStats reports a degraded fan-out: which shards answered a
// sharded search and what guarantee the merged result still carries. The
// (c, p) accounting is in DESIGN.md, "Failure domains & degradation": the
// answer is c-approximate against the live points of the answered shards
// with probability at least AchievedP; points owned by the failed shards
// are simply not covered — the guarantee degrades in coverage, not in
// confidence.
type DegradedStats struct {
	// ShardsTotal is the fan-out width K.
	ShardsTotal int `json:"shards_total"`
	// ShardsAnswered is how many shards contributed to the merge (empty
	// shards count: they answered "no live points").
	ShardsAnswered int `json:"shards_answered"`
	// FailedShards lists the shards that timed out or errored, ascending.
	FailedShards []int `json:"failed_shards"`
	// AchievedP is the union-bound guarantee probability over the answered
	// shards' points: every shard ran at p' = 1−(1−p)/K, so A answered
	// shards jointly fail with probability at most A·(1−p)/K and
	// AchievedP = 1 − A·(1−p)/K ≥ p.
	AchievedP float64 `json:"achieved_p"`
}

// Index is a built ProMIPS index. It is safe for concurrent use: searches
// take the index lock shared (and account their I/O in a private
// pager.IOStats), while Insert and Delete take it exclusive, so readers
// never observe a half-applied update. The disk-resident structures are
// immutable after Build, and the pagers underneath handle their own
// concurrency.
type Index struct {
	opts Options
	n, d int
	m    int

	proj  *randproj.Projector
	idist *idistance.Index
	orig  *store.Store

	// sketch holds in-memory PQ codes for every base-index point; searches
	// use its estimated inner products to decide verification ORDER only
	// (every result stays exactly verified), so a nil sketch — an index
	// saved before sketches existed — just disables pre-ranking.
	sketch *pq.Sketch

	norm2Sq []float64 // per id, ‖o‖²
	norm1   []float64 // per id, ‖o‖₁
	codes   []uint32  // per id, sign code of P(o)
	groups  []group

	// mu guards the mutable query-visible state: the delta and segment
	// slices, the tombstone set, maxNorm2Sq, the closed flag and — since
	// Compact swaps generations in place — every disk-backed component
	// above. Searches DO NOT hold it for their run: they capture a
	// snapshot under a brief shared acquisition (see segment.go) and run
	// lock-free against it, with ref keeping the generation's files open.
	// Insert/Delete, Close and Compact's swap phase hold it exclusive.
	mu         sync.RWMutex
	closed     bool
	maxNorm2Sq float64 // ‖oM‖² (monotone: never lowered by deletes)

	// ref is the current generation's refcounted file handles (idist +
	// orig). The Index owns the initial reference; snapshots take one
	// each; retiring the generation (Compact swap, Close) releases the
	// Index's — the files close when the last snapshot drains.
	ref *genRef

	// dir is the directory the current generation (and its seg files)
	// lives in; follows the generation across Compact swaps.
	dir string

	// Update state (see update.go and segment.go): the mutable delta,
	// frozen immutable segments, and the copy-on-write tombstone set
	// (never nil). tombsSinceFreeze accumulates the ids deleted since the
	// last freeze so each segment's flush file covers its whole window.
	delta            []deltaEntry
	segs             []*segment
	segSeq           int
	frozenEntries    int // total entries across segs
	tombs            *tombSet
	tombsSinceFreeze []uint32
	segLimit         int // resolved freeze threshold (0 = disabled)

	// Background segment flusher (see segment.go).
	flusherKick     chan struct{}
	flusherStop     chan struct{}
	flusherDone     sync.WaitGroup
	flusherStopOnce sync.Once

	// Lifetime update-pipeline counters (UpdateStats).
	freezes       atomic.Int64
	flushes       atomic.Int64
	flushFailures atomic.Int64

	// journal is the write-ahead update log (wal.log in the index
	// directory): every acknowledged Insert/Delete appends a record before
	// the in-memory state changes, Open replays it on top of the persisted
	// delta, and Save truncates it once the delta is durable. Nil when
	// Options.Fsync is FsyncDisabled. Guarded by mu like the delta it
	// shadows (appends under the exclusive lock, truncation under Save's
	// shared lock — the two cannot interleave).
	journal *wal.Journal

	// recovery describes what Open's journal replay did.
	recovery RecoveryStats
}

// RecoveryStats reports what the journal replay at Open recovered.
type RecoveryStats struct {
	// Replayed is the number of journal records applied on top of the
	// persisted delta — updates that were acknowledged but not yet saved
	// when the previous process stopped.
	Replayed int
	// Skipped is the number of records already covered by the persisted
	// metadata (a crash between the metadata fsync and the journal
	// truncation leaves the journal one Save behind; replay is idempotent).
	Skipped int
	// TruncatedBytes is the size of the torn journal tail that was cleanly
	// cut (a record half-written at crash time, never acknowledged).
	TruncatedBytes int64
}

// Build constructs an index over data in dir (page files are created
// there). Point i keeps id uint32(i).
func Build(data [][]float32, dir string, opts Options) (*Index, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("core: %w: no points to build over", errs.ErrEmptyIndex)
	}
	d := len(data[0])
	for i, p := range data {
		if len(p) != d {
			return nil, fmt.Errorf("core: %w: point %d has dim %d, want %d", errs.ErrDimMismatch, i, len(p), d)
		}
	}
	m := opts.M
	if m == 0 {
		m = randproj.OptimizedM(n)
	}
	if m > randproj.MaxM {
		return nil, fmt.Errorf("core: m=%d exceeds %d", m, randproj.MaxM)
	}

	// Pre-process step 1: 2-stable projections.
	proj := randproj.New(d, m, opts.Seed)
	projected := proj.ProjectAll(data)

	// Pre-process step 2: norms and binary codes for Quick-Probe.
	ix := &Index{
		opts: opts, n: n, d: d, m: m, proj: proj,
		norm2Sq: make([]float64, n),
		norm1:   make([]float64, n),
		codes:   make([]uint32, n),
	}
	byCode := make(map[uint32]*group)
	for i, o := range data {
		ix.norm2Sq[i] = vec.Norm2Sq(o)
		ix.norm1[i] = vec.Norm1(o)
		if ix.norm2Sq[i] > ix.maxNorm2Sq {
			ix.maxNorm2Sq = ix.norm2Sq[i]
		}
		code := randproj.Code(projected[i])
		ix.codes[i] = code
		g, ok := byCode[code]
		if !ok {
			byCode[code] = &group{code: code, minNorm1: ix.norm1[i], minID: uint32(i), count: 1}
			continue
		}
		g.count++
		if ix.norm1[i] < g.minNorm1 {
			g.minNorm1, g.minID = ix.norm1[i], uint32(i)
		}
	}
	ix.groups = make([]group, 0, len(byCode))
	for _, g := range byCode {
		ix.groups = append(ix.groups, *g)
	}
	sort.Slice(ix.groups, func(i, j int) bool { return ix.groups[i].code < ix.groups[j].code })

	// Pre-process step 2b: PQ sketch codes over the original vectors, kept
	// in memory to pre-rank candidate verification (16 bytes per point).
	sk, err := pq.BuildSketch(data, pq.SketchConfig{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	ix.sketch = sk

	// Pre-process step 3: iDistance over the projected points.
	idx, err := idistance.Build(projected, dir, idistance.Config{
		Kp: opts.Kp, Nkey: opts.Nkey, Ksp: opts.Ksp, Epsilon: opts.Epsilon,
		Seed: opts.Seed, PageSize: opts.PageSize, PoolSize: opts.PoolSize,
		MissLatency: opts.MissLatency,
	})
	if err != nil {
		return nil, err
	}
	ix.idist = idx

	// Pre-process step 4: original points on disk in sub-partition order,
	// so verification reads are sequential.
	w, err := store.Create(dir+"/orig.data", d, n, pager.Options{PageSize: opts.PageSize, PoolSize: opts.PoolSize, MissLatency: opts.MissLatency})
	if err != nil {
		idx.Close()
		return nil, err
	}
	for _, id := range idx.Layout() {
		if err := w.Append(id, data[id]); err != nil {
			idx.Close()
			return nil, err
		}
	}
	st, err := w.Finalize()
	if err != nil {
		idx.Close()
		return nil, err
	}
	ix.orig = st

	// Pre-process step 5: a fresh update journal. Build may target a
	// directory that held an older index, so any stale wal.log is
	// truncated, not replayed — and stale seg files are removed for the
	// same reason (they belong to the older index's update stream).
	if err := removeSegFiles(opts.fsys(), dir); err != nil {
		idx.Close()
		st.Close()
		return nil, err
	}
	if opts.Fsync != FsyncDisabled {
		j, err := wal.Create(opts.fsys(), filepath.Join(dir, "wal.log"), opts.syncMode())
		if err != nil {
			idx.Close()
			st.Close()
			return nil, fmt.Errorf("core: %w", err)
		}
		ix.journal = j
	}
	ix.dir = dir
	ix.segLimit = opts.segmentEntries()
	ix.tombs = &tombSet{}
	ix.ref = newGenRef(idx, st)
	ix.startFlusher()
	return ix, nil
}

// removeSegFiles deletes stale segment flush files in dir — Build's
// analogue of truncating a stale wal.log.
func removeSegFiles(fsys fsutil.FS, dir string) error {
	names, err := filepath.Glob(filepath.Join(dir, segFilePattern))
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := fsys.Remove(name); err != nil {
			return fmt.Errorf("core: remove stale %s: %w", filepath.Base(name), err)
		}
	}
	return nil
}

// Close releases the index's page files. Further operations return
// ErrClosed; a second Close is a no-op. Close waits for in-flight
// searches — snapshots pinning the current generation — to drain, so the
// page files are really closed when it returns (the semantics the old
// exclusive-lock Close had).
func (ix *Index) Close() error {
	ix.mu.Lock()
	if ix.closed {
		ix.mu.Unlock()
		return nil
	}
	ix.closed = true
	ix.mu.Unlock()
	// Stop the flusher OUTSIDE the lock: its post-write section takes the
	// lock, and its closed-check makes any in-flight write a no-op.
	ix.stopFlusher()
	ix.mu.Lock()
	ref, j := ix.ref, ix.journal
	ix.mu.Unlock()
	// Release the Index's own reference and wait for in-flight snapshots.
	ref.release()
	<-ref.done
	err := ref.closeErr
	// Close flushes (FsyncNever buffers) but never truncates: the journal
	// must survive Close so an unsaved index still replays at Open.
	if j != nil {
		if err2 := j.Close(); err == nil {
			err = err2
		}
	}
	return err
}

// Len returns the number of indexed points (compaction folds the delta in,
// so the count can change over an index's lifetime).
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.n
}

// Dim returns the original dimensionality.
func (ix *Index) Dim() int { return ix.d }

// JournalLen returns the number of updates in the write-ahead journal
// that are not yet folded into a Save — exactly what a crash-recovery
// Open would replay (records a stale journal holds but the metadata
// already covers are excluded). 0 when the journal is disabled.
func (ix *Index) JournalLen() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.journal == nil {
		return 0
	}
	n := ix.journal.Len() - int(ix.journal.Covered())
	if n < 0 {
		n = 0
	}
	return n
}

// JournalPoisoned reports whether the update journal is refusing
// acknowledgements (ErrJournalPoisoned) until a Save heals it. False when
// the journal is disabled.
func (ix *Index) JournalPoisoned() bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.journal != nil && ix.journal.Poisoned()
}

// Recovery reports what the journal replay at Open recovered. Zero for a
// freshly built index.
func (ix *Index) Recovery() RecoveryStats { return ix.recovery }

// M returns the projected dimensionality in use.
func (ix *Index) M() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.m
}

// Options returns the options the index was built with.
func (ix *Index) Options() Options { return ix.opts }

// SizeBreakdown itemizes the index's storage footprint in bytes.
type SizeBreakdown struct {
	BTree      int64 // the single B+-tree (the index proper)
	Projected  int64 // projected points on disk
	QuickProbe int64 // sign codes, 1-norms, per-group minima
	Norms      int64 // per-point ‖o‖² kept for Condition A
	Sketch     int64 // in-memory PQ codes + codebooks for pre-ranking
}

// Total returns the summed index size. Following the paper's Fig. 4(a),
// the original data file is not part of the index.
func (s SizeBreakdown) Total() int64 {
	return s.BTree + s.Projected + s.QuickProbe + s.Norms + s.Sketch
}

// Sizes reports the on-disk/in-memory footprint of each index component.
func (ix *Index) Sizes() SizeBreakdown {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var sketch int64
	if ix.sketch != nil {
		sketch = ix.sketch.Bytes()
	}
	return SizeBreakdown{
		BTree:      ix.idist.IndexSizeBytes(),
		Projected:  ix.idist.DataSizeBytes(),
		QuickProbe: int64(ix.n)*4 + int64(len(ix.groups))*20,
		Norms:      int64(ix.n) * 16,
		Sketch:     sketch,
	}
}

// CacheStats aggregates the buffer-pool counters of every pager the index
// reads through (the iDistance B+-tree and data files and the
// original-vector store) — the I/O engine's whole-run diagnostics. Unlike
// SearchStats, these are shared counters: concurrent queries all add to
// them, and Sub of two snapshots brackets a measured interval.
func (ix *Index) CacheStats() pager.Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.closed {
		return pager.Stats{}
	}
	var total pager.Stats
	for _, pg := range append(ix.idist.Pagers(), ix.orig.Pager()) {
		total = total.Add(pg.Stats())
	}
	return total
}

// conditionA evaluates the deterministic termination test (Formula 1):
// ‖oM‖² + ‖q‖² − 2⟨oi,q⟩/c ≤ 0. The approximation ratio c is query-local:
// per-query overrides recompute the condition without touching the index.
// Defined on the snapshot: a query must test against the one consistent
// ‖oM‖² its view was captured with.
func (sn *snapshot) conditionA(c, normQSq, ipK float64) bool {
	return sn.maxNorm2Sq+normQSq-2*ipK/c <= 0
}

// conditionBDenominator is ‖oM‖² + ‖q‖² − 2⟨omax,q⟩/c, the denominator of
// Formula 2. Non-positive values mean Condition A already holds.
func (sn *snapshot) conditionBDenominator(c, normQSq, ipK float64) float64 {
	return sn.maxNorm2Sq + normQSq - 2*ipK/c
}
