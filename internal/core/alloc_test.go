package core

import (
	"runtime/debug"
	"testing"

	"promips/internal/dataset"
)

// TestSearchSteadyStateAllocs pins the scratch-pool contract: once warm, a
// Search allocates only the result slice it hands to the caller (plus a
// handful of slack for buffer-pool churn) — not the ~1000 allocations per
// query the pre-scratch implementation made. GC is paused so a collection
// mid-measurement cannot empty the sync.Pool and charge the rebuild to one
// unlucky run.
func TestSearchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are only meaningful without it")
	}
	data := dataset.Netflix().Generate(1000, 5)
	ix, err := Build(data, t.TempDir(), Options{M: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	queries := data[:16]
	for _, q := range queries {
		if _, _, err := ix.Search(q, 10); err != nil {
			t.Fatal(err)
		}
	}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		q := queries[i%len(queries)]
		i++
		if _, _, err := ix.Search(q, 10); err != nil {
			t.Fatal(err)
		}
	})
	// One allocation is inherent (the returned results slice); allow a few
	// more for pool-eviction rereads. The pre-PR baseline was ~1000.
	if avg > 8 {
		t.Fatalf("steady-state Search allocs/op = %.1f, want <= 8", avg)
	}
}
