package core

import (
	"context"
	"testing"

	"promips/internal/dataset"
)

// TestRecallParityWithPrerank pins the PQ-sketch pre-ranking path's quality
// against the pre-ranking-off path (the pre-change verification order) on a
// fixed workload: recall against the exact top-k must be at parity or
// better with pre-ranking on. Pre-ranking only reorders verification and
// the norm/sketch prunes are exact, so the returned inner products can only
// shift upward — a regression here means the termination logic broke, not
// that a tuning knob drifted.
func TestRecallParityWithPrerank(t *testing.T) {
	data := dataset.Netflix().Generate(1500, 7)
	ix, err := Build(data, t.TempDir(), Options{M: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	const k = 10
	recall := func(noPrerank bool) float64 {
		hits := 0
		total := 0
		for qi := 0; qi < 40; qi++ {
			q := data[qi*37%len(data)]
			exact, err := ix.Exact(context.Background(), q, k)
			if err != nil {
				t.Fatal(err)
			}
			res, st, err := ix.SearchContext(context.Background(), q, k, SearchParams{NoPrerank: noPrerank})
			if err != nil {
				t.Fatal(err)
			}
			if !noPrerank && ix.sketch != nil && st.Preranked == 0 && st.NormPruned == 0 {
				t.Fatalf("query %d: pre-ranking enabled but neither preranked nor pruned anything", qi)
			}
			got := make(map[uint32]bool, len(res))
			for _, r := range res {
				got[r.ID] = true
			}
			for _, e := range exact {
				total++
				if got[e.ID] {
					hits++
				}
			}
		}
		return float64(hits) / float64(total)
	}

	off := recall(true)
	on := recall(false)
	t.Logf("recall vs exact: prerank off %.4f, on %.4f", off, on)
	if on < off {
		t.Fatalf("pre-ranking reduced recall: on=%.4f < off=%.4f", on, off)
	}
	if off < 0.5 {
		t.Fatalf("baseline recall implausibly low: %.4f", off)
	}
}

// TestPruneIsExact verifies the no-probability-spent claim directly: with
// pre-ranking disabled, the norm prune must leave results bit-identical to
// a brute-force check that the k-th inner product dominates every pruned
// candidate (here approximated by comparing against Exact on the verified
// contract: every returned result's inner product matches a full exact
// evaluation of that id).
func TestPruneIsExact(t *testing.T) {
	data := dataset.Netflix().Generate(800, 9)
	ix, err := Build(data, t.TempDir(), Options{M: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for qi := 0; qi < 20; qi++ {
		q := data[qi*41%len(data)]
		res, st, err := ix.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if st.NormPruned == 0 && st.Candidates == 0 {
			t.Fatalf("query %d did no work", qi)
		}
		for _, r := range res {
			var want float64
			for j, v := range data[r.ID] {
				want += float64(v) * float64(q[j])
			}
			if r.IP != want {
				t.Fatalf("query %d: result id=%d IP=%v, exact evaluation %v", qi, r.ID, r.IP, want)
			}
		}
	}
}
