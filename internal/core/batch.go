package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// SearchBatch answers many queries against one shared index with a bounded
// pool of worker goroutines. Results and stats are positionally aligned
// with queries, and each query's answer (results, stats, everything) is
// identical to what a sequential SearchContext with the same params would
// return: workers share the read lock and the buffer pool but account
// their I/O privately.
//
// workers <= 0 uses GOMAXPROCS. The first query error cancels the
// remaining work and is returned. Cancellation is checked between batch
// queries (and, through SearchContext, between sub-partition scans inside
// each query): once ctx expires no further query starts, every worker
// drains, and the batch returns ctx.Err().
//
// Memory: each query draws a pooled queryScratch inside searchLocked, so a
// worker reuses the same scratch (projection buffers, candidate slices,
// I/O log, verification cursor) across the queries it claims — steady-state
// batch throughput allocates per query only the result slices it returns.
func (ix *Index) SearchBatch(ctx context.Context, queries [][]float32, k, workers int, params SearchParams) ([][]Result, []SearchStats, error) {
	n := len(queries)
	if n == 0 {
		return nil, nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([][]Result, n)
	stats := make([]SearchStats, n)

	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				if err := ctx.Err(); err != nil {
					failed.Store(true)
					errOnce.Do(func() { firstErr = err })
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				res, st, err := ix.SearchContext(ctx, queries[i], k, params)
				if err != nil {
					failed.Store(true)
					errOnce.Do(func() { firstErr = fmt.Errorf("core: batch query %d: %w", i, err) })
					return
				}
				results[i], stats[i] = res, st
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return results, stats, nil
}
