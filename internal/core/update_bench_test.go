package core

// Contention benchmarks pinning the Insert critical-section work: clone
// and ‖v‖² are computed BEFORE the exclusive lock is taken, so concurrent
// searchers (who only need the read lock for a snapshot capture) are not
// serialized behind per-insert O(d) work. Compare:
//
//	go test ./internal/core -bench 'Insert(Contended)?$' -benchtime 2s
//
// before and after touching the insert path; the contended variant is the
// one that regresses if prep work creeps back under the lock.

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// benchInsertIndex builds a journal-less index (FsyncDisabled isolates
// lock contention from fsync latency) with freezing on, so the benchmark
// crosses freeze boundaries like a real insert stream.
func benchInsertIndex(b *testing.B, d int) (*Index, [][]float32) {
	r := rand.New(rand.NewSource(1234))
	data := randData(r, 2000, d)
	ix := buildIndex(b, data, Options{Seed: 5, M: 6, Fsync: FsyncDisabled, SegmentEntries: 1024})
	return ix, randData(r, 4096, d)
}

func BenchmarkInsert(b *testing.B) {
	ix, points := benchInsertIndex(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Insert(points[i%len(points)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsertContended measures insert latency while GOMAXPROCS-1
// searcher goroutines run flat out. With prep hoisted out of the critical
// section the searchers cost inserts almost nothing (they hold the read
// lock only long enough to capture a snapshot); prep creeping back under
// the exclusive lock multiplies the reported ns/op.
func BenchmarkInsertContended(b *testing.B) {
	ix, points := benchInsertIndex(b, 64)
	queries := points[:64]

	var stop atomic.Bool
	done := make(chan struct{})
	searchers := 3
	for w := 0; w < searchers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			i := w
			for !stop.Load() {
				if _, _, err := ix.Search(queries[i%len(queries)], 10); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		}(w)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Insert(points[i%len(points)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stop.Store(true)
	for w := 0; w < searchers; w++ {
		<-done
	}
}
