package core

import (
	"fmt"
	"os"

	"promips/internal/vec"
)

// Dynamic updates. The paper motivates the lightweight index with
// frequently-updated workloads ("in commonly used mobile devices or IoT
// devices, a huge amount of data will be frequently inserted or deleted in
// a short time", §I): a single B+-tree is cheap to maintain where hundreds
// of hash tables are not. This file adds the update path:
//
//   - Insert appends to an in-memory delta region that every query scans
//     exactly (the delta holds recent points, so the scan is small); the
//     probabilistic machinery is untouched because exact evaluation of the
//     delta can only improve the returned inner products.
//   - Delete tombstones a point. Tombstoned points are filtered from
//     candidate evaluation. If the deleted point was the max-norm point
//     oM, the stale (larger) ‖oM‖² keeps Conditions A and B conservative,
//     so the guarantee still holds.
//   - Compact folds delta and tombstones into a fresh index once the delta
//     grows past a threshold.

// deltaEntry is one inserted point not yet folded into the disk index.
type deltaEntry struct {
	id  uint32
	v   []float32
	ip2 float64 // ‖v‖²
}

// Insert adds a point and returns its id. The point lives in the delta
// region until Compact is called. Insert takes the index lock exclusive, so
// it interleaves correctly with concurrent searches: a search sees either
// the state before or after the insert, never a partial one.
func (ix *Index) Insert(v []float32) (uint32, error) {
	if len(v) != ix.d {
		return 0, fmt.Errorf("core: insert dim %d, want %d", len(v), ix.d)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id := uint32(ix.n + len(ix.delta))
	n2 := vec.Norm2Sq(v)
	ix.delta = append(ix.delta, deltaEntry{id: id, v: vec.Clone(v), ip2: n2})
	if n2 > ix.maxNorm2Sq {
		// A new max-norm point tightens nothing but must be respected:
		// Condition A's proof requires ‖oM‖ to bound every live norm.
		ix.maxNorm2Sq = n2
	}
	return id, nil
}

// Delete tombstones the point with the given id (from the base index or
// the delta). It reports whether the id was live. Like Insert, it takes the
// index lock exclusive.
func (ix *Index) Delete(id uint32) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if int(id) >= ix.n+len(ix.delta) {
		return false
	}
	if ix.deleted == nil {
		ix.deleted = make(map[uint32]bool)
	}
	if ix.deleted[id] {
		return false
	}
	ix.deleted[id] = true
	return true
}

// LiveCount returns the number of live (non-tombstoned) points.
func (ix *Index) LiveCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.liveCountLocked()
}

func (ix *Index) liveCountLocked() int { return ix.n + len(ix.delta) - len(ix.deleted) }

// DeltaCount returns the number of points awaiting compaction.
func (ix *Index) DeltaCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.delta)
}

// scanDelta offers every live delta point to the accumulator (exact
// evaluation; no disk I/O).
func (ix *Index) scanDelta(q []float32, top *topK) {
	for _, e := range ix.delta {
		if ix.deleted[e.id] {
			continue
		}
		top.offer(e.id, vec.Dot(e.v, q))
	}
}

// live reports whether a base-index candidate id should be considered.
func (ix *Index) live(id uint32) bool {
	return len(ix.deleted) == 0 || !ix.deleted[id]
}

// Compact rebuilds the index in dir, folding in the delta and dropping
// tombstoned points. Ids are reassigned densely (0..LiveCount-1) in the
// order base-index survivors first, then delta survivors; the mapping from
// new id to the previous id is returned so callers can relocate external
// references.
func (ix *Index) Compact(dir string) (*Index, []uint32, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	liveData := make([][]float32, 0, ix.liveCountLocked())
	oldIDs := make([]uint32, 0, ix.liveCountLocked())
	buf := make([]float32, ix.d)
	for pos := 0; pos < ix.n; pos++ {
		id := ix.idist.Layout()[pos]
		if !ix.live(id) {
			continue
		}
		o, err := ix.orig.VectorAt(pos, buf, nil)
		if err != nil {
			return nil, nil, err
		}
		liveData = append(liveData, vec.Clone(o))
		oldIDs = append(oldIDs, id)
	}
	for _, e := range ix.delta {
		if ix.deleted[e.id] {
			continue
		}
		liveData = append(liveData, e.v)
		oldIDs = append(oldIDs, e.id)
	}
	if len(liveData) == 0 {
		return nil, nil, fmt.Errorf("core: compacting an empty index")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	next, err := Build(liveData, dir, ix.opts)
	if err != nil {
		return nil, nil, err
	}
	return next, oldIDs, nil
}
