package core

import (
	"context"
	"fmt"
	"os"

	"promips/internal/errs"
	"promips/internal/vec"
)

// Dynamic updates. The paper motivates the lightweight index with
// frequently-updated workloads ("in commonly used mobile devices or IoT
// devices, a huge amount of data will be frequently inserted or deleted in
// a short time", §I): a single B+-tree is cheap to maintain where hundreds
// of hash tables are not. This file adds the update path:
//
//   - Insert appends to an in-memory delta region that every query scans
//     exactly (the delta holds recent points, so the scan is small); the
//     probabilistic machinery is untouched because exact evaluation of the
//     delta can only improve the returned inner products.
//   - Delete tombstones a point. Tombstoned points are filtered from
//     candidate evaluation. If the deleted point was the max-norm point
//     oM, the stale (larger) ‖oM‖² keeps Conditions A and B conservative,
//     so the guarantee still holds.
//   - Compact folds delta and tombstones into a fresh on-disk generation
//     and swaps it into this Index in place; searches keep running against
//     the old generation during the rebuild and see the new one atomically.

// deltaEntry is one inserted point not yet folded into the disk index.
type deltaEntry struct {
	id  uint32
	v   []float32
	ip2 float64 // ‖v‖²
}

// Insert adds a point and returns its id. The point lives in the delta
// region until Compact is called. Insert takes the index lock exclusive, so
// it interleaves correctly with concurrent searches: a search sees either
// the state before or after the insert, never a partial one.
func (ix *Index) Insert(v []float32) (uint32, error) {
	if len(v) != ix.d {
		return 0, fmt.Errorf("core: %w: insert dim %d, want %d", errs.ErrDimMismatch, len(v), ix.d)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return 0, errs.ErrClosed
	}
	id := uint32(ix.n + len(ix.delta))
	n2 := vec.Norm2Sq(v)
	ix.delta = append(ix.delta, deltaEntry{id: id, v: vec.Clone(v), ip2: n2})
	if n2 > ix.maxNorm2Sq {
		// A new max-norm point tightens nothing but must be respected:
		// Condition A's proof requires ‖oM‖ to bound every live norm.
		ix.maxNorm2Sq = n2
	}
	return id, nil
}

// Delete tombstones the point with the given id (from the base index or
// the delta). It reports whether the id was live. Like Insert, it takes the
// index lock exclusive. Deleting from a closed index reports false.
func (ix *Index) Delete(id uint32) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return false
	}
	if int(id) >= ix.n+len(ix.delta) {
		return false
	}
	if ix.deleted == nil {
		ix.deleted = make(map[uint32]bool)
	}
	if ix.deleted[id] {
		return false
	}
	ix.deleted[id] = true
	return true
}

// LiveCount returns the number of live (non-tombstoned) points.
func (ix *Index) LiveCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.liveCountLocked()
}

func (ix *Index) liveCountLocked() int { return ix.n + len(ix.delta) - len(ix.deleted) }

// DeltaCount returns the number of points awaiting compaction.
func (ix *Index) DeltaCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.delta)
}

// scanDelta offers every live delta point accepted by the query's filter to
// the accumulator (exact evaluation; no disk I/O). params may be nil for an
// unfiltered scan.
func (ix *Index) scanDelta(q []float32, top *topK, params *SearchParams) {
	for _, e := range ix.delta {
		if ix.deleted[e.id] {
			continue
		}
		if params != nil && !params.accepts(e.id) {
			continue
		}
		top.offer(e.id, vec.Dot(e.v, q))
	}
}

// live reports whether a base-index candidate id should be considered.
func (ix *Index) live(id uint32) bool {
	return len(ix.deleted) == 0 || !ix.deleted[id]
}

// Compact rebuilds the index into dir — folding the insert delta in and
// dropping tombstoned points — and swaps the new generation into ix in
// place. Ids are reassigned densely (0..Len-1); remap[newID] gives the
// previous id so callers can relocate external references.
//
// The rebuild runs without the exclusive lock: concurrent searches keep
// answering against the old generation, and updates that land during the
// rebuild are folded in during the brief exclusive swap phase (inserts move
// into the new generation's delta, deletes are re-applied through the id
// remap). The old generation's page files are closed but not removed; the
// caller owns directory hygiene.
//
// Cancellation is honored between the snapshot, build and swap phases; on
// ctx expiry the index is left untouched and partially written files in dir
// are the caller's to clean up.
//
// Error contract: a non-nil error means the swap did NOT happen — ix is
// untouched and still serves the old generation, and nothing references
// dir. A nil error means the new generation is live in ix. Callers rely on
// this to decide whether dir is removable.
func (ix *Index) Compact(ctx context.Context, dir string) ([]uint32, error) {
	// Phase 1: snapshot the live set under the shared lock.
	ix.mu.RLock()
	if ix.closed {
		ix.mu.RUnlock()
		return nil, errs.ErrClosed
	}
	liveData := make([][]float32, 0, ix.liveCountLocked())
	oldIDs := make([]uint32, 0, ix.liveCountLocked())
	buf := make([]float32, ix.d)
	for pos := 0; pos < ix.n; pos++ {
		id := ix.idist.Layout()[pos]
		if !ix.live(id) {
			continue
		}
		o, err := ix.orig.VectorAt(pos, buf, nil)
		if err != nil {
			ix.mu.RUnlock()
			return nil, err
		}
		liveData = append(liveData, vec.Clone(o))
		oldIDs = append(oldIDs, id)
	}
	for _, e := range ix.delta {
		if ix.deleted[e.id] {
			continue
		}
		liveData = append(liveData, vec.Clone(e.v))
		oldIDs = append(oldIDs, e.id)
	}
	idMark := uint32(ix.n + len(ix.delta)) // ids below this existed at snapshot time
	snapDeleted := make(map[uint32]bool, len(ix.deleted))
	for id := range ix.deleted {
		snapDeleted[id] = true
	}
	opts := ix.opts
	ix.mu.RUnlock()

	if len(liveData) == 0 {
		return nil, fmt.Errorf("core: compact: %w", errs.ErrEmptyIndex)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2: build the next generation. Readers are not blocked.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	next, err := Build(liveData, dir, opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		next.Close()
		return nil, err
	}

	// Phase 3: fold updates that arrived during the rebuild, then swap.
	oldToNew := make(map[uint32]uint32, len(oldIDs))
	for newID, oldID := range oldIDs {
		oldToNew[oldID] = uint32(newID)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		next.Close()
		return nil, errs.ErrClosed
	}
	for id := range ix.deleted {
		if snapDeleted[id] || id >= idMark {
			continue // already folded out, or a during-rebuild insert handled below
		}
		newID := oldToNew[id] // deleted after the snapshot ⇒ live at it ⇒ mapped
		if next.deleted == nil {
			next.deleted = make(map[uint32]bool)
		}
		next.deleted[newID] = true
	}
	remap := oldIDs
	for _, e := range ix.delta {
		if e.id < idMark || ix.deleted[e.id] {
			continue
		}
		newID, err := next.Insert(e.v)
		if err != nil {
			next.Close()
			return nil, err
		}
		if int(newID) != len(remap) {
			next.Close()
			return nil, fmt.Errorf("core: compact: remap misaligned at new id %d", newID)
		}
		remap = append(remap, e.id)
	}

	oldIdist, oldOrig := ix.idist, ix.orig
	ix.n, ix.m = next.n, next.m
	ix.proj = next.proj
	ix.idist, ix.orig = next.idist, next.orig
	ix.sketch = next.sketch
	ix.norm2Sq, ix.norm1, ix.codes, ix.groups = next.norm2Sq, next.norm1, next.codes, next.groups
	ix.maxNorm2Sq = next.maxNorm2Sq
	ix.delta, ix.deleted = next.delta, next.deleted

	// The old generation is retired: close best-effort. Its pages were
	// synced at build time and never dirtied since, so a close failure
	// loses nothing — and surfacing it would misreport the swap (which
	// already happened) as a failed compaction, breaking the error
	// contract above.
	oldIdist.Close()
	oldOrig.Close()
	return remap, nil
}
