package core

import (
	"context"
	"fmt"
	"os"

	"promips/internal/errs"
	"promips/internal/vec"
	"promips/internal/wal"
)

// Dynamic updates. The paper motivates the lightweight index with
// frequently-updated workloads ("in commonly used mobile devices or IoT
// devices, a huge amount of data will be frequently inserted or deleted in
// a short time", §I): a single B+-tree is cheap to maintain where hundreds
// of hash tables are not. This file adds the update path:
//
//   - Insert appends to an in-memory delta that freezes into immutable,
//     searchable segments at Options.SegmentEntries inserts (segment.go);
//     queries scan segments and delta exactly, so the probabilistic
//     machinery is untouched — exact evaluation of recent points can only
//     improve the returned inner products.
//   - Delete tombstones a point. Tombstoned points are filtered from
//     candidate evaluation. If the deleted point was the max-norm point
//     oM, the stale (larger) ‖oM‖² keeps Conditions A and B conservative,
//     so the guarantee still holds.
//   - Compact folds segments, delta and tombstones into a fresh on-disk
//     generation and swaps it into this Index in place; searches keep
//     running against the old generation during the rebuild and see the
//     new one atomically.

// deltaEntry is one inserted point not yet folded into the disk index.
type deltaEntry struct {
	id  uint32
	v   []float32
	ip2 float64 // ‖v‖²
}

// Insert adds a point and returns its id. The point lives in the delta
// region (and then a frozen segment) until compaction. The per-point prep
// — cloning the vector and computing its norm — runs BEFORE the exclusive
// lock, so concurrent updaters overlap on it; the lock is held only to
// SEQUENCE the update — write the journal record and apply the in-memory
// change — and released before waiting for durability, so it interleaves
// correctly with concurrent searches (each snapshot sees the state before
// or after the insert, never a partial one) and an updater's fsync never
// stalls readers. Under FsyncAlways the fsyncs are group-committed:
// concurrent inserts that overlap one fsync are all covered by the next,
// so N racing updaters pay ~2 fsyncs between them instead of N (see
// wal.Journal.WaitDurable).
//
// Durability: the record is journaled BEFORE the in-memory state changes,
// and the insert is acknowledged only once the journal says it is durable
// under its fsync policy. A successful return therefore means the insert
// survives a crash (FsyncAlways) or a clean shutdown (FsyncNever). On a
// journal WRITE failure neither memory nor disk took the update (the
// journal heals in place). On a group-FSYNC failure the insert is applied
// in memory but NOT acknowledged — it behaves like an un-acked update: a
// crash may or may not recover it, a later Save persists it — and the
// journal is poisoned (ErrJournalPoisoned) until a successful Save
// re-establishes durability through the metadata path. Inserting into a
// closed index returns ErrClosed.
func (ix *Index) Insert(v []float32) (uint32, error) {
	if len(v) != ix.d {
		return 0, fmt.Errorf("core: %w: insert dim %d, want %d", errs.ErrDimMismatch, len(v), ix.d)
	}
	// Per-point prep outside the critical section: the clone is private
	// from here on, so the norm can be computed from it lock-free too.
	clone := vec.Clone(v)
	n2 := vec.Norm2Sq(clone)
	ix.mu.Lock()
	id, lsn, err := ix.insertPreparedLocked(clone, n2, true)
	j := ix.journal
	ix.mu.Unlock()
	if err != nil {
		return 0, err
	}
	// The durability wait runs OUTSIDE the index lock: searches proceed
	// against the already-applied update while the disk catches up, and
	// every concurrent updater parked here is acknowledged by the same
	// group fsync.
	if lsn > 0 {
		if err := j.WaitDurable(lsn); err != nil {
			return 0, fmt.Errorf("core: insert: %w", err)
		}
	}
	// Synchronous-flush mode (crash matrix): if this insert froze a
	// segment, write it out now, on this goroutine, so filesystem op
	// counts stay deterministic. The insert above is already applied and
	// journaled — a flush failure here surfaces without un-acking it.
	if ix.opts.syncSegFlush {
		if err := ix.flushPendingSegments(); err != nil {
			return id, err
		}
	}
	return id, nil
}

// insertLocked clones v and sequences it — the locked-path form Compact's
// fold uses (journaled=false: the folded records were acknowledged in the
// generation being replaced, which stays the durable one until the
// handover commits — see Compact).
func (ix *Index) insertLocked(v []float32, journaled bool) (uint32, int64, error) {
	clone := vec.Clone(v)
	return ix.insertPreparedLocked(clone, vec.Norm2Sq(clone), journaled)
}

// insertPreparedLocked is Insert's sequencing half; the caller holds
// ix.mu exclusive and hands over ownership of clone (with n2 = ‖clone‖²).
// It writes the journal record, applies the in-memory change, freezes the
// delta if it reached the segment threshold, and returns the record's LSN
// — the caller waits for durability on it AFTER releasing the lock (lsn 0
// means nothing to wait for: the journal is off, buffered, or
// journaled=false).
func (ix *Index) insertPreparedLocked(clone []float32, n2 float64, journaled bool) (uint32, int64, error) {
	if ix.closed {
		return 0, 0, errs.ErrClosed
	}
	id := uint32(ix.n + ix.frozenEntries + len(ix.delta))
	var lsn int64
	if journaled && ix.journal != nil {
		// Write-ahead: if the record cannot be WRITTEN, the insert is not
		// acknowledged and memory is untouched. The journal heals (or
		// poisons itself) so the failed bytes can never precede a later
		// record; the id is not burned — the next insert reuses it, and by
		// then either the journal healed (the failed record is gone) or it
		// is poisoned (no later record can follow the garbage). The journal
		// gets the private clone, not the caller's slice: under FsyncNever
		// it retains the vector until a batched flush, and the delta never
		// mutates it.
		l, err := ix.journal.Append(wal.Record{Type: wal.TypeInsert, ID: id, Vec: clone})
		if err != nil {
			return 0, 0, fmt.Errorf("core: insert: %w", err)
		}
		lsn = l
	}
	ix.delta = append(ix.delta, deltaEntry{id: id, v: clone, ip2: n2})
	if n2 > ix.maxNorm2Sq {
		// A new max-norm point tightens nothing but must be respected:
		// Condition A's proof requires ‖oM‖ to bound every live norm.
		ix.maxNorm2Sq = n2
	}
	ix.maybeFreezeLocked()
	return id, lsn, nil
}

// Delete tombstones the point with the given id (from the base index, a
// frozen segment or the delta). It reports whether the id was live. Like
// Insert, it takes the index lock exclusive. Deleting from a closed index
// reports false; use DeleteChecked to distinguish "absent" from "closed"
// or a journal failure.
func (ix *Index) Delete(id uint32) bool {
	ok, _ := ix.DeleteChecked(id)
	return ok
}

// DeleteChecked is Delete with a typed error: (false, ErrClosed) on a
// closed index, (false, journal error) when the tombstone could not be
// logged, and (false, nil) when the id was simply absent or already
// deleted. Journaling follows the same write-ahead and group-commit
// discipline as Insert: the record write and the in-memory tombstone are
// sequenced under the exclusive lock, the fsync wait happens after it is
// released. On a journal WRITE failure the delete is NOT applied; on a
// group-FSYNC failure it is applied in memory but NOT acknowledged
// (false, ErrJournalPoisoned-wrapped error) — like an un-acked update, a
// crash may or may not recover it and a later Save persists it.
func (ix *Index) DeleteChecked(id uint32) (bool, error) {
	ix.mu.Lock()
	if ix.closed {
		ix.mu.Unlock()
		return false, errs.ErrClosed
	}
	if int(id) >= ix.n+ix.frozenEntries+len(ix.delta) || ix.tombs.has(id) {
		ix.mu.Unlock()
		return false, nil
	}
	var lsn int64
	if ix.journal != nil {
		l, err := ix.journal.Append(wal.Record{Type: wal.TypeDelete, ID: id})
		if err != nil {
			ix.mu.Unlock()
			return false, fmt.Errorf("core: delete: %w", err)
		}
		lsn = l
	}
	ix.tombs = ix.tombs.add(id)
	ix.tombsSinceFreeze = append(ix.tombsSinceFreeze, id)
	j := ix.journal
	ix.mu.Unlock()
	if lsn > 0 {
		if err := j.WaitDurable(lsn); err != nil {
			return false, fmt.Errorf("core: delete: %w", err)
		}
	}
	return true, nil
}

// LiveCount returns the number of live (non-tombstoned) points.
func (ix *Index) LiveCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.liveCountLocked()
}

func (ix *Index) liveCountLocked() int {
	return ix.n + ix.frozenEntries + len(ix.delta) - ix.tombs.count()
}

// liveLocked reports whether id is untombstoned; caller holds ix.mu.
func (ix *Index) liveLocked(id uint32) bool { return !ix.tombs.has(id) }

// NextID returns the id the next Insert would assign (base points plus
// frozen-segment and delta entries; ids are dense and tombstones never
// free one). Routers — promips/shard's least-next-id shard assignment —
// use it to keep a composed id space dense without reaching into the
// update state.
func (ix *Index) NextID() uint32 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return uint32(ix.n + ix.frozenEntries + len(ix.delta))
}

// DeltaCount returns the number of points awaiting compaction — the
// mutable delta plus every frozen segment.
func (ix *Index) DeltaCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.frozenEntries + len(ix.delta)
}

// Compact rebuilds the index into dir — folding the segments and delta in
// and dropping tombstoned points — and swaps the new generation into ix
// in place. Ids are reassigned densely (0..Len-1); remap[newID] gives the
// previous id so callers can relocate external references.
//
// The rebuild runs without the exclusive lock: concurrent searches keep
// answering against the old generation, and updates that land during the
// rebuild are folded in during the brief exclusive swap phase (inserts move
// into the new generation's delta, deletes are re-applied through the id
// remap). The old generation's page files are closed but not removed; the
// caller owns directory hygiene (the retired directory includes any seg
// files the flusher wrote for it).
//
// persist, when non-nil, runs inside the exclusive section after the fold
// and BEFORE the in-memory swap: it must make the new generation durable
// (save its metadata, flip the caller's generation pointer). Running it
// under the lock is what keeps the write-ahead guarantee across
// compaction — no update can be acknowledged into the new generation's
// journal until the pointer durably names that generation, so a crash at
// any instant recovers a generation together with the journal holding its
// acknowledged updates. persist returns committed=true once the pointer
// flip is visible (even if making it durable then failed): from that
// point the swap must proceed — the on-disk logical state already names
// the new generation — and Compact returns the valid remap alongside the
// error.
//
// Cancellation is honored between the snapshot, build and swap phases; on
// ctx expiry the index is left untouched and partially written files in dir
// are the caller's to clean up.
//
// Error contract: error with a nil remap means nothing happened — ix is
// untouched, still serving (and journaling into) the old generation, and
// nothing references dir. A nil error (or the committed-corner error
// above, with a non-nil remap) means the new generation is live in ix.
func (ix *Index) Compact(ctx context.Context, dir string, persist func(next *Index) (committed bool, err error)) ([]uint32, error) {
	// Phase 1: snapshot the live set under the shared lock.
	ix.mu.RLock()
	if ix.closed {
		ix.mu.RUnlock()
		return nil, errs.ErrClosed
	}
	liveData := make([][]float32, 0, ix.liveCountLocked())
	oldIDs := make([]uint32, 0, ix.liveCountLocked())
	buf := make([]float32, ix.d)
	for pos := 0; pos < ix.n; pos++ {
		id := ix.idist.Layout()[pos]
		if !ix.liveLocked(id) {
			continue
		}
		o, err := ix.orig.VectorAt(pos, buf, nil)
		if err != nil {
			ix.mu.RUnlock()
			return nil, err
		}
		liveData = append(liveData, vec.Clone(o))
		oldIDs = append(oldIDs, id)
	}
	snapEntries := func(entries []deltaEntry) {
		for _, e := range entries {
			if ix.tombs.has(e.id) {
				continue
			}
			liveData = append(liveData, vec.Clone(e.v))
			oldIDs = append(oldIDs, e.id)
		}
	}
	for _, seg := range ix.segs {
		snapEntries(seg.entries)
	}
	snapEntries(ix.delta)
	idMark := uint32(ix.n + ix.frozenEntries + len(ix.delta)) // ids below this existed at snapshot time
	snapDeleted := make(map[uint32]bool, ix.tombs.count())
	ix.tombs.each(func(id uint32) { snapDeleted[id] = true })
	opts := ix.opts
	ix.mu.RUnlock()

	if len(liveData) == 0 {
		return nil, fmt.Errorf("core: compact: %w", errs.ErrEmptyIndex)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2: build the next generation. Readers are not blocked. The
	// next index is private until the swap, so it must not start its own
	// flusher — ix's long-lived flusher adopts its segments at swap.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	opts.noFlusher = true
	next, err := Build(liveData, dir, opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		next.Close()
		return nil, err
	}

	// Phase 3: fold updates that arrived during the rebuild, then swap.
	oldToNew := make(map[uint32]uint32, len(oldIDs))
	for newID, oldID := range oldIDs {
		oldToNew[oldID] = uint32(newID)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		next.Close()
		return nil, errs.ErrClosed
	}
	var foldErr error
	ix.tombs.each(func(id uint32) {
		if foldErr != nil || snapDeleted[id] || id >= idMark {
			return // already folded out, or a during-rebuild insert handled below
		}
		newID := oldToNew[id] // deleted after the snapshot ⇒ live at it ⇒ mapped
		if !next.tombs.has(newID) {
			next.tombs = next.tombs.add(newID)
		}
	})
	remap := oldIDs
	foldEntries := func(entries []deltaEntry) {
		for _, e := range entries {
			if foldErr != nil || e.id < idMark || ix.tombs.has(e.id) {
				continue
			}
			// next is private to this call until the swap below, so its
			// lock is not needed; journaled=false — see insertLocked.
			newID, _, err := next.insertLocked(e.v, false)
			if err != nil {
				foldErr = err
				return
			}
			if int(newID) != len(remap) {
				foldErr = fmt.Errorf("core: compact: remap misaligned at new id %d", newID)
				return
			}
			remap = append(remap, e.id)
		}
	}
	// During-rebuild inserts may themselves have frozen into segments;
	// segments-then-delta preserves ascending id order.
	for _, seg := range ix.segs {
		foldEntries(seg.entries)
	}
	foldEntries(ix.delta)
	if foldErr != nil {
		next.Close()
		return nil, foldErr
	}

	// Durable handover, still under the exclusive lock: no search observes
	// the new generation and — crucially — no update can be acknowledged
	// into its journal before the generation pointer durably names it.
	if persist != nil {
		committed, err := persist(next)
		if err != nil && !committed {
			next.Close()
			return nil, err
		}
		if err != nil {
			// The pointer flip is visible but its durability is uncertain
			// (a directory fsync failed after the rename). The logical
			// on-disk state names the new generation, so the swap must
			// proceed; surface the error with the valid remap and let the
			// caller's next Save retry the fsync. Until that Save, a crash
			// could still recover the OLD generation — so under
			// FsyncAlways BOTH journals are poisoned: the old one first
			// (any updater still parked in its WaitDurable is refused
			// rather than acknowledged against a pointer that may not
			// survive a crash), then the new one after the swap, so
			// updates fail loudly instead of acknowledging a durability
			// promise the pointer cannot back yet. (FsyncNever acks never
			// promise crash durability, so they keep flowing.)
			if ix.journal != nil && ix.opts.Fsync == FsyncAlways {
				ix.journal.Poison(fmt.Errorf("generation pointer not durable: %w", err))
			}
			ix.swapLocked(next)
			if ix.journal != nil && ix.opts.Fsync == FsyncAlways {
				ix.journal.Poison(fmt.Errorf("generation pointer not durable: %w", err))
			}
			return remap, err
		}
		// Durable handover complete: every record in the OLD journal is
		// covered by the new generation's fsynced metadata (the snapshot
		// and the fold above took all of them in). Seal it so any updater
		// still waiting on its group fsync is acknowledged from the
		// metadata's durability instead of racing the Close in swapLocked.
		if ix.journal != nil {
			ix.journal.SealDurable()
		}
	}

	ix.swapLocked(next)
	return remap, nil
}

// swapLocked installs next's state into ix (caller holds ix.mu exclusive)
// and retires the old generation's handles.
func (ix *Index) swapLocked(next *Index) {
	oldRef, oldJournal := ix.ref, ix.journal
	ix.n, ix.m = next.n, next.m
	ix.proj = next.proj
	ix.idist, ix.orig = next.idist, next.orig
	ix.ref = next.ref
	ix.dir = next.dir
	ix.sketch = next.sketch
	ix.norm2Sq, ix.norm1, ix.codes, ix.groups = next.norm2Sq, next.norm1, next.codes, next.groups
	ix.maxNorm2Sq = next.maxNorm2Sq
	ix.delta, ix.tombs = next.delta, next.tombs
	ix.segs, ix.segSeq, ix.frozenEntries = next.segs, next.segSeq, next.frozenEntries
	ix.tombsSinceFreeze = next.tombsSinceFreeze
	// The journal swaps with the generation it lives in. The persist step
	// above already saved the new generation's metadata (covering the
	// folded updates — next's journal is empty) and flipped the pointer,
	// so from here every acknowledged update journals into the generation
	// a recovery would load. The OLD generation's journal stays on disk
	// untouched until the caller retires the generation's files.
	ix.journal = next.journal

	// The old generation is retired: release the Index's reference. Its
	// pages were synced at build time and never dirtied since, so closing
	// is best-effort — in-flight snapshots keep the files open until they
	// drain, and a close failure loses nothing (surfacing it would
	// misreport the swap, which already happened, as a failed compaction).
	oldRef.release()
	if oldJournal != nil {
		oldJournal.Close()
	}
	// Adopted segments (fold-phase freezes in next) need the flusher's
	// attention in the new directory.
	if len(ix.segs) > 0 {
		ix.kickFlusher()
	}
}
