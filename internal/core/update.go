package core

import (
	"context"
	"fmt"
	"os"

	"promips/internal/errs"
	"promips/internal/vec"
	"promips/internal/wal"
)

// Dynamic updates. The paper motivates the lightweight index with
// frequently-updated workloads ("in commonly used mobile devices or IoT
// devices, a huge amount of data will be frequently inserted or deleted in
// a short time", §I): a single B+-tree is cheap to maintain where hundreds
// of hash tables are not. This file adds the update path:
//
//   - Insert appends to an in-memory delta region that every query scans
//     exactly (the delta holds recent points, so the scan is small); the
//     probabilistic machinery is untouched because exact evaluation of the
//     delta can only improve the returned inner products.
//   - Delete tombstones a point. Tombstoned points are filtered from
//     candidate evaluation. If the deleted point was the max-norm point
//     oM, the stale (larger) ‖oM‖² keeps Conditions A and B conservative,
//     so the guarantee still holds.
//   - Compact folds delta and tombstones into a fresh on-disk generation
//     and swaps it into this Index in place; searches keep running against
//     the old generation during the rebuild and see the new one atomically.

// deltaEntry is one inserted point not yet folded into the disk index.
type deltaEntry struct {
	id  uint32
	v   []float32
	ip2 float64 // ‖v‖²
}

// Insert adds a point and returns its id. The point lives in the delta
// region until Compact is called. Insert takes the index lock exclusive
// only to SEQUENCE the update — write the journal record and apply the
// in-memory change — and releases it before waiting for durability, so it
// interleaves correctly with concurrent searches (each sees the state
// before or after the insert, never a partial one) and an updater's fsync
// never stalls readers. Under FsyncAlways the fsyncs are group-committed:
// concurrent inserts that overlap one fsync are all covered by the next,
// so N racing updaters pay ~2 fsyncs between them instead of N (see
// wal.Journal.WaitDurable).
//
// Durability: the record is journaled BEFORE the in-memory state changes,
// and the insert is acknowledged only once the journal says it is durable
// under its fsync policy. A successful return therefore means the insert
// survives a crash (FsyncAlways) or a clean shutdown (FsyncNever). On a
// journal WRITE failure neither memory nor disk took the update (the
// journal heals in place). On a group-FSYNC failure the insert is applied
// in memory but NOT acknowledged — it behaves like an un-acked update: a
// crash may or may not recover it, a later Save persists it — and the
// journal is poisoned (ErrJournalPoisoned) until a successful Save
// re-establishes durability through the metadata path. Inserting into a
// closed index returns ErrClosed.
func (ix *Index) Insert(v []float32) (uint32, error) {
	if len(v) != ix.d {
		return 0, fmt.Errorf("core: %w: insert dim %d, want %d", errs.ErrDimMismatch, len(v), ix.d)
	}
	ix.mu.Lock()
	id, lsn, err := ix.insertLocked(v, true)
	j := ix.journal
	ix.mu.Unlock()
	if err != nil {
		return 0, err
	}
	// The durability wait runs OUTSIDE the index lock: searches proceed
	// against the already-applied update while the disk catches up, and
	// every concurrent updater parked here is acknowledged by the same
	// group fsync.
	if lsn > 0 {
		if err := j.WaitDurable(lsn); err != nil {
			return 0, fmt.Errorf("core: insert: %w", err)
		}
	}
	return id, nil
}

// insertLocked is Insert's sequencing half; the caller holds ix.mu
// exclusive. It writes the journal record, applies the in-memory change,
// and returns the record's LSN — the caller waits for durability on it
// AFTER releasing the lock (lsn 0 means nothing to wait for: the journal
// is off, buffered, or journaled=false). Compact's fold phase inserts with
// journaled=false: the folded records were acknowledged (and journaled) in
// the generation being replaced, which stays the durable one until the
// handover commits, and the new generation's metadata is persisted —
// covering them — within the same exclusive section, so journaling them
// again would buy nothing and cost one fsync each.
func (ix *Index) insertLocked(v []float32, journaled bool) (uint32, int64, error) {
	if ix.closed {
		return 0, 0, errs.ErrClosed
	}
	id := uint32(ix.n + len(ix.delta))
	clone := vec.Clone(v)
	var lsn int64
	if journaled && ix.journal != nil {
		// Write-ahead: if the record cannot be WRITTEN, the insert is not
		// acknowledged and memory is untouched. The journal heals (or
		// poisons itself) so the failed bytes can never precede a later
		// record; the id is not burned — the next insert reuses it, and by
		// then either the journal healed (the failed record is gone) or it
		// is poisoned (no later record can follow the garbage). The journal
		// gets the private clone, not the caller's slice: under FsyncNever
		// it retains the vector until a batched flush, and the delta never
		// mutates it.
		l, err := ix.journal.Append(wal.Record{Type: wal.TypeInsert, ID: id, Vec: clone})
		if err != nil {
			return 0, 0, fmt.Errorf("core: insert: %w", err)
		}
		lsn = l
	}
	n2 := vec.Norm2Sq(v)
	ix.delta = append(ix.delta, deltaEntry{id: id, v: clone, ip2: n2})
	if n2 > ix.maxNorm2Sq {
		// A new max-norm point tightens nothing but must be respected:
		// Condition A's proof requires ‖oM‖ to bound every live norm.
		ix.maxNorm2Sq = n2
	}
	return id, lsn, nil
}

// Delete tombstones the point with the given id (from the base index or
// the delta). It reports whether the id was live. Like Insert, it takes the
// index lock exclusive. Deleting from a closed index reports false; use
// DeleteChecked to distinguish "absent" from "closed" or a journal
// failure.
func (ix *Index) Delete(id uint32) bool {
	ok, _ := ix.DeleteChecked(id)
	return ok
}

// DeleteChecked is Delete with a typed error: (false, ErrClosed) on a
// closed index, (false, journal error) when the tombstone could not be
// logged, and (false, nil) when the id was simply absent or already
// deleted. Journaling follows the same write-ahead and group-commit
// discipline as Insert: the record write and the in-memory tombstone are
// sequenced under the exclusive lock, the fsync wait happens after it is
// released. On a journal WRITE failure the delete is NOT applied; on a
// group-FSYNC failure it is applied in memory but NOT acknowledged
// (false, ErrJournalPoisoned-wrapped error) — like an un-acked update, a
// crash may or may not recover it and a later Save persists it.
func (ix *Index) DeleteChecked(id uint32) (bool, error) {
	ix.mu.Lock()
	if ix.closed {
		ix.mu.Unlock()
		return false, errs.ErrClosed
	}
	if int(id) >= ix.n+len(ix.delta) || ix.deleted[id] {
		ix.mu.Unlock()
		return false, nil
	}
	var lsn int64
	if ix.journal != nil {
		l, err := ix.journal.Append(wal.Record{Type: wal.TypeDelete, ID: id})
		if err != nil {
			ix.mu.Unlock()
			return false, fmt.Errorf("core: delete: %w", err)
		}
		lsn = l
	}
	if ix.deleted == nil {
		ix.deleted = make(map[uint32]bool)
	}
	ix.deleted[id] = true
	j := ix.journal
	ix.mu.Unlock()
	if lsn > 0 {
		if err := j.WaitDurable(lsn); err != nil {
			return false, fmt.Errorf("core: delete: %w", err)
		}
	}
	return true, nil
}

// LiveCount returns the number of live (non-tombstoned) points.
func (ix *Index) LiveCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.liveCountLocked()
}

func (ix *Index) liveCountLocked() int { return ix.n + len(ix.delta) - len(ix.deleted) }

// NextID returns the id the next Insert would assign (base points plus
// delta entries; ids are dense and tombstones never free one). Routers —
// promips/shard's least-next-id shard assignment — use it to keep a
// composed id space dense without reaching into the update state.
func (ix *Index) NextID() uint32 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return uint32(ix.n + len(ix.delta))
}

// DeltaCount returns the number of points awaiting compaction.
func (ix *Index) DeltaCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.delta)
}

// scanDelta offers every live delta point accepted by the query's filter to
// the accumulator (exact evaluation; no disk I/O). params may be nil for an
// unfiltered scan.
func (ix *Index) scanDelta(q []float32, top *topK, params *SearchParams) {
	for _, e := range ix.delta {
		if ix.deleted[e.id] {
			continue
		}
		if params != nil && !params.accepts(e.id) {
			continue
		}
		top.offer(e.id, vec.Dot(e.v, q))
	}
}

// live reports whether a base-index candidate id should be considered.
func (ix *Index) live(id uint32) bool {
	return len(ix.deleted) == 0 || !ix.deleted[id]
}

// Compact rebuilds the index into dir — folding the insert delta in and
// dropping tombstoned points — and swaps the new generation into ix in
// place. Ids are reassigned densely (0..Len-1); remap[newID] gives the
// previous id so callers can relocate external references.
//
// The rebuild runs without the exclusive lock: concurrent searches keep
// answering against the old generation, and updates that land during the
// rebuild are folded in during the brief exclusive swap phase (inserts move
// into the new generation's delta, deletes are re-applied through the id
// remap). The old generation's page files are closed but not removed; the
// caller owns directory hygiene.
//
// persist, when non-nil, runs inside the exclusive section after the fold
// and BEFORE the in-memory swap: it must make the new generation durable
// (save its metadata, flip the caller's generation pointer). Running it
// under the lock is what keeps the write-ahead guarantee across
// compaction — no update can be acknowledged into the new generation's
// journal until the pointer durably names that generation, so a crash at
// any instant recovers a generation together with the journal holding its
// acknowledged updates. persist returns committed=true once the pointer
// flip is visible (even if making it durable then failed): from that
// point the swap must proceed — the on-disk logical state already names
// the new generation — and Compact returns the valid remap alongside the
// error.
//
// Cancellation is honored between the snapshot, build and swap phases; on
// ctx expiry the index is left untouched and partially written files in dir
// are the caller's to clean up.
//
// Error contract: error with a nil remap means nothing happened — ix is
// untouched, still serving (and journaling into) the old generation, and
// nothing references dir. A nil error (or the committed-corner error
// above, with a non-nil remap) means the new generation is live in ix.
func (ix *Index) Compact(ctx context.Context, dir string, persist func(next *Index) (committed bool, err error)) ([]uint32, error) {
	// Phase 1: snapshot the live set under the shared lock.
	ix.mu.RLock()
	if ix.closed {
		ix.mu.RUnlock()
		return nil, errs.ErrClosed
	}
	liveData := make([][]float32, 0, ix.liveCountLocked())
	oldIDs := make([]uint32, 0, ix.liveCountLocked())
	buf := make([]float32, ix.d)
	for pos := 0; pos < ix.n; pos++ {
		id := ix.idist.Layout()[pos]
		if !ix.live(id) {
			continue
		}
		o, err := ix.orig.VectorAt(pos, buf, nil)
		if err != nil {
			ix.mu.RUnlock()
			return nil, err
		}
		liveData = append(liveData, vec.Clone(o))
		oldIDs = append(oldIDs, id)
	}
	for _, e := range ix.delta {
		if ix.deleted[e.id] {
			continue
		}
		liveData = append(liveData, vec.Clone(e.v))
		oldIDs = append(oldIDs, e.id)
	}
	idMark := uint32(ix.n + len(ix.delta)) // ids below this existed at snapshot time
	snapDeleted := make(map[uint32]bool, len(ix.deleted))
	for id := range ix.deleted {
		snapDeleted[id] = true
	}
	opts := ix.opts
	ix.mu.RUnlock()

	if len(liveData) == 0 {
		return nil, fmt.Errorf("core: compact: %w", errs.ErrEmptyIndex)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2: build the next generation. Readers are not blocked.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	next, err := Build(liveData, dir, opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		next.Close()
		return nil, err
	}

	// Phase 3: fold updates that arrived during the rebuild, then swap.
	oldToNew := make(map[uint32]uint32, len(oldIDs))
	for newID, oldID := range oldIDs {
		oldToNew[oldID] = uint32(newID)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		next.Close()
		return nil, errs.ErrClosed
	}
	for id := range ix.deleted {
		if snapDeleted[id] || id >= idMark {
			continue // already folded out, or a during-rebuild insert handled below
		}
		newID := oldToNew[id] // deleted after the snapshot ⇒ live at it ⇒ mapped
		if next.deleted == nil {
			next.deleted = make(map[uint32]bool)
		}
		next.deleted[newID] = true
	}
	remap := oldIDs
	for _, e := range ix.delta {
		if e.id < idMark || ix.deleted[e.id] {
			continue
		}
		// next is private to this call until the swap below, so its lock is
		// not needed; journaled=false — see insertLocked.
		newID, _, err := next.insertLocked(e.v, false)
		if err != nil {
			next.Close()
			return nil, err
		}
		if int(newID) != len(remap) {
			next.Close()
			return nil, fmt.Errorf("core: compact: remap misaligned at new id %d", newID)
		}
		remap = append(remap, e.id)
	}

	// Durable handover, still under the exclusive lock: no search observes
	// the new generation and — crucially — no update can be acknowledged
	// into its journal before the generation pointer durably names it.
	if persist != nil {
		committed, err := persist(next)
		if err != nil && !committed {
			next.Close()
			return nil, err
		}
		if err != nil {
			// The pointer flip is visible but its durability is uncertain
			// (a directory fsync failed after the rename). The logical
			// on-disk state names the new generation, so the swap must
			// proceed; surface the error with the valid remap and let the
			// caller's next Save retry the fsync. Until that Save, a crash
			// could still recover the OLD generation — so under
			// FsyncAlways BOTH journals are poisoned: the old one first
			// (any updater still parked in its WaitDurable is refused
			// rather than acknowledged against a pointer that may not
			// survive a crash), then the new one after the swap, so
			// updates fail loudly instead of acknowledging a durability
			// promise the pointer cannot back yet. (FsyncNever acks never
			// promise crash durability, so they keep flowing.)
			if ix.journal != nil && ix.opts.Fsync == FsyncAlways {
				ix.journal.Poison(fmt.Errorf("generation pointer not durable: %w", err))
			}
			ix.swapLocked(next)
			if ix.journal != nil && ix.opts.Fsync == FsyncAlways {
				ix.journal.Poison(fmt.Errorf("generation pointer not durable: %w", err))
			}
			return remap, err
		}
		// Durable handover complete: every record in the OLD journal is
		// covered by the new generation's fsynced metadata (the snapshot
		// and the fold above took all of them in). Seal it so any updater
		// still waiting on its group fsync is acknowledged from the
		// metadata's durability instead of racing the Close in swapLocked.
		if ix.journal != nil {
			ix.journal.SealDurable()
		}
	}

	ix.swapLocked(next)
	return remap, nil
}

// swapLocked installs next's state into ix (caller holds ix.mu exclusive)
// and retires the old generation's handles.
func (ix *Index) swapLocked(next *Index) {
	oldIdist, oldOrig, oldJournal := ix.idist, ix.orig, ix.journal
	ix.n, ix.m = next.n, next.m
	ix.proj = next.proj
	ix.idist, ix.orig = next.idist, next.orig
	ix.sketch = next.sketch
	ix.norm2Sq, ix.norm1, ix.codes, ix.groups = next.norm2Sq, next.norm1, next.codes, next.groups
	ix.maxNorm2Sq = next.maxNorm2Sq
	ix.delta, ix.deleted = next.delta, next.deleted
	// The journal swaps with the generation it lives in. The persist step
	// above already saved the new generation's metadata (covering the
	// folded updates — next's journal is empty) and flipped the pointer,
	// so from here every acknowledged update journals into the generation
	// a recovery would load. The OLD generation's journal stays on disk
	// untouched until the caller retires the generation's files.
	ix.journal = next.journal

	// The old generation is retired: close best-effort. Its pages were
	// synced at build time and never dirtied since, so a close failure
	// loses nothing — and surfacing it would misreport the swap (which
	// already happened) as a failed compaction, breaking the error
	// contract above.
	oldIdist.Close()
	oldOrig.Close()
	if oldJournal != nil {
		oldJournal.Close()
	}
}
