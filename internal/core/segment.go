package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"slices"
	"sync/atomic"
	"time"

	"promips/internal/errs"
	"promips/internal/fsutil"
	"promips/internal/idistance"
	"promips/internal/pq"
	"promips/internal/randproj"
	"promips/internal/store"
	"promips/internal/vec"
	"promips/internal/wal"
)

// LSM-flavored update pipeline. The mutable delta used to grow without
// bound between compactions, and every Insert serialized behind one
// exclusive lock held across its norm/clone work while searches held the
// same lock shared for their whole run. This file restructures that:
//
//   - At SegmentEntries inserts the mutable delta FREEZES into an
//     immutable segment — a pure pointer move under the already-held
//     exclusive lock, no I/O. Frozen segments stay searchable exactly like
//     the delta (their entries are scanned with exact inner products).
//   - A background flusher writes each frozen segment to its own
//     seg-NNNNNN.seg file (journal record format, atomic rename) OFF the
//     index lock, then marks the journal records up to the segment's
//     freeze watermark as covered. The wal.log stays the recovery source
//     of truth — seg files only let JournalLen report what a recovery
//     would actually need and give compaction a durability watermark.
//   - Searches run against a SNAPSHOT captured under a brief RLock —
//     generation handles (refcounted so Compact/Close cannot close pages
//     under a running query), the delta and segment slices, and a
//     copy-on-write tombstone view — and then never touch the lock again,
//     so updates no longer block in-flight searches and vice versa.

// segment is one frozen, immutable slice of the update delta, plus the
// tombstones recorded in the window that ended at its freeze. entries and
// tombs are never mutated after publication; the flags are the only
// post-publication writes.
type segment struct {
	entries []deltaEntry // frozen delta, ids dense and ascending
	tombs   []uint32     // tombstones recorded since the previous freeze
	walMark int64        // journal record count at freeze: every record ≤ walMark is reflected in segments up to and including this one
	seq     int          // seg file sequence number (seg-%06d.seg)

	flushed   atomic.Bool // seg file durable on disk
	persisted atomic.Bool // folded into promips.meta by Save; the seg file is now replay-skipped garbage
}

// segFileName names the flush file of segment sequence seq.
func segFileName(seq int) string { return fmt.Sprintf("seg-%06d.seg", seq) }

// segFilePattern matches flush files for directory scans and hygiene.
const segFilePattern = "seg-*.seg"

// tombSet is the copy-on-write tombstone set. frozen is immutable once
// published (readers access it lock-free from snapshots); recent is
// append-only under the exclusive lock, and readers only ever see a slice
// header captured under the read lock — appends land beyond that header's
// length or in a reallocated backing array, never in view. When recent
// outgrows tombFoldLimit the whole set folds into a fresh frozen map and
// the Index swaps the pointer, so membership stays O(1) amortized while a
// snapshot's view costs two pointer copies.
type tombSet struct {
	frozen map[uint32]bool
	recent []uint32
}

// tombFoldLimit bounds the linear-scanned recent tail.
const tombFoldLimit = 64

// add records id as deleted and returns the set the Index should publish
// (the receiver, or a folded replacement). Caller holds the exclusive
// lock and has checked !has(id).
func (t *tombSet) add(id uint32) *tombSet {
	if len(t.recent) >= tombFoldLimit {
		nf := make(map[uint32]bool, len(t.frozen)+len(t.recent)+1)
		for k := range t.frozen {
			nf[k] = true
		}
		for _, k := range t.recent {
			nf[k] = true
		}
		nf[id] = true
		return &tombSet{frozen: nf}
	}
	t.recent = append(t.recent, id)
	return t
}

// has reports membership against the full current set. Caller holds the
// index lock (shared or exclusive); lock-free readers use their
// snapshot's captured view instead.
func (t *tombSet) has(id uint32) bool {
	return t.frozen[id] || slices.Contains(t.recent, id)
}

// count is the number of tombstones (frozen and recent are disjoint by
// construction — add is only called on ids not yet present).
func (t *tombSet) count() int { return len(t.frozen) + len(t.recent) }

// each calls fn for every tombstoned id. Caller holds the index lock.
func (t *tombSet) each(fn func(id uint32)) {
	for id := range t.frozen {
		fn(id)
	}
	for _, id := range t.recent {
		fn(id)
	}
}

// genRef refcounts one disk generation's page-file handles. The Index
// holds the initial reference; every snapshot acquires one more. The
// files close exactly when the count reaches zero — after the Index has
// retired the generation (Compact swap or Close) AND the last in-flight
// snapshot released — so a lock-free search can never read a closed page
// file, and Close keeps its "blocks until in-flight queries finish"
// semantics by waiting on done.
type genRef struct {
	idist    *idistance.Index
	orig     *store.Store
	refs     atomic.Int64
	closeErr error
	done     chan struct{}
}

func newGenRef(idist *idistance.Index, orig *store.Store) *genRef {
	g := &genRef{idist: idist, orig: orig, done: make(chan struct{})}
	g.refs.Store(1)
	return g
}

func (g *genRef) acquire() { g.refs.Add(1) }

// release drops one reference, closing the files on the last one. The
// initial (Index-owned) reference is released under the exclusive lock,
// and acquire only runs under the read lock on a non-retired generation,
// so the count can never resurrect from zero.
func (g *genRef) release() {
	if g.refs.Add(-1) != 0 {
		return
	}
	err := g.idist.Close()
	if err2 := g.orig.Close(); err == nil {
		err = err2
	}
	g.closeErr = err
	close(g.done)
}

// snapshot is one consistent, immutable view of the queryable state,
// captured under a brief RLock. Everything a query reads lives here: the
// generation's disk structures (pinned via ref), the per-point arrays,
// the mutable-delta and frozen-segment slices as they stood at capture,
// and the tombstone view (frozen map pointer + recent slice header). A
// query against a snapshot sees exactly the states an RLock-held search
// used to see — the state at acquisition — without excluding writers for
// its duration. release must be called exactly once (searches defer it).
type snapshot struct {
	ref    *genRef
	proj   *randproj.Projector
	idist  *idistance.Index
	orig   *store.Store
	sketch *pq.Sketch

	norm2Sq []float64
	norm1   []float64
	codes   []uint32
	groups  []group

	n, d, m    int
	maxNorm2Sq float64
	optC, optP float64

	delta      []deltaEntry
	segs       []*segment
	frozenLen  int // total entries across segs
	tombFrozen map[uint32]bool
	tombRecent []uint32
}

// snapshot captures the current queryable state under a short read lock
// and pins the generation's files. ErrClosed after Close.
func (ix *Index) snapshot() (*snapshot, error) {
	ix.mu.RLock()
	if ix.closed {
		ix.mu.RUnlock()
		return nil, errs.ErrClosed
	}
	sn := &snapshot{
		ref: ix.ref, proj: ix.proj, idist: ix.idist, orig: ix.orig, sketch: ix.sketch,
		norm2Sq: ix.norm2Sq, norm1: ix.norm1, codes: ix.codes, groups: ix.groups,
		n: ix.n, d: ix.d, m: ix.m,
		maxNorm2Sq: ix.maxNorm2Sq,
		optC:       ix.opts.C, optP: ix.opts.P,
		delta: ix.delta, segs: ix.segs, frozenLen: ix.frozenEntries,
		tombFrozen: ix.tombs.frozen, tombRecent: ix.tombs.recent,
	}
	sn.ref.acquire()
	ix.mu.RUnlock()
	return sn, nil
}

func (sn *snapshot) release() { sn.ref.release() }

// live reports whether id is untombstoned in this view.
func (sn *snapshot) live(id uint32) bool {
	return !sn.tombFrozen[id] && !slices.Contains(sn.tombRecent, id)
}

// liveCount is the number of live points in this view.
func (sn *snapshot) liveCount() int {
	return sn.n + sn.frozenLen + len(sn.delta) - len(sn.tombFrozen) - len(sn.tombRecent)
}

// scanMem offers every live in-memory point (frozen segments and the
// mutable delta) accepted by the query's filter to the accumulator —
// exact evaluation, no disk I/O. params may be nil for an unfiltered
// scan.
func (sn *snapshot) scanMem(q []float32, top *topK, params *SearchParams) {
	scan := func(entries []deltaEntry) {
		for _, e := range entries {
			if !sn.live(e.id) {
				continue
			}
			if params != nil && !params.accepts(e.id) {
				continue
			}
			top.offer(e.id, vec.Dot(e.v, q))
		}
	}
	for _, seg := range sn.segs {
		scan(seg.entries)
	}
	scan(sn.delta)
}

// maybeFreezeLocked freezes the mutable delta into a segment when it has
// reached the configured size. Caller holds ix.mu exclusive.
func (ix *Index) maybeFreezeLocked() {
	if ix.segLimit > 0 && len(ix.delta) >= ix.segLimit {
		ix.freezeLocked()
	}
}

// freezeLocked turns the whole mutable delta into an immutable segment: a
// pointer move, no I/O, no copying. The tombstones recorded since the
// last freeze ride along so the segment's flush file replays the full
// update window. Caller holds ix.mu exclusive and len(ix.delta) > 0.
func (ix *Index) freezeLocked() {
	seg := &segment{entries: ix.delta, tombs: ix.tombsSinceFreeze, seq: ix.segSeq}
	if ix.journal != nil {
		seg.walMark = int64(ix.journal.Len())
	}
	ix.segSeq++
	ix.segs = append(ix.segs, seg)
	ix.frozenEntries += len(seg.entries)
	ix.delta = nil
	ix.tombsSinceFreeze = nil
	ix.freezes.Add(1)
	ix.kickFlusher()
}

// errNoSegment is flushOneSegment's "nothing to do" sentinel.
var errNoSegment = errors.New("core: no unflushed segment")

// flushOneSegment writes the oldest unflushed, unpersisted segment to its
// seg file and marks the journal coverage. It captures the segment and
// generation identity under a read lock, does the write with NO lock
// held, and re-validates under the exclusive lock before marking — if
// Compact swapped generations mid-write the work is discarded (the file
// lands in the retired generation's directory and is swept with it).
func (ix *Index) flushOneSegment() error {
	ix.mu.RLock()
	if ix.closed {
		ix.mu.RUnlock()
		return errNoSegment
	}
	var seg *segment
	for _, s := range ix.segs {
		if !s.flushed.Load() && !s.persisted.Load() {
			seg = s
			break
		}
	}
	if seg == nil {
		ix.mu.RUnlock()
		return errNoSegment
	}
	ref, j, dir := ix.ref, ix.journal, ix.dir
	fsys := ix.opts.fsys()
	ix.mu.RUnlock()

	recs := make([]wal.Record, 0, len(seg.entries)+len(seg.tombs))
	for _, e := range seg.entries {
		recs = append(recs, wal.Record{Type: wal.TypeInsert, ID: e.id, Vec: e.v})
	}
	// Inserts first, then the window's deletes: a delete may target an id
	// inserted in the same window, and replay range-checks targets.
	for _, id := range seg.tombs {
		recs = append(recs, wal.Record{Type: wal.TypeDelete, ID: id})
	}
	enc := wal.EncodeLog(recs)
	path := filepath.Join(dir, segFileName(seg.seq))
	err := fsutil.WriteAtomic(fsys, path, func(f fsutil.File) error {
		_, werr := f.Write(enc)
		return werr
	})
	if err == nil {
		err = fsutil.SyncDir(fsys, dir)
	}
	if err != nil {
		ix.flushFailures.Add(1)
		return fmt.Errorf("core: flush segment %d: %w", seg.seq, err)
	}

	ix.mu.Lock()
	// ref doubles as the generation identity: a swap while we wrote means
	// the segment (and its walMark) belong to the retired generation.
	if ix.ref == ref && !ix.closed && !seg.persisted.Load() {
		seg.flushed.Store(true)
		ix.flushes.Add(1)
		if j != nil {
			j.MarkCovered(seg.walMark)
		}
	}
	ix.mu.Unlock()
	return nil
}

// flushPendingSegments flushes until no unflushed segment remains — the
// synchronous path (syncSegFlush mode, and OpenFS's post-replay freeze).
func (ix *Index) flushPendingSegments() error {
	for {
		err := ix.flushOneSegment()
		if err == errNoSegment {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// startFlusher launches the background segment flusher. Not started when
// segmenting is disabled, in synchronous-flush mode (tests that need
// deterministic filesystem op counts), or for the private next-generation
// index Compact builds — the long-lived Index's own flusher adopts that
// generation's segments at swap.
func (ix *Index) startFlusher() {
	if ix.segLimit <= 0 || ix.opts.syncSegFlush || ix.opts.noFlusher {
		return
	}
	ix.flusherKick = make(chan struct{}, 1)
	ix.flusherStop = make(chan struct{})
	ix.flusherDone.Add(1)
	go func() {
		defer ix.flusherDone.Done()
		for {
			select {
			case <-ix.flusherStop:
				return
			case <-ix.flusherKick:
			}
			for {
				err := ix.flushOneSegment()
				if err == errNoSegment {
					break
				}
				if err != nil {
					// Transient (disk full, a fault seam): retry after a
					// pause, bailing out promptly on Close.
					select {
					case <-ix.flusherStop:
						return
					case <-time.After(flushRetryDelay):
					}
				}
			}
		}
	}()
	// Cover segments frozen before the flusher existed (OpenFS replay).
	ix.kickFlusher()
}

// flushRetryDelay paces flusher retries after a failed segment write.
const flushRetryDelay = 50 * time.Millisecond

// kickFlusher nudges the background flusher; a no-op when it is not
// running (synchronous mode flushes inline) or already signaled.
func (ix *Index) kickFlusher() {
	if ix.flusherKick == nil {
		return
	}
	select {
	case ix.flusherKick <- struct{}{}:
	default:
	}
}

// stopFlusher terminates the background flusher and waits it out.
// Idempotent; safe when the flusher never started.
func (ix *Index) stopFlusher() {
	ix.flusherStopOnce.Do(func() {
		if ix.flusherStop != nil {
			close(ix.flusherStop)
		}
	})
	ix.flusherDone.Wait()
}

// UpdateStats describes the update pipeline's state and lifetime
// counters.
type UpdateStats struct {
	// DeltaEntries is the size of the mutable delta (inserts since the
	// last freeze).
	DeltaEntries int `json:"delta_entries"`
	// Segments is the number of frozen in-memory segments awaiting
	// compaction (persisted ones included until a Compact folds them).
	Segments int `json:"segments"`
	// SegmentEntries is the total entry count across those segments.
	SegmentEntries int `json:"segment_entries"`
	// FlushedSegments is how many of them are durable in their own seg
	// file — the watermark automatic compaction triggers on.
	FlushedSegments int `json:"flushed_segments"`
	// Tombstones is the live tombstone count.
	Tombstones int `json:"tombstones"`
	// Freezes and Flushes count delta freezes and durable segment flushes
	// over the index's lifetime; FlushFailures counts flush attempts that
	// failed (each is retried).
	Freezes       int64 `json:"freezes"`
	Flushes       int64 `json:"flushes"`
	FlushFailures int64 `json:"flush_failures"`
}

// UpdateStats reports the update pipeline's current state.
func (ix *Index) UpdateStats() UpdateStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := UpdateStats{
		DeltaEntries:   len(ix.delta),
		Segments:       len(ix.segs),
		SegmentEntries: ix.frozenEntries,
		Tombstones:     ix.tombs.count(),
		Freezes:        ix.freezes.Load(),
		Flushes:        ix.flushes.Load(),
		FlushFailures:  ix.flushFailures.Load(),
	}
	for _, s := range ix.segs {
		if s.flushed.Load() || s.persisted.Load() {
			st.FlushedSegments++
		}
	}
	return st
}
