package core

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"promips/internal/errs"
	"promips/internal/vec"
)

func TestInsertVisibleImmediately(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	data := randData(r, 500, 12)
	ix := buildIndex(t, data, Options{Seed: 42, M: 5})

	q := randData(r, 1, 12)[0]
	// Insert a point that dominates every inner product with q.
	big := vec.Scale(q, 10)
	id, err := ix.Insert(big)
	if err != nil {
		t.Fatal(err)
	}
	if id != 500 {
		t.Fatalf("inserted id = %d, want 500", id)
	}
	res, _, err := ix.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != id {
		t.Fatalf("dominant inserted point not returned: got %d", res[0].ID)
	}
	if ix.LiveCount() != 501 || ix.DeltaCount() != 1 {
		t.Fatalf("counts = %d live, %d delta", ix.LiveCount(), ix.DeltaCount())
	}
}

func TestInsertDimMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	ix := buildIndex(t, randData(r, 100, 8), Options{Seed: 44, M: 4})
	if _, err := ix.Insert(make([]float32, 7)); err == nil {
		t.Fatal("expected dim mismatch error")
	}
}

func TestDeleteExcludesFromResults(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	data := randData(r, 400, 10)
	ix := buildIndex(t, data, Options{Seed: 46, M: 4})
	q := randData(r, 1, 10)[0]
	res, _, err := ix.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	top := res[0].ID
	if !ix.Delete(top) {
		t.Fatal("delete of live id returned false")
	}
	if ix.Delete(top) {
		t.Fatal("double delete returned true")
	}
	if ix.Delete(9999) {
		t.Fatal("delete of unknown id returned true")
	}
	res2, _, err := ix.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range res2 {
		if rr.ID == top {
			t.Fatal("deleted point still returned")
		}
	}
	// Exact must agree.
	ex, err := ix.Exact(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range ex {
		if rr.ID == top {
			t.Fatal("deleted point returned by Exact")
		}
	}
}

func TestDeleteInsertedPoint(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	data := randData(r, 200, 8)
	ix := buildIndex(t, data, Options{Seed: 48, M: 4})
	q := randData(r, 1, 8)[0]
	id, _ := ix.Insert(vec.Scale(q, 10))
	if !ix.Delete(id) {
		t.Fatal("delete of delta point failed")
	}
	res, _, err := ix.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID == id {
		t.Fatal("deleted delta point still returned")
	}
}

func TestGuaranteeHoldsUnderChurn(t *testing.T) {
	r := rand.New(rand.NewSource(49))
	data := randData(r, 800, 12)
	ix := buildIndex(t, data, Options{Seed: 50, C: 0.9, P: 0.9, M: 5})
	// Churn: delete 100 random points, insert 150 fresh ones.
	for i := 0; i < 100; i++ {
		ix.Delete(uint32(r.Intn(800)))
	}
	fresh := randData(r, 150, 12)
	for _, v := range fresh {
		if _, err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	ok, trials := 0, 25
	for trial := 0; trial < trials; trial++ {
		q := randData(r, 1, 12)[0]
		res, _, err := ix.Search(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := ix.Exact(context.Background(), q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ex[0].IP <= 0 || res[0].IP >= 0.9*ex[0].IP {
			ok++
		}
	}
	if frac := float64(ok) / float64(trials); frac < 0.8 {
		t.Fatalf("guarantee under churn: success rate %.2f", frac)
	}
}

func TestCompact(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	data := randData(r, 300, 10)
	ix := buildIndex(t, data, Options{Seed: 52, M: 4})
	q := randData(r, 1, 10)[0]

	ix.Delete(5)
	ix.Delete(7)
	insID, _ := ix.Insert(vec.Scale(q, 8))

	before, err := ix.Exact(context.Background(), q, 3)
	if err != nil {
		t.Fatal(err)
	}

	oldIDs, err := ix.Compact(context.Background(), filepath.Join(t.TempDir(), "compacted"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 299 { // 300 − 2 deleted + 1 inserted
		t.Fatalf("compacted size = %d, want 299", ix.Len())
	}
	if len(oldIDs) != 299 {
		t.Fatalf("old-id mapping has %d entries", len(oldIDs))
	}
	if ix.DeltaCount() != 0 {
		t.Fatalf("delta not folded: %d entries remain", ix.DeltaCount())
	}
	// The dominant inserted point must survive compaction under some new id.
	after, err := ix.Exact(context.Background(), q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if before[0].IP != after[0].IP {
		t.Fatalf("top IP changed across compaction: %v vs %v", before[0].IP, after[0].IP)
	}
	if oldIDs[after[0].ID] != insID {
		t.Fatalf("old-id mapping broken: new %d -> old %d, want %d", after[0].ID, oldIDs[after[0].ID], insID)
	}
	// Deleted points must be gone.
	for _, old := range oldIDs {
		if old == 5 || old == 7 {
			t.Fatal("deleted id survived compaction")
		}
	}
}

// Updates that land between Compact's snapshot and its swap must not be
// lost: here they are simulated by compacting, then immediately verifying
// that post-compaction inserts and deletes behave on the swapped-in
// generation (ids restart densely, the delta accepts new points).
func TestCompactThenUpdate(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	data := randData(r, 200, 8)
	ix := buildIndex(t, data, Options{Seed: 56, M: 4})
	q := randData(r, 1, 8)[0]

	ix.Delete(3)
	if _, err := ix.Compact(context.Background(), filepath.Join(t.TempDir(), "gen1"), nil); err != nil {
		t.Fatal(err)
	}
	if got := ix.LiveCount(); got != 199 {
		t.Fatalf("live after compact = %d", got)
	}
	id, err := ix.Insert(vec.Scale(q, 12))
	if err != nil {
		t.Fatal(err)
	}
	if id != 199 {
		t.Fatalf("post-compact insert id = %d, want 199", id)
	}
	res, _, err := ix.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != id {
		t.Fatalf("dominant post-compact insert not returned: got %d", res[0].ID)
	}
	// A second compaction folds the new delta too.
	remap, err := ix.Compact(context.Background(), filepath.Join(t.TempDir(), "gen2"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(remap) != 200 || ix.DeltaCount() != 0 {
		t.Fatalf("second compact: remap=%d delta=%d", len(remap), ix.DeltaCount())
	}
}

func TestCompactCancelled(t *testing.T) {
	r := rand.New(rand.NewSource(57))
	data := randData(r, 100, 6)
	ix := buildIndex(t, data, Options{Seed: 58, M: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.Compact(ctx, t.TempDir(), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled compact returned %v", err)
	}
	// The index must be untouched and fully usable.
	if ix.Len() != 100 {
		t.Fatalf("len changed after cancelled compact: %d", ix.Len())
	}
	if _, _, err := ix.Search(randData(r, 1, 6)[0], 1); err != nil {
		t.Fatal(err)
	}
}

func TestCompactEmptyFails(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	data := randData(r, 10, 6)
	ix := buildIndex(t, data, Options{Seed: 54, M: 4})
	for id := uint32(0); id < 10; id++ {
		ix.Delete(id)
	}
	if _, err := ix.Compact(context.Background(), t.TempDir(), nil); !errors.Is(err, errs.ErrEmptyIndex) {
		t.Fatalf("compacting fully-deleted index returned %v, want ErrEmptyIndex", err)
	}
	if _, _, err := ix.Search(randData(r, 1, 6)[0], 1); !errors.Is(err, errs.ErrEmptyIndex) {
		t.Fatalf("searching fully-deleted index returned %v, want ErrEmptyIndex", err)
	}
}

// TestExactCancelled: Exact honors context cancellation — a pre-cancelled
// context returns ctx.Err() without scanning, and the index stays usable.
func TestExactCancelled(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	data := randData(r, 100, 6)
	ix := buildIndex(t, data, Options{Seed: 60, M: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.Exact(ctx, data[0], 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled exact returned %v, want context.Canceled", err)
	}
	if res, err := ix.Exact(context.Background(), data[0], 3); err != nil || len(res) != 3 {
		t.Fatalf("exact after cancelled call: res=%d err=%v", len(res), err)
	}
}
