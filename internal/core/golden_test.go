package core

import (
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"promips/internal/dataset"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/search_golden.json from the current implementation")

// goldenResult is one result with its inner product as exact float64 bits,
// so the comparison is bit-level, not within-epsilon.
type goldenResult struct {
	ID     uint32 `json:"id"`
	IPBits uint64 `json:"ip_bits"`
}

// goldenStats is the comparable subset of SearchStats (radii as float bits).
type goldenStats struct {
	Candidates    int    `json:"candidates"`
	PageAccesses  int64  `json:"page_accesses"`
	GroupsProbed  int    `json:"groups_probed"`
	RadiusBits    uint64 `json:"radius_bits"`
	ExtRadiusBits uint64 `json:"ext_radius_bits"`
	TerminatedBy  string `json:"terminated_by"`
}

// goldenQuery records everything one query returned: results and the full
// per-query stats.
type goldenQuery struct {
	Results []goldenResult `json:"results"`
	Stats   goldenStats    `json:"stats"`
}

type goldenFile struct {
	Search      []goldenQuery `json:"search"`
	Overrides   []goldenQuery `json:"search_c8_p7"`
	Incremental []goldenQuery `json:"incremental"`
}

func capture(t *testing.T, res []Result, st SearchStats) goldenQuery {
	t.Helper()
	g := goldenQuery{Stats: goldenStats{
		Candidates:    st.Candidates,
		PageAccesses:  st.PageAccesses,
		GroupsProbed:  st.GroupsProbed,
		RadiusBits:    math.Float64bits(st.Radius),
		ExtRadiusBits: math.Float64bits(st.ExtendedRadius),
		TerminatedBy:  st.TerminatedBy,
	}}
	for _, r := range res {
		g.Results = append(g.Results, goldenResult{ID: r.ID, IPBits: math.Float64bits(r.IP)})
	}
	return g
}

// TestSearchGolden pins the query path bit-for-bit: a fixed-seed index and
// workload must reproduce the committed results (ids AND float bits of every
// inner product and radius) and per-query stats exactly.
//
// Regeneration history: the file was first generated before the PR 3
// zero-copy/scratch hot-path rewrite and pinned that rewrite to bit-equal
// results. It was regenerated for PR 4's I/O engine, which INTENTIONALLY
// changes what a query verifies (not what it returns a guarantee for):
// PQ-sketch pre-ranking verifies the estimated-best candidates first, and
// the exact norm/sketch bounds skip candidates that provably cannot enter
// the top-k, so Candidates/PageAccesses drop and the returned set can only
// shift toward higher inner products (every result is still exactly
// verified; TestRecallParityWithPrerank pins recall against the
// pre-ranking-off path). Since then this file again gates perf changes to
// bit-identical behavior. Regenerate (only when an intentional semantic
// change occurs) with:
// go test ./internal/core -run TestSearchGolden -update-golden
func TestSearchGolden(t *testing.T) {
	data := dataset.Netflix().Generate(1500, 11)
	ix, err := Build(data, t.TempDir(), Options{M: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	queries := data[:8]
	var got goldenFile
	for _, q := range queries {
		res, st, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got.Search = append(got.Search, capture(t, res, st))

		res, st, err = ix.SearchContext(context.Background(), q, 10, SearchParams{C: 0.8, P: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		got.Overrides = append(got.Overrides, capture(t, res, st))

		res, st, err = ix.SearchIncremental(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got.Incremental = append(got.Incremental, capture(t, res, st))
	}

	path := filepath.Join("testdata", "search_golden.json")
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	check := func(section string, got, want []goldenQuery) {
		if len(got) != len(want) {
			t.Fatalf("%s: %d queries, want %d", section, len(got), len(want))
		}
		for qi := range want {
			g, w := got[qi], want[qi]
			if len(g.Results) != len(w.Results) {
				t.Fatalf("%s query %d: %d results, want %d", section, qi, len(g.Results), len(w.Results))
			}
			for i := range w.Results {
				if g.Results[i] != w.Results[i] {
					t.Errorf("%s query %d result %d: got id=%d ip=%x, want id=%d ip=%x",
						section, qi, i, g.Results[i].ID, g.Results[i].IPBits, w.Results[i].ID, w.Results[i].IPBits)
				}
			}
			if g.Stats != w.Stats {
				t.Errorf("%s query %d stats: got %+v, want %+v", section, qi, g.Stats, w.Stats)
			}
		}
	}
	check("search", got.Search, want.Search)
	check("overrides", got.Overrides, want.Overrides)
	check("incremental", got.Incremental, want.Incremental)
}
