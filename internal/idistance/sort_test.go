package idistance

import (
	"math/rand"
	"slices"
	"testing"
)

// TestSortCandidates cross-checks the specialized quicksort against the
// stdlib on adversarial shapes: the order is strictly total (distance, then
// id), so the two must agree element-for-element.
func TestSortCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gen := func(n int, mode int) []Candidate {
		s := make([]Candidate, n)
		for i := range s {
			var d float64
			switch mode {
			case 0:
				d = rng.Float64()
			case 1:
				d = float64(i) // already sorted
			case 2:
				d = float64(n - i) // reversed
			case 3:
				d = 7.5 // all equal: only the id tie-break orders
			case 4:
				d = float64(rng.Intn(4)) // heavy duplicates
			case 5:
				if i == n-1 {
					d = 1e18 // unique max at the last position
				}
			}
			s[i] = Candidate{ID: uint32(rng.Intn(n*2 + 1)), Dist: d}
		}
		return s
	}
	for mode := 0; mode <= 5; mode++ {
		for _, n := range []int{0, 1, 2, 15, 16, 17, 100, 3000} {
			got := gen(n, mode)
			want := slices.Clone(got)
			SortCandidates(got)
			slices.SortFunc(want, CompareCandidates)
			if !slices.Equal(got, want) {
				t.Fatalf("mode=%d n=%d: SortCandidates diverges from reference", mode, n)
			}
		}
	}
}

// TestCandidateStream asserts the lazy stream yields exactly the sorted
// sequence — fully consumed and partially consumed, with the stream state
// reused across inits the way the pooled query scratch reuses it.
func TestCandidateStream(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var cs CandidateStream
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(5000)
		s := make([]Candidate, n)
		for i := range s {
			d := rng.Float64()
			if rng.Intn(3) == 0 {
				d = float64(rng.Intn(5)) // duplicate-heavy
			}
			s[i] = Candidate{ID: uint32(rng.Intn(n + 1)), Dist: d}
		}
		want := slices.Clone(s)
		slices.SortFunc(want, CompareCandidates)

		consume := n
		if trial%2 == 0 && n > 0 {
			consume = rng.Intn(n) // partial consumption, the hot-path shape
		}
		cs.Init(s)
		for i := 0; i < consume; i++ {
			c, ok := cs.Next()
			if !ok {
				t.Fatalf("trial %d: stream dried up at %d of %d", trial, i, consume)
			}
			if c != want[i] {
				t.Fatalf("trial %d: element %d = %+v, want %+v", trial, i, c, want[i])
			}
		}
		if consume == n {
			if _, ok := cs.Next(); ok {
				t.Fatalf("trial %d: stream yielded beyond its input", trial)
			}
		}
	}
}
