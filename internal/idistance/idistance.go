// Package idistance implements the iDistance index (Jagadish et al., TODS
// 2005) with the new partition pattern of the ProMIPS paper (§VI):
//
//  1. the projected space is divided into kp k-means partitions with
//     reference points O₁..O_kp;
//  2. each partition is sliced into rings of width ε around its reference
//     point; a point's B+-tree key is I(p) = ⌊i·C + dis(p,Oi)/ε⌋;
//  3. the points of each ring are further clustered into ksp
//     sub-partitions (pivot + radius), stored contiguously on disk pages,
//     so a range query can skip whole sub-partitions whose sphere does not
//     intersect the query sphere and read the surviving ones sequentially.
//
// The only index structure is a single B+-tree mapping ring keys to the
// ring's sub-partition directory — the "lightweight index" the paper
// contrasts with multi-table LSH.
package idistance

import (
	"encoding/binary"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"time"

	"promips/internal/btree"
	"promips/internal/errs"
	"promips/internal/kmeans"
	"promips/internal/pager"
	"promips/internal/vec"
)

// Config controls index construction. The defaults mirror the paper's
// §VIII-A-4 settings.
type Config struct {
	Kp       int     // number of top-level partitions (paper default 5)
	Nkey     int     // target rings per partition (paper default 40)
	Ksp      int     // sub-partitions per ring (paper default 10)
	Epsilon  float64 // ring width; 0 = r_avg/Nkey from the first-stage clustering
	Seed     int64
	PageSize int
	PoolSize int
	// MissLatency is a simulated per-miss disk latency forwarded to the
	// pagers (benchmark harness only; zero disables it).
	MissLatency time.Duration
}

func (c *Config) normalize() {
	if c.Kp <= 0 {
		c.Kp = 5
	}
	if c.Nkey <= 0 {
		c.Nkey = 40
	}
	if c.Ksp <= 0 {
		c.Ksp = 10
	}
	if c.PageSize <= 0 {
		c.PageSize = pager.DefaultPageSize
	}
}

// subPartition is one sphere of points stored contiguously on data pages.
// Sub-partitions — and the rings containing them — are packed back to back
// with no alignment slack (neighbouring sub-partitions share boundary
// pages), so startSlot locates the first entry within its page. Dense
// packing keeps the data file at its information-theoretic page count,
// which the Page Access metric rewards directly: a ring-aligned layout was
// measured at 5× the pages for the same entries.
type subPartition struct {
	center    []float32
	radius    float64
	startPage int64
	startSlot int
	numPoints int
}

// Index is a built iDistance index over n m-dimensional points.
type Index struct {
	cfg     Config
	m, n    int
	centers [][]float32
	radii   []float64
	epsilon float64
	stride  int64 // C in I(p) = ⌊i·C + dis(p,Oi)/ε⌋
	maxDist float64

	data *pager.Pager
	btPg *pager.Pager
	tree *btree.Tree

	entriesPerPage int
	locPage        []int64 // id -> data page holding its projected entry
	locSlot        []int32 // id -> slot within that page
	layout         []uint32
}

// Candidate is a point reported by a range or incremental search, with its
// Euclidean distance to the query in the projected space.
type Candidate struct {
	ID   uint32
	Dist float64
}

// Build constructs the index over the projected points in dir. Point i's id
// is uint32(i).
func Build(projected [][]float32, dir string, cfg Config) (*Index, error) {
	cfg.normalize()
	n := len(projected)
	if n == 0 {
		return nil, fmt.Errorf("idistance: %w: no points to index", errs.ErrEmptyIndex)
	}
	m := len(projected[0])
	entrySize := 4 + vec.EncodedSize(m)
	if entrySize > cfg.PageSize {
		return nil, fmt.Errorf("idistance: entry of %d bytes exceeds page size %d", entrySize, cfg.PageSize)
	}

	// Stage 1: kp-means over the projected points.
	res := kmeans.Run(projected, kmeans.Config{K: cfg.Kp, Seed: cfg.Seed})
	kp := len(res.Centroids)

	// Ring width ε from the average first-stage radius (§VI).
	eps := cfg.Epsilon
	if eps <= 0 {
		var avg float64
		for _, r := range res.Radii {
			avg += r
		}
		avg /= float64(kp)
		eps = avg / float64(cfg.Nkey)
		if eps <= 0 {
			eps = 1 // degenerate data (all points identical)
		}
	}

	// Ring assignment and the key stride C (large enough that partitions
	// never share keys).
	ringOf := make([]int, n)
	maxRing := 0
	for i, p := range projected {
		r := int(vec.L2Dist(p, res.Centroids[res.Assign[i]]) / eps)
		ringOf[i] = r
		if r > maxRing {
			maxRing = r
		}
	}
	stride := int64(maxRing + 2)

	// Group ids by (partition, ring).
	rings := make(map[int64][]uint32)
	for i := 0; i < n; i++ {
		key := int64(res.Assign[i])*stride + int64(ringOf[i])
		rings[key] = append(rings[key], uint32(i))
	}
	keys := make([]int64, 0, len(rings))
	for k := range rings {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	opts := pager.Options{PageSize: cfg.PageSize, PoolSize: cfg.PoolSize, MissLatency: cfg.MissLatency}
	data, err := pager.Create(filepath.Join(dir, "idist.data"), opts)
	if err != nil {
		return nil, err
	}
	btPg, err := pager.Create(filepath.Join(dir, "idist.btree"), opts)
	if err != nil {
		data.Close()
		return nil, err
	}
	tree, err := btree.Create(btPg)
	if err != nil {
		data.Close()
		btPg.Close()
		return nil, err
	}

	idx := &Index{
		cfg: cfg, m: m, n: n,
		centers: res.Centroids, radii: res.Radii,
		epsilon: eps, stride: stride,
		data: data, btPg: btPg, tree: tree,
		entriesPerPage: cfg.PageSize / entrySize,
		locPage:        make([]int64, n),
		locSlot:        make([]int32, n),
		layout:         make([]uint32, 0, n),
	}
	for i := range idx.locPage {
		idx.locPage[i] = -1
	}

	// Stage 2: per-ring ksp-means, contiguous page layout, B+-tree entry.
	// One ring writer spans all rings: each ring continues on the page the
	// previous one ended on, so the file carries no per-ring alignment
	// slack.
	rw := idx.newRingWriter()
	for _, key := range keys {
		ids := rings[key]
		pts := make([][]float32, len(ids))
		for j, id := range ids {
			pts[j] = projected[id]
		}
		sres := kmeans.Run(pts, kmeans.Config{K: cfg.Ksp, Seed: cfg.Seed + key})
		subs := make([]subPartition, len(sres.Centroids))
		for s := range subs {
			subs[s] = subPartition{center: sres.Centroids[s], radius: sres.Radii[s]}
		}
		// Collect member ids per sub-partition in stable order.
		members := make([][]uint32, len(subs))
		for j, id := range ids {
			s := sres.Assign[j]
			members[s] = append(members[s], id)
		}
		// Pack the ring's sub-partitions back to back; record each
		// sub-partition's (page, slot) start.
		for s := range subs {
			if len(members[s]) == 0 {
				continue
			}
			page, slot, err := rw.writeSub(members[s], projected)
			if err != nil {
				idx.closeAll()
				return nil, err
			}
			subs[s].startPage = page
			subs[s].startSlot = slot
			subs[s].numPoints = len(members[s])
		}
		if err := rw.flush(); err != nil {
			idx.closeAll()
			return nil, err
		}
		if err := tree.Insert(key, encodeSubs(subs, m)); err != nil {
			idx.closeAll()
			return nil, err
		}
	}

	// The farthest point of any partition bounds every meaningful radius.
	for p := range res.Radii {
		if res.Radii[p] > idx.maxDist {
			idx.maxDist = res.Radii[p]
		}
	}
	if err := data.Sync(); err != nil {
		idx.closeAll()
		return nil, err
	}
	if err := btPg.Sync(); err != nil {
		idx.closeAll()
		return nil, err
	}
	// The tree is immutable from here on (updates go through core's delta
	// and compaction): decode every node once so the query path never
	// re-decodes a node page. Page accounting is unaffected.
	if err := tree.Freeze(); err != nil {
		idx.closeAll()
		return nil, err
	}
	return idx, nil
}

// ringWriter packs one ring's sub-partition entries onto contiguous pages.
type ringWriter struct {
	idx  *Index
	page []byte
	cur  int64
	slot int
}

func (idx *Index) newRingWriter() *ringWriter {
	return &ringWriter{idx: idx, page: make([]byte, idx.cfg.PageSize), cur: -1}
}

// writeSub appends one sub-partition's entries and returns the (page, slot)
// of its first entry.
func (rw *ringWriter) writeSub(ids []uint32, projected [][]float32) (int64, int, error) {
	idx := rw.idx
	entrySize := 4 + vec.EncodedSize(idx.m)
	firstPage, firstSlot := int64(-1), 0
	for _, id := range ids {
		if rw.cur < 0 || rw.slot == idx.entriesPerPage {
			if err := rw.flush(); err != nil {
				return 0, 0, err
			}
			pid, err := idx.data.Alloc()
			if err != nil {
				return 0, 0, err
			}
			rw.cur, rw.slot = pid, 0
			for i := range rw.page {
				rw.page[i] = 0
			}
		}
		if firstPage < 0 {
			firstPage, firstSlot = rw.cur, rw.slot
		}
		off := rw.slot * entrySize
		binary.LittleEndian.PutUint32(rw.page[off:], id)
		vec.Encode(rw.page[off+4:], projected[id])
		idx.locPage[id] = rw.cur
		idx.locSlot[id] = int32(rw.slot)
		idx.layout = append(idx.layout, id)
		rw.slot++
	}
	return firstPage, firstSlot, nil
}

// flush writes the current partially filled page, keeping it current so
// the next sub-partition continues on the same page.
func (rw *ringWriter) flush() error {
	if rw.cur < 0 {
		return nil
	}
	return rw.idx.data.Write(rw.cur, rw.page)
}

func (idx *Index) closeAll() {
	idx.data.Close()
	idx.btPg.Close()
}

// Close releases the underlying page files.
func (idx *Index) Close() error {
	if err := idx.data.Close(); err != nil {
		idx.btPg.Close()
		return err
	}
	return idx.btPg.Close()
}

// M returns the projected dimensionality.
func (idx *Index) M() int { return idx.m }

// Len returns the number of indexed points.
func (idx *Index) Len() int { return idx.n }

// Epsilon returns the ring width in use.
func (idx *Index) Epsilon() float64 { return idx.epsilon }

// Layout returns point ids in on-disk order (sub-partition by
// sub-partition). The original-vector store is laid out in this order so
// that verification I/O is sequential, as §VI prescribes.
func (idx *Index) Layout() []uint32 { return idx.layout }

// IndexSizeBytes returns the on-disk size of the B+-tree (the index proper).
func (idx *Index) IndexSizeBytes() int64 { return idx.btPg.SizeBytes() }

// DataSizeBytes returns the on-disk size of the projected-point pages.
func (idx *Index) DataSizeBytes() int64 { return idx.data.SizeBytes() }

// Pagers returns the pagers touched by searches, for I/O accounting.
func (idx *Index) Pagers() []*pager.Pager { return []*pager.Pager{idx.data, idx.btPg} }

// Projected reads one point's projected vector from disk (the single fetch
// Quick-Probe performs to turn the located point into a search radius). The
// page read is recorded in io (nil discards the accounting).
func (idx *Index) Projected(id uint32, dst []float32, io *pager.IOStats) ([]float32, error) {
	if int(id) >= idx.n || idx.locPage[id] < 0 {
		return nil, fmt.Errorf("idistance: id %d not indexed", id)
	}
	page, err := idx.data.Read(idx.locPage[id], io)
	if err != nil {
		return nil, err
	}
	entrySize := 4 + vec.EncodedSize(idx.m)
	off := int(idx.locSlot[id]) * entrySize
	return vec.Decode(page[off+4:], idx.m, dst), nil
}

// encodeSubs serializes a ring's sub-partition directory:
// count uint32, then per sub-partition: startPage int64, startSlot uint32,
// numPoints uint32, radius float64, center m×float32.
func encodeSubs(subs []subPartition, m int) []byte {
	live := 0
	for _, s := range subs {
		if s.numPoints > 0 {
			live++
		}
	}
	buf := make([]byte, 4+live*(8+4+4+8+vec.EncodedSize(m)))
	binary.LittleEndian.PutUint32(buf, uint32(live))
	off := 4
	for _, s := range subs {
		if s.numPoints == 0 {
			continue
		}
		binary.LittleEndian.PutUint64(buf[off:], uint64(s.startPage))
		binary.LittleEndian.PutUint32(buf[off+8:], uint32(s.startSlot))
		binary.LittleEndian.PutUint32(buf[off+12:], uint32(s.numPoints))
		binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(s.radius))
		off += 24
		off += vec.Encode(buf[off:], s.center)
	}
	return buf
}

// decodeSubsInto parses a ring's sub-partition directory into sc.subs,
// reusing its storage. Each center is aliased straight into the B+-tree
// value bytes when the host allows the zero-copy view (the value buffers
// are freshly allocated per node read and never mutated, so the alias is a
// stable read-only snapshot); otherwise it is decoded into a fresh slice —
// never into reused storage, which could alias a previous ring's view. The
// returned slice is valid until the next decodeSubsInto call on sc.
func decodeSubsInto(buf []byte, m int, sc *scanScratch) []subPartition {
	count := int(vec.U32(buf))
	subs := sc.subs
	if cap(subs) < count {
		subs = make([]subPartition, count)
	}
	subs = subs[:count]
	off := 4
	for i := 0; i < count; i++ {
		subs[i].startPage = int64(vec.U64(buf[off:]))
		subs[i].startSlot = int(vec.U32(buf[off+8:]))
		subs[i].numPoints = int(vec.U32(buf[off+12:]))
		subs[i].radius = math.Float64frombits(vec.U64(buf[off+16:]))
		off += 24
		if v, ok := vec.F32View(buf[off:], m); ok {
			subs[i].center = v
		} else {
			subs[i].center = vec.Decode(buf[off:], m, nil)
		}
		off += vec.EncodedSize(m)
	}
	sc.subs = subs
	return subs
}
