package idistance

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"promips/internal/btree"
	"promips/internal/errs"
	"promips/internal/fsutil"
	"promips/internal/pager"
)

// meta is the gob-serialized in-memory state of an Index; the bulk data
// (projected entries, B+-tree nodes) already lives in the page files.
type meta struct {
	Cfg            Config
	M, N           int
	Centers        [][]float32
	Radii          []float64
	Epsilon        float64
	Stride         int64
	MaxDist        float64
	EntriesPerPage int
	LocPage        []int64
	LocSlot        []int32
	Layout         []uint32
}

// Save persists the index metadata next to its page files in dir. The meta
// file is written to a temp name and renamed over, so a crash mid-Save
// never truncates a previously saved (and possibly still referenced) meta
// file. Directory-entry durability is the caller's concern (core.Save
// fsyncs dir once after both meta renames).
func (idx *Index) Save(dir string) error { return idx.SaveFS(fsutil.OS, dir) }

// SaveFS is Save writing through an explicit filesystem seam, so the
// crash-injection harness can fault this meta write like any other.
func (idx *Index) SaveFS(fsys fsutil.FS, dir string) error {
	m := meta{
		Cfg: idx.cfg, M: idx.m, N: idx.n,
		Centers: idx.centers, Radii: idx.radii,
		Epsilon: idx.epsilon, Stride: idx.stride, MaxDist: idx.maxDist,
		EntriesPerPage: idx.entriesPerPage,
		LocPage:        idx.locPage, LocSlot: idx.locSlot, Layout: idx.layout,
	}
	err := fsutil.WriteAtomic(fsys, filepath.Join(dir, "idist.meta"), func(f fsutil.File) error {
		return gob.NewEncoder(f).Encode(&m)
	})
	if err != nil {
		return fmt.Errorf("idistance: save meta: %w", err)
	}
	return nil
}

// Open loads an index previously built in dir (Build followed by Save).
func Open(dir string) (*Index, error) {
	f, err := os.Open(filepath.Join(dir, "idist.meta"))
	if err != nil {
		return nil, fmt.Errorf("idistance: open meta: %w", err)
	}
	defer f.Close()
	var m meta
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("idistance: decode meta: %v: %w", err, errs.ErrCorruptIndex)
	}
	opts := pager.Options{PageSize: m.Cfg.PageSize, PoolSize: m.Cfg.PoolSize, MissLatency: m.Cfg.MissLatency}
	data, err := pager.Open(filepath.Join(dir, "idist.data"), opts)
	if err != nil {
		return nil, err
	}
	btPg, err := pager.Open(filepath.Join(dir, "idist.btree"), opts)
	if err != nil {
		data.Close()
		return nil, err
	}
	tree, err := btree.Open(btPg)
	if err != nil {
		data.Close()
		btPg.Close()
		return nil, err
	}
	// The reopened tree is read-only from here on: decode its nodes once so
	// queries don't re-decode them (see Build).
	if err := tree.Freeze(); err != nil {
		data.Close()
		btPg.Close()
		return nil, err
	}
	return &Index{
		cfg: m.Cfg, m: m.M, n: m.N,
		centers: m.Centers, radii: m.Radii,
		epsilon: m.Epsilon, stride: m.Stride, maxDist: m.MaxDist,
		data: data, btPg: btPg, tree: tree,
		entriesPerPage: m.EntriesPerPage,
		locPage:        m.LocPage, locSlot: m.LocSlot, layout: m.Layout,
	}, nil
}
