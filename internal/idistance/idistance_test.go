package idistance

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"promips/internal/vec"
)

func randPoints(r *rand.Rand, n, m int, scale float64) [][]float32 {
	pts := make([][]float32, n)
	for i := range pts {
		p := make([]float32, m)
		for j := range p {
			p[j] = float32(r.NormFloat64() * scale)
		}
		pts[i] = p
	}
	return pts
}

func buildTestIndex(t testing.TB, pts [][]float32, cfg Config) *Index {
	t.Helper()
	idx, err := Build(pts, t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	return idx
}

// bruteRange returns ids within radius r of q, by linear scan.
func bruteRange(pts [][]float32, q []float32, r float64) map[uint32]float64 {
	out := make(map[uint32]float64)
	for i, p := range pts {
		if d := vec.L2Dist(p, q); d <= r {
			out[uint32(i)] = d
		}
	}
	return out
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(nil, t.TempDir(), Config{}); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestBuildEntryTooLarge(t *testing.T) {
	pts := randPoints(rand.New(rand.NewSource(1)), 10, 100, 1)
	if _, err := Build(pts, t.TempDir(), Config{PageSize: 256}); err == nil {
		t.Fatal("expected error: 100-dim entry exceeds 256B page")
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randPoints(r, 3000, 6, 10)
	idx := buildTestIndex(t, pts, Config{Kp: 5, Nkey: 20, Ksp: 8, Seed: 3, PageSize: 512})
	for trial := 0; trial < 20; trial++ {
		q := randPoints(r, 1, 6, 10)[0]
		radius := 2 + r.Float64()*20
		want := bruteRange(pts, q, radius)
		got, err := idx.RangeSearch(context.Background(), q, radius, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: range search found %d, brute force %d (r=%.2f)", trial, len(got), len(want), radius)
		}
		for _, c := range got {
			wd, ok := want[c.ID]
			if !ok {
				t.Fatalf("trial %d: spurious candidate %d at %.3f", trial, c.ID, c.Dist)
			}
			if diff := c.Dist - wd; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("trial %d: distance mismatch for %d: %v vs %v", trial, c.ID, c.Dist, wd)
			}
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Dist < got[j].Dist }) {
			t.Fatal("RangeSearch results not sorted")
		}
	}
}

func TestAnnulusSearchExcludesInnerBall(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randPoints(r, 2000, 5, 10)
	idx := buildTestIndex(t, pts, Config{Seed: 5, PageSize: 512})
	q := randPoints(r, 1, 5, 10)[0]
	rLo, rHi := 8.0, 16.0
	seen := make(map[uint32]bool)
	err := idx.Search(context.Background(), q, rLo, rHi, nil, func(c Candidate) bool {
		if c.Dist <= rLo || c.Dist > rHi {
			t.Fatalf("candidate %d at %.3f outside annulus (%v,%v]", c.ID, c.Dist, rLo, rHi)
		}
		seen[c.ID] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		d := vec.L2Dist(p, q)
		if d > rLo && d <= rHi && !seen[uint32(i)] {
			t.Fatalf("missed point %d at distance %.3f", i, d)
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts := randPoints(r, 500, 4, 5)
	idx := buildTestIndex(t, pts, Config{Seed: 7, PageSize: 512})
	count := 0
	idx.Search(context.Background(), pts[0], -1, 1e9, nil, func(c Candidate) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d, want 10", count)
	}
}

func TestIteratorReturnsAscendingOrder(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	pts := randPoints(r, 1500, 6, 10)
	idx := buildTestIndex(t, pts, Config{Seed: 9, PageSize: 512})
	q := randPoints(r, 1, 6, 10)[0]
	it := idx.NewIterator(context.Background(), q, nil)
	var dists []float64
	seen := make(map[uint32]bool)
	for {
		c, ok := it.Next()
		if !ok {
			break
		}
		if seen[c.ID] {
			t.Fatalf("iterator yielded %d twice", c.ID)
		}
		seen[c.ID] = true
		dists = append(dists, c.Dist)
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(dists) != len(pts) {
		t.Fatalf("iterator yielded %d of %d points", len(dists), len(pts))
	}
	if !sort.Float64sAreSorted(dists) {
		t.Fatal("iterator distances not ascending")
	}
}

func TestIteratorMatchesExactNNOrder(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	pts := randPoints(r, 800, 5, 8)
	idx := buildTestIndex(t, pts, Config{Seed: 11, PageSize: 512})
	q := randPoints(r, 1, 5, 8)[0]

	type nn struct {
		id uint32
		d  float64
	}
	exact := make([]nn, len(pts))
	for i, p := range pts {
		exact[i] = nn{uint32(i), vec.L2Dist(p, q)}
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i].d < exact[j].d })

	it := idx.NewIterator(context.Background(), q, nil)
	for k := 0; k < 50; k++ {
		c, ok := it.Next()
		if !ok {
			t.Fatalf("iterator exhausted at %d", k)
		}
		// Compare distances, not ids (ties may reorder).
		if diff := c.Dist - exact[k].d; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("NN %d: iterator dist %.6f, exact %.6f", k, c.Dist, exact[k].d)
		}
	}
}

func TestIteratorFindsExactDuplicateOfQuery(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	pts := randPoints(r, 300, 4, 5)
	q := vec.Clone(pts[42])
	idx := buildTestIndex(t, pts, Config{Seed: 13, PageSize: 512})
	it := idx.NewIterator(context.Background(), q, nil)
	c, ok := it.Next()
	if !ok {
		t.Fatal("iterator empty")
	}
	if c.Dist > 1e-6 {
		t.Fatalf("first NN at distance %v, want 0 (duplicate of query)", c.Dist)
	}
}

func TestProjectedFetch(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	pts := randPoints(r, 400, 6, 10)
	idx := buildTestIndex(t, pts, Config{Seed: 15, PageSize: 512})
	for _, id := range []uint32{0, 7, 399} {
		got, err := idx.Projected(id, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != pts[id][j] {
				t.Fatalf("Projected(%d) differs at %d", id, j)
			}
		}
	}
	if _, err := idx.Projected(400, nil, nil); err == nil {
		t.Fatal("expected error for out-of-range id")
	}
}

func TestLayoutIsPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	pts := randPoints(r, 700, 5, 10)
	idx := buildTestIndex(t, pts, Config{Seed: 17, PageSize: 512})
	layout := idx.Layout()
	if len(layout) != len(pts) {
		t.Fatalf("layout has %d entries, want %d", len(layout), len(pts))
	}
	seen := make(map[uint32]bool, len(layout))
	for _, id := range layout {
		if seen[id] {
			t.Fatalf("id %d appears twice in layout", id)
		}
		seen[id] = true
	}
}

func TestSinglePointIndex(t *testing.T) {
	pts := [][]float32{{1, 2, 3}}
	idx := buildTestIndex(t, pts, Config{Seed: 18, PageSize: 512})
	got, err := idx.RangeSearch(context.Background(), []float32{1, 2, 3}, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("RangeSearch on singleton = %v", got)
	}
}

func TestIdenticalPoints(t *testing.T) {
	pts := make([][]float32, 50)
	for i := range pts {
		pts[i] = []float32{7, 7}
	}
	idx := buildTestIndex(t, pts, Config{Seed: 19, PageSize: 512})
	got, err := idx.RangeSearch(context.Background(), []float32{7, 7}, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("found %d of 50 identical points", len(got))
	}
}

func TestPageAccessAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	pts := randPoints(r, 3000, 6, 10)
	idx := buildTestIndex(t, pts, Config{Seed: 21, PageSize: 512, PoolSize: 4096})
	q := randPoints(r, 1, 6, 10)[0]
	for _, pg := range idx.Pagers() {
		pg.DropPool()
		pg.ResetStats()
	}
	if _, err := idx.RangeSearch(context.Background(), q, 5, nil); err != nil {
		t.Fatal(err)
	}
	var small, large int64
	for _, pg := range idx.Pagers() {
		small += pg.Stats().Misses
	}
	for _, pg := range idx.Pagers() {
		pg.DropPool()
		pg.ResetStats()
	}
	if _, err := idx.RangeSearch(context.Background(), q, 30, nil); err != nil {
		t.Fatal(err)
	}
	for _, pg := range idx.Pagers() {
		large += pg.Stats().Misses
	}
	if small <= 0 || large <= small {
		t.Fatalf("page accesses should grow with radius: small=%d large=%d", small, large)
	}
	total := idx.data.NumPages() + idx.btPg.NumPages()
	if large > total {
		t.Fatalf("page misses %d exceed total pages %d", large, total)
	}
}

// Property: for random data, radius and query, the range search equals
// brute force exactly.
func TestPropertyRangeSearchComplete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 200 + r.Intn(400)
		m := 3 + r.Intn(5)
		pts := randPoints(r, n, m, 5)
		dir := t.TempDir()
		idx, err := Build(pts, dir, Config{Kp: 1 + r.Intn(4), Nkey: 5 + r.Intn(30),
			Ksp: 1 + r.Intn(8), Seed: seed, PageSize: 512})
		if err != nil {
			return false
		}
		defer idx.Close()
		q := randPoints(r, 1, m, 5)[0]
		radius := r.Float64() * 15
		want := bruteRange(pts, q, radius)
		got, err := idx.RangeSearch(context.Background(), q, radius, nil)
		if err != nil || len(got) != len(want) {
			return false
		}
		for _, c := range got {
			if _, ok := want[c.ID]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
