package idistance

import (
	"context"
	"math/rand"
	"testing"
)

func TestSaveOpenRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	pts := randPoints(r, 900, 6, 10)
	dir := t.TempDir()
	idx, err := Build(pts, dir, Config{Kp: 4, Nkey: 15, Ksp: 6, Seed: 31, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Save(dir); err != nil {
		t.Fatal(err)
	}
	q := randPoints(r, 1, 6, 10)[0]
	want, err := idx.RangeSearch(context.Background(), q, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantProj, err := idx.Projected(42, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 900 || re.M() != 6 {
		t.Fatalf("reloaded dims = (%d,%d)", re.Len(), re.M())
	}
	got, err := re.RangeSearch(context.Background(), q, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("range search changed after reload: %d vs %d candidates", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("candidate %d changed after reload", i)
		}
	}
	gotProj, err := re.Projected(42, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gotProj {
		if gotProj[i] != wantProj[i] {
			t.Fatal("projected fetch changed after reload")
		}
	}
	if len(re.Layout()) != 900 {
		t.Fatalf("layout lost: %d entries", len(re.Layout()))
	}
}

func TestOpenMissingMeta(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("expected error opening empty dir")
	}
}
