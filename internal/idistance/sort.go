package idistance

import (
	"math/bits"
	"slices"
)

// SortCandidates sorts by the CompareCandidates order (ascending distance,
// id tie-break). Candidate ordering is a measurable slice of the query hot
// path — every range search sorts hundreds-to-thousands of candidates — so
// this is a specialized quicksort whose comparisons inline, instead of the
// generic slices.SortFunc machinery paying an indirect comparator call per
// comparison. The result is identical: the order is a strict total order,
// so every correct comparison sort produces the same permutation.
func SortCandidates(s []Candidate) {
	quickCand(s, 2*bits.Len(uint(len(s))))
}

func candLess(a, b Candidate) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// sortCutoff is the segment size below which insertion sort takes over.
const sortCutoff = 16

// partitionCand partitions s around a median-of-three pivot and returns the
// split point m with s[:m] ≤ pivot ≤ s[m:] and 0 < m < len(s) (classical
// Hoare partition with the pivot parked at index 0, which guarantees both
// splits are non-empty). len(s) must exceed 1.
func partitionCand(s []Candidate) int {
	m := medianOf3(s)
	s[0], s[m] = s[m], s[0]
	pivot := s[0]
	i, j := -1, len(s)
	for {
		for {
			i++
			if !candLess(s[i], pivot) {
				break
			}
		}
		for {
			j--
			if !candLess(pivot, s[j]) {
				break
			}
		}
		if i >= j {
			break
		}
		s[i], s[j] = s[j], s[i]
	}
	return j + 1
}

// insertionCand sorts a short run in place.
func insertionCand(s []Candidate) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && candLess(v, s[j]) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// quickCand is a median-of-three Hoare quicksort with an insertion-sort
// cutoff, recursing on the smaller half to bound stack depth. If pathological
// pivots exhaust the depth budget it falls back to the stdlib sort, keeping
// the O(n log n) worst case.
func quickCand(s []Candidate, depth int) {
	for len(s) > sortCutoff {
		if depth == 0 {
			slices.SortFunc(s, CompareCandidates)
			return
		}
		depth--
		m := partitionCand(s)
		// Recurse into the smaller side, loop on the larger.
		if m <= len(s)-m {
			quickCand(s[:m], depth)
			s = s[m:]
		} else {
			quickCand(s[m:], depth)
			s = s[:m]
		}
	}
	insertionCand(s)
}

// CandidateStream yields the elements of a candidate slice in
// CompareCandidates order without sorting the suffix that is never
// consumed. The query path collects thousands of candidates but usually
// verifies only a fraction before Condition B terminates the search, so a
// full upfront sort wastes most of its work; the stream quicksorts lazily —
// partitioning toward the front, insertion-sorting only the run about to be
// yielded — for an O(n + consumed·log n) expected cost. The yield order is
// exactly the sorted order (the comparison order is strictly total), so
// consuming a stream is bit-identical to iterating a sorted slice.
//
// The stream reorders s in place and keeps state in pooled storage: Init
// with a scratch bounds slice to make steady-state streaming allocation
// free.
type CandidateStream struct {
	s         []Candidate
	pos       int   // next element to yield
	sortedEnd int   // s[pos:sortedEnd] is sorted and ready to yield
	bounds    []int // segment ends: s[pos:bounds[last]] ≤ s[bounds[last]:bounds[last-1]] ≤ …
	parts     int   // partitions performed, for the pathological-input fallback
	maxParts  int
}

// Init binds the stream to s. The stream's own storage (the segment stack)
// is reused across Inits, so a stream embedded in a pooled per-query
// scratch streams without allocating.
func (cs *CandidateStream) Init(s []Candidate) {
	cs.s = s
	cs.pos = 0
	cs.sortedEnd = 0
	cs.bounds = append(cs.bounds[:0], len(s))
	cs.parts = 0
	// A full lazy sort performs about len(s)/sortCutoff·2 partitions;
	// quadratic behaviour blows well past this budget and trips the
	// fallback in refine.
	cs.maxParts = len(s)/4 + 4*bits.Len(uint(len(s))) + 4
}

// Next yields the next candidate in ascending order.
func (cs *CandidateStream) Next() (Candidate, bool) {
	if cs.pos < cs.sortedEnd {
		c := cs.s[cs.pos]
		cs.pos++
		return c, true
	}
	if cs.pos >= len(cs.s) {
		return Candidate{}, false
	}
	cs.refine()
	c := cs.s[cs.pos]
	cs.pos++
	return c, true
}

// refine narrows the front segment until it is a short run, insertion-sorts
// it and marks it ready.
func (cs *CandidateStream) refine() {
	top := cs.bounds[len(cs.bounds)-1]
	for top == cs.pos { // segment exhausted: pop
		cs.bounds = cs.bounds[:len(cs.bounds)-1]
		top = cs.bounds[len(cs.bounds)-1]
	}
	for top-cs.pos > sortCutoff {
		if cs.parts++; cs.parts > cs.maxParts {
			// Pathological pivots: finish this segment with the bounded
			// sort and stop partitioning.
			SortCandidates(cs.s[cs.pos:top])
			break
		}
		m := cs.pos + partitionCand(cs.s[cs.pos:top])
		cs.bounds = append(cs.bounds, m)
		top = m
	}
	insertionCand(cs.s[cs.pos:top])
	cs.sortedEnd = top
}

// medianOf3 returns the index of the median of the first, middle and last
// elements.
func medianOf3(s []Candidate) int {
	ia, ib, ic := 0, len(s)/2, len(s)-1
	if candLess(s[ib], s[ia]) {
		ia, ib = ib, ia
	}
	if candLess(s[ic], s[ib]) {
		ib = ic
		if candLess(s[ib], s[ia]) {
			ib = ia
		}
	}
	return ib
}
