package idistance

import (
	"cmp"
	"context"
	"math"
	"sync"

	"promips/internal/pager"
	"promips/internal/vec"
)

// CompareCandidates orders by ascending projected distance with the id as a
// deterministic tie-break, so every sort in the query path yields one
// well-defined order regardless of the sorting algorithm.
func CompareCandidates(a, b Candidate) int {
	if a.Dist != b.Dist {
		if a.Dist < b.Dist {
			return -1
		}
		return 1
	}
	return cmp.Compare(a.ID, b.ID)
}

// scanScratch is the per-query scratch of the scan path: the decoded
// sub-partition directory of the ring being visited and the page views of
// the sub-partition run being scanned. Pooled so a steady query load
// allocates nothing here.
type scanScratch struct {
	subs  []subPartition
	pages [][]byte
}

var scanScratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

func (sc *scanScratch) release() {
	// Drop the aliased center views and buffer-pool page views before
	// pooling so the scratch does not retain B+-tree value buffers or page
	// snapshots across queries.
	subs := sc.subs[:cap(sc.subs)]
	clear(subs)
	clear(sc.pages[:cap(sc.pages)])
	scanScratchPool.Put(sc)
}

// Search visits every indexed point whose projected distance d to q
// satisfies rLo < d ≤ rHi, in disk order (sub-partition by sub-partition;
// callers sort when they need distance order). Pass rLo < 0 for a plain
// range search. visit returning false stops the scan early.
//
// Filtering follows §VI: partitions whose sphere does not intersect the
// query sphere are skipped via the B+-tree key range; within a surviving
// ring, a sub-partition is read only when its (pivot, radius) sphere
// intersects the query sphere and is not entirely inside the rLo ball.
//
// Cancellation is checked between sub-partition scans (one sub-partition is
// at most a few pages of sequential I/O, so a cancelled query stops within
// that bound); the scan then returns ctx.Err().
//
// Page reads (B+-tree nodes and projected-point pages) are recorded in io,
// the caller's per-query accumulator; nil discards the accounting.
func (idx *Index) Search(ctx context.Context, q []float32, rLo, rHi float64, io *pager.IOStats, visit func(Candidate) bool) error {
	entrySize := 4 + vec.EncodedSize(idx.m)
	sc := scanScratchPool.Get().(*scanScratch)
	defer sc.release()
	stop := false
	var scanErr error
	for p, center := range idx.centers {
		if stop {
			return scanErr
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		dc := vec.L2Dist(q, center)
		if dc-rHi > idx.radii[p] {
			continue // query sphere misses this partition entirely
		}
		ringLo := int64(math.Max(0, (dc-rHi)/idx.epsilon))
		// Clamp before the int64 conversion: rHi may be +Inf (full-scan
		// fallback) and the float→int conversion of an out-of-range value
		// is undefined.
		hiRing := (dc + rHi) / idx.epsilon
		ringHi := idx.stride - 1
		if !math.IsInf(hiRing, 1) && hiRing < float64(idx.stride-1) {
			ringHi = int64(hiRing)
		}
		loKey := int64(p)*idx.stride + ringLo
		hiKey := int64(p)*idx.stride + ringHi
		err := idx.tree.Scan(loKey, hiKey, io, func(key int64, val []byte) bool {
			for _, sub := range decodeSubsInto(val, idx.m, sc) {
				if err := ctx.Err(); err != nil {
					scanErr, stop = err, true
					return false
				}
				ds := vec.L2Dist(q, sub.center)
				if ds-sub.radius > rHi {
					continue // sphere outside the query sphere
				}
				if rLo >= 0 && ds+sub.radius <= rLo {
					continue // sphere entirely inside the excluded ball
				}
				more, err := idx.scanSub(sub, q, rLo, rHi, entrySize, sc, io, visit)
				if err != nil {
					scanErr, stop = err, true
					return false
				}
				if !more {
					stop = true
					return false
				}
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return scanErr
}

// scanSub reads a sub-partition's short sequential page run in one
// readahead round trip and reports matching points. The first entry sits at
// (startPage, startSlot); later entries continue across page boundaries.
// The whole run is fetched with a single pager.ReadRun — cached pages come
// from the pool, the missing remainder costs one contiguous file read under
// one shard lock instead of a pager round trip per page — and distances are
// computed by the fused zero-copy kernel straight from the page bytes (no
// per-entry decode buffer exists on this path). It returns more=false when
// visit stops the scan, and a non-nil error when the run read fails (the
// caller must not treat that as a clean early stop: a truncated candidate
// set would silently void the probability guarantee).
func (idx *Index) scanSub(sub subPartition, q []float32, rLo, rHi float64, entrySize int, sc *scanScratch, io *pager.IOStats, visit func(Candidate) bool) (more bool, err error) {
	nPages := (sub.startSlot + sub.numPoints + idx.entriesPerPage - 1) / idx.entriesPerPage
	sc.pages, err = idx.data.ReadRun(sub.startPage, nPages, sc.pages[:0], io)
	if err != nil {
		return false, err
	}
	remaining := sub.numPoints
	slot := sub.startSlot
	for _, page := range sc.pages {
		for ; slot < idx.entriesPerPage && remaining > 0; slot++ {
			off := slot * entrySize
			id := vec.U32(page[off:])
			d := math.Sqrt(vec.L2DistSqBytes(page[off+4:], q))
			remaining--
			if d <= rHi && (rLo < 0 || d > rLo) {
				if !visit(Candidate{ID: id, Dist: d}) {
					return false, nil
				}
			}
		}
		slot = 0
	}
	return true, nil
}

// RangeSearch collects every point within distance r of q, sorted by
// ascending projected distance — the order MIP-Search-II consumes
// candidates in. Page reads are recorded in io.
func (idx *Index) RangeSearch(ctx context.Context, q []float32, r float64, io *pager.IOStats) ([]Candidate, error) {
	return idx.RangeSearchAppend(ctx, q, r, io, nil)
}

// RangeSearchAppend is RangeSearch accumulating into out's storage (out is
// truncated first), so a per-query scratch slice makes the candidate
// collection allocation-free in the steady state.
func (idx *Index) RangeSearchAppend(ctx context.Context, q []float32, r float64, io *pager.IOStats, out []Candidate) ([]Candidate, error) {
	out, err := idx.CollectRangeAppend(ctx, q, r, io, out)
	if err != nil {
		return nil, err
	}
	SortCandidates(out)
	return out, nil
}

// CollectRangeAppend gathers every point within distance r of q into out's
// storage in disk order, without sorting. The hot path streams the result
// through a CandidateStream, which yields ascending order lazily and skips
// the sorting work for candidates the caller never consumes.
func (idx *Index) CollectRangeAppend(ctx context.Context, q []float32, r float64, io *pager.IOStats, out []Candidate) ([]Candidate, error) {
	out = out[:0]
	err := idx.Search(ctx, q, -1, r, io, func(c Candidate) bool {
		out = append(out, c)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Iterator yields indexed points in ascending projected distance from a
// query — the incremental NN search of Algorithm 1 (MIP-Search-I). It
// expands the search radius ring by ring, buffering and sorting each
// annulus.
type Iterator struct {
	idx     *Index
	ctx     context.Context
	io      *pager.IOStats
	q       []float32
	r       float64
	step    float64
	maxR    float64
	buf     []Candidate
	pos     int
	done    bool
	lastErr error
}

// NewIterator starts an incremental NN scan from q, recording page reads
// in io. The annulus width defaults to the ring width ε (each expansion
// round touches at most one new ring per partition). The context is held
// for the iterator's lifetime — an iterator is one query's scan — and
// cancellation surfaces through Err after Next returns false.
func (idx *Index) NewIterator(ctx context.Context, q []float32, io *pager.IOStats) *Iterator {
	maxR := 0.0
	for p, c := range idx.centers {
		if d := vec.L2Dist(q, c) + idx.radii[p]; d > maxR {
			maxR = d
		}
	}
	step := idx.epsilon
	if step <= 0 {
		step = 1
	}
	return &Iterator{idx: idx, ctx: ctx, io: io, q: q, step: step, maxR: maxR}
}

// Next returns the next nearest point, or ok=false when the index is
// exhausted (or a read failed; see Err).
func (it *Iterator) Next() (Candidate, bool) {
	for it.pos >= len(it.buf) {
		if it.done {
			return Candidate{}, false
		}
		lo := it.r
		hi := it.r + it.step
		if lo == 0 {
			lo = -1 // first annulus is the closed ball [0, step]
		}
		// Grow the annulus geometrically when rounds come back empty, so a
		// query far from all partitions doesn't crawl ε by ε.
		it.buf = it.buf[:0]
		it.pos = 0
		err := it.idx.Search(it.ctx, it.q, lo, hi, it.io, func(c Candidate) bool {
			it.buf = append(it.buf, c)
			return true
		})
		if err != nil {
			it.lastErr = err
			it.done = true
			return Candidate{}, false
		}
		SortCandidates(it.buf)
		it.r = hi
		if hi > it.maxR {
			it.done = true
		}
		if len(it.buf) == 0 {
			it.step *= 2
		}
	}
	c := it.buf[it.pos]
	it.pos++
	return c, true
}

// Err reports a read error that terminated the iteration, if any.
func (it *Iterator) Err() error { return it.lastErr }
