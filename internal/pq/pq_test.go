package pq

import (
	"math"
	"math/rand"
	"testing"

	"promips/exact"
	"promips/internal/vec"
)

func randData(r *rand.Rand, n, d int) [][]float32 {
	data := make([][]float32, n)
	for i := range data {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}
	return data
}

// smallCfg keeps builds fast in tests.
func smallCfg(seed int64) Config {
	return Config{
		Subspaces: 4, Centroids: 16, Cells: 8, ProbeCells: 4,
		TrainSample: 2000, MaxIter: 6, PageSize: 1024, Seed: seed,
	}
}

func build(t testing.TB, data [][]float32, cfg Config) *Index {
	t.Helper()
	ix, err := Build(data, t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(nil, t.TempDir(), Config{}); err == nil {
		t.Fatal("expected error for empty data")
	}
}

func TestHouseholdersPreserveNorm(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		d := 4 + r.Intn(30)
		vs := householders(r, 1+r.Intn(8), d)
		x := make([]float64, d)
		var nrm float64
		for j := range x {
			x[j] = r.NormFloat64()
			nrm += x[j] * x[j]
		}
		applyHouseholders(vs, x)
		var after float64
		for _, v := range x {
			after += v * v
		}
		if math.Abs(after-nrm) > 1e-9*(1+nrm) {
			t.Fatalf("rotation changed norm: %v -> %v", nrm, after)
		}
	}
}

func TestRotationMatrixMatchesHouseholders(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	data := randData(r, 300, 11) // d+1 = 12 = 4 subspaces × 3
	ix := build(t, data, smallCfg(3))
	// readRotateResidual must equal applying the same rotation directly.
	// We verify R is orthonormal: rotating any vector preserves its norm.
	q := randData(r, 1, 11)[0]
	qn := vec.Norm2(q)
	qt := qnfTransform(q, qn, ix.lambda, ix.padded)
	for c := 0; c < ix.Cells(); c++ {
		rot, err := ix.readRotateResidual(c, qt)
		if err != nil {
			t.Fatal(err)
		}
		res := make([]float32, ix.padded)
		for j := range res {
			res[j] = qt[j] - ix.cellCents[c][j]
		}
		if diff := math.Abs(vec.Norm2(rot) - vec.Norm2(res)); diff > 1e-4 {
			t.Fatalf("cell %d rotation not orthonormal: norm drift %v", c, diff)
		}
	}
}

func TestQNFTransformIdentity(t *testing.T) {
	// In the transformed space, dis²(o',q') = 2 − 2⟨o,q⟩/(λ‖q‖).
	r := rand.New(rand.NewSource(4))
	const d = 9
	data := randData(r, 50, d)
	var lambda float64
	for _, o := range data {
		if n := vec.Norm2(o); n > lambda {
			lambda = n
		}
	}
	padded := 12
	q := randData(r, 1, d)[0]
	nq := vec.Norm2(q)
	qt := qnfTransform(q, nq, lambda, padded)
	// Query side uses q/‖q‖ with no tail; emulate Search's construction.
	for j := range qt {
		qt[j] = 0
	}
	for j, v := range q {
		qt[j] = float32(float64(v) / nq)
	}
	for _, o := range data {
		ot := qnfTransform(o, vec.Norm2(o), lambda, padded)
		lhs := vec.L2DistSq(ot, qt)
		rhs := 2 - 2*vec.Dot(o, q)/(lambda*nq)
		if math.Abs(lhs-rhs) > 1e-4 {
			t.Fatalf("QNF identity violated: %v vs %v", lhs, rhs)
		}
	}
}

func TestSearchQuality(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	data := randData(r, 2000, 15)
	cfg := smallCfg(6)
	cfg.Centroids = 32
	cfg.ProbeCells = 8
	ix := build(t, data, cfg)
	var recallSum float64
	const queries = 15
	for trial := 0; trial < queries; trial++ {
		q := randData(r, 1, 15)[0]
		got, st, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 10 {
			t.Fatalf("returned %d results", len(got))
		}
		if st.PageAccesses == 0 || st.Candidates == 0 {
			t.Fatalf("stats empty: %+v", st)
		}
		gt := exact.TopK(data, q, 10)
		gtSet := make(map[uint32]bool)
		for _, g := range gt {
			gtSet[g.ID] = true
		}
		hits := 0
		for _, g := range got {
			if gtSet[g.ID] {
				hits++
			}
		}
		recallSum += float64(hits) / 10
	}
	if avg := recallSum / queries; avg < 0.4 {
		t.Fatalf("PQ recall %.3f implausibly low even for a quantized method", avg)
	}
}

func TestApproxIPWithinSlack(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	data := randData(r, 800, 15)
	ix := build(t, data, smallCfg(8))
	q := randData(r, 1, 15)[0]
	got, _, err := ix.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Approximate IPs should correlate with the true IPs: the top result's
	// true inner product should be positive-ish when the approx is large.
	for _, g := range got {
		trueIP := vec.Dot(data[g.ID], q)
		if math.Abs(g.IP-trueIP) > 0.7*(math.Abs(trueIP)+1) {
			t.Logf("warning: ADC estimate %v vs true %v (quantization error)", g.IP, trueIP)
		}
	}
}

func TestSearchErrors(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	data := randData(r, 200, 7)
	ix := build(t, data, smallCfg(10))
	if _, _, err := ix.Search(make([]float32, 6), 1); err == nil {
		t.Fatal("expected dim mismatch error")
	}
	if _, _, err := ix.Search(make([]float32, 7), 0); err == nil {
		t.Fatal("expected k error")
	}
	got, _, err := ix.Search(make([]float32, 7), 3)
	if err != nil || len(got) != 3 {
		t.Fatalf("zero query: %v, %d results", err, len(got))
	}
}

func TestInvertedListsCoverAllPoints(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	data := randData(r, 500, 11)
	cfg := smallCfg(12)
	cfg.ProbeCells = cfg.Cells // probe everything
	ix := build(t, data, cfg)
	q := randData(r, 1, 11)[0]
	_, st, err := ix.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates != 500 {
		t.Fatalf("probing all cells scanned %d of 500 points", st.Candidates)
	}
}

func TestIndexSizeIncludesRotations(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	data := randData(r, 400, 11)
	ix := build(t, data, smallCfg(14))
	// Rotation matrices alone: cells × D² × 4 bytes.
	rotBytes := int64(ix.Cells()) * int64(ix.padded) * int64(ix.padded) * 4
	if ix.IndexSizeBytes() < rotBytes {
		t.Fatalf("index size %d omits rotation matrices (%d)", ix.IndexSizeBytes(), rotBytes)
	}
}
