package pq

import (
	"math/rand"
	"testing"

	"promips/internal/vec"
)

// RerankFactor < 0 disables reranking: the pure-ADC path returns
// quantization-estimated inner products.
func TestADCOnlyPath(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	data := randData(r, 600, 15)
	cfg := smallCfg(22)
	cfg.RerankFactor = -1
	ix := build(t, data, cfg)
	if ix.orig != nil {
		t.Fatal("ADC-only index should not build a rerank store")
	}
	q := randData(r, 1, 15)[0]
	got, st, err := ix.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("returned %d results", len(got))
	}
	if st.PageAccesses == 0 {
		t.Fatal("ADC scan touched no pages")
	}
	// ADC estimates correlate with truth: the mean estimated IP of the
	// top-5 should be positive when the true top-5 mean is clearly positive.
	var estSum, trueSum float64
	for _, g := range got {
		estSum += g.IP
		trueSum += vec.Dot(data[g.ID], q)
	}
	if trueSum > 5 && estSum <= 0 {
		t.Fatalf("ADC estimates anti-correlated: est %.2f true %.2f", estSum, trueSum)
	}
}

func TestRerankImprovesRecall(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	data := randData(r, 1500, 15)
	adc := smallCfg(24)
	adc.RerankFactor = -1
	rer := smallCfg(24)
	rer.RerankFactor = 8
	ixADC := build(t, data, adc)
	ixRer := build(t, data, rer)

	var hitsADC, hitsRer int
	for trial := 0; trial < 10; trial++ {
		q := randData(r, 1, 15)[0]
		gt := make(map[uint32]bool)
		top := newTopIDs(data, q, 10)
		for _, id := range top {
			gt[id] = true
		}
		a, _, err := ixADC.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := ixRer.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range a {
			if gt[g.ID] {
				hitsADC++
			}
		}
		for _, g := range b {
			if gt[g.ID] {
				hitsRer++
			}
		}
	}
	if hitsRer < hitsADC {
		t.Fatalf("reranking reduced recall: %d vs %d", hitsRer, hitsADC)
	}
}

// newTopIDs is a minimal exact top-k for this test.
func newTopIDs(data [][]float32, q []float32, k int) []uint32 {
	type pair struct {
		id uint32
		ip float64
	}
	best := make([]pair, 0, k+1)
	for i, o := range data {
		ip := vec.Dot(o, q)
		pos := len(best)
		for pos > 0 && best[pos-1].ip < ip {
			pos--
		}
		if pos < k {
			best = append(best, pair{})
			copy(best[pos+1:], best[pos:])
			best[pos] = pair{uint32(i), ip}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	out := make([]uint32, len(best))
	for i, p := range best {
		out[i] = p.id
	}
	return out
}

func TestHighDimensionalRotationPages(t *testing.T) {
	// Rotation rows wider than a page must be rejected with a clear error.
	r := rand.New(rand.NewSource(25))
	data := randData(r, 50, 300)
	cfg := smallCfg(26)
	cfg.PageSize = 512 // padded dim 304 → row 1216B > 512B page
	if _, err := Build(data, t.TempDir(), cfg); err == nil {
		t.Fatal("expected rotation-row page-size error")
	}
}

func TestCellsDefaultScalesWithN(t *testing.T) {
	var a, b Config
	a.normalize(1000)
	b.normalize(20000)
	if a.Cells >= b.Cells {
		t.Fatalf("cells should grow with n: %d vs %d", a.Cells, b.Cells)
	}
	if b.Cells > 64 {
		t.Fatalf("cells cap exceeded: %d", b.Cells)
	}
}
