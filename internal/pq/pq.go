// Package pq implements the PQ-based baseline of the ProMIPS paper's
// experiments: the MIP problem is reduced to NN search with the QNF
// asymmetric transformation (as in H2-ALSH) and solved with a locally
// optimized product quantizer in the style of Kalantidis & Avrithis (CVPR
// 2014): a coarse quantizer with per-cell rotation matrices and inverted
// lists, per-subspace codebooks, and lookup-table-based asymmetric distance
// computation (ADC).
//
// Substitution note (see DESIGN.md §4): LOPQ learns its rotations by
// alternating optimization; we use seeded random orthonormal rotations
// (Householder products). The quantization error improvement of training is
// a constant factor, while the costs the paper's figures charge PQ with —
// storing one rotation matrix per cell (index size, Fig 4a), training time
// (Fig 4b), and reading rotations + inverted lists at query time (Fig 7) —
// are exercised identically.
package pq

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sort"

	"promips/internal/kmeans"
	"promips/internal/pager"
	"promips/internal/store"
	"promips/internal/vec"
	"promips/mips"
)

// Config parameterizes the PQ index. Paper defaults: 16 subspaces, 256
// centroids per subspace, 16 probed cells.
type Config struct {
	Subspaces  int // M
	Centroids  int // per-subspace codebook size (≤ 256: codes are bytes)
	Cells      int // coarse cells; 0 = min(64, max(8, n/200))
	ProbeCells int // cells searched per query
	// Reflections is the number of Householder reflections composing each
	// cell's rotation (the materialized matrix is stored on disk
	// regardless, as LOPQ stores its trained rotations).
	Reflections int
	TrainSample int // max points for codebook training
	MaxIter     int // k-means iterations for codebooks
	// RerankFactor reranks the top RerankFactor·k ADC candidates with
	// exact inner products read from the original-vector store (default 5;
	// negative disables reranking). Untrained rotations quantize worse
	// than LOPQ's trained ones; the rerank restores the paper's quality
	// band while keeping the method's page-access profile high (see
	// DESIGN.md §4).
	RerankFactor int
	PageSize     int
	PoolSize     int
	Seed         int64
}

func (c *Config) normalize(n int) {
	if c.Subspaces <= 0 {
		c.Subspaces = 16
	}
	if c.Centroids <= 0 {
		c.Centroids = 256
	}
	if c.Centroids > 256 {
		c.Centroids = 256
	}
	if c.Cells <= 0 {
		c.Cells = n / 200
		if c.Cells < 8 {
			c.Cells = 8
		}
		if c.Cells > 64 {
			c.Cells = 64
		}
	}
	if c.ProbeCells <= 0 {
		c.ProbeCells = 16
	}
	if c.ProbeCells > c.Cells {
		c.ProbeCells = c.Cells
	}
	if c.Reflections <= 0 {
		c.Reflections = 8
	}
	if c.TrainSample <= 0 {
		c.TrainSample = 10000
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 10
	}
	if c.RerankFactor < 0 {
		c.RerankFactor = 0
	} else if c.RerankFactor == 0 {
		c.RerankFactor = 5
	}
	if c.PageSize <= 0 {
		c.PageSize = pager.DefaultPageSize
	}
}

// cellMeta locates one cell's on-disk structures.
type cellMeta struct {
	rotStart  int64 // first page of the rotation matrix
	listStart int64 // first page of the inverted list
	count     int   // points in the cell
}

// Index is a built PQ index implementing mips.Method.
type Index struct {
	cfg    Config
	d, n   int
	padded int     // D: d+1 padded to a multiple of Subspaces
	lambda float64 // global QNF scale (max norm)
	subDim int

	cellCents [][]float32   // coarse centroids (in transformed space)
	codebooks [][][]float32 // [subspace][centroid] -> subDim vector
	cells     []cellMeta

	rotPg  *pager.Pager // per-cell rotation matrices
	listPg *pager.Pager // inverted lists: entries (id uint32 + M codes)
	orig   *store.Store // original vectors in cell order, for reranking

	rotRowsPerPage int
	entrySize      int
	entriesPerPage int
}

var _ mips.Method = (*Index)(nil)

// qnfTransform maps o into the padded transformed space:
// [o/λ ; sqrt(1−‖o‖²/λ²) ; 0...].
func qnfTransform(o []float32, norm, lambda float64, padded int) []float32 {
	t := make([]float32, padded)
	if lambda == 0 {
		return t
	}
	for j, v := range o {
		t[j] = float32(float64(v) / lambda)
	}
	rest := 1 - (norm*norm)/(lambda*lambda)
	if rest < 0 {
		rest = 0
	}
	t[len(o)] = float32(math.Sqrt(rest))
	return t
}

// householders generates the unit reflection vectors for one cell.
func householders(r *rand.Rand, count, dim int) [][]float64 {
	vs := make([][]float64, count)
	for i := range vs {
		v := make([]float64, dim)
		var nrm float64
		for j := range v {
			v[j] = r.NormFloat64()
			nrm += v[j] * v[j]
		}
		nrm = math.Sqrt(nrm)
		for j := range v {
			v[j] /= nrm
		}
		vs[i] = v
	}
	return vs
}

// applyHouseholders rotates x in place: x ← H_T···H_1 x.
func applyHouseholders(vs [][]float64, x []float64) {
	for _, v := range vs {
		var dot float64
		for j := range x {
			dot += v[j] * x[j]
		}
		dot *= 2
		for j := range x {
			x[j] -= dot * v[j]
		}
	}
}

// Build constructs the index over data in dir.
func Build(data [][]float32, dir string, cfg Config) (*Index, error) {
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("pq: empty dataset")
	}
	cfg.normalize(n)
	d := len(data[0])
	padded := ((d + 1 + cfg.Subspaces - 1) / cfg.Subspaces) * cfg.Subspaces
	subDim := padded / cfg.Subspaces

	// QNF reduction with the global maximum norm.
	norms := make([]float64, n)
	var lambda float64
	for i, o := range data {
		norms[i] = vec.Norm2(o)
		if norms[i] > lambda {
			lambda = norms[i]
		}
	}
	transformed := make([][]float32, n)
	for i, o := range data {
		transformed[i] = qnfTransform(o, norms[i], lambda, padded)
	}

	// Coarse quantizer.
	coarse := kmeans.Run(transformed, kmeans.Config{K: cfg.Cells, Seed: cfg.Seed, MaxIter: 15})
	cells := len(coarse.Centroids)

	ix := &Index{
		cfg: cfg, d: d, n: n, padded: padded, lambda: lambda, subDim: subDim,
		cellCents: coarse.Centroids,
		cells:     make([]cellMeta, cells),
		entrySize: 4 + cfg.Subspaces,
	}
	ix.entriesPerPage = cfg.PageSize / ix.entrySize
	ix.rotRowsPerPage = cfg.PageSize / (4 * padded)
	if ix.rotRowsPerPage == 0 {
		return nil, fmt.Errorf("pq: rotation row of dim %d exceeds page size %d", padded, cfg.PageSize)
	}
	if ix.entriesPerPage == 0 {
		return nil, fmt.Errorf("pq: list entry exceeds page size")
	}

	// Per-cell rotations (Householder form for fast application during
	// encoding; materialized matrices on disk as the queried structure).
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	cellHH := make([][][]float64, cells)
	for c := range cellHH {
		cellHH[c] = householders(rng, cfg.Reflections, padded)
	}

	opts := pager.Options{PageSize: cfg.PageSize, PoolSize: cfg.PoolSize}
	var err error
	ix.rotPg, err = pager.Create(filepath.Join(dir, "pq.rot"), opts)
	if err != nil {
		return nil, err
	}
	ix.listPg, err = pager.Create(filepath.Join(dir, "pq.lists"), opts)
	if err != nil {
		ix.rotPg.Close()
		return nil, err
	}
	for c := 0; c < cells; c++ {
		start, err := ix.writeRotation(cellHH[c])
		if err != nil {
			ix.Close()
			return nil, err
		}
		ix.cells[c].rotStart = start
	}

	// Rotated residuals.
	rotres := make([][]float32, n)
	tmp := make([]float64, padded)
	for i, t := range transformed {
		c := coarse.Assign[i]
		cent := coarse.Centroids[c]
		for j := range tmp {
			tmp[j] = float64(t[j]) - float64(cent[j])
		}
		applyHouseholders(cellHH[c], tmp)
		rr := make([]float32, padded)
		for j, v := range tmp {
			rr[j] = float32(v)
		}
		rotres[i] = rr
	}

	// Per-subspace codebooks trained on a sample of rotated residuals.
	sampleIdx := rng.Perm(n)
	if len(sampleIdx) > cfg.TrainSample {
		sampleIdx = sampleIdx[:cfg.TrainSample]
	}
	ix.codebooks = make([][][]float32, cfg.Subspaces)
	codes := make([][]byte, n)
	for i := range codes {
		codes[i] = make([]byte, cfg.Subspaces)
	}
	for s := 0; s < cfg.Subspaces; s++ {
		lo := s * subDim
		sample := make([][]float32, len(sampleIdx))
		for i, si := range sampleIdx {
			sample[i] = rotres[si][lo : lo+subDim]
		}
		res := kmeans.Run(sample, kmeans.Config{K: cfg.Centroids, Seed: cfg.Seed + int64(s) + 7, MaxIter: cfg.MaxIter})
		ix.codebooks[s] = res.Centroids
		// Encode every point against this codebook.
		for i := 0; i < n; i++ {
			sub := rotres[i][lo : lo+subDim]
			best, bestD := 0, math.Inf(1)
			for ci, cent := range res.Centroids {
				if dd := vec.L2DistSq(sub, cent); dd < bestD {
					best, bestD = ci, dd
				}
			}
			codes[i][s] = byte(best)
		}
	}

	// Inverted lists: per cell, contiguous pages of (id, codes).
	members := make([][]uint32, cells)
	for i := 0; i < n; i++ {
		c := coarse.Assign[i]
		members[c] = append(members[c], uint32(i))
	}
	page := make([]byte, cfg.PageSize)
	for c := 0; c < cells; c++ {
		ix.cells[c].count = len(members[c])
		if len(members[c]) == 0 {
			ix.cells[c].listStart = -1
			continue
		}
		first := int64(-1)
		slot := 0
		var cur int64 = -1
		flush := func() error {
			if cur < 0 {
				return nil
			}
			return ix.listPg.Write(cur, page)
		}
		for _, id := range members[c] {
			if cur < 0 || slot == ix.entriesPerPage {
				if err := flush(); err != nil {
					ix.Close()
					return nil, err
				}
				pid, err := ix.listPg.Alloc()
				if err != nil {
					ix.Close()
					return nil, err
				}
				if first < 0 {
					first = pid
				}
				cur, slot = pid, 0
				for i := range page {
					page[i] = 0
				}
			}
			off := slot * ix.entrySize
			binary.LittleEndian.PutUint32(page[off:], id)
			copy(page[off+4:], codes[id])
			slot++
		}
		if err := flush(); err != nil {
			ix.Close()
			return nil, err
		}
		ix.cells[c].listStart = first
	}
	if err := ix.rotPg.Sync(); err != nil {
		ix.Close()
		return nil, err
	}
	if err := ix.listPg.Sync(); err != nil {
		ix.Close()
		return nil, err
	}

	// Original vectors in cell order, read only by the rerank pass.
	if cfg.RerankFactor > 0 {
		w, err := store.Create(filepath.Join(dir, "pq.orig"), d, n, opts)
		if err != nil {
			ix.Close()
			return nil, err
		}
		for c := 0; c < cells; c++ {
			for _, id := range members[c] {
				if err := w.Append(id, data[id]); err != nil {
					ix.Close()
					return nil, err
				}
			}
		}
		st, err := w.Finalize()
		if err != nil {
			ix.Close()
			return nil, err
		}
		ix.orig = st
	}
	return ix, nil
}

// writeRotation materializes the Householder product as a D×D row-major
// matrix on fresh pages (rotRowsPerPage rows per page) and returns the
// first page id.
func (ix *Index) writeRotation(vs [][]float64) (int64, error) {
	D := ix.padded
	// Row i of R is (H_T···H_1)ᵀ applied to eᵢ... we need R x, stored by
	// rows: R[i][j]. Build R by rotating each basis vector: column j of R
	// is H(e_j); equivalently R[i][j] = (H e_j)[i]. Materialize columns
	// then transpose into rows.
	cols := make([][]float64, D)
	tmp := make([]float64, D)
	for j := 0; j < D; j++ {
		for i := range tmp {
			tmp[i] = 0
		}
		tmp[j] = 1
		applyHouseholders(vs, tmp)
		col := make([]float64, D)
		copy(col, tmp)
		cols[j] = col
	}
	first := int64(-1)
	page := make([]byte, ix.cfg.PageSize)
	var cur int64 = -1
	rowInPage := 0
	flush := func() error {
		if cur < 0 {
			return nil
		}
		return ix.rotPg.Write(cur, page)
	}
	for i := 0; i < D; i++ {
		if cur < 0 || rowInPage == ix.rotRowsPerPage {
			if err := flush(); err != nil {
				return 0, err
			}
			pid, err := ix.rotPg.Alloc()
			if err != nil {
				return 0, err
			}
			if first < 0 {
				first = pid
			}
			cur, rowInPage = pid, 0
			for b := range page {
				page[b] = 0
			}
		}
		off := rowInPage * 4 * D
		for j := 0; j < D; j++ {
			binary.LittleEndian.PutUint32(page[off+4*j:], math.Float32bits(float32(cols[j][i])))
		}
		rowInPage++
	}
	return first, flush()
}

// readRotateResidual reads cell c's rotation matrix from disk and returns
// R·(x − centroid_c).
func (ix *Index) readRotateResidual(c int, x []float32) ([]float32, error) {
	D := ix.padded
	res := make([]float64, D)
	cent := ix.cellCents[c]
	for j := 0; j < D; j++ {
		res[j] = float64(x[j]) - float64(cent[j])
	}
	out := make([]float32, D)
	rowsDone := 0
	for pid := ix.cells[c].rotStart; rowsDone < D; pid++ {
		page, err := ix.rotPg.Read(pid, nil)
		if err != nil {
			return nil, err
		}
		rows := ix.rotRowsPerPage
		if D-rowsDone < rows {
			rows = D - rowsDone
		}
		for r := 0; r < rows; r++ {
			off := r * 4 * D
			var s float64
			for j := 0; j < D; j++ {
				s += float64(math.Float32frombits(binary.LittleEndian.Uint32(page[off+4*j:]))) * res[j]
			}
			out[rowsDone+r] = float32(s)
		}
		rowsDone += rows
	}
	return out, nil
}

// Name implements mips.Method.
func (ix *Index) Name() string { return "PQ-Based" }

// Cells returns the number of coarse cells.
func (ix *Index) Cells() int { return len(ix.cells) }

// IndexSizeBytes counts rotation matrices, inverted lists (with codes),
// coarse centroids and codebooks — the "many local rotation matrices and
// cells" the paper charges PQ's index size with.
func (ix *Index) IndexSizeBytes() int64 {
	cents := int64(len(ix.cellCents)) * int64(ix.padded) * 4
	books := int64(ix.cfg.Subspaces) * int64(ix.cfg.Centroids) * int64(ix.subDim) * 4
	return ix.rotPg.SizeBytes() + ix.listPg.SizeBytes() + cents + books
}

// Search implements mips.Method: probe the nearest coarse cells, scanning
// their inverted lists with LUT-based ADC; returned IPs are the ADC
// approximations mapped back through the QNF identity
// ⟨o,q⟩ = λ‖q‖(1 − dis²/2).
func (ix *Index) Search(q []float32, k int) ([]mips.Result, mips.QueryStats, error) {
	if len(q) != ix.d {
		return nil, mips.QueryStats{}, fmt.Errorf("pq: query dim %d, want %d", len(q), ix.d)
	}
	if k <= 0 {
		return nil, mips.QueryStats{}, fmt.Errorf("pq: k must be positive")
	}
	if k > ix.n {
		k = ix.n
	}
	pagers := []*pager.Pager{ix.rotPg, ix.listPg}
	if ix.orig != nil {
		pagers = append(pagers, ix.orig.Pager())
	}
	for _, pg := range pagers {
		pg.DropPool()
		pg.ResetStats()
	}
	var qs mips.QueryStats

	normQ := vec.Norm2(q)
	if normQ == 0 {
		out := make([]mips.Result, k)
		for i := range out {
			out[i] = mips.Result{ID: uint32(i), IP: 0}
		}
		return out, qs, nil
	}
	// Query-side QNF: [q/‖q‖ ; 0 ; pad].
	qt := make([]float32, ix.padded)
	for j, v := range q {
		qt[j] = float32(float64(v) / normQ)
	}

	// Rank cells by distance to the transformed query.
	type cellDist struct {
		c int
		d float64
	}
	cd := make([]cellDist, len(ix.cellCents))
	for c, cent := range ix.cellCents {
		cd[c] = cellDist{c: c, d: vec.L2DistSq(qt, cent)}
	}
	sort.Slice(cd, func(a, b int) bool { return cd[a].d < cd[b].d })

	// Shortlist size: k for pure ADC, RerankFactor·k when reranking.
	short := k
	if ix.orig != nil && ix.cfg.RerankFactor > 0 {
		short = ix.cfg.RerankFactor * k
		if short > ix.n {
			short = ix.n
		}
	}
	type scored struct {
		id  uint32
		dSq float64
	}
	var best []scored
	worst := math.Inf(1)
	offer := func(id uint32, dSq float64) {
		if len(best) == short && dSq >= worst {
			return
		}
		pos := sort.Search(len(best), func(i int) bool { return best[i].dSq > dSq })
		best = append(best, scored{})
		copy(best[pos+1:], best[pos:])
		best[pos] = scored{id: id, dSq: dSq}
		if len(best) > short {
			best = best[:short]
		}
		if len(best) == short {
			worst = best[short-1].dSq
		}
	}

	lut := make([][]float64, ix.cfg.Subspaces)
	for s := range lut {
		lut[s] = make([]float64, len(ix.codebooks[s]))
	}
	probe := ix.cfg.ProbeCells
	for pi := 0; pi < probe && pi < len(cd); pi++ {
		c := cd[pi].c
		meta := ix.cells[c]
		if meta.count == 0 {
			continue
		}
		rq, err := ix.readRotateResidual(c, qt)
		if err != nil {
			return nil, qs, err
		}
		for s := 0; s < ix.cfg.Subspaces; s++ {
			lo := s * ix.subDim
			sub := rq[lo : lo+ix.subDim]
			for ci, cent := range ix.codebooks[s] {
				lut[s][ci] = vec.L2DistSq(sub, cent)
			}
		}
		remaining := meta.count
		for pid := meta.listStart; remaining > 0; pid++ {
			page, err := ix.listPg.Read(pid, nil)
			if err != nil {
				return nil, qs, err
			}
			inPage := ix.entriesPerPage
			if remaining < inPage {
				inPage = remaining
			}
			for e := 0; e < inPage; e++ {
				off := e * ix.entrySize
				id := binary.LittleEndian.Uint32(page[off:])
				var dSq float64
				for s := 0; s < ix.cfg.Subspaces; s++ {
					dSq += lut[s][page[off+4+s]]
				}
				qs.Candidates++
				offer(id, dSq)
			}
			remaining -= inPage
		}
	}

	var out []mips.Result
	if ix.orig != nil {
		// Rerank the ADC shortlist with exact inner products.
		buf := make([]float32, ix.d)
		top := mips.NewTopK(k)
		for _, b := range best {
			o, err := ix.orig.Vector(b.id, buf, nil)
			if err != nil {
				return nil, qs, err
			}
			top.Offer(b.id, vec.Dot(o, q))
		}
		out = append([]mips.Result(nil), top.Results()...)
	} else {
		out = make([]mips.Result, len(best))
		for i, b := range best {
			out[i] = mips.Result{ID: b.id, IP: ix.lambda * normQ * (1 - b.dSq/2)}
		}
	}
	for _, pg := range pagers {
		qs.PageAccesses += pg.Stats().Misses
	}
	return out, qs, nil
}

// Close releases the page files.
func (ix *Index) Close() error {
	err := ix.rotPg.Close()
	if e := ix.listPg.Close(); err == nil {
		err = e
	}
	if ix.orig != nil {
		if e := ix.orig.Close(); err == nil {
			err = e
		}
	}
	return err
}
