package pq

import (
	"math/rand"
	"testing"

	"promips/internal/vec"
)

func randVecs(r *rand.Rand, n, d int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		out[i] = v
	}
	return out
}

// TestSketchBoundIsUpperBound is the load-bearing property: Bound must
// dominate the true inner product for every (point, query) pair — the
// candidate prune's exactness (and with it the (c,p) guarantee) rests on
// it.
func TestSketchBoundIsUpperBound(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, d := range []int{7, 32, 300} {
		data := randVecs(r, 300, d)
		s, err := BuildSketch(data, SketchConfig{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		queries := randVecs(r, 20, d)
		var lut []float64
		for _, q := range queries {
			lut = s.NewLUT(q, lut)
			normQ := vec.Norm2(q)
			for id := range data {
				truth := vec.Dot(data[id], q)
				bound := s.Bound(uint32(id), lut, normQ)
				if bound < truth {
					t.Fatalf("d=%d id=%d: bound %v < true inner product %v", d, id, bound, truth)
				}
			}
		}
	}
}

// TestSketchEstimateQuality sanity-checks that the estimate actually
// correlates with the truth: averaged over many pairs, |estimate - truth|
// must be far below the inner products' own spread (otherwise pre-ranking
// would be noise).
func TestSketchEstimateQuality(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const d = 64
	data := randVecs(r, 500, d)
	s, err := BuildSketch(data, SketchConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := data[7]
	lut := s.NewLUT(q, nil)
	var errSum, magSum float64
	for id := range data {
		truth := vec.Dot(data[id], q)
		est := s.Estimate(uint32(id), lut)
		if est > truth {
			errSum += est - truth
		} else {
			errSum += truth - est
		}
		if truth < 0 {
			magSum -= truth
		} else {
			magSum += truth
		}
	}
	if errSum > magSum {
		t.Fatalf("estimate error %.2f exceeds signal magnitude %.2f", errSum, magSum)
	}
}

func TestSketchMarshalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	data := randVecs(r, 120, 40)
	s, err := BuildSketch(data, SketchConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := UnmarshalSketch(blob)
	if err != nil {
		t.Fatal(err)
	}
	q := data[3]
	lut1 := s.NewLUT(q, nil)
	lut2 := s2.NewLUT(q, nil)
	normQ := vec.Norm2(q)
	for id := range data {
		if s.Estimate(uint32(id), lut1) != s2.Estimate(uint32(id), lut2) {
			t.Fatalf("id %d: estimate differs after round trip", id)
		}
		if s.Bound(uint32(id), lut1, normQ) != s2.Bound(uint32(id), lut2, normQ) {
			t.Fatalf("id %d: bound differs after round trip", id)
		}
	}
	if s2.Bytes() != s.Bytes() || s2.Len() != s.Len() {
		t.Fatal("geometry differs after round trip")
	}
}

func TestUnmarshalSketchRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalSketch([]byte("not a gob")); err == nil {
		t.Fatal("expected error for garbage blob")
	}
	// A structurally valid gob with inconsistent geometry must be rejected
	// too: truncate the codes of a real sketch.
	r := rand.New(rand.NewSource(23))
	data := randVecs(r, 50, 16)
	s, err := BuildSketch(data, SketchConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.codes = s.codes[:len(s.codes)-1]
	blob, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSketch(blob); err == nil {
		t.Fatal("expected error for inconsistent code length")
	}
}

// TestSketchLowDim covers d < default subspaces (each subspace one
// dimension) and tiny datasets (fewer points than centroids).
func TestSketchLowDim(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	data := randVecs(r, 9, 3)
	s, err := BuildSketch(data, SketchConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := data[0]
	lut := s.NewLUT(q, nil)
	normQ := vec.Norm2(q)
	for id := range data {
		truth := vec.Dot(data[id], q)
		if b := s.Bound(uint32(id), lut, normQ); b < truth {
			t.Fatalf("id %d: bound %v < truth %v", id, b, truth)
		}
	}
}
