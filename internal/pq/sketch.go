package pq

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"promips/internal/kmeans"
	"promips/internal/vec"
)

// Sketch is an in-memory product-quantization inner-product estimator: the
// dataset's vectors are split into Subspaces contiguous chunks, each chunk
// quantized against a small per-subspace codebook, and a point is kept as
// Subspaces one-byte codes. At query time one lookup table of
// ⟨codebook centroid, query chunk⟩ inner products turns every point's
// estimated ⟨o,q⟩ into Subspaces table lookups and adds — no disk I/O, no
// per-point float math.
//
// ProMIPS uses the sketch to PRE-RANK candidate verification: the
// estimated-best candidates are verified (exactly, from the original-vector
// store) first, so the true top-k surfaces after far fewer disk
// verifications and Condition B's denominator shrinks early. The sketch
// never decides membership of the result set — every returned point is still
// exactly verified — so the (c, p) guarantee is untouched; see DESIGN.md.
//
// A Sketch is immutable after BuildSketch and safe for concurrent use.
type Sketch struct {
	d, n      int
	subspaces int
	subDim    int // ceil(d / subspaces); the last chunk is zero-padded
	centroids int
	codebooks [][]float32 // [subspaces][centroids*subDim], row-major
	codes     []byte      // [n][subspaces], row-major
	// resid[i] = sqrt(Σ_sub ‖chunk_sub(o_i) − codeword‖²): the point's total
	// quantization residual. By Cauchy-Schwarz (per subspace, then across
	// subspaces), |⟨o,q⟩ − Estimate(o,q)| ≤ resid[o]·‖q‖, making Bound an
	// EXACT upper bound on the true inner product — the basis of the
	// no-probability-spent candidate prune.
	resid []float32
}

// SketchConfig sizes a Sketch. The defaults (16 subspaces × 16 centroids)
// keep it at 16 bytes per point with a per-query table build of
// centroids × d multiplications — noise next to one candidate verification.
type SketchConfig struct {
	Subspaces   int   // default 16 (clamped to d)
	Centroids   int   // per-subspace codebook size, ≤ 256; default 16
	TrainSample int   // max points used to train codebooks; default 2000
	MaxIter     int   // k-means iterations per codebook; default 8
	Seed        int64 // clustering seed
}

func (c *SketchConfig) normalize(d int) {
	if c.Subspaces <= 0 {
		c.Subspaces = 16
	}
	if c.Subspaces > d {
		c.Subspaces = d
	}
	if c.Centroids <= 0 {
		c.Centroids = 16
	}
	if c.Centroids > 256 {
		c.Centroids = 256
	}
	if c.TrainSample <= 0 {
		c.TrainSample = 2000
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 8
	}
}

// BuildSketch trains the per-subspace codebooks on (a sample of) data and
// encodes every point. Point i's codes row is i, matching the ids the
// ProMIPS core assigns at Build.
func BuildSketch(data [][]float32, cfg SketchConfig) (*Sketch, error) {
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("pq: sketch over empty dataset")
	}
	d := len(data[0])
	cfg.normalize(d)
	subDim := (d + cfg.Subspaces - 1) / cfg.Subspaces

	s := &Sketch{
		d: d, n: n,
		subspaces: cfg.Subspaces,
		subDim:    subDim,
		codebooks: make([][]float32, cfg.Subspaces),
		codes:     make([]byte, n*cfg.Subspaces),
		resid:     make([]float32, n),
	}
	residSq := make([]float64, n)

	// Training sample: an even stride over the dataset keeps the sample
	// deterministic and spread across the (often locality-ordered) input.
	stride := 1
	if n > cfg.TrainSample {
		stride = n / cfg.TrainSample
	}

	chunk := make([]float32, subDim)
	for sub := 0; sub < cfg.Subspaces; sub++ {
		lo := sub * subDim
		sample := make([][]float32, 0, n/stride+1)
		for i := 0; i < n; i += stride {
			sample = append(sample, subChunk(data[i], lo, subDim, nil))
		}
		res := kmeans.Run(sample, kmeans.Config{K: cfg.Centroids, Seed: cfg.Seed + int64(sub)*131, MaxIter: cfg.MaxIter})
		k := len(res.Centroids)
		book := make([]float32, k*subDim)
		for ci, cent := range res.Centroids {
			copy(book[ci*subDim:], cent)
		}
		s.codebooks[sub] = book
		if sub == 0 {
			s.centroids = k
		} else if k != s.centroids {
			// Degenerate data can reduce a codebook below K; pad with copies
			// of the last centroid so every subspace has the same table
			// geometry (codes never reference the padding).
			if k < s.centroids {
				pad := make([]float32, s.centroids*subDim)
				copy(pad, book)
				for ci := k; ci < s.centroids; ci++ {
					copy(pad[ci*subDim:], book[(k-1)*subDim:k*subDim])
				}
				s.codebooks[sub] = pad
			} else {
				s.codebooks[sub] = book[:s.centroids*subDim]
			}
		}

		// Encode every point against this codebook, accumulating its
		// quantization residual.
		for i, o := range data {
			c := subChunk(o, lo, subDim, chunk)
			best, bestD := 0, float64(0)
			for ci := 0; ci < k && ci < s.centroids; ci++ {
				dd := vec.L2DistSq(c, book[ci*subDim:(ci+1)*subDim])
				if ci == 0 || dd < bestD {
					best, bestD = ci, dd
				}
			}
			s.codes[i*cfg.Subspaces+sub] = byte(best)
			residSq[i] += bestD
		}
	}
	for i, r2 := range residSq {
		// Round the residual up by one float32 ulp-ish factor so the bound
		// stays an upper bound after the float32 truncation.
		s.resid[i] = float32(math.Sqrt(r2)) * (1 + 1e-6)
	}
	return s, nil
}

// subChunk copies v[lo:lo+subDim] into dst (allocating when nil),
// zero-padding past the end of v.
func subChunk(v []float32, lo, subDim int, dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, subDim)
	}
	dst = dst[:subDim]
	n := copy(dst, v[min(lo, len(v)):])
	for i := n; i < subDim; i++ {
		dst[i] = 0
	}
	return dst
}

// Len returns the number of encoded points.
func (s *Sketch) Len() int { return s.n }

// Bytes returns the in-memory footprint of the codes, residuals and
// codebooks (the per-point cost the index size accounting charges the
// sketch with).
func (s *Sketch) Bytes() int64 {
	book := int64(s.subspaces) * int64(s.centroids) * int64(s.subDim) * 4
	return int64(len(s.codes)) + int64(len(s.resid))*4 + book
}

// LUTSize returns the length of the lookup table NewLUT fills.
func (s *Sketch) LUTSize() int { return s.subspaces * s.centroids }

// NewLUT builds the query's asymmetric lookup table into dst (reused when
// large enough): lut[sub*centroids+c] = ⟨codebook[sub][c], q chunk sub⟩, so
// Estimate is a pure table walk.
func (s *Sketch) NewLUT(q []float32, dst []float64) []float64 {
	if cap(dst) < s.LUTSize() {
		dst = make([]float64, s.LUTSize())
	}
	dst = dst[:s.LUTSize()]
	for sub := 0; sub < s.subspaces; sub++ {
		lo := sub * s.subDim
		hi := lo + s.subDim
		if hi > s.d {
			hi = s.d
		}
		if lo >= s.d {
			for c := 0; c < s.centroids; c++ {
				dst[sub*s.centroids+c] = 0
			}
			continue
		}
		chunk := q[lo:hi]
		book := s.codebooks[sub]
		for c := 0; c < s.centroids; c++ {
			row := book[c*s.subDim : c*s.subDim+len(chunk)]
			var acc float64
			for j, v := range chunk {
				acc += float64(row[j]) * float64(v)
			}
			dst[sub*s.centroids+c] = acc
		}
	}
	return dst
}

// Estimate returns the sketch's estimated ⟨o_id, q⟩ from a table NewLUT
// built for q.
func (s *Sketch) Estimate(id uint32, lut []float64) float64 {
	row := s.codes[int(id)*s.subspaces : (int(id)+1)*s.subspaces]
	var acc float64
	for sub, code := range row {
		acc += lut[sub*s.centroids+int(code)]
	}
	return acc
}

// Bound returns an EXACT upper bound on ⟨o_id, q⟩: the sketch estimate plus
// the point's quantization residual times ‖q‖ (normQ), widened by a
// relative epsilon that dominates the float64 accumulation error (without
// it, a zero-residual point — one that IS a codeword — would rest the
// bound on bit-for-bit rounding agreement between two differently ordered
// dot products). A candidate whose Bound cannot beat the current k-th
// inner product provably cannot enter the top-k, so its disk verification
// can be skipped with no probability spent.
func (s *Sketch) Bound(id uint32, lut []float64, normQ float64) float64 {
	b := s.Estimate(id, lut) + float64(s.resid[id])*normQ
	if b >= 0 {
		return b * (1 + 1e-9)
	}
	return b * (1 - 1e-9)
}

// sketchMeta is the gob image of a Sketch.
type sketchMeta struct {
	D, N      int
	Subspaces int
	SubDim    int
	Centroids int
	Codebooks [][]float32
	Codes     []byte
	Resid     []float32
}

// Marshal serializes the sketch for persistence alongside the index meta.
func (s *Sketch) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(sketchMeta{
		D: s.d, N: s.n,
		Subspaces: s.subspaces, SubDim: s.subDim, Centroids: s.centroids,
		Codebooks: s.codebooks, Codes: s.codes, Resid: s.resid,
	})
	if err != nil {
		return nil, fmt.Errorf("pq: marshal sketch: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalSketch reverses Marshal.
func UnmarshalSketch(b []byte) (*Sketch, error) {
	var m sketchMeta
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return nil, fmt.Errorf("pq: unmarshal sketch: %w", err)
	}
	if m.N <= 0 || m.Subspaces <= 0 || m.Centroids <= 0 || m.SubDim <= 0 ||
		len(m.Codes) != m.N*m.Subspaces || len(m.Codebooks) != m.Subspaces ||
		len(m.Resid) != m.N {
		return nil, fmt.Errorf("pq: unmarshal sketch: inconsistent geometry")
	}
	for _, book := range m.Codebooks {
		if len(book) != m.Centroids*m.SubDim {
			return nil, fmt.Errorf("pq: unmarshal sketch: inconsistent codebook size")
		}
	}
	return &Sketch{
		d: m.D, n: m.N,
		subspaces: m.Subspaces, subDim: m.SubDim, centroids: m.Centroids,
		codebooks: m.Codebooks, codes: m.Codes, resid: m.Resid,
	}, nil
}
