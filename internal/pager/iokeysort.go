package pager

import (
	"math/bits"
	"slices"
)

// Sorting the per-query access log is on the query hot path (IOStats.Pages
// runs once per search), so the sort is specialized: inline comparisons on
// the concrete key type instead of the generic sort's indirect comparator
// call per comparison. Same shape as internal/idistance's candidate sort —
// median-of-three Hoare quicksort, insertion-sort cutoff, stdlib fallback
// on pathological pivot sequences.

func ioKeyLess(a, b ioKey) bool {
	if a.pager != b.pager {
		return a.pager < b.pager
	}
	return a.page < b.page
}

func ioKeyCmp(a, b ioKey) int {
	switch {
	case ioKeyLess(a, b):
		return -1
	case ioKeyLess(b, a):
		return 1
	}
	return 0
}

func sortIOKeys(s []ioKey) {
	quickIOKeys(s, 2*bits.Len(uint(len(s))))
}

func quickIOKeys(s []ioKey, depth int) {
	for len(s) > 16 {
		if depth == 0 {
			slices.SortFunc(s, ioKeyCmp)
			return
		}
		depth--
		// Median-of-three pivot parked at index 0 (Hoare's non-empty-split
		// guarantee).
		ia, ib, ic := 0, len(s)/2, len(s)-1
		if ioKeyLess(s[ib], s[ia]) {
			ia, ib = ib, ia
		}
		if ioKeyLess(s[ic], s[ib]) {
			ib = ic
			if ioKeyLess(s[ib], s[ia]) {
				ib = ia
			}
		}
		s[0], s[ib] = s[ib], s[0]
		pivot := s[0]
		i, j := -1, len(s)
		for {
			for {
				i++
				if !ioKeyLess(s[i], pivot) {
					break
				}
			}
			for {
				j--
				if !ioKeyLess(pivot, s[j]) {
					break
				}
			}
			if i >= j {
				break
			}
			s[i], s[j] = s[j], s[i]
		}
		m := j + 1
		if m <= len(s)-m {
			quickIOKeys(s[:m], depth)
			s = s[m:]
		} else {
			quickIOKeys(s[m:], depth)
			s = s[:m]
		}
	}
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && ioKeyLess(v, s[j]) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
