// Package pager provides a file-backed page store with a sharded CLOCK
// buffer pool and page-access accounting. Every disk-resident structure in
// this repository (the iDistance B+-tree, the original-vector store, QALSH's
// hash tables, Range-LSH's sequential partitions, PQ's inverted lists) does
// its I/O through a Pager, so the paper's "Page Access" metric is measured
// identically for every method: one logical access per page touched.
//
// Concurrency. A Pager is safe for concurrent use. The buffer pool is split
// into lock-striped shards keyed by page id (consecutive pages share a
// shard block, so short sequential runs resolve under one shard lock), and
// the pool-hit path — the common case on a warm index — takes only that
// shard's lock shared, so goroutines serving different queries do not
// serialize on one pool mutex. Misses read the file OUTSIDE any lock and
// install the page under the shard's exclusive lock afterwards: concurrent
// misses — the case that dominates on a disk-resident working set — overlap
// instead of queueing behind a global mutex (two goroutines missing the
// same page may duplicate the file read; the first installed copy wins).
// Per-caller accounting goes through IOStats: each query owns an
// accumulator and threads it through every Read, so no query ever needs to
// reset the shared counters to measure itself.
//
// Eviction is CLOCK second-chance per shard: hits set a reference bit with
// one atomic store, and a miss that needs room sweeps the shard's ring,
// giving referenced pages a second pass before they go. This keeps the hit
// path free of list maintenance (no LRU chain to relink under a lock).
//
// Page slices returned by Read alias the buffer pool and are never mutated
// in place: Write installs a fresh buffer (copy-on-write) and eviction only
// drops the pool's reference. A slice obtained before either event remains
// a valid, stable snapshot of the page for as long as the caller keeps it.
package pager

import (
	"errors"
	"fmt"
	"os"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"promips/internal/errs"
)

// DefaultPageSize matches the paper's 4KB pages (64KB is used for P53).
const DefaultPageSize = 4096

// ErrPageOutOfRange is returned when a page id does not exist in the file.
var ErrPageOutOfRange = errors.New("pager: page id out of range")

// Sharding geometry. maxShards bounds the stripe count; shardBlockShift
// groups runs of 2^shardBlockShift consecutive pages into one shard, so the
// sequential runs ReadRun fetches (sub-partition scans, store verification
// windows) resolve under a single shard lock while unrelated queries still
// spread across stripes.
const (
	maxShards       = 16
	shardBlockShift = 3 // 8-page blocks
	minShardPages   = 32
)

// Stats counts I/O activity. Accesses is the number of logical page reads
// issued through the pager; Hits the buffer-pool hits among them; Misses
// the pool misses (pages actually read from the file); Evictions the pages
// CLOCK pushed out of the pool to make room.
type Stats struct {
	Accesses  int64
	Hits      int64
	Misses    int64
	Evictions int64
	Writes    int64
}

// Sub returns s - t component-wise; callers snapshot Stats around a query to
// obtain its per-query page accesses.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Accesses:  s.Accesses - t.Accesses,
		Hits:      s.Hits - t.Hits,
		Misses:    s.Misses - t.Misses,
		Evictions: s.Evictions - t.Evictions,
		Writes:    s.Writes - t.Writes,
	}
}

// Add returns s + t component-wise, for aggregating counters across the
// pagers of one index.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		Accesses:  s.Accesses + t.Accesses,
		Hits:      s.Hits + t.Hits,
		Misses:    s.Misses + t.Misses,
		Evictions: s.Evictions + t.Evictions,
		Writes:    s.Writes + t.Writes,
	}
}

// HitRatio returns Hits/Accesses, or 0 when no accesses were recorded.
func (s Stats) HitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// ioKey identifies one page of one pager inside an IOStats set.
type ioKey struct {
	pager uint64
	page  int64
}

// IOStats accumulates one caller's I/O across any number of pagers. It is
// the per-query accounting channel: searches thread one accumulator through
// every page read they issue, so the paper's Page Access metric is measured
// per query without resetting (or even looking at) the pagers' shared
// counters — which is what makes concurrent queries over one index
// measurable at all.
//
// Recording is a slice append (the record path runs once per page read on
// the query hot path, so it must not hash); the distinct-page reduction is
// deferred to Pages, which sorts and compacts the log in place, once, when
// the caller reads the metric.
//
// The zero value is ready to use. A nil *IOStats is valid everywhere one is
// accepted and discards the accounting. An IOStats is NOT safe for
// concurrent use: each query owns its own.
type IOStats struct {
	// Reads counts logical page reads (every Read/ReadCopy call, and one per
	// page of a ReadRun).
	Reads int64

	seen   []ioKey // access log; seen[:unique] is sorted and duplicate-free
	unique int
}

func (s *IOStats) record(pager uint64, page int64) {
	if s == nil {
		return
	}
	s.Reads++
	// Repeat reads of the page just touched are the common duplicate shape
	// (sequential scans re-entering a boundary page, B+-tree descents), and
	// skipping them keeps the log near the distinct-page count.
	if n := len(s.seen); n > 0 && s.seen[n-1] == (ioKey{pager, page}) {
		return
	}
	s.seen = append(s.seen, ioKey{pager, page})
}

// Pages returns the number of distinct pages touched — the paper's Page
// Access metric (equivalent to the buffer-pool misses a query would incur
// against a cold pool large enough to hold its working set, which is how
// the metric was measured before accounting became per-query).
func (s *IOStats) Pages() int64 {
	if s == nil {
		return 0
	}
	if len(s.seen) != s.unique {
		sortIOKeys(s.seen)
		s.seen = slices.Compact(s.seen)
		s.unique = len(s.seen)
	}
	return int64(s.unique)
}

// Reset clears the accumulator for reuse, keeping its storage.
func (s *IOStats) Reset() {
	if s == nil {
		return
	}
	s.Reads = 0
	s.seen = s.seen[:0]
	s.unique = 0
}

// nextPagerID distinguishes pagers inside IOStats sets.
var nextPagerID atomic.Uint64

// poolEntry is one cached page. The reference bit starts CLEAR on install
// and is set only by a later touch (hit, write), so the CLOCK sweep grants
// its second chance to re-referenced pages specifically: a sequential scan
// that touches each page once cannot displace the re-used working set
// behind it (scan resistance), and a fill evicts in insertion order like
// the LRU it replaced.
type poolEntry struct {
	id    int64
	data  []byte
	dirty bool
	ref   atomic.Bool // CLOCK reference bit; set on re-touch, cleared by the sweep
}

// shard is one stripe of the buffer pool: a page map plus a CLOCK ring of
// at most cap entries. writeSeq (guarded by mu) counts Writes landing in
// the shard; the optimistic miss path samples it before its lock-free file
// read and re-reads under the lock when it moved, so bytes that raced a
// Write — or a concurrent eviction flush, which could tear an unlocked
// read — are never installed or returned.
type shard struct {
	mu       sync.RWMutex
	pool     map[int64]*poolEntry
	ring     []*poolEntry
	hand     int
	cap      int
	writeSeq uint64
}

// Pager owns one page file. It is safe for concurrent use; see the package
// comment for the locking contract.
type Pager struct {
	f        *os.File
	id       uint64
	pageSize int
	numPages atomic.Int64 // published page count: raised only after the page is readable
	allocSeq atomic.Int64 // id reservation counter for Alloc
	shards   []shard
	shardN   int64 // len(shards), for the id → shard map

	missLatency time.Duration

	accesses  atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	writes    atomic.Int64
}

// Options configures a Pager.
type Options struct {
	PageSize int // 0 means DefaultPageSize
	PoolSize int // buffer pool capacity in pages; 0 means 1024

	// MissLatency is a simulated per-file-read latency, slept on every pool
	// miss (once per contiguous span for ReadRun). Zero — the default —
	// disables it. It exists for the benchmark harness: the paper's cost
	// model charges queries per disk page, and sleeping the miss path models
	// a disk-resident working set so concurrent-serving scaling is
	// measurable even when the files sit in the OS page cache.
	MissLatency time.Duration
}

func (o *Options) normalize() {
	if o.PageSize <= 0 {
		o.PageSize = DefaultPageSize
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 1024
	}
}

// Create makes (or truncates) the page file at path.
func Create(path string, opts Options) (*Pager, error) {
	opts.normalize()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: create %s: %w", path, err)
	}
	return newPager(f, opts, 0), nil
}

// Open opens an existing page file. The file length must be a multiple of
// the page size.
func Open(path string, opts Options) (*Pager, error) {
	opts.normalize()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: stat %s: %w", path, err)
	}
	if fi.Size()%int64(opts.PageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("pager: %s length %d is not a multiple of page size %d: %w",
			path, fi.Size(), opts.PageSize, errs.ErrCorruptIndex)
	}
	return newPager(f, opts, fi.Size()/int64(opts.PageSize)), nil
}

func newPager(f *os.File, opts Options, numPages int64) *Pager {
	// Stripe count scales with the pool: a pool below minShardPages per
	// stripe gains nothing from striping (and would fragment its capacity
	// into useless slivers), a big pool stripes up to maxShards. Power of
	// two so the shard map is a mask.
	nShards := 1
	for nShards < maxShards && opts.PoolSize/(nShards*2) >= minShardPages {
		nShards *= 2
	}
	perShard := (opts.PoolSize + nShards - 1) / nShards
	p := &Pager{
		f:           f,
		id:          nextPagerID.Add(1),
		pageSize:    opts.PageSize,
		shards:      make([]shard, nShards),
		shardN:      int64(nShards),
		missLatency: opts.MissLatency,
	}
	p.numPages.Store(numPages)
	p.allocSeq.Store(numPages)
	for i := range p.shards {
		p.shards[i] = shard{pool: make(map[int64]*poolEntry), cap: perShard}
	}
	return p
}

// shard maps a page id to its stripe: consecutive pages share a
// 2^shardBlockShift block, blocks round-robin across stripes.
func (p *Pager) shard(id int64) *shard {
	return &p.shards[(id>>shardBlockShift)&(p.shardN-1)]
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// NumPages returns the number of allocated pages.
func (p *Pager) NumPages() int64 { return p.numPages.Load() }

// SizeBytes returns the on-disk size of the page file.
func (p *Pager) SizeBytes() int64 { return p.numPages.Load() * int64(p.pageSize) }

// Shards returns the number of buffer-pool stripes in use (diagnostics).
func (p *Pager) Shards() int { return int(p.shardN) }

// Stats returns a snapshot of the shared I/O counters. Per-query accounting
// should use IOStats instead; the shared counters exist for whole-run
// aggregates, hit-ratio diagnostics and the single-threaded baselines.
func (p *Pager) Stats() Stats {
	return Stats{
		Accesses:  p.accesses.Load(),
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Evictions: p.evictions.Load(),
		Writes:    p.writes.Load(),
	}
}

// ResetStats zeroes the shared I/O counters.
func (p *Pager) ResetStats() {
	p.accesses.Store(0)
	p.hits.Store(0)
	p.misses.Store(0)
	p.evictions.Store(0)
	p.writes.Store(0)
}

// Alloc appends a zeroed page and returns its id. The id is reserved from
// allocSeq but published through numPages only AFTER the zeroed entry is
// installed, so a concurrent reader that passes the range check finds the
// pool entry instead of racing the not-yet-extended file.
func (p *Pager) Alloc() (int64, error) {
	id := p.allocSeq.Add(1) - 1
	sh := p.shard(id)
	sh.mu.Lock()
	e := &poolEntry{id: id, data: make([]byte, p.pageSize), dirty: true}
	sh.insert(p, e)
	sh.mu.Unlock()
	for {
		cur := p.numPages.Load()
		if cur >= id+1 || p.numPages.CompareAndSwap(cur, id+1) {
			break
		}
	}
	return id, nil
}

// Read returns the content of page id, recording the access in io (nil
// discards the accounting). The returned slice aliases the buffer pool;
// callers must treat it as read-only. It remains a stable snapshot even
// across concurrent Writes (which install fresh buffers), but holding it
// does not pin the page in the pool.
func (p *Pager) Read(id int64, io *IOStats) ([]byte, error) {
	if id < 0 || id >= p.numPages.Load() {
		return nil, fmt.Errorf("%w: %d (have %d)", ErrPageOutOfRange, id, p.numPages.Load())
	}
	p.accesses.Add(1)
	io.record(p.id, id)
	sh := p.shard(id)
	sh.mu.RLock()
	if e, ok := sh.pool[id]; ok {
		e.ref.Store(true)
		data := e.data
		sh.mu.RUnlock()
		p.hits.Add(1)
		return data, nil
	}
	sh.mu.RUnlock()
	return p.readMiss(sh, id)
}

// readMiss loads a page from the file with no lock held — misses in
// different (or even the same) shard overlap — then installs it under the
// shard's exclusive lock. Three races are handled at install time:
//   - another goroutine installed the page meanwhile: the pooled copy wins
//     (it may carry a Write newer than the bytes this read saw);
//   - a Write landed in this shard during the unlocked read (writeSeq
//     moved): the unlocked bytes may be stale — or torn by the racing
//     eviction flush — so the page is re-read under the lock, serialized
//     with this shard's writes and flushes, before anything is served;
//   - the unlocked read failed (e.g. EOF racing an Alloc that published
//     its id before installing the zeroed entry): resolved by the same
//     locked pool re-check + re-read.
func (p *Pager) readMiss(sh *shard, id int64) ([]byte, error) {
	sh.mu.RLock()
	if e, ok := sh.pool[id]; ok {
		// Installed since the caller's shared-lock check: a hit after all.
		e.ref.Store(true)
		data := e.data
		sh.mu.RUnlock()
		p.hits.Add(1)
		return data, nil
	}
	seq := sh.writeSeq
	sh.mu.RUnlock()
	p.misses.Add(1)
	data := make([]byte, p.pageSize)
	_, readErr := p.f.ReadAt(data, id*int64(p.pageSize))
	if p.missLatency > 0 {
		time.Sleep(p.missLatency)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.pool[id]; ok {
		e.ref.Store(true)
		return e.data, nil
	}
	if readErr != nil || sh.writeSeq != seq {
		// Locked re-read: nothing can write or flush this shard's pages now,
		// and any raced Write has been fully flushed (its eviction completed
		// under an earlier hold of this lock).
		if _, err := p.f.ReadAt(data, id*int64(p.pageSize)); err != nil {
			return nil, fmt.Errorf("pager: read page %d: %w", id, err)
		}
	}
	e := &poolEntry{id: id, data: data}
	sh.insert(p, e)
	return data, nil
}

// ReadRun returns the contents of the n consecutive pages starting at
// first, appended to dst, recording one access per page in io. Cached pages
// come from the pool; the missing ones of each shard block are fetched with
// one contiguous file read (one syscall-equivalent — and one MissLatency
// sleep — per gap-free span), which is what makes a sub-partition's short
// sequential page run cost one I/O round trip instead of one per page. The
// returned slices alias the buffer pool under the same stability contract
// as Read.
func (p *Pager) ReadRun(first int64, n int, dst [][]byte, io *IOStats) ([][]byte, error) {
	if n <= 0 {
		return dst, nil
	}
	if first < 0 || first+int64(n) > p.numPages.Load() {
		return nil, fmt.Errorf("%w: run [%d,%d) (have %d)", ErrPageOutOfRange, first, first+int64(n), p.numPages.Load())
	}
	base := len(dst)
	for i := 0; i < n; i++ {
		dst = append(dst, nil)
		io.record(p.id, first+int64(i))
	}
	p.accesses.Add(int64(n))
	// Walk the run one shard block at a time: every page of a block lives in
	// the same shard, so the block's hits and installs happen under one lock
	// acquisition.
	blockSize := int64(1) << shardBlockShift
	for start := first; start < first+int64(n); {
		end := (start/blockSize + 1) * blockSize
		if last := first + int64(n); end > last {
			end = last
		}
		if err := p.readChunk(start, end, dst[base+int(start-first):base+int(end-first)]); err != nil {
			return nil, err
		}
		start = end
	}
	return dst, nil
}

// chunkSpan is one gap-free run of missing pages inside a shard block,
// with its own exactly sized buffer: installed pool entries alias it page
// by page, so a resident entry never pins bytes beyond its own span (a
// block-wide buffer would let one cached page retain the whole block).
type chunkSpan struct {
	first, end int64
	buf        []byte
}

// readChunk fills out with pages [start, end) of one shard block. The fast
// path (everything cached) finishes under the shared lock; otherwise the
// missing pages are read from the file in contiguous spans without any
// lock and installed under the exclusive lock — with the same raced-Write
// (writeSeq), raced-install (pool copy wins) and failed-unlocked-read
// handling as readMiss.
func (p *Pager) readChunk(start, end int64, out [][]byte) error {
	sh := p.shard(start)
	missing := 0
	sh.mu.RLock()
	for id := start; id < end; id++ {
		if e, ok := sh.pool[id]; ok {
			e.ref.Store(true)
			out[id-start] = e.data
		} else {
			missing++
		}
	}
	seq := sh.writeSeq
	sh.mu.RUnlock()
	if missing == 0 {
		p.hits.Add(end - start)
		return nil
	}
	p.hits.Add(end - start - int64(missing))
	p.misses.Add(int64(missing))

	// Read every gap-free span of missing pages with one ReadAt into a
	// span-sized buffer.
	var spans []chunkSpan
	var readErr error
	slept := false
	for id := start; id < end; {
		if out[id-start] != nil {
			id++
			continue
		}
		spanEnd := id + 1
		for spanEnd < end && out[spanEnd-start] == nil {
			spanEnd++
		}
		span := chunkSpan{first: id, end: spanEnd, buf: make([]byte, int(spanEnd-id)*p.pageSize)}
		if _, err := p.f.ReadAt(span.buf, id*int64(p.pageSize)); err != nil && readErr == nil {
			readErr = err
		}
		spans = append(spans, span)
		if p.missLatency > 0 && !slept {
			// One simulated disk round trip per run chunk: the readahead
			// contract is one I/O wait for the whole span, not one per page.
			time.Sleep(p.missLatency)
			slept = true
		}
		id = spanEnd
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, span := range spans {
		if readErr != nil || sh.writeSeq != seq {
			// The unlocked bytes may be stale, torn by a racing eviction
			// flush, or missing (EOF racing an Alloc): re-read the span
			// under the lock, serialized with this shard's writes/flushes,
			// skipping pages the pool resolved meanwhile below.
			if _, err := p.f.ReadAt(span.buf, span.first*int64(p.pageSize)); err != nil {
				return fmt.Errorf("pager: read pages [%d,%d): %w", span.first, span.end, err)
			}
		}
		for id := span.first; id < span.end; id++ {
			if e, ok := sh.pool[id]; ok {
				// Installed (or written) concurrently; the pool copy wins.
				e.ref.Store(true)
				out[id-start] = e.data
				continue
			}
			off := int(id-span.first) * p.pageSize
			e := &poolEntry{id: id, data: span.buf[off : off+p.pageSize]}
			sh.insert(p, e)
			out[id-start] = e.data
		}
	}
	return nil
}

// RecordRead accounts a logical read of page id that was served by a cache
// layered above the pager (e.g. the B+-tree's decoded-node cache), so the
// paper's Page Access metric stays identical whether or not the cache is in
// play. The buffer pool is not touched.
func (p *Pager) RecordRead(id int64, io *IOStats) {
	p.accesses.Add(1)
	p.hits.Add(1)
	io.record(p.id, id)
}

// ReadCopy returns a private copy of page id, recording the access in io.
func (p *Pager) ReadCopy(id int64, dst []byte, io *IOStats) ([]byte, error) {
	data, err := p.Read(id, io)
	if err != nil {
		return nil, err
	}
	if cap(dst) < p.pageSize {
		dst = make([]byte, p.pageSize)
	}
	dst = dst[:p.pageSize]
	copy(dst, data)
	return dst, nil
}

// Write replaces the content of page id. data must be exactly one page.
// The pooled buffer is replaced, not overwritten, so slices handed out by
// earlier Reads keep their pre-write snapshot.
func (p *Pager) Write(id int64, data []byte) error {
	if len(data) != p.pageSize {
		return fmt.Errorf("pager: write of %d bytes, want %d", len(data), p.pageSize)
	}
	if id < 0 || id >= p.numPages.Load() {
		return fmt.Errorf("%w: %d (have %d)", ErrPageOutOfRange, id, p.numPages.Load())
	}
	p.writes.Add(1)
	sh := p.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.writeSeq++
	if e, ok := sh.pool[id]; ok {
		e.data = append([]byte(nil), data...)
		e.dirty = true
		e.ref.Store(true)
		return nil
	}
	e := &poolEntry{id: id, data: append([]byte(nil), data...), dirty: true}
	sh.insert(p, e)
	return nil
}

// insert adds e to the shard (whose lock the caller holds), evicting with
// the CLOCK sweep when the ring is full.
func (sh *shard) insert(p *Pager, e *poolEntry) {
	if len(sh.ring) < sh.cap {
		sh.ring = append(sh.ring, e)
		sh.pool[e.id] = e
		return
	}
	// CLOCK second chance: sweep from the hand, clearing reference bits;
	// the first unreferenced entry is the victim. Concurrent hits can re-set
	// bits behind the hand, so the sweep is bounded: after two full passes
	// the entry under the hand is taken regardless.
	for step := 0; ; step++ {
		cand := sh.ring[sh.hand]
		if step < 2*len(sh.ring) && cand.ref.Swap(false) {
			sh.hand = (sh.hand + 1) % len(sh.ring)
			continue
		}
		if cand.dirty {
			p.flushEntry(cand)
		}
		delete(sh.pool, cand.id)
		p.evictions.Add(1)
		sh.ring[sh.hand] = e
		sh.pool[e.id] = e
		sh.hand = (sh.hand + 1) % len(sh.ring)
		return
	}
}

func (p *Pager) flushEntry(e *poolEntry) {
	// A write failure here would mean the backing file is gone; every later
	// Sync/Close reports it, so the eviction path panics rather than losing
	// a dirty page silently.
	if _, err := p.f.WriteAt(e.data, e.id*int64(p.pageSize)); err != nil {
		panic(fmt.Sprintf("pager: flush page %d: %v", e.id, err))
	}
	e.dirty = false
}

// Sync flushes all dirty pages to the file.
func (p *Pager) Sync() error {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, e := range sh.pool {
			if e.dirty {
				if _, err := p.f.WriteAt(e.data, e.id*int64(p.pageSize)); err != nil {
					sh.mu.Unlock()
					return fmt.Errorf("pager: sync page %d: %w", e.id, err)
				}
				e.dirty = false
			}
		}
		sh.mu.Unlock()
	}
	return p.f.Sync()
}

// DropPool flushes and empties the buffer pool, so subsequent reads count as
// misses. Benchmarks call this between queries to model a cold cache.
func (p *Pager) DropPool() error {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, e := range sh.pool {
			if e.dirty {
				if _, err := p.f.WriteAt(e.data, e.id*int64(p.pageSize)); err != nil {
					sh.mu.Unlock()
					return fmt.Errorf("pager: flush page %d: %w", e.id, err)
				}
			}
		}
		sh.pool = make(map[int64]*poolEntry)
		sh.ring = sh.ring[:0]
		sh.hand = 0
		sh.mu.Unlock()
	}
	return nil
}

// Close flushes and closes the page file.
func (p *Pager) Close() error {
	if err := p.Sync(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}
