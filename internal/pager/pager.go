// Package pager provides a file-backed page store with an LRU buffer pool
// and page-access accounting. Every disk-resident structure in this
// repository (the iDistance B+-tree, the original-vector store, QALSH's
// hash tables, Range-LSH's sequential partitions, PQ's inverted lists) does
// its I/O through a Pager, so the paper's "Page Access" metric is measured
// identically for every method: one logical access per page touched.
package pager

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"sync"
)

// DefaultPageSize matches the paper's 4KB pages (64KB is used for P53).
const DefaultPageSize = 4096

// ErrPageOutOfRange is returned when a page id does not exist in the file.
var ErrPageOutOfRange = errors.New("pager: page id out of range")

// Stats counts I/O activity. Accesses is the paper's Page Access metric:
// the number of logical page reads issued by the search algorithms.
// Misses counts buffer-pool misses (pages actually read from the file).
type Stats struct {
	Accesses int64
	Misses   int64
	Writes   int64
}

// Sub returns s - t component-wise; callers snapshot Stats around a query to
// obtain its per-query page accesses.
func (s Stats) Sub(t Stats) Stats {
	return Stats{Accesses: s.Accesses - t.Accesses, Misses: s.Misses - t.Misses, Writes: s.Writes - t.Writes}
}

type poolEntry struct {
	id    int64
	data  []byte
	dirty bool
	elem  *list.Element
}

// Pager owns one page file. It is safe for concurrent use.
type Pager struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	numPages int64
	poolCap  int
	pool     map[int64]*poolEntry
	lruList  *list.List // front = most recently used
	stats    Stats
}

// Options configures a Pager.
type Options struct {
	PageSize int // 0 means DefaultPageSize
	PoolSize int // buffer pool capacity in pages; 0 means 1024
}

func (o *Options) normalize() {
	if o.PageSize <= 0 {
		o.PageSize = DefaultPageSize
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 1024
	}
}

// Create makes (or truncates) the page file at path.
func Create(path string, opts Options) (*Pager, error) {
	opts.normalize()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: create %s: %w", path, err)
	}
	return newPager(f, opts, 0), nil
}

// Open opens an existing page file. The file length must be a multiple of
// the page size.
func Open(path string, opts Options) (*Pager, error) {
	opts.normalize()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: stat %s: %w", path, err)
	}
	if fi.Size()%int64(opts.PageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("pager: %s length %d is not a multiple of page size %d", path, fi.Size(), opts.PageSize)
	}
	return newPager(f, opts, fi.Size()/int64(opts.PageSize)), nil
}

func newPager(f *os.File, opts Options, numPages int64) *Pager {
	return &Pager{
		f:        f,
		pageSize: opts.PageSize,
		numPages: numPages,
		poolCap:  opts.PoolSize,
		pool:     make(map[int64]*poolEntry),
		lruList:  list.New(),
	}
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// NumPages returns the number of allocated pages.
func (p *Pager) NumPages() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.numPages
}

// SizeBytes returns the on-disk size of the page file.
func (p *Pager) SizeBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.numPages * int64(p.pageSize)
}

// Stats returns a snapshot of the I/O counters.
func (p *Pager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the I/O counters.
func (p *Pager) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Alloc appends a zeroed page and returns its id.
func (p *Pager) Alloc() (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.numPages
	p.numPages++
	e := &poolEntry{id: id, data: make([]byte, p.pageSize), dirty: true}
	p.insertLocked(e)
	return id, nil
}

// Read returns the content of page id. The returned slice aliases the buffer
// pool; callers must treat it as read-only and must not retain it across
// other Pager calls. Use ReadCopy when a stable copy is needed.
func (p *Pager) Read(id int64) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.readLocked(id)
}

// ReadCopy returns a private copy of page id.
func (p *Pager) ReadCopy(id int64, dst []byte) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	data, err := p.readLocked(id)
	if err != nil {
		return nil, err
	}
	if cap(dst) < p.pageSize {
		dst = make([]byte, p.pageSize)
	}
	dst = dst[:p.pageSize]
	copy(dst, data)
	return dst, nil
}

func (p *Pager) readLocked(id int64) ([]byte, error) {
	if id < 0 || id >= p.numPages {
		return nil, fmt.Errorf("%w: %d (have %d)", ErrPageOutOfRange, id, p.numPages)
	}
	p.stats.Accesses++
	if e, ok := p.pool[id]; ok {
		p.lruList.MoveToFront(e.elem)
		return e.data, nil
	}
	p.stats.Misses++
	data := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(data, id*int64(p.pageSize)); err != nil {
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	e := &poolEntry{id: id, data: data}
	p.insertLocked(e)
	return data, nil
}

// Write replaces the content of page id. data must be exactly one page.
func (p *Pager) Write(id int64, data []byte) error {
	if len(data) != p.pageSize {
		return fmt.Errorf("pager: write of %d bytes, want %d", len(data), p.pageSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if id < 0 || id >= p.numPages {
		return fmt.Errorf("%w: %d (have %d)", ErrPageOutOfRange, id, p.numPages)
	}
	p.stats.Writes++
	if e, ok := p.pool[id]; ok {
		copy(e.data, data)
		e.dirty = true
		p.lruList.MoveToFront(e.elem)
		return nil
	}
	e := &poolEntry{id: id, data: append([]byte(nil), data...), dirty: true}
	p.insertLocked(e)
	return nil
}

// insertLocked adds e to the pool, evicting (and flushing) the LRU entry
// when at capacity.
func (p *Pager) insertLocked(e *poolEntry) {
	for len(p.pool) >= p.poolCap {
		tail := p.lruList.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*poolEntry)
		if victim.dirty {
			p.flushLocked(victim)
		}
		p.lruList.Remove(tail)
		delete(p.pool, victim.id)
	}
	e.elem = p.lruList.PushFront(e)
	p.pool[e.id] = e
}

func (p *Pager) flushLocked(e *poolEntry) {
	// A write failure here would mean the backing file is gone; every later
	// Sync/Close reports it, so the eviction path panics rather than losing
	// a dirty page silently.
	if _, err := p.f.WriteAt(e.data, e.id*int64(p.pageSize)); err != nil {
		panic(fmt.Sprintf("pager: flush page %d: %v", e.id, err))
	}
	e.dirty = false
}

// Sync flushes all dirty pages to the file.
func (p *Pager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.pool {
		if e.dirty {
			if _, err := p.f.WriteAt(e.data, e.id*int64(p.pageSize)); err != nil {
				return fmt.Errorf("pager: sync page %d: %w", e.id, err)
			}
			e.dirty = false
		}
	}
	return p.f.Sync()
}

// DropPool flushes and empties the buffer pool, so subsequent reads count as
// misses. Benchmarks call this between queries to model a cold cache.
func (p *Pager) DropPool() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.pool {
		if e.dirty {
			if _, err := p.f.WriteAt(e.data, e.id*int64(p.pageSize)); err != nil {
				return fmt.Errorf("pager: flush page %d: %w", e.id, err)
			}
		}
	}
	p.pool = make(map[int64]*poolEntry)
	p.lruList.Init()
	return nil
}

// Close flushes and closes the page file.
func (p *Pager) Close() error {
	if err := p.Sync(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}
