// Package pager provides a file-backed page store with an LRU buffer pool
// and page-access accounting. Every disk-resident structure in this
// repository (the iDistance B+-tree, the original-vector store, QALSH's
// hash tables, Range-LSH's sequential partitions, PQ's inverted lists) does
// its I/O through a Pager, so the paper's "Page Access" metric is measured
// identically for every method: one logical access per page touched.
//
// Concurrency. A Pager is safe for concurrent use. The read path takes the
// pool lock shared: buffer-pool hits — the common case on a warm index —
// touch only atomics (recency stamp, counters), so goroutines serving
// different queries do not serialize on each other. Misses and writes take
// the lock exclusive. Per-caller accounting goes through IOStats: each
// query owns an accumulator and threads it through every Read, so no query
// ever needs to reset the shared counters to measure itself.
//
// Page slices returned by Read alias the buffer pool and are never mutated
// in place: Write installs a fresh buffer (copy-on-write) and eviction only
// drops the pool's reference. A slice obtained before either event remains
// a valid, stable snapshot of the page for as long as the caller keeps it.
package pager

import (
	"errors"
	"fmt"
	"os"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"promips/internal/errs"
)

// DefaultPageSize matches the paper's 4KB pages (64KB is used for P53).
const DefaultPageSize = 4096

// ErrPageOutOfRange is returned when a page id does not exist in the file.
var ErrPageOutOfRange = errors.New("pager: page id out of range")

// Stats counts I/O activity. Accesses is the number of logical page reads
// issued through the pager; Misses counts buffer-pool misses (pages
// actually read from the file).
type Stats struct {
	Accesses int64
	Misses   int64
	Writes   int64
}

// Sub returns s - t component-wise; callers snapshot Stats around a query to
// obtain its per-query page accesses.
func (s Stats) Sub(t Stats) Stats {
	return Stats{Accesses: s.Accesses - t.Accesses, Misses: s.Misses - t.Misses, Writes: s.Writes - t.Writes}
}

// ioKey identifies one page of one pager inside an IOStats set.
type ioKey struct {
	pager uint64
	page  int64
}

// IOStats accumulates one caller's I/O across any number of pagers. It is
// the per-query accounting channel: searches thread one accumulator through
// every page read they issue, so the paper's Page Access metric is measured
// per query without resetting (or even looking at) the pagers' shared
// counters — which is what makes concurrent queries over one index
// measurable at all.
//
// Recording is a slice append (the record path runs once per page read on
// the query hot path, so it must not hash); the distinct-page reduction is
// deferred to Pages, which sorts and compacts the log in place, once, when
// the caller reads the metric.
//
// The zero value is ready to use. A nil *IOStats is valid everywhere one is
// accepted and discards the accounting. An IOStats is NOT safe for
// concurrent use: each query owns its own.
type IOStats struct {
	// Reads counts logical page reads (every Read/ReadCopy call).
	Reads int64

	seen   []ioKey // access log; seen[:unique] is sorted and duplicate-free
	unique int
}

func (s *IOStats) record(pager uint64, page int64) {
	if s == nil {
		return
	}
	s.Reads++
	// Repeat reads of the page just touched are the common duplicate shape
	// (sequential scans re-entering a boundary page, B+-tree descents), and
	// skipping them keeps the log near the distinct-page count.
	if n := len(s.seen); n > 0 && s.seen[n-1] == (ioKey{pager, page}) {
		return
	}
	s.seen = append(s.seen, ioKey{pager, page})
}

// Pages returns the number of distinct pages touched — the paper's Page
// Access metric (equivalent to the buffer-pool misses a query would incur
// against a cold pool large enough to hold its working set, which is how
// the metric was measured before accounting became per-query).
func (s *IOStats) Pages() int64 {
	if s == nil {
		return 0
	}
	if len(s.seen) != s.unique {
		sortIOKeys(s.seen)
		s.seen = slices.Compact(s.seen)
		s.unique = len(s.seen)
	}
	return int64(s.unique)
}

// Reset clears the accumulator for reuse, keeping its storage.
func (s *IOStats) Reset() {
	if s == nil {
		return
	}
	s.Reads = 0
	s.seen = s.seen[:0]
	s.unique = 0
}

// nextPagerID distinguishes pagers inside IOStats sets.
var nextPagerID atomic.Uint64

type poolEntry struct {
	id    int64
	data  []byte
	dirty bool
	// lastUsed is the recency stamp for eviction; updated with an atomic on
	// the shared-lock hit path, compared under the exclusive lock when a
	// miss needs a victim.
	lastUsed atomic.Int64
}

// Pager owns one page file. It is safe for concurrent use; see the package
// comment for the locking contract.
type Pager struct {
	mu       sync.RWMutex // guards f geometry, pool membership, dirty flags
	f        *os.File
	id       uint64
	pageSize int
	numPages int64
	poolCap  int
	pool     map[int64]*poolEntry

	clock    atomic.Int64 // recency source for lastUsed stamps
	accesses atomic.Int64
	misses   atomic.Int64
	writes   atomic.Int64
}

// Options configures a Pager.
type Options struct {
	PageSize int // 0 means DefaultPageSize
	PoolSize int // buffer pool capacity in pages; 0 means 1024
}

func (o *Options) normalize() {
	if o.PageSize <= 0 {
		o.PageSize = DefaultPageSize
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 1024
	}
}

// Create makes (or truncates) the page file at path.
func Create(path string, opts Options) (*Pager, error) {
	opts.normalize()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: create %s: %w", path, err)
	}
	return newPager(f, opts, 0), nil
}

// Open opens an existing page file. The file length must be a multiple of
// the page size.
func Open(path string, opts Options) (*Pager, error) {
	opts.normalize()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: stat %s: %w", path, err)
	}
	if fi.Size()%int64(opts.PageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("pager: %s length %d is not a multiple of page size %d: %w",
			path, fi.Size(), opts.PageSize, errs.ErrCorruptIndex)
	}
	return newPager(f, opts, fi.Size()/int64(opts.PageSize)), nil
}

func newPager(f *os.File, opts Options, numPages int64) *Pager {
	return &Pager{
		f:        f,
		id:       nextPagerID.Add(1),
		pageSize: opts.PageSize,
		numPages: numPages,
		poolCap:  opts.PoolSize,
		pool:     make(map[int64]*poolEntry),
	}
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// NumPages returns the number of allocated pages.
func (p *Pager) NumPages() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.numPages
}

// SizeBytes returns the on-disk size of the page file.
func (p *Pager) SizeBytes() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.numPages * int64(p.pageSize)
}

// Stats returns a snapshot of the shared I/O counters. Per-query accounting
// should use IOStats instead; the shared counters exist for whole-run
// aggregates and the single-threaded baseline methods.
func (p *Pager) Stats() Stats {
	return Stats{
		Accesses: p.accesses.Load(),
		Misses:   p.misses.Load(),
		Writes:   p.writes.Load(),
	}
}

// ResetStats zeroes the shared I/O counters.
func (p *Pager) ResetStats() {
	p.accesses.Store(0)
	p.misses.Store(0)
	p.writes.Store(0)
}

// Alloc appends a zeroed page and returns its id.
func (p *Pager) Alloc() (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.numPages
	p.numPages++
	e := &poolEntry{id: id, data: make([]byte, p.pageSize), dirty: true}
	e.lastUsed.Store(p.clock.Add(1))
	p.insertLocked(e)
	return id, nil
}

// Read returns the content of page id, recording the access in io (nil
// discards the accounting). The returned slice aliases the buffer pool;
// callers must treat it as read-only. It remains a stable snapshot even
// across concurrent Writes (which install fresh buffers), but holding it
// does not pin the page in the pool.
func (p *Pager) Read(id int64, io *IOStats) ([]byte, error) {
	p.mu.RLock()
	if id < 0 || id >= p.numPages {
		n := p.numPages
		p.mu.RUnlock()
		return nil, fmt.Errorf("%w: %d (have %d)", ErrPageOutOfRange, id, n)
	}
	if e, ok := p.pool[id]; ok {
		e.lastUsed.Store(p.clock.Add(1))
		data := e.data
		p.mu.RUnlock()
		p.accesses.Add(1)
		io.record(p.id, id)
		return data, nil
	}
	p.mu.RUnlock()
	return p.readMiss(id, io)
}

// readMiss loads a page from the file under the exclusive lock.
func (p *Pager) readMiss(id int64, io *IOStats) ([]byte, error) {
	p.accesses.Add(1)
	io.record(p.id, id)
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= p.numPages {
		return nil, fmt.Errorf("%w: %d (have %d)", ErrPageOutOfRange, id, p.numPages)
	}
	if e, ok := p.pool[id]; ok {
		// Another goroutine loaded it between our shared and exclusive
		// sections; not a miss.
		e.lastUsed.Store(p.clock.Add(1))
		return e.data, nil
	}
	p.misses.Add(1)
	data := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(data, id*int64(p.pageSize)); err != nil {
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	e := &poolEntry{id: id, data: data}
	e.lastUsed.Store(p.clock.Add(1))
	p.insertLocked(e)
	return data, nil
}

// RecordRead accounts a logical read of page id that was served by a cache
// layered above the pager (e.g. the B+-tree's decoded-node cache), so the
// paper's Page Access metric stays identical whether or not the cache is in
// play. The buffer pool is not touched.
func (p *Pager) RecordRead(id int64, io *IOStats) {
	p.accesses.Add(1)
	io.record(p.id, id)
}

// ReadCopy returns a private copy of page id, recording the access in io.
func (p *Pager) ReadCopy(id int64, dst []byte, io *IOStats) ([]byte, error) {
	data, err := p.Read(id, io)
	if err != nil {
		return nil, err
	}
	if cap(dst) < p.pageSize {
		dst = make([]byte, p.pageSize)
	}
	dst = dst[:p.pageSize]
	copy(dst, data)
	return dst, nil
}

// Write replaces the content of page id. data must be exactly one page.
// The pooled buffer is replaced, not overwritten, so slices handed out by
// earlier Reads keep their pre-write snapshot.
func (p *Pager) Write(id int64, data []byte) error {
	if len(data) != p.pageSize {
		return fmt.Errorf("pager: write of %d bytes, want %d", len(data), p.pageSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if id < 0 || id >= p.numPages {
		return fmt.Errorf("%w: %d (have %d)", ErrPageOutOfRange, id, p.numPages)
	}
	p.writes.Add(1)
	if e, ok := p.pool[id]; ok {
		e.data = append([]byte(nil), data...)
		e.dirty = true
		e.lastUsed.Store(p.clock.Add(1))
		return nil
	}
	e := &poolEntry{id: id, data: append([]byte(nil), data...), dirty: true}
	e.lastUsed.Store(p.clock.Add(1))
	p.insertLocked(e)
	return nil
}

// insertLocked adds e to the pool, evicting (and flushing) the
// least-recently-stamped entries when at capacity. Finding victims costs a
// scan of the pool, so a full pool is drained in batches: one scan frees
// room for many subsequent misses, keeping eviction O(1) amortized on
// miss-heavy workloads instead of O(poolCap) per page.
func (p *Pager) insertLocked(e *poolEntry) {
	if len(p.pool) >= p.poolCap {
		batch := p.poolCap / 16
		if batch < 1 {
			batch = 1
		}
		victims := make([]*poolEntry, 0, len(p.pool))
		for _, cand := range p.pool {
			victims = append(victims, cand)
		}
		sort.Slice(victims, func(i, j int) bool {
			return victims[i].lastUsed.Load() < victims[j].lastUsed.Load()
		})
		evict := len(p.pool) - p.poolCap + batch
		if evict > len(victims) {
			evict = len(victims)
		}
		for _, victim := range victims[:evict] {
			if victim.dirty {
				p.flushLocked(victim)
			}
			delete(p.pool, victim.id)
		}
	}
	p.pool[e.id] = e
}

func (p *Pager) flushLocked(e *poolEntry) {
	// A write failure here would mean the backing file is gone; every later
	// Sync/Close reports it, so the eviction path panics rather than losing
	// a dirty page silently.
	if _, err := p.f.WriteAt(e.data, e.id*int64(p.pageSize)); err != nil {
		panic(fmt.Sprintf("pager: flush page %d: %v", e.id, err))
	}
	e.dirty = false
}

// Sync flushes all dirty pages to the file.
func (p *Pager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.pool {
		if e.dirty {
			if _, err := p.f.WriteAt(e.data, e.id*int64(p.pageSize)); err != nil {
				return fmt.Errorf("pager: sync page %d: %w", e.id, err)
			}
			e.dirty = false
		}
	}
	return p.f.Sync()
}

// DropPool flushes and empties the buffer pool, so subsequent reads count as
// misses. Benchmarks call this between queries to model a cold cache.
func (p *Pager) DropPool() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.pool {
		if e.dirty {
			if _, err := p.f.WriteAt(e.data, e.id*int64(p.pageSize)); err != nil {
				return fmt.Errorf("pager: flush page %d: %w", e.id, err)
			}
		}
	}
	p.pool = make(map[int64]*poolEntry)
	return nil
}

// Close flushes and closes the page file.
func (p *Pager) Close() error {
	if err := p.Sync(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}
