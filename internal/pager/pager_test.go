package pager

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func newTestPager(t *testing.T, opts Options) *Pager {
	t.Helper()
	p, err := Create(filepath.Join(t.TempDir(), "pages.db"), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestAllocReadWriteRoundTrip(t *testing.T) {
	p := newTestPager(t, Options{PageSize: 128})
	id, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 128)
	if err := p.Write(id, data); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back different data")
	}
}

func TestAllocReturnsZeroedPage(t *testing.T) {
	p := newTestPager(t, Options{PageSize: 64})
	id, _ := p.Alloc()
	got, err := p.Read(id, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("fresh page not zeroed")
		}
	}
}

func TestReadOutOfRange(t *testing.T) {
	p := newTestPager(t, Options{PageSize: 64})
	if _, err := p.Read(0, nil); err == nil {
		t.Fatal("expected error reading unallocated page")
	}
	if _, err := p.Read(-1, nil); err == nil {
		t.Fatal("expected error reading negative page id")
	}
	if err := p.Write(5, make([]byte, 64)); err == nil {
		t.Fatal("expected error writing unallocated page")
	}
}

func TestWriteWrongSize(t *testing.T) {
	p := newTestPager(t, Options{PageSize: 64})
	id, _ := p.Alloc()
	if err := p.Write(id, make([]byte, 63)); err == nil {
		t.Fatal("expected error for short write")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.db")
	p, err := Create(path, Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int64][]byte)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		id, _ := p.Alloc()
		data := make([]byte, 256)
		r.Read(data)
		if err := p.Write(id, data); err != nil {
			t.Fatal(err)
		}
		want[id] = data
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	q, err := Open(path, Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if q.NumPages() != 20 {
		t.Fatalf("NumPages after reopen = %d, want 20", q.NumPages())
	}
	for id, data := range want {
		got, err := q.Read(id, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("page %d differs after reopen", id)
		}
	}
}

func TestOpenRejectsBadLength(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.db")
	p, _ := Create(path, Options{PageSize: 100})
	p.Alloc()
	p.Close()
	if _, err := Open(path, Options{PageSize: 64}); err == nil {
		t.Fatal("expected error for mismatched page size")
	}
}

func TestStatsCounting(t *testing.T) {
	p := newTestPager(t, Options{PageSize: 64, PoolSize: 4})
	var ids []int64
	for i := 0; i < 10; i++ {
		id, _ := p.Alloc()
		ids = append(ids, id)
	}
	if err := p.DropPool(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	for _, id := range ids {
		if _, err := p.Read(id, nil); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()
	if s.Accesses != 10 {
		t.Fatalf("Accesses = %d, want 10", s.Accesses)
	}
	if s.Misses != 10 {
		t.Fatalf("Misses = %d, want 10 (cold pool of size 4)", s.Misses)
	}
	// Re-reading the last 4 pages hits the pool: accesses grow, misses don't.
	for _, id := range ids[6:] {
		p.Read(id, nil)
	}
	s2 := p.Stats()
	if s2.Accesses != 14 {
		t.Fatalf("Accesses = %d, want 14", s2.Accesses)
	}
	if s2.Misses != 10 {
		t.Fatalf("Misses = %d, want 10 (hits in pool)", s2.Misses)
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Accesses: 10, Misses: 4, Writes: 2}
	b := Stats{Accesses: 7, Misses: 1, Writes: 2}
	d := a.Sub(b)
	if d.Accesses != 3 || d.Misses != 3 || d.Writes != 0 {
		t.Fatalf("Sub = %+v", d)
	}
}

func TestLRUEvictionPreservesData(t *testing.T) {
	p := newTestPager(t, Options{PageSize: 64, PoolSize: 2})
	r := rand.New(rand.NewSource(8))
	want := make([][]byte, 16)
	for i := range want {
		id, _ := p.Alloc()
		data := make([]byte, 64)
		r.Read(data)
		if err := p.Write(id, data); err != nil {
			t.Fatal(err)
		}
		want[i] = data
	}
	// All but 2 pages have been evicted (and flushed). Everything must read
	// back intact.
	for i, data := range want {
		got, err := p.Read(int64(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("page %d corrupted by eviction", i)
		}
	}
}

func TestReadCopyIsPrivate(t *testing.T) {
	p := newTestPager(t, Options{PageSize: 64})
	id, _ := p.Alloc()
	data := bytes.Repeat([]byte{7}, 64)
	p.Write(id, data)
	cp, err := p.ReadCopy(id, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp[0] = 99
	got, _ := p.Read(id, nil)
	if got[0] != 7 {
		t.Fatal("ReadCopy aliased the pool buffer")
	}
}

func TestConcurrentReaders(t *testing.T) {
	p := newTestPager(t, Options{PageSize: 64, PoolSize: 8})
	var ids []int64
	for i := 0; i < 32; i++ {
		id, _ := p.Alloc()
		data := make([]byte, 64)
		data[0] = byte(i)
		p.Write(id, data)
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[(i*7+g)%len(ids)]
				got, err := p.ReadCopy(id, nil, nil)
				if err != nil {
					errs <- err
					return
				}
				if got[0] != byte(id) {
					errs <- fmt.Errorf("goroutine %d: page %d corrupted: got[0]=%d, want %d", g, id, got[0], id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent read failed: %v", err)
	}
}

// Property: any sequence of writes followed by reads returns the written
// data, regardless of pool size (i.e. the pool is transparent).
func TestPropertyPoolTransparency(t *testing.T) {
	f := func(seed int64, poolSize uint8) bool {
		dir := t.TempDir()
		p, err := Create(filepath.Join(dir, "p.db"), Options{PageSize: 32, PoolSize: int(poolSize%16) + 1})
		if err != nil {
			return false
		}
		defer p.Close()
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		want := make([][]byte, n)
		for i := 0; i < n; i++ {
			id, _ := p.Alloc()
			data := make([]byte, 32)
			r.Read(data)
			if p.Write(id, data) != nil {
				return false
			}
			want[i] = data
		}
		// Random overwrite pass.
		for i := 0; i < n/2; i++ {
			id := int64(r.Intn(n))
			data := make([]byte, 32)
			r.Read(data)
			if p.Write(id, data) != nil {
				return false
			}
			want[id] = data
		}
		for i := 0; i < n; i++ {
			got, err := p.Read(int64(i), nil)
			if err != nil || !bytes.Equal(got, want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestIOStatsPerCaller(t *testing.T) {
	p := newTestPager(t, Options{PageSize: 64, PoolSize: 8})
	var ids []int64
	for i := 0; i < 6; i++ {
		id, _ := p.Alloc()
		ids = append(ids, id)
	}
	var a, b IOStats
	// Caller A touches pages 0..3, twice each; caller B touches 2..5 once.
	for pass := 0; pass < 2; pass++ {
		for _, id := range ids[:4] {
			if _, err := p.Read(id, &a); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, id := range ids[2:] {
		if _, err := p.Read(id, &b); err != nil {
			t.Fatal(err)
		}
	}
	if a.Reads != 8 || a.Pages() != 4 {
		t.Fatalf("caller A: Reads=%d Pages=%d, want 8/4", a.Reads, a.Pages())
	}
	if b.Reads != 4 || b.Pages() != 4 {
		t.Fatalf("caller B: Reads=%d Pages=%d, want 4/4", b.Reads, b.Pages())
	}
	a.Reset()
	if a.Reads != 0 || a.Pages() != 0 {
		t.Fatalf("after Reset: Reads=%d Pages=%d", a.Reads, a.Pages())
	}
}

func TestIOStatsSpansPagers(t *testing.T) {
	dir := t.TempDir()
	p1, err := Create(filepath.Join(dir, "a.db"), Options{PageSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	p2, err := Create(filepath.Join(dir, "b.db"), Options{PageSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	id1, _ := p1.Alloc()
	id2, _ := p2.Alloc()
	var io IOStats
	// Page 0 of two different pagers must count as two distinct pages.
	if _, err := p1.Read(id1, &io); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Read(id2, &io); err != nil {
		t.Fatal(err)
	}
	if io.Pages() != 2 {
		t.Fatalf("Pages = %d, want 2 (distinct pagers)", io.Pages())
	}
}

func TestNilIOStatsDiscards(t *testing.T) {
	var io *IOStats
	io.record(1, 2) // must not panic
	if io.Pages() != 0 {
		t.Fatal("nil IOStats reported pages")
	}
	io.Reset()
}

// TestConcurrentPerQueryAccounting is the pager-level version of the
// index-level guarantee: goroutines hammering one pager each see exactly
// their own page set in their IOStats, independent of pool state and of
// what the other goroutines read.
func TestConcurrentPerQueryAccounting(t *testing.T) {
	p := newTestPager(t, Options{PageSize: 64, PoolSize: 4})
	const numPages = 24
	for i := 0; i < numPages; i++ {
		id, _ := p.Alloc()
		data := make([]byte, 64)
		data[0] = byte(id)
		if err := p.Write(id, data); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var io IOStats
			seen := make(map[int64]bool)
			for i := 0; i < 300; i++ {
				id := int64((i*5 + g*3) % numPages)
				got, err := p.Read(id, &io)
				if err != nil {
					errs <- err
					return
				}
				if got[0] != byte(id) {
					errs <- fmt.Errorf("goroutine %d: page %d corrupted: got[0]=%d, want %d", g, id, got[0], id)
					return
				}
				seen[id] = true
			}
			if io.Reads != 300 || io.Pages() != int64(len(seen)) {
				errs <- fmt.Errorf("goroutine %d: accounting drift: Reads=%d (want 300), Pages=%d (want %d)", g, io.Reads, io.Pages(), len(seen))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent accounting failed: %v", err)
	}
}
