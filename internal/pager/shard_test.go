package pager

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fillPages allocates n pages, each stamped with its id in byte 0, and
// drops the pool so reads start cold.
func fillPages(t *testing.T, p *Pager, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		id, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, p.PageSize())
		data[0] = byte(id)
		if err := p.Write(id, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.DropPool(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
}

// TestShardScaling pins the stripe-count policy: tiny pools stay single
// shard (so their capacity is not fragmented), big pools stripe out.
func TestShardScaling(t *testing.T) {
	for _, tc := range []struct {
		pool, wantShards int
	}{
		{1, 1}, {8, 1}, {32, 1}, {64, 2}, {256, 8}, {1024, 16}, {65536, 16},
	} {
		p := newTestPager(t, Options{PageSize: 64, PoolSize: tc.pool})
		if got := p.Shards(); got != tc.wantShards {
			t.Errorf("PoolSize=%d: %d shards, want %d", tc.pool, got, tc.wantShards)
		}
	}
}

// TestClockSecondChance verifies the CLOCK policy actually grants second
// chances: with a pool of 2 and the access pattern A B A C, page A's
// reference bit must save it, so C evicts B and a re-read of A still hits.
func TestClockSecondChance(t *testing.T) {
	p := newTestPager(t, Options{PageSize: 64, PoolSize: 2})
	fillPages(t, p, 3)
	readOK := func(id int64) {
		t.Helper()
		got, err := p.Read(id, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(id) {
			t.Fatalf("page %d corrupted", id)
		}
	}
	readOK(0) // miss: pool {0}
	readOK(1) // miss: pool {0,1}
	readOK(0) // hit: sets 0's reference bit
	before := p.Stats()
	readOK(2) // miss: CLOCK clears 0's bit, evicts 1
	readOK(0) // must still be a hit — 1 was the victim
	d := p.Stats().Sub(before)
	if d.Misses != 1 || d.Hits != 1 {
		t.Fatalf("after A B A C A: interval misses=%d hits=%d, want 1/1", d.Misses, d.Hits)
	}
	if d.Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", d.Evictions)
	}
	// And 1 is gone: reading it now misses.
	before = p.Stats()
	readOK(1)
	if p.Stats().Sub(before).Misses != 1 {
		t.Fatal("victim page still pooled")
	}
}

// TestReadRunBasics covers the readahead entry point: full-miss runs,
// full-hit runs, mixed runs with cached holes, shard-block-crossing runs,
// and the error cases.
func TestReadRunBasics(t *testing.T) {
	p := newTestPager(t, Options{PageSize: 64, PoolSize: 1024})
	const n = 64
	fillPages(t, p, n)

	check := func(pages [][]byte, first int64) {
		t.Helper()
		for i, page := range pages {
			if len(page) != 64 || page[0] != byte(first+int64(i)) {
				t.Fatalf("run page %d (id %d) corrupted", i, first+int64(i))
			}
		}
	}

	// Cold run spanning several shard blocks.
	var io IOStats
	pages, err := p.ReadRun(3, 20, nil, &io)
	if err != nil {
		t.Fatal(err)
	}
	check(pages, 3)
	if io.Reads != 20 || io.Pages() != 20 {
		t.Fatalf("io: Reads=%d Pages=%d, want 20/20", io.Reads, io.Pages())
	}
	s := p.Stats()
	if s.Misses != 20 || s.Hits != 0 {
		t.Fatalf("cold run: misses=%d hits=%d, want 20/0", s.Misses, s.Hits)
	}

	// The same run again: all hits.
	before := p.Stats()
	pages, err = p.ReadRun(3, 20, pages[:0], &io)
	if err != nil {
		t.Fatal(err)
	}
	check(pages, 3)
	d := p.Stats().Sub(before)
	if d.Hits != 20 || d.Misses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want 20/0", d.Hits, d.Misses)
	}

	// A run overlapping the cached range: holes are fetched, cached pages
	// served from the pool.
	before = p.Stats()
	pages, err = p.ReadRun(0, 30, pages[:0], nil)
	if err != nil {
		t.Fatal(err)
	}
	check(pages, 0)
	d = p.Stats().Sub(before)
	if d.Misses != 10 || d.Hits != 20 {
		t.Fatalf("mixed run: misses=%d hits=%d, want 10/20", d.Misses, d.Hits)
	}

	// Bounds.
	if _, err := p.ReadRun(-1, 2, nil, nil); err == nil {
		t.Fatal("expected error for negative first page")
	}
	if _, err := p.ReadRun(n-1, 2, nil, nil); err == nil {
		t.Fatal("expected error for run past the end")
	}
	if out, err := p.ReadRun(5, 0, nil, nil); err != nil || len(out) != 0 {
		t.Fatalf("empty run: %v, %d pages", err, len(out))
	}
}

// TestReadRunSeesWrites asserts the pool-wins rule: a page Written while
// cached must be served from the pool by a subsequent ReadRun, not
// re-fetched stale from the file.
func TestReadRunSeesWrites(t *testing.T) {
	p := newTestPager(t, Options{PageSize: 64, PoolSize: 1024})
	fillPages(t, p, 8)
	fresh := bytes.Repeat([]byte{0xEE}, 64)
	if err := p.Write(4, fresh); err != nil {
		t.Fatal(err)
	}
	pages, err := p.ReadRun(0, 8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pages[4], fresh) {
		t.Fatal("ReadRun returned stale bytes for a written page")
	}
}

// TestReadRunAgainstRandomReads cross-checks ReadRun against single-page
// Reads under random interleaving and a small pool (constant eviction).
func TestReadRunAgainstRandomReads(t *testing.T) {
	p := newTestPager(t, Options{PageSize: 64, PoolSize: 4})
	const n = 40
	fillPages(t, p, n)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		if rng.Intn(2) == 0 {
			first := int64(rng.Intn(n - 1))
			length := 1 + rng.Intn(int(int64(n)-first))
			pages, err := p.ReadRun(first, length, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i, page := range pages {
				if page[0] != byte(first+int64(i)) {
					t.Fatalf("trial %d: run page id %d corrupted", trial, first+int64(i))
				}
			}
		} else {
			id := int64(rng.Intn(n))
			page, err := p.Read(id, nil)
			if err != nil {
				t.Fatal(err)
			}
			if page[0] != byte(id) {
				t.Fatalf("trial %d: page %d corrupted", trial, id)
			}
		}
	}
}

// TestOneShardStress hammers a single shard block from many goroutines —
// reads, runs and writes all landing on the same stripe — under a pool
// small enough to evict constantly. Each page carries a per-page sequence
// number its (single) writer increments, and every reader asserts the
// sequence it observes never goes backwards: a miss path that installed
// stale or torn file bytes over a newer Write (the lock-free read race)
// fails here deterministically in content, and -race covers the memory
// model.
func TestOneShardStress(t *testing.T) {
	p := newTestPager(t, Options{PageSize: 64, PoolSize: 4})
	if p.Shards() != 1 {
		t.Fatalf("want a single shard for the stress, got %d", p.Shards())
	}
	// One shard block: pages 0..7 all map to shard 0 even with striping.
	const blockPages = 8
	fillPages(t, p, blockPages)

	pageSeq := func(page []byte) uint32 {
		return uint32(page[4]) | uint32(page[5])<<8 | uint32(page[6])<<16 | uint32(page[7])<<24
	}

	var wg, readers sync.WaitGroup
	errs := make(chan error, 16)
	stop := make(chan struct{})
	// Two writers own disjoint page sets (id%2), each stamping its pages
	// with an increasing sequence, so per-page sequences are well ordered.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := uint32(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := int64(g + 2*(int(i)%(blockPages/2)))
				buf[0] = byte(id)
				buf[4], buf[5], buf[6], buf[7] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
				if err := p.Write(id, buf); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		readers.Add(1)
		go func(g int) {
			defer wg.Done()
			defer readers.Done()
			var io IOStats
			var lastSeen [blockPages]uint32
			observe := func(id int64, page []byte) error {
				if page[0] != byte(id) {
					return fmt.Errorf("goroutine %d: page %d corrupted: %d", g, id, page[0])
				}
				seq := pageSeq(page)
				if seq < lastSeen[id] {
					return fmt.Errorf("goroutine %d: page %d went backwards: saw seq %d after %d (stale install)",
						g, id, seq, lastSeen[id])
				}
				lastSeen[id] = seq
				return nil
			}
			for i := 0; i < 2000; i++ {
				if g%2 == 0 {
					id := int64((i*3 + g) % blockPages)
					page, err := p.Read(id, &io)
					if err != nil {
						errs <- err
						return
					}
					if err := observe(id, page); err != nil {
						errs <- err
						return
					}
				} else {
					first := int64(i % (blockPages - 2))
					pages, err := p.ReadRun(first, 3, nil, &io)
					if err != nil {
						errs <- err
						return
					}
					for j, page := range pages {
						if err := observe(first+int64(j), page); err != nil {
							errs <- err
							return
						}
					}
				}
			}
		}(g)
	}
	// Readers finish their fixed iteration counts with the writers still
	// churning, then the writers are stopped.
	readers.Wait()
	close(stop)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stress deadlocked")
	}
	close(errs)
	for err := range errs {
		t.Fatalf("stress failure: %v", err)
	}
}
