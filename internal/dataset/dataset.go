// Package dataset provides synthetic analogues of the paper's four
// evaluation datasets (Table III): Netflix and Yahoo PureSVD latent
// factors, the P53 mutants bio-assay features, and SIFT descriptors. The
// real corpora are not redistributable here, so each generator reproduces
// the statistical properties that drive MIPS behaviour — the norm
// distribution, directional correlation, dimensionality and page-size
// regime — as documented in DESIGN.md §4. Sizes are scalable: FullN records
// the paper's size, DefaultN a laptop-scale default used by the benchmark
// harness.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Spec describes one benchmark dataset.
type Spec struct {
	// Name is the dataset identifier ("Netflix", "Yahoo", "P53", "Sift").
	Name string
	// FullN and FullD are the paper's Table III dimensions.
	FullN, FullD int
	// D is the dimensionality generated here (P53 is dimension-scaled).
	D int
	// DefaultN is the laptop-scale point count the harness uses at scale 1.
	DefaultN int
	// PageSize is the disk page size the paper's evaluation assigns this
	// dataset (P53 gets large pages so a vector fits on one page; we keep
	// the same vectors-per-page ratio at the scaled dimension).
	PageSize int
	// M is the projected dimension the paper picks in §VIII-A-4.
	M int
	// gen draws n points with the dataset's generator.
	gen func(n int, seed int64) [][]float32
}

// Generate draws n points (n ≤ 0 means DefaultN).
func (s Spec) Generate(n int, seed int64) [][]float32 {
	if n <= 0 {
		n = s.DefaultN
	}
	return s.gen(n, seed)
}

// Queries draws a query workload from the same distribution, offset to a
// disjoint seed stream (the paper randomly selects 100 points).
func (s Spec) Queries(count int, seed int64) [][]float32 {
	if count <= 0 {
		count = 100
	}
	return s.gen(count, seed+0x9E3779B9)
}

// Specs returns the four benchmark datasets in the paper's order.
func Specs() []Spec {
	return []Spec{Netflix(), Yahoo(), P53(), Sift()}
}

// Get looks a dataset up by (case-sensitive) name.
func Get(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q (have Netflix, Yahoo, P53, Sift)", name)
}

// Netflix models PureSVD item factors of the Netflix Prize matrix:
// d=300 latent dimensions, heavily skewed (log-normal) norms — popular
// items have large factors — and directions clustered around a modest
// number of genre axes.
func Netflix() Spec {
	return Spec{
		Name: "Netflix", FullN: 17770, FullD: 300, D: 300,
		DefaultN: 17770, PageSize: 4096, M: 6,
		gen: func(n int, seed int64) [][]float32 {
			// σ=0.12 gives max/median norm ≈ 1.6 at n=17770, matching the
			// concentrated-but-skewed norms of PureSVD item factors;
			// heavier tails would make Condition B's ‖oM‖² bound vacuous
			// for every method's pruning, which real MF embeddings do not
			// exhibit.
			return latentFactors(n, 300, 24, 0.12, seed)
		},
	}
}

// Yahoo models PureSVD factors of the Yahoo! Music dataset: same latent
// dimension as Netflix but a much larger, more diverse catalogue (more
// genre axes, wider norm spread).
func Yahoo() Spec {
	return Spec{
		Name: "Yahoo", FullN: 624961, FullD: 300, D: 300,
		DefaultN: 40000, PageSize: 4096, M: 8,
		gen: func(n int, seed int64) [][]float32 {
			return latentFactors(n, 300, 64, 0.15, seed)
		},
	}
}

// P53 models the p53 mutants bio-assay features: very high dimension with
// sparse informative coordinates on top of a handful of assay prototypes.
// The paper's 5408 dimensions are scaled to 1352 (= 5408/4); the 16KB page
// keeps the paper's ~3 vectors-per-page regime (64KB/21632B at full size).
func P53() Spec {
	return Spec{
		Name: "P53", FullN: 31420, FullD: 5408, D: 1352,
		DefaultN: 6000, PageSize: 16384, M: 6,
		gen: func(n int, seed int64) [][]float32 {
			return sparseAssay(n, 1352, 12, 0.08, seed)
		},
	}
}

// Sift models SIFT gradient-histogram descriptors: 128 non-negative
// quantized coordinates (0..255) drawn around visual-word cluster centers.
func Sift() Spec {
	return Spec{
		Name: "Sift", FullN: 11164866, FullD: 128, D: 128,
		DefaultN: 60000, PageSize: 4096, M: 10,
		gen: func(n int, seed int64) [][]float32 {
			return siftLike(n, 128, 50, seed)
		},
	}
}

// latentFactors draws matrix-factorization-style vectors: each point picks
// a genre axis, mixes it with Gaussian noise, and scales by a log-normal
// popularity. genreWeight in [0,1] sets directional concentration.
func latentFactors(n, d, genres int, sigma float64, seed int64) [][]float32 {
	r := rand.New(rand.NewSource(seed))
	axes := make([][]float64, genres)
	for g := range axes {
		axes[g] = randUnit(r, d)
	}
	const genreWeight = 0.6
	out := make([][]float32, n)
	for i := range out {
		axis := axes[r.Intn(genres)]
		pop := math.Exp(r.NormFloat64() * sigma) // log-normal popularity
		v := make([]float32, d)
		for j := 0; j < d; j++ {
			val := genreWeight*axis[j]*math.Sqrt(float64(d)) + (1-genreWeight)*r.NormFloat64()
			v[j] = float32(val * pop / math.Sqrt(float64(d)))
		}
		out[i] = v
	}
	return out
}

// sparseAssay draws high-dimensional mostly-sparse vectors: a prototype
// (assay profile) plus Bernoulli-masked heavy-tailed noise.
func sparseAssay(n, d, prototypes int, density float64, seed int64) [][]float32 {
	r := rand.New(rand.NewSource(seed))
	protos := make([][]float64, prototypes)
	for p := range protos {
		v := make([]float64, d)
		for j := range v {
			if r.Float64() < density*2 {
				v[j] = r.NormFloat64() * 2
			}
		}
		protos[p] = v
	}
	out := make([][]float32, n)
	for i := range out {
		proto := protos[r.Intn(prototypes)]
		v := make([]float32, d)
		for j := 0; j < d; j++ {
			val := proto[j]
			if r.Float64() < density {
				val += r.NormFloat64()
			}
			v[j] = float32(val)
		}
		out[i] = v
	}
	return out
}

// siftLike draws non-negative quantized descriptors around visual-word
// centers, clipped to [0,255] like real SIFT.
func siftLike(n, d, words int, seed int64) [][]float32 {
	r := rand.New(rand.NewSource(seed))
	centers := make([][]float64, words)
	for w := range centers {
		v := make([]float64, d)
		for j := range v {
			v[j] = math.Abs(r.NormFloat64()) * 60
		}
		centers[w] = v
	}
	out := make([][]float32, n)
	for i := range out {
		c := centers[r.Intn(words)]
		v := make([]float32, d)
		for j := 0; j < d; j++ {
			val := c[j] + r.NormFloat64()*25
			if val < 0 {
				val = 0
			}
			if val > 255 {
				val = 255
			}
			v[j] = float32(math.Floor(val))
		}
		out[i] = v
	}
	return out
}

func randUnit(r *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	var nrm float64
	for j := range v {
		v[j] = r.NormFloat64()
		nrm += v[j] * v[j]
	}
	nrm = math.Sqrt(nrm)
	for j := range v {
		v[j] /= nrm
	}
	return v
}
