package dataset

import (
	"math"
	"path/filepath"
	"sort"
	"testing"

	"promips/internal/vec"
)

func TestSpecsComplete(t *testing.T) {
	specs := Specs()
	if len(specs) != 4 {
		t.Fatalf("want 4 datasets, got %d", len(specs))
	}
	wantNames := []string{"Netflix", "Yahoo", "P53", "Sift"}
	for i, s := range specs {
		if s.Name != wantNames[i] {
			t.Fatalf("spec %d = %q, want %q", i, s.Name, wantNames[i])
		}
		if s.FullN <= 0 || s.D <= 0 || s.DefaultN <= 0 || s.PageSize <= 0 || s.M <= 0 {
			t.Fatalf("spec %q has zero fields: %+v", s.Name, s)
		}
		// A vector must fit on one page (the paper's page-size rule).
		if 4*s.D > s.PageSize {
			t.Fatalf("spec %q: vector (%dB) exceeds page (%dB)", s.Name, 4*s.D, s.PageSize)
		}
	}
}

func TestTableIIISizes(t *testing.T) {
	// Paper Table III: n and d of the four datasets.
	cases := map[string][2]int{
		"Netflix": {17770, 300},
		"Yahoo":   {624961, 300},
		"P53":     {31420, 5408},
		"Sift":    {11164866, 128},
	}
	for name, nd := range cases {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.FullN != nd[0] || s.FullD != nd[1] {
			t.Fatalf("%s full size = (%d,%d), want %v", name, s.FullN, s.FullD, nd)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("MovieLens"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestGenerateDeterministicAndSized(t *testing.T) {
	for _, s := range Specs() {
		a := s.Generate(200, 7)
		b := s.Generate(200, 7)
		c := s.Generate(200, 8)
		if len(a) != 200 || len(a[0]) != s.D {
			t.Fatalf("%s: generated %dx%d", s.Name, len(a), len(a[0]))
		}
		same := true
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("%s: same seed differs", s.Name)
				}
				if a[i][j] != c[i][j] {
					same = false
				}
			}
		}
		if same {
			t.Fatalf("%s: different seeds identical", s.Name)
		}
	}
}

func TestQueriesDisjointStream(t *testing.T) {
	s := Netflix()
	data := s.Generate(100, 3)
	qs := s.Queries(100, 3)
	same := true
	for i := range qs {
		for j := range qs[i] {
			if qs[i][j] != data[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("queries replicate the data stream")
	}
	if len(qs) != 100 || len(qs[0]) != s.D {
		t.Fatalf("queries shape %dx%d", len(qs), len(qs[0]))
	}
}

func TestNetflixNormSkew(t *testing.T) {
	data := Netflix().Generate(3000, 5)
	norms := make([]float64, len(data))
	for i, v := range data {
		norms[i] = vec.Norm2(v)
	}
	sort.Float64s(norms)
	median := norms[len(norms)/2]
	p99 := norms[len(norms)*99/100]
	// MF-factor norms are skewed: the 99th percentile should sit clearly
	// above the median (this is what H2-ALSH/Range-LSH partitioning keys
	// on), but not by the orders of magnitude that would make norm bounds
	// vacuous.
	if p99 < 1.2*median || p99 > 5*median {
		t.Fatalf("norm distribution out of band: median %.3f p99 %.3f", median, p99)
	}
}

func TestSiftNonNegativeQuantized(t *testing.T) {
	data := Sift().Generate(500, 6)
	for _, v := range data {
		for _, x := range v {
			if x < 0 || x > 255 {
				t.Fatalf("sift coordinate %v out of [0,255]", x)
			}
			if x != float32(math.Floor(float64(x))) {
				t.Fatalf("sift coordinate %v not integral", x)
			}
		}
	}
}

func TestP53Sparsity(t *testing.T) {
	data := P53().Generate(200, 9)
	zero, total := 0, 0
	for _, v := range data {
		for _, x := range v {
			if x == 0 {
				zero++
			}
			total++
		}
	}
	if frac := float64(zero) / float64(total); frac < 0.5 {
		t.Fatalf("P53 should be mostly sparse, zero fraction %.2f", frac)
	}
}

func TestWriteReadFileRoundTrip(t *testing.T) {
	data := Netflix().Generate(50, 11)
	path := filepath.Join(t.TempDir(), "nf.pds")
	if err := WriteFile(path, data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("read %d of %d points", len(got), len(data))
	}
	for i := range data {
		for j := range data[i] {
			if got[i][j] != data[i][j] {
				t.Fatalf("mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error for missing file")
	}
	if err := WriteFile(filepath.Join(t.TempDir(), "e"), nil); err == nil {
		t.Fatal("expected error writing empty dataset")
	}
}
