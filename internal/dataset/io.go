package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// File format used by cmd/datagen: a little-endian header (magic, n, d)
// followed by n·d float32 values — a simplified fvecs.
const fileMagic = uint32(0x50445331) // "PDS1"

// WriteFile stores vectors at path.
func WriteFile(path string, data [][]float32) error {
	if len(data) == 0 {
		return fmt.Errorf("dataset: refusing to write empty dataset")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr, fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(data[0])))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 4)
	for i, v := range data {
		if len(v) != len(data[0]) {
			return fmt.Errorf("dataset: point %d has dim %d, want %d", i, len(v), len(data[0]))
		}
		for _, x := range v {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(x))
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

// ReadFile loads vectors written by WriteFile.
func ReadFile(path string) ([][]float32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("dataset: short header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr) != fileMagic {
		return nil, fmt.Errorf("dataset: bad magic in %s", path)
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:]))
	d := int(binary.LittleEndian.Uint32(hdr[8:]))
	if n <= 0 || d <= 0 || n > 1<<28 || d > 1<<20 {
		return nil, fmt.Errorf("dataset: implausible header n=%d d=%d", n, d)
	}
	data := make([][]float32, n)
	row := make([]byte, 4*d)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, row); err != nil {
			return nil, fmt.Errorf("dataset: truncated at point %d: %w", i, err)
		}
		v := make([]float32, d)
		for j := 0; j < d; j++ {
			v[j] = math.Float32frombits(binary.LittleEndian.Uint32(row[4*j:]))
		}
		data[i] = v
	}
	return data, nil
}
