// Package wal implements the durable update journal: an append-only,
// checksummed record log (wal.log) living inside the active index
// generation. Every acknowledged Insert/Delete appends one record; Open
// replays the log on top of the persisted delta; Save/Compact truncate it
// once the delta is durable in the metadata.
//
// # On-disk format
//
// The file starts with an 8-byte magic ("PMWAL" + version 1 + two zero
// bytes) followed by records:
//
//	record := crc32c(payload) u32 | len(payload) u32 | payload
//	payload := type u8 | id u32 | vector float32-LE...   (insert)
//	payload := type u8 | id u32                          (delete)
//
// All integers are little-endian; the checksum is CRC-32C (Castagnoli).
//
// # Crash discipline
//
// A crash can tear the last record (or the header) mid-write; it can never
// damage earlier bytes of an append-only file. Decode therefore treats any
// trailing anomaly — short header, short record, oversized or undersized
// length, checksum mismatch — as a torn tail: the valid prefix is kept and
// the caller truncates the rest (Open does this automatically). Anomalies
// that a tear cannot produce — wrong magic, an unknown record type or a
// malformed payload protected by a VALID checksum — are reported as
// errs.ErrCorruptIndex.
//
// # Sync policy
//
// SyncAlways makes every record durable before it is acknowledged: Append
// writes the record and returns its LSN, and WaitDurable(lsn) blocks until
// an fsync covering that LSN has completed. The fsyncs are group-committed:
// whichever waiter finds no fsync in flight becomes the leader and issues
// one fsync covering every record written so far, then wakes all waiters
// whose LSN it covered — so N updates racing through the ack path pay ~2
// fsyncs between them, not N. SyncNever keeps acknowledged records in
// memory and writes them out batched at Close (a Save discards them
// instead — the persisted delta covers them): updates are durable after a
// clean shutdown, and a crash recovers the last Save — the contract
// promips.FsyncNever documents.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"promips/internal/errs"
	"promips/internal/fsutil"
	"promips/internal/vec"
)

var magic = []byte{'P', 'M', 'W', 'A', 'L', 1, 0, 0}

const (
	headerLen = 8
	recHdrLen = 8 // crc u32 + payload length u32
	// maxPayload bounds a record's declared payload length. Large enough
	// for any supported vector (dimension is bounded far below this by the
	// page-size constraint), small enough that a torn or hostile length
	// field cannot force a huge allocation.
	maxPayload = 1 << 24
	// syncNeverFlushBytes is the SyncNever batching threshold: once the
	// pending records would encode to this many bytes they are written out
	// (unsynced) and their memory is released, bounding the journal's heap
	// footprint at the threshold instead of the total acked update volume.
	syncNeverFlushBytes = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Type tags a journal record.
type Type uint8

const (
	TypeInsert Type = 1
	TypeDelete Type = 2
)

// Record is one logged update. Vec is nil for deletes. The id is the one
// the update was acknowledged with, so replay can tell records already
// covered by a persisted delta (id below the watermark) from records that
// must be re-applied.
type Record struct {
	Type Type
	ID   uint32
	Vec  []float32
}

// SyncMode selects the append durability policy.
type SyncMode int

const (
	// SyncAlways fsyncs the log after every appended record.
	SyncAlways SyncMode = iota
	// SyncNever buffers appends in memory and leaves writeback to the OS.
	SyncNever
)

// Journal is an open update journal positioned for appending.
//
// Synchronization contract: the file-mutating methods — Append, Reset,
// Close — require external serialization; core.Index already orders them
// under its index lock (appends hold it exclusive, Reset runs inside Save,
// and the public lifecycle lock serializes Saves), and adding a journal
// mutex would tax every insert acknowledgement for ordering the caller has
// already paid for. WaitDurable, SealDurable, Poison and Len are safe
// concurrently with anything — WaitDurable in particular is DESIGNED to
// run outside the caller's lock, so the group fsync never blocks readers.
//
// In SyncNever mode Append neither encodes nor writes: it retains the
// Record (the caller guarantees Vec is immutable — core hands the journal
// its private delta clone, so the refs add no meaningful memory on top of
// the delta itself) and the encode+checksum+write happen batched at Close.
// That IS the SyncNever durability contract — acknowledged updates survive
// a clean shutdown, a crash recovers the last Save — and it makes the
// acknowledgement cost a slice append, with the deferred work landing in
// the one place SyncNever is obliged to do I/O. A Reset (Save persisted
// the delta) discards the pending records without ever writing them.
type Journal struct {
	fsys fsutil.FS
	path string
	mode SyncMode
	f    fsutil.File
	size int64 // bytes durably part of the log (header + whole records written)

	count atomic.Int64 // records in the journal, pending ones included

	// covered is the highest record count known to be reflected in durable
	// storage OUTSIDE the journal — the persisted metadata (Open's replay
	// skips that many records) or a flushed delta segment (core marks the
	// segment's freeze watermark once its seg file is durable). Purely an
	// accounting watermark: the file itself only ever shrinks at Reset.
	// Monotone between Resets; Reset clears it with the records it covers.
	covered atomic.Int64

	pending      []Record // SyncNever: acknowledged records awaiting encode+write
	pendingBytes int64    // encoded size of pending (flush threshold accounting)
	enc          []byte   // reusable encode scratch

	// Group-commit sequencer state, guarded by gmu. LSNs are 1-based record
	// sequence numbers, monotone over the journal's whole life — Reset
	// truncates the FILE but never rewinds the sequence, so a stale LSN can
	// never be confused with a fresh record's (no ABA across Save cycles).
	gmu     sync.Mutex
	gcond   sync.Cond // signaled whenever durable/bad advance
	written int64     // LSN of the last record fully written to the file
	durable int64     // highest LSN known durable (fsynced, or sealed by covering metadata)
	syncing bool      // a leader's fsync is in flight
	bad     error     // first unhealed failure; poisons the journal until Reset
}

// newJournal wires the sequencer's condition variable.
func newJournal(fsys fsutil.FS, path string, mode SyncMode, f fsutil.File, size int64) *Journal {
	j := &Journal{fsys: fsys, path: path, mode: mode, f: f, size: size}
	j.gcond.L = &j.gmu
	return j
}

// Create starts a fresh, empty journal at path, truncating any previous
// file there (Build writes into directories that may hold a stale log).
// Under SyncAlways the header and the directory entry are made durable
// before Create returns.
func Create(fsys fsutil.FS, path string, mode SyncMode) (*Journal, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	if _, err := f.Write(magic); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: write header: %w", err)
	}
	if mode == SyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: sync header: %w", err)
		}
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
	}
	return newJournal(fsys, path, mode, f, headerLen), nil
}

// Open loads the journal at path, decodes its records, clean-truncates any
// torn tail, and returns the journal positioned for append together with
// the decoded records and the number of torn bytes removed. A missing file
// (or one whose header write was itself torn) is treated as an empty
// journal and recreated. On-disk states no crash can produce surface as
// errs.ErrCorruptIndex.
func Open(fsys fsutil.FS, path string, mode SyncMode) (*Journal, []Record, int64, error) {
	b, err := fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			j, cerr := Create(fsys, path, mode)
			return j, nil, 0, cerr
		}
		return nil, nil, 0, fmt.Errorf("wal: read: %w", err)
	}
	recs, validLen, err := Decode(b)
	if err != nil {
		return nil, nil, 0, err
	}
	if validLen < headerLen {
		// Torn header: no record was ever acknowledged from this file.
		// Start over.
		j, cerr := Create(fsys, path, mode)
		return j, nil, int64(len(b)) - validLen, cerr
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("wal: open append: %w", err)
	}
	torn := int64(len(b)) - validLen
	if torn > 0 {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if mode == SyncAlways {
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, nil, 0, fmt.Errorf("wal: sync truncated tail: %w", err)
			}
		}
	}
	j := newJournal(fsys, path, mode, f, validLen)
	j.count.Store(int64(len(recs)))
	// Replayed records are on disk and (post-truncate) synced: durable.
	j.written, j.durable = int64(len(recs)), int64(len(recs))
	return j, recs, torn, nil
}

// Decode parses journal bytes and returns the decoded records plus the
// length of the valid prefix (validLen ≤ len(b); the caller truncates the
// rest). A non-nil error is always errs.ErrCorruptIndex-classified and
// means the content cannot be a crash artifact; records decoded before the
// corruption are returned alongside it. Decode never panics on arbitrary
// input — pinned by FuzzDecode.
func Decode(b []byte) ([]Record, int64, error) {
	n := len(b)
	if n < headerLen {
		// A prefix of the magic is a torn header; anything else is not ours.
		for i := range b {
			if b[i] != magic[i] {
				return nil, 0, fmt.Errorf("wal: bad header: %w", errs.ErrCorruptIndex)
			}
		}
		return nil, 0, nil
	}
	for i := range magic {
		if b[i] != magic[i] {
			return nil, 0, fmt.Errorf("wal: bad magic: %w", errs.ErrCorruptIndex)
		}
	}
	recs, validLen, err := DecodeRecords(b[headerLen:])
	return recs, headerLen + validLen, err
}

// DecodeRecords parses a headerless record sequence — journal bytes
// starting at any record boundary past the file header. This is the wire
// format network WAL shipping resumes from: a replica that has applied the
// first N bytes of a primary's journal requests the suffix from byte
// offset N, and the chunk it gets back is exactly such a sequence. The
// torn-tail taxonomy is Decode's, unchanged: a chunk truncated mid-record
// (the network analogue of a crash tear) keeps its valid prefix and
// validLen tells the caller where to resume, while checksum-valid garbage
// is errs.ErrCorruptIndex. validLen is relative to the start of b.
func DecodeRecords(b []byte) ([]Record, int64, error) {
	n := int64(len(b))
	var recs []Record
	var off int64
	for off < n {
		if off+recHdrLen > n {
			break // torn record header
		}
		crc := binary.LittleEndian.Uint32(b[off:])
		plen := int64(binary.LittleEndian.Uint32(b[off+4:]))
		if plen < 5 || plen > maxPayload || off+recHdrLen+plen > n {
			break // torn length field or torn payload
		}
		payload := b[off+recHdrLen : off+recHdrLen+plen]
		if crc32.Checksum(payload, crcTable) != crc {
			break // torn payload
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, off, err
		}
		recs = append(recs, rec)
		off += recHdrLen + plen
	}
	return recs, off, nil
}

// CountRecords reports how many complete records journal bytes hold,
// ignoring a torn tail — Decode's walk without materializing the vectors.
// Replication uses it to read a primary's LSN watermark from shipped bytes
// (LSNs restart at the file's record count on open, so the count is the
// durable LSN) without paying a per-record allocation on every poll.
func CountRecords(b []byte) (int, error) {
	n := len(b)
	if n < headerLen {
		for i := range b {
			if b[i] != magic[i] {
				return 0, fmt.Errorf("wal: bad header: %w", errs.ErrCorruptIndex)
			}
		}
		return 0, nil
	}
	for i := range magic {
		if b[i] != magic[i] {
			return 0, fmt.Errorf("wal: bad magic: %w", errs.ErrCorruptIndex)
		}
	}
	count := 0
	off := int64(headerLen)
	for off < int64(n) {
		if off+recHdrLen > int64(n) {
			break
		}
		crc := binary.LittleEndian.Uint32(b[off:])
		plen := int64(binary.LittleEndian.Uint32(b[off+4:]))
		if plen < 5 || plen > maxPayload || off+recHdrLen+plen > int64(n) {
			break
		}
		payload := b[off+recHdrLen : off+recHdrLen+plen]
		if crc32.Checksum(payload, crcTable) != crc {
			break
		}
		// The payload checksums clean but may still be malformed (a record
		// Decode would reject as corrupt, not torn): count only what Decode
		// would return.
		if _, err := decodePayload(payload); err != nil {
			return count, err
		}
		count++
		off += recHdrLen + plen
	}
	return count, nil
}

// decodePayload decodes one checksum-verified payload. Anything malformed
// here survived the CRC, so it is corruption (or a version we do not
// speak), never a tear.
func decodePayload(p []byte) (Record, error) {
	rec := Record{Type: Type(p[0]), ID: binary.LittleEndian.Uint32(p[1:5])}
	body := p[5:]
	switch rec.Type {
	case TypeInsert:
		if len(body) == 0 || len(body)%4 != 0 {
			return Record{}, fmt.Errorf("wal: insert record with %d payload bytes: %w", len(p), errs.ErrCorruptIndex)
		}
		rec.Vec = make([]float32, len(body)/4)
		for i := range rec.Vec {
			rec.Vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[i*4:]))
		}
	case TypeDelete:
		if len(body) != 0 {
			return Record{}, fmt.Errorf("wal: delete record with %d payload bytes: %w", len(p), errs.ErrCorruptIndex)
		}
	default:
		return Record{}, fmt.Errorf("wal: unknown record type %d: %w", rec.Type, errs.ErrCorruptIndex)
	}
	return rec, nil
}

// EncodeLog serializes records as a complete standalone journal byte
// stream — header magic followed by checksummed records — decodable with
// Decode. Delta-segment flush files use it: a frozen segment written in
// the journal's own format replays through the same torn-tail-tolerant,
// idempotent machinery recovery already trusts.
func EncodeLog(recs []Record) []byte {
	b := make([]byte, 0, headerLen+len(recs)*64)
	b = append(b, magic...)
	for _, r := range recs {
		b = appendRecord(b, r)
	}
	return b
}

// appendRecord encodes r onto dst. The vector bytes go through the bulk
// little-endian kernel — the insert acknowledgement path runs this per
// update, so the encode must stay near memcpy cost.
func appendRecord(dst []byte, r Record) []byte {
	plen := 5
	if r.Type == TypeInsert {
		plen += 4 * len(r.Vec)
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = append(dst, byte(r.Type))
	dst = binary.LittleEndian.AppendUint32(dst, r.ID)
	if r.Type == TypeInsert {
		dst = vec.AppendF32LE(dst, r.Vec)
	}
	payload := dst[start+recHdrLen:]
	binary.LittleEndian.PutUint32(dst[start:], crc32.Checksum(payload, crcTable))
	binary.LittleEndian.PutUint32(dst[start+4:], uint32(plen))
	return dst
}

// Append sequences one record into the log and returns its LSN. Under
// SyncAlways the record is WRITTEN but not yet durable: the caller must
// acknowledge the update only after WaitDurable(lsn) returns nil — the
// split is what lets core release its index lock between the write and the
// fsync. Under SyncNever the record is retained for the next batched flush
// (r.Vec must stay immutable until then — see the type comment) and the
// returned LSN is 0: WaitDurable(0) is a no-op, matching the policy's
// no-crash-durability contract. On a write failure the journal heals
// itself by truncating back to the last good size — the caller's memory
// state is untouched and the failed bytes can never precede a later
// record; if even the heal fails, the journal is poisoned (every later
// Append returns ErrJournalPoisoned wrapping the original failure) until a
// Reset succeeds.
func (j *Journal) Append(r Record) (int64, error) {
	j.gmu.Lock()
	if j.bad != nil {
		err := j.poisonedErrLocked()
		j.gmu.Unlock()
		return 0, err
	}
	j.gmu.Unlock()
	if j.mode == SyncNever {
		j.pending = append(j.pending, r)
		j.count.Add(1)
		j.pendingBytes += int64(recHdrLen + 5 + 4*len(r.Vec))
		// Flush the batch once it reaches the byte threshold so a long-lived
		// write-heavy journal does not retain every acknowledged Record (and
		// its vector clone) until Close/Reset. No fsync — the SyncNever
		// durability contract is unchanged (clean shutdown, not crash) — but
		// the written records drop their heap refs here. A flush failure
		// poisons the journal (the records stay acknowledged and pending,
		// exactly like a failed Close-flush); the NEXT Append surfaces it.
		if j.pendingBytes >= syncNeverFlushBytes {
			j.flush()
		}
		return 0, nil
	}
	j.enc = appendRecord(j.enc[:0], r)
	if err := j.write(j.enc, "append"); err != nil {
		return 0, err
	}
	j.count.Add(1)
	j.gmu.Lock()
	j.written++
	lsn := j.written
	j.gmu.Unlock()
	return lsn, nil
}

// WaitDurable blocks until every record up to lsn is durable and returns
// nil, or returns the error that makes durability impossible (the journal
// was poisoned, or this group's fsync failed). It runs the group-commit
// protocol: the first waiter that finds no fsync in flight becomes the
// leader and fsyncs once for ALL records written so far; waiters that
// arrive while that fsync is in flight sleep, and whichever of them the
// completed fsync did not cover elects the next leader — so any burst of
// concurrent appenders is drained by at most two fsyncs. Safe for
// concurrent use and intended to be called WITHOUT the caller's index
// lock. WaitDurable(0) and SyncNever-mode calls return nil immediately.
func (j *Journal) WaitDurable(lsn int64) error {
	if lsn <= 0 || j.mode == SyncNever {
		return nil
	}
	j.gmu.Lock()
	defer j.gmu.Unlock()
	for {
		// Durability is checked before poison: a record covered by an
		// earlier fsync (or sealed by covering metadata) stays acknowledged
		// even if the journal failed afterwards.
		if lsn <= j.durable {
			return nil
		}
		if j.bad != nil {
			return j.poisonedErrLocked()
		}
		if !j.syncing {
			j.syncing = true
			j.gmu.Unlock()
			// Group-commit gather: yield once before capturing the fsync's
			// target so updaters already acknowledged by the previous round
			// (or past their index lock) can land their records and join
			// this fsync instead of electing another. This matters most at
			// GOMAXPROCS=1, where the fsync syscall below pins the only P —
			// without the yield, waiters pile onto the NEXT round and a
			// saturated ack path degrades toward one fsync per record.
			runtime.Gosched()
			j.gmu.Lock()
			target := j.written
			j.gmu.Unlock()
			err := j.f.Sync()
			j.gmu.Lock()
			j.syncing = false
			if err != nil {
				// A failed group fsync cannot be healed by truncation: the
				// covered records are already applied in their callers'
				// memory (and possibly on disk). Poison — no further update
				// is acknowledged until a Save re-establishes durability
				// through the metadata path and Resets the journal.
				if j.bad == nil {
					j.bad = fmt.Errorf("wal: group fsync: %w", err)
				}
			} else if target > j.durable {
				j.durable = target
			}
			j.gcond.Broadcast()
			continue
		}
		j.gcond.Wait()
	}
}

// poisonedErrLocked wraps the poisoning failure in the retryable sentinel.
// Caller holds gmu.
func (j *Journal) poisonedErrLocked() error {
	return fmt.Errorf("wal: %w by earlier failure: %w", errs.ErrJournalPoisoned, j.bad)
}

// write puts enc at the end of the log, healing or poisoning on failure;
// on success j.size advances. Durability is WaitDurable's business.
func (j *Journal) write(enc []byte, what string) error {
	n, err := j.f.Write(enc)
	if err == nil && n < len(enc) {
		err = fmt.Errorf("wal: short write (%d of %d bytes)", n, len(enc))
	}
	if err == nil {
		j.size += int64(len(enc))
		return nil
	}
	// Heal: cut back to the last record boundary. The failed bytes may or
	// may not be on disk; either way nothing after j.size is acknowledged.
	if terr := j.f.Truncate(j.size); terr != nil {
		j.gmu.Lock()
		if j.bad == nil {
			j.bad = err
		}
		j.gcond.Broadcast()
		j.gmu.Unlock()
	}
	return fmt.Errorf("wal: %s: %w", what, err)
}

// flush encodes and writes the pending SyncNever records. On failure they
// are kept (still acknowledged in memory) and the journal is poisoned
// until the next successful Reset discards them as persisted-elsewhere.
func (j *Journal) flush() error {
	if len(j.pending) == 0 {
		return nil
	}
	j.enc = j.enc[:0]
	for _, r := range j.pending {
		j.enc = appendRecord(j.enc, r)
	}
	if err := j.write(j.enc, "flush"); err != nil {
		j.Poison(err)
		return err
	}
	j.pending = j.pending[:0]
	j.pendingBytes = 0
	return nil
}

// MarkCovered records that the first n journal records are reflected in
// durable storage outside the journal (persisted metadata or a flushed
// delta segment). Monotone: a smaller n than already marked is a no-op.
// Safe for concurrent use; callers serialize it against Reset the same way
// they serialize their own state transitions (core holds the index lock).
func (j *Journal) MarkCovered(n int64) {
	for {
		cur := j.covered.Load()
		if n <= cur || j.covered.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Covered returns the MarkCovered watermark: how many of the journal's
// records durable storage outside the journal already accounts for.
func (j *Journal) Covered() int64 { return j.covered.Load() }

// Len returns the number of records currently in the journal (replayed at
// Open plus appended since, minus Resets; pending records included). Len
// is safe to call concurrently with any other method.
func (j *Journal) Len() int { return int(j.count.Load()) }

// Poisoned reports whether the journal is refusing acknowledgements
// (see Poison) — the readiness signal promipsd's /v1/readyz surfaces for a
// primary: a poisoned journal means writes bounce with ErrJournalPoisoned
// until a Save heals it, so the node is alive but not ready for update
// traffic. Safe to call concurrently with any other method.
func (j *Journal) Poisoned() bool {
	j.gmu.Lock()
	defer j.gmu.Unlock()
	return j.bad != nil
}

// Poison puts the journal in the failed state: every Append (and every
// WaitDurable for a not-yet-durable LSN) returns ErrJournalPoisoned
// wrapping err until a Reset succeeds. Callers use it when the journal's
// backing guarantee has been lost out-of-band — e.g. the generation
// pointer that makes this journal the recovered one could not be fsynced —
// so that no update can be acknowledged against a durability promise that
// cannot be kept. Safe for concurrent use; waiters are woken.
func (j *Journal) Poison(err error) {
	j.gmu.Lock()
	if j.bad == nil {
		j.bad = err
	}
	j.gcond.Broadcast()
	j.gmu.Unlock()
}

// SealDurable marks every record written so far as durable OUT-OF-BAND:
// the caller established durability through another channel — the records
// were folded into a new generation whose metadata and generation pointer
// are fsynced — so waiters are acknowledged without another fsync of this
// (retired) file. Compact uses it on the old generation's journal right
// before closing it; without the seal, an in-flight WaitDurable would race
// the Close and fail a group fsync whose records are in fact durable.
// Safe for concurrent use.
func (j *Journal) SealDurable() {
	j.gmu.Lock()
	if j.written > j.durable {
		j.durable = j.written
	}
	j.gcond.Broadcast()
	j.gmu.Unlock()
}

// Reset empties the journal — called once the updates it logs are durable
// in the persisted metadata. That precondition means every written record
// is durable REGARDLESS of how the truncation below fares, so Reset first
// seals the sequencer (releasing any in-flight WaitDurable with success —
// their records are covered by the meta that prompted the Reset) and
// clears the poisoned state. A successful Reset clears poisoning for
// appends too: whatever half-written bytes poisoned it are gone with the
// truncate. A crash between the metadata fsync and Reset is safe: replay
// is idempotent against the persisted delta (ids below the watermark are
// skipped, deletes re-apply).
func (j *Journal) Reset() error {
	j.gmu.Lock()
	if j.written > j.durable {
		j.durable = j.written
	}
	j.gcond.Broadcast()
	j.gmu.Unlock()
	j.pending = j.pending[:0]
	j.pendingBytes = 0
	if err := j.f.Truncate(headerLen); err != nil {
		j.Poison(err)
		return fmt.Errorf("wal: reset: %w", err)
	}
	if j.mode == SyncAlways {
		if err := j.f.Sync(); err != nil {
			j.Poison(err)
			return fmt.Errorf("wal: reset sync: %w", err)
		}
	}
	j.size = headerLen
	j.count.Store(0)
	j.covered.Store(0)
	j.gmu.Lock()
	j.bad = nil
	j.gmu.Unlock()
	return nil
}

// Close flushes pending records (best effort — the flush error is
// returned, but the file is closed regardless) and releases the file. It
// deliberately does NOT truncate: the journal must survive Close so a
// crash-after-close (or a process that never Saves) still replays.
func (j *Journal) Close() error {
	err := j.flush()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}
