// Package wal implements the durable update journal: an append-only,
// checksummed record log (wal.log) living inside the active index
// generation. Every acknowledged Insert/Delete appends one record; Open
// replays the log on top of the persisted delta; Save/Compact truncate it
// once the delta is durable in the metadata.
//
// # On-disk format
//
// The file starts with an 8-byte magic ("PMWAL" + version 1 + two zero
// bytes) followed by records:
//
//	record := crc32c(payload) u32 | len(payload) u32 | payload
//	payload := type u8 | id u32 | vector float32-LE...   (insert)
//	payload := type u8 | id u32                          (delete)
//
// All integers are little-endian; the checksum is CRC-32C (Castagnoli).
//
// # Crash discipline
//
// A crash can tear the last record (or the header) mid-write; it can never
// damage earlier bytes of an append-only file. Decode therefore treats any
// trailing anomaly — short header, short record, oversized or undersized
// length, checksum mismatch — as a torn tail: the valid prefix is kept and
// the caller truncates the rest (Open does this automatically). Anomalies
// that a tear cannot produce — wrong magic, an unknown record type or a
// malformed payload protected by a VALID checksum — are reported as
// errs.ErrCorruptIndex.
//
// # Sync policy
//
// SyncAlways fsyncs after every record: an acknowledged update survives
// any crash. SyncNever keeps acknowledged records in memory and writes
// them out batched at Close (a Save discards them instead — the persisted
// delta covers them): updates are durable after a clean shutdown, and a
// crash recovers the last Save — the contract promips.FsyncNever
// documents.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math"
	"path/filepath"
	"sync/atomic"

	"promips/internal/errs"
	"promips/internal/fsutil"
	"promips/internal/vec"
)

var magic = []byte{'P', 'M', 'W', 'A', 'L', 1, 0, 0}

const (
	headerLen = 8
	recHdrLen = 8 // crc u32 + payload length u32
	// maxPayload bounds a record's declared payload length. Large enough
	// for any supported vector (dimension is bounded far below this by the
	// page-size constraint), small enough that a torn or hostile length
	// field cannot force a huge allocation.
	maxPayload = 1 << 24
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Type tags a journal record.
type Type uint8

const (
	TypeInsert Type = 1
	TypeDelete Type = 2
)

// Record is one logged update. Vec is nil for deletes. The id is the one
// the update was acknowledged with, so replay can tell records already
// covered by a persisted delta (id below the watermark) from records that
// must be re-applied.
type Record struct {
	Type Type
	ID   uint32
	Vec  []float32
}

// SyncMode selects the append durability policy.
type SyncMode int

const (
	// SyncAlways fsyncs the log after every appended record.
	SyncAlways SyncMode = iota
	// SyncNever buffers appends in memory and leaves writeback to the OS.
	SyncNever
)

// Journal is an open update journal positioned for appending.
//
// Synchronization contract: the mutating methods — Append, Reset, Close —
// require external serialization; core.Index already orders them under its
// index lock (appends hold it exclusive, Reset runs inside Save, and the
// public lifecycle lock serializes Saves), and adding a journal mutex
// would tax every insert acknowledgement for ordering the caller has
// already paid for. Len alone is safe concurrently with anything.
//
// In SyncNever mode Append neither encodes nor writes: it retains the
// Record (the caller guarantees Vec is immutable — core hands the journal
// its private delta clone, so the refs add no meaningful memory on top of
// the delta itself) and the encode+checksum+write happen batched at Close.
// That IS the SyncNever durability contract — acknowledged updates survive
// a clean shutdown, a crash recovers the last Save — and it makes the
// acknowledgement cost a slice append, with the deferred work landing in
// the one place SyncNever is obliged to do I/O. A Reset (Save persisted
// the delta) discards the pending records without ever writing them.
type Journal struct {
	fsys fsutil.FS
	path string
	mode SyncMode
	f    fsutil.File
	size int64 // bytes durably part of the log (header + whole records written)

	count atomic.Int64 // records in the journal, pending ones included

	pending []Record // SyncNever: acknowledged records awaiting encode+write
	enc     []byte   // reusable encode scratch
	bad     error    // first unhealed append/flush failure; poisons the journal
}

// Create starts a fresh, empty journal at path, truncating any previous
// file there (Build writes into directories that may hold a stale log).
// Under SyncAlways the header and the directory entry are made durable
// before Create returns.
func Create(fsys fsutil.FS, path string, mode SyncMode) (*Journal, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	if _, err := f.Write(magic); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: write header: %w", err)
	}
	if mode == SyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: sync header: %w", err)
		}
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
	}
	return &Journal{fsys: fsys, path: path, mode: mode, f: f, size: headerLen}, nil
}

// Open loads the journal at path, decodes its records, clean-truncates any
// torn tail, and returns the journal positioned for append together with
// the decoded records and the number of torn bytes removed. A missing file
// (or one whose header write was itself torn) is treated as an empty
// journal and recreated. On-disk states no crash can produce surface as
// errs.ErrCorruptIndex.
func Open(fsys fsutil.FS, path string, mode SyncMode) (*Journal, []Record, int64, error) {
	b, err := fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			j, cerr := Create(fsys, path, mode)
			return j, nil, 0, cerr
		}
		return nil, nil, 0, fmt.Errorf("wal: read: %w", err)
	}
	recs, validLen, err := Decode(b)
	if err != nil {
		return nil, nil, 0, err
	}
	if validLen < headerLen {
		// Torn header: no record was ever acknowledged from this file.
		// Start over.
		j, cerr := Create(fsys, path, mode)
		return j, nil, int64(len(b)) - validLen, cerr
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("wal: open append: %w", err)
	}
	torn := int64(len(b)) - validLen
	if torn > 0 {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if mode == SyncAlways {
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, nil, 0, fmt.Errorf("wal: sync truncated tail: %w", err)
			}
		}
	}
	j := &Journal{fsys: fsys, path: path, mode: mode, f: f, size: validLen}
	j.count.Store(int64(len(recs)))
	return j, recs, torn, nil
}

// Decode parses journal bytes and returns the decoded records plus the
// length of the valid prefix (validLen ≤ len(b); the caller truncates the
// rest). A non-nil error is always errs.ErrCorruptIndex-classified and
// means the content cannot be a crash artifact; records decoded before the
// corruption are returned alongside it. Decode never panics on arbitrary
// input — pinned by FuzzDecode.
func Decode(b []byte) ([]Record, int64, error) {
	n := len(b)
	if n < headerLen {
		// A prefix of the magic is a torn header; anything else is not ours.
		for i := range b {
			if b[i] != magic[i] {
				return nil, 0, fmt.Errorf("wal: bad header: %w", errs.ErrCorruptIndex)
			}
		}
		return nil, 0, nil
	}
	for i := range magic {
		if b[i] != magic[i] {
			return nil, 0, fmt.Errorf("wal: bad magic: %w", errs.ErrCorruptIndex)
		}
	}
	var recs []Record
	off := int64(headerLen)
	for off < int64(n) {
		if off+recHdrLen > int64(n) {
			break // torn record header
		}
		crc := binary.LittleEndian.Uint32(b[off:])
		plen := int64(binary.LittleEndian.Uint32(b[off+4:]))
		if plen < 5 || plen > maxPayload || off+recHdrLen+plen > int64(n) {
			break // torn length field or torn payload
		}
		payload := b[off+recHdrLen : off+recHdrLen+plen]
		if crc32.Checksum(payload, crcTable) != crc {
			break // torn payload
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, off, err
		}
		recs = append(recs, rec)
		off += recHdrLen + plen
	}
	return recs, off, nil
}

// decodePayload decodes one checksum-verified payload. Anything malformed
// here survived the CRC, so it is corruption (or a version we do not
// speak), never a tear.
func decodePayload(p []byte) (Record, error) {
	rec := Record{Type: Type(p[0]), ID: binary.LittleEndian.Uint32(p[1:5])}
	body := p[5:]
	switch rec.Type {
	case TypeInsert:
		if len(body) == 0 || len(body)%4 != 0 {
			return Record{}, fmt.Errorf("wal: insert record with %d payload bytes: %w", len(p), errs.ErrCorruptIndex)
		}
		rec.Vec = make([]float32, len(body)/4)
		for i := range rec.Vec {
			rec.Vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[i*4:]))
		}
	case TypeDelete:
		if len(body) != 0 {
			return Record{}, fmt.Errorf("wal: delete record with %d payload bytes: %w", len(p), errs.ErrCorruptIndex)
		}
	default:
		return Record{}, fmt.Errorf("wal: unknown record type %d: %w", rec.Type, errs.ErrCorruptIndex)
	}
	return rec, nil
}

// appendRecord encodes r onto dst. The vector bytes go through the bulk
// little-endian kernel — the insert acknowledgement path runs this per
// update, so the encode must stay near memcpy cost.
func appendRecord(dst []byte, r Record) []byte {
	plen := 5
	if r.Type == TypeInsert {
		plen += 4 * len(r.Vec)
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = append(dst, byte(r.Type))
	dst = binary.LittleEndian.AppendUint32(dst, r.ID)
	if r.Type == TypeInsert {
		dst = vec.AppendF32LE(dst, r.Vec)
	}
	payload := dst[start+recHdrLen:]
	binary.LittleEndian.PutUint32(dst[start:], crc32.Checksum(payload, crcTable))
	binary.LittleEndian.PutUint32(dst[start+4:], uint32(plen))
	return dst
}

// Append logs one record under the journal's sync policy and returns once
// the record is acknowledged per that policy: written-and-fsynced under
// SyncAlways, retained for the next batched flush under SyncNever (r.Vec
// must stay immutable until then — see the type comment). On a write or
// sync failure the journal heals itself by truncating back to the last
// good size; if even that fails, the journal is poisoned — every later
// Append returns the original error — until a Reset succeeds, so a
// half-written record can never be followed by a record that would replay
// wrongly.
func (j *Journal) Append(r Record) error {
	if j.bad != nil {
		return fmt.Errorf("wal: journal poisoned by earlier failure: %w", j.bad)
	}
	if j.mode == SyncNever {
		j.pending = append(j.pending, r)
		j.count.Add(1)
		return nil
	}
	j.enc = appendRecord(j.enc[:0], r)
	if err := j.write(j.enc, "append"); err != nil {
		return err
	}
	j.count.Add(1)
	return nil
}

// write puts enc at the end of the log (fsyncing under SyncAlways),
// healing or poisoning on failure; on success j.size advances.
func (j *Journal) write(enc []byte, what string) error {
	n, err := j.f.Write(enc)
	if err == nil && n < len(enc) {
		err = fmt.Errorf("wal: short write (%d of %d bytes)", n, len(enc))
	}
	if err == nil && j.mode == SyncAlways {
		err = j.f.Sync()
	}
	if err == nil {
		j.size += int64(len(enc))
		return nil
	}
	// Heal: cut back to the last record boundary. The failed bytes may or
	// may not be on disk; either way nothing after j.size is acknowledged.
	if terr := j.f.Truncate(j.size); terr != nil {
		j.bad = err
	}
	return fmt.Errorf("wal: %s: %w", what, err)
}

// flush encodes and writes the pending SyncNever records. On failure they
// are kept (still acknowledged in memory) and the journal is poisoned
// until the next successful Reset discards them as persisted-elsewhere.
func (j *Journal) flush() error {
	if len(j.pending) == 0 {
		return nil
	}
	j.enc = j.enc[:0]
	for _, r := range j.pending {
		j.enc = appendRecord(j.enc, r)
	}
	if err := j.write(j.enc, "flush"); err != nil {
		if j.bad == nil {
			j.bad = err
		}
		return err
	}
	j.pending = j.pending[:0]
	return nil
}

// Len returns the number of records currently in the journal (replayed at
// Open plus appended since, minus Resets; pending records included). Len
// is safe to call concurrently with any other method.
func (j *Journal) Len() int { return int(j.count.Load()) }

// Poison puts the journal in the failed state: every Append returns err
// until a Reset succeeds. Callers use it when the journal's backing
// guarantee has been lost out-of-band — e.g. the generation pointer that
// makes this journal the recovered one could not be fsynced — so that no
// update can be acknowledged against a durability promise that cannot be
// kept.
func (j *Journal) Poison(err error) {
	if j.bad == nil {
		j.bad = err
	}
}

// Reset empties the journal — called once the updates it logs are durable
// in the persisted metadata. A successful Reset also clears a poisoned
// state: whatever half-written bytes poisoned it are gone with the
// truncate, and pending records are covered by the meta that prompted the
// Reset. A crash between the metadata fsync and Reset is safe: replay is
// idempotent against the persisted delta (ids below the watermark are
// skipped, deletes re-apply).
func (j *Journal) Reset() error {
	j.pending = j.pending[:0]
	if err := j.f.Truncate(headerLen); err != nil {
		if j.bad == nil {
			j.bad = err
		}
		return fmt.Errorf("wal: reset: %w", err)
	}
	if j.mode == SyncAlways {
		if err := j.f.Sync(); err != nil {
			if j.bad == nil {
				j.bad = err
			}
			return fmt.Errorf("wal: reset sync: %w", err)
		}
	}
	j.size = headerLen
	j.count.Store(0)
	j.bad = nil
	return nil
}

// Close flushes pending records (best effort — the flush error is
// returned, but the file is closed regardless) and releases the file. It
// deliberately does NOT truncate: the journal must survive Close so a
// crash-after-close (or a process that never Saves) still replays.
func (j *Journal) Close() error {
	err := j.flush()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}
