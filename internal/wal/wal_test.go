package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"promips/internal/errs"
	"promips/internal/fsutil"
)

// logRecord appends r and waits for its durability — the full acknowledge
// cycle a single-threaded caller runs (core splits the two halves around
// its index lock; see Append/WaitDurable).
func logRecord(j *Journal, r Record) error {
	lsn, err := j.Append(r)
	if err != nil {
		return err
	}
	return j.WaitDurable(lsn)
}

func mkRecords() []Record {
	return []Record{
		{Type: TypeInsert, ID: 100, Vec: []float32{1, -2.5, 3.25}},
		{Type: TypeDelete, ID: 7},
		{Type: TypeInsert, ID: 101, Vec: []float32{0, 0.5, -0.125}},
		{Type: TypeDelete, ID: 100},
	}
}

func recordsEqual(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("record count = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Type != want[i].Type || got[i].ID != want[i].ID {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
		if len(got[i].Vec) != len(want[i].Vec) {
			t.Fatalf("record %d vec len = %d, want %d", i, len(got[i].Vec), len(want[i].Vec))
		}
		for k := range got[i].Vec {
			if got[i].Vec[k] != want[i].Vec[k] {
				t.Fatalf("record %d vec[%d] = %v, want %v", i, k, got[i].Vec[k], want[i].Vec[k])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncNever} {
		path := filepath.Join(t.TempDir(), "wal.log")
		j, err := Create(fsutil.OS, path, mode)
		if err != nil {
			t.Fatal(err)
		}
		want := mkRecords()
		for _, r := range want {
			if err := logRecord(j, r); err != nil {
				t.Fatal(err)
			}
		}
		if j.Len() != len(want) {
			t.Fatalf("Len = %d", j.Len())
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		j2, got, torn, err := Open(fsutil.OS, path, mode)
		if err != nil {
			t.Fatal(err)
		}
		defer j2.Close()
		if torn != 0 {
			t.Fatalf("torn = %d", torn)
		}
		recordsEqual(t, got, want)
		if j2.Len() != len(want) {
			t.Fatalf("reopened Len = %d", j2.Len())
		}
	}
}

func TestOpenMissingCreates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	j, recs, torn, err := Open(fsutil.OS, path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(recs) != 0 || torn != 0 {
		t.Fatalf("recs=%d torn=%d", len(recs), torn)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal file not created: %v", err)
	}
}

// TestTornTailTruncated chops the file mid-record at every possible byte
// boundary: reopen must keep exactly the records whose bytes fully
// survived and truncate the rest, never erroring.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	j, err := Create(fsutil.OS, path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	want := mkRecords()
	var sizes []int64 // file size after each record
	for _, r := range want {
		if err := logRecord(j, r); err != nil {
			t.Fatal(err)
		}
		st, _ := os.Stat(path)
		sizes = append(sizes, st.Size())
	}
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		p := filepath.Join(dir, "wal.log")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, got, torn, err := Open(fsutil.OS, p, SyncAlways)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		wantN := 0
		for _, s := range sizes {
			if int64(cut) >= s {
				wantN++
			}
		}
		if len(got) != wantN {
			t.Fatalf("cut=%d: got %d records, want %d", cut, len(got), wantN)
		}
		recordsEqual(t, got, want[:wantN])
		if int64(cut) > sizesOr(sizes, wantN) && torn == 0 {
			t.Fatalf("cut=%d: expected torn bytes reported", cut)
		}
		// The torn tail must be gone from disk.
		st, _ := os.Stat(p)
		if wantN > 0 && st.Size() != sizes[wantN-1] {
			t.Fatalf("cut=%d: file size %d after reopen, want %d", cut, st.Size(), sizes[wantN-1])
		}
		// And the journal must accept appends cleanly after truncation.
		if err := logRecord(j2, Record{Type: TypeDelete, ID: 9}); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		j2.Close()
		_, got2, _, err := Open(fsutil.OS, p, SyncAlways)
		if err != nil {
			t.Fatalf("cut=%d reopen: %v", cut, err)
		}
		if len(got2) != wantN+1 {
			t.Fatalf("cut=%d: %d records after re-append, want %d", cut, len(got2), wantN+1)
		}
	}
}

func sizesOr(sizes []int64, n int) int64 {
	if n == 0 {
		return int64(headerLen)
	}
	return sizes[n-1]
}

func TestBadMagicIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("NOTAWAL0records"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err := Open(fsutil.OS, path, SyncAlways)
	if !errors.Is(err, errs.ErrCorruptIndex) {
		t.Fatalf("err = %v, want ErrCorruptIndex", err)
	}
}

func TestValidCRCBadPayloadIsCorrupt(t *testing.T) {
	// A record with a correct checksum over a malformed payload (unknown
	// type) cannot be a crash artifact: Decode must say corrupt.
	b := append([]byte{}, magic...)
	b = appendRecord(b, Record{Type: Type(9), ID: 1})
	_, _, err := Decode(b)
	if !errors.Is(err, errs.ErrCorruptIndex) {
		t.Fatalf("err = %v, want ErrCorruptIndex", err)
	}
}

func TestReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	j, err := Create(fsutil.OS, path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range mkRecords() {
		if err := logRecord(j, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("Len after reset = %d", j.Len())
	}
	if err := logRecord(j, Record{Type: TypeDelete, ID: 3}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs, torn, err := Open(fsutil.OS, path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 || len(recs) != 1 || recs[0].ID != 3 {
		t.Fatalf("after reset+append: torn=%d recs=%+v", torn, recs)
	}
}

// TestSyncPolicy pins the policy's observable contract through the fault
// injector's op counters: a SEQUENTIAL SyncAlways caller pays one fsync
// per acknowledged record (group commit only amortizes overlapping
// waiters), SyncNever issues none (and no write either, while buffered).
func TestSyncPolicy(t *testing.T) {
	dir := t.TempDir()
	ffs := &fsutil.FaultFS{}
	j, err := Create(ffs, filepath.Join(dir, "wal.log"), SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	base := ffs.Count(fsutil.OpSync)
	for i := 0; i < 3; i++ {
		if err := logRecord(j, Record{Type: TypeDelete, ID: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := ffs.Count(fsutil.OpSync) - base; got != 3 {
		t.Fatalf("SyncAlways issued %d fsyncs for 3 appends", got)
	}
	j.Close()

	ffs2 := &fsutil.FaultFS{}
	j2, err := Create(ffs2, filepath.Join(dir, "wal2.log"), SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	w0, s0 := ffs2.Count(fsutil.OpWrite), ffs2.Count(fsutil.OpSync)
	for i := 0; i < 3; i++ {
		if err := logRecord(j2, Record{Type: TypeDelete, ID: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if w := ffs2.Count(fsutil.OpWrite) - w0; w != 0 {
		t.Fatalf("SyncNever wrote %d times while buffering", w)
	}
	if s := ffs2.Count(fsutil.OpSync) - s0; s != 0 {
		t.Fatalf("SyncNever issued %d fsyncs", s)
	}
	// Close flushes the buffer so a clean shutdown keeps the records.
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, _, err := Open(fsutil.OS, filepath.Join(dir, "wal2.log"), SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records after buffered close = %d", len(recs))
	}
}

// TestAppendFailureHealsOrPoisons: a torn append must either be cut back
// out of the file (heal) or poison the journal so no later record can
// land after garbage.
func TestAppendFailureHealsOrPoisons(t *testing.T) {
	dir := t.TempDir()
	// Create = create+write+sync+syncdir (ops 1-4). Append = write; the
	// group fsync lives in WaitDurable. Fail the first append's write
	// (op 5), crash mode off so the healing truncate (op 6) succeeds.
	ffs := &fsutil.FaultFS{FailAt: 5}
	j, err := Create(ffs, filepath.Join(dir, "wal.log"), SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := logRecord(j, Record{Type: TypeInsert, ID: 0, Vec: []float32{1, 2}}); !errors.Is(err, fsutil.ErrInjected) {
		t.Fatalf("append err = %v", err)
	}
	// Healed: the next append must succeed and the log must hold exactly it.
	if err := logRecord(j, Record{Type: TypeDelete, ID: 5}); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	j.Close()
	_, recs, torn, err := Open(fsutil.OS, filepath.Join(dir, "wal.log"), SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 || len(recs) != 1 || recs[0].Type != TypeDelete || recs[0].ID != 5 {
		t.Fatalf("after heal: torn=%d recs=%+v", torn, recs)
	}

	// Now fail the write AND the healing truncate: the journal must poison.
	ffs2 := &fsutil.FaultFS{FailAt: 5, Crash: true}
	j2, err := Create(ffs2, filepath.Join(dir, "wal2.log"), SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := logRecord(j2, Record{Type: TypeDelete, ID: 1}); err == nil {
		t.Fatal("append should fail")
	}
	if err := logRecord(j2, Record{Type: TypeDelete, ID: 2}); err == nil {
		t.Fatal("poisoned journal accepted a record")
	} else if !errors.Is(err, errs.ErrJournalPoisoned) {
		t.Fatalf("poisoned append err = %v, want ErrJournalPoisoned", err)
	}
}

// TestGroupCommitCoalesces drives the sequencer with concurrent waiters:
// while one fsync is gated, every other appender queues behind it, and
// releasing the gate must drain them all with at most one more fsync —
// N overlapping acknowledgements, ≤2 fsyncs.
func TestGroupCommitCoalesces(t *testing.T) {
	const n = 8
	ffs := &fsutil.FaultFS{}
	j, err := Create(ffs, filepath.Join(t.TempDir(), "wal.log"), SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	ffs.SetOnOp(func(op fsutil.Op) {
		if op == fsutil.OpSync {
			select {
			case entered <- struct{}{}:
			default:
			}
			<-hold
		}
	})

	// Appends require external serialization (core holds its index lock);
	// emulate that with a mutex, then wait concurrently — the real shape of
	// the core ack path.
	var appendMu sync.Mutex
	base := ffs.Count(fsutil.OpSync)
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(id uint32) {
			appendMu.Lock()
			lsn, err := j.Append(Record{Type: TypeDelete, ID: id})
			appendMu.Unlock()
			if err != nil {
				errc <- err
				return
			}
			errc <- j.WaitDurable(lsn)
		}(uint32(i))
	}
	<-entered // a leader fsync is in flight
	// Wait until every record is written (writes are not gated), so the
	// remaining waiters are all queued behind the in-flight fsync.
	for j.Len() < n {
		time.Sleep(time.Millisecond)
	}
	close(hold)
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if got := ffs.Count(fsutil.OpSync) - base; got > 2 {
		t.Fatalf("%d overlapping acks cost %d fsyncs, want ≤2", n, got)
	}
}

// TestSealDurable: sealing marks written records durable out-of-band — a
// later WaitDurable returns without fsyncing, and a follower queued behind
// a stuck leader fsync is released by the seal alone. This is the Compact
// handover path, where durability comes from the new generation's
// persisted metadata rather than this journal's file.
func TestSealDurable(t *testing.T) {
	ffs := &fsutil.FaultFS{}
	j, err := Create(ffs, filepath.Join(t.TempDir(), "wal.log"), SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	// Sealed-before-wait: no fsync at all.
	lsn, err := j.Append(Record{Type: TypeDelete, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := ffs.Count(fsutil.OpSync)
	j.SealDurable()
	if err := j.WaitDurable(lsn); err != nil {
		t.Fatalf("WaitDurable after seal = %v", err)
	}
	if got := ffs.Count(fsutil.OpSync) - base; got != 0 {
		t.Fatalf("sealed WaitDurable issued %d fsyncs, want 0", got)
	}

	// Sealed mid-flight: gate the leader's fsync, queue a follower behind
	// it, and check the seal releases the follower while the leader is
	// still stuck on the gate.
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	ffs.SetOnOp(func(op fsutil.Op) {
		if op == fsutil.OpSync {
			select {
			case entered <- struct{}{}:
			default:
			}
			<-hold
		}
	})
	lsn1, err := j.Append(Record{Type: TypeDelete, ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	lead := make(chan error, 1)
	go func() { lead <- j.WaitDurable(lsn1) }()
	<-entered // leader fsync in flight, gated
	lsn2, err := j.Append(Record{Type: TypeDelete, ID: 3})
	if err != nil {
		t.Fatal(err)
	}
	follow := make(chan error, 1)
	go func() { follow <- j.WaitDurable(lsn2) }()
	j.SealDurable()
	select {
	case err := <-follow:
		if err != nil {
			t.Fatalf("follower after seal = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("seal did not release the queued follower")
	}
	close(hold)
	if err := <-lead; err != nil {
		t.Fatalf("leader after gate release = %v", err)
	}
}

func FuzzDecode(f *testing.F) {
	// Seed corpus: a real journal, its truncations, and corruptions.
	b := append([]byte{}, magic...)
	for _, r := range mkRecords() {
		b = appendRecord(b, r)
	}
	f.Add(b)
	f.Add(b[:len(b)-3])
	f.Add(b[:headerLen])
	f.Add(b[:3])
	f.Add([]byte{})
	bad := append([]byte{}, b...)
	bad[headerLen+10] ^= 0xff
	f.Add(bad)
	f.Add(append([]byte{}, "garbage that is definitely not a journal"...))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen, err := Decode(data)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d out of range [0,%d]", validLen, len(data))
		}
		if err != nil && !errors.Is(err, errs.ErrCorruptIndex) {
			t.Fatalf("non-taxonomy error: %v", err)
		}
		// The valid prefix must re-decode to the same records, cleanly.
		recs2, validLen2, err2 := Decode(data[:validLen])
		if err != nil {
			// Corruption sits right at validLen; the prefix before it is clean.
			if err2 != nil && errors.Is(err2, errs.ErrCorruptIndex) && validLen2 == validLen {
				// The corrupt record's bytes were excluded, so the prefix
				// must now decode clean; reaching here means it did not.
				t.Fatalf("prefix still corrupt after exclusion: %v", err2)
			}
		} else if err2 != nil {
			t.Fatalf("valid prefix failed to re-decode: %v", err2)
		}
		if len(recs2) != len(recs) || validLen2 != validLen {
			t.Fatalf("re-decode mismatch: %d/%d records, %d/%d bytes", len(recs2), len(recs), validLen2, validLen)
		}
	})
}

// TestCountRecords pins CountRecords against Decode: for a valid journal,
// every torn-tail prefix of it, and corrupt variants, the count must equal
// len(Decode's records) with the same error classification — the follower's
// lag computation depends on the two walking the bytes identically.
func TestCountRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	j, err := Create(fsutil.OS, path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range mkRecords() {
		if err := logRecord(j, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(full); cut++ {
		b := full[:cut]
		recs, _, decErr := Decode(b)
		n, cntErr := CountRecords(b)
		if (decErr == nil) != (cntErr == nil) {
			t.Fatalf("cut=%d: Decode err=%v, CountRecords err=%v", cut, decErr, cntErr)
		}
		if n != len(recs) {
			t.Fatalf("cut=%d: CountRecords=%d, Decode found %d", cut, n, len(recs))
		}
	}
	// Corruption classifies identically too.
	bad := append([]byte("XXWAL"), full[5:]...)
	if _, err := CountRecords(bad); !errors.Is(err, errs.ErrCorruptIndex) {
		t.Fatalf("bad magic: got %v, want ErrCorruptIndex", err)
	}
	if n, err := CountRecords(nil); n != 0 || err != nil {
		t.Fatalf("empty bytes: n=%d err=%v", n, err)
	}
}
