// Package btree implements a disk-resident B+-tree over a pager.Pager. It is
// the "single B+-tree" that makes iDistance a lightweight index in the
// paper's sense: int64 keys (iDistance ring keys) map to variable-length
// value blobs (the encoded sub-partition directory of a ring). Values larger
// than the inline threshold spill into overflow page chains, so one ring can
// describe arbitrarily many sub-partitions.
//
// The tree is build-once / read-mostly, matching the paper's workload:
// Insert replaces on duplicate keys, Delete removes lazily (no rebalancing),
// and freed overflow pages are not recycled.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"promips/internal/pager"
)

const (
	magic       = uint32(0x50425431) // "PBT1"
	nodeLeaf    = byte(0)
	nodeInner   = byte(1)
	headerSize  = 16 // type(1) + nkeys(2) + pad(5) + next(8)
	innerEntry  = 16 // key(8) + child(8)
	leafFixed   = 13 // key(8) + flag(1) + len(4)
	ovHeader    = 12 // next(8) + used(4)
	flagInline  = byte(0)
	flagOverflw = byte(1)
)

// nilPage marks an absent page link (stored on disk as all-ones).
var nilPage int64 = -1

// ErrValueTooLarge is reserved for future size limits; the overflow chain
// currently accepts any value length.
var ErrValueTooLarge = errors.New("btree: value too large")

// Tree is a B+-tree rooted in page 0's metadata.
type Tree struct {
	pg     *pager.Pager
	root   int64
	height int
	count  int64

	// frozen, when non-nil, maps every node page to its decoded form: the
	// tree is build-once / read-mostly, so after Freeze the query path
	// serves nodes from memory instead of re-decoding the page on every
	// visit (decoding was the dominant per-query allocation source). Page
	// accounting is unchanged: a frozen hit still records the node page as
	// a logical access. Any mutation drops the cache.
	frozen map[int64]*node
}

// Freeze decodes every node page once and serves all subsequent node reads
// from memory. Call it when the tree will no longer be mutated (after a
// build or open); Insert and Delete invalidate the cache automatically.
// Overflow-chain values keep going through the pager, so their page
// accounting and buffering are untouched.
func (t *Tree) Freeze() error {
	frozen := make(map[int64]*node)
	var walk func(id int64, level int) error
	walk = func(id int64, level int) error {
		n, err := t.readNode(id, nil)
		if err != nil {
			return err
		}
		frozen[id] = n
		if level > 1 {
			for _, c := range n.children {
				if err := walk(c, level-1); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(t.root, t.height); err != nil {
		return err
	}
	t.frozen = frozen
	return nil
}

// Create initializes a new tree on an empty pager (page 0 becomes the meta
// page, page 1 the empty root leaf).
func Create(pg *pager.Pager) (*Tree, error) {
	if pg.NumPages() != 0 {
		return nil, fmt.Errorf("btree: Create requires an empty pager, have %d pages", pg.NumPages())
	}
	if _, err := pg.Alloc(); err != nil { // meta page
		return nil, err
	}
	rootID, err := pg.Alloc()
	if err != nil {
		return nil, err
	}
	t := &Tree{pg: pg, root: rootID, height: 1}
	if err := t.writeNode(rootID, &node{leaf: true, next: nilPage}); err != nil {
		return nil, err
	}
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing tree from its meta page.
func Open(pg *pager.Pager) (*Tree, error) {
	meta, err := pg.Read(0, nil)
	if err != nil {
		return nil, fmt.Errorf("btree: read meta: %w", err)
	}
	if binary.LittleEndian.Uint32(meta) != magic {
		return nil, errors.New("btree: bad magic in meta page")
	}
	t := &Tree{
		pg:     pg,
		root:   int64(binary.LittleEndian.Uint64(meta[8:])),
		height: int(binary.LittleEndian.Uint32(meta[16:])),
		count:  int64(binary.LittleEndian.Uint64(meta[24:])),
	}
	return t, nil
}

func (t *Tree) writeMeta() error {
	buf := make([]byte, t.pg.PageSize())
	binary.LittleEndian.PutUint32(buf, magic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(t.root))
	binary.LittleEndian.PutUint32(buf[16:], uint32(t.height))
	binary.LittleEndian.PutUint64(buf[24:], uint64(t.count))
	return t.pg.Write(0, buf)
}

// Count returns the number of keys in the tree.
func (t *Tree) Count() int64 { return t.count }

// Height returns the number of node levels (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// inlineMax is the largest value stored inside a leaf; bigger values go to
// overflow chains. A quarter page keeps at least a few entries per leaf.
func (t *Tree) inlineMax() int { return (t.pg.PageSize() - headerSize) / 4 }

// node is the in-memory form of a tree page.
type node struct {
	leaf bool
	keys []int64
	// Leaf payload: vals[i] holds inline bytes when ov[i] == nilPage,
	// otherwise the value lives in the overflow chain starting at ov[i]
	// with total length vlen[i].
	vals [][]byte
	ov   []int64
	vlen []uint32
	next int64
	// Inner payload: children[i] subtree holds keys < keys[i];
	// children[len(keys)] holds the rest.
	children []int64
}

func (n *node) size(pageSize int) int {
	if !n.leaf {
		return headerSize + len(n.keys)*innerEntry + 8
	}
	s := headerSize
	for i := range n.keys {
		s += leafFixed
		if n.ov[i] == nilPage {
			s += len(n.vals[i])
		} else {
			s += 8
		}
	}
	return s
}

func (t *Tree) readNode(id int64, io *pager.IOStats) (*node, error) {
	if n, ok := t.frozen[id]; ok {
		t.pg.RecordRead(id, io)
		return n, nil
	}
	buf, err := t.pg.Read(id, io)
	if err != nil {
		return nil, err
	}
	n := &node{leaf: buf[0] == nodeLeaf}
	nk := int(binary.LittleEndian.Uint16(buf[1:]))
	off := headerSize
	if n.leaf {
		n.next = int64(binary.LittleEndian.Uint64(buf[8:]))
		n.keys = make([]int64, nk)
		n.vals = make([][]byte, nk)
		n.ov = make([]int64, nk)
		n.vlen = make([]uint32, nk)
		for i := 0; i < nk; i++ {
			n.keys[i] = int64(binary.LittleEndian.Uint64(buf[off:]))
			flag := buf[off+8]
			l := binary.LittleEndian.Uint32(buf[off+9:])
			off += leafFixed
			n.vlen[i] = l
			if flag == flagInline {
				n.ov[i] = nilPage
				n.vals[i] = append([]byte(nil), buf[off:off+int(l)]...)
				off += int(l)
			} else {
				n.ov[i] = int64(binary.LittleEndian.Uint64(buf[off:]))
				off += 8
			}
		}
		return n, nil
	}
	n.keys = make([]int64, nk)
	n.children = make([]int64, nk+1)
	for i := 0; i < nk; i++ {
		n.keys[i] = int64(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	for i := 0; i <= nk; i++ {
		n.children[i] = int64(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return n, nil
}

func (t *Tree) writeNode(id int64, n *node) error {
	buf := make([]byte, t.pg.PageSize())
	if n.leaf {
		buf[0] = nodeLeaf
	} else {
		buf[0] = nodeInner
	}
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.keys)))
	off := headerSize
	if n.leaf {
		binary.LittleEndian.PutUint64(buf[8:], uint64(n.next))
		for i := range n.keys {
			binary.LittleEndian.PutUint64(buf[off:], uint64(n.keys[i]))
			if n.ov[i] == nilPage {
				buf[off+8] = flagInline
				binary.LittleEndian.PutUint32(buf[off+9:], uint32(len(n.vals[i])))
				off += leafFixed
				copy(buf[off:], n.vals[i])
				off += len(n.vals[i])
			} else {
				buf[off+8] = flagOverflw
				binary.LittleEndian.PutUint32(buf[off+9:], n.vlen[i])
				off += leafFixed
				binary.LittleEndian.PutUint64(buf[off:], uint64(n.ov[i]))
				off += 8
			}
		}
	} else {
		for _, k := range n.keys {
			binary.LittleEndian.PutUint64(buf[off:], uint64(k))
			off += 8
		}
		for _, c := range n.children {
			binary.LittleEndian.PutUint64(buf[off:], uint64(c))
			off += 8
		}
	}
	if off > len(buf) {
		panic(fmt.Sprintf("btree: node %d overflows page: %d > %d", id, off, len(buf)))
	}
	return t.pg.Write(id, buf)
}

// writeOverflow stores val in a chain of overflow pages, returning the head.
func (t *Tree) writeOverflow(val []byte) (int64, error) {
	chunk := t.pg.PageSize() - ovHeader
	var head, prev int64 = nilPage, nilPage
	var prevBuf []byte
	for off := 0; off < len(val) || head == nilPage; off += chunk {
		id, err := t.pg.Alloc()
		if err != nil {
			return 0, err
		}
		if head == nilPage {
			head = id
		}
		if prev != nilPage {
			binary.LittleEndian.PutUint64(prevBuf, uint64(id))
			if err := t.pg.Write(prev, prevBuf); err != nil {
				return 0, err
			}
		}
		buf := make([]byte, t.pg.PageSize())
		binary.LittleEndian.PutUint64(buf, uint64(nilPage))
		end := off + chunk
		if end > len(val) {
			end = len(val)
		}
		used := end - off
		binary.LittleEndian.PutUint32(buf[8:], uint32(used))
		copy(buf[ovHeader:], val[off:end])
		if err := t.pg.Write(id, buf); err != nil {
			return 0, err
		}
		prev, prevBuf = id, buf
		if end >= len(val) {
			break
		}
	}
	return head, nil
}

func (t *Tree) readOverflow(head int64, total uint32, io *pager.IOStats) ([]byte, error) {
	out := make([]byte, 0, total)
	for id := head; id != nilPage; {
		buf, err := t.pg.Read(id, io)
		if err != nil {
			return nil, err
		}
		next := int64(binary.LittleEndian.Uint64(buf))
		used := binary.LittleEndian.Uint32(buf[8:])
		out = append(out, buf[ovHeader:ovHeader+int(used)]...)
		id = next
	}
	if uint32(len(out)) != total {
		return nil, fmt.Errorf("btree: overflow chain length %d, want %d", len(out), total)
	}
	return out, nil
}

// Get returns the value stored under key, or ok=false if absent. Page
// reads are recorded in io (nil discards the accounting).
func (t *Tree) Get(key int64, io *pager.IOStats) ([]byte, bool, error) {
	id := t.root
	for level := t.height; level > 1; level-- {
		n, err := t.readNode(id, io)
		if err != nil {
			return nil, false, err
		}
		id = n.children[childIndex(n.keys, key)]
	}
	n, err := t.readNode(id, io)
	if err != nil {
		return nil, false, err
	}
	i, found := leafIndex(n.keys, key)
	if !found {
		return nil, false, nil
	}
	if n.ov[i] == nilPage {
		return n.vals[i], true, nil
	}
	v, err := t.readOverflow(n.ov[i], n.vlen[i], io)
	return v, err == nil, err
}

// childIndex returns the child slot to follow for key in an inner node:
// the first i with key < keys[i], else the last child.
func childIndex(keys []int64, key int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if key < keys[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// leafIndex returns the insertion position of key and whether it is present.
func leafIndex(keys []int64, key int64) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && keys[lo] == key
}

type splitResult struct {
	split  bool
	sepKey int64
	right  int64
}

// Insert stores value under key, replacing any previous value.
func (t *Tree) Insert(key int64, value []byte) error {
	t.frozen = nil // mutation invalidates the decoded-node cache
	res, replaced, err := t.insertAt(t.root, t.height, key, value)
	if err != nil {
		return err
	}
	if res.split {
		newRootID, err := t.pg.Alloc()
		if err != nil {
			return err
		}
		root := &node{
			leaf:     false,
			keys:     []int64{res.sepKey},
			children: []int64{t.root, res.right},
		}
		if err := t.writeNode(newRootID, root); err != nil {
			return err
		}
		t.root = newRootID
		t.height++
	}
	if !replaced {
		t.count++
	}
	return t.writeMeta()
}

func (t *Tree) insertAt(id int64, level int, key int64, value []byte) (splitResult, bool, error) {
	n, err := t.readNode(id, nil)
	if err != nil {
		return splitResult{}, false, err
	}
	if level == 1 {
		return t.insertLeaf(id, n, key, value)
	}
	ci := childIndex(n.keys, key)
	res, replaced, err := t.insertAt(n.children[ci], level-1, key, value)
	if err != nil {
		return splitResult{}, false, err
	}
	if !res.split {
		return splitResult{}, replaced, nil
	}
	// Insert separator into this inner node.
	n.keys = append(n.keys, 0)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = res.sepKey
	n.children = append(n.children, 0)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = res.right
	if n.size(t.pg.PageSize()) <= t.pg.PageSize() {
		return splitResult{}, replaced, t.writeNode(id, n)
	}
	// Split inner node at the middle key; the middle key moves up.
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{
		leaf:     false,
		keys:     append([]int64(nil), n.keys[mid+1:]...),
		children: append([]int64(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	rightID, err := t.pg.Alloc()
	if err != nil {
		return splitResult{}, false, err
	}
	if err := t.writeNode(rightID, right); err != nil {
		return splitResult{}, false, err
	}
	if err := t.writeNode(id, n); err != nil {
		return splitResult{}, false, err
	}
	return splitResult{split: true, sepKey: sep, right: rightID}, replaced, nil
}

func (t *Tree) insertLeaf(id int64, n *node, key int64, value []byte) (splitResult, bool, error) {
	// Prepare the entry representation (inline or overflow).
	var inline []byte
	ovPage := nilPage
	vlen := uint32(len(value))
	if len(value) <= t.inlineMax() {
		inline = append([]byte(nil), value...)
	} else {
		head, err := t.writeOverflow(value)
		if err != nil {
			return splitResult{}, false, err
		}
		ovPage = head
	}

	i, found := leafIndex(n.keys, key)
	replaced := false
	if found {
		n.vals[i], n.ov[i], n.vlen[i] = inline, ovPage, vlen
		replaced = true
	} else {
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = inline
		n.ov = append(n.ov, 0)
		copy(n.ov[i+1:], n.ov[i:])
		n.ov[i] = ovPage
		n.vlen = append(n.vlen, 0)
		copy(n.vlen[i+1:], n.vlen[i:])
		n.vlen[i] = vlen
	}
	if n.size(t.pg.PageSize()) <= t.pg.PageSize() {
		return splitResult{}, replaced, t.writeNode(id, n)
	}

	// Split the leaf so both halves fit; balance by serialized size.
	target := n.size(t.pg.PageSize()) / 2
	acc := headerSize
	split := 1
	for j := 0; j < len(n.keys)-1; j++ {
		es := leafFixed
		if n.ov[j] == nilPage {
			es += len(n.vals[j])
		} else {
			es += 8
		}
		acc += es
		if acc >= target {
			split = j + 1
			break
		}
		split = j + 2
	}
	right := &node{
		leaf: true,
		keys: append([]int64(nil), n.keys[split:]...),
		vals: append([][]byte(nil), n.vals[split:]...),
		ov:   append([]int64(nil), n.ov[split:]...),
		vlen: append([]uint32(nil), n.vlen[split:]...),
		next: n.next,
	}
	rightID, err := t.pg.Alloc()
	if err != nil {
		return splitResult{}, false, err
	}
	n.keys = n.keys[:split]
	n.vals = n.vals[:split]
	n.ov = n.ov[:split]
	n.vlen = n.vlen[:split]
	n.next = rightID
	if err := t.writeNode(rightID, right); err != nil {
		return splitResult{}, false, err
	}
	if err := t.writeNode(id, n); err != nil {
		return splitResult{}, false, err
	}
	return splitResult{split: true, sepKey: right.keys[0], right: rightID}, replaced, nil
}

// Delete removes key from its leaf (lazily: inner separators and overflow
// pages are left in place). It reports whether the key was present.
func (t *Tree) Delete(key int64) (bool, error) {
	t.frozen = nil // mutation invalidates the decoded-node cache
	id := t.root
	for level := t.height; level > 1; level-- {
		n, err := t.readNode(id, nil)
		if err != nil {
			return false, err
		}
		id = n.children[childIndex(n.keys, key)]
	}
	n, err := t.readNode(id, nil)
	if err != nil {
		return false, err
	}
	i, found := leafIndex(n.keys, key)
	if !found {
		return false, nil
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.ov = append(n.ov[:i], n.ov[i+1:]...)
	n.vlen = append(n.vlen[:i], n.vlen[i+1:]...)
	if err := t.writeNode(id, n); err != nil {
		return false, err
	}
	t.count--
	return true, t.writeMeta()
}

// Scan visits keys in [lo, hi] in ascending order. fn returning false stops
// the scan early. Page reads are recorded in io (nil discards the
// accounting).
func (t *Tree) Scan(lo, hi int64, io *pager.IOStats, fn func(key int64, val []byte) bool) error {
	if lo > hi {
		return nil
	}
	id := t.root
	for level := t.height; level > 1; level-- {
		n, err := t.readNode(id, io)
		if err != nil {
			return err
		}
		id = n.children[childIndex(n.keys, lo)]
	}
	for id != nilPage {
		n, err := t.readNode(id, io)
		if err != nil {
			return err
		}
		start, _ := leafIndex(n.keys, lo)
		for i := start; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return nil
			}
			var v []byte
			if n.ov[i] == nilPage {
				v = n.vals[i]
			} else {
				v, err = t.readOverflow(n.ov[i], n.vlen[i], io)
				if err != nil {
					return err
				}
			}
			if !fn(n.keys[i], v) {
				return nil
			}
		}
		id = n.next
	}
	return nil
}
