package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"promips/internal/pager"
)

func newTestTree(t *testing.T, pageSize int) (*Tree, *pager.Pager) {
	t.Helper()
	pg, err := pager.Create(filepath.Join(t.TempDir(), "bt.db"), pager.Options{PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pg.Close() })
	tr, err := Create(pg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, pg
}

func TestInsertGetSingle(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	if err := tr.Insert(42, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get(42, nil)
	if err != nil || !ok {
		t.Fatalf("Get(42) = %v %v %v", v, ok, err)
	}
	if string(v) != "hello" {
		t.Fatalf("value = %q", v)
	}
	if _, ok, _ := tr.Get(41, nil); ok {
		t.Fatal("Get(41) should be absent")
	}
	if tr.Count() != 1 {
		t.Fatalf("Count = %d, want 1", tr.Count())
	}
}

func TestInsertReplace(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	tr.Insert(7, []byte("a"))
	tr.Insert(7, []byte("bb"))
	v, ok, _ := tr.Get(7, nil)
	if !ok || string(v) != "bb" {
		t.Fatalf("replaced value = %q, ok=%v", v, ok)
	}
	if tr.Count() != 1 {
		t.Fatalf("Count after replace = %d, want 1", tr.Count())
	}
}

func TestManyInsertsWithSplits(t *testing.T) {
	tr, _ := newTestTree(t, 256) // tiny pages force deep trees
	const n = 2000
	r := rand.New(rand.NewSource(3))
	perm := r.Perm(n)
	for _, k := range perm {
		val := []byte(fmt.Sprintf("value-%d", k))
		if err := tr.Insert(int64(k), val); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count() != n {
		t.Fatalf("Count = %d, want %d", tr.Count(), n)
	}
	if tr.Height() < 3 {
		t.Fatalf("expected height >= 3 with 256B pages, got %d", tr.Height())
	}
	for k := 0; k < n; k++ {
		v, ok, err := tr.Get(int64(k), nil)
		if err != nil || !ok {
			t.Fatalf("Get(%d): ok=%v err=%v", k, ok, err)
		}
		if want := fmt.Sprintf("value-%d", k); string(v) != want {
			t.Fatalf("Get(%d) = %q, want %q", k, v, want)
		}
	}
}

func TestNegativeAndExtremeKeys(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	keys := []int64{-1 << 62, -1000, -1, 0, 1, 1000, 1 << 62}
	for _, k := range keys {
		if err := tr.Insert(k, []byte{byte(k & 0xff)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		v, ok, _ := tr.Get(k, nil)
		if !ok || v[0] != byte(k&0xff) {
			t.Fatalf("Get(%d) failed", k)
		}
	}
}

func TestOverflowValues(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	r := rand.New(rand.NewSource(5))
	sizes := []int{0, 1, 63, 64, 100, 244, 245, 500, 4096, 10000}
	want := make(map[int64][]byte)
	for i, sz := range sizes {
		v := make([]byte, sz)
		r.Read(v)
		want[int64(i)] = v
		if err := tr.Insert(int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	for k, v := range want {
		got, ok, err := tr.Get(k, nil)
		if err != nil || !ok {
			t.Fatalf("Get(%d): ok=%v err=%v", k, ok, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("Get(%d): %d bytes differ (len %d vs %d)", k, len(v), len(got), len(v))
		}
	}
}

func TestScanFullRange(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	const n = 500
	for k := 0; k < n; k++ {
		tr.Insert(int64(k*2), []byte{byte(k)})
	}
	var got []int64
	err := tr.Scan(-100, 1<<40, nil, func(k int64, v []byte) bool {
		got = append(got, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scan visited %d keys, want %d", len(got), n)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("scan out of order")
	}
}

func TestScanSubRangeAndEarlyStop(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	for k := 0; k < 100; k++ {
		tr.Insert(int64(k), []byte{byte(k)})
	}
	var got []int64
	tr.Scan(10, 20, nil, func(k int64, v []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 11 || got[0] != 10 || got[10] != 20 {
		t.Fatalf("sub-range scan = %v", got)
	}
	got = nil
	tr.Scan(0, 99, nil, func(k int64, v []byte) bool {
		got = append(got, k)
		return len(got) < 5
	})
	if len(got) != 5 {
		t.Fatalf("early stop visited %d", len(got))
	}
	// Empty range.
	got = nil
	tr.Scan(50, 40, nil, func(k int64, v []byte) bool { got = append(got, k); return true })
	if len(got) != 0 {
		t.Fatalf("lo>hi should visit nothing, got %v", got)
	}
}

func TestDelete(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	for k := 0; k < 200; k++ {
		tr.Insert(int64(k), []byte{1})
	}
	for k := 0; k < 200; k += 2 {
		ok, err := tr.Delete(int64(k))
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = %v %v", k, ok, err)
		}
	}
	if ok, _ := tr.Delete(0); ok {
		t.Fatal("double delete reported present")
	}
	if tr.Count() != 100 {
		t.Fatalf("Count = %d, want 100", tr.Count())
	}
	for k := 0; k < 200; k++ {
		_, ok, _ := tr.Get(int64(k), nil)
		if want := k%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", k, ok, want)
		}
	}
}

func TestPersistenceReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bt.db")
	pg, err := pager.Create(path, pager.Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(pg)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{9}, 3000)
	for k := 0; k < 300; k++ {
		v := []byte(fmt.Sprintf("v%d", k))
		if k == 150 {
			v = big
		}
		if err := tr.Insert(int64(k), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}

	pg2, err := pager.Open(path, pager.Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.Close()
	tr2, err := Open(pg2)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Count() != 300 {
		t.Fatalf("Count after reopen = %d", tr2.Count())
	}
	v, ok, err := tr2.Get(150, nil)
	if err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatalf("big value lost after reopen: ok=%v err=%v len=%d", ok, err, len(v))
	}
	v, ok, _ = tr2.Get(299, nil)
	if !ok || string(v) != "v299" {
		t.Fatalf("Get(299) after reopen = %q %v", v, ok)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	pg, err := pager.Create(filepath.Join(t.TempDir(), "junk.db"), pager.Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	pg.Alloc()
	if _, err := Open(pg); err == nil {
		t.Fatal("expected error opening non-btree pager")
	}
}

func TestCreateRejectsNonEmptyPager(t *testing.T) {
	pg, _ := pager.Create(filepath.Join(t.TempDir(), "x.db"), pager.Options{PageSize: 256})
	defer pg.Close()
	pg.Alloc()
	if _, err := Create(pg); err == nil {
		t.Fatal("expected error creating tree on non-empty pager")
	}
}

// Property: the tree behaves exactly like a map[int64][]byte under random
// insert/replace/delete, and Scan returns sorted keys equal to the model.
func TestPropertyModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		dir := t.TempDir()
		pg, err := pager.Create(filepath.Join(dir, "m.db"), pager.Options{PageSize: 256})
		if err != nil {
			return false
		}
		defer pg.Close()
		tr, err := Create(pg)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		model := make(map[int64][]byte)
		for op := 0; op < 400; op++ {
			k := int64(r.Intn(120) - 20)
			switch r.Intn(3) {
			case 0, 1:
				v := make([]byte, r.Intn(80))
				r.Read(v)
				if tr.Insert(k, v) != nil {
					return false
				}
				model[k] = v
			case 2:
				ok, err := tr.Delete(k)
				if err != nil {
					return false
				}
				if _, inModel := model[k]; ok != inModel {
					return false
				}
				delete(model, k)
			}
		}
		if tr.Count() != int64(len(model)) {
			return false
		}
		for k, v := range model {
			got, ok, err := tr.Get(k, nil)
			if err != nil || !ok || !bytes.Equal(got, v) {
				return false
			}
		}
		var keys []int64
		err = tr.Scan(-1<<62, 1<<62, nil, func(k int64, v []byte) bool {
			keys = append(keys, k)
			if !bytes.Equal(v, model[k]) {
				keys = nil
				return false
			}
			return true
		})
		if err != nil || len(keys) != len(model) {
			return false
		}
		return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	pg, err := pager.Create(filepath.Join(b.TempDir(), "bench.db"), pager.Options{PageSize: 4096, PoolSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer pg.Close()
	tr, _ := Create(pg)
	val := bytes.Repeat([]byte{1}, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(i), val)
	}
}

func BenchmarkGet(b *testing.B) {
	pg, _ := pager.Create(filepath.Join(b.TempDir(), "bench.db"), pager.Options{PageSize: 4096, PoolSize: 4096})
	defer pg.Close()
	tr, _ := Create(pg)
	val := bytes.Repeat([]byte{1}, 64)
	for i := 0; i < 10000; i++ {
		tr.Insert(int64(i), val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(int64(i%10000), nil)
	}
}
