package kmeans

import (
	"math/rand"
	"testing"
	"testing/quick"

	"promips/internal/vec"
)

func gaussianBlobs(r *rand.Rand, centers [][]float32, perCluster int, spread float64) [][]float32 {
	var data [][]float32
	for _, c := range centers {
		for i := 0; i < perCluster; i++ {
			p := make([]float32, len(c))
			for j := range p {
				p[j] = c[j] + float32(r.NormFloat64()*spread)
			}
			data = append(data, p)
		}
	}
	return data
}

func TestRunSeparatedBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	centers := [][]float32{{0, 0}, {100, 0}, {0, 100}}
	data := gaussianBlobs(r, centers, 50, 1.0)
	res := Run(data, Config{K: 3, Seed: 2})
	if len(res.Centroids) != 3 {
		t.Fatalf("got %d centroids, want 3", len(res.Centroids))
	}
	// Each true center must be within distance 2 of some found centroid.
	for _, c := range centers {
		best := 1e18
		for _, f := range res.Centroids {
			if d := vec.L2Dist(c, f); d < best {
				best = d
			}
		}
		if best > 2 {
			t.Errorf("no centroid near %v (closest %.2f)", c, best)
		}
	}
	// All points in one blob should share a cluster.
	for b := 0; b < 3; b++ {
		want := res.Assign[b*50]
		for i := 1; i < 50; i++ {
			if res.Assign[b*50+i] != want {
				t.Fatalf("blob %d split across clusters", b)
			}
		}
	}
}

func TestRunEmptyInput(t *testing.T) {
	res := Run(nil, Config{K: 4})
	if len(res.Centroids) != 0 || len(res.Assign) != 0 {
		t.Fatalf("empty input should give empty result, got %+v", res)
	}
}

func TestRunKLargerThanN(t *testing.T) {
	data := [][]float32{{0, 0}, {1, 1}}
	res := Run(data, Config{K: 10, Seed: 3})
	if len(res.Centroids) != 2 {
		t.Fatalf("K>n should reduce to n clusters, got %d", len(res.Centroids))
	}
	for _, s := range res.Sizes {
		if s == 0 {
			t.Fatal("empty cluster with K>n input")
		}
	}
}

func TestRunIdenticalPoints(t *testing.T) {
	data := make([][]float32, 20)
	for i := range data {
		data[i] = []float32{5, 5, 5}
	}
	res := Run(data, Config{K: 4, Seed: 7})
	for i := range data {
		c := res.Centroids[res.Assign[i]]
		if vec.L2Dist(data[i], c) != 0 {
			t.Fatal("identical points should coincide with their centroid")
		}
	}
}

func TestRunPanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for K=0")
		}
	}()
	Run([][]float32{{1}}, Config{K: 0})
}

func TestRadiiCoverAllPoints(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	data := gaussianBlobs(r, [][]float32{{0, 0, 0}, {10, 10, 10}}, 100, 2.0)
	res := Run(data, Config{K: 5, Seed: 4})
	for i, p := range data {
		c := res.Assign[i]
		if d := vec.L2Dist(p, res.Centroids[c]); d > res.Radii[c]+1e-9 {
			t.Fatalf("point %d outside its cluster radius: %v > %v", i, d, res.Radii[c])
		}
	}
}

func TestSizesSumToN(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	data := gaussianBlobs(r, [][]float32{{0, 0}}, 137, 5.0)
	res := Run(data, Config{K: 7, Seed: 5})
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(data) {
		t.Fatalf("sizes sum to %d, want %d", total, len(data))
	}
}

func TestDeterministicForSeed(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	data := gaussianBlobs(r, [][]float32{{0, 0}, {8, 8}}, 40, 1.0)
	a := Run(data, Config{K: 3, Seed: 99})
	b := Run(data, Config{K: 3, Seed: 99})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

// Property: every assignment index is valid and each point is assigned to
// its nearest centroid (Lloyd fixed-point condition after convergence; we
// verify near-optimality: assigned distance <= nearest distance + eps).
func TestPropertyAssignmentsNearest(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(80)
		d := 2 + r.Intn(6)
		data := make([][]float32, n)
		for i := range data {
			data[i] = make([]float32, d)
			for j := range data[i] {
				data[i][j] = float32(r.NormFloat64() * 10)
			}
		}
		k := 1 + r.Intn(6)
		res := Run(data, Config{K: k, Seed: seed, MaxIter: 50})
		for i, p := range data {
			if res.Assign[i] < 0 || res.Assign[i] >= len(res.Centroids) {
				return false
			}
			got := vec.L2DistSq(p, res.Centroids[res.Assign[i]])
			for _, c := range res.Centroids {
				if vec.L2DistSq(p, c) < got-1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: inertia with k+1 clusters is never (meaningfully) worse than the
// best single-cluster solution, i.e. clustering reduces the objective.
func TestPropertyInertiaImproves(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		data := gaussianBlobs(r, [][]float32{{0, 0}, {50, 50}}, 30, 1.0)
		one := Run(data, Config{K: 1, Seed: seed})
		two := Run(data, Config{K: 2, Seed: seed})
		return Inertia(data, two) <= Inertia(data, one)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
