// Package kmeans implements Lloyd's algorithm with k-means++ seeding.
// It is the clustering substrate for three subsystems of this repository:
// the two-stage partitioning of the iDistance index (paper §VI), the coarse
// quantizer of the PQ baseline, and the per-subspace codebooks of product
// quantization.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"promips/internal/vec"
)

// Result holds the output of a clustering run.
type Result struct {
	// Centroids is the list of k cluster centers (k may be reduced when the
	// input has fewer distinct points than requested clusters).
	Centroids [][]float32
	// Assign maps each input point to the index of its centroid.
	Assign []int
	// Radii[i] is the maximum distance from centroid i to any of its points;
	// iDistance partitions and sub-partitions are spheres (center, radius).
	Radii []float64
	// Sizes[i] is the number of points assigned to centroid i.
	Sizes []int
	// Iterations is the number of Lloyd iterations actually run.
	Iterations int
}

// Config controls a clustering run.
type Config struct {
	K        int
	MaxIter  int   // default 25
	Seed     int64 // RNG seed for k-means++ and empty-cluster repair
	MinDelta float64
}

// Run clusters data into cfg.K groups. It never returns empty clusters:
// if a cluster loses all points it is re-seeded on the point farthest from
// its centroid. When len(data) <= K, each point becomes its own cluster.
func Run(data [][]float32, cfg Config) Result {
	if cfg.K <= 0 {
		panic(fmt.Sprintf("kmeans: K must be positive, got %d", cfg.K))
	}
	if len(data) == 0 {
		return Result{}
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 25
	}
	k := cfg.K
	if k > len(data) {
		k = len(data)
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	cents := seedPlusPlus(data, k, r)
	assign := make([]int, len(data))
	for i := range assign {
		assign[i] = -1
	}
	iters := 0
	for iter := 0; iter < cfg.MaxIter; iter++ {
		iters = iter + 1
		changed := 0
		for i, p := range data {
			best, bestD := 0, math.Inf(1)
			for c, cent := range cents {
				if d := vec.L2DistSq(p, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed++
			}
		}
		cents = recompute(data, assign, cents, r)
		if changed == 0 {
			break
		}
	}

	radii := make([]float64, len(cents))
	sizes := make([]int, len(cents))
	for i, p := range data {
		c := assign[i]
		sizes[c]++
		if d := vec.L2Dist(p, cents[c]); d > radii[c] {
			radii[c] = d
		}
	}
	return Result{Centroids: cents, Assign: assign, Radii: radii, Sizes: sizes, Iterations: iters}
}

// seedPlusPlus chooses k initial centroids with k-means++ (D² sampling).
func seedPlusPlus(data [][]float32, k int, r *rand.Rand) [][]float32 {
	cents := make([][]float32, 0, k)
	first := data[r.Intn(len(data))]
	cents = append(cents, vec.Clone(first))
	dist := make([]float64, len(data))
	for i, p := range data {
		dist[i] = vec.L2DistSq(p, cents[0])
	}
	for len(cents) < k {
		var total float64
		for _, d := range dist {
			total += d
		}
		var chosen int
		if total <= 0 {
			// All remaining points coincide with a centroid; pick uniformly.
			chosen = r.Intn(len(data))
		} else {
			target := r.Float64() * total
			acc := 0.0
			chosen = len(data) - 1
			for i, d := range dist {
				acc += d
				if acc >= target {
					chosen = i
					break
				}
			}
		}
		c := vec.Clone(data[chosen])
		cents = append(cents, c)
		for i, p := range data {
			if d := vec.L2DistSq(p, c); d < dist[i] {
				dist[i] = d
			}
		}
	}
	return cents
}

// recompute rebuilds centroids as assigned-point means, re-seeding any empty
// cluster on the globally farthest point so cluster count never shrinks.
func recompute(data [][]float32, assign []int, cents [][]float32, r *rand.Rand) [][]float32 {
	dim := len(data[0])
	sums := make([][]float64, len(cents))
	counts := make([]int, len(cents))
	for i := range sums {
		sums[i] = make([]float64, dim)
	}
	for i, p := range data {
		c := assign[i]
		counts[c]++
		for j, v := range p {
			sums[c][j] += float64(v)
		}
	}
	out := make([][]float32, len(cents))
	for c := range cents {
		if counts[c] == 0 {
			out[c] = vec.Clone(data[farthestPoint(data, assign, cents, r)])
			continue
		}
		nc := make([]float32, dim)
		for j := range nc {
			nc[j] = float32(sums[c][j] / float64(counts[c]))
		}
		out[c] = nc
	}
	return out
}

func farthestPoint(data [][]float32, assign []int, cents [][]float32, r *rand.Rand) int {
	best, bestD := r.Intn(len(data)), -1.0
	for i, p := range data {
		if d := vec.L2DistSq(p, cents[assign[i]]); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Inertia returns the total within-cluster sum of squared distances, the
// objective Lloyd's algorithm descends.
func Inertia(data [][]float32, res Result) float64 {
	var s float64
	for i, p := range data {
		s += vec.L2DistSq(p, res.Centroids[res.Assign[i]])
	}
	return s
}
