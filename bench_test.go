// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation section (§VIII). Each reports the figure's metric through
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the headline
// numbers at laptop scale; cmd/benchrunner prints the full paper-style
// series (all datasets, k = 10..100).
//
// The environment (Netflix-analogue dataset, all four method indexes) is
// built once and shared across benchmarks.
//
// This is an external test package (promips_test): bench imports the root
// package via bench/shards.go, so an in-package test file would close an
// import cycle through the test binary.
package promips_test

import (
	"context"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"promips"
	"promips/bench"
	"promips/internal/core"
	"promips/internal/dataset"
	"promips/internal/randproj"
	"promips/mips"
)

// benchN is the shared dataset size; override with PROMIPS_BENCH_N.
func benchN() int {
	if s := os.Getenv("PROMIPS_BENCH_N"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 4000
}

var (
	benchOnce sync.Once
	benchEnv  *bench.Env
	benchIdx  []bench.Built
	benchErr  error
)

func sharedEnv(b *testing.B) (*bench.Env, []bench.Built) {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = bench.NewEnv(bench.Config{
			Spec: dataset.Netflix(), N: benchN(), NumQueries: 10, Seed: 7,
		})
		if benchErr != nil {
			return
		}
		benchIdx, benchErr = benchEnv.BuildAll(nil)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv, benchIdx
}

// runQueries drives b.N queries round-robin through the workload.
func runQueries(b *testing.B, env *bench.Env, m mips.Method, k int) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := env.Queries[i%len(env.Queries)]
		if _, _, err := m.Search(q, k); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	searchOnce sync.Once
	searchEnv  *bench.Env
	searchIx   *core.Index
	searchErr  error
)

// searchBenchEnv builds a ProMIPS-only environment for the hot-path
// benchmarks (the four-method sharedEnv is much slower to set up) and warms
// the buffer pool so the timed loops measure the steady state. The index is
// built directly through internal/core with the same parameters
// bench.RunPerf uses (this test package lives inside the module), keeping
// the public bench API free of internal types.
func searchBenchEnv(b *testing.B) (*bench.Env, *core.Index) {
	b.Helper()
	searchOnce.Do(func() {
		searchEnv, searchErr = bench.NewEnv(bench.Config{
			Spec: dataset.Netflix(), N: benchN(), NumQueries: 100, Seed: 1,
		})
		if searchErr != nil {
			return
		}
		dir, err := os.MkdirTemp("", "promips-searchbench-*")
		if err != nil {
			searchErr = err
			return
		}
		searchIx, searchErr = core.Build(searchEnv.Data, dir, core.Options{M: 6, Seed: 1})
		if searchErr != nil {
			return
		}
		for _, q := range searchEnv.Queries {
			if _, _, searchErr = searchIx.Search(q, 10); searchErr != nil {
				return
			}
		}
	})
	if searchErr != nil {
		b.Fatal(searchErr)
	}
	return searchEnv, searchIx
}

// BenchmarkSearch is the headline hot-path benchmark the repo's perf
// trajectory (BENCH_*.json) tracks: one warm sequential ProMIPS query on the
// default synthetic workload. Run with -benchmem; cmd/benchrunner -out
// records the same loop plus page accesses and the QPS curve as JSON.
func BenchmarkSearch(b *testing.B) {
	env, ix := searchBenchEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := env.Queries[i%len(env.Queries)]
		if _, _, err := ix.Search(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchFiltered is the same warm hot path under a
// WithFilter-shaped predicate rejecting every even id — the
// filtered-serving workload (closing ROADMAP item 5's "WithFilter exists
// but has no bench"). cmd/benchrunner -out records the same loop as the
// report's search_filtered point.
func BenchmarkSearchFiltered(b *testing.B) {
	env, ix := searchBenchEnv(b)
	params := core.SearchParams{Filter: func(id uint32) bool { return id%2 == 1 }}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := env.Queries[i%len(env.Queries)]
		if _, _, err := ix.SearchContext(context.Background(), q, 10, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsertAck measures the acknowledgement cost of one Insert
// under each journal policy. The ISSUE-5 acceptance bar: fsync=never must
// sit within 10% of the journal-off (pre-WAL) path — the journal append is
// an in-memory encode into the buffered log, not a syscall — while
// fsync=always pays the real fsync an acknowledged-durable update costs.
func BenchmarkInsertAck(b *testing.B) {
	r := rand.New(rand.NewSource(17))
	data := make([][]float32, 500)
	for i := range data {
		v := make([]float32, 50)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}
	for _, tc := range []struct {
		name  string
		fsync promips.FsyncPolicy
	}{
		{"journal-off", promips.FsyncDisabled},
		{"fsync-never", promips.FsyncNever},
		{"fsync-always", promips.FsyncAlways},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ix, err := promips.Build(data, promips.Options{Dir: b.TempDir(), Seed: 18, M: 5, Fsync: tc.fsync})
			if err != nil {
				b.Fatal(err)
			}
			defer ix.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.Insert(data[i%len(data)]); err != nil {
					b.Fatal(err)
				}
			}
			// The deferred Close (FsyncNever's batched write-out) is
			// teardown, not acknowledgement cost.
			b.StopTimer()
		})
	}
}

// BenchmarkInsertAckParallel is BenchmarkInsertAck's fsync-always case with
// concurrent updaters — the group-commit measurement. Every ack that arrives
// while another updater's fsync is in flight coalesces onto the next one, so
// per-ack cost at 8 updaters must sit well below the serial fsync-always
// number (the PR-6 acceptance bar is ≥4× amortization; BENCH_pr6.json
// records the same measurement via bench.MeasureInsertAck). The coalescing
// happens while goroutines block in fsync, so it shows up even at
// GOMAXPROCS=1 — SetParallelism rounds up to keep 8 updaters alive.
func BenchmarkInsertAckParallel(b *testing.B) {
	r := rand.New(rand.NewSource(17))
	data := make([][]float32, 500)
	for i := range data {
		v := make([]float32, 50)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}
	for _, updaters := range []int{2, 8} {
		b.Run("updaters="+strconv.Itoa(updaters), func(b *testing.B) {
			ix, err := promips.Build(data, promips.Options{Dir: b.TempDir(), Seed: 18, M: 5, Fsync: promips.FsyncAlways})
			if err != nil {
				b.Fatal(err)
			}
			defer ix.Close()
			b.SetParallelism((updaters + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := ix.Insert(data[i%len(data)]); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			b.StopTimer()
		})
	}
}

// BenchmarkSearchIncremental tracks the Algorithm 1 path the same way.
func BenchmarkSearchIncremental(b *testing.B) {
	env, ix := searchBenchEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := env.Queries[i%len(env.Queries)]
		if _, _, err := ix.SearchIncremental(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Datasets regenerates the Table III workload: dataset
// generation cost per point for each of the four analogues.
func BenchmarkTable3Datasets(b *testing.B) {
	for _, spec := range dataset.Specs() {
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec.Generate(500, int64(i))
			}
			b.ReportMetric(float64(spec.D), "dims")
		})
	}
}

// BenchmarkFig4IndexSize reports each method's index size (Fig 4a) and
// build cost per run (Fig 4b is BenchmarkFig4Preprocess).
func BenchmarkFig4IndexSize(b *testing.B) {
	env, builts := sharedEnv(b)
	for _, bt := range builts {
		b.Run(bt.Method.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = bt.Method.IndexSizeBytes()
			}
			b.ReportMetric(float64(bt.IndexBytes)/(1<<20), "MB")
			b.ReportMetric(float64(bt.IndexBytes)/float64(len(env.Data)), "B/point")
		})
	}
}

// BenchmarkFig4Preprocess measures ProMIPS index construction (Fig 4b);
// the baselines' build times are reported by BenchmarkFig4IndexSize's
// shared build and by cmd/benchrunner.
func BenchmarkFig4Preprocess(b *testing.B) {
	env, _ := sharedEnv(b)
	dirBase := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := dirBase + "/" + strconv.Itoa(i)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			b.Fatal(err)
		}
		ix, err := core.Build(env.Data, dir, core.Options{M: 6, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		ix.Close()
	}
}

// fig5to9 measures one accuracy/efficiency metric for every method at k=10.
func fig5to9Metric(b *testing.B, metric string) {
	env, builts := sharedEnv(b)
	for _, bt := range builts {
		b.Run(bt.Method.Name(), func(b *testing.B) {
			p, err := env.Measure(bt.Method, 10)
			if err != nil {
				b.Fatal(err)
			}
			runQueries(b, env, bt.Method, 10)
			// Reported after the timed loop: ResetTimer deletes metrics.
			switch metric {
			case "ratio":
				b.ReportMetric(p.Ratio, "ratio")
			case "recall":
				b.ReportMetric(p.Recall, "recall")
			case "pages":
				b.ReportMetric(p.Pages, "pages/query")
			case "cpu":
				b.ReportMetric(p.CPUms, "ms/query")
			case "total":
				b.ReportMetric(p.TotalMs, "ms/query")
			}
		})
	}
}

// BenchmarkFig5OverallRatio reproduces Fig 5 (overall ratio vs k) at k=10.
func BenchmarkFig5OverallRatio(b *testing.B) { fig5to9Metric(b, "ratio") }

// BenchmarkFig6Recall reproduces Fig 6 (recall vs k) at k=10.
func BenchmarkFig6Recall(b *testing.B) { fig5to9Metric(b, "recall") }

// BenchmarkFig7PageAccess reproduces Fig 7 (page access vs k) at k=10.
func BenchmarkFig7PageAccess(b *testing.B) { fig5to9Metric(b, "pages") }

// BenchmarkFig8CPUTime reproduces Fig 8 (CPU time vs k) at k=10.
func BenchmarkFig8CPUTime(b *testing.B) { fig5to9Metric(b, "cpu") }

// BenchmarkFig9TotalTime reproduces Fig 9 (total time vs k) at k=10.
func BenchmarkFig9TotalTime(b *testing.B) { fig5to9Metric(b, "total") }

// BenchmarkFig10ImpactC reproduces Fig 10: ProMIPS accuracy/efficiency as
// the approximation ratio c varies.
func BenchmarkFig10ImpactC(b *testing.B) {
	env, _ := sharedEnv(b)
	for _, c := range []float64{0.7, 0.8, 0.9} {
		b.Run("c="+strconv.FormatFloat(c, 'f', 1, 64), func(b *testing.B) {
			bt, err := env.BuildProMIPS(bench.ProMIPSOptions{C: c})
			if err != nil {
				b.Fatal(err)
			}
			defer bt.Method.Close()
			p, err := env.Measure(bt.Method, 10)
			if err != nil {
				b.Fatal(err)
			}
			runQueries(b, env, bt.Method, 10)
			b.ReportMetric(p.Ratio, "ratio")
			b.ReportMetric(p.Pages, "pages/query")
		})
	}
}

// BenchmarkFig11ImpactP reproduces Fig 11: ProMIPS accuracy/efficiency as
// the guarantee probability p varies.
func BenchmarkFig11ImpactP(b *testing.B) {
	env, _ := sharedEnv(b)
	for _, pv := range []float64{0.3, 0.5, 0.7, 0.9} {
		b.Run("p="+strconv.FormatFloat(pv, 'f', 1, 64), func(b *testing.B) {
			bt, err := env.BuildProMIPS(bench.ProMIPSOptions{P: pv})
			if err != nil {
				b.Fatal(err)
			}
			defer bt.Method.Close()
			p, err := env.Measure(bt.Method, 10)
			if err != nil {
				b.Fatal(err)
			}
			runQueries(b, env, bt.Method, 10)
			b.ReportMetric(p.Ratio, "ratio")
			b.ReportMetric(p.Pages, "pages/query")
		})
	}
}

// BenchmarkConcurrentThroughput measures QPS of one shared index served by
// a 1/2/4/8-worker pool through SearchBatch — the concurrent serving path
// (per-query I/O accounting, shared buffer pool, read-locked index).
func BenchmarkConcurrentThroughput(b *testing.B) {
	env, _ := sharedEnv(b)
	dir := b.TempDir()
	ix, err := core.Build(env.Data, dir, core.Options{M: 6, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	defer ix.Close()
	// Warm the buffer pool so every worker count runs against the same
	// cache state.
	if _, _, err := ix.SearchBatch(context.Background(), env.Queries, 10, 1, core.SearchParams{}); err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			queries := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ix.SearchBatch(context.Background(), env.Queries, 10, w, core.SearchParams{}); err != nil {
					b.Fatal(err)
				}
				queries += len(env.Queries)
			}
			b.ReportMetric(float64(queries)/b.Elapsed().Seconds(), "qps")
		})
	}
}

// BenchmarkTable2Scaling supports the Table II complexity claims: ProMIPS
// query cost as n doubles (the per-query page count should grow clearly
// sub-linearly in n).
func BenchmarkTable2Scaling(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			env, err := bench.NewEnv(bench.Config{
				Spec: dataset.Netflix(), N: n, NumQueries: 5, Seed: 9,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			bt, err := env.BuildProMIPS(bench.ProMIPSOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer bt.Method.Close()
			p, err := env.Measure(bt.Method, 10)
			if err != nil {
				b.Fatal(err)
			}
			runQueries(b, env, bt.Method, 10)
			b.ReportMetric(p.Pages, "pages/query")
			b.ReportMetric(p.Pages/float64(n)*1000, "pages/kpoint")
		})
	}
}

// BenchmarkAblationQuickProbe compares Algorithm 3 (Quick-Probe) with
// Algorithm 1 (incremental NN) — the design §V motivates.
func BenchmarkAblationQuickProbe(b *testing.B) {
	env, _ := sharedEnv(b)
	qp, err := env.BuildProMIPS(bench.ProMIPSOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer qp.Method.Close()
	inc, err := env.BuildProMIPSIncremental(bench.ProMIPSOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer inc.Method.Close()
	for _, bt := range []bench.Built{qp, inc} {
		b.Run(bt.Method.Name(), func(b *testing.B) {
			p, err := env.Measure(bt.Method, 10)
			if err != nil {
				b.Fatal(err)
			}
			runQueries(b, env, bt.Method, 10)
			b.ReportMetric(p.Pages, "pages/query")
			b.ReportMetric(p.CPUms, "ms/query")
		})
	}
}

// BenchmarkAblationPartition compares the paper's new partition pattern
// against ring-only iDistance (§VI).
func BenchmarkAblationPartition(b *testing.B) {
	env, _ := sharedEnv(b)
	for _, tc := range []struct {
		name string
		ksp  int
	}{{"sub-partitions", 0}, {"ring-only", 1}} {
		b.Run(tc.name, func(b *testing.B) {
			bt, err := env.BuildProMIPS(bench.ProMIPSOptions{Ksp: tc.ksp})
			if err != nil {
				b.Fatal(err)
			}
			defer bt.Method.Close()
			p, err := env.Measure(bt.Method, 10)
			if err != nil {
				b.Fatal(err)
			}
			runQueries(b, env, bt.Method, 10)
			b.ReportMetric(p.Pages, "pages/query")
		})
	}
}

// BenchmarkAblationProjDim sweeps the projected dimension m around the
// optimized value of §V-B.
func BenchmarkAblationProjDim(b *testing.B) {
	env, _ := sharedEnv(b)
	for _, m := range []int{4, 6, 8, 10} {
		b.Run("m="+strconv.Itoa(m), func(b *testing.B) {
			bt, err := env.BuildProMIPS(bench.ProMIPSOptions{M: m})
			if err != nil {
				b.Fatal(err)
			}
			defer bt.Method.Close()
			p, err := env.Measure(bt.Method, 10)
			if err != nil {
				b.Fatal(err)
			}
			runQueries(b, env, bt.Method, 10)
			b.ReportMetric(p.Ratio, "ratio")
			b.ReportMetric(p.Pages, "pages/query")
		})
	}
	b.Run("optimized-m-formula", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			randproj.OptimizedM(len(env.Data))
		}
	})
}
