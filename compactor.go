package promips

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// autoCompactPoll is how often the auto-compactor samples the flushed-
// segment watermark. Freezes happen at SegmentEntries-insert granularity,
// so sub-second polling tracks even a hot insert stream closely without
// measurable idle cost (two atomic loads and a lock-free stats read per
// tick).
const autoCompactPoll = 500 * time.Millisecond

// AutoCompactor is a background compaction scheduler: it watches an
// index's update pipeline and folds flushed segments into the disk-
// resident structures — through the same Compact handover searches already
// tolerate — once enough of them accumulate. Obtain one from
// Index.StartAutoCompact (or shard.Index.StartAutoCompact) and Stop it
// before Save/Close teardown.
//
// Compaction REASSIGNS ids (densely, dropping tombstones). Enable
// automatic compaction only when no external system holds ids across
// compactions, or when the id remap is tracked some other way; read
// replicas must never run it (a follower's state has to stay a replayable
// function of its primary's WAL).
type AutoCompactor struct {
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	cancel   context.CancelFunc
	runs     atomic.Int64
	failures atomic.Int64
}

// NewAutoCompactor runs compact whenever shouldCompact reports true,
// polling every 500ms. It is the building block Index.StartAutoCompact and
// shard.Index.StartAutoCompact share — most callers want those instead.
// The two closures let one scheduler serve both the single and the sharded
// index without unifying their Compact signatures. The context handed to
// compact is cancelled by Stop.
func NewAutoCompactor(shouldCompact func() bool, compact func(context.Context) error) *AutoCompactor {
	ctx, cancel := context.WithCancel(context.Background())
	c := &AutoCompactor{
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		cancel: cancel,
	}
	go func() {
		defer close(c.done)
		ticker := time.NewTicker(autoCompactPoll)
		defer ticker.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-ticker.C:
			}
			if !shouldCompact() {
				continue
			}
			if err := compact(ctx); err != nil {
				// ErrEmptyIndex (everything tombstoned) is a no-op, not a
				// failure; anything else counts and retries next tick —
				// compaction is an optimization, never worth crashing over.
				if !errors.Is(err, ErrEmptyIndex) && !errors.Is(err, context.Canceled) {
					c.failures.Add(1)
				}
				continue
			}
			c.runs.Add(1)
		}
	}()
	return c
}

// Stop cancels any in-flight compaction, terminates the scheduler and
// waits for it to exit. Idempotent.
func (c *AutoCompactor) Stop() {
	c.stopOnce.Do(func() {
		c.cancel()
		close(c.stop)
	})
	<-c.done
}

// Runs returns how many compactions the scheduler has completed.
func (c *AutoCompactor) Runs() int64 { return c.runs.Load() }

// Failures returns how many compaction attempts failed (each is retried
// on a later tick).
func (c *AutoCompactor) Failures() int64 { return c.failures.Load() }

// StartAutoCompact launches a background scheduler that compacts this
// index whenever at least minFlushed frozen segments are durable in their
// own seg files (minFlushed < 1 is treated as 1). The flushed watermark —
// not the raw segment count — is the trigger, so compaction never races
// the flusher for segments that are still only in memory: by the time the
// fold starts, everything it folds already survives a crash without the
// journal. Stop the returned scheduler before Close. See AutoCompactor
// for the id-reassignment caveat.
func (ix *Index) StartAutoCompact(minFlushed int) *AutoCompactor {
	if minFlushed < 1 {
		minFlushed = 1
	}
	return NewAutoCompactor(
		func() bool { return ix.UpdateStats().FlushedSegments >= minFlushed },
		func(ctx context.Context) error {
			_, err := ix.Compact(ctx)
			return err
		},
	)
}
