package promips

// Mixed read/write stress: searches stream concurrently with an insert
// stream that drives the whole update pipeline — delta freezes, background
// seg-file flushes, and automatic background compactions — and search
// latency must stay bounded throughout (snapshot reads mean an update
// never blocks a search; the p99 assertion catches any regression back to
// lock-coupled behavior). Run under -race this also exercises every
// cross-goroutine edge of the pipeline: inserter vs flusher vs compactor
// vs searchers.

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func percentile(durs []time.Duration, p float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func TestMixedWorkloadStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	r := rand.New(rand.NewSource(77))
	const dim = 16
	data := randData(r, 200, dim)
	// A small freeze threshold makes the insert stream cross many
	// freeze/flush boundaries; FsyncNever keeps the journal on (replay
	// correctness stays covered) without an fsync per insert dominating.
	ix, err := Build(data, Options{
		Dir: t.TempDir(), Seed: 7, M: 4,
		SegmentEntries: 32, Fsync: FsyncNever,
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	defer ix.Close()

	ac := ix.StartAutoCompact(1)
	defer ac.Stop()

	const (
		inserts   = 1500
		searchers = 4
	)
	queries := randData(r, 32, dim)

	var (
		wg        sync.WaitGroup
		stop      atomic.Bool
		searchErr atomic.Pointer[error]
	)
	latMu := sync.Mutex{}
	latencies := make([]time.Duration, 0, 4096)

	for w := 0; w < searchers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qr := rand.New(rand.NewSource(int64(1000 + w)))
			local := make([]time.Duration, 0, 1024)
			for !stop.Load() {
				q := queries[qr.Intn(len(queries))]
				start := time.Now()
				_, _, err := ix.Search(context.Background(), q, 10)
				el := time.Since(start)
				if err != nil {
					searchErr.CompareAndSwap(nil, &err)
					return
				}
				local = append(local, el)
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			latMu.Unlock()
		}(w)
	}

	ir := rand.New(rand.NewSource(9))
	points := randData(ir, inserts, dim)
	for _, p := range points {
		if _, err := ix.Insert(p); err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("insert: %v", err)
		}
	}
	// Let the pipeline drain a little so at least one background
	// compaction observes the flushed watermark.
	deadline := time.Now().Add(5 * time.Second)
	for ac.Runs() == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if ep := searchErr.Load(); ep != nil {
		t.Fatalf("search during insert stream: %v", *ep)
	}
	if len(latencies) == 0 {
		t.Fatal("no searches completed during the insert stream")
	}
	p50 := percentile(latencies, 0.50)
	p99 := percentile(latencies, 0.99)
	t.Logf("mixed workload: %d searches, p50=%v p99=%v", len(latencies), p50, p99)
	// The bound is deliberately loose for CI noise (and the -race
	// slowdown): what it excludes is searches serializing behind a freeze,
	// a seg-file flush, or a compaction fold — those would push p99 into
	// whole-rebuild territory (hundreds of ms to seconds on this size).
	if p99 > time.Second {
		t.Fatalf("mixed-workload search p99 %v: searches are being blocked by updates", p99)
	}

	us := ix.UpdateStats()
	if us.Freezes == 0 {
		t.Fatalf("insert stream crossed no freeze boundary: %+v", us)
	}
	if us.Flushes == 0 && us.FlushFailures == 0 && ac.Runs() == 0 {
		t.Fatalf("no segment was ever flushed or compacted: %+v", us)
	}
	if ac.Runs() == 0 {
		t.Fatalf("auto-compactor never ran (failures=%d, stats %+v)", ac.Failures(), us)
	}
	if ac.Failures() != 0 {
		t.Fatalf("auto-compactor recorded %d failures", ac.Failures())
	}

	// Nothing lost: every insert acknowledged above is live (compaction
	// remaps ids but never drops a live point).
	if want := len(data) + inserts; ix.LiveCount() != want {
		t.Fatalf("live count %d after stream, want %d", ix.LiveCount(), want)
	}
	// And the state round-trips: Save folds whatever the pipeline still
	// holds, and a fresh Open answers with the same live set.
	ac.Stop()
	if err := ix.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	dir := ix.Dir()
	if err := ix.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if want := len(data) + inserts; re.LiveCount() != want {
		t.Fatalf("reopened live count %d, want %d", re.LiveCount(), want)
	}
	if rec := re.Recovery(); rec.Replayed != 0 {
		t.Fatalf("replay after Save replayed %d records", rec.Replayed)
	}
}
