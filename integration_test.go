package promips

import (
	"context"
	"sort"
	"testing"

	"promips/exact"
	"promips/internal/dataset"
	"promips/internal/vec"
	"promips/mips"
)

// End-to-end over all four paper dataset analogues at miniature scale:
// build with the paper's per-dataset parameters (projected dimension, page
// size), query with dataset members, and check the c-AMIP guarantee band.
func TestIntegrationAllDatasets(t *testing.T) {
	sizes := map[string]int{"Netflix": 1200, "Yahoo": 1200, "P53": 300, "Sift": 1500}
	for _, spec := range dataset.Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			n := sizes[spec.Name]
			data := spec.Generate(n, 77)
			ix, err := Build(data, Options{
				Dir: t.TempDir(), Seed: 78,
				M: spec.M, PageSize: spec.PageSize,
				C: 0.9, P: 0.7,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()

			queries := make([][]float32, 8)
			for i := range queries {
				queries[i] = data[(i*97)%n]
			}
			gt := exact.Compute(data, queries, 10)
			var ratioSum float64
			for qi, q := range queries {
				res, st, err := ix.Search(context.Background(), q, 10)
				if err != nil {
					t.Fatal(err)
				}
				if len(res) != 10 {
					t.Fatalf("query %d returned %d results", qi, len(res))
				}
				if st.PageAccesses <= 0 {
					t.Fatalf("query %d reports no page accesses", qi)
				}
				returned := make([]mips.Result, len(res))
				for i, r := range res {
					returned[i] = mips.Result{ID: r.ID, IP: vec.Dot(data[r.ID], q)}
				}
				sort.Slice(returned, func(a, b int) bool { return returned[a].IP > returned[b].IP })
				ratioSum += gt.OverallRatio(qi, returned)
			}
			avg := ratioSum / float64(len(queries))
			// The guarantee is per-query with probability p; averaged over
			// dataset-member queries the ratio sits well above c.
			if avg < 0.9 {
				t.Fatalf("%s: average overall ratio %.4f below c", spec.Name, avg)
			}
		})
	}
}

// The query's own vector is in the dataset, so the exact MIP point for a
// dataset-member query almost always includes itself or a same-cluster
// point; the index must find an answer at least as good as c times that.
func TestIntegrationSelfQueries(t *testing.T) {
	spec := dataset.Sift()
	data := spec.Generate(800, 91)
	ix, err := Build(data, Options{Dir: t.TempDir(), Seed: 92, M: spec.M, C: 0.9, P: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ok := 0
	for i := 0; i < 20; i++ {
		q := data[i*37%800]
		res, _, err := ix.Search(context.Background(), q, 1)
		if err != nil {
			t.Fatal(err)
		}
		best := exact.TopK(data, q, 1)[0]
		if best.IP <= 0 || res[0].IP >= 0.9*best.IP {
			ok++
		}
	}
	if ok < 16 {
		t.Fatalf("self-query guarantee: %d/20", ok)
	}
}
