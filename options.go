package promips

import (
	"time"

	"promips/internal/core"
)

// A SearchOption adjusts one query (or one batch) without touching the
// index: the guarantee knobs are recomputed query-locally from Quick-Probe's
// two termination conditions, so concurrent queries can run with different
// (c, p) settings against one shared index.
type SearchOption func(*searchConfig)

// searchConfig is the resolved option set for one Search/SearchBatch call.
type searchConfig struct {
	params       core.SearchParams
	workers      int
	shardTimeout time.Duration
	requireAll   bool
}

func resolveOptions(opts []SearchOption) searchConfig {
	var cfg searchConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithC overrides the approximation ratio c ∈ (0,1) for this query. Every
// returned point then satisfies ⟨o,q⟩ ≥ c·⟨o*,q⟩ with the query's guarantee
// probability. Passing exactly 0 restores the index default; any other
// value outside (0,1) makes the query fail.
func WithC(c float64) SearchOption {
	return func(cfg *searchConfig) { cfg.params.C = c }
}

// WithP overrides the guarantee probability p ∈ (0,1) for this query.
// Larger p widens the probability-guaranteed search range: accuracy rises,
// and so do verified candidates and page accesses. Passing exactly 0
// restores the index default; any other value outside (0,1) makes the
// query fail.
func WithP(p float64) SearchOption {
	return func(cfg *searchConfig) { cfg.params.P = p }
}

// WithFilter restricts the query to points whose id the predicate accepts —
// predicate-constrained MIPS (e.g. "recommend only items the user has not
// seen"). Rejected points are neither verified nor returned; the (c, p)
// guarantee is made against the best point that passes the filter. The
// predicate must be fast and side-effect free: it runs once per candidate
// under the index's shared lock — and, when the option is passed to
// SearchBatch, concurrently from every worker goroutine, so it must also
// be safe for concurrent use (a pure function of the id, or reads of
// state that is not mutated during the batch).
func WithFilter(f func(id uint32) bool) SearchOption {
	return func(cfg *searchConfig) { cfg.params.Filter = f }
}

// WithWorkers sets the worker-pool size for SearchBatch (n <= 0 means one
// worker per available CPU). Single-query Search ignores it.
func WithWorkers(n int) SearchOption {
	return func(cfg *searchConfig) { cfg.workers = n }
}

// WithShardTimeout bounds each shard's portion of a fanned-out search
// (promips/shard): a shard that has not answered within d is treated as
// failed — isolated and reported through SearchStats.Degraded in the
// default degraded mode, or failing the query under WithRequireAllShards.
// Zero (the default) means no per-shard deadline beyond the caller's
// context. A single, unsharded index ignores the option.
func WithShardTimeout(d time.Duration) SearchOption {
	return func(cfg *searchConfig) { cfg.shardTimeout = d }
}

// WithRequireAllShards makes a fanned-out search all-or-nothing: any shard
// error or per-shard timeout fails the whole query, as it did before
// degraded fan-out existed. Without it, a sharded search isolates failed
// shards and returns the merged results of the healthy ones with a
// SearchStats.Degraded report (provided at least one shard answered and
// the caller's own context is still live). A single index ignores the
// option.
func WithRequireAllShards() SearchOption {
	return func(cfg *searchConfig) { cfg.requireAll = true }
}

// ResolvedOptions is the settled view of a SearchOption slice — what the
// opaque functional options amount to for one call. A fan-out layer
// (promips/shard) needs it to re-derive per-child options: split the
// guarantee probability across shards, rewrap the filter for each child's
// local id space, and size its own worker pool. Zero values mean "index
// default", exactly as the options themselves do.
type ResolvedOptions struct {
	// C and P are the per-query guarantee overrides (0 = index default).
	C, P float64
	// Filter is the id predicate, or nil.
	Filter func(id uint32) bool
	// Workers is the requested batch worker-pool size (0 = default).
	Workers int
	// ShardTimeout is the per-shard deadline of a fanned-out search
	// (0 = none).
	ShardTimeout time.Duration
	// RequireAllShards makes the fan-out all-or-nothing instead of
	// degrading around failed shards.
	RequireAllShards bool
}

// ResolveSearchOptions applies opts to a fresh configuration and returns
// the resulting settings. It does not touch any index.
func ResolveSearchOptions(opts ...SearchOption) ResolvedOptions {
	cfg := resolveOptions(opts)
	return ResolvedOptions{
		C: cfg.params.C, P: cfg.params.P,
		Filter:           cfg.params.Filter,
		Workers:          cfg.workers,
		ShardTimeout:     cfg.shardTimeout,
		RequireAllShards: cfg.requireAll,
	}
}
