package promips

import "promips/internal/core"

// A SearchOption adjusts one query (or one batch) without touching the
// index: the guarantee knobs are recomputed query-locally from Quick-Probe's
// two termination conditions, so concurrent queries can run with different
// (c, p) settings against one shared index.
type SearchOption func(*searchConfig)

// searchConfig is the resolved option set for one Search/SearchBatch call.
type searchConfig struct {
	params  core.SearchParams
	workers int
}

func resolveOptions(opts []SearchOption) searchConfig {
	var cfg searchConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithC overrides the approximation ratio c ∈ (0,1) for this query. Every
// returned point then satisfies ⟨o,q⟩ ≥ c·⟨o*,q⟩ with the query's guarantee
// probability. Passing exactly 0 restores the index default; any other
// value outside (0,1) makes the query fail.
func WithC(c float64) SearchOption {
	return func(cfg *searchConfig) { cfg.params.C = c }
}

// WithP overrides the guarantee probability p ∈ (0,1) for this query.
// Larger p widens the probability-guaranteed search range: accuracy rises,
// and so do verified candidates and page accesses. Passing exactly 0
// restores the index default; any other value outside (0,1) makes the
// query fail.
func WithP(p float64) SearchOption {
	return func(cfg *searchConfig) { cfg.params.P = p }
}

// WithFilter restricts the query to points whose id the predicate accepts —
// predicate-constrained MIPS (e.g. "recommend only items the user has not
// seen"). Rejected points are neither verified nor returned; the (c, p)
// guarantee is made against the best point that passes the filter. The
// predicate must be fast and side-effect free: it runs once per candidate
// under the index's shared lock — and, when the option is passed to
// SearchBatch, concurrently from every worker goroutine, so it must also
// be safe for concurrent use (a pure function of the id, or reads of
// state that is not mutated during the batch).
func WithFilter(f func(id uint32) bool) SearchOption {
	return func(cfg *searchConfig) { cfg.params.Filter = f }
}

// WithWorkers sets the worker-pool size for SearchBatch (n <= 0 means one
// worker per available CPU). Single-query Search ignores it.
func WithWorkers(n int) SearchOption {
	return func(cfg *searchConfig) { cfg.workers = n }
}
