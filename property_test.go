package promips

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestGuaranteeProperty checks the paper's contract as a property, table-
// driven across seeds, dimensionalities and (c, p) settings: over a query
// workload, the fraction of queries whose returned top-1 inner product
// reaches c times the exact top-1 must be at least the configured p. The
// guarantee is probabilistic, so the assertion is on the success rate, not
// on every query; seeds are fixed so the rates are reproducible. Both the
// Quick-Probe path (Search) and Algorithm 1 (SearchIncremental) must honor
// the same bound.
//
// Each case also re-runs every query through a second index built with
// unrelated (c, p) defaults but queried with the WithC/WithP per-query
// overrides. The two must agree result-for-result and stat-for-stat — the
// guarantee knobs are query-local, so overriding them reproduces the
// dedicated index exactly (same seed, same layout).
func TestGuaranteeProperty(t *testing.T) {
	cases := []struct {
		n, d, m int
		c, p    float64
		seed    int64
	}{
		{n: 800, d: 16, m: 5, c: 0.9, p: 0.5, seed: 101},
		{n: 800, d: 16, m: 5, c: 0.9, p: 0.9, seed: 102},
		{n: 600, d: 24, m: 6, c: 0.8, p: 0.7, seed: 103},
		{n: 600, d: 12, m: 4, c: 0.7, p: 0.5, seed: 104},
		{n: 1200, d: 32, m: 6, c: 0.9, p: 0.8, seed: 105},
	}
	ctx := context.Background()
	for ci, tc := range cases {
		if testing.Short() && ci >= 2 {
			break
		}
		name := fmt.Sprintf("n=%d_d=%d_c=%.1f_p=%.1f", tc.n, tc.d, tc.c, tc.p)
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(tc.seed))
			data := randData(r, tc.n, tc.d)
			ix, err := Build(data, Options{
				Dir: t.TempDir(), C: tc.c, P: tc.p, M: tc.m, Seed: tc.seed + 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()
			// Same seed, different build-time defaults: only the WithC and
			// WithP overrides below can make it behave like ix.
			over, err := Build(data, Options{
				Dir: t.TempDir(), C: 0.55, P: 0.35, M: tc.m, Seed: tc.seed + 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer over.Close()

			const numQueries = 20
			okSearch, okIncr := 0, 0
			for qi := 0; qi < numQueries; qi++ {
				// The paper's workload: queries are dataset members, so the
				// exact top-1 inner product is strictly positive and the
				// c-approximation inequality is meaningful.
				q := data[r.Intn(len(data))]
				exact, err := ix.Exact(context.Background(), q, 1)
				if err != nil {
					t.Fatal(err)
				}
				want := tc.c * exact[0].IP

				res, st, err := ix.Search(ctx, q, 1)
				if err != nil {
					t.Fatal(err)
				}
				if res[0].IP >= want-1e-9 {
					okSearch++
				}
				inc, _, err := ix.SearchIncremental(ctx, q, 1)
				if err != nil {
					t.Fatal(err)
				}
				if inc[0].IP >= want-1e-9 {
					okIncr++
				}

				// Per-query overrides must reproduce the dedicated index
				// exactly: results and every stat, Quick-Probe's work and
				// the termination condition included.
				oRes, oSt, err := over.Search(ctx, q, 1, WithC(tc.c), WithP(tc.p))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(oRes, res) {
					t.Fatalf("query %d: WithC/WithP results diverge from dedicated index:\n got %v\nwant %v", qi, oRes, res)
				}
				if oSt != st {
					t.Fatalf("query %d: WithC/WithP stats diverge from dedicated index:\n got %+v\nwant %+v", qi, oSt, st)
				}
			}
			minOK := int(tc.p * numQueries)
			if okSearch < minOK {
				t.Errorf("Search: %d/%d queries met the c=%.1f bound, need >= %d (p=%.1f)",
					okSearch, numQueries, tc.c, minOK, tc.p)
			}
			if okIncr < minOK {
				t.Errorf("SearchIncremental: %d/%d queries met the c=%.1f bound, need >= %d (p=%.1f)",
					okIncr, numQueries, tc.c, minOK, tc.p)
			}
		})
	}
}
