package promips

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestGuaranteeProperty checks the paper's contract as a property, table-
// driven across seeds, dimensionalities and (c, p) settings: over a query
// workload, the fraction of queries whose returned top-1 inner product
// reaches c times the exact top-1 must be at least the configured p. The
// guarantee is probabilistic, so the assertion is on the success rate, not
// on every query; seeds are fixed so the rates are reproducible. Both the
// Quick-Probe path (Search) and Algorithm 1 (SearchIncremental) must honor
// the same bound.
func TestGuaranteeProperty(t *testing.T) {
	cases := []struct {
		n, d, m int
		c, p    float64
		seed    int64
	}{
		{n: 800, d: 16, m: 5, c: 0.9, p: 0.5, seed: 101},
		{n: 800, d: 16, m: 5, c: 0.9, p: 0.9, seed: 102},
		{n: 600, d: 24, m: 6, c: 0.8, p: 0.7, seed: 103},
		{n: 600, d: 12, m: 4, c: 0.7, p: 0.5, seed: 104},
		{n: 1200, d: 32, m: 6, c: 0.9, p: 0.8, seed: 105},
	}
	for ci, tc := range cases {
		if testing.Short() && ci >= 2 {
			break
		}
		name := fmt.Sprintf("n=%d_d=%d_c=%.1f_p=%.1f", tc.n, tc.d, tc.c, tc.p)
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(tc.seed))
			data := randData(r, tc.n, tc.d)
			ix, err := Build(data, Options{
				Dir: t.TempDir(), C: tc.c, P: tc.p, M: tc.m, Seed: tc.seed + 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()

			const numQueries = 20
			okSearch, okIncr := 0, 0
			for qi := 0; qi < numQueries; qi++ {
				// The paper's workload: queries are dataset members, so the
				// exact top-1 inner product is strictly positive and the
				// c-approximation inequality is meaningful.
				q := data[r.Intn(len(data))]
				exact, err := ix.Exact(q, 1)
				if err != nil {
					t.Fatal(err)
				}
				want := tc.c * exact[0].IP

				res, _, err := ix.Search(q, 1)
				if err != nil {
					t.Fatal(err)
				}
				if res[0].IP >= want-1e-9 {
					okSearch++
				}
				inc, _, err := ix.SearchIncremental(q, 1)
				if err != nil {
					t.Fatal(err)
				}
				if inc[0].IP >= want-1e-9 {
					okIncr++
				}
			}
			minOK := int(tc.p * numQueries)
			if okSearch < minOK {
				t.Errorf("Search: %d/%d queries met the c=%.1f bound, need >= %d (p=%.1f)",
					okSearch, numQueries, tc.c, minOK, tc.p)
			}
			if okIncr < minOK {
				t.Errorf("SearchIncremental: %d/%d queries met the c=%.1f bound, need >= %d (p=%.1f)",
					okIncr, numQueries, tc.c, minOK, tc.p)
			}
		})
	}
}
