package mips

import (
	"math"
	"sort"
)

// TopK accumulates the k largest-inner-product results seen so far,
// kept sorted descending. It is shared by the baseline methods.
type TopK struct {
	k       int
	results []Result
}

// NewTopK returns an accumulator for the best k results.
func NewTopK(k int) *TopK { return &TopK{k: k, results: make([]Result, 0, k)} }

// Offer inserts (id, ip) when it beats the current k-th best.
func (t *TopK) Offer(id uint32, ip float64) {
	if len(t.results) == t.k && ip <= t.results[t.k-1].IP {
		return
	}
	pos := sort.Search(len(t.results), func(i int) bool { return t.results[i].IP < ip })
	t.results = append(t.results, Result{})
	copy(t.results[pos+1:], t.results[pos:])
	t.results[pos] = Result{ID: id, IP: ip}
	if len(t.results) > t.k {
		t.results = t.results[:t.k]
	}
}

// Kth returns the current k-th best inner product; full is false while
// fewer than k results are held (and the value is -Inf).
func (t *TopK) Kth() (ip float64, full bool) {
	if len(t.results) < t.k {
		return math.Inf(-1), false
	}
	return t.results[t.k-1].IP, true
}

// Results returns the collected results, best first. The slice aliases the
// accumulator; callers must copy to retain it across further Offers.
func (t *TopK) Results() []Result { return t.results }
