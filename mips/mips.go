// Package mips defines the types shared by every MIPS method in this
// repository — ProMIPS and the three baselines it is evaluated against —
// so the benchmark harness can drive them uniformly.
package mips

// Result is one returned point. IP is the method's belief about the inner
// product (exact for methods that verify candidates, approximate for the
// PQ baseline); the evaluation harness recomputes exact inner products for
// its accuracy metrics.
type Result struct {
	ID uint32
	IP float64
}

// QueryStats is the per-query work report common to all methods.
type QueryStats struct {
	// PageAccesses counts distinct disk pages touched during the query —
	// the paper's Page Access metric, identical accounting for every
	// method. ProMIPS accumulates it in a per-query pager.IOStats; the
	// single-threaded baselines still measure it as buffer-pool misses
	// against a pool dropped at query start (the two agree whenever the
	// pool holds the query's working set).
	PageAccesses int64
	// Candidates is the number of points the method examined/verified.
	Candidates int
}

// Method is a built, queryable MIPS index.
type Method interface {
	// Name identifies the method in benchmark output ("ProMIPS",
	// "H2-ALSH", "Range-LSH", "PQ-Based").
	Name() string
	// Search returns the top-k (approximate) MIP points, best first.
	Search(q []float32, k int) ([]Result, QueryStats, error)
	// IndexSizeBytes is the on-disk + in-memory index footprint (Fig 4a).
	IndexSizeBytes() int64
	// Close releases any page files.
	Close() error
}
