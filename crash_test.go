package promips

// The crash matrix: run one canonical lifecycle workload —
// Build → Save → Insert/Delete → Save → Compact → update → Save — through
// the fault-injecting filesystem, once per mutating filesystem operation
// the workload performs, crashing at exactly that operation. After every
// simulated crash the directory is reopened with the real filesystem and
// must hold either the pre- or the post-state of the operation in flight —
// every update acknowledged under FsyncAlways before the crash included —
// and must never surface as corrupt. A second, transient pass injects a
// plain error (no crash) at every op and asserts the live process stays
// exactly consistent: whatever the error swallowed is absent, everything
// acknowledged is present, and a final Save round-trips byte-identically.

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"promips/internal/fsutil"
)

// crashSig is the logical state fingerprint used by the matrix: the live
// count, the bit patterns of the top-k inner products for a fixed probe
// set (the approximate path must work on every recovered state), and —
// the discriminating part — the bit patterns of EVERY live point's exact
// inner product with the first probe. The exact scan fingerprints the
// whole live set, so losing or resurrecting any single update changes the
// signature (a weaker top-k-only signature was measured to miss exactly
// the ordering bug the matrix exists to catch). Ids are deliberately
// excluded — Compact remaps them, and the matrix compares states across
// that boundary.
type crashSig struct {
	Live  int
	IPs   [][]uint64
	Exact []uint64
}

func signatureOf(t *testing.T, ix *Index, probes [][]float32) crashSig {
	t.Helper()
	sig := crashSig{Live: ix.LiveCount()}
	for _, q := range probes {
		res, _, err := ix.Search(context.Background(), q, 5)
		if err != nil {
			t.Fatalf("probe search: %v", err)
		}
		bits := make([]uint64, len(res))
		for i, r := range res {
			bits[i] = math.Float64bits(r.IP)
		}
		sig.IPs = append(sig.IPs, bits)
	}
	all, err := ix.Exact(context.Background(), probes[0], ix.LiveCount()+1)
	if err != nil {
		t.Fatalf("probe exact: %v", err)
	}
	for _, r := range all {
		sig.Exact = append(sig.Exact, math.Float64bits(r.IP))
	}
	return sig
}

// crashStep is one acknowledged operation of the workload. Steps are
// single operations on purpose: "pre- or post-state" is only a meaningful
// assertion at single-operation granularity.
type crashStep struct {
	name string
	run  func(ix *Index) error
}

func crashWorkloadSteps(points [][]float32) []crashStep {
	return []crashStep{
		{"save-initial", func(ix *Index) error { return ix.Save() }},
		{"insert-60", func(ix *Index) error { _, err := ix.Insert(points[0]); return err }},
		{"insert-61", func(ix *Index) error { _, err := ix.Insert(points[1]); return err }},
		{"delete-base-5", func(ix *Index) error { _, err := ix.DeleteChecked(5); return err }},
		{"delete-delta-61", func(ix *Index) error { _, err := ix.DeleteChecked(61); return err }},
		{"save-with-delta", func(ix *Index) error { return ix.Save() }},
		{"insert-62", func(ix *Index) error { _, err := ix.Insert(points[2]); return err }},
		{"compact", func(ix *Index) error { _, err := ix.Compact(context.Background()); return err }},
		{"insert-post-compact", func(ix *Index) error { _, err := ix.Insert(points[3]); return err }},
		// The second post-compact insert hits the freeze threshold
		// (SegmentEntries=2), so a freeze + seg-file flush also runs against
		// the generation the Compact handover installed.
		{"insert-post-compact-2", func(ix *Index) error { _, err := ix.Insert(points[4]); return err }},
		{"delete-post-compact-7", func(ix *Index) error { _, err := ix.DeleteChecked(7); return err }},
		{"save-final", func(ix *Index) error { return ix.Save() }},
	}
}

// runCrashWorkload drives the workload against dir through fsys. It
// returns the number of completed steps: -1 if Build itself failed, 0..n
// otherwise, stopping at the first step error when stopOnError is set
// (crash semantics — the process is dead) and running every remaining
// step otherwise (transient semantics — the process saw an error and
// keeps serving). record, when non-nil, is called after Build and after
// every completed step.
func runCrashWorkload(fsys fsutil.FS, dir string, data, points [][]float32,
	stopOnError bool, record func(*Index)) (completed int, ix *Index, firstErr error) {
	// SegmentEntries 2 + synchronous segment flushing put every seg-file
	// operation — freeze, flush write, flush fsync, directory sync — on the
	// deterministic op sequence the matrix crashes at, so "no acked write
	// lost" is proven at every segment-flush fault point too.
	ix, err := Build(data, Options{Dir: dir, Seed: 42, M: 4, fs: fsys,
		SegmentEntries: 2, segFlushSync: true})
	if err != nil {
		return -1, nil, err
	}
	if record != nil {
		record(ix)
	}
	for _, st := range crashWorkloadSteps(points) {
		if err := st.run(ix); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("step %s: %w", st.name, err)
			}
			if stopOnError {
				return completed, ix, firstErr
			}
			continue
		}
		completed++
		if record != nil {
			record(ix)
		}
	}
	return completed, ix, firstErr
}

func crashMatrixInputs() (data, points, probes [][]float32) {
	r := rand.New(rand.NewSource(4242))
	data = randData(r, 60, 8)
	points = randData(r, 5, 8)
	probes = randData(r, 3, 8)
	return
}

// TestCrashMatrix is the crash pass: every fault point, crash, reopen.
func TestCrashMatrix(t *testing.T) {
	data, points, probes := crashMatrixInputs()

	// Pass 0: no fault. Records the op count and the state signature after
	// every step; determinism makes these valid for every later run.
	counter := &fsutil.FaultFS{}
	var sigs []crashSig
	completed, ix, err := runCrashWorkload(counter, t.TempDir(), data, points, true,
		func(ix *Index) { sigs = append(sigs, signatureOf(t, ix, probes)) })
	if err != nil {
		t.Fatalf("fault-free workload failed: %v", err)
	}
	steps := crashWorkloadSteps(points)
	if completed != len(steps) {
		t.Fatalf("fault-free workload completed %d of %d steps", completed, len(steps))
	}
	ix.Close()
	opCount := counter.Ops()
	if opCount < len(steps) {
		t.Fatalf("implausible op count %d", opCount)
	}
	t.Logf("workload: %d steps, %d mutating fs ops", len(steps), opCount)

	for fail := 1; fail <= opCount; fail++ {
		ffs := &fsutil.FaultFS{FailAt: fail, Crash: true}
		dir := t.TempDir()
		completed, ix, runErr := runCrashWorkload(ffs, dir, data, points, true, nil)
		if ix != nil {
			ix.Close() // a dead process's fds; errors are expected and irrelevant
		}
		if runErr == nil {
			t.Fatalf("fail=%d: crash was not observed by any step", fail)
		}
		if !ffs.Crashed() {
			t.Fatalf("fail=%d: workload errored (%v) without reaching the fault", fail, runErr)
		}

		re, err := Open(dir)
		if err != nil {
			if errors.Is(err, ErrCorruptIndex) {
				t.Fatalf("fail=%d (crash at %v): reopen says corrupt: %v", fail, runErr, err)
			}
			if completed >= 1 {
				// The first Save completed, so from then on every crash
				// state must be openable.
				t.Fatalf("fail=%d: %d steps completed but reopen failed: %v", fail, completed, err)
			}
			if !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("fail=%d: pre-first-Save reopen failed with unexpected class: %v", fail, err)
			}
			continue
		}
		sig := signatureOf(t, re, probes)
		if err := re.Close(); err != nil {
			t.Fatalf("fail=%d: close reopened: %v", fail, err)
		}
		if completed < 0 {
			t.Fatalf("fail=%d: Build crashed (%v) yet the directory opens", fail, runErr)
		}
		// sigs[i] is the state after i completed steps. The crashed step
		// may or may not have reached the disk.
		ok := reflect.DeepEqual(sig, sigs[completed])
		if !ok && completed+1 < len(sigs) {
			ok = reflect.DeepEqual(sig, sigs[completed+1])
		}
		if !ok {
			t.Fatalf("fail=%d: reopened state after crash in step %d (%v) matches neither pre nor post signature",
				fail, completed+1, runErr)
		}
	}
}

// TestCrashMatrixTransient is the transient pass: every fault point
// returns an error once, the process keeps running, and the final state —
// exactly the acknowledged updates — must round-trip through Save+Open.
func TestCrashMatrixTransient(t *testing.T) {
	data, points, probes := crashMatrixInputs()

	counter := &fsutil.FaultFS{}
	if _, ix, err := runCrashWorkload(counter, t.TempDir(), data, points, true, nil); err != nil {
		t.Fatalf("fault-free workload failed: %v", err)
	} else {
		ix.Close()
	}
	opCount := counter.Ops()

	for fail := 1; fail <= opCount; fail++ {
		ffs := &fsutil.FaultFS{FailAt: fail}
		dir := t.TempDir()
		_, ix, runErr := runCrashWorkload(ffs, dir, data, points, false, nil)
		if ix == nil {
			// Build itself absorbed the fault; nothing was ever saved.
			if _, err := Open(dir); err == nil || errors.Is(err, ErrCorruptIndex) {
				t.Fatalf("fail=%d: build-failed dir opened (or corrupt): %v", fail, err)
			}
			continue
		}
		// The process lives on: whatever the fault cost, a Save now must
		// succeed (the workload's own final Save may have been the faulted
		// step, hence the retry here) and the reopened index must answer
		// exactly like the live one — no lost acks, no resurrected
		// failures.
		if err := ix.Save(); err != nil {
			t.Fatalf("fail=%d (fault was %v): Save after transient fault: %v", fail, runErr, err)
		}
		want := signatureOf(t, ix, probes)
		if err := ix.Close(); err != nil {
			t.Fatalf("fail=%d: close: %v", fail, err)
		}
		re, err := Open(dir)
		if err != nil {
			t.Fatalf("fail=%d: reopen after healed transient fault: %v", fail, err)
		}
		if got := signatureOf(t, re, probes); !reflect.DeepEqual(got, want) {
			t.Fatalf("fail=%d (fault was %v): reopened state diverged from the live index", fail, runErr)
		}
		if rec := re.Recovery(); rec.Replayed != 0 {
			t.Fatalf("fail=%d: replay after a successful Save replayed %d records", fail, rec.Replayed)
		}
		re.Close()
	}
}
