package promips

// Property: for a random update sequence, an index recovered by journal
// replay (crash without Save, then Open) answers Search and Exact
// byte-identically — ids, inner-product bits, stats — to an index that
// persisted the same updates with a clean Save before reopening.

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"promips/internal/fsutil"
)

func TestWALReplayEquivalence(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		seed := int64(900 + trial)
		r := rand.New(rand.NewSource(seed))
		data := randData(r, 120, 10)

		build := func(dir string) *Index {
			ix, err := Build(data, Options{Dir: dir, Seed: seed, M: 5})
			if err != nil {
				t.Fatal(err)
			}
			if err := ix.Save(); err != nil {
				t.Fatal(err)
			}
			return ix
		}
		dirA, dirB := t.TempDir(), t.TempDir()
		ixA, ixB := build(dirA), build(dirB)

		// One random update sequence, applied to both.
		nUpdates := 5 + r.Intn(20)
		acked := 0
		for u := 0; u < nUpdates; u++ {
			if r.Intn(3) == 0 {
				id := uint32(r.Intn(ixA.LiveCount() + 8)) // sometimes absent/deleted
				okA, errA := ixA.DeleteChecked(id)
				okB, errB := ixB.DeleteChecked(id)
				if errA != nil || errB != nil || okA != okB {
					t.Fatalf("trial %d: delete(%d) diverged: %v/%v %v/%v", trial, id, okA, okB, errA, errB)
				}
				if okA {
					acked++
				}
			} else {
				v := randData(r, 1, 10)[0]
				idA, errA := ixA.Insert(v)
				idB, errB := ixB.Insert(v)
				if errA != nil || errB != nil || idA != idB {
					t.Fatalf("trial %d: insert diverged: %d/%d %v/%v", trial, idA, idB, errA, errB)
				}
				acked++
			}
		}

		// A crashes (no Save — only the journal has the updates);
		// B saves cleanly. Close releases fds but never touches the log.
		if err := ixA.Close(); err != nil {
			t.Fatal(err)
		}
		if err := ixB.Save(); err != nil {
			t.Fatal(err)
		}
		if err := ixB.Close(); err != nil {
			t.Fatal(err)
		}

		reA, err := Open(dirA)
		if err != nil {
			t.Fatalf("trial %d: open after crash: %v", trial, err)
		}
		reB, err := Open(dirB)
		if err != nil {
			t.Fatal(err)
		}
		if rec := reA.Recovery(); rec.Replayed != acked {
			t.Fatalf("trial %d: replayed %d of %d acked updates (%+v)", trial, rec.Replayed, acked, rec)
		}
		if rec := reB.Recovery(); rec.Replayed != 0 || rec.Skipped != 0 {
			t.Fatalf("trial %d: cleanly saved index recovered %+v", trial, rec)
		}
		if reA.JournalLen() != acked || reB.JournalLen() != 0 {
			t.Fatalf("trial %d: journal lengths %d/%d, want %d/0", trial, reA.JournalLen(), reB.JournalLen(), acked)
		}

		ctx := context.Background()
		for qi := 0; qi < 12; qi++ {
			q := randData(r, 1, 10)[0]
			resA, statsA, errA := reA.Search(ctx, q, 10)
			resB, statsB, errB := reB.Search(ctx, q, 10)
			if errA != nil || errB != nil {
				t.Fatalf("trial %d q%d: search: %v / %v", trial, qi, errA, errB)
			}
			if !reflect.DeepEqual(resA, resB) {
				t.Fatalf("trial %d q%d: replayed Search diverged:\n%v\n%v", trial, qi, resA, resB)
			}
			if !reflect.DeepEqual(statsA, statsB) {
				t.Fatalf("trial %d q%d: replayed SearchStats diverged:\n%+v\n%+v", trial, qi, statsA, statsB)
			}
			exA, errA := reA.Exact(context.Background(), q, 10)
			exB, errB := reB.Exact(context.Background(), q, 10)
			if errA != nil || errB != nil || !reflect.DeepEqual(exA, exB) {
				t.Fatalf("trial %d q%d: replayed Exact diverged (%v/%v):\n%v\n%v", trial, qi, errA, errB, exA, exB)
			}
		}
		reA.Close()
		reB.Close()
	}
}

// TestCompactFailureKeepsAcksDurable is the regression test for the
// handover hole a review found: when Compact's persist step fails, the
// index must be untouched — still journaling into the generation CURRENT
// durably names — so updates acknowledged after the failed Compact
// survive a crash. (The broken design swapped the journal target to the
// not-yet-named new generation, whose wal.log a recovery sweep deletes.)
func TestCompactFailureKeepsAcksDurable(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	data := randData(r, 80, 6)

	// Measure how many fs ops a fault-free Build+Save+Compact performs, so
	// the sweep below covers exactly Compact's op range.
	counter := &fsutil.FaultFS{}
	ix0, err := Build(data, Options{Dir: t.TempDir(), Seed: 92, M: 4, fs: counter})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix0.Save(); err != nil {
		t.Fatal(err)
	}
	preOps := counter.Ops()
	if _, err := ix0.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	compactOps := counter.Ops() - preOps
	ix0.Close()

	failed := 0
	for k := 1; k <= compactOps; k++ {
		dir := t.TempDir()
		ffs := &fsutil.FaultFS{}
		ix, err := Build(data, Options{Dir: dir, Seed: 92, M: 4, fs: ffs})
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Save(); err != nil {
			t.Fatal(err)
		}
		ffs.FailAt = ffs.Ops() + k
		_, cerr := ix.Compact(context.Background())
		ffs.FailAt = 0
		if cerr == nil {
			ix.Close()
			t.Fatalf("offset %d: Compact absorbed the fault silently", k)
		}
		failed++

		// Updates acknowledged AFTER the failed Compact must journal into
		// whichever generation a recovery would load — crash and check.
		// One fault point is special: if the CURRENT rename landed but its
		// directory fsync failed (the committed corner), the journal is
		// poisoned — updates must REFUSE acknowledgement rather than
		// promise a durability the pointer cannot back — until a Save
		// completes the handover. That is the documented caller protocol:
		// on a poisoned update error, Save and retry.
		id, err := ix.Insert(randData(rand.New(rand.NewSource(93)), 1, 6)[0])
		if err != nil {
			if serr := ix.Save(); serr != nil {
				t.Fatalf("offset %d: Save to heal poisoned journal: %v (insert err: %v)", k, serr, err)
			}
			id, err = ix.Insert(randData(rand.New(rand.NewSource(93)), 1, 6)[0])
			if err != nil {
				t.Fatalf("offset %d: insert after healing Save: %v", k, err)
			}
		}
		if ok, err := ix.DeleteChecked(11); !ok || err != nil {
			t.Fatalf("offset %d: delete after failed compact: %v %v", k, ok, err)
		}
		ix.Close()

		re, err := Open(dir)
		if err != nil {
			t.Fatalf("offset %d: reopen after failed compact + crash: %v", k, err)
		}
		if rec := re.Recovery(); rec.Replayed != 2 {
			re.Close()
			t.Fatalf("offset %d: recovery = %+v, want the 2 post-compact acks replayed", k, rec)
		}
		if re.LiveCount() != 80 || int(id) != 80 {
			re.Close()
			t.Fatalf("offset %d: LiveCount = %d id = %d, want 80/80", k, re.LiveCount(), id)
		}
		re.Close()
	}
	t.Logf("ack durability held across all %d Compact fault offsets", failed)
}

// TestRecoveryTornTail: a journal whose last record is half-written (the
// canonical crash artifact) must reopen with the acknowledged prefix and
// report the truncation.
func TestRecoveryTornTail(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	data := randData(r, 80, 6)
	dir := t.TempDir()
	ix, err := Build(data, Options{Dir: dir, Seed: 78, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(randData(r, 1, 6)[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(randData(r, 1, 6)[0]); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record by chopping bytes off the log's tail.
	walPath := filepath.Join(dir, "wal.log")
	b, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer re.Close()
	rec := re.Recovery()
	if rec.Replayed != 1 || rec.TruncatedBytes == 0 {
		t.Fatalf("recovery = %+v, want 1 replayed insert and a truncated tail", rec)
	}
	if re.LiveCount() != 81 {
		t.Fatalf("LiveCount = %d, want 81 (one of two inserts survives the tear)", re.LiveCount())
	}
	// The truncation healed the log: a re-reopen must be clean.
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if rec := re2.Recovery(); rec.TruncatedBytes != 0 || rec.Replayed != 1 {
		t.Fatalf("second recovery = %+v, want clean replay of 1", rec)
	}
}

// TestFsyncNeverCleanShutdown: under FsyncNever, updates acknowledged
// before a clean Close survive reopen (the journal buffer flushes on
// Close), and the journal never fsyncs on the ack path.
func TestFsyncNeverCleanShutdown(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	data := randData(r, 70, 6)
	dir := t.TempDir()
	ix, err := Build(data, Options{Dir: dir, Seed: 56, M: 4, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	id, err := ix.Insert(randData(r, 1, 6)[0])
	if err != nil {
		t.Fatal(err)
	}
	if ok := ix.Delete(3); !ok {
		t.Fatal("delete")
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Options().Fsync != FsyncNever {
		t.Fatalf("policy not persisted: %v", re.Options().Fsync)
	}
	if rec := re.Recovery(); rec.Replayed != 2 {
		t.Fatalf("recovery = %+v, want 2 replayed", rec)
	}
	if re.LiveCount() != 70 || int(id) != 70 {
		t.Fatalf("LiveCount = %d id = %d", re.LiveCount(), id)
	}
}

// TestFsyncDisabledNoJournal: FsyncDisabled writes no journal and Open
// recovers only the last Save.
func TestFsyncDisabledNoJournal(t *testing.T) {
	r := rand.New(rand.NewSource(65))
	data := randData(r, 60, 6)
	dir := t.TempDir()
	ix, err := Build(data, Options{Dir: dir, Seed: 66, M: 4, Fsync: FsyncDisabled})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(randData(r, 1, 6)[0]); err != nil {
		t.Fatal(err)
	}
	if ix.JournalLen() != 0 {
		t.Fatalf("JournalLen = %d with journal disabled", ix.JournalLen())
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal.log")); !os.IsNotExist(err) {
		t.Fatalf("wal.log exists under FsyncDisabled: %v", err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.LiveCount() != 60 {
		t.Fatalf("LiveCount = %d: the unsaved insert should be lost by policy", re.LiveCount())
	}
}
