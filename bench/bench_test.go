package bench

import (
	"fmt"
	"strings"
	"testing"

	"promips/internal/dataset"
)

// tinyEnv builds a small, fast environment on the Netflix generator.
func tinyEnv(t *testing.T, n, queries int) *Env {
	t.Helper()
	env, err := NewEnv(Config{
		Spec: dataset.Netflix(), N: n, NumQueries: queries,
		Seed: 42, WorkDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { env.Close() })
	return env
}

func TestTableFormatting(t *testing.T) {
	tb := Table{Title: "T", Header: []string{"a", "long-column"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	s := tb.String()
	if !strings.Contains(s, "== T ==") || !strings.Contains(s, "long-column") {
		t.Fatalf("table output:\n%s", s)
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 5 {
		t.Fatalf("expected 5 lines, got:\n%s", s)
	}
}

func TestKs(t *testing.T) {
	ks := Ks()
	if len(ks) != 10 || ks[0] != 10 || ks[9] != 100 {
		t.Fatalf("Ks() = %v", ks)
	}
}

func TestGroundTruthPrefixReuse(t *testing.T) {
	env := tinyEnv(t, 300, 4)
	gt10 := env.GroundTruth(10)
	gt5 := env.GroundTruth(5)
	if gt5.K != 5 || len(gt5.TopK[0]) != 5 {
		t.Fatalf("prefix ground truth shape wrong")
	}
	for qi := range gt5.TopK {
		for i := 0; i < 5; i++ {
			if gt5.TopK[qi][i] != gt10.TopK[qi][i] {
				t.Fatal("prefix ground truth differs from full")
			}
		}
	}
}

func TestBuildUnknownMethod(t *testing.T) {
	env := tinyEnv(t, 100, 2)
	if _, err := env.Build("FAISS"); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestMeasureProMIPS(t *testing.T) {
	env := tinyEnv(t, 800, 5)
	b, err := env.BuildProMIPS(ProMIPSOptions{M: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Method.Close()
	p, err := env.Measure(b.Method, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ratio < 0.5 || p.Ratio > 1.0001 {
		t.Fatalf("ratio = %v", p.Ratio)
	}
	if p.Recall < 0 || p.Recall > 1.0001 {
		t.Fatalf("recall = %v", p.Recall)
	}
	if p.Pages <= 0 || p.CPUms < 0 {
		t.Fatalf("pages=%v cpu=%v", p.Pages, p.CPUms)
	}
	if p.TotalMs < p.CPUms {
		t.Fatal("total time below CPU time")
	}
}

// End-to-end smoke test: all four methods build and answer queries on a
// small environment, and Fig 4 + the sweep tables render.
func TestAllMethodsEndToEnd(t *testing.T) {
	env := tinyEnv(t, 1200, 4)
	builts, err := env.BuildAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, b := range builts {
			b.Method.Close()
		}
	}()
	fig4 := Fig4(env, builts)
	if len(fig4.Rows) != 4 {
		t.Fatalf("Fig4 rows = %d", len(fig4.Rows))
	}
	tables, err := Sweep(env, builts, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	for i, tb := range tables {
		if len(tb.Rows) != 1 || len(tb.Rows[0]) != 5 {
			t.Fatalf("table %d shape wrong:\n%s", i, tb.String())
		}
	}
	// Every method should reach a sane ratio on this easy workload.
	for col := 1; col <= 4; col++ {
		var ratio float64
		if _, err := fmtSscan(tables[0].Rows[0][col], &ratio); err != nil {
			t.Fatal(err)
		}
		if ratio < 0.55 {
			t.Fatalf("method %s ratio %v too low:\n%s", tables[0].Header[col], ratio, tables[0].String())
		}
	}
}

func TestFig10And11(t *testing.T) {
	env := tinyEnv(t, 600, 3)
	t10, err := Fig10(env, []float64{0.7, 0.9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(t10.Rows) != 2 {
		t.Fatalf("Fig10 rows:\n%s", t10.String())
	}
	t11, err := Fig11(env, []float64{0.3, 0.7}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(t11.Rows) != 2 {
		t.Fatalf("Fig11 rows:\n%s", t11.String())
	}
}

func TestAblations(t *testing.T) {
	env := tinyEnv(t, 600, 3)
	qp, err := AblationQuickProbe(env, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(qp.Rows) != 1 {
		t.Fatalf("quick-probe ablation:\n%s", qp.String())
	}
	part, err := AblationPartition(env, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Rows) != 1 {
		t.Fatalf("partition ablation:\n%s", part.String())
	}
	pd, err := AblationProjDim(env, []int{4, 6}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pd.Rows) != 2 {
		t.Fatalf("projdim ablation:\n%s", pd.String())
	}
}

func TestTable2Scaling(t *testing.T) {
	tb, err := Table2Scaling(Config{Spec: dataset.Netflix(), NumQueries: 3, Seed: 1},
		[]int{300, 600}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("scaling table:\n%s", tb.String())
	}
}

// fmtSscan wraps fmt.Sscan for test readability.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
