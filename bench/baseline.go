package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"promips/internal/core"
	"promips/internal/dataset"
)

// This file is the repo's performance measurement rail: every perf PR is
// judged against a recorded BENCH_<label>.json produced by the same harness
// (cmd/benchrunner -out). The headline series is the sequential Search hot
// path (ns/op, allocs/op, B/op) plus the paper's Page Access metric and the
// concurrent-serving QPS curve, all on the default synthetic workload so
// runs are comparable across commits.

// PerfConfig selects the workload RunPerf measures. Zero values take the
// default synthetic workload: the Netflix analogue at n=4000 with 100
// member queries at k=10, seed 1 — the exact workload BenchmarkSearch and
// cmd/benchrunner -out use, so the two harnesses are comparable.
type PerfConfig struct {
	Label      string
	N          int
	NumQueries int
	K          int
	Seed       int64
	Workers    []int // worker counts for the QPS curve; nil = 1,2,4,8
}

func (c *PerfConfig) normalize() {
	if c.Label == "" {
		c.Label = "dev"
	}
	if c.N <= 0 {
		c.N = 4000
	}
	if c.NumQueries <= 0 {
		c.NumQueries = 100
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers == nil {
		c.Workers = []int{1, 2, 4, 8}
	}
}

// PerfPoint is one benchmark loop's reduced measurements.
type PerfPoint struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	PagesPerOp  float64 `json:"pages_per_op"`
	CandsPerOp  float64 `json:"candidates_per_op"`
}

// BatchPoint is the concurrent-serving throughput at one worker count.
type BatchPoint struct {
	Workers int     `json:"workers"`
	QPS     float64 `json:"qps"`
}

// PerfReport is the JSON document benchrunner -out emits.
type PerfReport struct {
	Label     string `json:"label"`
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	Dataset    string `json:"dataset"`
	N          int    `json:"n"`
	D          int    `json:"d"`
	M          int    `json:"m"`
	K          int    `json:"k"`
	NumQueries int    `json:"num_queries"`
	Seed       int64  `json:"seed"`

	Search      PerfPoint    `json:"search"`
	Incremental PerfPoint    `json:"search_incremental"`
	Batch       []BatchPoint `json:"batch_qps"`

	// Baseline embeds the prior run this one is compared against
	// (benchrunner -baseline), and Delta the relative change of the headline
	// Search metrics: negative ns/op or allocs/op percentages are
	// improvements.
	Baseline *PerfReport `json:"baseline,omitempty"`
	Delta    *PerfDelta  `json:"delta_vs_baseline,omitempty"`
}

// PerfDelta is the relative change of the headline metrics vs the baseline,
// in percent (negative = faster / fewer).
type PerfDelta struct {
	SearchNsPerOpPct     float64 `json:"search_ns_per_op_pct"`
	SearchAllocsPerOpPct float64 `json:"search_allocs_per_op_pct"`
	SearchBytesPerOpPct  float64 `json:"search_bytes_per_op_pct"`
	SearchPagesPerOpPct  float64 `json:"search_pages_per_op_pct"`
}

// RunPerf measures the query hot path on the default synthetic workload and
// returns the report. The environment is built once; the buffer pool is
// warmed before any timed loop so every run measures the steady state.
func RunPerf(cfg PerfConfig) (*PerfReport, error) {
	cfg.normalize()
	env, err := NewEnv(Config{Spec: defaultSpec(), N: cfg.N, NumQueries: cfg.NumQueries, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	b, err := env.BuildProMIPS(ProMIPSOptions{})
	if err != nil {
		return nil, err
	}
	defer b.Method.Close()
	ix := b.Method.(proMIPSAdapter).ix

	rep := &PerfReport{
		Label:      cfg.Label,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Dataset:    env.Cfg.Spec.Name,
		N:          len(env.Data),
		D:          env.Cfg.Spec.D,
		M:          ix.M(),
		K:          cfg.K,
		NumQueries: len(env.Queries),
		Seed:       cfg.Seed,
	}

	// Warm the buffer pool: one untimed pass over the whole workload.
	for _, q := range env.Queries {
		if _, _, err := ix.Search(q, cfg.K); err != nil {
			return nil, err
		}
	}

	rep.Search, err = measureSearch(env, cfg.K, func(q []float32, k int) error {
		_, _, err := ix.Search(q, k)
		return err
	}, func(q []float32, k int) (core.SearchStats, error) {
		_, st, err := ix.Search(q, k)
		return st, err
	})
	if err != nil {
		return nil, err
	}
	rep.Incremental, err = measureSearch(env, cfg.K, func(q []float32, k int) error {
		_, _, err := ix.SearchIncremental(q, k)
		return err
	}, func(q []float32, k int) (core.SearchStats, error) {
		_, st, err := ix.SearchIncremental(q, k)
		return st, err
	})
	if err != nil {
		return nil, err
	}

	for _, w := range cfg.Workers {
		start := time.Now()
		if _, _, err := ix.SearchBatch(context.Background(), env.Queries, cfg.K, w, core.SearchParams{}); err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds()
		rep.Batch = append(rep.Batch, BatchPoint{Workers: w, QPS: float64(len(env.Queries)) / elapsed})
	}
	return rep, nil
}

// measureSearch times one query entry point with testing.Benchmark and
// augments the result with the paper's per-query page/candidate averages.
func measureSearch(env *Env, k int, run func(q []float32, k int) error,
	stat func(q []float32, k int) (core.SearchStats, error)) (PerfPoint, error) {
	var loopErr error
	res := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			q := env.Queries[i%len(env.Queries)]
			if err := run(q, k); err != nil {
				loopErr = err
				tb.FailNow()
			}
		}
	})
	if loopErr != nil {
		return PerfPoint{}, loopErr
	}
	var pages, cands float64
	for _, q := range env.Queries {
		st, err := stat(q, k)
		if err != nil {
			return PerfPoint{}, err
		}
		pages += float64(st.PageAccesses)
		cands += float64(st.Candidates)
	}
	nq := float64(len(env.Queries))
	return PerfPoint{
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Iterations:  res.N,
		PagesPerOp:  pages / nq,
		CandsPerOp:  cands / nq,
	}, nil
}

// defaultSpec is the default synthetic workload's dataset: the Netflix
// analogue (d=300, 4KB pages, m=6).
func defaultSpec() dataset.Spec { return dataset.Netflix() }

// CompareToBaseline embeds prior into rep and fills the headline deltas.
func (rep *PerfReport) CompareToBaseline(prior *PerfReport) {
	// Strip any nested baseline so reports don't grow into chains.
	p := *prior
	p.Baseline, p.Delta = nil, nil
	rep.Baseline = &p
	rep.Delta = &PerfDelta{
		SearchNsPerOpPct:     pct(float64(rep.Search.NsPerOp), float64(p.Search.NsPerOp)),
		SearchAllocsPerOpPct: pct(float64(rep.Search.AllocsPerOp), float64(p.Search.AllocsPerOp)),
		SearchBytesPerOpPct:  pct(float64(rep.Search.BytesPerOp), float64(p.Search.BytesPerOp)),
		SearchPagesPerOpPct:  pct(rep.Search.PagesPerOp, p.Search.PagesPerOp),
	}
}

func pct(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

// WriteFile marshals the report to path as indented JSON.
func (rep *PerfReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadPerfReport reads a report written by WriteFile.
func LoadPerfReport(path string) (*PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return &rep, nil
}
