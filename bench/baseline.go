package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"promips/internal/core"
	"promips/internal/dataset"
)

// This file is the repo's performance measurement rail: every perf PR is
// judged against a recorded BENCH_<label>.json produced by the same harness
// (cmd/benchrunner -out). The headline series is the sequential Search hot
// path (ns/op, allocs/op, B/op) plus the paper's Page Access metric and the
// concurrent-serving QPS curve, all on the default synthetic workload so
// runs are comparable across commits.

// PerfConfig selects the workload RunPerf measures. Zero values take the
// default synthetic workload: the Netflix analogue at n=4000 with 100
// member queries at k=10, seed 1 — the exact workload BenchmarkSearch and
// cmd/benchrunner -out use, so the two harnesses are comparable.
type PerfConfig struct {
	Label      string
	N          int
	NumQueries int
	K          int
	Seed       int64
	Workers    []int // worker counts for the QPS curve; nil = 1,2,4,8
}

func (c *PerfConfig) normalize() {
	if c.Label == "" {
		c.Label = "dev"
	}
	if c.N <= 0 {
		c.N = 4000
	}
	if c.NumQueries <= 0 {
		c.NumQueries = 100
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers == nil {
		c.Workers = []int{1, 2, 4, 8}
	}
}

// PerfPoint is one benchmark loop's reduced measurements.
type PerfPoint struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	PagesPerOp  float64 `json:"pages_per_op"`
	CandsPerOp  float64 `json:"candidates_per_op"`
}

// BatchPoint is the concurrent-serving throughput at one worker count,
// with the per-worker diagnostics that make a flat or inverted scaling
// curve explainable from the report alone.
type BatchPoint struct {
	Workers       int     `json:"workers"`
	QPS           float64 `json:"qps"`
	Speedup       float64 `json:"speedup_vs_1,omitempty"`
	PagesPerQuery float64 `json:"pages_per_query,omitempty"`
	HitRatio      float64 `json:"hit_ratio,omitempty"`
}

// BatchModel records the I/O model the disk batch curve was measured
// under: a buffer pool deliberately smaller than the working set plus a
// simulated per-miss disk latency (the paper's own per-page cost model,
// PageCostMs). Under this model worker scaling measures what the sharded
// pager actually fixes — misses overlapping instead of serializing — and
// stays measurable on single-core CI machines, where a warm all-in-RAM
// curve cannot scale no matter the locking.
type BatchModel struct {
	PoolPages     int `json:"pool_pages"`
	MissLatencyUS int `json:"miss_latency_us"`
}

// PrefilterEffect is the A/B of the PQ-sketch subsystem (pre-ranking +
// exact bound pruning) over the whole query workload.
type PrefilterEffect struct {
	CandidatesWith    float64 `json:"candidates_with"`
	CandidatesWithout float64 `json:"candidates_without"`
	PagesWith         float64 `json:"pages_with"`
	PagesWithout      float64 `json:"pages_without"`
	PrerankedPerQuery float64 `json:"preranked_per_query"`
	PrunedPerQuery    float64 `json:"pruned_per_query"`
}

// InsertAckReport records what one acknowledged-durable update costs under
// FsyncAlways: serially (one updater pays one whole fsync per ack) and with
// Updaters concurrent inserters, where the group-commit sequencer coalesces
// every ack that overlaps an in-flight fsync onto the next one.
// AmortizationX = serial/parallel is the headline: how many fsyncs' worth of
// latency the coalescing saves per ack at this concurrency. FsyncNever is
// the no-durability floor the serial number is read against.
type InsertAckReport struct {
	Updaters          int     `json:"updaters"`
	SerialNsPerOp     int64   `json:"serial_ns_per_op"`
	ParallelNsPerOp   int64   `json:"parallel_ns_per_op"`
	AmortizationX     float64 `json:"amortization_x"`
	FsyncNeverNsPerOp int64   `json:"fsync_never_ns_per_op"`
}

// GatePoint is the reduced-workload pages/query measurement the CI perf
// gate re-runs and compares against (see TestPagesPerQueryGate): small
// enough to run on every test invocation, deterministic for a fixed seed.
type GatePoint struct {
	N             int     `json:"n"`
	NumQueries    int     `json:"num_queries"`
	K             int     `json:"k"`
	Seed          int64   `json:"seed"`
	PagesPerQuery float64 `json:"pages_per_query"`
}

// PerfReport is the JSON document benchrunner -out emits.
type PerfReport struct {
	Label      string `json:"label"`
	Timestamp  string `json:"timestamp"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`

	Dataset    string `json:"dataset"`
	N          int    `json:"n"`
	D          int    `json:"d"`
	M          int    `json:"m"`
	K          int    `json:"k"`
	NumQueries int    `json:"num_queries"`
	Seed       int64  `json:"seed"`

	Search      PerfPoint `json:"search"`
	Incremental PerfPoint `json:"search_incremental"`
	// Filtered is the same hot path with a WithFilter predicate rejecting
	// half the ids — the filtered-serving workload promipsd exposes.
	Filtered PerfPoint `json:"search_filtered"`
	// InsertAck tracks the acknowledged-update cost under group commit.
	InsertAck *InsertAckReport `json:"insert_ack,omitempty"`
	// Batch is the disk-model concurrent-serving curve (see BatchModel);
	// BatchWarm is the warm all-in-RAM curve earlier reports called
	// batch_qps, kept for cross-report continuity.
	Batch      []BatchPoint `json:"batch_qps"`
	BatchModel *BatchModel  `json:"batch_model,omitempty"`
	BatchWarm  []BatchPoint `json:"batch_qps_warm,omitempty"`

	// Shards is the scale-out curve: disk-model SearchBatch QPS of the
	// same workload at growing shard counts under the node-per-shard
	// model — each shard owns a standard disk-model pool and miss
	// channel (see MeasureShardScaling).
	Shards []ShardPoint `json:"shard_scaling,omitempty"`

	// DegradedSearch is the failure-isolation tail-latency measurement:
	// one slow shard, with and without per-shard deadlines (see
	// MeasureDegradedSearch).
	DegradedSearch []DegradedPoint `json:"degraded_search,omitempty"`

	// Mixed is the non-blocking-updates measurement: search p50/p99 under
	// a concurrent insert stream driving freezes, seg-file flushes and
	// (per cell) background compaction, against the same searchers
	// read-only (see MeasureMixedWorkload). The acceptance headline is
	// each cell's mixed-p99 / read-only-p99 ratio.
	Mixed []MixedPoint `json:"mixed_workload,omitempty"`

	Prefilter *PrefilterEffect `json:"pq_prefilter,omitempty"`
	Gate      *GatePoint       `json:"gate,omitempty"`

	// Baseline embeds the prior run this one is compared against
	// (benchrunner -baseline), and Delta the relative change of the headline
	// Search metrics: negative ns/op or allocs/op percentages are
	// improvements.
	Baseline *PerfReport `json:"baseline,omitempty"`
	Delta    *PerfDelta  `json:"delta_vs_baseline,omitempty"`
}

// PerfDelta is the relative change of the headline metrics vs the baseline,
// in percent (negative = faster / fewer).
type PerfDelta struct {
	SearchNsPerOpPct     float64 `json:"search_ns_per_op_pct"`
	SearchAllocsPerOpPct float64 `json:"search_allocs_per_op_pct"`
	SearchBytesPerOpPct  float64 `json:"search_bytes_per_op_pct"`
	SearchPagesPerOpPct  float64 `json:"search_pages_per_op_pct"`
}

// RunPerf measures the query hot path on the default synthetic workload and
// returns the report. The environment is built once; the buffer pool is
// warmed before any timed loop so every run measures the steady state.
// ctx bounds the whole run (benchrunner's -timeout): it is threaded into
// every query the harness issues and checked between measurement stages.
func RunPerf(ctx context.Context, cfg PerfConfig) (*PerfReport, error) {
	cfg.normalize()
	env, err := NewEnv(Config{Spec: defaultSpec(), N: cfg.N, NumQueries: cfg.NumQueries, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	b, err := env.BuildProMIPS(ProMIPSOptions{})
	if err != nil {
		return nil, err
	}
	defer b.Method.Close()
	ix := b.Method.(proMIPSAdapter).ix

	rep := &PerfReport{
		Label:      cfg.Label,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Dataset:    env.Cfg.Spec.Name,
		N:          len(env.Data),
		D:          env.Cfg.Spec.D,
		M:          ix.M(),
		K:          cfg.K,
		NumQueries: len(env.Queries),
		Seed:       cfg.Seed,
	}

	// Warm the buffer pool: one untimed pass over the whole workload.
	for _, q := range env.Queries {
		if _, _, err := ix.Search(q, cfg.K); err != nil {
			return nil, err
		}
	}

	rep.Search, err = measureSearch(env, cfg.K, func(q []float32, k int) error {
		_, _, err := ix.Search(q, k)
		return err
	}, func(q []float32, k int) (core.SearchStats, error) {
		_, st, err := ix.Search(q, k)
		return st, err
	})
	if err != nil {
		return nil, err
	}
	rep.Incremental, err = measureSearch(env, cfg.K, func(q []float32, k int) error {
		_, _, err := ix.SearchIncremental(q, k)
		return err
	}, func(q []float32, k int) (core.SearchStats, error) {
		_, st, err := ix.SearchIncremental(q, k)
		return st, err
	})
	if err != nil {
		return nil, err
	}

	// Filtered hot path: the same workload with a predicate rejecting every
	// even id — the filtered-serving shape (WithFilter / promipsd requests
	// carrying a tenant predicate). Tracked so a regression in the
	// filter-aware candidate path shows up in the trajectory, not just in
	// unit tests.
	filtered := core.SearchParams{Filter: func(id uint32) bool { return id%2 == 1 }}
	rep.Filtered, err = measureSearch(env, cfg.K, func(q []float32, k int) error {
		_, _, err := ix.SearchContext(ctx, q, k, filtered)
		return err
	}, func(q []float32, k int) (core.SearchStats, error) {
		_, st, err := ix.SearchContext(ctx, q, k, filtered)
		return st, err
	})
	if err != nil {
		return nil, err
	}

	// PQ-prefilter A/B: the same warm index and workload with the sketch
	// subsystem (pre-ranking + exact bound pruning) on and off.
	rep.Prefilter, err = measurePrefilter(ctx, env, ix, cfg.K)
	if err != nil {
		return nil, err
	}

	// Warm in-RAM concurrent curve (cross-report continuity; on a
	// single-core machine it is flat by construction).
	rep.BatchWarm, err = measureBatchCurve(ctx, env, ix, cfg.K, cfg.Workers)
	if err != nil {
		return nil, err
	}

	// Headline concurrent curve under the disk-resident model: a pool far
	// smaller than the working set plus the paper's per-page cost
	// (PageCostMs) as simulated miss latency, on a dedicated index build.
	// Worker scaling here measures miss overlap — the property the sharded
	// pager's lock-free miss path provides.
	rep.BatchModel = &BatchModel{PoolPages: DiskModelPoolPages, MissLatencyUS: int(DiskModelMissLatency / time.Microsecond)}
	bDisk, err := env.BuildProMIPS(ProMIPSOptions{PoolSize: DiskModelPoolPages, MissLatency: DiskModelMissLatency})
	if err != nil {
		return nil, err
	}
	defer bDisk.Method.Close()
	ixDisk := bDisk.Method.(proMIPSAdapter).ix
	// One settling pass so the first measured point does not pay the
	// fully-cold pool alone.
	if _, _, err := ixDisk.SearchBatch(ctx, env.Queries, cfg.K, 4, core.SearchParams{}); err != nil {
		return nil, err
	}
	rep.Batch, err = measureBatchCurve(ctx, env, ixDisk, cfg.K, cfg.Workers)
	if err != nil {
		return nil, err
	}

	// Scale-out curve: the disk model at 8 workers across shard counts,
	// one standard pool + miss channel per shard (node-per-shard model).
	rep.Shards, err = MeasureShardScaling(ctx, env, []int{1, 2, 4, 8}, cfg.K, 8, 3)
	if err != nil {
		return nil, err
	}

	// Failure-isolation tail latency: one slow shard with and without
	// per-shard deadlines, on a 4-shard build of the same workload.
	rep.DegradedSearch, err = MeasureDegradedSearch(ctx, env, 4, cfg.K)
	if err != nil {
		return nil, err
	}

	// Acknowledged-update cost under group commit: serial vs 8 concurrent
	// updaters under FsyncAlways, with the FsyncNever floor.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep.InsertAck, err = MeasureInsertAck(8, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Non-blocking updates: the search tail under a live insert stream
	// (and background auto-compaction), against the read-only tail.
	rep.Mixed, err = MeasureMixedWorkload(ctx, env, nil, cfg.K)
	if err != nil {
		return nil, err
	}

	// Reduced-workload gate point for the CI pages/query regression gate.
	rep.Gate, err = measureGate(cfg.Seed, cfg.K)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// MeasureInsertAck times one acknowledged Insert under FsyncAlways with a
// single updater and with `updaters` concurrent ones (the group-commit
// amortization measurement BenchmarkInsertAckParallel runs interactively),
// plus the FsyncNever floor. Exported so benchrunner's report and ad-hoc
// measurements share one harness.
func MeasureInsertAck(updaters int, seed int64) (*InsertAckReport, error) {
	r := rand.New(rand.NewSource(seed))
	data := make([][]float32, 500)
	for i := range data {
		v := make([]float32, 50)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}
	run := func(fsync core.FsyncPolicy, par int) (int64, error) {
		dir, err := os.MkdirTemp("", "promips-ackbench-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		ix, err := core.Build(data, dir, core.Options{M: 5, Seed: seed + 1, Fsync: fsync})
		if err != nil {
			return 0, err
		}
		defer ix.Close()
		var loopErr error
		res := testing.Benchmark(func(tb *testing.B) {
			if par <= 1 {
				for i := 0; i < tb.N; i++ {
					if _, err := ix.Insert(data[i%len(data)]); err != nil {
						loopErr = err
						tb.FailNow()
					}
				}
				return
			}
			// RunParallel spawns SetParallelism×GOMAXPROCS goroutines; round
			// up so `par` concurrent updaters exist even on one core — the
			// coalescing being measured happens while goroutines BLOCK in
			// fsync, so it does not need parallel CPUs.
			tb.SetParallelism((par + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
			tb.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := ix.Insert(data[i%len(data)]); err != nil {
						loopErr = err
						break
					}
					i++
				}
			})
		})
		if loopErr != nil {
			return 0, loopErr
		}
		return res.NsPerOp(), nil
	}
	rep := &InsertAckReport{Updaters: updaters}
	var err error
	if rep.SerialNsPerOp, err = run(core.FsyncAlways, 1); err != nil {
		return nil, err
	}
	if rep.ParallelNsPerOp, err = run(core.FsyncAlways, updaters); err != nil {
		return nil, err
	}
	if rep.FsyncNeverNsPerOp, err = run(core.FsyncNever, 1); err != nil {
		return nil, err
	}
	if rep.ParallelNsPerOp > 0 {
		rep.AmortizationX = float64(rep.SerialNsPerOp) / float64(rep.ParallelNsPerOp)
	}
	return rep, nil
}

// Disk-model parameters of the headline batch curve: the pool covers a
// fraction of the default workload's working set and each miss costs the
// paper's per-page charge (PageCostMs = 0.1ms).
const (
	DiskModelPoolPages   = 128
	DiskModelMissLatency = time.Duration(PageCostMs * float64(time.Millisecond))
)

// measureBatchCurve pushes the whole query workload through SearchBatch at
// each worker count, recording QPS, speedup vs the first count, per-query
// pages and the buffer-pool hit ratio over the interval.
func measureBatchCurve(ctx context.Context, env *Env, ix *core.Index, k int, workers []int) ([]BatchPoint, error) {
	var out []BatchPoint
	var base float64
	for _, w := range workers {
		before := ix.CacheStats()
		start := time.Now()
		_, stats, err := ix.SearchBatch(ctx, env.Queries, k, w, core.SearchParams{})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds()
		interval := ix.CacheStats().Sub(before)
		var pages float64
		for _, st := range stats {
			pages += float64(st.PageAccesses)
		}
		nq := float64(len(env.Queries))
		qps := nq / elapsed
		if base == 0 {
			base = qps
		}
		out = append(out, BatchPoint{
			Workers:       w,
			QPS:           qps,
			Speedup:       qps / base,
			PagesPerQuery: pages / nq,
			HitRatio:      interval.HitRatio(),
		})
	}
	return out, nil
}

// measurePrefilter runs the workload with the PQ-sketch subsystem off and
// on, recording verified candidates and pages per query for both.
func measurePrefilter(ctx context.Context, env *Env, ix *core.Index, k int) (*PrefilterEffect, error) {
	eff := &PrefilterEffect{}
	for _, noPrerank := range []bool{true, false} {
		var cands, pages, preranked, pruned float64
		for _, q := range env.Queries {
			_, st, err := ix.SearchContext(ctx, q, k, core.SearchParams{NoPrerank: noPrerank})
			if err != nil {
				return nil, err
			}
			cands += float64(st.Candidates)
			pages += float64(st.PageAccesses)
			preranked += float64(st.Preranked)
			pruned += float64(st.NormPruned)
		}
		nq := float64(len(env.Queries))
		if noPrerank {
			eff.CandidatesWithout = cands / nq
			eff.PagesWithout = pages / nq
		} else {
			eff.CandidatesWith = cands / nq
			eff.PagesWith = pages / nq
			eff.PrerankedPerQuery = preranked / nq
			eff.PrunedPerQuery = pruned / nq
		}
	}
	return eff, nil
}

// measureGate measures pages/query on the reduced gate workload — the
// exact measurement TestPagesPerQueryGate re-runs against the committed
// report, shared via GatePagesPerQuery so the two cannot drift apart.
func measureGate(seed int64, k int) (*GatePoint, error) {
	gate := &GatePoint{N: 1500, NumQueries: 25, K: k, Seed: seed}
	pages, err := GatePagesPerQuery(*gate)
	if err != nil {
		return nil, err
	}
	gate.PagesPerQuery = pages
	return gate, nil
}

// GatePagesPerQuery builds the gate workload described by g (ignoring its
// recorded PagesPerQuery) and returns the measured pages/query. Both the
// report generator and the CI gate call this, so the compared numbers come
// from one code path by construction.
func GatePagesPerQuery(g GatePoint) (float64, error) {
	env, err := NewEnv(Config{Spec: defaultSpec(), N: g.N, NumQueries: g.NumQueries, Seed: g.Seed})
	if err != nil {
		return 0, err
	}
	defer env.Close()
	b, err := env.BuildProMIPS(ProMIPSOptions{})
	if err != nil {
		return 0, err
	}
	defer b.Method.Close()
	ix := b.Method.(proMIPSAdapter).ix
	var pages float64
	for _, q := range env.Queries {
		_, st, err := ix.Search(q, g.K)
		if err != nil {
			return 0, err
		}
		pages += float64(st.PageAccesses)
	}
	return pages / float64(len(env.Queries)), nil
}

// measureSearch times one query entry point with testing.Benchmark and
// augments the result with the paper's per-query page/candidate averages.
func measureSearch(env *Env, k int, run func(q []float32, k int) error,
	stat func(q []float32, k int) (core.SearchStats, error)) (PerfPoint, error) {
	var loopErr error
	res := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			q := env.Queries[i%len(env.Queries)]
			if err := run(q, k); err != nil {
				loopErr = err
				tb.FailNow()
			}
		}
	})
	if loopErr != nil {
		return PerfPoint{}, loopErr
	}
	var pages, cands float64
	for _, q := range env.Queries {
		st, err := stat(q, k)
		if err != nil {
			return PerfPoint{}, err
		}
		pages += float64(st.PageAccesses)
		cands += float64(st.Candidates)
	}
	nq := float64(len(env.Queries))
	return PerfPoint{
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Iterations:  res.N,
		PagesPerOp:  pages / nq,
		CandsPerOp:  cands / nq,
	}, nil
}

// defaultSpec is the default synthetic workload's dataset: the Netflix
// analogue (d=300, 4KB pages, m=6).
func defaultSpec() dataset.Spec { return dataset.Netflix() }

// CompareToBaseline embeds prior into rep and fills the headline deltas.
func (rep *PerfReport) CompareToBaseline(prior *PerfReport) {
	// Strip any nested baseline so reports don't grow into chains.
	p := *prior
	p.Baseline, p.Delta = nil, nil
	rep.Baseline = &p
	rep.Delta = &PerfDelta{
		SearchNsPerOpPct:     pct(float64(rep.Search.NsPerOp), float64(p.Search.NsPerOp)),
		SearchAllocsPerOpPct: pct(float64(rep.Search.AllocsPerOp), float64(p.Search.AllocsPerOp)),
		SearchBytesPerOpPct:  pct(float64(rep.Search.BytesPerOp), float64(p.Search.BytesPerOp)),
		SearchPagesPerOpPct:  pct(rep.Search.PagesPerOp, p.Search.PagesPerOp),
	}
}

func pct(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

// WriteFile marshals the report to path as indented JSON.
func (rep *PerfReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadPerfReport reads a report written by WriteFile.
func LoadPerfReport(path string) (*PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return &rep, nil
}
