package bench

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"promips"
	"promips/shard"
)

// Degraded fan-out measurement: what failure isolation buys the serving
// tail. One shard of a K-shard index is made slow (shard.Faults.Delay —
// the deterministic injector the chaos tests use), and the same query
// workload is run three ways:
//
//	healthy             no fault — the baseline fan-out latency;
//	slow_shard_degraded the slow shard, with a per-shard deadline
//	                    (WithShardTimeout): the fan-out abandons the
//	                    laggard and answers degraded from the rest;
//	slow_shard_strict   the slow shard, no deadline: every query waits
//	                    for the slowest shard — the cost of refusing to
//	                    degrade, which is what p99 looks like without
//	                    this PR's isolation.
//
// ShardsAnsweredAvg and AchievedPAvg record the price paid: fewer shards
// and a weaker union-bound guarantee on the degraded answers.

// DegradedPoint is one configuration's measurement.
type DegradedPoint struct {
	Config            string  `json:"config"`
	SlowShardDelayMS  float64 `json:"slow_shard_delay_ms,omitempty"`
	ShardTimeoutMS    float64 `json:"shard_timeout_ms,omitempty"`
	P50US             float64 `json:"p50_us"`
	P99US             float64 `json:"p99_us"`
	QPS               float64 `json:"qps"`
	ShardsAnsweredAvg float64 `json:"shards_answered_avg"`
	AchievedPAvg      float64 `json:"achieved_p_avg"`
	DegradedQueries   int     `json:"degraded_queries"`
}

// Degraded-model parameters: the slow shard serves every op this late,
// and the degraded config abandons a shard after the timeout. The delay
// dominates the healthy in-RAM query time by orders of magnitude, so the
// strict/degraded contrast is structural, not noise.
const (
	DegradedSlowDelay    = 5 * time.Millisecond
	DegradedShardTimeout = 1 * time.Millisecond
)

// MeasureDegradedSearch builds a K-shard in-RAM index over the workload's
// data and measures the three configurations on the same warm index.
func MeasureDegradedSearch(ctx context.Context, e *Env, shards, k int) ([]DegradedPoint, error) {
	ix, err := shard.Build(e.Data, shard.Options{
		Shards: shards,
		Dir:    filepath.Join(e.dir, fmt.Sprintf("degraded-%d", shards)),
		Index: promips.Options{
			C: e.Cfg.C, P: e.Cfg.P, M: e.Cfg.Spec.M,
			PageSize: e.Cfg.Spec.PageSize, Seed: e.Cfg.Seed,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("build %d-shard degraded index: %w", shards, err)
	}
	defer ix.Close()
	// Warm pass: no point pays cold structures inside the timed loop.
	for _, q := range e.Queries {
		if _, _, err := ix.Search(ctx, q, k); err != nil {
			return nil, err
		}
	}

	p := ix.Options().P
	configs := []struct {
		point DegradedPoint
		flt   *shard.Faults
		opts  []promips.SearchOption
	}{
		{point: DegradedPoint{Config: "healthy"}},
		{
			point: DegradedPoint{
				Config:           "slow_shard_degraded",
				SlowShardDelayMS: float64(DegradedSlowDelay) / float64(time.Millisecond),
				ShardTimeoutMS:   float64(DegradedShardTimeout) / float64(time.Millisecond),
			},
			flt:  &shard.Faults{Delay: map[int]time.Duration{0: DegradedSlowDelay}},
			opts: []promips.SearchOption{promips.WithShardTimeout(DegradedShardTimeout)},
		},
		{
			point: DegradedPoint{
				Config:           "slow_shard_strict",
				SlowShardDelayMS: float64(DegradedSlowDelay) / float64(time.Millisecond),
			},
			flt: &shard.Faults{Delay: map[int]time.Duration{0: DegradedSlowDelay}},
		},
	}

	var out []DegradedPoint
	for _, cfg := range configs {
		ix.SetFaults(cfg.flt)
		pt := cfg.point
		lats := make([]time.Duration, 0, len(e.Queries))
		var answered, achieved float64
		start := time.Now()
		for _, q := range e.Queries {
			qs := time.Now()
			_, st, err := ix.Search(ctx, q, k, cfg.opts...)
			if err != nil {
				ix.SetFaults(nil)
				return nil, fmt.Errorf("degraded config %s: %w", pt.Config, err)
			}
			lats = append(lats, time.Since(qs))
			if st.Degraded != nil {
				pt.DegradedQueries++
				answered += float64(st.Degraded.ShardsAnswered)
				achieved += st.Degraded.AchievedP
			} else {
				answered += float64(shards)
				achieved += p
			}
		}
		elapsed := time.Since(start).Seconds()
		ix.SetFaults(nil)
		nq := float64(len(e.Queries))
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pt.P50US = float64(lats[len(lats)/2]) / float64(time.Microsecond)
		pt.P99US = float64(lats[len(lats)*99/100]) / float64(time.Microsecond)
		pt.QPS = nq / elapsed
		pt.ShardsAnsweredAvg = answered / nq
		pt.AchievedPAvg = achieved / nq
		out = append(out, pt)
	}
	return out, nil
}

// DegradedSearch renders MeasureDegradedSearch as a benchrunner table
// (-fig degraded).
func DegradedSearch(ctx context.Context, e *Env, shards, k int) (Table, error) {
	t := Table{
		Title: fmt.Sprintf("Degraded fan-out: one slow shard (%v) vs per-shard deadline (%v) — %s (%d shards, k=%d)",
			DegradedSlowDelay, DegradedShardTimeout, e.Cfg.Spec.Name, shards, k),
		Header: []string{"config", "p50 us", "p99 us", "QPS", "shards answered", "achieved p", "degraded"},
	}
	points, err := MeasureDegradedSearch(ctx, e, shards, k)
	if err != nil {
		return t, err
	}
	for _, p := range points {
		t.AddRow(p.Config, f1(p.P50US), f1(p.P99US), f1(p.QPS),
			fmt.Sprintf("%.2f", p.ShardsAnsweredAvg), fmt.Sprintf("%.3f", p.AchievedPAvg),
			fmt.Sprint(p.DegradedQueries))
	}
	return t, nil
}
