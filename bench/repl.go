package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"time"

	"promips"
	"promips/shard"
)

// Replication transport measurement: what shipping the WAL over HTTP
// costs against reading it off a shared filesystem. The same workload —
// bootstrap a replica, then repeated batches of inserts on the primary,
// each polled to convergence — runs once per transport:
//
//	dir   the follower reads the primary's directory directly
//	      (shared-filesystem deployments, the PR 7 path);
//	http  every byte crosses promipsd's /v1/repl/* wire: JSON state
//	      fingerprints, CRC-checked journal chunks, tar snapshots.
//
// The interesting outputs are bootstrap time (the snapshot copy), the
// converge latency per batch (insert-to-Lag()==0, the replication stream's
// contribution to failover RPO), and shipped records/s. Refreshes should
// be zero on both transports — steady tailing never re-snapshots — so a
// nonzero count flags a fingerprint bug, not a slow wire.

// ReplPoint is one transport's measurement.
type ReplPoint struct {
	Source        string  `json:"source"`
	BootstrapMS   float64 `json:"bootstrap_ms"`
	ConvergeMSAvg float64 `json:"converge_ms_avg"` // per batch
	RecordsPerSec float64 `json:"records_per_sec"`
	PollRounds    int64   `json:"poll_rounds"`
	Refreshes     int64   `json:"refreshes"`
}

// MeasureReplTransport builds one fresh primary per transport (identical
// data and options, so the two rows differ only in the wire) and measures
// the bootstrap plus batches×batchSize replicated inserts.
func MeasureReplTransport(ctx context.Context, e *Env, shards, batches, batchSize int) ([]ReplPoint, error) {
	var out []ReplPoint
	for _, sourceKind := range []string{"dir", "http"} {
		pt, err := measureReplOne(ctx, e, sourceKind, shards, batches, batchSize)
		if err != nil {
			return nil, fmt.Errorf("repl transport %s: %w", sourceKind, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

func measureReplOne(ctx context.Context, e *Env, sourceKind string, shards, batches, batchSize int) (ReplPoint, error) {
	pt := ReplPoint{Source: sourceKind}
	pdir := filepath.Join(e.dir, fmt.Sprintf("repl-%s-primary", sourceKind))
	primary, err := shard.Build(e.Data, shard.Options{
		Shards: shards,
		Dir:    pdir,
		Index: promips.Options{
			C: e.Cfg.C, P: e.Cfg.P, M: e.Cfg.Spec.M,
			PageSize: e.Cfg.Spec.PageSize, Seed: e.Cfg.Seed,
		},
	})
	if err != nil {
		return pt, err
	}
	defer primary.Close()
	if err := primary.Save(); err != nil {
		return pt, err
	}

	var src shard.ReplSource
	if sourceKind == "http" {
		srv := httptest.NewServer(shard.NewReplHandler(pdir, nil))
		defer srv.Close()
		src = shard.NewHTTPSource(srv.URL)
	} else {
		src = shard.NewDirSource(pdir)
	}

	rdir := filepath.Join(e.dir, fmt.Sprintf("repl-%s-replica", sourceKind))
	start := time.Now()
	if err := shard.SnapshotFrom(src, rdir); err != nil {
		return pt, err
	}
	f, err := shard.OpenFollowerFrom(rdir, src)
	if err != nil {
		return pt, err
	}
	defer f.Close()
	if _, err := f.Poll(); err != nil {
		return pt, err
	}
	pt.BootstrapMS = float64(time.Since(start)) / float64(time.Millisecond)

	var convergeTotal time.Duration
	records := 0
	for b := 0; b < batches; b++ {
		if err := ctx.Err(); err != nil {
			return pt, err
		}
		for i := 0; i < batchSize; i++ {
			if _, err := primary.Insert(e.Data[(b*batchSize+i)%len(e.Data)]); err != nil {
				return pt, err
			}
		}
		records += batchSize
		cs := time.Now()
		for {
			if _, err := f.Poll(); err != nil {
				return pt, err
			}
			pt.PollRounds++
			lag, err := f.Lag()
			if err != nil {
				return pt, err
			}
			if lag == 0 {
				break
			}
		}
		convergeTotal += time.Since(cs)
	}
	pt.ConvergeMSAvg = float64(convergeTotal) / float64(batches) / float64(time.Millisecond)
	if s := convergeTotal.Seconds(); s > 0 {
		pt.RecordsPerSec = float64(records) / s
	}
	pt.Refreshes = f.Refreshes()
	return pt, nil
}

// ReplTransport renders MeasureReplTransport as a benchrunner table
// (-fig repl).
func ReplTransport(ctx context.Context, e *Env, shards, batches, batchSize int) (Table, error) {
	t := Table{
		Title: fmt.Sprintf("Replication transport: dir vs http WAL shipping — %s (%d shards, %d batches × %d inserts)",
			e.Cfg.Spec.Name, shards, batches, batchSize),
		Header: []string{"source", "bootstrap ms", "converge ms/batch", "records/s", "poll rounds", "refreshes"},
	}
	points, err := MeasureReplTransport(ctx, e, shards, batches, batchSize)
	if err != nil {
		return t, err
	}
	for _, p := range points {
		t.AddRow(p.Source, f1(p.BootstrapMS), fmt.Sprintf("%.2f", p.ConvergeMSAvg), f1(p.RecordsPerSec),
			fmt.Sprint(p.PollRounds), fmt.Sprint(p.Refreshes))
	}
	return t, nil
}
