package bench

import (
	"os"
	"testing"
)

// gateBaselinePath is the committed perf baseline the pages/query gate
// compares against (repo root, relative to this package).
const gateBaselinePath = "../BENCH_pr4.json"

// gateTolerance is the allowed pages/query regression before the gate
// fails. The measurement is deterministic for a fixed workload (the Page
// Access metric has no timing component), so 5% is slack for intentional
// small trade-offs, not for noise.
const gateTolerance = 1.05

// TestPagesPerQueryGate is the CI perf gate: it re-measures pages/query on
// the reduced gate workload recorded in the committed baseline report and
// fails on a >5% regression. Unlike ns/op, the metric is exact and
// machine-independent, so it can gate every test run — including short
// mode and -race — without flaking. Regenerate the baseline (only with an
// intentional, explained change) via:
//
//	go run ./cmd/benchrunner -out BENCH_<label>.json -label <label> -baseline BENCH_<prev>.json
func TestPagesPerQueryGate(t *testing.T) {
	rep, err := LoadPerfReport(gateBaselinePath)
	if os.IsNotExist(err) {
		t.Skipf("no committed baseline at %s", gateBaselinePath)
	}
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gate == nil {
		t.Skipf("baseline %s predates the gate section", gateBaselinePath)
	}
	want := rep.Gate.PagesPerQuery
	if want <= 0 {
		t.Fatalf("baseline gate records non-positive pages/query %v", want)
	}
	got, err := GatePagesPerQuery(*rep.Gate)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pages/query: measured %.2f, baseline %.2f (limit %.2f)", got, want, want*gateTolerance)
	if got > want*gateTolerance {
		t.Fatalf("pages/query regressed: measured %.2f > baseline %.2f +5%% (%.2f); if intentional, regenerate %s and document why",
			got, want, want*gateTolerance, gateBaselinePath)
	}
}
