package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"promips/internal/core"
	"promips/internal/vec"
	"promips/mips"
)

// PageCostMs is the simulated per-page disk read cost used by the Total
// Time experiment (Fig 9). The paper measures wall time on a spinning disk;
// we model it as CPU time + pages × PageCostMs so that the metric remains
// deterministic (see EXPERIMENTS.md).
const PageCostMs = 0.1

// Ks returns the paper's k sweep: 10, 20, …, 100.
func Ks() []int {
	ks := make([]int, 10)
	for i := range ks {
		ks[i] = 10 * (i + 1)
	}
	return ks
}

// Point aggregates one method's behaviour at one k over the whole query
// workload (averages).
type Point struct {
	Ratio   float64 // overall ratio (Fig 5)
	Recall  float64 // recall (Fig 6)
	Pages   float64 // page accesses (Fig 7)
	CPUms   float64 // CPU time per query in ms (Fig 8)
	TotalMs float64 // CPU + simulated disk time (Fig 9)
}

// Measure runs every query at the given k against one method.
func (e *Env) Measure(m mips.Method, k int) (Point, error) {
	gt := e.GroundTruth(k)
	var p Point
	for qi, q := range e.Queries {
		start := time.Now()
		res, qs, err := m.Search(q, k)
		elapsed := time.Since(start)
		if err != nil {
			return Point{}, fmt.Errorf("%s k=%d query %d: %w", m.Name(), k, qi, err)
		}
		// Fairness across methods: re-derive exact inner products for the
		// returned ids (the PQ baseline reports ADC estimates) and order
		// best-first before scoring.
		exactRes := make([]mips.Result, len(res))
		for i, r := range res {
			exactRes[i] = mips.Result{ID: r.ID, IP: vec.Dot(e.Data[r.ID], q)}
		}
		sort.Slice(exactRes, func(a, b int) bool { return exactRes[a].IP > exactRes[b].IP })

		p.Ratio += gt.OverallRatio(qi, exactRes)
		p.Recall += gt.Recall(qi, exactRes)
		p.Pages += float64(qs.PageAccesses)
		p.CPUms += float64(elapsed.Microseconds()) / 1000
	}
	nq := float64(len(e.Queries))
	p.Ratio /= nq
	p.Recall /= nq
	p.Pages /= nq
	p.CPUms /= nq
	p.TotalMs = p.CPUms + p.Pages*PageCostMs
	return p, nil
}

// Fig4 reports index size and pre-processing time per method (Fig 4a/4b).
func Fig4(e *Env, builts []Built) Table {
	t := Table{
		Title:  fmt.Sprintf("Fig 4: Index Size and Pre-processing Time — %s (n=%d, d=%d)", e.Cfg.Spec.Name, len(e.Data), e.Cfg.Spec.D),
		Header: []string{"Method", "IndexSize(MB)", "Preprocess(ms)"},
	}
	for _, b := range builts {
		t.AddRow(b.Method.Name(),
			fmt.Sprintf("%.2f", float64(b.IndexBytes)/(1<<20)),
			fmt.Sprintf("%d", b.BuildTime.Milliseconds()))
	}
	return t
}

// Sweep runs every method across the k values and returns the five
// paper figures' tables: overall ratio (Fig 5), recall (Fig 6), page
// access (Fig 7), CPU time (Fig 8) and total time (Fig 9).
func Sweep(e *Env, builts []Built, ks []int) ([5]Table, error) {
	names := make([]string, len(builts))
	for i, b := range builts {
		names[i] = b.Method.Name()
	}
	header := append([]string{"k"}, names...)
	mk := func(fig, metric string) Table {
		return Table{
			Title:  fmt.Sprintf("%s: %s — %s", fig, metric, e.Cfg.Spec.Name),
			Header: append([]string(nil), header...),
		}
	}
	tables := [5]Table{
		mk("Fig 5", "Overall Ratio"),
		mk("Fig 6", "Recall"),
		mk("Fig 7", "Page Access"),
		mk("Fig 8", "CPU Time (ms)"),
		mk("Fig 9", "Total Time (ms)"),
	}
	for _, k := range ks {
		cells := [5][]string{
			{fmt.Sprint(k)}, {fmt.Sprint(k)}, {fmt.Sprint(k)}, {fmt.Sprint(k)}, {fmt.Sprint(k)},
		}
		for _, b := range builts {
			p, err := e.Measure(b.Method, k)
			if err != nil {
				return tables, err
			}
			cells[0] = append(cells[0], f4(p.Ratio))
			cells[1] = append(cells[1], f4(p.Recall))
			cells[2] = append(cells[2], f1(p.Pages))
			cells[3] = append(cells[3], f3(p.CPUms))
			cells[4] = append(cells[4], f3(p.TotalMs))
		}
		for i := range tables {
			tables[i].AddRow(cells[i]...)
		}
	}
	return tables, nil
}

// Fig10 sweeps the approximation ratio c for ProMIPS (overall ratio and
// page access at a fixed k), rebuilding the index per c as the paper does.
func Fig10(e *Env, cs []float64, k int) (Table, error) {
	t := Table{
		Title:  fmt.Sprintf("Fig 10: Impact of c — %s (k=%d, p=%.1f)", e.Cfg.Spec.Name, k, e.Cfg.P),
		Header: []string{"c", "OverallRatio", "Recall", "PageAccess", "CPUms"},
	}
	for _, c := range cs {
		b, err := e.BuildProMIPS(ProMIPSOptions{C: c})
		if err != nil {
			return t, err
		}
		p, err := e.Measure(b.Method, k)
		b.Method.Close()
		if err != nil {
			return t, err
		}
		t.AddRow(fmt.Sprintf("%.1f", c), f4(p.Ratio), f4(p.Recall), f1(p.Pages), f3(p.CPUms))
	}
	return t, nil
}

// Fig11 sweeps the guarantee probability p for ProMIPS.
func Fig11(e *Env, ps []float64, k int) (Table, error) {
	t := Table{
		Title:  fmt.Sprintf("Fig 11: Impact of p — %s (k=%d, c=%.1f)", e.Cfg.Spec.Name, k, e.Cfg.C),
		Header: []string{"p", "OverallRatio", "Recall", "PageAccess", "CPUms"},
	}
	for _, pv := range ps {
		b, err := e.BuildProMIPS(ProMIPSOptions{P: pv})
		if err != nil {
			return t, err
		}
		p, err := e.Measure(b.Method, k)
		b.Method.Close()
		if err != nil {
			return t, err
		}
		t.AddRow(fmt.Sprintf("%.1f", pv), f4(p.Ratio), f4(p.Recall), f1(p.Pages), f3(p.CPUms))
	}
	return t, nil
}

// Table2Scaling verifies the complexity table empirically: ProMIPS query
// cost (CPU, pages) as n grows, holding d fixed. The per-point cost should
// grow sub-linearly, matching O(d + n log n) pre-processing and the
// O(log n)-flavoured search of Table II.
func Table2Scaling(cfgBase Config, ns []int, k int) (Table, error) {
	t := Table{
		Title:  fmt.Sprintf("Table 2: ProMIPS query scaling with n — %s", cfgBase.Spec.Name),
		Header: []string{"n", "BuildMs", "CPUms/query", "Pages/query", "Pages/n(x1000)"},
	}
	for _, n := range ns {
		cfg := cfgBase
		cfg.N = n
		env, err := NewEnv(cfg)
		if err != nil {
			return t, err
		}
		b, err := env.BuildProMIPS(ProMIPSOptions{})
		if err != nil {
			env.Close()
			return t, err
		}
		p, err := env.Measure(b.Method, k)
		b.Method.Close()
		env.Close()
		if err != nil {
			return t, err
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(b.BuildTime.Milliseconds()),
			f3(p.CPUms), f1(p.Pages), f3(p.Pages/float64(n)*1000))
	}
	return t, nil
}

// Concurrency measures serving throughput of one shared ProMIPS index as
// the worker count grows: the whole query workload, repeated rounds times,
// is pushed through Index.SearchBatch with 1, 2, 4, … workers. Per-query
// I/O accounting makes the page metric identical at every worker count, so
// the table doubles as a correctness check on the concurrent read path —
// and the per-worker pages/query, buffer-pool hit ratio and
// speedup-vs-1-worker columns make a flat or inverted curve diagnosable
// from the report itself (a 2-worker point below the 1-worker point with a
// falling hit ratio is pool thrash; with a flat hit ratio it is lock or
// CPU serialization).
//
// With missLatency > 0 the index is built with a small buffer pool and
// that simulated per-miss disk cost (the paper's PageCostMs charge), so
// the curve measures miss overlap — the disk-resident serving regime —
// rather than warm in-RAM CPU scaling.
//
// ctx bounds the whole experiment (benchrunner's -timeout): it is passed
// to every SearchBatch, so a deadline aborts between queries.
func Concurrency(ctx context.Context, e *Env, workerCounts []int, k, rounds int, missLatency time.Duration) (Table, error) {
	popts := ProMIPSOptions{}
	model := "warm pool"
	if missLatency > 0 {
		popts.PoolSize = DiskModelPoolPages
		popts.MissLatency = missLatency
		model = fmt.Sprintf("disk model: pool=%d pages, %v/miss", DiskModelPoolPages, missLatency)
	}
	t := Table{
		Title: fmt.Sprintf("Concurrency: QPS on one shared index — %s (k=%d, %d queries/round, %d rounds, %s)",
			e.Cfg.Spec.Name, k, len(e.Queries), rounds, model),
		Header: []string{"workers", "wall(ms)", "QPS", "ms/query", "speedup", "pages/query", "hit%"},
	}
	if rounds <= 0 {
		rounds = 1
	}
	b, err := e.BuildProMIPS(popts)
	if err != nil {
		return t, err
	}
	defer b.Method.Close()
	ix := b.Method.(proMIPSAdapter).ix

	workload := make([][]float32, 0, len(e.Queries)*rounds)
	for r := 0; r < rounds; r++ {
		workload = append(workload, e.Queries...)
	}
	// Untimed warm-up so the first worker count (the speedup baseline) does
	// not pay the fully cold buffer pool alone.
	if _, _, err := ix.SearchBatch(ctx, e.Queries, k, 1, core.SearchParams{}); err != nil {
		return t, err
	}
	var base float64
	for _, w := range workerCounts {
		before := ix.CacheStats()
		start := time.Now()
		_, qstats, err := ix.SearchBatch(ctx, workload, k, w, core.SearchParams{})
		if err != nil {
			return t, err
		}
		elapsed := time.Since(start).Seconds()
		interval := ix.CacheStats().Sub(before)
		if base == 0 {
			base = elapsed
		}
		var pages float64
		for _, st := range qstats {
			pages += float64(st.PageAccesses)
		}
		nq := float64(len(workload))
		t.AddRow(fmt.Sprint(w),
			f1(elapsed*1000),
			f1(nq/elapsed),
			f3(elapsed*1000/nq),
			fmt.Sprintf("%.2fx", base/elapsed),
			f1(pages/nq),
			f1(interval.HitRatio()*100))
	}
	return t, nil
}

// AblationQuickProbe compares Algorithm 3 (Quick-Probe + range search)
// against Algorithm 1 (incremental NN with per-point condition tests) on
// the same index parameters — the design choice §V motivates.
func AblationQuickProbe(e *Env, ks []int) (Table, error) {
	t := Table{
		Title:  fmt.Sprintf("Ablation: Quick-Probe (Alg 3) vs incremental (Alg 1) — %s", e.Cfg.Spec.Name),
		Header: []string{"k", "QP-CPUms", "Inc-CPUms", "QP-Pages", "Inc-Pages", "QP-Ratio", "Inc-Ratio"},
	}
	qp, err := e.BuildProMIPS(ProMIPSOptions{})
	if err != nil {
		return t, err
	}
	defer qp.Method.Close()
	inc, err := e.BuildProMIPSIncremental(ProMIPSOptions{})
	if err != nil {
		return t, err
	}
	defer inc.Method.Close()
	for _, k := range ks {
		a, err := e.Measure(qp.Method, k)
		if err != nil {
			return t, err
		}
		b, err := e.Measure(inc.Method, k)
		if err != nil {
			return t, err
		}
		t.AddRow(fmt.Sprint(k), f3(a.CPUms), f3(b.CPUms), f1(a.Pages), f1(b.Pages), f4(a.Ratio), f4(b.Ratio))
	}
	return t, nil
}

// AblationPartition compares the paper's new partition pattern (ring +
// sub-partition spheres) against standard ring-only iDistance (ksp=1: a
// single sub-partition per ring disables the sphere filter).
func AblationPartition(e *Env, ks []int) (Table, error) {
	t := Table{
		Title:  fmt.Sprintf("Ablation: new partition pattern vs ring-only iDistance — %s", e.Cfg.Spec.Name),
		Header: []string{"k", "New-Pages", "RingOnly-Pages", "New-CPUms", "RingOnly-CPUms"},
	}
	sub, err := e.BuildProMIPS(ProMIPSOptions{})
	if err != nil {
		return t, err
	}
	defer sub.Method.Close()
	ring, err := e.BuildProMIPS(ProMIPSOptions{Ksp: 1})
	if err != nil {
		return t, err
	}
	defer ring.Method.Close()
	for _, k := range ks {
		a, err := e.Measure(sub.Method, k)
		if err != nil {
			return t, err
		}
		b, err := e.Measure(ring.Method, k)
		if err != nil {
			return t, err
		}
		t.AddRow(fmt.Sprint(k), f1(a.Pages), f1(b.Pages), f3(a.CPUms), f3(b.CPUms))
	}
	return t, nil
}

// AblationProjDim sweeps the projected dimension m around the optimized
// value of §V-B.
func AblationProjDim(e *Env, ms []int, k int) (Table, error) {
	t := Table{
		Title:  fmt.Sprintf("Ablation: projected dimension m — %s (optimized m=%d)", e.Cfg.Spec.Name, e.Cfg.Spec.M),
		Header: []string{"m", "OverallRatio", "PageAccess", "CPUms", "IndexMB"},
	}
	for _, m := range ms {
		b, err := e.BuildProMIPS(ProMIPSOptions{M: m})
		if err != nil {
			return t, err
		}
		p, err := e.Measure(b.Method, k)
		if err != nil {
			b.Method.Close()
			return t, err
		}
		t.AddRow(fmt.Sprint(m), f4(p.Ratio), f1(p.Pages), f3(p.CPUms),
			fmt.Sprintf("%.2f", float64(b.IndexBytes)/(1<<20)))
		b.Method.Close()
	}
	return t, nil
}
