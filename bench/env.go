// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation section (§VIII). It owns dataset/query
// setup, builds all four methods against the same pager-based disk
// substrate, and reduces per-query measurements to the paper's metrics:
// overall ratio, recall, page access, CPU time and total time.
package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"promips/exact"
	"promips/internal/core"
	"promips/internal/dataset"
	"promips/internal/h2alsh"
	"promips/internal/pq"
	"promips/internal/rangelsh"
	"promips/mips"
)

// Config describes one experimental environment.
type Config struct {
	Spec       dataset.Spec
	N          int // points; 0 = Spec.DefaultN
	NumQueries int // 0 = 100 (the paper's workload)
	Seed       int64
	WorkDir    string // page files live here; "" = temp dir

	// C and P are ProMIPS' approximation ratio and guarantee probability
	// (defaults 0.9 and 0.5 per §VIII-A-4).
	C, P float64
}

func (c *Config) normalize() {
	if c.N <= 0 {
		c.N = c.Spec.DefaultN
	}
	if c.NumQueries <= 0 {
		c.NumQueries = 100
	}
	if c.C == 0 {
		c.C = 0.9
	}
	if c.P == 0 {
		c.P = 0.5
	}
}

// Env is a prepared dataset + query workload with cached ground truth.
type Env struct {
	Cfg     Config
	Data    [][]float32
	Queries [][]float32

	gtMax *exact.GroundTruth // ground truth at the largest k used
	dir   string
	owns  bool
}

// NewEnv generates the data and query workload.
func NewEnv(cfg Config) (*Env, error) {
	cfg.normalize()
	dir := cfg.WorkDir
	owns := false
	if dir == "" {
		d, err := os.MkdirTemp("", "promips-bench-*")
		if err != nil {
			return nil, err
		}
		dir, owns = d, true
	}
	data := cfg.Spec.Generate(cfg.N, cfg.Seed)
	// The paper's workload: "100 points are randomly selected as the query
	// points" — queries are dataset members, so popular (large-norm) points
	// appear among the queries at their natural rate.
	rng := rand.New(rand.NewSource(cfg.Seed + 0x51ED))
	queries := make([][]float32, cfg.NumQueries)
	for i := range queries {
		queries[i] = data[rng.Intn(len(data))]
	}
	return &Env{Cfg: cfg, Data: data, Queries: queries, dir: dir, owns: owns}, nil
}

// Close removes the environment's temporary directory.
func (e *Env) Close() error {
	if e.owns {
		return os.RemoveAll(e.dir)
	}
	return nil
}

// GroundTruth returns exact top-k answers for every query, cached at the
// largest k requested so far (smaller k reuse the prefix).
func (e *Env) GroundTruth(k int) *exact.GroundTruth {
	if e.gtMax == nil || e.gtMax.K < k {
		e.gtMax = exact.Compute(e.Data, e.Queries, k)
	}
	if e.gtMax.K == k {
		return e.gtMax
	}
	pref := &exact.GroundTruth{K: k, Queries: e.gtMax.Queries, TopK: make([][]mips.Result, e.gtMax.Queries)}
	for i, full := range e.gtMax.TopK {
		if k < len(full) {
			pref.TopK[i] = full[:k]
		} else {
			pref.TopK[i] = full
		}
	}
	return pref
}

// MethodNames lists the four evaluated methods in the paper's order.
func MethodNames() []string { return []string{"ProMIPS", "H2-ALSH", "Range-LSH", "PQ-Based"} }

// Built is a constructed method with its pre-processing measurements
// (Fig 4's two panels).
type Built struct {
	Method     mips.Method
	BuildTime  time.Duration
	IndexBytes int64
}

// proMIPSAdapter exposes core.Index as a mips.Method.
type proMIPSAdapter struct{ ix *core.Index }

func (a proMIPSAdapter) Name() string { return "ProMIPS" }
func (a proMIPSAdapter) Search(q []float32, k int) ([]mips.Result, mips.QueryStats, error) {
	res, st, err := a.ix.Search(q, k)
	if err != nil {
		return nil, mips.QueryStats{}, err
	}
	out := make([]mips.Result, len(res))
	for i, r := range res {
		out[i] = mips.Result{ID: r.ID, IP: r.IP}
	}
	return out, mips.QueryStats{PageAccesses: st.PageAccesses, Candidates: st.Candidates}, nil
}
func (a proMIPSAdapter) IndexSizeBytes() int64 { return a.ix.Sizes().Total() }
func (a proMIPSAdapter) Close() error          { return a.ix.Close() }

// proMIPSIncrementalAdapter drives Algorithm 1 instead of Quick-Probe, for
// the ablation benchmark.
type proMIPSIncrementalAdapter struct{ ix *core.Index }

func (a proMIPSIncrementalAdapter) Name() string { return "ProMIPS-Incremental" }
func (a proMIPSIncrementalAdapter) Search(q []float32, k int) ([]mips.Result, mips.QueryStats, error) {
	res, st, err := a.ix.SearchIncremental(q, k)
	if err != nil {
		return nil, mips.QueryStats{}, err
	}
	out := make([]mips.Result, len(res))
	for i, r := range res {
		out[i] = mips.Result{ID: r.ID, IP: r.IP}
	}
	return out, mips.QueryStats{PageAccesses: st.PageAccesses, Candidates: st.Candidates}, nil
}
func (a proMIPSIncrementalAdapter) IndexSizeBytes() int64 { return a.ix.Sizes().Total() }
func (a proMIPSIncrementalAdapter) Close() error          { return a.ix.Close() }

// ProMIPSOptions selects the ProMIPS build parameters for one experiment.
// Zero fields fall back to the environment's config and the dataset spec
// (c, p, m, page size, seed), then to the paper's defaults. It mirrors
// promips.Options without the directory field — the harness owns its work
// directories — so the package's exported surface stays free of internal
// types.
type ProMIPSOptions struct {
	C, P          float64
	M             int
	Kp, Nkey, Ksp int
	Epsilon       float64
	PageSize      int
	PoolSize      int
	// MissLatency simulates a disk read per buffer-pool miss (one per
	// readahead run); the concurrent-serving experiments use it to measure
	// scaling under the paper's disk-resident cost model.
	MissLatency time.Duration
	Seed        int64
}

func (o ProMIPSOptions) core() core.Options {
	return core.Options{
		C: o.C, P: o.P, M: o.M,
		Kp: o.Kp, Nkey: o.Nkey, Ksp: o.Ksp, Epsilon: o.Epsilon,
		PageSize: o.PageSize, PoolSize: o.PoolSize, MissLatency: o.MissLatency,
		Seed: o.Seed,
	}
}

// BuildProMIPS builds the ProMIPS index with the paper's per-dataset
// parameters. Extra options (c, p, m, ksp) come from cfg and the spec.
func (e *Env) BuildProMIPS(popts ProMIPSOptions) (Built, error) {
	opts := popts.core()
	dir := filepath.Join(e.dir, fmt.Sprintf("promips-%d", time.Now().UnixNano()))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Built{}, err
	}
	if opts.C == 0 {
		opts.C = e.Cfg.C
	}
	if opts.P == 0 {
		opts.P = e.Cfg.P
	}
	if opts.M == 0 {
		opts.M = e.Cfg.Spec.M
	}
	if opts.PageSize == 0 {
		opts.PageSize = e.Cfg.Spec.PageSize
	}
	if opts.Seed == 0 {
		opts.Seed = e.Cfg.Seed
	}
	start := time.Now()
	ix, err := core.Build(e.Data, dir, opts)
	if err != nil {
		return Built{}, fmt.Errorf("build ProMIPS: %w", err)
	}
	return Built{Method: proMIPSAdapter{ix}, BuildTime: time.Since(start), IndexBytes: ix.Sizes().Total()}, nil
}

// BuildProMIPSIncremental builds the same index but queries it with
// Algorithm 1 (for the Quick-Probe ablation).
func (e *Env) BuildProMIPSIncremental(opts ProMIPSOptions) (Built, error) {
	b, err := e.BuildProMIPS(opts)
	if err != nil {
		return Built{}, err
	}
	ad := b.Method.(proMIPSAdapter)
	b.Method = proMIPSIncrementalAdapter{ad.ix}
	return b, nil
}

// Build constructs one method by name with the paper's settings.
func (e *Env) Build(name string) (Built, error) {
	if name == "ProMIPS" {
		return e.BuildProMIPS(ProMIPSOptions{}) // manages its own directory
	}
	spec := e.Cfg.Spec
	dir := filepath.Join(e.dir, fmt.Sprintf("%s-%d", name, time.Now().UnixNano()))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Built{}, err
	}
	start := time.Now()
	switch name {
	case "H2-ALSH":
		ix, err := h2alsh.Build(e.Data, dir, h2alsh.Config{
			C0: 2.0, PageSize: spec.PageSize, Seed: e.Cfg.Seed,
		})
		if err != nil {
			return Built{}, fmt.Errorf("build H2-ALSH: %w", err)
		}
		return Built{Method: ix, BuildTime: time.Since(start), IndexBytes: ix.IndexSizeBytes()}, nil
	case "Range-LSH":
		ix, err := rangelsh.Build(e.Data, dir, rangelsh.Config{
			Partitions: 32, CodeLength: 16, PageSize: spec.PageSize, Seed: e.Cfg.Seed,
		})
		if err != nil {
			return Built{}, fmt.Errorf("build Range-LSH: %w", err)
		}
		return Built{Method: ix, BuildTime: time.Since(start), IndexBytes: ix.IndexSizeBytes()}, nil
	case "PQ-Based":
		// TrainSample/MaxIter bound the codebook k-means cost at laptop
		// scale; the paper's 16×256 quantizer geometry is kept.
		ix, err := pq.Build(e.Data, dir, pq.Config{
			Subspaces: 16, Centroids: 256, ProbeCells: 16,
			TrainSample: 3000, MaxIter: 6,
			PageSize: spec.PageSize, Seed: e.Cfg.Seed,
		})
		if err != nil {
			return Built{}, fmt.Errorf("build PQ-Based: %w", err)
		}
		return Built{Method: ix, BuildTime: time.Since(start), IndexBytes: ix.IndexSizeBytes()}, nil
	default:
		return Built{}, fmt.Errorf("bench: unknown method %q", name)
	}
}

// BuildAll constructs the requested methods (nil = all four).
func (e *Env) BuildAll(names []string) ([]Built, error) {
	if names == nil {
		names = MethodNames()
	}
	out := make([]Built, 0, len(names))
	for _, n := range names {
		b, err := e.Build(n)
		if err != nil {
			for _, prev := range out {
				prev.Method.Close()
			}
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
