package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result, formatted like the paper's
// figure data: one row per x-value, one column per series.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
