package bench

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"promips"
	"promips/shard"
)

// ShardPoint is one shard count's disk-model SearchBatch measurement: the
// whole query workload pushed through shard.Index.SearchBatch at a fixed
// worker count. SpeedupVs1 is QPS relative to the 1-shard point of the
// same sweep — the scale-out headline: a K-shard search fans one query
// into K parallel sub-searches, each against its own shard's buffer pool
// and disk channel, so misses that serialize inside a single-shard query
// overlap across shards and the aggregate cache grows with K.
type ShardPoint struct {
	Shards        int     `json:"shards"`
	Workers       int     `json:"workers"`
	QPS           float64 `json:"qps"`
	SpeedupVs1    float64 `json:"speedup_vs_1_shard"`
	PagesPerQuery float64 `json:"pages_per_query"`
	HitRatio      float64 `json:"hit_ratio"`
}

// shardPoolPages is each shard's buffer-pool budget: the full disk-model
// pool, because the scale-out model is one node per shard — each shard
// owns its own buffer pool and disk channel, so aggregate cache and I/O
// parallelism grow with K (that is what sharding buys), while the
// per-node resources stay fixed.
func shardPoolPages(k int) int { return DiskModelPoolPages }

// MeasureShardScaling measures the disk-model batch throughput of the
// same workload at each shard count under the node-per-shard model (see
// shardPoolPages): every index is built from the same data with the same
// per-point parameters, and each shard gets the standard disk-model pool
// and miss latency of its own. The rounds multiply the workload for
// measurement stability.
func MeasureShardScaling(ctx context.Context, e *Env, shardCounts []int, k, workers, rounds int) ([]ShardPoint, error) {
	if rounds <= 0 {
		rounds = 1
	}
	workload := make([][]float32, 0, len(e.Queries)*rounds)
	for r := 0; r < rounds; r++ {
		workload = append(workload, e.Queries...)
	}
	var out []ShardPoint
	var base float64
	for _, sc := range shardCounts {
		ix, err := shard.Build(e.Data, shard.Options{
			Shards: sc,
			Dir:    filepath.Join(e.dir, fmt.Sprintf("shards-%d", sc)),
			Index: promips.Options{
				C: e.Cfg.C, P: e.Cfg.P, M: e.Cfg.Spec.M,
				PageSize: e.Cfg.Spec.PageSize, Seed: e.Cfg.Seed,
				PoolSize:    shardPoolPages(sc),
				MissLatency: DiskModelMissLatency,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("build %d-shard index: %w", sc, err)
		}
		// Untimed settling pass so no point pays the fully cold pool alone.
		if _, _, err := ix.SearchBatch(ctx, e.Queries, k, promips.WithWorkers(workers)); err != nil {
			ix.Close()
			return nil, err
		}
		before := ix.CacheStats()
		start := time.Now()
		_, stats, err := ix.SearchBatch(ctx, workload, k, promips.WithWorkers(workers))
		if err != nil {
			ix.Close()
			return nil, err
		}
		elapsed := time.Since(start).Seconds()
		interval := ix.CacheStats().Sub(before)
		ix.Close()
		var pages float64
		for _, st := range stats {
			pages += float64(st.PageAccesses)
		}
		nq := float64(len(workload))
		qps := nq / elapsed
		if base == 0 {
			base = qps
		}
		out = append(out, ShardPoint{
			Shards:        sc,
			Workers:       workers,
			QPS:           qps,
			SpeedupVs1:    qps / base,
			PagesPerQuery: pages / nq,
			HitRatio:      interval.HitRatio(),
		})
	}
	return out, nil
}

// ShardScaling renders MeasureShardScaling as a benchrunner table
// (-fig shards): QPS across shard counts on the node-per-shard disk
// model.
func ShardScaling(ctx context.Context, e *Env, shardCounts []int, k, workers, rounds int) (Table, error) {
	t := Table{
		Title: fmt.Sprintf("Shard scaling: SearchBatch QPS vs shard count — %s (k=%d, %d workers, disk model: %d pool pages and %v/miss per shard)",
			e.Cfg.Spec.Name, k, workers, DiskModelPoolPages, DiskModelMissLatency),
		Header: []string{"shards", "QPS", "speedup", "pages/query", "hit%"},
	}
	points, err := MeasureShardScaling(ctx, e, shardCounts, k, workers, rounds)
	if err != nil {
		return t, err
	}
	for _, p := range points {
		t.AddRow(fmt.Sprint(p.Shards), f1(p.QPS), fmt.Sprintf("%.2fx", p.SpeedupVs1),
			f1(p.PagesPerQuery), f1(p.HitRatio*100))
	}
	return t, nil
}
