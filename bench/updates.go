package bench

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"promips"
)

// Mixed read/write measurement: what the non-blocking update pipeline buys
// the serving tail. The same searcher pool runs twice against the same
// index state — once with the writer paused (the read-only baseline),
// once while a rate-paced insert stream drives the whole pipeline: delta
// freezes, background seg-file flushes and (in the auto-compact
// configuration) background compaction folds. Snapshot reads mean none of
// that should move the search tail; the headline is mixed p99 / read-only
// p99, which a regression back to lock-coupled updates (a freeze, flush
// or fold holding the lock across a search) multiplies immediately.
//
// Two details keep the comparison honest. The index is pre-filled with a
// standing un-compacted backlog before either phase, so both phases pay
// the same delta/segment scan cost and the ratio isolates the WRITER's
// interference rather than the algorithmic cost of the points it added
// (that cost — and auto-compaction folding it away — is what the
// freezes/flushes/compactions columns and the auto cells are for). And
// the stream is paced across the whole window rather than burst through
// it, so writes are live under every recorded search — the serving shape
// the measurement models, and the "insert-rate vs search tail" axis the
// report records.

// MixedPoint is one (worker count, auto-compact) cell of the measurement.
type MixedPoint struct {
	Workers     int  `json:"workers"`
	AutoCompact bool `json:"auto_compact"`
	// InsertsPerSec is the achieved acknowledged insert rate over the
	// stream (paced at MixedInsertRate, so writes stay live under every
	// recorded search instead of bursting through the window).
	InsertsPerSec float64 `json:"inserts_per_sec"`
	// Searches is the mixed-phase sample count behind the percentiles.
	Searches   int     `json:"searches"`
	ReadP50US  float64 `json:"read_only_p50_us"`
	ReadP99US  float64 `json:"read_only_p99_us"`
	MixedP50US float64 `json:"mixed_p50_us"`
	MixedP99US float64 `json:"mixed_p99_us"`
	// P99Ratio is MixedP99US / ReadP99US — the non-blocking claim in one
	// number (≈1 when updates never block searches).
	P99Ratio float64 `json:"mixed_p99_over_read_only"`
	// Pipeline activity over the mixed phase, so a quiet cell (no freeze
	// crossed, nothing flushed or folded) is visible in the report.
	Freezes     int64 `json:"freezes"`
	Flushes     int64 `json:"flushes"`
	Compactions int64 `json:"compactions"`
}

// Mixed-workload parameters. The prefill plus the stream cross several
// freeze boundaries at this threshold, so seg-file flushes land inside
// the measured window; the paced stream defines the phase length
// (MixedStreamInserts / MixedInsertRate, also the read-only window, so
// the percentiles rest on comparable sample counts); and auto-compact
// cells hold the mixed phase open up to MixedCompactWait for the
// background compactor (which polls on its own clock) to observe the
// flushed watermark — searchers keep running through the fold, which is
// exactly the interval the measurement exists to cover.
const (
	MixedPrefill        = 2000
	MixedStreamInserts  = 1200
	MixedInsertRate     = 1000 // paced inserts per second
	MixedSegmentEntries = 512
	MixedCompactWait    = 3 * time.Second
)

// mixedPhaseWindow is the paced stream's duration and the read-only
// phase's window.
const mixedPhaseWindow = time.Second * MixedStreamInserts / MixedInsertRate

// MeasureMixedWorkload runs the measurement grid: every worker count
// (nil = 1, 4, 8), read-only then mixed, without and with background
// auto-compaction. Every cell gets a fresh index over the workload's data
// and the same insert stream, so cells differ only in the knob under test.
func MeasureMixedWorkload(ctx context.Context, e *Env, workers []int, k int) ([]MixedPoint, error) {
	if workers == nil {
		workers = []int{1, 4, 8}
	}
	var out []MixedPoint
	for _, auto := range []bool{false, true} {
		for _, w := range workers {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			pt, err := measureMixedCell(ctx, e, w, k, auto)
			if err != nil {
				return nil, fmt.Errorf("mixed workload (workers=%d auto=%v): %w", w, auto, err)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

func measureMixedCell(ctx context.Context, e *Env, workers, k int, auto bool) (MixedPoint, error) {
	pt := MixedPoint{Workers: workers, AutoCompact: auto}
	dir := filepath.Join(e.dir, fmt.Sprintf("updates-%d-%v", workers, auto))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return pt, err
	}
	// FsyncNever keeps the journal on (the stream is still replayable)
	// without a per-insert fsync turning the writer into an I/O benchmark.
	ix, err := promips.Build(e.Data, promips.Options{
		C: e.Cfg.C, P: e.Cfg.P, M: e.Cfg.Spec.M,
		PageSize: e.Cfg.Spec.PageSize, Seed: e.Cfg.Seed, Dir: dir,
		SegmentEntries: MixedSegmentEntries, Fsync: promips.FsyncNever,
	})
	if err != nil {
		return pt, fmt.Errorf("build: %w", err)
	}
	defer ix.Close()

	// Warm pass: neither phase pays cold structures.
	for _, q := range e.Queries {
		if _, _, err := ix.Search(ctx, q, k); err != nil {
			return pt, err
		}
	}

	// The same prefill + stream for every cell, regenerated from a fixed
	// seed.
	r := rand.New(rand.NewSource(e.Cfg.Seed + 0x0DD))
	mkPoints := func(n int) [][]float32 {
		out := make([][]float32, n)
		for i := range out {
			v := make([]float32, e.Cfg.Spec.D)
			for j := range v {
				v[j] = float32(r.NormFloat64())
			}
			out[i] = v
		}
		return out
	}
	prefill, stream := mkPoints(MixedPrefill), mkPoints(MixedStreamInserts)

	// Standing backlog: both phases search through the same un-compacted
	// delta/segment state, so their difference is the live writer, not the
	// scan cost of the points it already added.
	for _, v := range prefill {
		if _, err := ix.Insert(v); err != nil {
			return pt, fmt.Errorf("prefill insert: %w", err)
		}
	}

	// In the auto cells the compactor is part of the configured system, so
	// it runs under BOTH phases (it starts folding the prefill backlog
	// during the read-only window): the cell's two phases then differ only
	// in the writer being live, which is the quantity under test.
	var ac *promips.AutoCompactor
	if auto {
		ac = ix.StartAutoCompact(1)
		defer ac.Stop()
	}

	// Phase 1: read-only baseline, writer paused.
	readLats, err := mixedSearchPhase(ctx, ix, e.Queries, k, workers, func() error {
		return sleepCtx(ctx, mixedPhaseWindow)
	})
	if err != nil {
		return pt, err
	}

	// Phase 2: the same searchers with the paced insert stream running
	// underneath. Pacing is deadline-based with catch-up — on a saturated
	// box the writer may be scheduled in bursts, but the achieved rate
	// stays at the target instead of collapsing to the scheduler's clock.
	runsBefore := int64(0)
	if ac != nil {
		runsBefore = ac.Runs()
	}
	var insertElapsed time.Duration
	mixedLats, err := mixedSearchPhase(ctx, ix, e.Queries, k, workers, func() error {
		phaseStart := time.Now()
		for i, v := range stream {
			next := phaseStart.Add(time.Duration(i) * time.Second / MixedInsertRate)
			if d := time.Until(next); d > 0 {
				if err := sleepCtx(ctx, d); err != nil {
					return err
				}
			}
			if _, err := ix.Insert(v); err != nil {
				return fmt.Errorf("insert: %w", err)
			}
		}
		insertElapsed = time.Since(phaseStart)
		if ac != nil {
			// Hold the phase open until the compactor has folded the
			// stream's segments (its poll clock is coarser than the
			// stream), so the tail numbers cover a live compaction
			// handover.
			for ac.Runs() == runsBefore && time.Since(phaseStart) < MixedCompactWait && ctx.Err() == nil {
				time.Sleep(20 * time.Millisecond)
			}
		}
		return ctx.Err()
	})
	if err != nil {
		return pt, err
	}

	us := ix.UpdateStats()
	pt.InsertsPerSec = MixedStreamInserts / insertElapsed.Seconds()
	pt.Searches = len(mixedLats)
	pt.ReadP50US, pt.ReadP99US = latPctUS(readLats, 50), latPctUS(readLats, 99)
	pt.MixedP50US, pt.MixedP99US = latPctUS(mixedLats, 50), latPctUS(mixedLats, 99)
	if pt.ReadP99US > 0 {
		pt.P99Ratio = pt.MixedP99US / pt.ReadP99US
	}
	pt.Freezes, pt.Flushes = us.Freezes, us.Flushes
	if ac != nil {
		pt.Compactions = ac.Runs()
	}
	return pt, nil
}

// mixedSearchPhase runs `workers` searcher goroutines over the query
// workload while drive() runs in the calling goroutine, then returns every
// recorded search latency, sorted. The searchers stop when drive returns.
func mixedSearchPhase(ctx context.Context, ix *promips.Index, queries [][]float32, k, workers int, drive func() error) ([]time.Duration, error) {
	var (
		stop atomic.Bool
		wg   sync.WaitGroup
		mu   sync.Mutex
		lats []time.Duration
		sErr atomic.Pointer[error]
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]time.Duration, 0, 4096)
			for i := w; !stop.Load(); i++ {
				q := queries[i%len(queries)]
				start := time.Now()
				if _, _, err := ix.Search(ctx, q, k); err != nil {
					sErr.CompareAndSwap(nil, &err)
					break
				}
				local = append(local, time.Since(start))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(w)
	}
	driveErr := drive()
	stop.Store(true)
	wg.Wait()
	if driveErr != nil {
		return nil, driveErr
	}
	if ep := sErr.Load(); ep != nil {
		return nil, fmt.Errorf("search during phase: %w", *ep)
	}
	if len(lats) == 0 {
		return nil, fmt.Errorf("no searches completed in the phase window")
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats, nil
}

// latPctUS reads the pth percentile of sorted latencies, in microseconds.
func latPctUS(sorted []time.Duration, p int) float64 {
	return float64(sorted[len(sorted)*p/100]) / float64(time.Microsecond)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// MixedWorkload renders MeasureMixedWorkload as a benchrunner table
// (-fig updates).
func MixedWorkload(ctx context.Context, e *Env, workers []int, k int) (Table, error) {
	t := Table{
		Title: fmt.Sprintf("Mixed read/write: %d/s insert stream over a %d-point backlog (freeze every %d) vs search tail — %s (k=%d)",
			MixedInsertRate, MixedPrefill, MixedSegmentEntries, e.Cfg.Spec.Name, k),
		Header: []string{"workers", "auto-compact", "inserts/s",
			"read p50 us", "read p99 us", "mixed p50 us", "mixed p99 us", "p99 ratio",
			"freezes", "flushes", "compactions"},
	}
	points, err := MeasureMixedWorkload(ctx, e, workers, k)
	if err != nil {
		return t, err
	}
	for _, p := range points {
		t.AddRow(fmt.Sprint(p.Workers), fmt.Sprintf("%v", p.AutoCompact), f1(p.InsertsPerSec),
			f1(p.ReadP50US), f1(p.ReadP99US), f1(p.MixedP50US), f1(p.MixedP99US),
			fmt.Sprintf("%.2f", p.P99Ratio),
			fmt.Sprint(p.Freezes), fmt.Sprint(p.Flushes), fmt.Sprint(p.Compactions))
	}
	return t, nil
}
