module promips

go 1.24
