package promips

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// buildShared builds one index for the concurrency tests: big enough that
// queries do real multi-page I/O, small enough for -race runs.
func buildShared(t *testing.T, n int) (*Index, [][]float32) {
	t.Helper()
	if testing.Short() {
		n /= 2
	}
	r := rand.New(rand.NewSource(41))
	data := randData(r, n, 16)
	ix, err := Build(data, Options{Dir: t.TempDir(), Seed: 42, M: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	queries := make([][]float32, 20)
	for i := range queries {
		queries[i] = data[r.Intn(len(data))]
	}
	return ix, queries
}

// TestConcurrentSearchMatchesSequential is the stress test of the issue: N
// goroutines each run the full query workload against one shared Index and
// must reproduce the sequential baseline exactly — results AND per-query
// stats, PageAccesses included. Run with -race this also exercises the
// pager's shared-lock hit path and the index read lock.
func TestConcurrentSearchMatchesSequential(t *testing.T) {
	ix, queries := buildShared(t, 1500)
	const k = 10

	baseRes := make([][]Result, len(queries))
	baseStats := make([]SearchStats, len(queries))
	for i, q := range queries {
		res, st, err := ix.Search(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		baseRes[i], baseStats[i] = res, st
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				// Each goroutine starts at a different offset so distinct
				// queries overlap in time.
				for off := 0; off < len(queries); off++ {
					i := (off + g*3) % len(queries)
					res, st, err := ix.Search(context.Background(), queries[i], k)
					if err != nil {
						errs <- err.Error()
						return
					}
					if !reflect.DeepEqual(res, baseRes[i]) {
						errs <- "concurrent results differ from sequential baseline"
						return
					}
					if st.PageAccesses != baseStats[i].PageAccesses {
						errs <- "per-query page accounting drifted under concurrency"
						return
					}
					if st != baseStats[i] {
						errs <- "concurrent stats differ from sequential baseline"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestSearchBatchMatchesSequential is the acceptance criterion: SearchBatch
// over 8 workers returns byte-identical results to sequential Search, with
// correct per-query stats at every position.
func TestSearchBatchMatchesSequential(t *testing.T) {
	ix, queries := buildShared(t, 1500)
	const k = 10

	wantRes := make([][]Result, len(queries))
	wantStats := make([]SearchStats, len(queries))
	for i, q := range queries {
		res, st, err := ix.Search(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		wantRes[i], wantStats[i] = res, st
	}

	gotRes, gotStats, err := ix.SearchBatch(context.Background(), queries, k, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Fatal("SearchBatch results differ from sequential Search")
	}
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatal("SearchBatch stats differ from sequential Search")
	}

	// Default worker count must agree too.
	gotRes2, _, err := ix.SearchBatch(context.Background(), queries, k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRes2, wantRes) {
		t.Fatal("SearchBatch with default workers differs from sequential Search")
	}
}

// TestSearchBatchFilterConcurrent pins WithFilter's documented concurrency
// contract: the predicate is called concurrently from every SearchBatch
// worker, and the filtered batch must reproduce the sequential filtered
// baseline exactly. Run under -race (CI does) this catches any unsynchronized
// state the filter path might grow.
func TestSearchBatchFilterConcurrent(t *testing.T) {
	ix, queries := buildShared(t, 1500)
	const k = 10
	filter := func(id uint32) bool { return id%3 != 0 }

	wantRes := make([][]Result, len(queries))
	for i, q := range queries {
		res, _, err := ix.Search(context.Background(), q, k, WithFilter(filter))
		if err != nil {
			t.Fatal(err)
		}
		wantRes[i] = res
	}

	gotRes, _, err := ix.SearchBatch(context.Background(), queries, k, WithFilter(filter), WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Fatal("filtered SearchBatch differs from sequential filtered Search")
	}
	for i, res := range gotRes {
		for _, r := range res {
			if r.ID%3 == 0 {
				t.Fatalf("query %d returned filtered-out id %d", i, r.ID)
			}
		}
	}
}

func TestSearchBatchPropagatesError(t *testing.T) {
	ix, queries := buildShared(t, 400)
	bad := make([][]float32, len(queries))
	copy(bad, queries)
	bad[len(bad)/2] = []float32{1, 2, 3} // wrong dimensionality
	if _, _, err := ix.SearchBatch(context.Background(), bad, 5, WithWorkers(4)); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("batch with a mis-dimensioned query returned %v, want ErrDimMismatch", err)
	}
	if res, _, err := ix.SearchBatch(context.Background(), nil, 5); err != nil || res != nil {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
}

// TestConcurrentSearchWithUpdates interleaves writers (Insert/Delete) with
// searching readers on one shared Index. Results vary with timing, so the
// test asserts validity, not equality: every returned id must be live at
// some point, k results come back, and nothing races or panics.
func TestConcurrentSearchWithUpdates(t *testing.T) {
	ix, queries := buildShared(t, 1000)
	const k = 5
	r := rand.New(rand.NewSource(77))
	inserts := randData(r, 64, 16)

	baseLive := ix.LiveCount()
	errs := make(chan error, 12)
	stop := make(chan struct{})

	// Writers: insert fresh points, then tombstone every fourth one.
	var writers sync.WaitGroup
	deleted := 0
	for i := range inserts {
		if i%4 == 0 {
			deleted++
		}
	}
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := w; i < len(inserts); i += 2 {
				id, err := ix.Insert(inserts[i])
				if err != nil {
					errs <- err
					return
				}
				if i%4 == 0 {
					ix.Delete(id)
				}
			}
		}(w)
	}
	// Readers: hammer searches until the writers are done.
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, _, err := ix.Search(context.Background(), queries[(i+g)%len(queries)], k)
				if err != nil {
					errs <- err
					return
				}
				if len(res) != k {
					errs <- errTooFew
					return
				}
			}
		}(g)
	}

	writers.Wait()
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got, want := ix.LiveCount(), baseLive+len(inserts)-deleted; got != want {
		t.Fatalf("LiveCount after updates = %d, want %d", got, want)
	}
}

var errTooFew = errTooFewType{}

type errTooFewType struct{}

func (errTooFewType) Error() string { return "search returned fewer than k results" }
