package promips

// Group-commit regression tests: the ack path must not hold the index lock
// across the journal fsync (searches proceed while an updater's disk is
// busy), overlapping updaters must coalesce onto shared fsyncs, a failed
// group fsync must poison with the retryable sentinel until Save heals,
// and a crash at the group-fsync boundary must recover pre-or-post state
// for every update in the group. FaultFS's SetOnOp latency hook makes all
// of this deterministic — no sleeps standing in for race windows.

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"promips/internal/fsutil"
)

// buildGated builds a small FsyncAlways index through a FaultFS and
// returns it with a gate on OpSync: after arm() is called, the next fsync
// parks inside the filesystem until release() runs (signaling `entered`
// when it parks). Build's and Save's own fsyncs run before arm, ungated.
func buildGated(t *testing.T, n, d int) (ix *Index, ffs *fsutil.FaultFS, arm func(), entered chan struct{}, release func()) {
	t.Helper()
	r := rand.New(rand.NewSource(91))
	data := randData(r, n, d)
	ffs = &fsutil.FaultFS{}
	ix, err := Build(data, Options{Dir: t.TempDir(), Seed: 92, M: 4, Fsync: FsyncAlways, fs: ffs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	// A Save first, so the directory can be reopened by crash-flavored
	// subtests, and the journal starts empty.
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	entered = make(chan struct{}, 8)
	arm = func() {
		ffs.SetOnOp(func(op fsutil.Op) {
			if op == fsutil.OpSync {
				select {
				case entered <- struct{}{}:
				default:
				}
				<-hold
			}
		})
	}
	var once sync.Once
	release = func() { once.Do(func() { close(hold) }) }
	t.Cleanup(release)
	return ix, ffs, arm, entered, release
}

// TestSearchNotBlockedBySlowFsync is THE bug this PR fixes: under
// FsyncAlways, a search must complete while an updater's journal fsync is
// still in flight. Before group commit, Insert held ix.mu exclusive across
// the fsync, so the search below would park on the gated disk and time out.
func TestSearchNotBlockedBySlowFsync(t *testing.T) {
	ix, _, arm, entered, release := buildGated(t, 120, 8)
	r := rand.New(rand.NewSource(93))
	q := randData(r, 1, 8)[0]

	arm()
	insDone := make(chan error, 1)
	go func() {
		_, err := ix.Insert(randData(r, 1, 8)[0])
		insDone <- err
	}()
	<-entered // the insert's group fsync is parked inside the filesystem

	searchDone := make(chan error, 1)
	go func() {
		_, _, err := ix.Search(context.Background(), q, 5)
		searchDone <- err
	}()
	select {
	case err := <-searchDone:
		if err != nil {
			t.Fatalf("concurrent search failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("search blocked behind an updater's fsync: the ack path is holding the index lock across the disk wait")
	}
	// The insert must still be UNacknowledged — its fsync has not finished.
	select {
	case err := <-insDone:
		t.Fatalf("insert acknowledged before its fsync completed (err=%v)", err)
	default:
	}
	release()
	if err := <-insDone; err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitCoalescesAcks: eight updaters racing through the ack path
// while one fsync is parked must all be acknowledged by at most one more —
// and every acknowledged update must survive a reopen.
func TestGroupCommitCoalescesAcks(t *testing.T) {
	const burst = 8
	ix, ffs, arm, entered, release := buildGated(t, 120, 8)
	r := rand.New(rand.NewSource(94))
	vecs := randData(r, burst, 8)

	arm()
	base := ffs.Count(fsutil.OpSync)
	errc := make(chan error, burst)
	for i := 0; i < burst; i++ {
		v := vecs[i]
		go func() {
			_, err := ix.Insert(v)
			errc <- err
		}()
	}
	<-entered // one leader fsync is parked; the rest queue behind it
	// Every record is WRITTEN (writes are not gated) before we release, so
	// all eight acks overlap the parked fsync.
	for ix.JournalLen() < burst {
		time.Sleep(time.Millisecond)
	}
	release()
	for i := 0; i < burst; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if got := ffs.Count(fsutil.OpSync) - base; got > 2 {
		t.Fatalf("%d overlapping acks cost %d fsyncs, want ≤2 (group commit not coalescing)", burst, got)
	}

	// Crash-equivalence: reopening replays every acknowledged record.
	dir := ix.Dir()
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Recovery().Replayed != burst {
		t.Fatalf("reopen replayed %d records, want %d", re.Recovery().Replayed, burst)
	}
	if re.LiveCount() != 120+burst {
		t.Fatalf("LiveCount after reopen = %d, want %d", re.LiveCount(), 120+burst)
	}
}

// TestPoisonedJournalSentinelAndSaveHeals: a failed group fsync poisons
// the journal with the retryable ErrJournalPoisoned sentinel — the failed
// update stays applied in memory but unacknowledged, later updates are
// refused with the sentinel — and a successful Save persists everything
// through the metadata path and heals it.
func TestPoisonedJournalSentinelAndSaveHeals(t *testing.T) {
	r := rand.New(rand.NewSource(95))
	data := randData(r, 100, 8)
	ffs := &fsutil.FaultFS{}
	ix, err := Build(data, Options{Dir: t.TempDir(), Seed: 96, M: 4, Fsync: FsyncAlways, fs: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	// Fail exactly the next fsync — the insert's group commit. The record
	// write (one op before it) succeeds.
	ffs.FailAt = ffs.Ops() + 2
	if _, err := ix.Insert(randData(r, 1, 8)[0]); !errors.Is(err, fsutil.ErrInjected) {
		t.Fatalf("insert under fsync fault = %v, want ErrInjected", err)
	}
	// Applied in memory (the write-ahead record landed), but the journal is
	// now poisoned: further updates are refused with the retryable sentinel.
	if ix.LiveCount() != 101 {
		t.Fatalf("LiveCount after failed group fsync = %d, want 101 (applied, unacknowledged)", ix.LiveCount())
	}
	if _, err := ix.Insert(randData(r, 1, 8)[0]); !errors.Is(err, ErrJournalPoisoned) {
		t.Fatalf("insert on poisoned journal = %v, want ErrJournalPoisoned", err)
	}
	if _, err := ix.DeleteChecked(0); !errors.Is(err, ErrJournalPoisoned) {
		t.Fatalf("delete on poisoned journal = %v, want ErrJournalPoisoned", err)
	}

	// Save persists the applied-but-unacked insert via the metadata path
	// and heals the journal; updates flow again.
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(randData(r, 1, 8)[0]); err != nil {
		t.Fatalf("insert after healing Save = %v", err)
	}
	if ix.LiveCount() != 102 {
		t.Fatalf("LiveCount = %d, want 102", ix.LiveCount())
	}
}

// TestGroupCommitCrashRecovery crashes the filesystem at the group-fsync
// boundary covering four concurrent inserts: none may be acknowledged, and
// a reopen must land on pre-or-post state for each — here post, since all
// four records were fully written before the crashed fsync.
func TestGroupCommitCrashRecovery(t *testing.T) {
	const burst = 4
	ix, ffs, arm, entered, release := buildGated(t, 100, 8)
	r := rand.New(rand.NewSource(97))
	vecs := randData(r, burst, 8)

	arm()
	errc := make(chan error, burst)
	for i := 0; i < burst; i++ {
		v := vecs[i]
		go func() {
			_, err := ix.Insert(v)
			errc <- err
		}()
	}
	<-entered
	for ix.JournalLen() < burst {
		time.Sleep(time.Millisecond)
	}
	// Crash: the parked fsync (and everything after) fails as if the
	// process died at this boundary.
	ffs.CrashNow()
	release()
	for i := 0; i < burst; i++ {
		if err := <-errc; err == nil {
			t.Fatal("insert acknowledged by a crashed group fsync")
		}
	}

	dir := ix.Dir()
	ix.Close() // fds released; the injected-fault errors are expected
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after group-fsync crash: %v", err)
	}
	defer re.Close()
	// All four records were fully written before the crashed fsync, so
	// replay recovers them — the "post" side of pre-or-post. (A crash that
	// tears the WRITES instead is TestCrashMatrix territory: torn tails
	// truncate to the "pre" side.)
	if re.Recovery().Replayed != burst {
		t.Fatalf("replayed %d, want %d", re.Recovery().Replayed, burst)
	}
	if re.LiveCount() != 100+burst {
		t.Fatalf("LiveCount = %d, want %d", re.LiveCount(), 100+burst)
	}
}
