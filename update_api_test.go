package promips

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"promips/internal/fsutil"
)

func TestPublicInsertDelete(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	data := randData(r, 300, 10)
	ix, err := Build(data, Options{Dir: t.TempDir(), Seed: 62, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	q := randData(r, 1, 10)[0]
	dominant := make([]float32, 10)
	for j := range dominant {
		dominant[j] = q[j] * 20
	}
	id, err := ix.Insert(dominant)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := ix.Search(context.Background(), q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != id {
		t.Fatalf("inserted dominant point not found: got %d want %d", res[0].ID, id)
	}
	if ix.LiveCount() != 301 {
		t.Fatalf("LiveCount = %d", ix.LiveCount())
	}
	if !ix.Delete(id) {
		t.Fatal("delete failed")
	}
	res, _, err = ix.Search(context.Background(), q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID == id {
		t.Fatal("deleted point still returned")
	}
	if ix.LiveCount() != 300 {
		t.Fatalf("LiveCount after delete = %d", ix.LiveCount())
	}
}

// TestUpdateErrorContract pins the update API's error taxonomy: a closed
// index is ErrClosed (not a silent false/zero), and DeleteChecked
// distinguishes "absent" (false, nil) from failure modes.
func TestUpdateErrorContract(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	data := randData(r, 100, 8)
	ix, err := Build(data, Options{Dir: t.TempDir(), Seed: 72, M: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Live id: (true, nil). Again: (false, nil) — already deleted, not an error.
	ok, err := ix.DeleteChecked(11)
	if !ok || err != nil {
		t.Fatalf("DeleteChecked(live) = %v, %v", ok, err)
	}
	ok, err = ix.DeleteChecked(11)
	if ok || err != nil {
		t.Fatalf("DeleteChecked(deleted) = %v, %v", ok, err)
	}
	// Absent id: (false, nil) — absence is not an error.
	ok, err = ix.DeleteChecked(10_000)
	if ok || err != nil {
		t.Fatalf("DeleteChecked(absent) = %v, %v", ok, err)
	}

	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// Closed index: typed errors, distinguishable from "absent".
	if _, err := ix.Insert(data[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close = %v, want ErrClosed", err)
	}
	ok, err = ix.DeleteChecked(12)
	if ok || !errors.Is(err, ErrClosed) {
		t.Fatalf("DeleteChecked after Close = %v, %v, want false, ErrClosed", ok, err)
	}
	if ix.Delete(12) {
		t.Fatal("Delete after Close reported true")
	}
}

// TestInsertJournalFailureNotApplied: when the journal cannot log an
// insert, the insert must not be acknowledged OR applied — and once the
// transient fault clears, the same id is reused cleanly.
func TestInsertJournalFailureNotApplied(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	data := randData(r, 80, 8)
	ffs := &fsutil.FaultFS{}
	ix, err := Build(data, Options{Dir: t.TempDir(), Seed: 82, M: 4, fs: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	// Fault the next journal write.
	ffs.FailAt = ffs.Ops() + 1
	v := randData(r, 1, 8)[0]
	if _, err := ix.Insert(v); !errors.Is(err, fsutil.ErrInjected) {
		t.Fatalf("Insert under journal fault = %v, want ErrInjected", err)
	}
	if ix.LiveCount() != 80 {
		t.Fatalf("failed insert was applied: LiveCount = %d", ix.LiveCount())
	}
	if ix.JournalLen() != 0 {
		t.Fatalf("failed insert left %d journal records", ix.JournalLen())
	}
	// Fault consumed: the insert now succeeds and takes the first free id.
	id, err := ix.Insert(v)
	if err != nil {
		t.Fatal(err)
	}
	if id != 80 {
		t.Fatalf("id = %d, want 80 (ids are not burned by failed inserts)", id)
	}
	if ix.JournalLen() != 1 {
		t.Fatalf("JournalLen = %d", ix.JournalLen())
	}
}
