package promips

import (
	"context"
	"math/rand"
	"testing"
)

func TestPublicInsertDelete(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	data := randData(r, 300, 10)
	ix, err := Build(data, Options{Dir: t.TempDir(), Seed: 62, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	q := randData(r, 1, 10)[0]
	dominant := make([]float32, 10)
	for j := range dominant {
		dominant[j] = q[j] * 20
	}
	id, err := ix.Insert(dominant)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := ix.Search(context.Background(), q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != id {
		t.Fatalf("inserted dominant point not found: got %d want %d", res[0].ID, id)
	}
	if ix.LiveCount() != 301 {
		t.Fatalf("LiveCount = %d", ix.LiveCount())
	}
	if !ix.Delete(id) {
		t.Fatal("delete failed")
	}
	res, _, err = ix.Search(context.Background(), q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID == id {
		t.Fatal("deleted point still returned")
	}
	if ix.LiveCount() != 300 {
		t.Fatalf("LiveCount after delete = %d", ix.LiveCount())
	}
}
