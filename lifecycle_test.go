package promips

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLifecycleRoundTrip drives the full durable lifecycle through the
// public API: Build → Insert/Delete → Save → Close → Open, and demands the
// reopened index answer exactly as the saved one did — results AND stats,
// because Save persists the insert delta and tombstones, not just the
// build-time state.
func TestLifecycleRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(201))
	data := randData(r, 900, 12)
	dir := t.TempDir()
	ix, err := Build(data, Options{Dir: dir, Seed: 202, M: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := randData(r, 1, 12)[0]
	insID, err := ix.Insert(scale(q, 15))
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Delete(7) {
		t.Fatal("delete of id 7 failed")
	}
	wantLive := ix.LiveCount()
	wantRes, wantStats, err := ix.Search(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if wantRes[0].ID != insID {
		t.Fatalf("dominant delta point not ranked first: got %d", wantRes[0].ID)
	}
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.LiveCount() != wantLive {
		t.Fatalf("LiveCount after reopen = %d, want %d", re.LiveCount(), wantLive)
	}
	gotRes, gotStats, err := re.Search(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Fatalf("results changed across Save/Open:\n got %v\nwant %v", gotRes, wantRes)
	}
	if gotStats != wantStats {
		t.Fatalf("stats changed across Save/Open:\n got %+v\nwant %+v", gotStats, wantStats)
	}
	for _, res := range gotRes {
		if res.ID == 7 {
			t.Fatal("tombstone lost across Save/Open: deleted id returned")
		}
	}
}

// Satellite regression: Close used to remove an owned temp directory even
// after the caller persisted the index into it with Save.
func TestCloseAfterSaveKeepsOwnedTempDir(t *testing.T) {
	r := rand.New(rand.NewSource(203))
	data := randData(r, 150, 8)
	ix, err := Build(data, Options{Seed: 204, M: 4}) // no Dir: owned temp dir
	if err != nil {
		t.Fatal(err)
	}
	dir := ix.Dir()
	defer os.RemoveAll(dir)
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("Close removed the directory the caller just Saved to: %v", err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("saved temp dir does not reopen: %v", err)
	}
	re.Close()
}

// Satellite regression: Insert with mismatched dimensionality must surface
// the typed sentinel, not a bare formatted error.
func TestInsertDimMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(205))
	ix, err := Build(randData(r, 100, 8), Options{Dir: t.TempDir(), Seed: 206, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, err := ix.Insert(make([]float32, 5)); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("Insert with dim 5 into dim-8 index returned %v, want ErrDimMismatch", err)
	}
	if _, _, err := ix.Search(context.Background(), make([]float32, 3), 1); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("Search with dim 3 returned %v, want ErrDimMismatch", err)
	}
}

// TestCompactPublic exercises the generation-directory protocol end to end:
// compact swaps a gen-NNNNNN subdirectory in, retires the old generation's
// files, keeps answering identically, and the directory reopens onto the
// new generation.
func TestCompactPublic(t *testing.T) {
	r := rand.New(rand.NewSource(207))
	data := randData(r, 600, 10)
	dir := t.TempDir()
	ix, err := Build(data, Options{Dir: dir, Seed: 208, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := randData(r, 1, 10)[0]
	insID, err := ix.Insert(scale(q, 20))
	if err != nil {
		t.Fatal(err)
	}
	ix.Delete(3)
	ix.Delete(11)
	before, err := ix.Exact(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}

	remap, err := ix.Compact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(remap) != 599 { // 600 − 2 deleted + 1 inserted
		t.Fatalf("remap has %d entries, want 599", len(remap))
	}
	if ix.Len() != 599 || ix.LiveCount() != 599 {
		t.Fatalf("Len=%d LiveCount=%d after compact", ix.Len(), ix.LiveCount())
	}
	after, err := ix.Exact(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if before[0].IP != after[0].IP {
		t.Fatalf("top IP changed across compaction: %v vs %v", before[0].IP, after[0].IP)
	}
	if remap[after[0].ID] != insID {
		t.Fatalf("remap broken: new %d -> old %d, want %d", after[0].ID, remap[after[0].ID], insID)
	}

	// Directory protocol: gen-000001 active, root page files retired.
	if _, err := os.Stat(filepath.Join(dir, "gen-000001", "orig.data")); err != nil {
		t.Fatalf("generation directory missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "orig.data")); !os.IsNotExist(err) {
		t.Fatalf("old generation's root files not retired: %v", err)
	}

	// The swap was made durable: the directory reopens onto gen-000001.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reRes, err := re.Exact(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	re.Close()
	if !reflect.DeepEqual(reRes, after) {
		t.Fatal("reopened index answers differently from the compacted one")
	}

	// A second compaction moves to gen-000002 and removes gen-000001.
	if _, err := ix.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen-000002", "orig.data")); err != nil {
		t.Fatalf("second generation missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen-000001")); !os.IsNotExist(err) {
		t.Fatalf("first generation not retired: %v", err)
	}
}

// TestCompactUnderConcurrentReaders is the race test of the issue: readers
// and writers keep hitting the index while Compact rebuilds and swaps
// generations underneath them. Run with -race this exercises the
// snapshot/rebuild/swap locking; every search must succeed against
// whichever generation it lands on.
func TestCompactUnderConcurrentReaders(t *testing.T) {
	r := rand.New(rand.NewSource(209))
	n := 1200
	if testing.Short() {
		n = 400
	}
	data := randData(r, n, 12)
	ix, err := Build(data, Options{Dir: t.TempDir(), Seed: 210, M: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	queries := randData(r, 8, 12)
	inserts := randData(r, 40, 12)

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, _, err := ix.Search(context.Background(), queries[(i+g)%len(queries)], 5)
				if err != nil {
					errs <- err
					return
				}
				if len(res) != 5 {
					errs <- errTooFew
					return
				}
			}
		}(g)
	}
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for _, v := range inserts {
			if _, err := ix.Insert(v); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Two compactions while the readers and writer run.
	for i := 0; i < 2; i++ {
		if _, err := ix.Compact(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got, want := ix.LiveCount(), n+len(inserts); got != want {
		t.Fatalf("LiveCount after concurrent compactions = %d, want %d", got, want)
	}
	// A final quiescent compaction folds everything; nothing may be lost.
	if _, err := ix.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, want := ix.Len(), n+len(inserts); got != want {
		t.Fatalf("Len after final compaction = %d, want %d", got, want)
	}
}

// TestSearchBatchCancellation cancels a batch from inside its first query
// and demands context.Canceled back with every worker drained (no goroutine
// leak).
func TestSearchBatchCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	data := randData(r, 800, 12)
	ix, err := Build(data, Options{Dir: t.TempDir(), Seed: 212, M: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	queries := make([][]float32, 64)
	for i := range queries {
		queries[i] = data[i%len(data)]
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	// The filter runs once per candidate inside the first queries' scans:
	// cancelling from it guarantees the batch is genuinely mid-flight.
	_, _, err = ix.SearchBatch(ctx, queries, 5,
		WithWorkers(4),
		WithFilter(func(id uint32) bool {
			if fired.CompareAndSwap(false, true) {
				cancel()
			}
			return true
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch returned %v, want context.Canceled", err)
	}

	// Workers must drain: wait for the goroutine count to settle back.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines leaked after cancelled batch: %d > %d", got, before)
	}

	// The index stays fully usable afterwards.
	if _, _, err := ix.Search(context.Background(), queries[0], 5); err != nil {
		t.Fatal(err)
	}
}

// TestErrClosed checks the ErrClosed taxonomy across the API surface.
func TestErrClosed(t *testing.T) {
	r := rand.New(rand.NewSource(213))
	ix, err := Build(randData(r, 100, 8), Options{Dir: t.TempDir(), Seed: 214, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := randData(r, 1, 8)[0]
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("second Close must be a no-op, got %v", err)
	}
	if _, _, err := ix.Search(context.Background(), q, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Search after Close returned %v, want ErrClosed", err)
	}
	if _, err := ix.Insert(q); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close returned %v, want ErrClosed", err)
	}
	if ix.Delete(0) {
		t.Fatal("Delete after Close reported success")
	}
	if err := ix.Save(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Save after Close returned %v, want ErrClosed", err)
	}
	if _, err := ix.Compact(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact after Close returned %v, want ErrClosed", err)
	}
	if _, err := ix.Exact(context.Background(), q, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Exact after Close returned %v, want ErrClosed", err)
	}
}

// TestOpenCorrupt checks that unreadable on-disk state surfaces as
// ErrCorruptIndex rather than a decoding panic or an anonymous error.
func TestOpenCorrupt(t *testing.T) {
	r := rand.New(rand.NewSource(215))
	dir := t.TempDir()
	ix, err := Build(randData(r, 100, 8), Options{Dir: dir, Seed: 216, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	ix.Close()

	if err := os.WriteFile(filepath.Join(dir, "promips.meta"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("Open over garbage meta returned %v, want ErrCorruptIndex", err)
	}

	if err := os.WriteFile(filepath.Join(dir, "CURRENT"), []byte("../evil"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("Open with a traversal CURRENT returned %v, want ErrCorruptIndex", err)
	}

	// CURRENT naming a generation whose files are gone is corruption too.
	if err := os.WriteFile(filepath.Join(dir, "CURRENT"), []byte("gen-000042\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("Open with CURRENT naming a missing generation returned %v, want ErrCorruptIndex", err)
	}
}

// Exact must reject non-positive k instead of indexing results[-1].
func TestExactNonPositiveK(t *testing.T) {
	r := rand.New(rand.NewSource(219))
	ix, err := Build(randData(r, 50, 6), Options{Dir: t.TempDir(), Seed: 220, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := randData(r, 1, 6)[0]
	for _, k := range []int{0, -3} {
		if _, err := ix.Exact(context.Background(), q, k); err == nil {
			t.Fatalf("Exact with k=%d must error", k)
		}
	}
}

// TestWithFilter checks predicate-constrained search: filtered ids never
// surface, from the disk-resident index or from the delta.
func TestWithFilter(t *testing.T) {
	r := rand.New(rand.NewSource(217))
	data := randData(r, 500, 10)
	ix, err := Build(data, Options{Dir: t.TempDir(), Seed: 218, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := randData(r, 1, 10)[0]
	deltaID, err := ix.Insert(scale(q, 25)) // dominant, but filtered below
	if err != nil {
		t.Fatal(err)
	}

	unfiltered, _, err := ix.Search(context.Background(), q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if unfiltered[0].ID != deltaID {
		t.Fatalf("dominant delta point not first unfiltered: %d", unfiltered[0].ID)
	}
	banned := map[uint32]bool{deltaID: true, unfiltered[1].ID: true}
	res, _, err := ix.Search(context.Background(), q, 3,
		WithFilter(func(id uint32) bool { return !banned[id] }))
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range res {
		if banned[rr.ID] {
			t.Fatalf("filtered id %d surfaced in results", rr.ID)
		}
	}
	if len(res) != 3 {
		t.Fatalf("filtered search returned %d results, want 3", len(res))
	}
}

func scale(v []float32, s float32) []float32 {
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = x * s
	}
	return out
}

// NaN must not slip through the (c, p) validation: every NaN comparison is
// false, and a NaN threshold would reach idistance's float→int64 ring
// conversion, whose result is undefined.
func TestNaNOptionRejected(t *testing.T) {
	r := rand.New(rand.NewSource(221))
	ix, err := Build(randData(r, 80, 6), Options{Dir: t.TempDir(), Seed: 222, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := randData(r, 1, 6)[0]
	if _, _, err := ix.Search(context.Background(), q, 3, WithC(math.NaN())); err == nil {
		t.Fatal("WithC(NaN) must fail the query")
	}
	if _, _, err := ix.Search(context.Background(), q, 3, WithP(math.NaN())); err == nil {
		t.Fatal("WithP(NaN) must fail the query")
	}
}

// Exact on a fully-deleted index must surface ErrEmptyIndex like Search
// does, not hand back an empty slice the caller may index into.
func TestExactEmptyIndex(t *testing.T) {
	r := rand.New(rand.NewSource(223))
	ix, err := Build(randData(r, 10, 6), Options{Dir: t.TempDir(), Seed: 224, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for id := uint32(0); id < 10; id++ {
		ix.Delete(id)
	}
	if _, err := ix.Exact(context.Background(), randData(r, 1, 6)[0], 3); !errors.Is(err, ErrEmptyIndex) {
		t.Fatalf("Exact on fully-deleted index returned %v, want ErrEmptyIndex", err)
	}
}

// Open must garbage-collect generations a crash orphaned: anything CURRENT
// does not name — superseded root files, stale or partial gen directories —
// is unreferenced forever otherwise.
func TestOpenSweepsStaleGenerations(t *testing.T) {
	r := rand.New(rand.NewSource(225))
	dir := t.TempDir()
	ix, err := Build(randData(r, 120, 8), Options{Dir: dir, Seed: 226, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: superseded root files and a partial
	// generation directory that the crashed process never removed.
	for _, name := range []string{"idist.data", "orig.data", "promips.meta"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.MkdirAll(filepath.Join(dir, "gen-000099"), 0o755); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := os.Stat(filepath.Join(dir, "orig.data")); !os.IsNotExist(err) {
		t.Fatalf("stale root files not swept: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen-000099")); !os.IsNotExist(err) {
		t.Fatalf("stale generation directory not swept: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen-000001", "orig.data")); err != nil {
		t.Fatalf("active generation must survive the sweep: %v", err)
	}
	if _, _, err := re.Search(context.Background(), randData(r, 1, 8)[0], 3); err != nil {
		t.Fatal(err)
	}
}
