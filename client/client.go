// Package client speaks promipsd's HTTP/JSON protocol. It owns the wire
// types (the server imports them from here, so the two cannot drift) and
// maps the server's typed error codes back onto the promips sentinels —
// errors.Is(err, promips.ErrJournalPoisoned) works the same against a
// remote index as against an embedded one.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"promips"
)

// Wire types. Requests carry an optional TimeoutMs: the server derives the
// request context's deadline from it, capped by its own -timeout flag, so
// a slow query is cut off server-side with 504/CodeDeadline rather than
// only by the client hanging up.

// SearchRequest asks for the top K maximum-inner-product points.
type SearchRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k"`
	// C and P override the index's (c, p) guarantee knobs for this query
	// (0 keeps the index default), exactly like promips.WithC / WithP.
	C float64 `json:"c,omitempty"`
	P float64 `json:"p,omitempty"`
	// TimeoutMs is the per-request deadline in milliseconds (0 = server
	// default; values above the server's cap are clamped to it).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// SearchResponse carries the results and the query's work stats.
type SearchResponse struct {
	Results []promips.Result    `json:"results"`
	Stats   promips.SearchStats `json:"stats"`
}

// BatchRequest runs one query per vector over the server's worker pool.
type BatchRequest struct {
	Vectors   [][]float32 `json:"vectors"`
	K         int         `json:"k"`
	C         float64     `json:"c,omitempty"`
	P         float64     `json:"p,omitempty"`
	Workers   int         `json:"workers,omitempty"`
	TimeoutMs int64       `json:"timeout_ms,omitempty"`
}

// BatchResponse mirrors promips.SearchBatch: results and stats per query,
// in request order.
type BatchResponse struct {
	Results [][]promips.Result    `json:"results"`
	Stats   []promips.SearchStats `json:"stats"`
}

// InsertRequest adds one vector to the index.
type InsertRequest struct {
	Vector    []float32 `json:"vector"`
	TimeoutMs int64     `json:"timeout_ms,omitempty"`
}

// InsertResponse acknowledges a durable insert with its assigned id.
type InsertResponse struct {
	ID uint32 `json:"id"`
}

// DeleteRequest tombstones one id.
type DeleteRequest struct {
	ID        uint32 `json:"id"`
	TimeoutMs int64  `json:"timeout_ms,omitempty"`
}

// DeleteResponse reports whether the id was live (false = already absent,
// which is not an error).
type DeleteResponse struct {
	Deleted bool `json:"deleted"`
}

// StatsResponse is a point-in-time snapshot of the served index. For a
// sharded index (promipsd -shards / a SHARDS directory) the scalar fields
// aggregate over the shards — counters sum, Cache is the component-wise
// total — and the Shards fields break the journal down per shard. For a
// follower replica ReadOnly is true and Replication reports convergence.
type StatsResponse struct {
	Points     int                   `json:"points"`      // base-index points (compaction folds the delta in)
	Live       int                   `json:"live"`        // live points: base + delta - tombstones
	Dim        int                   `json:"dim"`         // vector dimensionality
	M          int                   `json:"m"`           // projected dimensionality
	JournalLen int                   `json:"journal_len"` // acknowledged updates a crash-recovery would replay (summed over shards)
	Cache      promips.CacheStats    `json:"cache"`       // whole-run buffer-pool counters (summed over shards)
	Recovery   promips.RecoveryStats `json:"recovery"`    // what the journal replay at startup recovered (summed over shards)

	// Shards is the shard count K of a sharded index; 0 for an unsharded
	// one. ShardJournalLens is each shard's pending journal length in
	// shard order (present only when Shards > 0).
	Shards          int   `json:"shards,omitempty"`
	ShardJournalLens []int `json:"shard_journal_lens,omitempty"`

	// ReadOnly marks a follower replica: updates are rejected with
	// CodeReadOnly, and Replication reports how converged it is.
	ReadOnly    bool               `json:"read_only,omitempty"`
	Replication *ReplicationStats  `json:"replication,omitempty"`
}

// ReplicationStats reports a follower replica's convergence.
type ReplicationStats struct {
	// Watermarks is the per-shard LSN watermark: how many records of the
	// primary shard's current journal epoch the replica's state covers.
	Watermarks []int64 `json:"watermarks"`
	// Lag is the primary's acknowledged records not yet applied here,
	// summed over shards, as of the stats call; 0 means converged.
	Lag int64 `json:"lag"`
	// Refreshes counts full shard re-snapshots (primary Save/Compact
	// epochs crossed).
	Refreshes int64 `json:"refreshes"`
}

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error     string `json:"error"`
	Code      string `json:"code"`
	Retryable bool   `json:"retryable"`
}

// Error codes. The server maps the promips error taxonomy onto these; the
// client maps them back (see APIError.Is).
const (
	CodeBadRequest      = "bad_request"      // 400: malformed JSON, missing fields
	CodeDimMismatch     = "dim_mismatch"     // 400: vector dimensionality does not match the index
	CodeEmptyIndex      = "empty_index"      // 422: the index has no live points
	CodeQueueFull       = "queue_full"       // 429: admission queue overflow; retry after backoff
	CodeClosed          = "closed"           // 503: the index is shutting down
	CodeReadOnly        = "read_only"        // 403: follower replica; address updates to the primary
	CodeJournalPoisoned = "journal_poisoned" // 503: updates refused until a Save heals the journal; retryable
	CodeDeadline        = "deadline"         // 504: the per-request deadline expired
	CodeInternal        = "internal"         // 500: everything else
)

// APIError is a non-2xx server response. It implements errors.Is against
// the promips sentinels, so remote and embedded error handling share one
// code path.
type APIError struct {
	Status    int    // HTTP status
	Code      string // one of the Code constants
	Message   string // human-readable detail from the server
	Retryable bool   // the server expects a later retry to succeed
}

func (e *APIError) Error() string {
	return fmt.Sprintf("promipsd: %s (http %d, code %s)", e.Message, e.Status, e.Code)
}

// Is maps wire codes back onto the promips sentinels.
func (e *APIError) Is(target error) bool {
	switch e.Code {
	case CodeDimMismatch:
		return target == promips.ErrDimMismatch
	case CodeEmptyIndex:
		return target == promips.ErrEmptyIndex
	case CodeClosed:
		return target == promips.ErrClosed
	case CodeJournalPoisoned:
		return target == promips.ErrJournalPoisoned
	case CodeReadOnly:
		return target == promips.ErrReadOnlyReplica
	case CodeDeadline:
		return target == context.DeadlineExceeded
	}
	return false
}

// Client talks to one promipsd instance.
type Client struct {
	base string
	hc   *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (connection
// pooling, TLS, client-side timeouts).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the promipsd at baseURL, e.g.
// "http://127.0.0.1:7845". The default transport has a 30s overall
// timeout; per-request deadlines ride in the request bodies.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Search runs one top-K query.
func (c *Client) Search(ctx context.Context, req SearchRequest) (SearchResponse, error) {
	var out SearchResponse
	err := c.post(ctx, "/v1/search", req, &out)
	return out, err
}

// SearchBatch runs one query per vector over the server's worker pool.
func (c *Client) SearchBatch(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	var out BatchResponse
	err := c.post(ctx, "/v1/searchbatch", req, &out)
	return out, err
}

// Insert adds a vector; the returned id is assigned by the server and the
// update is durable under the index's fsync policy when this returns nil.
func (c *Client) Insert(ctx context.Context, vec []float32) (uint32, error) {
	var out InsertResponse
	err := c.post(ctx, "/v1/insert", InsertRequest{Vector: vec}, &out)
	return out.ID, err
}

// Delete tombstones an id, reporting whether it was live.
func (c *Client) Delete(ctx context.Context, id uint32) (bool, error) {
	var out DeleteResponse
	err := c.post(ctx, "/v1/delete", DeleteRequest{ID: id}, &out)
	return out.Deleted, err
}

// Stats snapshots the served index.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.get(ctx, "/v1/stats", &out)
	return out, err
}

// Save persists the index state and truncates the journal — also the
// recovery action for CodeJournalPoisoned.
func (c *Client) Save(ctx context.Context) error {
	return c.post(ctx, "/v1/save", struct{}{}, &struct{}{})
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encode %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb ErrorBody
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &eb) != nil || eb.Code == "" {
			eb = ErrorBody{Error: strings.TrimSpace(string(data)), Code: CodeInternal}
			if eb.Error == "" {
				eb.Error = resp.Status
			}
		}
		return &APIError{Status: resp.StatusCode, Code: eb.Code, Message: eb.Error, Retryable: eb.Retryable}
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s response: %w", req.URL.Path, err)
	}
	return nil
}
