// Package client speaks promipsd's HTTP/JSON protocol. It owns the wire
// types (the server imports them from here, so the two cannot drift) and
// maps the server's typed error codes back onto the promips sentinels —
// errors.Is(err, promips.ErrJournalPoisoned) works the same against a
// remote index as against an embedded one.
package client

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"promips"
)

// Wire types. Requests carry an optional TimeoutMs: the server derives the
// request context's deadline from it, capped by its own -timeout flag, so
// a slow query is cut off server-side with 504/CodeDeadline rather than
// only by the client hanging up.

// SearchRequest asks for the top K maximum-inner-product points.
type SearchRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k"`
	// C and P override the index's (c, p) guarantee knobs for this query
	// (0 keeps the index default), exactly like promips.WithC / WithP.
	C float64 `json:"c,omitempty"`
	P float64 `json:"p,omitempty"`
	// TimeoutMs is the per-request deadline in milliseconds (0 = server
	// default; values above the server's cap are clamped to it).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// SearchResponse carries the results and the query's work stats.
type SearchResponse struct {
	Results []promips.Result    `json:"results"`
	Stats   promips.SearchStats `json:"stats"`
}

// BatchRequest runs one query per vector over the server's worker pool.
type BatchRequest struct {
	Vectors   [][]float32 `json:"vectors"`
	K         int         `json:"k"`
	C         float64     `json:"c,omitempty"`
	P         float64     `json:"p,omitempty"`
	Workers   int         `json:"workers,omitempty"`
	TimeoutMs int64       `json:"timeout_ms,omitempty"`
}

// BatchResponse mirrors promips.SearchBatch: results and stats per query,
// in request order.
type BatchResponse struct {
	Results [][]promips.Result    `json:"results"`
	Stats   []promips.SearchStats `json:"stats"`
}

// InsertRequest adds one vector to the index.
type InsertRequest struct {
	Vector    []float32 `json:"vector"`
	TimeoutMs int64     `json:"timeout_ms,omitempty"`
}

// InsertResponse acknowledges a durable insert with its assigned id.
type InsertResponse struct {
	ID uint32 `json:"id"`
}

// DeleteRequest tombstones one id.
type DeleteRequest struct {
	ID        uint32 `json:"id"`
	TimeoutMs int64  `json:"timeout_ms,omitempty"`
}

// DeleteResponse reports whether the id was live (false = already absent,
// which is not an error).
type DeleteResponse struct {
	Deleted bool `json:"deleted"`
}

// StatsResponse is a point-in-time snapshot of the served index. For a
// sharded index (promipsd -shards / a SHARDS directory) the scalar fields
// aggregate over the shards — counters sum, Cache is the component-wise
// total — and the Shards fields break the journal down per shard. For a
// follower replica ReadOnly is true and Replication reports convergence.
type StatsResponse struct {
	Points     int                   `json:"points"`      // base-index points (compaction folds the delta in)
	Live       int                   `json:"live"`        // live points: base + delta - tombstones
	Dim        int                   `json:"dim"`         // vector dimensionality
	M          int                   `json:"m"`           // projected dimensionality
	JournalLen int                   `json:"journal_len"` // acknowledged updates a crash-recovery would replay (summed over shards)
	Cache      promips.CacheStats    `json:"cache"`       // whole-run buffer-pool counters (summed over shards)
	Recovery   promips.RecoveryStats `json:"recovery"`    // what the journal replay at startup recovered (summed over shards)

	// Shards is the shard count K of a sharded index; 0 for an unsharded
	// one. ShardJournalLens is each shard's pending journal length in
	// shard order (present only when Shards > 0). Epoch is the failover
	// epoch fence a sharded primary serves under (bumped by promotion).
	Shards          int   `json:"shards,omitempty"`
	ShardJournalLens []int `json:"shard_journal_lens,omitempty"`
	Epoch            int64 `json:"epoch,omitempty"`

	// ReadOnly marks a follower replica: updates are rejected with
	// CodeReadOnly, and Replication reports how converged it is.
	ReadOnly    bool               `json:"read_only,omitempty"`
	Replication *ReplicationStats  `json:"replication,omitempty"`

	// Updates reports the LSM-style update pipeline: delta occupancy,
	// frozen segments, the flushed-segment watermark and lifetime
	// freeze/flush counters (summed over shards).
	Updates *promips.UpdateStats `json:"updates,omitempty"`
	// Lease reports the primary's write-fencing lease (present only when
	// the server runs with -lease > 0 or has a persisted lease binding).
	Lease *LeaseStats `json:"lease,omitempty"`
	// AutoCompact reports the background compaction scheduler (present
	// only when the server runs with -auto-compact > 0).
	AutoCompact *AutoCompactStats `json:"auto_compact,omitempty"`
}

// LeaseStats reports the state of a replicated primary's write-fencing
// lease.
type LeaseStats struct {
	// Attached reports that an auto-promoting follower's history pull has
	// armed the lease (in this run or a persisted previous one).
	Attached bool `json:"attached"`
	// Expired reports that the fence instant has passed: writes are being
	// refused with CodeLeaseExpired until the grantor pulls again.
	Expired bool `json:"expired"`
	// Deposed reports a completed failover elsewhere: this primary is
	// permanently fenced (CodeStalePrimary).
	Deposed bool `json:"deposed,omitempty"`
	// Grantor is the promoter identity the lease is bound to.
	Grantor string `json:"grantor,omitempty"`
	// RemainingMs is how long until the fence instant, measured on the
	// monotonic clock; <= 0 once fenced.
	RemainingMs int64 `json:"remaining_ms"`
	// DriftMs is how far the wall clock has stepped or slewed against the
	// monotonic clock since the lease guard started — the margin by which
	// the persisted (wall-stamped) deadline may be off after a restart.
	DriftMs int64 `json:"drift_ms"`
}

// AutoCompactStats reports the background compaction scheduler.
type AutoCompactStats struct {
	// MinFlushed is the flushed-segment watermark that triggers a
	// compaction run.
	MinFlushed int `json:"min_flushed"`
	// Runs counts completed background compactions.
	Runs int64 `json:"runs"`
	// Failures counts failed attempts (each retried on a later tick).
	Failures int64 `json:"failures,omitempty"`
}

// ReplicationStats reports a follower replica's convergence.
type ReplicationStats struct {
	// Watermarks is the per-shard LSN watermark: how many records of the
	// primary shard's current journal epoch the replica's state covers.
	Watermarks []int64 `json:"watermarks"`
	// Lag is the primary's acknowledged records not yet applied here,
	// summed over shards, as of the stats call; 0 means converged.
	Lag int64 `json:"lag"`
	// Refreshes counts full shard re-snapshots (primary Save/Compact
	// epochs crossed).
	Refreshes int64 `json:"refreshes"`
	// ConsecutiveFailures counts poll rounds that have failed in a row as
	// of the stats call; 0 means the last round succeeded. The follower's
	// poll loop backs off exponentially while this climbs, and its
	// supervisor (when -auto-promote is set) treats a sustained run of
	// failures as primary-death suspicion.
	ConsecutiveFailures int64 `json:"consecutive_failures,omitempty"`
	// Source names the replication transport ("dir:/path" or the primary's
	// base URL).
	Source string `json:"source,omitempty"`
	// Quarantined reports that the auto-failover supervisor has suspected
	// the primary dead and is waiting out its write lease before
	// promoting. While it is set, Lag is -1: the follower answers stats
	// and readiness from local state only, issuing no reads against the
	// suspect primary.
	Quarantined bool `json:"quarantined,omitempty"`
}

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error     string `json:"error"`
	Code      string `json:"code"`
	Retryable bool   `json:"retryable"`
}

// Error codes. The server maps the promips error taxonomy onto these; the
// client maps them back (see APIError.Is).
const (
	CodeBadRequest      = "bad_request"      // 400: malformed JSON, missing fields
	CodeDimMismatch     = "dim_mismatch"     // 400: vector dimensionality does not match the index
	CodeEmptyIndex      = "empty_index"      // 422: the index has no live points
	CodeQueueFull       = "queue_full"       // 429: admission queue overflow; retry after backoff
	CodeClosed          = "closed"           // 503: the index is shutting down
	CodeReadOnly        = "read_only"        // 403: follower replica; address updates to the primary
	CodeJournalPoisoned = "journal_poisoned" // 503: updates refused until a Save heals the journal; retryable
	CodeDeadline        = "deadline"         // 504: the per-request deadline expired
	CodeNotFollower     = "not_follower"     // 409: promote asked of a server not running a follower
	CodeNotReady        = "not_ready"        // 503 from /v1/readyz: follower not yet converged
	CodeStalePrimary    = "stale_primary"    // 409: this server was deposed by a newer failover epoch
	CodeLeaseExpired    = "lease_expired"    // 503: primary's replication lease lapsed; writes fenced until its auto-promoting follower pulls again
	CodeInternal        = "internal"         // 500: everything else
)

// APIError is a non-2xx server response. It implements errors.Is against
// the promips sentinels, so remote and embedded error handling share one
// code path.
type APIError struct {
	Status    int    // HTTP status
	Code      string // one of the Code constants
	Message   string // human-readable detail from the server
	Retryable bool   // the server expects a later retry to succeed
	// RetryAfter is the server's Retry-After hint (0 = none). The retry
	// loop honors it over its own exponential backoff.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("promipsd: %s (http %d, code %s)", e.Message, e.Status, e.Code)
}

// Is maps wire codes back onto the promips sentinels.
func (e *APIError) Is(target error) bool {
	switch e.Code {
	case CodeDimMismatch:
		return target == promips.ErrDimMismatch
	case CodeEmptyIndex:
		return target == promips.ErrEmptyIndex
	case CodeClosed:
		return target == promips.ErrClosed
	case CodeJournalPoisoned:
		return target == promips.ErrJournalPoisoned
	case CodeReadOnly:
		return target == promips.ErrReadOnlyReplica
	case CodeDeadline:
		return target == context.DeadlineExceeded
	case CodeStalePrimary:
		return target == promips.ErrStalePrimary
	}
	return false
}

// Client talks to one promipsd instance.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	boBase  time.Duration
	boMax   time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (connection
// pooling, TLS, client-side timeouts).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetries makes every call retry up to n additional attempts on
// RETRYABLE failures only: transport errors (the request may never have
// reached the server) and responses whose error body is marked retryable —
// queue_full backpressure, journal_poisoned awaiting a Save, a draining
// server. Non-retryable errors (bad request, dim mismatch, read-only
// replica, …) and the caller's own context expiry are returned
// immediately; when the budget runs out, the last error is returned
// unchanged. Inserts and deletes are safe to retry because every logical
// call carries one Idempotency-Key across all its attempts — the server
// deduplicates, so an ack lost in transit cannot double-apply. The default
// is 0 (single attempt).
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// WithBackoff sets the retry delay's exponential range: attempt i waits a
// jittered base·2^i, capped at max — unless the server sent Retry-After,
// which is honored verbatim. Defaults: 100ms base, 2s cap.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) {
		if base > 0 {
			c.boBase = base
		}
		if max > 0 {
			c.boMax = max
		}
	}
}

// New returns a client for the promipsd at baseURL, e.g.
// "http://127.0.0.1:7845". The default transport has a 30s overall
// timeout; per-request deadlines ride in the request bodies.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:   strings.TrimRight(baseURL, "/"),
		hc:     &http.Client{Timeout: 30 * time.Second},
		boBase: 100 * time.Millisecond,
		boMax:  2 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Search runs one top-K query.
func (c *Client) Search(ctx context.Context, req SearchRequest) (SearchResponse, error) {
	var out SearchResponse
	err := c.post(ctx, "/v1/search", req, &out)
	return out, err
}

// SearchBatch runs one query per vector over the server's worker pool.
func (c *Client) SearchBatch(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	var out BatchResponse
	err := c.post(ctx, "/v1/searchbatch", req, &out)
	return out, err
}

// Insert adds a vector; the returned id is assigned by the server and the
// update is durable under the index's fsync policy when this returns nil.
// All attempts of one Insert share an Idempotency-Key, so retrying after a
// lost ack returns the already-assigned id instead of inserting twice.
func (c *Client) Insert(ctx context.Context, vec []float32) (uint32, error) {
	var out InsertResponse
	err := c.postIdem(ctx, "/v1/insert", InsertRequest{Vector: vec}, &out)
	return out.ID, err
}

// Delete tombstones an id, reporting whether it was live. Idempotent and
// keyed like Insert: a retried delete reports the first attempt's answer.
func (c *Client) Delete(ctx context.Context, id uint32) (bool, error) {
	var out DeleteResponse
	err := c.postIdem(ctx, "/v1/delete", DeleteRequest{ID: id}, &out)
	return out.Deleted, err
}

// Promote asks a promipsd running a follower replica (-follow) to promote
// it to a writable primary (see shard.Promote): the server stops its poll
// loop, drains the dead primary's journal tails, fences the epoch, and
// starts accepting writes. A server not running a follower answers 409
// CodeNotFollower.
func (c *Client) Promote(ctx context.Context) error {
	return c.post(ctx, "/v1/promote", struct{}{}, &struct{}{})
}

// Stats snapshots the served index.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.get(ctx, "/v1/stats", &out)
	return out, err
}

// Save persists the index state and truncates the journal — also the
// recovery action for CodeJournalPoisoned.
func (c *Client) Save(ctx context.Context) error {
	return c.post(ctx, "/v1/save", struct{}{}, &struct{}{})
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	return c.postKeyed(ctx, path, in, out, "")
}

// postIdem posts with a fresh Idempotency-Key shared by every retry of
// this one logical call.
func (c *Client) postIdem(ctx context.Context, path string, in, out any) error {
	return c.postKeyed(ctx, path, in, out, newIdempotencyKey())
}

func (c *Client) postKeyed(ctx context.Context, path string, in, out any, idemKey string) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encode %s request: %w", path, err)
	}
	return c.do(ctx, http.MethodPost, path, body, idemKey, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, nil, "", out)
}

// do issues the request, retrying retryable failures up to the configured
// budget with jittered exponential backoff (Retry-After, when the server
// sent one, overrides the computed delay). The request is rebuilt from the
// retained body bytes on every attempt. The last error is returned
// unchanged when the budget is exhausted.
func (c *Client) do(ctx context.Context, method, path string, body []byte, idemKey string, out any) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := c.newRequest(ctx, method, path, body, idemKey)
		if err != nil {
			return err
		}
		lastErr = c.once(req, out)
		if lastErr == nil {
			return nil
		}
		if attempt >= c.retries || !retryable(lastErr) || ctx.Err() != nil {
			return lastErr
		}
		if err := sleepCtx(ctx, c.delay(attempt, lastErr)); err != nil {
			return lastErr
		}
	}
}

func (c *Client) newRequest(ctx context.Context, method, path string, body []byte, idemKey string) (*http.Request, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	return req, nil
}

// once runs a single attempt.
func (c *Client) once(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb ErrorBody
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &eb) != nil || eb.Code == "" {
			eb = ErrorBody{Error: strings.TrimSpace(string(data)), Code: CodeInternal}
			if eb.Error == "" {
				eb.Error = resp.Status
			}
		}
		return &APIError{
			Status: resp.StatusCode, Code: eb.Code, Message: eb.Error,
			Retryable:  eb.Retryable,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s response: %w", req.URL.Path, err)
	}
	return nil
}

// retryable classifies an attempt's failure. Server responses carry their
// own verdict in the error body; transport errors are retryable (the
// request may never have arrived — idempotency keys make that safe for
// updates) unless they are the caller's own context expiring.
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Retryable
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// delay picks attempt i's wait: the server's Retry-After if it sent one,
// otherwise base·2^i capped at max, jittered over [d/2, d] so a thundering
// herd of clients desynchronizes.
func (c *Client) delay(attempt int, err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > 0 {
		return ae.RetryAfter
	}
	d := c.boBase
	for i := 0; i < attempt && d < c.boMax; i++ {
		d *= 2
	}
	if d > c.boMax {
		d = c.boMax
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// parseRetryAfter accepts both RFC 9110 forms of the header: delta-seconds
// ("120") and an HTTP-date ("Fri, 08 Aug 2026 09:00:00 GMT"), the latter
// clamped at zero when the date is already past.
func parseRetryAfter(s string) time.Duration {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0
	}
	if secs, err := strconv.Atoi(s); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if when, err := http.ParseTime(s); err == nil {
		if d := time.Until(when); d > 0 {
			return d
		}
	}
	return 0
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// newIdempotencyKey draws a random 128-bit key. One key identifies one
// logical update across all its retry attempts.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back to
		// a time-derived key rather than panicking in a client library.
		return strconv.FormatInt(time.Now().UnixNano(), 36)
	}
	return hex.EncodeToString(b[:])
}
