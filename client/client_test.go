package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"promips"
)

// scriptRT is a deterministic scripted http.RoundTripper: attempt i gets
// step i's outcome (a transport error or a canned response); attempts past
// the script repeat the last step. It records every request so tests can
// assert attempt counts and header behavior.
type scriptRT struct {
	mu    sync.Mutex
	steps []scriptStep
	reqs  []*http.Request
}

type scriptStep struct {
	err    error       // transport-level failure (response never arrives)
	status int         // else: canned HTTP response
	body   string
	header http.Header
}

func (rt *scriptRT) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.mu.Lock()
	i := len(rt.reqs)
	rt.reqs = append(rt.reqs, req)
	if i >= len(rt.steps) {
		i = len(rt.steps) - 1
	}
	step := rt.steps[i]
	rt.mu.Unlock()
	if step.err != nil {
		return nil, step.err
	}
	h := step.header
	if h == nil {
		h = http.Header{}
	}
	return &http.Response{
		StatusCode: step.status,
		Header:     h,
		Body:       io.NopCloser(strings.NewReader(step.body)),
		Request:    req,
	}, nil
}

func (rt *scriptRT) attempts() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.reqs)
}

func scripted(t *testing.T, steps []scriptStep, opts ...Option) (*Client, *scriptRT) {
	t.Helper()
	rt := &scriptRT{steps: steps}
	opts = append([]Option{
		WithHTTPClient(&http.Client{Transport: rt}),
		WithBackoff(time.Millisecond, 2*time.Millisecond),
	}, opts...)
	return New("http://scripted", opts...), rt
}

func errBody(code string, retryable bool) string {
	return fmt.Sprintf(`{"error":"scripted failure","code":%q,"retryable":%v}`, code, retryable)
}

// TestRetryTransportErrorThenSucceed: transport failures (the ack may be
// lost in flight) are retried, the call succeeds within budget, and every
// attempt of the one logical insert carries the same Idempotency-Key.
func TestRetryTransportErrorThenSucceed(t *testing.T) {
	c, rt := scripted(t, []scriptStep{
		{err: errors.New("connection refused")},
		{err: errors.New("connection reset")},
		{status: http.StatusOK, body: `{"id":7}`},
	}, WithRetries(3))
	id, err := c.Insert(context.Background(), []float32{1, 2})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if id != 7 {
		t.Fatalf("id = %d, want 7", id)
	}
	if got := rt.attempts(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	key := rt.reqs[0].Header.Get("Idempotency-Key")
	if key == "" {
		t.Fatal("insert attempt missing Idempotency-Key")
	}
	for i, req := range rt.reqs {
		if got := req.Header.Get("Idempotency-Key"); got != key {
			t.Fatalf("attempt %d key %q != attempt 0 key %q", i, got, key)
		}
	}
}

// TestRetryBudgetExhausted: when every attempt fails retryably, the call
// stops after 1+retries attempts and surfaces the server's error unchanged
// — still mapping onto the promips sentinel via errors.Is.
func TestRetryBudgetExhausted(t *testing.T) {
	c, rt := scripted(t, []scriptStep{
		{status: http.StatusServiceUnavailable, body: errBody(CodeJournalPoisoned, true)},
	}, WithRetries(2))
	_, err := c.Insert(context.Background(), []float32{1})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeJournalPoisoned {
		t.Fatalf("got %v, want APIError journal_poisoned", err)
	}
	if !errors.Is(err, promips.ErrJournalPoisoned) {
		t.Fatalf("exhausted error lost sentinel mapping: %v", err)
	}
	if got := rt.attempts(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", got)
	}
}

// TestNonRetryableNeverRetried: an error the server marks non-retryable
// (here dim_mismatch) is returned after a single attempt no matter the
// budget.
func TestNonRetryableNeverRetried(t *testing.T) {
	c, rt := scripted(t, []scriptStep{
		{status: http.StatusBadRequest, body: errBody(CodeDimMismatch, false)},
	}, WithRetries(5))
	_, err := c.Insert(context.Background(), []float32{1})
	if !errors.Is(err, promips.ErrDimMismatch) {
		t.Fatalf("got %v, want ErrDimMismatch", err)
	}
	if got := rt.attempts(); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
}

// TestRetryAfterHonored: a Retry-After header is parsed into the APIError
// and overrides the exponential backoff as the next attempt's delay.
func TestRetryAfterHonored(t *testing.T) {
	c, _ := scripted(t, []scriptStep{
		{status: http.StatusTooManyRequests, body: errBody(CodeQueueFull, true),
			header: http.Header{"Retry-After": []string{"2"}}},
	})
	err := c.once(mustReq(t, c), &struct{}{})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("got %v, want APIError", err)
	}
	if ae.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter = %v, want 2s", ae.RetryAfter)
	}
	if got := c.delay(0, ae); got != 2*time.Second {
		t.Fatalf("delay with Retry-After = %v, want exactly 2s", got)
	}
	// Without the header the delay is the jittered exponential: within
	// (0, base] for attempt 0, capped at max for large attempts.
	plain := &APIError{Status: 503, Code: CodeJournalPoisoned, Retryable: true}
	if d := c.delay(0, plain); d <= 0 || d > c.boBase {
		t.Fatalf("attempt-0 backoff %v outside (0, %v]", d, c.boBase)
	}
	if d := c.delay(30, plain); d <= 0 || d > c.boMax {
		t.Fatalf("late-attempt backoff %v outside (0, %v]", d, c.boMax)
	}
}

func mustReq(t *testing.T, c *Client) *http.Request {
	t.Helper()
	req, err := c.newRequest(context.Background(), http.MethodPost, "/v1/insert", []byte("{}"), "")
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// TestCallerContextStopsRetries: the caller's context expiring during
// backoff ends the loop with the last server error — retries never
// outlive the caller.
func TestCallerContextStopsRetries(t *testing.T) {
	c, rt := scripted(t, []scriptStep{
		{status: http.StatusServiceUnavailable, body: errBody(CodeJournalPoisoned, true)},
	}, WithRetries(100), WithBackoff(50*time.Millisecond, 50*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.Insert(ctx, []float32{1})
	if !errors.Is(err, promips.ErrJournalPoisoned) {
		t.Fatalf("got %v, want the last server error", err)
	}
	if got := rt.attempts(); got > 3 {
		t.Fatalf("attempts = %d: retries kept running past the caller's deadline", got)
	}
}

// TestRetryAfterParse pins the header parser across both RFC 9110 forms:
// delta-seconds and HTTP-date (garbage and negatives ignored, past dates
// clamped to zero).
func TestRetryAfterParse(t *testing.T) {
	for in, want := range map[string]time.Duration{
		"":     0,
		"1":    time.Second,
		" 3 ":  3 * time.Second,
		"-1":   0,
		"soon": 0,
		// An HTTP-date in the past (or malformed) yields no delay.
		"Mon, 02 Jan 2006 15:04:05 GMT": 0,
		"Mon, 02 Jan 2006":              0,
	} {
		if got := parseRetryAfter(in); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}
	// A future HTTP-date yields roughly the remaining interval. All three
	// RFC 9110 date formats must parse.
	for _, layout := range []string{http.TimeFormat, time.RFC850, time.ANSIC} {
		in := time.Now().Add(90 * time.Second).UTC().Format(layout)
		got := parseRetryAfter(in)
		if got < 80*time.Second || got > 91*time.Second {
			t.Errorf("parseRetryAfter(%q) = %v, want ~90s", in, got)
		}
	}
}
