package promips

import "promips/internal/errs"

// The error taxonomy. Every layer of the index — pager, store, iDistance,
// core — wraps one of these sentinels when it fails in a classifiable way,
// so callers branch with errors.Is regardless of which layer surfaced the
// problem:
//
//	if errors.Is(err, promips.ErrCorruptIndex) { rebuild() }
var (
	// ErrClosed is returned by operations on an index after Close.
	ErrClosed = errs.ErrClosed

	// ErrDimMismatch is returned when a query or inserted vector does not
	// match the index dimensionality, or a build set mixes dimensions.
	ErrDimMismatch = errs.ErrDimMismatch

	// ErrCorruptIndex is returned by Open when the on-disk state cannot be
	// interpreted: bad magic numbers, undecodable metadata, or page files
	// whose length is not a whole number of pages.
	ErrCorruptIndex = errs.ErrCorruptIndex

	// ErrEmptyIndex is returned when an operation needs at least one live
	// point: building over an empty dataset, or searching/compacting an
	// index whose points are all deleted.
	ErrEmptyIndex = errs.ErrEmptyIndex

	// ErrJournalPoisoned is returned by Insert/Delete when the update
	// journal refuses further acknowledgements because an earlier write,
	// fsync or generation-handover failure could not be healed in place.
	// It is RETRYABLE: a successful Save persists the in-memory state
	// through the metadata path and heals the journal, after which updates
	// flow again. promipsd surfaces it as 503 with a retryable error code
	// so clients can back off instead of treating it as a hard failure.
	ErrJournalPoisoned = errs.ErrJournalPoisoned

	// ErrReadOnlyReplica is returned by Insert, Delete and Save on a
	// follower replica (shard.Follower): replicas converge by replaying
	// the primary's write-ahead journal, and a direct write would fork the
	// id space. promipsd surfaces it as 403 so clients re-address the
	// update to the primary.
	ErrReadOnlyReplica = errs.ErrReadOnlyReplica

	// ErrStalePrimary is returned by a follower (shard.OpenFollower,
	// shard.Follower.Poll) asked to tail a primary whose manifest epoch is
	// older than the replica's own — a resurrected pre-failover primary.
	// Promotion (shard.Promote) bumps the epoch fence precisely so such a
	// primary's journals are refused instead of silently forking the
	// acknowledged history; the stale primary must be re-seeded from the
	// promoted lineage.
	ErrStalePrimary = errs.ErrStalePrimary
)
